#!/usr/bin/env bash
# check.sh is the full local CI gate: formatting, vet, psilint, build,
# race-enabled tests, the serving smoke (scripts/serve_smoke.sh), and a
# short fuzz smoke over every fuzz target.
#
# Usage:
#   ./scripts/check.sh                    # everything, ~2-5 minutes
#   FUZZTIME=30s ./scripts/check.sh       # longer fuzz smoke
#   FUZZTIME=0 ./scripts/check.sh         # skip the fuzz smoke
#   BENCH_REGRESSION=1 ./scripts/check.sh # also run the bench-regression gate
set -euo pipefail

cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

step() { printf '\n== %s\n' "$*"; }

step "gofmt"
unformatted="$(gofmt -l .)"
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet ./..."
go vet ./...

step "go build ./..."
go build ./...

step "psilint (baseline diff)"
go run ./cmd/psilint -root . -baseline lint_baseline.json

step "go test -race ./..."
go test -race ./...

step "observability suite (-race; overhead + shadow guards, /modelz, decision log)"
go test -race -count=1 -run 'TestObs|TestShadow|TestModelz|TestDecisionLog|TestMerge' \
    ./internal/obs/ ./internal/psi/ ./internal/smartpsi/ \
    ./cmd/psi-bench/ ./cmd/psi-workload/ ./cmd/psi-decisions/

step "decision-log pipeline (psi-workload -shadow-rate -> psi-decisions)"
declog_dir="$(mktemp -d)"
trap 'rm -rf "$declog_dir"' EXIT
go run ./cmd/psi-workload -dataset cora -sizes 4 -count 4 -evaluate \
    -shadow-rate 0.5 -decision-log "$declog_dir/decisions.jsonl" \
    -out "$declog_dir/queries.lg"
go run ./cmd/psi-decisions "$declog_dir/decisions.jsonl"
go run ./cmd/psi-decisions -json "$declog_dir/decisions.jsonl" > /dev/null

step "serving smoke (psi-serve + psi-loadgen: verify, overload shed, drain)"
./scripts/serve_smoke.sh

# Opt-in: diff this machine's quick-run work counters against the
# committed baseline (the bench-regression CI job always runs this).
if [[ "${BENCH_REGRESSION:-0}" != "0" ]]; then
    step "bench regression gate (-quick vs BENCH_seed.json)"
    go run ./cmd/psi-bench -quick -baseline BENCH_seed.json -compare -tolerance 0.15
fi

if [[ "$FUZZTIME" != "0" ]]; then
    step "fuzz smoke ($FUZZTIME per target)"
    go test ./internal/graph/ -run '^$' -fuzz 'FuzzEdgeListRoundTrip' -fuzztime "$FUZZTIME"
    go test ./internal/graph/ -run '^$' -fuzz 'FuzzLGRoundTrip' -fuzztime "$FUZZTIME"
    go test ./internal/graph/ -run '^$' -fuzz 'FuzzBinaryRoundTrip' -fuzztime "$FUZZTIME"
    go test ./internal/psi/ -run '^$' -fuzz 'FuzzMatchVsReference' -fuzztime "$FUZZTIME"
fi

step "OK"
