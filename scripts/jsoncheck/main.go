// Command jsoncheck validates that its input is well-formed JSON.
//
// It exists for shell smoke tests (scripts/serve_smoke.sh) that want
// to assert an endpoint serves parseable JSON without depending on
// curl, jq, or python being installed. Input comes from stdin, or from
// an HTTP GET when -url is given (which must also answer 200). Exit
// status 0 means valid JSON; 1 means the fetch or the parse failed
// (the error is printed to stderr).
//
// Usage:
//
//	jsoncheck -url http://host/seriesz?format=json
//	some-producer | jsoncheck
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	url := flag.String("url", "", "fetch this URL (expecting 200) instead of reading stdin")
	flag.Parse()

	data, err := read(*url)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jsoncheck: %v\n", err)
		os.Exit(1)
	}
	if len(data) == 0 {
		fmt.Fprintln(os.Stderr, "jsoncheck: empty input")
		os.Exit(1)
	}
	if !json.Valid(data) {
		// Decode to surface a useful position in the error.
		var v any
		uerr := json.Unmarshal(data, &v)
		fmt.Fprintf(os.Stderr, "jsoncheck: invalid JSON: %v\n", uerr)
		os.Exit(1)
	}
}

func read(url string) ([]byte, error) {
	if url == "" {
		return io.ReadAll(os.Stdin)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	return data, nil
}
