#!/usr/bin/env bash
# serve_smoke.sh boots the real serving stack end to end and asserts
# the two behaviours the server exists for:
#
#   1. correctness under normal load — psi-serve on an ephemeral port,
#      psi-loadgen -verify cross-checks every served binding set
#      against a model-free PSI evaluation and requires bindings;
#   2. load shedding under overload — a workers=1/queue=0 server must
#      answer some of a 16-way burst with 429 (-require-shed) while
#      everything it does accept stays correct;
#   3. SLO alerting — the healthy pass must finish with no firing
#      alert (-forbid-alert availability) while the overload pass must
#      drive the availability burn rate to "firing"
#      (-require-alert availability), and /seriesz?format=json must be
#      well-formed JSON under load;
#
# then sends SIGTERM and requires a clean drain (exit 0). psi-loadgen
# exits non-zero on any unexpected 5xx, so "the script passed" also
# means "zero 500/502/503 were served".
#
# Usage: ./scripts/serve_smoke.sh  (run from anywhere; ~30s)
set -euo pipefail

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
serve_pid=""
cleanup() {
    if [[ -n "$serve_pid" ]] && kill -0 "$serve_pid" 2>/dev/null; then
        kill -KILL "$serve_pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT

step() { printf '\n-- %s\n' "$*"; }

step "build"
go build -o "$work/psi-serve" ./cmd/psi-serve
go build -o "$work/psi-loadgen" ./cmd/psi-loadgen
go build -o "$work/datagen" ./cmd/datagen
go build -o "$work/jsoncheck" ./scripts/jsoncheck

step "dataset"
"$work/datagen" -dataset yeast -out "$work/g.lg" >/dev/null

wait_for_addr() {
    local file="$1" tries=0
    until [[ -s "$file" ]]; do
        tries=$((tries + 1))
        if [[ "$tries" -gt 100 ]]; then
            echo "server never published its address" >&2
            return 1
        fi
        sleep 0.1
    done
    cat "$file"
}

# start_server launches psi-serve with the given extra flags and sets
# the globals $serve_pid and $addr. Not a command substitution: stdout
# must not be captured (the backgrounded server would hold the pipe
# open) and serve_pid must land in the parent shell.
start_server() {
    local addr_file="$work/addr"
    rm -f "$addr_file"
    "$work/psi-serve" -graph "$work/g.lg" -addr 127.0.0.1:0 \
        -addr-file "$addr_file" "$@" >/dev/null 2>"$work/serve.log" &
    serve_pid=$!
    addr="$(wait_for_addr "$addr_file")"
}

stop_server() { # clean SIGTERM drain must exit 0
    kill -TERM "$serve_pid"
    local rc=0
    wait "$serve_pid" || rc=$?
    serve_pid=""
    if [[ "$rc" -ne 0 ]]; then
        echo "psi-serve exited $rc after SIGTERM; log:" >&2
        cat "$work/serve.log" >&2
        return 1
    fi
}

step "correctness pass (closed loop, -verify, bindings required, no firing alert)"
start_server -workers 2 -queue 32 \
    -sample-interval 250ms -slo-availability 0.99
"$work/psi-loadgen" -addr "$addr" -graph "$work/g.lg" \
    -concurrency 4 -requests 60 -timeout-ms 5000 \
    -verify -min-bindings 1 -json "$work/load.json" \
    -forbid-alert availability
"$work/psi-loadgen" -addr "$addr" -graph "$work/g.lg" \
    -batch 4 -requests 10 -timeout-ms 5000 -min-bindings 1
grep -q '"schema": 1' "$work/load.json"
step "series endpoint serves well-formed JSON"
"$work/jsoncheck" -url "http://$addr/seriesz?format=json"
step "drain"
stop_server

step "overload pass (workers=1, shed-immediately: 429s and a firing availability alert required)"
start_server -workers 1 -queue 0 \
    -sample-interval 100ms -slo-availability 0.99 \
    -slo-fast-window 1s -slo-slow-window 3s -slo-burn-factor 2 -slo-for 0s
"$work/psi-loadgen" -addr "$addr" -graph "$work/g.lg" \
    -concurrency 16 -requests 200 -timeout-ms 5000 \
    -require-shed -min-bindings 1 \
    -require-alert availability
step "drain"
stop_server

printf '\n-- serve smoke OK\n'
