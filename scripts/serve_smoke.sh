#!/usr/bin/env bash
# serve_smoke.sh boots the real serving stack end to end and asserts
# the two behaviours the server exists for:
#
#   1. correctness under normal load — psi-serve on an ephemeral port,
#      psi-loadgen -verify cross-checks every served binding set
#      against a model-free PSI evaluation and requires bindings;
#   2. load shedding under overload — a workers=1/queue=0 server must
#      answer some of a 16-way burst with 429 (-require-shed) while
#      everything it does accept stays correct;
#   3. SLO alerting — the healthy pass must finish with no firing
#      alert (-forbid-alert availability) while the overload pass must
#      drive the availability burn rate to "firing"
#      (-require-alert availability), and /seriesz?format=json must be
#      well-formed JSON under load;
#   4. incident forensics — the overload pass runs with -bundle-dir, so
#      the firing alert must auto-capture a diagnostic bundle; the
#      bundle's JSON entries must validate, and psi-bundle report
#      -require-correlation must find the firing objective plus at
#      least one request ID present in both a captured profile and the
#      decision-log tail;
#   5. workload analytics — a Zipfian loadgen pass (-skew zipf:2
#      -require-hot-shape) must surface its hot query's canonical
#      fingerprint at rank 1 on /queryz with a nonzero repeat-hit
#      estimate; the same fingerprint must resolve at
#      /profilez?fingerprint= and appear in the auto-captured bundle's
#      workload.json, and psi-bundle report must render the top-shapes
#      section;
#   6. sharded serving — a 2-shard fleet (two psi-serve shard nodes
#      plus a coordinator) must answer exactly what the model-free
#      reference computes (-verify), then keep answering after one
#      shard is SIGKILLed: 200s flagged partial (-require-partial),
#      which burn the availability SLO until the alert fires
#      (-require-alert availability);
#
# then sends SIGTERM and requires a clean drain (exit 0). psi-loadgen
# exits non-zero on any unexpected 5xx, so "the script passed" also
# means "zero 500/502/503 were served".
#
# The auto-captured bundle is left at $SMOKE_BUNDLE_OUT (default
# /tmp/psi-smoke-bundle.zip) for CI to archive as an artifact.
#
# Usage: ./scripts/serve_smoke.sh  (run from anywhere; ~30s)
set -euo pipefail

cd "$(dirname "$0")/.."

work="$(mktemp -d)"
serve_pid=""
shard_pids=()
cleanup() {
    for p in "$serve_pid" ${shard_pids[@]+"${shard_pids[@]}"}; do
        if [[ -n "$p" ]] && kill -0 "$p" 2>/dev/null; then
            kill -KILL "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$work"
}
trap cleanup EXIT

step() { printf '\n-- %s\n' "$*"; }

step "build"
go build -o "$work/psi-serve" ./cmd/psi-serve
go build -o "$work/psi-loadgen" ./cmd/psi-loadgen
go build -o "$work/psi-bundle" ./cmd/psi-bundle
go build -o "$work/datagen" ./cmd/datagen
go build -o "$work/jsoncheck" ./scripts/jsoncheck

step "dataset"
"$work/datagen" -dataset yeast -out "$work/g.lg" >/dev/null

wait_for_addr() {
    local file="$1" tries=0
    until [[ -s "$file" ]]; do
        tries=$((tries + 1))
        if [[ "$tries" -gt 100 ]]; then
            echo "server never published its address" >&2
            return 1
        fi
        sleep 0.1
    done
    cat "$file"
}

# start_server launches psi-serve with the given extra flags and sets
# the globals $serve_pid and $addr. Not a command substitution: stdout
# must not be captured (the backgrounded server would hold the pipe
# open) and serve_pid must land in the parent shell.
start_server() {
    local addr_file="$work/addr"
    rm -f "$addr_file"
    "$work/psi-serve" -graph "$work/g.lg" -addr 127.0.0.1:0 \
        -addr-file "$addr_file" "$@" >/dev/null 2>"$work/serve.log" &
    serve_pid=$!
    addr="$(wait_for_addr "$addr_file")"
}

stop_server() { # clean SIGTERM drain must exit 0
    kill -TERM "$serve_pid"
    local rc=0
    wait "$serve_pid" || rc=$?
    serve_pid=""
    if [[ "$rc" -ne 0 ]]; then
        echo "psi-serve exited $rc after SIGTERM; log:" >&2
        cat "$work/serve.log" >&2
        return 1
    fi
}

step "correctness pass (closed loop, -verify, bindings required, no firing alert)"
start_server -workers 2 -queue 32 \
    -sample-interval 250ms -slo-availability 0.99
"$work/psi-loadgen" -addr "$addr" -graph "$work/g.lg" \
    -concurrency 4 -requests 60 -timeout-ms 5000 \
    -verify -min-bindings 1 -json "$work/load.json" \
    -forbid-alert availability
"$work/psi-loadgen" -addr "$addr" -graph "$work/g.lg" \
    -batch 4 -requests 10 -timeout-ms 5000 -min-bindings 1
grep -q '"schema": 1' "$work/load.json"
step "series endpoint serves well-formed JSON"
"$work/jsoncheck" -url "http://$addr/seriesz?format=json"
step "drain"
stop_server

step "overload server (workers=1, shed-immediately, bundle auto-capture armed)"
start_server -workers 1 -queue 0 \
    -sample-interval 100ms -slo-availability 0.99 \
    -slo-fast-window 1s -slo-slow-window 3s -slo-burn-factor 2 -slo-for 0s \
    -shadow-rate 1 \
    -bundle-dir "$work/bundles" -bundle-cooldown 1s -bundle-keep 4

step "skewed load surfaces its hot shape at /queryz (zipf mix, one worker, no shedding)"
# Concurrency 1 against the one worker: nothing sheds, so the alert
# stays quiet and every request lands in the workload sketch. The pass
# prints "hot shape: <fp> ..." on success; capture the fingerprint.
"$work/psi-loadgen" -addr "$addr" -graph "$work/g.lg" \
    -concurrency 1 -requests 60 -timeout-ms 5000 -min-bindings 1 \
    -skew zipf:2 -require-hot-shape | tee "$work/skew.out"
fp="$(sed -n 's/^hot shape: \([0-9a-f]\{16\}\).*/\1/p' "$work/skew.out")"
if [[ -z "$fp" ]]; then
    echo "loadgen -require-hot-shape printed no hot-shape fingerprint" >&2
    exit 1
fi

step "/queryz JSON is well-formed; /profilez pivots by the hot fingerprint"
"$work/jsoncheck" -url "http://$addr/queryz?format=json"
"$work/jsoncheck" -url "http://$addr/profilez?fingerprint=$fp&format=json"

step "shed burst (16-way: 429s, a firing availability alert, and an auto-captured bundle required)"
"$work/psi-loadgen" -addr "$addr" -graph "$work/g.lg" \
    -concurrency 16 -requests 200 -timeout-ms 5000 \
    -require-shed -min-bindings 1 \
    -require-alert availability

step "alert auto-captured a diagnostic bundle"
# The capture runs on the sampler goroutine at the firing transition;
# give it a moment to land before asserting.
bundle=""
for _ in $(seq 1 50); do
    bundle="$(ls "$work/bundles"/bundle-*.zip 2>/dev/null | tail -n 1 || true)"
    [[ -n "$bundle" ]] && break
    sleep 0.1
done
if [[ -z "$bundle" ]]; then
    echo "no bundle auto-captured in $work/bundles; server log:" >&2
    cat "$work/serve.log" >&2
    exit 1
fi
echo "captured: $bundle"

step "bundle entries are well-formed JSON"
"$work/psi-bundle" list "$bundle"
for entry in manifest.json metrics.json alertz.json seriesz.json profiles.json workload.json; do
    "$work/psi-bundle" cat "$bundle" "$entry" | "$work/jsoncheck"
done
"$work/psi-bundle" cat "$bundle" manifest.json | grep -q '"reason": "alert"'
"$work/psi-bundle" cat "$bundle" manifest.json | grep -q '"objective": "availability"'

step "bundle workload.json carries the hot fingerprint"
"$work/psi-bundle" cat "$bundle" workload.json | grep -q "$fp"

step "incident report names the firing objective and correlates request IDs"
"$work/psi-bundle" report -require-correlation "$bundle" | tee "$work/report.txt"
grep -q 'objective availability' "$work/report.txt"
grep -q 'top shapes by cost' "$work/report.txt"

step "loadgen -bundle-on-fail saves a bundle when its assertion fails"
# -forbid-alert availability must fail against the firing server; the
# failure must leave a bundle behind and the original error must win.
if "$work/psi-loadgen" -addr "$addr" -graph "$work/g.lg" \
    -requests 4 -timeout-ms 5000 \
    -forbid-alert availability -bundle-on-fail "$work/failed.zip"; then
    echo "-forbid-alert availability unexpectedly passed on an overloaded server" >&2
    exit 1
fi
"$work/psi-bundle" list "$work/failed.zip" >/dev/null

step "drain"
stop_server

step "fleet: boot 2 shard nodes + coordinator"
# Each shard node loads the same graph file and derives the same
# deterministic ownership partition; the coordinator holds no graph and
# scatters over HTTP. Address order IS shard-index order.
shard_addrs=()
for i in 0 1; do
    rm -f "$work/shard$i.addr"
    "$work/psi-serve" -graph "$work/g.lg" -shard-of 2 -shard-index "$i" \
        -addr 127.0.0.1:0 -addr-file "$work/shard$i.addr" -workers 2 \
        >/dev/null 2>"$work/shard$i.log" &
    shard_pids[$i]=$!
done
for i in 0 1; do
    shard_addrs[$i]="$(wait_for_addr "$work/shard$i.addr")"
done
rm -f "$work/addr"
"$work/psi-serve" -coordinator \
    -shard-addrs "${shard_addrs[0]},${shard_addrs[1]}" -shard-probe 200ms \
    -addr 127.0.0.1:0 -addr-file "$work/addr" -workers 4 \
    -sample-interval 100ms -slo-availability 0.99 \
    -slo-fast-window 1s -slo-slow-window 3s -slo-burn-factor 2 -slo-for 0s \
    >/dev/null 2>"$work/serve.log" &
serve_pid=$!
addr="$(wait_for_addr "$work/addr")"

step "fleet correctness (scattered answers match the model-free reference)"
"$work/psi-loadgen" -addr "$addr" -graph "$work/g.lg" \
    -concurrency 4 -requests 40 -timeout-ms 5000 \
    -verify -min-bindings 1 -forbid-alert availability
"$work/jsoncheck" -url "http://$addr/readyz"

step "fleet shard loss: SIGKILL shard 1 -> flagged partials, firing availability alert"
kill -KILL "${shard_pids[1]}"
wait "${shard_pids[1]}" 2>/dev/null || true
shard_pids[1]=""
"$work/psi-loadgen" -addr "$addr" -graph "$work/g.lg" \
    -concurrency 4 -requests 60 -timeout-ms 5000 \
    -require-partial -require-alert availability

step "fleet drain (coordinator, then the surviving shard)"
stop_server
kill -TERM "${shard_pids[0]}"
rc=0
wait "${shard_pids[0]}" || rc=$?
if [[ "$rc" -ne 0 ]]; then
    echo "shard 0 exited $rc after SIGTERM; log:" >&2
    cat "$work/shard0.log" >&2
    exit 1
fi
shard_pids[0]=""

# Leave the alert-captured bundle where CI can archive it.
cp "$bundle" "${SMOKE_BUNDLE_OUT:-/tmp/psi-smoke-bundle.zip}"

printf '\n-- serve smoke OK\n'
