// Package repro is the public API of the SmartPSI reproduction: an
// efficient system for Pivoted Subgraph Isomorphism (PSI) after
// Abdelhamid, Khayyat, Abdelaziz and Kalnis, "Pivoted Subgraph
// Isomorphism: The Optimist, the Pessimist and the Realist" (EDBT 2019).
//
// Given a labeled query graph with a designated pivot node, a PSI query
// returns the distinct data-graph nodes that bind the pivot in at least
// one embedding of the query — without enumerating the (exponentially
// many) embeddings themselves.
//
// # Quickstart
//
//	g, err := repro.LoadGraph("data.lg")
//	engine, err := repro.NewEngine(g, repro.Options{})
//	q, err := repro.LoadQuery("query.lg") // "p <id>" line sets the pivot
//	res, err := engine.Evaluate(q)
//	fmt.Println(res.Bindings)
//
// The Engine is the paper's full SmartPSI system: per-query Random
// Forest models select the optimistic or pessimistic evaluation method
// and a search order for every candidate node, a signature-keyed cache
// reuses decisions, and a preemptive executor recovers from wrong
// predictions. Lower-level building blocks (the individual evaluation
// methods, the full-isomorphism competitor engines, the frequent
// subgraph miner) live in the subpackages referenced below and are
// re-exported here where they form the supported surface.
package repro

import (
	"io"
	"time"

	"repro/internal/dyngraph"
	"repro/internal/fsm"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/signature"
	"repro/internal/smartpsi"
	"repro/internal/workload"

	"math/rand"
)

// Core graph types.
type (
	// Graph is an immutable labeled graph in CSR form.
	Graph = graph.Graph
	// Builder accumulates nodes and edges into a Graph.
	Builder = graph.Builder
	// Query is a pivoted query graph.
	Query = graph.Query
	// NodeID identifies a node within a Graph.
	NodeID = graph.NodeID
	// Label identifies a node or edge label.
	Label = graph.Label
	// Stats summarizes a graph's shape.
	Stats = graph.Stats
)

// NoLabel marks an unlabeled edge.
const NoLabel = graph.NoLabel

// NewBuilder returns a graph builder with capacity hints.
func NewBuilder(nodeHint, edgeHint int) *Builder { return graph.NewBuilder(nodeHint, edgeHint) }

// NewQuery wraps g and a pivot node into a Query.
func NewQuery(g *Graph, pivot NodeID) (Query, error) { return graph.NewQuery(g, pivot) }

// LoadGraph reads a graph in LG format ("v <id> <label>" / "e <src>
// <dst> [<label>]") from the named file.
func LoadGraph(path string) (*Graph, error) { return graph.LoadLG(path) }

// ParseGraph reads a graph in LG format from r.
func ParseGraph(r io.Reader) (*Graph, error) { return graph.ParseLG(r) }

// SaveGraph writes g in LG format to the named file.
func SaveGraph(path string, g *Graph) error { return graph.SaveLG(path, g) }

// ParseQuery reads a pivoted query in LG format extended with "p <id>".
func ParseQuery(r io.Reader) (Query, error) { return graph.ParseQueryLG(r) }

// ComputeStats returns structural statistics for g.
func ComputeStats(g *Graph, countTriangles bool) Stats {
	return graph.ComputeStats(g, countTriangles)
}

// SmartPSI engine.
type (
	// Engine evaluates PSI queries with the full SmartPSI pipeline.
	Engine = smartpsi.Engine
	// Options configures an Engine; the zero value gives the paper's
	// defaults (depth-2 matrix signatures, 10% training capped at 1000
	// nodes, Random Forest models, cache and preemption enabled).
	Options = smartpsi.Options
	// Result reports one query evaluation: bindings plus training,
	// prediction, caching and preemption telemetry.
	Result = smartpsi.Result
)

// Signature construction methods for Options.SignatureMethod.
const (
	// SignatureMatrix is the paper's fast iterated-matrix construction.
	SignatureMatrix = signature.Matrix
	// SignatureExploration is the traditional BFS construction.
	SignatureExploration = signature.Exploration
)

// NewEngine builds a SmartPSI engine over g, computing all node
// signatures up front.
func NewEngine(g *Graph, opts Options) (*Engine, error) { return smartpsi.NewEngine(g, opts) }

// Evolving graphs.

// DynamicGraph is a mutable labeled graph that maintains every node's
// depth-2 neighborhood signature incrementally as edges are inserted,
// for streaming PSI workloads.
type DynamicGraph = dyngraph.Graph

// NewDynamicGraph returns an empty evolving graph over a label alphabet
// of the given width.
func NewDynamicGraph(width int) *DynamicGraph { return dyngraph.New(width) }

// DynamicFromGraph imports a static graph into an evolving one.
func DynamicFromGraph(g *Graph, width int) (*DynamicGraph, error) {
	return dyngraph.FromGraph(g, width)
}

// EngineFromDynamic snapshots d and builds an engine that reuses its
// incrementally maintained signatures (no signature recomputation).
func EngineFromDynamic(d *DynamicGraph, opts Options) (*Engine, error) {
	snap, err := d.Snapshot()
	if err != nil {
		return nil, err
	}
	sigs, err := signature.FromDense(d.SignatureRows(), d.Width(), dyngraph.Depth)
	if err != nil {
		return nil, err
	}
	return smartpsi.NewEngineWithSignatures(snap, sigs, opts)
}

// Workload extraction.

// ExtractQuery samples one connected query of the given size from g by
// random walk with restart, with a random pivot (the paper's workload
// generator).
func ExtractQuery(g *Graph, size int, rng *rand.Rand) (Query, error) {
	return workload.ExtractQuery(g, size, rng)
}

// ExtractQueries samples count queries of the given size.
func ExtractQueries(g *Graph, size, count int, rng *rand.Rand) ([]Query, error) {
	return workload.ExtractQueries(g, size, count, rng)
}

// Synthetic datasets (Table 3 stand-ins).

// DatasetNames lists the built-in synthetic dataset specs
// (yeast, cora, human, youtube, twitter, weibo).
func DatasetNames() []string { return gen.Names() }

// GenerateDataset builds the named dataset at its default experiment
// scale (the small graphs at published size, the web-scale graphs
// density-preservingly scaled down).
func GenerateDataset(name string) (*Graph, error) {
	spec, err := gen.DefaultSpec(name)
	if err != nil {
		return nil, err
	}
	return gen.Generate(spec)
}

// GenerateDatasetScaled builds the named dataset scaled down by factor.
func GenerateDatasetScaled(name string, factor int) (*Graph, error) {
	spec, err := gen.ScaledSpec(name, factor)
	if err != nil {
		return nil, err
	}
	return gen.Generate(spec)
}

// DatasetSpec describes a custom synthetic graph: node/edge/label
// counts, degree power-law exponent, label Zipf skew, triangle-closure
// and label-homophily fractions, and a seed.
type DatasetSpec = gen.Spec

// GenerateCustom builds a synthetic graph from a custom spec.
func GenerateCustom(spec DatasetSpec) (*Graph, error) { return gen.Generate(spec) }

// Frequent subgraph mining (the Section 5.5 application).
type (
	// MineConfig controls a frequent-subgraph-mining run.
	MineConfig = fsm.Config
	// Pattern is a mined subgraph pattern.
	Pattern = fsm.Pattern
	// MineResult reports a mining run.
	MineResult = fsm.Result
)

// MinePSI mines frequent subgraphs of g using PSI-based support
// counting (the paper's ScaleMine+SmartPSI configuration).
func MinePSI(g *Graph, cfg MineConfig) (*MineResult, error) {
	sigs, err := signature.Build(g, signature.DefaultDepth, g.NumLabels(), signature.Matrix)
	if err != nil {
		return nil, err
	}
	eval, err := fsm.NewPSISupport(g, sigs)
	if err != nil {
		return nil, err
	}
	return fsm.Mine(g, eval, cfg)
}

// MineIso mines frequent subgraphs of g using traditional
// full-enumeration subgraph isomorphism (the ScaleMine baseline).
func MineIso(g *Graph, cfg MineConfig) (*MineResult, error) {
	return fsm.Mine(g, fsm.NewIsoSupport(g), cfg)
}

// IncrementalMiner maintains the frequent-pattern set of an evolving
// graph across edge insertions, re-evaluating only the negative border
// on each Refresh (MNI support is monotone under insertions).
type IncrementalMiner = fsm.IncrementalMiner

// NewIncrementalMiner wraps an evolving graph for incremental mining;
// the first Refresh performs the initial full mine.
func NewIncrementalMiner(d *DynamicGraph, cfg MineConfig) (*IncrementalMiner, error) {
	return fsm.NewIncrementalMiner(d, cfg)
}

// Deadline returns a time budget usable in MineConfig.Deadline and the
// benchmark drivers; zero duration means no deadline.
func Deadline(budget time.Duration) time.Time {
	if budget <= 0 {
		return time.Time{}
	}
	return time.Now().Add(budget)
}
