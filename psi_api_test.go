package repro

import (
	"math/rand"
	"strings"
	"testing"
)

const apiSampleLG = `t # 0
v 0 A
v 1 B
v 2 C
e 0 1
e 1 2
e 0 2
p 0
`

func TestFacadeQuickstartFlow(t *testing.T) {
	// Parse a data graph and query, run the engine end to end.
	g, err := ParseGraph(strings.NewReader(strings.ReplaceAll(apiSampleLG, "p 0\n", "")))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(strings.NewReader(apiSampleLG))
	if err != nil {
		t.Fatal(err)
	}
	if q.Pivot != 0 || q.Size() != 3 {
		t.Fatalf("query pivot=%d size=%d", q.Pivot, q.Size())
	}
	engine, err := NewEngine(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || res.Bindings[0] != 0 {
		t.Errorf("bindings = %v, want [0]", res.Bindings)
	}
}

func TestFacadeDatasets(t *testing.T) {
	names := DatasetNames()
	if len(names) != 6 {
		t.Fatalf("datasets = %v", names)
	}
	g, err := GenerateDataset("cora")
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g, false)
	if s.Nodes != 2708 {
		t.Errorf("cora nodes = %d", s.Nodes)
	}
	if _, err := GenerateDataset("missing"); err == nil {
		t.Error("unknown dataset accepted")
	}
	small, err := GenerateDatasetScaled("yeast", 4)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumNodes() != 3112/4 {
		t.Errorf("scaled yeast nodes = %d", small.NumNodes())
	}
}

func TestFacadeWorkloadAndMining(t *testing.T) {
	g, err := GenerateDatasetScaled("cora", 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	qs, err := ExtractQueries(g, 4, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 3 {
		t.Fatalf("queries = %d", len(qs))
	}
	cfg := MineConfig{Support: 300, MaxEdges: 2, Workers: 2}
	rPsi, err := MinePSI(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rIso, err := MineIso(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rPsi.Frequent) != len(rIso.Frequent) {
		t.Errorf("miners disagree: psi %d vs iso %d", len(rPsi.Frequent), len(rIso.Frequent))
	}
}

func TestFacadeBuilderAndSave(t *testing.T) {
	b := NewBuilder(2, 1)
	u := b.AddNode(0)
	v := b.AddNode(1)
	if err := b.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	if _, err := NewQuery(g, 5); err == nil {
		t.Error("bad pivot accepted")
	}
	q, err := NewQuery(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Size() != 2 {
		t.Error("query size")
	}
	path := t.TempDir() + "/g.lg"
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 2 || g2.NumEdges() != 1 {
		t.Error("round trip failed")
	}
}

func TestDeadlineHelper(t *testing.T) {
	if !Deadline(0).IsZero() {
		t.Error("zero budget should give zero time")
	}
	if Deadline(1e9).IsZero() {
		t.Error("positive budget should give a deadline")
	}
}

func TestFacadeDynamicGraph(t *testing.T) {
	d := NewDynamicGraph(3)
	a, err := d.AddNode(0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := d.AddNode(1)
	c, _ := d.AddNode(2)
	for _, e := range [][2]NodeID{{a, b}, {b, c}, {a, c}} {
		if err := d.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	engine, err := EngineFromDynamic(d, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	qb := NewBuilder(3, 3)
	v0 := qb.AddNode(0)
	v1 := qb.AddNode(1)
	v2 := qb.AddNode(2)
	for _, e := range [][2]NodeID{{v0, v1}, {v1, v2}, {v0, v2}} {
		if err := qb.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	q, err := NewQuery(qb.MustBuild(), v0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || res.Bindings[0] != a {
		t.Errorf("bindings = %v, want [%d]", res.Bindings, a)
	}
	// Threshold counting on the same engine.
	cres, err := engine.CountBindingsAtLeast(q, 1, Deadline(0))
	if err != nil {
		t.Fatal(err)
	}
	if !cres.Reached || cres.Count != 1 {
		t.Errorf("count = %+v", cres)
	}
	// Importing a static graph.
	g, err := GenerateDatasetScaled("cora", 8)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DynamicFromGraph(g, g.NumLabels())
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumNodes() != g.NumNodes() || d2.NumEdges() != g.NumEdges() {
		t.Error("dynamic import changed shape")
	}
}

func TestGenerateCustom(t *testing.T) {
	g, err := GenerateCustom(DatasetSpec{
		Name: "custom", Nodes: 500, Edges: 1500, Labels: 6,
		LabelSkew: 0.5, DegreeExponent: 2.2, TriangleFrac: 0.2,
		LabelHomophily: 0.3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 500 || g.NumLabels() != 6 {
		t.Errorf("custom graph shape: %d nodes %d labels", g.NumNodes(), g.NumLabels())
	}
	if _, err := GenerateCustom(DatasetSpec{Name: "bad", Nodes: -1}); err == nil {
		t.Error("bad spec accepted")
	}
}
