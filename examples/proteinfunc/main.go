// Protein function prediction (paper Section 2.2): mine significant
// patterns from a PPI network, then predict the function of "unknown"
// proteins by testing, with PSI, which patterns their neighborhood
// satisfies.
//
// The PPI network is the synthetic Yeast stand-in; protein functions are
// its node labels. We hide the labels of a few test proteins, find the
// frequent patterns around each function label, and predict each hidden
// protein's function as the label whose patterns its neighborhood
// supports most often.
//
//	go run ./examples/proteinfunc
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	repro "repro"
)

func main() {
	ppi, err := repro.GenerateDataset("yeast")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PPI network: %d proteins, %d interactions, %d functions\n",
		ppi.NumNodes(), ppi.NumEdges(), ppi.NumLabels())

	// Mine significant interaction patterns (2 edges keeps this example
	// snappy; raise -maxedges in cmd/fsm-mine for deeper patterns).
	mres, err := repro.MinePSI(ppi, repro.MineConfig{Support: 20, MaxEdges: 2, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("significant patterns mined: %d\n", len(mres.Frequent))

	engine, err := repro.NewEngine(ppi, repro.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// For each pattern and each of its nodes, the PSI bindings are the
	// proteins that play that role. A protein "supports" a function f
	// when it binds a pattern node labeled f's typical neighbor... here
	// we simply collect, per protein, the pattern-node labels it binds.
	votes := make(map[repro.NodeID]map[repro.Label]int)
	for _, p := range mres.Frequent {
		for v := repro.NodeID(0); int(v) < p.G.NumNodes(); v++ {
			q, err := repro.NewQuery(p.G, v)
			if err != nil {
				log.Fatal(err)
			}
			res, err := engine.Evaluate(q)
			if err != nil {
				log.Fatal(err)
			}
			label := p.G.Label(v)
			for _, u := range res.Bindings {
				if votes[u] == nil {
					votes[u] = make(map[repro.Label]int)
				}
				votes[u][label]++
			}
		}
	}

	// Pick a few pattern-covered proteins, pretend their function is
	// unknown, and predict it from the pattern votes.
	var covered []repro.NodeID
	for u := range votes {
		covered = append(covered, u)
	}
	sort.Slice(covered, func(i, j int) bool { return covered[i] < covered[j] })
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(covered), func(i, j int) { covered[i], covered[j] = covered[j], covered[i] })
	if len(covered) > 10 {
		covered = covered[:10]
	}
	correct, total := 0, 0
	for _, u := range covered {
		vs := votes[u]
		best, bestVotes := repro.Label(-1), 0
		for l, n := range vs {
			if n > bestVotes {
				best, bestVotes = l, n
			}
		}
		total++
		actual := ppi.Label(u)
		mark := " "
		if best == actual {
			correct++
			mark = "*"
		}
		fmt.Printf("%s protein %4d: predicted function %d (votes %d), actual %d\n",
			mark, u, best, bestVotes, actual)
	}
	if total > 0 {
		fmt.Printf("pattern-based prediction matched %d/%d hidden proteins\n", correct, total)
	}
}
