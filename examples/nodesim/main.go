// In-network node similarity (paper Section 2.2, after Yang et al.,
// KAIS 2017): two nodes are similar when their neighborhoods support the
// same pivoted subgraphs. We sample a pool of pivoted patterns, evaluate
// each with one PSI query, and score node pairs by the Jaccard overlap
// of the pattern sets they satisfy.
//
//	go run ./examples/nodesim
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	repro "repro"
)

func main() {
	g, err := repro.GenerateDataset("cora")
	if err != nil {
		log.Fatal(err)
	}
	engine, err := repro.NewEngine(g, repro.Options{Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))

	// Pattern pool: pivoted subgraphs of size 3-4.
	const pool = 12
	satisfies := make(map[repro.NodeID]map[int]bool)
	for p := 0; p < pool; p++ {
		q, err := repro.ExtractQuery(g, 3+rng.Intn(2), rng)
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Evaluate(q)
		if err != nil {
			log.Fatal(err)
		}
		for _, u := range res.Bindings {
			if satisfies[u] == nil {
				satisfies[u] = make(map[int]bool)
			}
			satisfies[u][p] = true
		}
	}

	// Score the similarity of node pairs that satisfy at least one
	// pattern.
	var nodes []repro.NodeID
	for u := range satisfies {
		nodes = append(nodes, u)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	if len(nodes) > 60 {
		nodes = nodes[:60]
	}
	type pair struct {
		a, b repro.NodeID
		sim  float64
	}
	var pairs []pair
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			a, b := nodes[i], nodes[j]
			inter, union := 0, 0
			for p := 0; p < pool; p++ {
				ia, ib := satisfies[a][p], satisfies[b][p]
				if ia || ib {
					union++
				}
				if ia && ib {
					inter++
				}
			}
			if union > 0 && inter > 0 {
				pairs = append(pairs, pair{a, b, float64(inter) / float64(union)})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].sim != pairs[j].sim {
			return pairs[i].sim > pairs[j].sim
		}
		return pairs[i].a < pairs[j].a
	})

	fmt.Printf("patterns in pool: %d; nodes satisfying any: %d\n", pool, len(satisfies))
	fmt.Println("most similar node pairs (Jaccard over satisfied pivoted patterns):")
	for i, p := range pairs {
		if i == 5 {
			break
		}
		fmt.Printf("  (%d, %d): %.2f  [labels %d, %d]\n",
			p.a, p.b, p.sim, g.Label(p.a), g.Label(p.b))
	}
}
