// Quickstart: build the paper's Figure 1 graph and query in code, run
// the SmartPSI engine, and print the pivot bindings.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	// Data graph of Figure 1(b): labels A=0, B=1, C=2.
	b := repro.NewBuilder(6, 10)
	u1 := b.AddNode(0) // A
	u2 := b.AddNode(1) // B
	u3 := b.AddNode(2) // C
	u4 := b.AddNode(2) // C
	u5 := b.AddNode(1) // B
	u6 := b.AddNode(0) // A
	for _, e := range [][2]repro.NodeID{
		{u1, u2}, {u1, u3}, {u1, u4}, {u1, u5},
		{u2, u3}, {u2, u4}, {u5, u3}, {u5, u4},
		{u6, u5}, {u6, u3},
	} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Query of Figure 1(a): the triangle A-B-C with pivot at the A node.
	qb := repro.NewBuilder(3, 3)
	v1 := qb.AddNode(0)
	v2 := qb.AddNode(1)
	v3 := qb.AddNode(2)
	for _, e := range [][2]repro.NodeID{{v1, v2}, {v2, v3}, {v1, v3}} {
		if err := qb.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	qg, err := qb.Build()
	if err != nil {
		log.Fatal(err)
	}
	q, err := repro.NewQuery(qg, v1)
	if err != nil {
		log.Fatal(err)
	}

	engine, err := repro.NewEngine(g, repro.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Evaluate(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PSI query: %d-node triangle, pivot label A\n", q.Size())
	fmt.Printf("candidates examined: %d\n", res.Candidates)
	fmt.Printf("pivot bindings: %v (paper: u1 and u6, i.e. nodes 0 and 5)\n", res.Bindings)
}
