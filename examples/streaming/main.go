// Streaming PSI over an evolving graph: as a social network grows, keep
// answering "which users sit at the center of this interaction pattern?"
// without recomputing node signatures from scratch. The DynamicGraph
// maintains every depth-2 neighborhood signature incrementally per
// inserted edge (the direction the SmartPSI authors took in their
// follow-up work on evolving graphs).
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	repro "repro"
)

func main() {
	// Start from a small snapshot of the Cora stand-in.
	seedGraph, err := repro.GenerateDatasetScaled("cora", 8)
	if err != nil {
		log.Fatal(err)
	}
	d, err := repro.DynamicFromGraph(seedGraph, seedGraph.NumLabels())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial snapshot: %d nodes, %d edges\n", d.NumNodes(), d.NumEdges())

	// The standing query: a triangle of labels (0,1,2) pivoted at the
	// label-0 node.
	qb := repro.NewBuilder(3, 3)
	v0 := qb.AddNode(0)
	v1 := qb.AddNode(1)
	v2 := qb.AddNode(2)
	for _, e := range [][2]repro.NodeID{{v0, v1}, {v1, v2}, {v0, v2}} {
		if err := qb.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	qg, err := qb.Build()
	if err != nil {
		log.Fatal(err)
	}
	query, err := repro.NewQuery(qg, v0)
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	const batches = 4
	const edgesPerBatch = 300
	for batch := 0; batch <= batches; batch++ {
		if batch > 0 {
			// Stream in a batch of new edges (plus the occasional node).
			added := 0
			for added < edgesPerBatch {
				if rng.Intn(20) == 0 {
					if _, err := d.AddNode(repro.Label(rng.Intn(d.Width()))); err != nil {
						log.Fatal(err)
					}
				}
				u := repro.NodeID(rng.Intn(d.NumNodes()))
				v := repro.NodeID(rng.Intn(d.NumNodes()))
				if u == v || d.HasEdge(u, v) {
					continue
				}
				if err := d.AddEdge(u, v); err != nil {
					log.Fatal(err)
				}
				added++
			}
		}
		// Evaluate against the current state; signatures are already
		// maintained, so engine construction skips the build phase.
		engine, err := repro.EngineFromDynamic(d, repro.Options{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		res, err := engine.Evaluate(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d: %6d edges -> %3d pivot bindings (examined %d candidates)\n",
			batch, d.NumEdges(), len(res.Bindings), res.Candidates)
	}
	fmt.Println("signatures were updated incrementally; no full rebuilds performed")
}
