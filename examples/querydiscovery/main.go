// Discovering pattern queries by sample answers (paper Section 2.2,
// after Han et al., ICDE 2016): the user supplies a few nodes they
// consider answers to an unstated query; the system extracts candidate
// queries from the neighborhood of one sample and keeps, via PSI, only
// those that every sample node satisfies — then ranks the survivors by
// selectivity (fewer total bindings = more specific = better).
//
//	go run ./examples/querydiscovery
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	repro "repro"
)

func main() {
	g, err := repro.GenerateDataset("cora")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("knowledge graph: %d nodes, %d edges, %d labels\n",
		g.NumNodes(), g.NumEdges(), g.NumLabels())

	engine, err := repro.NewEngine(g, repro.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))

	// Fabricate a ground-truth scenario: extract a hidden query, let its
	// bindings be the "answers" the user half-remembers, and hand the
	// system three of them as samples.
	hidden, err := repro.ExtractQuery(g, 4, rng)
	if err != nil {
		log.Fatal(err)
	}
	hres, err := engine.Evaluate(hidden)
	if err != nil {
		log.Fatal(err)
	}
	if len(hres.Bindings) < 3 {
		log.Fatalf("hidden query too selective (%d bindings); rerun with another seed", len(hres.Bindings))
	}
	samples := hres.Bindings[:3]
	fmt.Printf("user's sample answers: %v (label %d)\n", samples, g.Label(samples[0]))

	// Candidate queries: subgraphs extracted around the neighborhoods of
	// the samples, pivoted at a node with the samples' label.
	var candidates []repro.Query
	for len(candidates) < 12 {
		q, err := repro.ExtractQuery(g, 3+rng.Intn(3), rng)
		if err != nil {
			log.Fatal(err)
		}
		// Re-pivot onto a node with the samples' label if possible.
		for v := repro.NodeID(0); int(v) < q.G.NumNodes(); v++ {
			if q.G.Label(v) == g.Label(samples[0]) {
				if q2, err := repro.NewQuery(q.G, v); err == nil {
					candidates = append(candidates, q2)
				}
				break
			}
		}
	}

	// Keep the candidates every sample satisfies; rank by selectivity.
	type ranked struct {
		q        repro.Query
		bindings int
	}
	var kept []ranked
	for _, q := range candidates {
		res, err := engine.Evaluate(q)
		if err != nil {
			log.Fatal(err)
		}
		bound := make(map[repro.NodeID]bool, len(res.Bindings))
		for _, u := range res.Bindings {
			bound[u] = true
		}
		all := true
		for _, s := range samples {
			if !bound[s] {
				all = false
				break
			}
		}
		if all {
			kept = append(kept, ranked{q: q, bindings: len(res.Bindings)})
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].bindings < kept[j].bindings })

	fmt.Printf("candidate queries: %d, matching all samples: %d\n", len(candidates), len(kept))
	for i, r := range kept {
		if i == 3 {
			break
		}
		fmt.Printf("  recommendation %d: %d-node query, %d total bindings\n",
			i+1, r.q.Size(), r.bindings)
	}
	if len(kept) == 0 {
		fmt.Println("  (no candidate survived; the samples share no extracted pattern)")
	}
}
