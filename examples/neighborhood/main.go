// Neighborhood pattern mining (paper Section 2.2, after Han & Wen, CIKM
// 2013): for one node label of interest, find the connectivity patterns
// that frequently originate from nodes of that label. Each candidate
// pattern is evaluated with a single PSI query pivoted at the labeled
// node — the count of pivot bindings is exactly the pattern's frequency
// among that label's nodes.
//
//	go run ./examples/neighborhood
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	repro "repro"
)

func main() {
	g, err := repro.GenerateDataset("yeast")
	if err != nil {
		log.Fatal(err)
	}
	engine, err := repro.NewEngine(g, repro.Options{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	// The label of interest: the most common one.
	target := repro.Label(0)
	for l := repro.Label(1); int(l) < g.NumLabels(); l++ {
		if g.LabelFrequency(l) > g.LabelFrequency(target) {
			target = l
		}
	}
	population := int(g.LabelFrequency(target))
	fmt.Printf("label of interest: %d (%d nodes of %d)\n", target, population, g.NumNodes())

	// Candidate neighborhood patterns: subgraphs extracted around nodes
	// of the target label, re-pivoted onto a target-labeled node.
	rng := rand.New(rand.NewSource(9))
	type freqPattern struct {
		q     repro.Query
		count int
	}
	var results []freqPattern
	seen := 0
	for attempts := 0; attempts < 60 && seen < 15; attempts++ {
		q, err := repro.ExtractQuery(g, 3+rng.Intn(2), rng)
		if err != nil {
			log.Fatal(err)
		}
		pivot := repro.NodeID(-1)
		for v := repro.NodeID(0); int(v) < q.G.NumNodes(); v++ {
			if q.G.Label(v) == target {
				pivot = v
				break
			}
		}
		if pivot < 0 {
			continue
		}
		q2, err := repro.NewQuery(q.G, pivot)
		if err != nil {
			continue
		}
		seen++
		res, err := engine.Evaluate(q2)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, freqPattern{q: q2, count: len(res.Bindings)})
	}

	sort.Slice(results, func(i, j int) bool { return results[i].count > results[j].count })
	fmt.Printf("candidate neighborhood patterns evaluated: %d\n", len(results))
	for i, r := range results {
		if i == 5 {
			break
		}
		fmt.Printf("  #%d: %d-node pattern satisfied by %d/%d label-%d nodes (%.1f%%)\n",
			i+1, r.q.Size(), r.count, population, target,
			100*float64(r.count)/float64(population))
	}
}
