// Benchmarks mirroring the paper's evaluation: one family per table and
// figure (see DESIGN.md's experiment index) plus ablations of the design
// choices SmartPSI makes. They run on hard-scaled synthetic datasets so
// `go test -bench=.` completes in minutes; cmd/psi-bench runs the same
// experiments at full scale and prints the paper-style tables.
package repro

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/dyngraph"
	"repro/internal/fsm"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/ml"
	"repro/internal/plan"
	"repro/internal/psi"
	"repro/internal/signature"
	"repro/internal/smartpsi"
	"repro/internal/workload"
)

// benchScale hard-shrinks each dataset for benchmark iterations.
const benchScale = 8

type benchFixture struct {
	graphs  map[string]*graph.Graph
	engines map[string]*smartpsi.Engine
	queries map[string]graph.Query // dataset/size -> one fixed query
}

var (
	fixOnce sync.Once
	fix     *benchFixture
)

func fixture(b *testing.B) *benchFixture {
	b.Helper()
	fixOnce.Do(func() {
		fix = &benchFixture{
			graphs:  make(map[string]*graph.Graph),
			engines: make(map[string]*smartpsi.Engine),
			queries: make(map[string]graph.Query),
		}
		for _, name := range []string{"yeast", "cora", "human", "youtube", "twitter", "weibo"} {
			full, err := gen.FullSpec(name)
			if err != nil {
				panic(err)
			}
			def, err := gen.DefaultSpec(name)
			if err != nil {
				panic(err)
			}
			base := 1
			if def.Nodes > 0 {
				base = full.Nodes / def.Nodes
				if base < 1 {
					base = 1
				}
			}
			spec, err := gen.ScaledSpec(name, base*benchScale)
			if err != nil {
				panic(err)
			}
			g, err := gen.Generate(spec)
			if err != nil {
				panic(err)
			}
			fix.graphs[name] = g
			eng, err := smartpsi.NewEngine(g, smartpsi.Options{Seed: 42})
			if err != nil {
				panic(err)
			}
			fix.engines[name] = eng
			rng := rand.New(rand.NewSource(42))
			for _, size := range []int{4, 5, 6} {
				q, err := workload.ExtractQuery(g, size, rng)
				if err != nil {
					panic(err)
				}
				fix.queries[key(name, size)] = q
			}
		}
	})
	return fix
}

func key(name string, size int) string { return name + "/" + string(rune('0'+size)) }

func makeEvaluator(b *testing.B, f *benchFixture, dataset string, q graph.Query) *psi.Evaluator {
	b.Helper()
	eng := f.engines[dataset]
	qSigs, err := signature.Build(q.G, signature.DefaultDepth, eng.Signatures().Width(), signature.Matrix)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := psi.NewEvaluator(f.graphs[dataset], q, eng.Signatures(), qSigs)
	if err != nil {
		b.Fatal(err)
	}
	return ev
}

// ---- Table 1: PSI vs full subgraph-isomorphism enumeration ----

func BenchmarkTable1_PSI(b *testing.B) {
	f := fixture(b)
	q := f.queries[key("yeast", 5)]
	eng := f.engines["yeast"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1_SubgraphIso(b *testing.B) {
	f := fixture(b)
	q := f.queries[key("yeast", 5)]
	g := f.graphs["yeast"]
	b.ReportAllocs()
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		bt, err := match.NewBacktracking(g, q.G)
		if err != nil {
			b.Fatal(err)
		}
		n, err := match.CountEmbeddings(bt, match.Budget{MaxEmbeddings: 5_000_000})
		if err != nil && err != match.ErrBudget {
			b.Fatal(err)
		}
		total += n
	}
	b.ReportMetric(float64(total)/float64(b.N), "embeddings/op")
}

// ---- Table 2 / Figure 7: systems head to head ----

func benchmarkSystem(b *testing.B, dataset string, size int, system string) {
	f := fixture(b)
	q := f.queries[key(dataset, size)]
	g := f.graphs[dataset]
	budget := match.Budget{Deadline: time.Now().Add(time.Duration(b.N) * 2 * time.Second)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch system {
		case "smartpsi":
			if _, err := f.engines[dataset].Evaluate(q); err != nil {
				b.Fatal(err)
			}
		case "turboiso":
			e, err := match.NewTurboIso(g, q.G)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := match.PivotBindings(e, q, budget); err != nil && err != match.ErrBudget {
				b.Fatal(err)
			}
		case "turboiso+":
			e, err := match.NewTurboIsoPlus(g, q)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := e.PivotBindings(budget); err != nil && err != match.ErrBudget {
				b.Fatal(err)
			}
		case "cfl":
			e, err := match.NewCFL(g, q.G)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := match.PivotBindings(e, q, budget); err != nil && err != match.ErrBudget {
				b.Fatal(err)
			}
		case "graphql":
			e, err := match.NewGraphQL(g, q.G)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := match.PivotBindings(e, q, budget); err != nil && err != match.ErrBudget {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable2_TurboIso(b *testing.B)     { benchmarkSystem(b, "human", 5, "turboiso") }
func BenchmarkTable2_TurboIsoPlus(b *testing.B) { benchmarkSystem(b, "human", 5, "turboiso+") }
func BenchmarkTable2_SmartPSI(b *testing.B)     { benchmarkSystem(b, "human", 5, "smartpsi") }

func BenchmarkFig7_Yeast_GraphQL(b *testing.B)      { benchmarkSystem(b, "yeast", 6, "graphql") }
func BenchmarkFig7_Yeast_CFL(b *testing.B)          { benchmarkSystem(b, "yeast", 6, "cfl") }
func BenchmarkFig7_Yeast_TurboIso(b *testing.B)     { benchmarkSystem(b, "yeast", 6, "turboiso") }
func BenchmarkFig7_Yeast_TurboIsoPlus(b *testing.B) { benchmarkSystem(b, "yeast", 6, "turboiso+") }
func BenchmarkFig7_Yeast_SmartPSI(b *testing.B)     { benchmarkSystem(b, "yeast", 6, "smartpsi") }
func BenchmarkFig7_Cora_CFL(b *testing.B)           { benchmarkSystem(b, "cora", 6, "cfl") }
func BenchmarkFig7_Cora_SmartPSI(b *testing.B)      { benchmarkSystem(b, "cora", 6, "smartpsi") }
func BenchmarkFig7_Human_CFL(b *testing.B)          { benchmarkSystem(b, "human", 6, "cfl") }
func BenchmarkFig7_Human_SmartPSI(b *testing.B)     { benchmarkSystem(b, "human", 6, "smartpsi") }

// ---- Table 3: dataset generation and statistics ----

func BenchmarkTable3_DatasetStats(b *testing.B) {
	f := fixture(b)
	g := f.graphs["yeast"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = graph.ComputeStats(g, false)
	}
}

// ---- Figure 8: signature construction ----

func BenchmarkFig8_Exploration(b *testing.B) {
	f := fixture(b)
	g := f.graphs["youtube"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signature.Build(g, signature.DefaultDepth, g.NumLabels(), signature.Exploration); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8_Matrix(b *testing.B) {
	f := fixture(b)
	g := f.graphs["youtube"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signature.Build(g, signature.DefaultDepth, g.NumLabels(), signature.Matrix); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 9: two-threaded baseline vs SmartPSI ----

func BenchmarkFig9_TwoThreaded(b *testing.B) {
	f := fixture(b)
	q := f.queries[key("twitter", 4)]
	ev := makeEvaluator(b, f, "twitter", q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := psi.EvaluateAll(ev, psi.TwoThreaded, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9_SmartPSI2Threads(b *testing.B) {
	f := fixture(b)
	q := f.queries[key("twitter", 4)]
	eng, err := smartpsi.NewEngine(f.graphs["twitter"], smartpsi.Options{Seed: 42, Threads: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(q); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 10: single-strategy baselines ----

func benchmarkStrategy(b *testing.B, strategy psi.Strategy) {
	f := fixture(b)
	q := f.queries[key("twitter", 5)]
	ev := makeEvaluator(b, f, "twitter", q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := psi.EvaluateAll(ev, strategy, time.Time{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10_Optimistic(b *testing.B)  { benchmarkStrategy(b, psi.OptimisticOnly) }
func BenchmarkFig10_Pessimistic(b *testing.B) { benchmarkStrategy(b, psi.PessimisticOnly) }
func BenchmarkFig10_SmartPSI(b *testing.B)    { benchmarkSystem(b, "twitter", 5, "smartpsi") }

// ---- Figure 11 / Table 4: accuracy and overhead telemetry ----

func BenchmarkFig11_Table4_SmartPSITelemetry(b *testing.B) {
	f := fixture(b)
	q := f.queries[key("twitter", 5)]
	eng := f.engines["twitter"]
	var correct, total, overhead, wall int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Evaluate(q)
		if err != nil {
			b.Fatal(err)
		}
		correct += res.Alpha.Correct
		total += res.Alpha.Total
		overhead += int64(res.TrainTime + res.ModelTime)
		wall += int64(res.TotalTime)
	}
	if total > 0 {
		b.ReportMetric(100*float64(correct)/float64(total), "accuracy%")
	}
	if wall > 0 {
		b.ReportMetric(100*float64(overhead)/float64(wall), "overhead%")
	}
}

// ---- Figure 12: FSM with iso vs PSI support ----

// benchmarkMine runs the miner with 3-edge patterns on the dense Weibo
// stand-in — the regime where the paper's Figure 12 gap appears. Iso
// runs are deadline-capped so a benchmark iteration stays bounded.
func benchmarkMine(b *testing.B, mode string, workers int) {
	f := fixture(b)
	g := f.graphs["weibo"]
	support := g.NumNodes() / 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := MineConfig{
			Support:  support,
			MaxEdges: 3,
			Workers:  workers,
			Deadline: time.Now().Add(20 * time.Second),
		}
		var err error
		if mode == "psi" {
			_, err = MinePSI(g, cfg)
		} else {
			_, err = MineIso(g, cfg)
		}
		if err != nil && err != match.ErrBudget && err != psi.ErrDeadline {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12_MineIso_1Worker(b *testing.B)  { benchmarkMine(b, "iso", 1) }
func BenchmarkFig12_MineIso_4Workers(b *testing.B) { benchmarkMine(b, "iso", 4) }
func BenchmarkFig12_MinePSI_1Worker(b *testing.B)  { benchmarkMine(b, "psi", 1) }
func BenchmarkFig12_MinePSI_4Workers(b *testing.B) { benchmarkMine(b, "psi", 4) }

// ---- Section 5.4: classifier comparison ----

func classifierDataset(b *testing.B) ml.Dataset {
	b.Helper()
	f := fixture(b)
	eng := f.engines["human"]
	g := f.graphs["human"]
	q := f.queries[key("human", 5)]
	qSigs, err := signature.Build(q.G, signature.DefaultDepth, eng.Signatures().Width(), signature.Matrix)
	if err != nil {
		b.Fatal(err)
	}
	ev, err := psi.NewEvaluator(g, q, eng.Signatures(), qSigs)
	if err != nil {
		b.Fatal(err)
	}
	c, err := plan.Compile(q, plan.Heuristic(q, g))
	if err != nil {
		b.Fatal(err)
	}
	ds := ml.Dataset{NumClasses: 2}
	st := psi.NewState(q.Size())
	for _, u := range g.NodesWithLabel(q.G.Label(q.Pivot)) {
		ok, err := ev.Evaluate(st, c, u, psi.Pessimistic, psi.Limits{})
		if err != nil {
			b.Fatal(err)
		}
		cls := 0
		if ok {
			cls = 1
		}
		ds.X = append(ds.X, eng.Signatures().Row(u))
		ds.Y = append(ds.Y, cls)
	}
	return ds
}

func BenchmarkModelComparison_RandomForest(b *testing.B) {
	ds := classifierDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.TrainForest(ds, ml.ForestConfig{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelComparison_SVM(b *testing.B) {
	ds := classifierDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.TrainSVM(ds, ml.SVMConfig{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelComparison_NeuralNet(b *testing.B) {
	ds := classifierDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.TrainNN(ds, ml.NNConfig{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations (DESIGN.md Section 5) ----

// BenchmarkAblationSuperOptimistic measures the capped first pass's
// value when evaluating valid nodes optimistically.
func BenchmarkAblationSuperOptimistic(b *testing.B) {
	f := fixture(b)
	q := f.queries[key("human", 5)]
	ev := makeEvaluator(b, f, "human", q)
	c, err := plan.Compile(q, plan.Heuristic(q, f.graphs["human"]))
	if err != nil {
		b.Fatal(err)
	}
	candidates := f.graphs["human"].NodesWithLabel(q.G.Label(q.Pivot))
	if len(candidates) > 64 {
		candidates = candidates[:64]
	}
	b.Run("with-super", func(b *testing.B) {
		st := psi.NewState(q.Size())
		for i := 0; i < b.N; i++ {
			for _, u := range candidates {
				if _, err := ev.Evaluate(st, c, u, psi.Optimistic, psi.Limits{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("without-super", func(b *testing.B) {
		st := psi.NewState(q.Size())
		for i := 0; i < b.N; i++ {
			for _, u := range candidates {
				if _, err := ev.EvaluateNoSuper(st, c, u, psi.Optimistic, psi.Limits{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationSignaturePruning isolates Proposition 3.2's value in
// the pessimistic method.
func BenchmarkAblationSignaturePruning(b *testing.B) {
	f := fixture(b)
	q := f.queries[key("human", 5)]
	ev := makeEvaluator(b, f, "human", q)
	c, err := plan.Compile(q, plan.Heuristic(q, f.graphs["human"]))
	if err != nil {
		b.Fatal(err)
	}
	candidates := f.graphs["human"].NodesWithLabel(q.G.Label(q.Pivot))
	if len(candidates) > 64 {
		candidates = candidates[:64]
	}
	b.Run("with-pruning", func(b *testing.B) {
		st := psi.NewState(q.Size())
		for i := 0; i < b.N; i++ {
			for _, u := range candidates {
				if _, err := ev.Evaluate(st, c, u, psi.Pessimistic, psi.Limits{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("without-pruning", func(b *testing.B) {
		st := psi.NewState(q.Size())
		for i := 0; i < b.N; i++ {
			for _, u := range candidates {
				if _, err := ev.EvaluateNoSigPrune(st, c, u, psi.Limits{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

func benchmarkEngineVariant(b *testing.B, opts smartpsi.Options) {
	f := fixture(b)
	q := f.queries[key("twitter", 5)]
	opts.Seed = 42
	eng, err := smartpsi.NewEngine(f.graphs["twitter"], opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPredictionCache(b *testing.B) {
	b.Run("with-cache", func(b *testing.B) { benchmarkEngineVariant(b, smartpsi.Options{}) })
	b.Run("without-cache", func(b *testing.B) { benchmarkEngineVariant(b, smartpsi.Options{DisableCache: true}) })
}

func BenchmarkAblationPreemption(b *testing.B) {
	b.Run("with-preemption", func(b *testing.B) { benchmarkEngineVariant(b, smartpsi.Options{}) })
	b.Run("without-preemption", func(b *testing.B) {
		benchmarkEngineVariant(b, smartpsi.Options{DisablePreemption: true})
	})
}

func BenchmarkAblationPlanModel(b *testing.B) {
	b.Run("with-plan-model", func(b *testing.B) { benchmarkEngineVariant(b, smartpsi.Options{}) })
	b.Run("heuristic-plan-only", func(b *testing.B) {
		benchmarkEngineVariant(b, smartpsi.Options{DisablePlanModel: true})
	})
}

// ---- Incremental FSM (extension; DESIGN.md experiment index) ----

func buildIncMiner(b *testing.B) *fsm.IncrementalMiner {
	b.Helper()
	f := fixture(b)
	d, err := dyngraph.FromGraph(f.graphs["cora"], f.graphs["cora"].NumLabels())
	if err != nil {
		b.Fatal(err)
	}
	m, err := fsm.NewIncrementalMiner(d, fsm.Config{
		Support:  d.NumNodes() / 10,
		MaxEdges: 2,
		Workers:  1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Refresh(); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkIncFSM_Refresh measures a refresh after one edge insertion.
func BenchmarkIncFSM_Refresh(b *testing.B) {
	m := buildIncMiner(b)
	rng := rand.New(rand.NewSource(3))
	d := m.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for {
			u := graph.NodeID(rng.Intn(d.NumNodes()))
			v := graph.NodeID(rng.Intn(d.NumNodes()))
			if u != v && !d.HasEdge(u, v) {
				if err := m.AddEdge(u, v); err != nil {
					b.Fatal(err)
				}
				break
			}
		}
		b.StartTimer()
		if _, err := m.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncFSM_FullRemine is the from-scratch baseline under the
// same evolution: one edge inserted per iteration (off the clock), a
// full re-mine of the fresh snapshot measured — directly comparable to
// BenchmarkIncFSM_Refresh.
func BenchmarkIncFSM_FullRemine(b *testing.B) {
	m := buildIncMiner(b)
	rng := rand.New(rand.NewSource(3))
	d := m.Graph()
	cfg := fsm.Config{Support: d.NumNodes() / 10, MaxEdges: 2, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for {
			u := graph.NodeID(rng.Intn(d.NumNodes()))
			v := graph.NodeID(rng.Intn(d.NumNodes()))
			if u != v && !d.HasEdge(u, v) {
				if err := d.AddEdge(u, v); err != nil {
					b.Fatal(err)
				}
				break
			}
		}
		snap, err := d.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := fsm.Mine(snap, fsm.NewIsoSupport(snap), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
