package repro_test

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	repro "repro"
)

// The paper's Figure 1: a triangle query with pivot label A has two
// valid bindings in the example data graph.
func Example() {
	const dataLG = `t # 0
v 0 A
v 1 B
v 2 C
v 3 C
v 4 B
v 5 A
e 0 1
e 0 2
e 0 3
e 0 4
e 1 2
e 1 3
e 4 2
e 4 3
e 5 4
e 5 2
`
	const queryLG = `t # 0
v 0 A
v 1 B
v 2 C
e 0 1
e 1 2
e 0 2
p 0
`
	g, err := repro.ParseGraph(strings.NewReader(dataLG))
	if err != nil {
		log.Fatal(err)
	}
	q, err := repro.ParseQuery(strings.NewReader(queryLG))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := repro.NewEngine(g, repro.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Evaluate(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Bindings)
	// Output: [0 5]
}

// Extracting a reproducible workload and evaluating it.
func ExampleExtractQueries() {
	g, err := repro.GenerateDatasetScaled("cora", 4)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	queries, err := repro.ExtractQueries(g, 4, 3, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(queries), "queries of size", queries[0].Size())
	// Output: 3 queries of size 4
}

// Counting bindings with an early-exit threshold (the FSM primitive).
func ExampleEngine_CountBindingsAtLeast() {
	b := repro.NewBuilder(4, 3)
	hub := b.AddNode(0)
	for i := 0; i < 3; i++ {
		leaf := b.AddNode(1)
		if err := b.AddEdge(hub, leaf); err != nil {
			log.Fatal(err)
		}
	}
	g := b.MustBuild()
	engine, err := repro.NewEngine(g, repro.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	// Query: a B node attached to an A node, pivoted at B.
	qb := repro.NewBuilder(2, 1)
	qa := qb.AddNode(0)
	qbn := qb.AddNode(1)
	if err := qb.AddEdge(qa, qbn); err != nil {
		log.Fatal(err)
	}
	q, err := repro.NewQuery(qb.MustBuild(), qbn)
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.CountBindingsAtLeast(q, 2, repro.Deadline(0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Reached, res.Count)
	// Output: true 2
}

// Streaming PSI: grow the graph, signatures stay maintained.
func ExampleDynamicGraph() {
	d := repro.NewDynamicGraph(2)
	a, _ := d.AddNode(0)
	b, _ := d.AddNode(1)
	if err := d.AddEdge(a, b); err != nil {
		log.Fatal(err)
	}
	c, _ := d.AddNode(1)
	if err := d.AddEdge(a, c); err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.NumNodes(), d.NumEdges(), d.Signature(a)[1])
	// Output: 3 2 2
}
