package fsm

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// Fingerprint canonically identifies a pivoted query for workload
// analytics. Two queries that are isomorphic as labeled graphs and
// share a pivot label collapse to the same Shape; two queries that are
// isomorphic *as pivoted graphs* (an isomorphism mapping pivot to
// pivot) collapse to the same Exact value — since the data graph is
// static per process, equal Exact values imply equal answers, which is
// what makes the repeat-exact-hit count an answer-cache upper bound.
type Fingerprint struct {
	// Shape hashes the min-DFS canonical code together with the label
	// multiset and the pivot's label. It is the /queryz grouping key.
	Shape uint64
	// Exact additionally hashes the pivot-rooted canonical code, so it
	// distinguishes pivots in different orbits of the same graph.
	Exact uint64
	// Approx is set when the canonical enumeration ran out of its step
	// budget and a cheaper structural hash (degree sequence + label
	// multiset) was used instead. Approximate fingerprints are still
	// isomorphism-invariant but may merge non-isomorphic shapes.
	Approx bool
}

// String renders the grouping key the way /queryz, /profilez and the
// decision log spell it: 16 lowercase hex digits.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", f.Shape) }

// DefaultFingerprintSteps bounds the DFS-enumeration work spent on one
// fingerprint. Serving-path patterns are tiny (the server caps them at
// a few dozen nodes) and almost always finish in well under a thousand
// steps; pathological near-regular patterns fall back to the structural
// hash instead of stalling admission.
const DefaultFingerprintSteps = 1 << 14

// PivotFingerprint computes the canonical fingerprint of q, spending at
// most maxSteps DFS steps (non-positive means DefaultFingerprintSteps).
// It is a pure function of the query and never fails: when the budget
// runs out it degrades to a structural hash and marks the result
// Approx.
func PivotFingerprint(q graph.Query, maxSteps int) Fingerprint {
	if maxSteps <= 0 {
		maxSteps = DefaultFingerprintSteps
	}
	pivotLabel := q.G.Label(q.Pivot)
	shapeCode, ok := minDFSCode(q.G, maxSteps)
	if !ok {
		return structuralFingerprint(q, pivotLabel)
	}
	pivotCode, ok := pivotRootedCode(q.G, q.Pivot, maxSteps)
	if !ok {
		return structuralFingerprint(q, pivotLabel)
	}
	shape := fnvString(fnvInit("psi-shape"), shapeCode)
	shape = fnvLabels(fnvByte(shape, 0xFF), labelMultiset(q.G))
	shape = fnvLabel(fnvByte(shape, 0xFE), pivotLabel)
	exact := fnvString(fnvInit("psi-exact"), shapeCode)
	exact = fnvString(fnvByte(exact, 0xFD), pivotCode)
	exact = fnvLabel(fnvByte(exact, 0xFE), pivotLabel)
	return Fingerprint{Shape: shape, Exact: exact}
}

// pivotRootedCode returns the minimum DFS code over traversals of the
// pivot's component that are rooted at the pivot. Restricting the root
// canonicalizes the pivot's orbit: pivoted graphs are isomorphic (pivot
// onto pivot) exactly when their pivot-rooted codes match.
func pivotRootedCode(g *graph.Graph, pivot graph.NodeID, budget int) (string, bool) {
	sub, root := g, pivot
	comp := graph.ConnectedComponent(g, pivot)
	if len(comp) < g.NumNodes() {
		var err error
		sub, _, err = graph.InducedSubgraph(g, comp)
		invariant.Must(err) // components of a valid graph always induce
		root = 0            // ConnectedComponent lists pivot first
	}
	e := &dfsEnc{g: sub, dfsID: make([]int8, sub.NumNodes()), budget: budget}
	for v := range e.dfsID {
		e.dfsID[v] = -1
	}
	e.tryRoot(root)
	if e.exhausted || e.best == nil {
		return "", false
	}
	return string(e.best), true
}

// structuralFingerprint is the bounded-cost fallback: a hash of the
// sorted (label, degree) sequence plus edge count and pivot identity.
// Isomorphism-invariant, but weaker than the canonical code.
func structuralFingerprint(q graph.Query, pivotLabel graph.Label) Fingerprint {
	type nodeKey struct {
		l graph.Label
		d int32
	}
	keys := make([]nodeKey, q.G.NumNodes())
	for u := range keys {
		keys[u] = nodeKey{l: q.G.Label(graph.NodeID(u)), d: q.G.Degree(graph.NodeID(u))}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].l != keys[j].l {
			return keys[i].l < keys[j].l
		}
		return keys[i].d < keys[j].d
	})
	fold := func(h uint64) uint64 {
		for _, k := range keys {
			h = fnvLabel(h, k.l)
			h = fnvByte(fnvByte(h, byte(k.d)), byte(k.d>>8))
		}
		h = fnvByte(h, 0xFC)
		h = fnvByte(fnvByte(h, byte(q.G.NumEdges())), byte(q.G.NumEdges()>>8))
		h = fnvLabel(fnvByte(h, 0xFE), pivotLabel)
		return fnvByte(fnvByte(h, byte(q.G.Degree(q.Pivot))), byte(q.G.Degree(q.Pivot)>>8))
	}
	return Fingerprint{
		Shape:  fold(fnvInit("psi-shape-approx")),
		Exact:  fold(fnvInit("psi-exact-approx")),
		Approx: true,
	}
}

func labelMultiset(g *graph.Graph) []graph.Label {
	ls := make([]graph.Label, g.NumNodes())
	for u := range ls {
		ls[u] = g.Label(graph.NodeID(u))
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	return ls
}

// FNV-1a, inlined so fingerprinting allocates nothing beyond the codes.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvInit(salt string) uint64 { return fnvString(fnvOffset, salt) }

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fnvLabel(h uint64, l graph.Label) uint64 {
	return fnvByte(fnvByte(h, byte(l)), byte(uint16(l)>>8))
}

func fnvLabels(h uint64, ls []graph.Label) uint64 {
	for _, l := range ls {
		h = fnvLabel(h, l)
	}
	return h
}
