package fsm

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dyngraph"
	"repro/internal/graph"
	"repro/internal/signature"
)

// IncrementalMiner maintains the frequent-pattern set of an evolving
// graph across edge insertions, in the spirit of the SmartPSI authors'
// follow-up work on incremental FSM (IncGM+, TKDE 2017).
//
// The key observation: under pure insertions MNI support is monotone
// non-decreasing (new edges only add embeddings), so a frequent pattern
// can never become infrequent. The miner therefore keeps, besides the
// frequent set, the *fringe* — the negative border of minimal
// infrequent patterns — and on Refresh re-evaluates only the fringe:
// promoted patterns move to the frequent set and their extensions join
// the fringe. Support evaluation uses PSI with early exit, and the
// evolving graph's incrementally maintained signatures, so a Refresh
// after a small batch of insertions costs a fraction of a full re-mine.
type IncrementalMiner struct {
	d   *dyngraph.Graph
	cfg Config

	frequent map[string]Pattern
	fringe   map[string]Pattern
	// seededPairs tracks label pairs whose single-edge seed pattern has
	// been generated, so new label pairs arriving with fresh edges can
	// be seeded exactly once.
	seededPairs map[[2]graph.Label]bool
	// wasFreqLabel tracks labels that were frequent at some previous
	// refresh; when a label first becomes frequent, every known frequent
	// pattern gains extension candidates using it.
	wasFreqLabel map[graph.Label]bool

	// dirtyPairs are the label pairs of edges inserted through AddEdge
	// since the last refresh: a fringe pattern whose edges avoid every
	// dirty pair cannot have gained embeddings and is skipped. When the
	// graph was mutated behind the miner's back (edge counts disagree),
	// the filter is disabled for the next refresh.
	dirtyPairs    map[[2]graph.Label]bool
	trackedEdges  int64
	everRefreshed bool
}

// NewIncrementalMiner wraps an evolving graph. Call Refresh to compute
// the initial frequent set (equivalent to a full mine of the current
// state).
func NewIncrementalMiner(d *dyngraph.Graph, cfg Config) (*IncrementalMiner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &IncrementalMiner{
		d:            d,
		cfg:          cfg,
		frequent:     make(map[string]Pattern),
		fringe:       make(map[string]Pattern),
		seededPairs:  make(map[[2]graph.Label]bool),
		wasFreqLabel: make(map[graph.Label]bool),
		dirtyPairs:   make(map[[2]graph.Label]bool),
		trackedEdges: d.NumEdges(),
	}, nil
}

// Graph returns the underlying evolving graph. Prefer mutating through
// the miner's AddEdge so refreshes can skip unaffected fringe patterns;
// direct mutations are detected and handled with a full fringe re-check.
func (m *IncrementalMiner) Graph() *dyngraph.Graph { return m.d }

// AddEdge inserts an edge through the miner, recording its label pair
// so the next Refresh only re-evaluates fringe patterns that could have
// gained embeddings.
func (m *IncrementalMiner) AddEdge(u, v graph.NodeID) error {
	if err := m.d.AddEdge(u, v); err != nil {
		return err
	}
	a, b := m.d.Label(u), m.d.Label(v)
	if a > b {
		a, b = b, a
	}
	m.dirtyPairs[[2]graph.Label{a, b}] = true
	m.trackedEdges++
	return nil
}

// patternPairs returns the set of (sorted) edge label pairs of p.
func patternPairs(p Pattern) map[[2]graph.Label]bool {
	out := make(map[[2]graph.Label]bool)
	for u := graph.NodeID(0); int(u) < p.G.NumNodes(); u++ {
		for _, v := range p.G.Neighbors(u) {
			if u >= v {
				continue
			}
			a, b := p.G.Label(u), p.G.Label(v)
			if a > b {
				a, b = b, a
			}
			out[[2]graph.Label{a, b}] = true
		}
	}
	return out
}

// Frequent returns the currently known frequent patterns, sorted by
// canonical code. Valid as of the last Refresh.
func (m *IncrementalMiner) Frequent() []Pattern {
	out := make([]Pattern, 0, len(m.frequent))
	for _, p := range m.frequent {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// FringeSize reports the negative-border size (telemetry/testing).
func (m *IncrementalMiner) FringeSize() int { return len(m.fringe) }

// RefreshStats reports the work one Refresh performed.
type RefreshStats struct {
	Evaluated int // support evaluations run
	Promoted  int // fringe patterns that became frequent
	Elapsed   time.Duration
}

// Refresh brings the frequent set up to date with the graph's current
// state: it seeds patterns for new frequent label pairs, re-evaluates
// the fringe, and expands promotions level by level. Monotonicity means
// already-frequent patterns are never re-checked.
func (m *IncrementalMiner) Refresh() (RefreshStats, error) {
	start := time.Now()
	var stats RefreshStats

	snap, err := m.d.Snapshot()
	if err != nil {
		return stats, err
	}
	sigs, err := signature.FromDense(m.d.SignatureRows(), m.d.Width(), dyngraph.Depth)
	if err != nil {
		return stats, err
	}
	eval, err := NewPSISupport(snap, sigs)
	if err != nil {
		return stats, err
	}

	// Decide whether the dirty-pair filter is trustworthy: it is only
	// when every insertion since the last refresh went through AddEdge
	// and this is not the initial mine.
	useDirtyFilter := m.everRefreshed && m.d.NumEdges() == m.trackedEdges
	dirty := m.dirtyPairs
	m.dirtyPairs = make(map[[2]graph.Label]bool)
	m.trackedEdges = m.d.NumEdges()
	m.everRefreshed = true

	freqLabels := frequentNodeLabels(snap, m.cfg.Support)
	// fresh marks fringe entries added during this refresh (new seeds,
	// new-label extensions, promotion extensions): they have never been
	// evaluated and are exempt from the dirty-pair filter.
	fresh := make(map[string]bool)
	m.seedNewPairs(snap, freqLabels, fresh)

	// Labels frequent for the first time open new extension candidates
	// for every already-frequent pattern.
	var newLabels []graph.Label
	for _, l := range freqLabels {
		if !m.wasFreqLabel[l] {
			m.wasFreqLabel[l] = true
			newLabels = append(newLabels, l)
		}
	}
	if len(newLabels) > 0 && len(m.frequent) > 0 {
		for _, p := range m.frequent {
			if int(p.G.NumEdges()) >= m.cfg.MaxEdges {
				continue
			}
			for _, ext := range extensions(p, newLabels) {
				if _, known := m.frequent[ext.Code]; known {
					continue
				}
				if _, known := m.fringe[ext.Code]; known {
					continue
				}
				m.fringe[ext.Code] = ext
				fresh[ext.Code] = true
			}
		}
	}

	// Re-check the fringe until no promotions occur. The dirty-pair
	// filter permanently skips pre-existing fringe patterns that no new
	// edge can have affected; fresh entries are always checked.
	checked := make(map[string]bool)
	for {
		promotedAny := false
		// Deterministic iteration order.
		codes := make([]string, 0, len(m.fringe))
		for code := range m.fringe {
			codes = append(codes, code)
		}
		sort.Strings(codes)
		for _, code := range codes {
			p := m.fringe[code]
			if checked[code] {
				continue
			}
			if useDirtyFilter && !fresh[code] && !touchesDirty(p, dirty) {
				checked[code] = true // support cannot have changed
				continue
			}
			checked[code] = true
			frequent, _, err := eval.IsFrequent(p, m.cfg.Support, m.cfg.Deadline)
			stats.Evaluated++
			if err != nil {
				return stats, err
			}
			if !frequent {
				continue
			}
			delete(m.fringe, code)
			m.frequent[code] = p
			stats.Promoted++
			promotedAny = true
			// The promotion's extensions become fringe candidates.
			if int(p.G.NumEdges()) < m.cfg.MaxEdges {
				for _, ext := range extensions(p, freqLabels) {
					if _, known := m.frequent[ext.Code]; known {
						continue
					}
					if _, known := m.fringe[ext.Code]; known {
						continue
					}
					m.fringe[ext.Code] = ext
					fresh[ext.Code] = true
				}
			}
		}
		if !promotedAny {
			break
		}
	}
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// touchesDirty reports whether any edge-label pair of p received new
// edges since the last refresh.
func touchesDirty(p Pattern, dirty map[[2]graph.Label]bool) bool {
	if len(dirty) == 0 {
		return false
	}
	for pair := range patternPairs(p) {
		if dirty[pair] {
			return true
		}
	}
	return false
}

// seedNewPairs adds single-edge seed patterns for label pairs that now
// occur frequently enough to possibly be frequent and were never seeded,
// marking them fresh (always evaluated this refresh).
func (m *IncrementalMiner) seedNewPairs(snap *graph.Graph, freqLabels []graph.Label, fresh map[string]bool) {
	for _, p := range seedEdges(snap, freqLabels, m.cfg.Support) {
		a, b := p.G.Label(0), p.G.Label(1)
		if a > b {
			a, b = b, a
		}
		key := [2]graph.Label{a, b}
		if m.seededPairs[key] {
			continue
		}
		m.seededPairs[key] = true
		if _, known := m.frequent[p.Code]; known {
			continue
		}
		m.fringe[p.Code] = p
		fresh[p.Code] = true
	}
}

// MineIncrementalOnce is a convenience wrapper: full initial mine via
// the incremental machinery, returning the frequent set.
func MineIncrementalOnce(d *dyngraph.Graph, cfg Config) ([]Pattern, error) {
	m, err := NewIncrementalMiner(d, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := m.Refresh(); err != nil {
		return nil, fmt.Errorf("fsm: initial refresh: %w", err)
	}
	return m.Frequent(), nil
}
