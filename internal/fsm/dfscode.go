package fsm

import (
	"repro/internal/graph"
	"repro/internal/invariant"
)

// MinDFSCode returns the gSpan-style minimum DFS code of g: the
// lexicographically smallest serialization over all depth-first
// traversals (all roots, all child orders). Like CanonicalCode it is
// identical exactly for isomorphic labeled graphs, but it prunes by code
// prefix along DFS trees instead of enumerating node permutations, which
// is much faster on sparse patterns. The two implementations
// cross-validate each other in the tests.
//
// Code serialization, per discovered edge:
//
//	forward  edge u->v (v new):  0xF, u, lu, le, lv
//	backward edge v->w (w seen): 0xB, v, w, le
//
// using single bytes for ids (patterns are tiny) and two bytes per
// label. Backward edges of a newly discovered vertex are emitted
// immediately, in ascending ancestor order, which makes the code a pure
// function of the traversal's child-order choices.
func MinDFSCode(g *graph.Graph) string {
	code, _ := minDFSCode(g, 0) // budget 0 = unlimited: cannot exhaust
	return code
}

// minDFSCode is MinDFSCode with an optional step budget shared across
// all components (0 = unlimited). It reports ok=false when the budget
// ran out before the enumeration finished, in which case the returned
// code must be discarded (it may not be minimal).
func minDFSCode(g *graph.Graph, budget int) (string, bool) {
	n := g.NumNodes()
	if n == 0 {
		return "", true
	}
	remaining := budget
	// One DFS traversal covers one connected component; disconnected
	// graphs get the sorted concatenation of per-component codes (the
	// component partition is isomorphism-invariant).
	assigned := make([]bool, n)
	var codes []string
	for start := graph.NodeID(0); int(start) < n; start++ {
		if assigned[start] {
			continue
		}
		if budget > 0 && remaining <= 0 {
			return "", false
		}
		comp := graph.ConnectedComponent(g, start)
		for _, u := range comp {
			assigned[u] = true
		}
		sub := g
		roots := comp
		if len(comp) < n {
			var err error
			sub, _, err = graph.InducedSubgraph(g, comp)
			invariant.Must(err) // components of a valid graph always induce
			roots = make([]graph.NodeID, sub.NumNodes())
			for i := range roots {
				roots[i] = graph.NodeID(i)
			}
		}
		e := &dfsEnc{g: sub, dfsID: make([]int8, sub.NumNodes()), budget: remaining}
		for v := range e.dfsID {
			e.dfsID[v] = -1
		}
		for _, root := range roots {
			e.tryRoot(root)
		}
		if e.exhausted {
			return "", false
		}
		if budget > 0 {
			remaining -= e.steps
		}
		codes = append(codes, string(e.best))
		if len(comp) == n {
			break
		}
	}
	if len(codes) == 1 {
		return codes[0], true
	}
	sortStrings(codes)
	out := make([]byte, 0, 64)
	for _, c := range codes {
		out = append(out, byte(len(c)>>8), byte(len(c)))
		out = append(out, c...)
	}
	return string(out), true
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

type dfsEnc struct {
	g     *graph.Graph
	dfsID []int8
	stack []graph.NodeID
	cur   []byte
	best  []byte
	next  int8
	// budget bounds the number of recurse() steps; 0 means unlimited.
	// When it runs out, exhausted is set and best must not be trusted:
	// the enumeration may have skipped the minimal traversal.
	budget    int
	steps     int
	exhausted bool
}

func appendLabel(buf []byte, l graph.Label) []byte {
	return append(buf, byte(l), byte(uint16(l)>>8))
}

// worse reports whether cur is already strictly worse than best.
func (e *dfsEnc) worse() bool {
	if e.best == nil {
		return false
	}
	n := len(e.cur)
	if n > len(e.best) {
		n = len(e.best)
	}
	for i := 0; i < n; i++ {
		if e.cur[i] != e.best[i] {
			return e.cur[i] > e.best[i]
		}
	}
	// cur is a prefix of best (or equal): cannot prune yet.
	return false
}

func (e *dfsEnc) tryRoot(root graph.NodeID) {
	if e.exhausted {
		return
	}
	e.cur = e.cur[:0]
	e.cur = appendLabel(e.cur, e.g.Label(root))
	if e.worse() {
		return
	}
	e.dfsID[root] = 0
	e.next = 1
	e.stack = append(e.stack[:0], root)
	e.recurse()
	e.dfsID[root] = -1
}

// recurse explores all DFS child orders from the current stack state.
func (e *dfsEnc) recurse() {
	if e.budget > 0 {
		e.steps++
		if e.steps > e.budget {
			e.exhausted = true
		}
	}
	if e.exhausted {
		return
	}
	if len(e.stack) == 0 {
		if int(e.next) == e.g.NumNodes() {
			if e.best == nil || lessBytes(e.cur, e.best) {
				e.best = append(e.best[:0], e.cur...)
			}
		}
		return
	}
	u := e.stack[len(e.stack)-1]

	// Collect u's unvisited neighbors; if none, backtrack.
	var hasUnvisited bool
	for _, w := range e.g.Neighbors(u) {
		if e.dfsID[w] < 0 {
			hasUnvisited = true
			break
		}
	}
	if !hasUnvisited {
		e.stack = e.stack[:len(e.stack)-1]
		e.recurse()
		e.stack = append(e.stack, u)
		return
	}

	nbrs := e.g.Neighbors(u)
	for i, v := range nbrs {
		if e.dfsID[v] >= 0 {
			continue
		}
		mark := len(e.cur)
		// Forward edge u -> v.
		e.cur = append(e.cur, 0xF, byte(e.dfsID[u]))
		e.cur = appendLabel(e.cur, e.g.Label(u))
		e.cur = appendLabel(e.cur, e.g.EdgeLabelAt(u, i)+1) // +1: NoLabel becomes 0
		e.cur = appendLabel(e.cur, e.g.Label(v))
		e.dfsID[v] = e.next
		e.next++
		// Backward edges from v to already-discovered ancestors
		// (ascending), excluding the tree edge to u.
		vn := e.g.Neighbors(v)
		type backEdge struct {
			to int8
			el graph.Label
		}
		var backs []backEdge
		for j, w := range vn {
			if w == u || e.dfsID[w] < 0 {
				continue
			}
			backs = append(backs, backEdge{to: e.dfsID[w], el: e.g.EdgeLabelAt(v, j)})
		}
		for a := 1; a < len(backs); a++ { // tiny insertion sort by ancestor id
			for b := a; b > 0 && backs[b].to < backs[b-1].to; b-- {
				backs[b], backs[b-1] = backs[b-1], backs[b]
			}
		}
		for _, be := range backs {
			e.cur = append(e.cur, 0xB, byte(e.dfsID[v]), byte(be.to))
			e.cur = appendLabel(e.cur, be.el+1)
		}
		if !e.worse() {
			e.stack = append(e.stack, v)
			e.recurse()
			e.stack = e.stack[:len(e.stack)-1]
		}
		e.next--
		e.dfsID[v] = -1
		e.cur = e.cur[:mark]
	}
}

func lessBytes(a, b []byte) bool { return compareBytes(a, b) < 0 }
