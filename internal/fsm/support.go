package fsm

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/psi"
	"repro/internal/signature"
)

// observeSupport publishes one support evaluation's outcome into the
// obs registry. No-op when collection is disabled.
func observeSupport(start time.Time, frequent bool, candidateEvals int64) {
	if !obs.Enabled() {
		return
	}
	obs.FSMSupportCalls.Inc()
	if frequent {
		obs.FSMSupportFrequent.Inc()
	}
	if candidateEvals > 0 {
		obs.FSMSupportEvals.Add(candidateEvals)
	}
	obs.FSMSupportSeconds.Observe(time.Since(start).Seconds())
}

// SupportEvaluator decides whether a pattern's MNI support reaches the
// threshold. MNI (minimum image based) support is the standard
// anti-monotone single-graph measure: the minimum, over pattern nodes v,
// of the number of distinct data nodes bound to v across all embeddings.
type SupportEvaluator interface {
	// IsFrequent reports whether pattern p has MNI support >= threshold,
	// along with the exact support when cheaply available (-1 when the
	// evaluator short-circuited).
	IsFrequent(p Pattern, threshold int, deadline time.Time) (frequent bool, support int, err error)
	Name() string
}

// IsoSupport evaluates MNI support the traditional way: enumerate
// embeddings with a full subgraph-isomorphism engine and collect the
// distinct bindings per pattern node. It stops enumerating as soon as
// every pattern node has reached the threshold.
type IsoSupport struct {
	g *graph.Graph
}

// NewIsoSupport returns the full-enumeration evaluator over g.
func NewIsoSupport(g *graph.Graph) *IsoSupport { return &IsoSupport{g: g} }

// Name implements SupportEvaluator.
func (s *IsoSupport) Name() string { return "subgraph-iso" }

// IsFrequent implements SupportEvaluator.
func (s *IsoSupport) IsFrequent(p Pattern, threshold int, deadline time.Time) (bool, int, error) {
	start := time.Now()
	eng, err := match.NewBacktracking(s.g, p.G)
	if err != nil {
		return false, 0, err
	}
	n := p.G.NumNodes()
	images := make([]map[graph.NodeID]struct{}, n)
	for i := range images {
		images[i] = make(map[graph.NodeID]struct{})
	}
	satisfied := 0
	err = eng.Enumerate(match.Budget{Deadline: deadline}, func(m []graph.NodeID) bool {
		for v := 0; v < n; v++ {
			set := images[v]
			if len(set) >= threshold {
				continue
			}
			if _, ok := set[m[v]]; !ok {
				set[m[v]] = struct{}{}
				if len(set) == threshold {
					satisfied++
				}
			}
		}
		return satisfied < n // stop once every node reached the threshold
	})
	if err != nil {
		return false, 0, err
	}
	support := -1
	if satisfied < n {
		support = len(images[0])
		for _, set := range images[1:] {
			if len(set) < support {
				support = len(set)
			}
		}
		observeSupport(start, false, 0)
		return false, support, nil
	}
	observeSupport(start, true, 0)
	return true, -1, nil
}

// PSISupport evaluates MNI support with pivoted subgraph isomorphism:
// one PSI pass per pattern node, stopping each pass as soon as the
// threshold is reached (or provably unreachable). Signatures for the
// data graph are shared across all patterns.
type PSISupport struct {
	g    *graph.Graph
	sigs *signature.Signatures
}

// NewPSISupport returns the PSI evaluator over g, reusing precomputed
// data signatures (depth signature.DefaultDepth, matrix method, width =
// g.NumLabels()).
func NewPSISupport(g *graph.Graph, sigs *signature.Signatures) (*PSISupport, error) {
	if sigs.NumNodes() != g.NumNodes() {
		return nil, fmt.Errorf("fsm: signatures cover %d nodes, graph has %d", sigs.NumNodes(), g.NumNodes())
	}
	return &PSISupport{g: g, sigs: sigs}, nil
}

// Name implements SupportEvaluator.
func (s *PSISupport) Name() string { return "psi" }

// IsFrequent implements SupportEvaluator.
func (s *PSISupport) IsFrequent(p Pattern, threshold int, deadline time.Time) (bool, int, error) {
	start := time.Now()
	qSigs, err := signature.Build(p.G, s.sigs.Depth(), s.sigs.Width(), signature.Matrix)
	if err != nil {
		return false, 0, err
	}
	minSupport := -1
	var evals int64
	st := psi.NewState(p.G.NumNodes())
	for v := graph.NodeID(0); int(v) < p.G.NumNodes(); v++ {
		q := graph.Query{G: p.G, Pivot: v}
		ev, err := psi.NewEvaluator(s.g, q, s.sigs, qSigs)
		if err != nil {
			return false, 0, err
		}
		c, err := plan.Compile(q, plan.Heuristic(q, s.g))
		if err != nil {
			return false, 0, err
		}
		candidates := s.g.NodesWithLabel(p.G.Label(v))
		count := 0
		for i, u := range candidates {
			// Unreachable even if every remaining candidate matches?
			if count+(len(candidates)-i) < threshold {
				break
			}
			evals++
			ok, err := ev.Evaluate(st, c, u, psi.Pessimistic, psi.Limits{Deadline: deadline})
			if err != nil {
				psi.PublishStats(st.Stats())
				return false, 0, err
			}
			if ok {
				count++
				if count >= threshold {
					break // this pivot satisfies MNI; next pattern node
				}
			}
		}
		if count < threshold {
			psi.PublishStats(st.Stats())
			observeSupport(start, false, evals)
			return false, count, nil // MNI is the min: pattern infrequent
		}
		if minSupport < 0 || count < minSupport {
			minSupport = count
		}
	}
	psi.PublishStats(st.Stats())
	observeSupport(start, true, evals)
	return true, -1, nil
}
