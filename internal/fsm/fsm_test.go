package fsm

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graph/graphtest"
	"repro/internal/signature"
)

func psiEval(t testing.TB, g *graph.Graph) *PSISupport {
	t.Helper()
	sigs := signature.MustBuild(g, signature.DefaultDepth, g.NumLabels(), signature.Matrix)
	ev, err := NewPSISupport(g, sigs)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func TestCanonicalCodeIsomorphismInvariant(t *testing.T) {
	// The same triangle built with different node orders.
	build := func(order [3]graph.Label, edges [][2]graph.NodeID) string {
		b := graph.NewBuilder(3, 3)
		for _, l := range order {
			b.AddNode(l)
		}
		for _, e := range edges {
			if err := b.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
		return CanonicalCode(b.MustBuild())
	}
	c1 := build([3]graph.Label{0, 1, 2}, [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}})
	c2 := build([3]graph.Label{2, 0, 1}, [][2]graph.NodeID{{1, 2}, {0, 2}, {0, 1}})
	if c1 != c2 {
		t.Error("isomorphic triangles got different codes")
	}
	// A path A-B-C is not a triangle.
	b := graph.NewBuilder(3, 2)
	b.AddNode(0)
	b.AddNode(1)
	b.AddNode(2)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if CanonicalCode(b.MustBuild()) == c1 {
		t.Error("path and triangle share a code")
	}
}

func TestCanonicalCodeRandomPermutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(6, 9, 3, seed)
		code := CanonicalCode(g)
		// Rebuild with a random node permutation.
		perm := rng.Perm(g.NumNodes())
		b := graph.NewBuilder(g.NumNodes(), int(g.NumEdges()))
		inv := make([]graph.NodeID, g.NumNodes())
		for newID, oldID := range perm {
			inv[oldID] = graph.NodeID(newID)
		}
		for newID := range perm {
			b.AddNode(g.Label(graph.NodeID(perm[newID])))
		}
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			for _, v := range g.Neighbors(u) {
				if u < v {
					if err := b.AddEdge(inv[u], inv[v]); err != nil {
						return false
					}
				}
			}
		}
		return CanonicalCode(b.MustBuild()) == code
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSupportEvaluatorsAgreeFigure1(t *testing.T) {
	g := graphtest.Figure1Data()
	iso := NewIsoSupport(g)
	psiE := psiEval(t, g)
	// The A-B-C triangle pattern: bindings per node — A: {u1,u6},
	// B: {u2,u5}, C: {u3,u4} — so MNI support is 2.
	p := NewPattern(graphtest.Figure1Query().G)
	for _, threshold := range []int{1, 2} {
		fIso, _, err := iso.IsFrequent(p, threshold, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		fPsi, _, err := psiE.IsFrequent(p, threshold, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if !fIso || !fPsi {
			t.Errorf("threshold %d: iso=%v psi=%v, want both true", threshold, fIso, fPsi)
		}
	}
	fIso, sIso, err := iso.IsFrequent(p, 3, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	fPsi, sPsi, err := psiE.IsFrequent(p, 3, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if fIso || fPsi {
		t.Errorf("threshold 3: iso=%v psi=%v, want both false", fIso, fPsi)
	}
	if sIso != 2 {
		t.Errorf("iso support = %d, want 2", sIso)
	}
	if sPsi < 0 || sPsi > 2 {
		t.Errorf("psi early-exit support = %d, want in [0,2]", sPsi)
	}
}

// TestMinersAgree: mining with iso-based and PSI-based support must find
// the same frequent pattern set.
func TestMinersAgree(t *testing.T) {
	f := func(seed int64) bool {
		g := graphtest.Random(40, 90, 3, seed)
		cfg := Config{Support: 4, MaxEdges: 3, Workers: 2}
		rIso, err := Mine(g, NewIsoSupport(g), cfg)
		if err != nil {
			return false
		}
		rPsi, err := Mine(g, psiEval(t, g), cfg)
		if err != nil {
			return false
		}
		codesIso := patternCodes(rIso.Frequent)
		codesPsi := patternCodes(rPsi.Frequent)
		if len(codesIso) != len(codesPsi) {
			t.Logf("seed %d: iso %d patterns, psi %d", seed, len(codesIso), len(codesPsi))
			return false
		}
		for i := range codesIso {
			if codesIso[i] != codesPsi[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func patternCodes(ps []Pattern) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Code
	}
	sort.Strings(out)
	return out
}

func TestMineOnCora(t *testing.T) {
	spec, err := gen.DefaultSpec("cora")
	if err != nil {
		t.Fatal(err)
	}
	g := gen.MustGenerate(spec)
	cfg := Config{Support: 400, MaxEdges: 2, Workers: 4}
	res, err := Mine(g, psiEval(t, g), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated == 0 {
		t.Error("no candidates evaluated")
	}
	if len(res.Frequent) == 0 {
		t.Error("no frequent patterns at a low threshold on a dense-labeled graph")
	}
	// Anti-monotonicity: every frequent 2-edge pattern's sub-edges are
	// frequent (they were the seeds, so this holds by construction, but
	// verify the supports do not contradict it).
	for _, p := range res.Frequent {
		if int(p.G.NumEdges()) > cfg.MaxEdges {
			t.Errorf("pattern %v exceeds MaxEdges", p)
		}
	}
}

func TestMineWorkerCountsAgree(t *testing.T) {
	g := graphtest.Random(50, 120, 3, 77)
	cfg1 := Config{Support: 4, MaxEdges: 3, Workers: 1}
	cfg4 := Config{Support: 4, MaxEdges: 3, Workers: 4}
	r1, err := Mine(g, NewIsoSupport(g), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Mine(g, NewIsoSupport(g), cfg4)
	if err != nil {
		t.Fatal(err)
	}
	c1, c4 := patternCodes(r1.Frequent), patternCodes(r4.Frequent)
	if len(c1) != len(c4) {
		t.Fatalf("worker counts disagree: %d vs %d patterns", len(c1), len(c4))
	}
	for i := range c1 {
		if c1[i] != c4[i] {
			t.Fatal("worker counts found different patterns")
		}
	}
}

func TestMineConfigValidation(t *testing.T) {
	g := graphtest.Figure1Data()
	bad := []Config{
		{Support: 0, MaxEdges: 1, Workers: 1},
		{Support: 1, MaxEdges: 0, Workers: 1},
		{Support: 1, MaxEdges: 1, Workers: 0},
	}
	for i, cfg := range bad {
		if _, err := Mine(g, NewIsoSupport(g), cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestMineDeadline(t *testing.T) {
	g := graphtest.Random(80, 300, 2, 5)
	cfg := Config{Support: 2, MaxEdges: 5, Workers: 2, Deadline: time.Now().Add(time.Millisecond)}
	_, err := Mine(g, NewIsoSupport(g), cfg)
	if err == nil {
		t.Skip("machine too fast for a 1ms deadline; nothing to assert")
	}
}

func TestPSISupportConstruction(t *testing.T) {
	g := graphtest.Figure1Data()
	small := signature.MustBuild(graphtest.Figure1Query().G, 2, 3, signature.Matrix)
	if _, err := NewPSISupport(g, small); err == nil {
		t.Error("mismatched signatures accepted")
	}
}

func TestEvaluatorNames(t *testing.T) {
	g := graphtest.Figure1Data()
	if NewIsoSupport(g).Name() != "subgraph-iso" {
		t.Error("iso name")
	}
	if psiEval(t, g).Name() != "psi" {
		t.Error("psi name")
	}
}

func TestPatternString(t *testing.T) {
	p := NewPattern(graphtest.Figure1Query().G)
	if p.String() == "" {
		t.Error("empty pattern string")
	}
	if CanonicalCode(graph.NewBuilder(0, 0).MustBuild()) != "" {
		t.Error("empty graph code should be empty")
	}
}
