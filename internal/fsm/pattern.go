// Package fsm is the frequent-subgraph-mining substrate of the paper's
// Section 5.5 experiment: a ScaleMine-style single-graph miner with MNI
// (minimum-image-based) support, level-wise candidate generation with
// canonical-form deduplication, and a pluggable support evaluator — the
// traditional full-enumeration subgraph isomorphism, or PSI with
// early-stop at the support threshold (the paper's replacement). A
// worker pool parallelizes candidate evaluation, standing in for
// ScaleMine's distributed task parallelism.
package fsm

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// Pattern is a candidate subgraph with its canonical code.
type Pattern struct {
	G    *graph.Graph
	Code string
}

// NewPattern wraps g with its canonical code. The gSpan-style minimum
// DFS code is used in production (≈25x faster on sparse patterns); the
// permutation-based CanonicalCode cross-validates it in the tests.
func NewPattern(g *graph.Graph) Pattern {
	return Pattern{G: g, Code: MinDFSCode(g)}
}

// String renders the pattern compactly for logs and tests.
func (p Pattern) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "P(n=%d,e=%d)[", p.G.NumNodes(), p.G.NumEdges())
	for u := graph.NodeID(0); int(u) < p.G.NumNodes(); u++ {
		if u > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d", p.G.Label(u))
	}
	sb.WriteByte(']')
	return sb.String()
}

// CanonicalCode returns a string that is identical for isomorphic
// labeled graphs and different for non-isomorphic ones: the
// lexicographically smallest (label sequence, adjacency matrix, edge
// labels) encoding over all node permutations. Exponential in pattern
// size, fine for the <=8-node patterns mining produces.
func CanonicalCode(g *graph.Graph) string {
	n := g.NumNodes()
	if n == 0 {
		return ""
	}
	perm := make([]graph.NodeID, n)
	used := make([]bool, n)
	var best []byte
	cur := make([]byte, 0, n*(n+3)/2)

	var rec func(depth int, cur []byte)
	rec = func(depth int, cur []byte) {
		if best != nil && compareBytes(cur, best[:min(len(cur), len(best))]) > 0 {
			return // prefix already worse than the best complete code
		}
		if depth == n {
			if best == nil || compareBytes(cur, best) < 0 {
				best = append(best[:0], cur...)
			}
			return
		}
		for v := graph.NodeID(0); int(v) < n; v++ {
			if used[v] {
				continue
			}
			perm[depth] = v
			used[v] = true
			ext := cur
			ext = append(ext, byte(g.Label(v)), byte(g.Label(v)>>8))
			for i := 0; i < depth; i++ {
				el, ok := g.EdgeLabel(v, perm[i])
				switch {
				case !ok:
					ext = append(ext, 0)
				case el == graph.NoLabel:
					ext = append(ext, 1)
				default:
					ext = append(ext, 2, byte(el), byte(el>>8))
				}
			}
			rec(depth+1, ext)
			used[v] = false
		}
	}
	rec(0, cur)
	return string(best)
}

func compareBytes(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// extendPattern returns every pattern obtained from p by (a) attaching a
// new node with the given label to node at, or (b) closing an edge
// between two existing non-adjacent nodes. Callers deduplicate by
// canonical code.
func extensions(p Pattern, labels []graph.Label) []Pattern {
	var out []Pattern
	n := p.G.NumNodes()
	// (a) grow by one node.
	for at := graph.NodeID(0); int(at) < n; at++ {
		for _, l := range labels {
			b := clonePatternBuilder(p.G)
			nn := b.AddNode(l)
			if err := b.AddEdge(at, nn); err != nil {
				continue
			}
			ng, err := b.Build()
			invariant.Must(err) // one-node extension of a valid graph cannot fail
			out = append(out, NewPattern(ng))
		}
	}
	// (b) close an edge.
	for u := graph.NodeID(0); int(u) < n; u++ {
		for v := u + 1; int(v) < n; v++ {
			if p.G.HasEdge(u, v) {
				continue
			}
			b := clonePatternBuilder(p.G)
			if err := b.AddEdge(u, v); err != nil {
				continue
			}
			ng, err := b.Build()
			invariant.Must(err) // edge closure of a valid graph cannot fail
			out = append(out, NewPattern(ng))
		}
	}
	return out
}

func clonePatternBuilder(g *graph.Graph) *graph.Builder {
	b := graph.NewBuilder(g.NumNodes()+1, int(g.NumEdges())+1)
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		b.AddNode(g.Label(u))
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for i, v := range g.Neighbors(u) {
			if u < v {
				err := b.AddLabeledEdge(u, v, g.EdgeLabelAt(u, i))
				invariant.Must(err) // clone of a valid graph cannot fail
			}
		}
	}
	return b
}
