package fsm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

// permutedQuery rebuilds q's graph under a random node permutation and
// maps the pivot along, producing an isomorphic pivoted query.
func permutedQuery(q graph.Query, rng *rand.Rand) graph.Query {
	g := q.G
	perm := rng.Perm(g.NumNodes())
	inv := make([]graph.NodeID, g.NumNodes())
	for newID, oldID := range perm {
		inv[oldID] = graph.NodeID(newID)
	}
	b := graph.NewBuilder(g.NumNodes(), int(g.NumEdges()))
	for newID := range perm {
		b.AddNode(g.Label(graph.NodeID(perm[newID])))
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for i, v := range g.Neighbors(u) {
			if u < v {
				if err := b.AddLabeledEdge(inv[u], inv[v], g.EdgeLabelAt(u, i)); err != nil {
					panic(err)
				}
			}
		}
	}
	return graph.Query{G: b.MustBuild(), Pivot: inv[q.Pivot]}
}

// TestPivotFingerprintPermutationInvariant: relabeling the nodes of a
// pivoted query (pivot mapped along) never changes either hash — the
// whole point of hashing canonical codes instead of adjacency.
func TestPivotFingerprintPermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(7, 11, 3, seed)
		q := graph.Query{G: g, Pivot: graph.NodeID(rng.Intn(g.NumNodes()))}
		a := PivotFingerprint(q, 0)
		b := PivotFingerprint(permutedQuery(q, rng), 0)
		return a == b && !a.Approx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPivotFingerprintPivotOrbits: on an unlabeled path a-b-c the two
// endpoints are one pivot orbit and the midpoint another. Shape ignores
// the orbit (same graph, same pivot label); Exact must not.
func TestPivotFingerprintPivotOrbits(t *testing.T) {
	b := graph.NewBuilder(3, 2)
	for i := 0; i < 3; i++ {
		b.AddNode(0)
	}
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	path := b.MustBuild()

	end0 := PivotFingerprint(graph.Query{G: path, Pivot: 0}, 0)
	mid := PivotFingerprint(graph.Query{G: path, Pivot: 1}, 0)
	end2 := PivotFingerprint(graph.Query{G: path, Pivot: 2}, 0)

	if end0.Shape != mid.Shape || mid.Shape != end2.Shape {
		t.Fatalf("Shape must ignore the pivot orbit: %016x / %016x / %016x",
			end0.Shape, mid.Shape, end2.Shape)
	}
	if end0.Exact != end2.Exact {
		t.Errorf("both endpoints are one orbit, Exact %016x != %016x", end0.Exact, end2.Exact)
	}
	if end0.Exact == mid.Exact {
		t.Errorf("endpoint and midpoint are different orbits, Exact collided at %016x", mid.Exact)
	}
}

// TestPivotFingerprintPivotLabelSplitsShape: the same underlying graph
// with the pivot on differently-labeled nodes must land in different
// /queryz groups — a pivoted query's answers depend on the pivot label.
func TestPivotFingerprintPivotLabelSplitsShape(t *testing.T) {
	b := graph.NewBuilder(2, 1)
	b.AddNode(0)
	b.AddNode(1)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	p0 := PivotFingerprint(graph.Query{G: g, Pivot: 0}, 0)
	p1 := PivotFingerprint(graph.Query{G: g, Pivot: 1}, 0)
	if p0.Shape == p1.Shape {
		t.Errorf("pivot labels 0 and 1 share Shape %016x", p0.Shape)
	}
}

// TestPivotFingerprintBudgetFallback: with a starvation budget the
// fingerprint degrades to the structural hash — marked Approx, still
// deterministic and permutation-invariant, and still usable as a key.
func TestPivotFingerprintBudgetFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graphtest.Random(8, 14, 2, 7)
	q := graph.Query{G: g, Pivot: 2}
	a := PivotFingerprint(q, 1)
	if !a.Approx {
		t.Fatalf("budget 1 on an 8-node graph must exhaust, got exact fingerprint")
	}
	if a != PivotFingerprint(q, 1) {
		t.Error("fallback fingerprint is not deterministic")
	}
	if b := PivotFingerprint(permutedQuery(q, rng), 1); a != b {
		t.Errorf("fallback fingerprint not permutation-invariant: %016x vs %016x", a.Shape, b.Shape)
	}
	// The same query under a generous budget must not be Approx, and the
	// two regimes must not share hash values (different salts).
	full := PivotFingerprint(q, 0)
	if full.Approx {
		t.Fatal("default budget exhausted on a tiny graph")
	}
	if full.Shape == a.Shape {
		t.Error("approx and exact fingerprints collided")
	}
}

// TestPivotFingerprintDisconnectedQuery: a pivot in one component of a
// disconnected query still fingerprints (the pivot-rooted code is over
// the pivot's component; the shape code covers all components).
func TestPivotFingerprintDisconnectedQuery(t *testing.T) {
	b := graph.NewBuilder(4, 2)
	for i := 0; i < 4; i++ {
		b.AddNode(0)
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	fp := PivotFingerprint(graph.Query{G: g, Pivot: 2}, 0)
	if fp.Approx {
		t.Fatal("disconnected query unexpectedly hit the fallback")
	}
	// Both edges are symmetric, so every pivot is in the same orbit.
	if other := PivotFingerprint(graph.Query{G: g, Pivot: 0}, 0); other != fp {
		t.Errorf("symmetric pivots disagree: %+v vs %+v", fp, other)
	}
}

// TestFingerprintString: the rendered key is the 16-hex-digit Shape —
// what /queryz, /profilez?fingerprint= and the decision log all match
// on.
func TestFingerprintString(t *testing.T) {
	fp := Fingerprint{Shape: 0xabc}
	if got, want := fp.String(), "0000000000000abc"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
