package fsm

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

func TestExtensionsGrowByOne(t *testing.T) {
	p := NewPattern(graphtest.Figure1Query().G) // triangle A-B-C
	labels := []graph.Label{0, 1, 2}
	exts := extensions(p, labels)
	if len(exts) == 0 {
		t.Fatal("no extensions")
	}
	for _, e := range exts {
		if e.G.NumEdges() != p.G.NumEdges()+1 {
			t.Errorf("extension %v has %d edges, want %d", e, e.G.NumEdges(), p.G.NumEdges()+1)
		}
		nodes := e.G.NumNodes()
		if nodes != p.G.NumNodes() && nodes != p.G.NumNodes()+1 {
			t.Errorf("extension %v has %d nodes", e, nodes)
		}
	}
	// The triangle has no closable non-edges, so every extension grows a
	// node: 3 attach points x 3 labels = 9.
	if len(exts) != 9 {
		t.Errorf("triangle extensions = %d, want 9", len(exts))
	}
}

func TestExtensionsCloseEdges(t *testing.T) {
	// Path A-B-C: one closable pair (ends), plus node growth.
	b := graph.NewBuilder(3, 2)
	b.AddNode(0)
	b.AddNode(1)
	b.AddNode(2)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	p := NewPattern(b.MustBuild())
	exts := extensions(p, []graph.Label{0})
	// 3 attach points x 1 label + 1 closing edge = 4.
	if len(exts) != 4 {
		t.Errorf("path extensions = %d, want 4", len(exts))
	}
	closures := 0
	for _, e := range exts {
		if e.G.NumNodes() == p.G.NumNodes() {
			closures++
			if !e.G.HasEdge(0, 2) {
				t.Error("closure did not add the missing edge")
			}
		}
	}
	if closures != 1 {
		t.Errorf("closures = %d, want 1", closures)
	}
}

func TestExtensionsDedupByCode(t *testing.T) {
	// A single-label star: attaching the same-label node to any leaf is
	// isomorphic; canonical codes must collapse them.
	b := graph.NewBuilder(3, 2)
	for i := 0; i < 3; i++ {
		b.AddNode(0)
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	p := NewPattern(b.MustBuild())
	exts := extensions(p, []graph.Label{0})
	codes := map[string]int{}
	for _, e := range exts {
		codes[e.Code]++
	}
	// Distinct outcomes: attach to center (K1,3), attach to a leaf
	// (path of 4), close leaf-leaf (triangle). Raw extensions: 3 grows +
	// 1 closure = 4; attach-to-leaf appears twice with one code.
	if len(exts) != 4 {
		t.Errorf("raw extensions = %d, want 4", len(exts))
	}
	if len(codes) != 3 {
		t.Errorf("distinct codes = %d, want 3 (%v)", len(codes), codes)
	}
}
