package fsm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dyngraph"
	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

// randomDyn builds an evolving graph with n nodes over `labels` labels.
func randomDyn(t testing.TB, n, labels int, seed int64) (*dyngraph.Graph, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := dyngraph.New(labels)
	for i := 0; i < n; i++ {
		if _, err := d.AddNode(graph.Label(rng.Intn(labels))); err != nil {
			t.Fatal(err)
		}
	}
	return d, rng
}

func addRandomEdges(t testing.TB, d *dyngraph.Graph, count int, rng *rand.Rand) {
	t.Helper()
	added := 0
	for tries := 0; tries < 50*count && added < count; tries++ {
		u := graph.NodeID(rng.Intn(d.NumNodes()))
		v := graph.NodeID(rng.Intn(d.NumNodes()))
		if u == v || d.HasEdge(u, v) {
			continue
		}
		if err := d.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
		added++
	}
}

// fullMineCodes mines the snapshot from scratch and returns the sorted
// canonical codes (the ground truth the incremental miner must match).
func fullMineCodes(t testing.TB, d *dyngraph.Graph, cfg Config) []string {
	t.Helper()
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(snap, NewIsoSupport(snap), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return patternCodes(res.Frequent)
}

func TestIncrementalMatchesFullMine(t *testing.T) {
	d, rng := randomDyn(t, 40, 3, 11)
	addRandomEdges(t, d, 70, rng)
	cfg := Config{Support: 4, MaxEdges: 3, Workers: 1}
	m, err := NewIncrementalMiner(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 4; batch++ {
		if batch > 0 {
			addRandomEdges(t, d, 15, rng)
		}
		stats, err := m.Refresh()
		if err != nil {
			t.Fatal(err)
		}
		got := patternCodes(m.Frequent())
		want := fullMineCodes(t, d, cfg)
		if len(got) != len(want) {
			t.Fatalf("batch %d: incremental %d patterns, full %d (stats %+v)",
				batch, len(got), len(want), stats)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch %d: pattern sets differ at %d", batch, i)
			}
		}
	}
}

// TestIncrementalProperty: across random graphs and insertion batches
// the incremental miner always agrees with a full re-mine.
func TestIncrementalProperty(t *testing.T) {
	f := func(seed int64) bool {
		d, rng := randomDyn(t, 25, 2, seed)
		addRandomEdges(t, d, 35, rng)
		cfg := Config{Support: 3, MaxEdges: 2, Workers: 1}
		m, err := NewIncrementalMiner(d, cfg)
		if err != nil {
			return false
		}
		for batch := 0; batch < 3; batch++ {
			if batch > 0 {
				addRandomEdges(t, d, 10, rng)
			}
			if _, err := m.Refresh(); err != nil {
				return false
			}
			got := patternCodes(m.Frequent())
			want := fullMineCodes(t, d, cfg)
			if len(got) != len(want) {
				t.Logf("seed %d batch %d: %d vs %d patterns", seed, batch, len(got), len(want))
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalDoesLessWork: after a refresh with no insertions, the
// miner evaluates only the fringe, not the frequent set.
func TestIncrementalWorkShrinks(t *testing.T) {
	d, rng := randomDyn(t, 50, 3, 21)
	addRandomEdges(t, d, 120, rng)
	cfg := Config{Support: 4, MaxEdges: 3, Workers: 1}
	m, err := NewIncrementalMiner(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.Refresh() // nothing changed
	if err != nil {
		t.Fatal(err)
	}
	if second.Promoted != 0 {
		t.Errorf("no-op refresh promoted %d patterns", second.Promoted)
	}
	// With the dirty-pair filter a no-op refresh evaluates nothing.
	if second.Evaluated != 0 {
		t.Errorf("no-op refresh evaluated %d patterns, want 0", second.Evaluated)
	}
	_ = first
	// Mutating through the miner re-checks only affected patterns.
	var added bool
	for tries := 0; tries < 500 && !added; tries++ {
		u := graph.NodeID(rng.Intn(d.NumNodes()))
		v := graph.NodeID(rng.Intn(d.NumNodes()))
		if u != v && !d.HasEdge(u, v) {
			if err := m.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
			added = true
		}
	}
	if !added {
		t.Skip("graph saturated")
	}
	third, err := m.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if first.Evaluated > 0 && third.Evaluated >= first.Evaluated {
		t.Errorf("single-edge refresh evaluated %d >= initial %d", third.Evaluated, first.Evaluated)
	}
	if m.FringeSize() == 0 && len(m.Frequent()) == 0 {
		t.Error("miner learned nothing at all")
	}
	if m.Graph() != d {
		t.Error("Graph accessor wrong")
	}
}

// TestIncrementalMonotone: frequent patterns never disappear across
// insertion batches.
func TestIncrementalMonotone(t *testing.T) {
	d, rng := randomDyn(t, 30, 2, 33)
	addRandomEdges(t, d, 50, rng)
	cfg := Config{Support: 3, MaxEdges: 2, Workers: 1}
	m, err := NewIncrementalMiner(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refresh(); err != nil {
		t.Fatal(err)
	}
	prev := map[string]bool{}
	for _, p := range m.Frequent() {
		prev[p.Code] = true
	}
	for batch := 0; batch < 3; batch++ {
		addRandomEdges(t, d, 12, rng)
		if _, err := m.Refresh(); err != nil {
			t.Fatal(err)
		}
		cur := map[string]bool{}
		for _, p := range m.Frequent() {
			cur[p.Code] = true
		}
		for code := range prev {
			if !cur[code] {
				t.Fatalf("batch %d: pattern vanished (monotonicity violated)", batch)
			}
		}
		prev = cur
	}
}

func TestMineIncrementalOnce(t *testing.T) {
	g := graphtest.Figure1Data()
	d, err := dyngraph.FromGraph(g, g.NumLabels())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Support: 2, MaxEdges: 2, Workers: 1}
	got, err := MineIncrementalOnce(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := fullMineCodes(t, d, cfg)
	if len(got) != len(want) {
		t.Fatalf("incremental-once %d patterns, full %d", len(got), len(want))
	}
	if _, err := NewIncrementalMiner(d, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}
