package fsm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// Config controls a mining run.
type Config struct {
	// Support is the MNI frequency threshold (>= 1).
	Support int
	// MaxEdges bounds the pattern size in edges (the paper caps Weibo
	// mining at six edges).
	MaxEdges int
	// Workers is the parallel evaluation width (>= 1), the stand-in for
	// ScaleMine's distributed compute nodes.
	Workers int
	// Deadline aborts the run when passed (zero: none).
	Deadline time.Time
}

func (c Config) validate() error {
	if c.Support < 1 {
		return fmt.Errorf("fsm: support %d < 1", c.Support)
	}
	if c.MaxEdges < 1 {
		return fmt.Errorf("fsm: max edges %d < 1", c.MaxEdges)
	}
	if c.Workers < 1 {
		return fmt.Errorf("fsm: workers %d < 1", c.Workers)
	}
	return nil
}

// Result reports a mining run.
type Result struct {
	// Frequent holds the frequent patterns, level by level.
	Frequent []Pattern
	// Evaluated is the number of candidate patterns whose support was
	// computed; Pruned counts canonical-duplicate candidates skipped.
	Evaluated int
	Pruned    int
	Elapsed   time.Duration
}

// Mine finds all patterns with MNI support >= cfg.Support and at most
// cfg.MaxEdges edges, evaluating support with eval. Single-node patterns
// are not reported (mining starts from frequent edges, as usual).
func Mine(g *graph.Graph, eval SupportEvaluator, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{}

	frequentLabels := frequentNodeLabels(g, cfg.Support)
	level := seedEdges(g, frequentLabels, cfg.Support)

	seen := make(map[string]struct{})
	for _, p := range level {
		seen[p.Code] = struct{}{}
	}

	for len(level) > 0 {
		frequent, err := evaluateLevel(level, eval, cfg, res)
		if err != nil {
			return res, err
		}
		res.Frequent = append(res.Frequent, frequent...)
		// Generate the next level from this level's frequent patterns.
		var next []Pattern
		for _, p := range frequent {
			if int(p.G.NumEdges()) >= cfg.MaxEdges {
				continue
			}
			for _, ext := range extensions(p, frequentLabels) {
				if _, dup := seen[ext.Code]; dup {
					res.Pruned++
					continue
				}
				seen[ext.Code] = struct{}{}
				next = append(next, ext)
			}
		}
		level = next
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// evaluateLevel computes support for one candidate level with a worker
// pool.
func evaluateLevel(level []Pattern, eval SupportEvaluator, cfg Config, res *Result) ([]Pattern, error) {
	type item struct {
		idx      int
		frequent bool
		err      error
	}
	workers := cfg.Workers
	if workers > len(level) {
		workers = len(level)
	}
	jobs := make(chan int)
	out := make(chan item, len(level))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				freq, _, err := eval.IsFrequent(level[idx], cfg.Support, cfg.Deadline)
				out <- item{idx: idx, frequent: freq, err: err}
			}
		}()
	}
	go func() {
		for i := range level {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()
	var firstErr error
	frequentIdx := make([]int, 0, len(level))
	for it := range out {
		res.Evaluated++
		if it.err != nil && firstErr == nil {
			firstErr = it.err
		}
		if it.err == nil && it.frequent {
			frequentIdx = append(frequentIdx, it.idx)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Ints(frequentIdx) // deterministic output order
	frequent := make([]Pattern, len(frequentIdx))
	for i, idx := range frequentIdx {
		frequent[i] = level[idx]
	}
	return frequent, nil
}

// frequentNodeLabels returns labels carried by at least support nodes.
func frequentNodeLabels(g *graph.Graph, support int) []graph.Label {
	var out []graph.Label
	for l := graph.Label(0); int(l) < g.NumLabels(); l++ {
		if int(g.LabelFrequency(l)) >= support {
			out = append(out, l)
		}
	}
	return out
}

// seedEdges builds the single-edge seed patterns: one per unordered
// frequent-label pair that actually occurs as an edge often enough to
// possibly be frequent (cheap occurrence pre-count).
func seedEdges(g *graph.Graph, labels []graph.Label, support int) []Pattern {
	type pair struct{ a, b graph.Label }
	counts := make(map[pair]int)
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		lu := g.Label(u)
		for _, v := range g.Neighbors(u) {
			if u >= v {
				continue
			}
			lv := g.Label(v)
			p := pair{lu, lv}
			if p.a > p.b {
				p.a, p.b = p.b, p.a
			}
			counts[p]++
		}
	}
	frequentLabel := make(map[graph.Label]bool, len(labels))
	for _, l := range labels {
		frequentLabel[l] = true
	}
	var out []Pattern
	for p, c := range counts {
		// An edge pattern's MNI support is at most its occurrence count.
		if c < support || !frequentLabel[p.a] || !frequentLabel[p.b] {
			continue
		}
		b := graph.NewBuilder(2, 1)
		u := b.AddNode(p.a)
		v := b.AddNode(p.b)
		if err := b.AddEdge(u, v); err != nil {
			continue
		}
		g, err := b.Build()
		invariant.Must(err) // a single labeled edge always builds
		out = append(out, NewPattern(g))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}
