package fsm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

// permuted rebuilds g with a random node permutation.
func permuted(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	perm := rng.Perm(g.NumNodes())
	inv := make([]graph.NodeID, g.NumNodes())
	for newID, oldID := range perm {
		inv[oldID] = graph.NodeID(newID)
	}
	b := graph.NewBuilder(g.NumNodes(), int(g.NumEdges()))
	for newID := range perm {
		b.AddNode(g.Label(graph.NodeID(perm[newID])))
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for i, v := range g.Neighbors(u) {
			if u < v {
				if err := b.AddLabeledEdge(inv[u], inv[v], g.EdgeLabelAt(u, i)); err != nil {
					panic(err)
				}
			}
		}
	}
	return b.MustBuild()
}

func TestMinDFSCodePermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(7, 11, 3, seed)
		return MinDFSCode(g) == MinDFSCode(permuted(g, rng))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMinDFSCodeAgreesWithCanonicalCode: the two canonical forms induce
// the same equivalence classes — for random graph pairs, codes collide
// under one iff they collide under the other.
func TestMinDFSCodeAgreesWithCanonicalCode(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ga := graphtest.Random(6, 8, 2, seedA)
		gb := graphtest.Random(6, 8, 2, seedB)
		samePerm := CanonicalCode(ga) == CanonicalCode(gb)
		sameDFS := MinDFSCode(ga) == MinDFSCode(gb)
		if samePerm != sameDFS {
			t.Logf("seeds %d/%d: perm-equal=%v dfs-equal=%v", seedA, seedB, samePerm, sameDFS)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMinDFSCodeDistinguishesShapes(t *testing.T) {
	// Triangle vs path with identical label multisets.
	tri := graph.NewBuilder(3, 3)
	for i := 0; i < 3; i++ {
		tri.AddNode(0)
	}
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}} {
		if err := tri.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	path := graph.NewBuilder(3, 2)
	for i := 0; i < 3; i++ {
		path.AddNode(0)
	}
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}} {
		if err := path.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if MinDFSCode(tri.MustBuild()) == MinDFSCode(path.MustBuild()) {
		t.Error("triangle and path share a DFS code")
	}
}

func TestMinDFSCodeEdgeLabels(t *testing.T) {
	build := func(el graph.Label) *graph.Graph {
		b := graph.NewBuilder(2, 1)
		u := b.AddNode(0)
		v := b.AddNode(1)
		if err := b.AddLabeledEdge(u, v, el); err != nil {
			t.Fatal(err)
		}
		return b.MustBuild()
	}
	if MinDFSCode(build(0)) == MinDFSCode(build(1)) {
		t.Error("edge labels not encoded")
	}
}

func TestMinDFSCodeEmpty(t *testing.T) {
	if MinDFSCode(graph.NewBuilder(0, 0).MustBuild()) != "" {
		t.Error("empty graph code should be empty")
	}
}

// TestMinDFSCodeDisconnected: disconnected graphs get sorted
// per-component codes, so the code stays invariant under permutation and
// still distinguishes different component structures.
func TestMinDFSCodeDisconnectedInvariant(t *testing.T) {
	b := graph.NewBuilder(4, 2)
	a1 := b.AddNode(0)
	a2 := b.AddNode(0)
	b1 := b.AddNode(1)
	b2 := b.AddNode(1)
	if err := b.AddEdge(a1, a2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(b1, b2); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	rng := rand.New(rand.NewSource(4))
	if MinDFSCode(g) != MinDFSCode(permuted(g, rng)) {
		t.Error("disconnected graph code not invariant")
	}
	// A different disconnected graph (A-B and A-B pairs) must differ.
	b2g := graph.NewBuilder(4, 2)
	x1 := b2g.AddNode(0)
	y1 := b2g.AddNode(1)
	x2 := b2g.AddNode(0)
	y2 := b2g.AddNode(1)
	if err := b2g.AddEdge(x1, y1); err != nil {
		t.Fatal(err)
	}
	if err := b2g.AddEdge(x2, y2); err != nil {
		t.Fatal(err)
	}
	if MinDFSCode(g) == MinDFSCode(b2g.MustBuild()) {
		t.Error("different disconnected graphs share a code")
	}
}

func BenchmarkCanonicalCodePermutation(b *testing.B) {
	g := graphtest.Random(7, 10, 3, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CanonicalCode(g)
	}
}

func BenchmarkCanonicalCodeDFS(b *testing.B) {
	g := graphtest.Random(7, 10, 3, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinDFSCode(g)
	}
}
