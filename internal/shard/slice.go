package shard

import (
	"fmt"

	"repro/internal/graph"
)

// Slice is one shard's view of the data graph: the subgraph induced by
// its owned nodes plus every node within Halo hops of one (the halo).
// The slice preserves the full graph's label-alphabet width, so NS
// signatures built on it are component-aligned with full-graph
// signatures. Halo nodes are evaluated like any other candidate but
// never produce bindings — ownership filtering happens before local ids
// are mapped back to global ids.
type Slice struct {
	Index int          // shard index in [0, N)
	N     int          // shard count
	Halo  int          // halo depth in hops
	Sub   *graph.Graph // owned ∪ halo induced subgraph, labels width-preserved
	// ToGlobal maps local node ids (Sub's) to global ids, ascending —
	// local order preserves global order, so an ascending local binding
	// list maps to an ascending global one.
	ToGlobal []graph.NodeID
	Owned    []bool // Owned[local] — does this shard answer for the node?

	OwnedCount int // nodes this shard owns
	HaloCount  int // replicated boundary nodes (len(ToGlobal) - OwnedCount)
}

// ExtractSlice builds shard index's slice under plan p with the given
// halo depth.
func ExtractSlice(g *graph.Graph, p Plan, index, halo int) (*Slice, error) {
	if index < 0 || index >= p.N {
		return nil, fmt.Errorf("shard: index %d out of range [0,%d)", index, p.N)
	}
	if halo < 0 {
		return nil, fmt.Errorf("shard: negative halo depth %d", halo)
	}
	seeds := p.OwnedNodes(index)
	closure, err := graph.KHopClosure(g, seeds, halo)
	if err != nil {
		return nil, err
	}
	sub, toGlobal, err := graph.InducedSubgraphPreserving(g, closure)
	if err != nil {
		return nil, err
	}
	s := &Slice{
		Index:    index,
		N:        p.N,
		Halo:     halo,
		Sub:      sub,
		ToGlobal: toGlobal,
		Owned:    make([]bool, len(toGlobal)),
	}
	for local, global := range toGlobal {
		if int(p.Owner[global]) == index {
			s.Owned[local] = true
			s.OwnedCount++
		}
	}
	s.HaloCount = len(toGlobal) - s.OwnedCount
	return s, nil
}

// filterOwned keeps the owned local bindings and maps them to global
// ids, preserving ascending order. It returns the global bindings.
func (s *Slice) filterOwned(local []graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(local))
	for _, u := range local {
		if s.Owned[u] {
			out = append(out, s.ToGlobal[u])
		}
	}
	return out
}
