// Package shard partitions a data graph into N slices and evaluates
// pivoted-subgraph-isomorphism queries by scatter-gather: every shard
// holds the subgraph induced by its owned nodes plus a k-hop halo of
// replicated boundary nodes, wraps a warm smartpsi.Engine over that
// slice, and answers for the pivot bindings it owns. Halo nodes keep
// degrees and NS signatures near the ownership cut identical to the
// full graph (see ARCHITECTURE.md, "Sharded serving"), so a gather of
// the owned bindings from all shards equals the single-engine answer
// exactly — the equivalence is property-tested in cluster_test.go.
package shard

import (
	"fmt"

	"repro/internal/graph"
)

// Strategy selects how nodes are assigned to shards.
type Strategy int

const (
	// LabelHash owns node u on shard hash(u, label(u)) mod N: stateless,
	// deterministic across processes, and label-mixing so every shard
	// sees every label's candidates.
	LabelHash Strategy = iota
	// DegreeBalanced cuts the node-id range into N contiguous runs with
	// near-equal total weight deg(u)+1, so shards carry similar
	// adjacency volume even on skewed graphs.
	DegreeBalanced
)

// String returns the flag spelling of the strategy.
func (s Strategy) String() string {
	switch s {
	case LabelHash:
		return "label-hash"
	case DegreeBalanced:
		return "degree"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy parses the -partitioner flag spellings.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "label-hash", "labelhash", "hash":
		return LabelHash, nil
	case "degree", "degree-balanced":
		return DegreeBalanced, nil
	default:
		return 0, fmt.Errorf("shard: unknown partitioner %q (want label-hash or degree)", s)
	}
}

// Plan records the ownership partition: every node of the full graph is
// owned by exactly one shard. Both partitioners are deterministic
// functions of the graph, so fleet nodes built from the same graph file
// agree on the plan without coordination.
type Plan struct {
	N     int
	Owner []int32 // Owner[u] in [0, N) for every global node u
}

// Partition assigns every node of g to one of n shards.
func Partition(g *graph.Graph, n int, strat Strategy) (Plan, error) {
	if n < 1 {
		return Plan{}, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	owner := make([]int32, g.NumNodes())
	switch strat {
	case LabelHash:
		for u := 0; u < g.NumNodes(); u++ {
			h := splitmix64(uint64(u)<<32 | uint64(uint32(g.Label(graph.NodeID(u))+1)))
			owner[u] = int32(h % uint64(n))
		}
	case DegreeBalanced:
		// Greedy prefix cut on weight deg(u)+1: advance to the next
		// shard once the cumulative weight crosses the next boundary
		// (i+1)·total/n. Each shard's weight lands within one node's
		// weight of the ideal, so no shard exceeds total/n + maxWeight.
		var total int64
		for u := 0; u < g.NumNodes(); u++ {
			total += int64(g.Degree(graph.NodeID(u))) + 1
		}
		var cum int64
		idx := int32(0)
		for u := 0; u < g.NumNodes(); u++ {
			owner[u] = idx
			cum += int64(g.Degree(graph.NodeID(u))) + 1
			for int(idx) < n-1 && cum*int64(n) >= total*int64(idx+1) {
				idx++
			}
		}
	default:
		return Plan{}, fmt.Errorf("shard: unknown strategy %v", strat)
	}
	return Plan{N: n, Owner: owner}, nil
}

// OwnedNodes returns the nodes owned by shard index, ascending.
func (p Plan) OwnedNodes(index int) []graph.NodeID {
	var out []graph.NodeID
	for u, o := range p.Owner {
		if int(o) == index {
			out = append(out, graph.NodeID(u))
		}
	}
	return out
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed stateless
// hash, the same construction psi-loadgen uses for deterministic
// workload skew.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
