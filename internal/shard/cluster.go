package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/psi"
	"repro/internal/signature"
	"repro/internal/smartpsi"
)

// DefaultQueryRadius bounds the pivot eccentricity of accepted queries.
// Every match node lies within the pivot's query-graph eccentricity of
// the pivot binding, so a radius-r query is answered exactly by slices
// with halo depth r + signature depth. Radius 3 covers every query the
// serving defaults admit (MaxQueryNodes 32 caps paths well above it in
// practice; the workload extractor emits 3-5 node queries).
const DefaultQueryRadius = 3

// Options configures an in-process Cluster or a fleet Node.
type Options struct {
	Shards   int      // shard count N (Cluster; a Node takes it from -shard-of)
	Strategy Strategy // ownership partitioner
	// Halo is the replication depth in hops. 0 means automatic:
	// QueryRadius + the engine's signature depth, the exactness bound
	// argued in ARCHITECTURE.md.
	Halo int
	// QueryRadius is the largest pivot eccentricity accepted (0 means
	// DefaultQueryRadius). Queries beyond it are rejected with a
	// RadiusError instead of silently returning too few bindings.
	QueryRadius int
	// Workers is the evaluation worker-pool size per shard (0 means 1).
	Workers int
	Engine  smartpsi.Options // per-shard engine configuration
}

func (o Options) queryRadius() int {
	if o.QueryRadius <= 0 {
		return DefaultQueryRadius
	}
	return o.QueryRadius
}

func (o Options) haloDepth() int {
	if o.Halo > 0 {
		return o.Halo
	}
	depth := o.Engine.SignatureDepth
	if depth <= 0 {
		depth = signature.DefaultDepth
	}
	return o.queryRadius() + depth
}

// RadiusError reports a query whose pivot eccentricity exceeds the
// configured shard query radius; sharded serving cannot answer it
// exactly, so it is rejected up front as a client error.
type RadiusError struct {
	Eccentricity int
	Radius       int
}

func (e *RadiusError) Error() string {
	return fmt.Sprintf("shard: query pivot eccentricity %d exceeds the shard query radius %d", e.Eccentricity, e.Radius)
}

// ErrBusy reports that a shard's evaluation queue stayed full past the
// request deadline.
var ErrBusy = errors.New("shard: shard worker queue full")

// Outcome is one shard's contribution to a gather.
type Outcome struct {
	Shard    int           `json:"shard"`
	Bindings int           `json:"bindings"`
	Elapsed  time.Duration `json:"-"`
	TimedOut bool          `json:"timed_out,omitempty"`
	Err      string        `json:"error,omitempty"`
}

// OK reports whether the shard answered.
func (o Outcome) OK() bool { return o.Err == "" && !o.TimedOut }

// Gather is the merged answer of a scatter: the deduplicated union of
// owned bindings plus per-shard outcomes. Res carries the merged
// counters in smartpsi.Result form so the serving observe path (funnel,
// workload sketch, profiles) treats a scattered query like any other.
type Gather struct {
	Res      *smartpsi.Result
	Partial  bool // at least one shard's answer is missing
	Dups     int64
	Outcomes []Outcome
}

// Status is one shard's health row in /readyz.
type Status struct {
	Index      int    `json:"index"`
	Addr       string `json:"addr,omitempty"`
	Healthy    bool   `json:"healthy"`
	OwnedNodes int    `json:"owned_nodes,omitempty"`
	HaloNodes  int    `json:"halo_nodes,omitempty"`
	Err        string `json:"error,omitempty"`
}

// evaluator is the slice-local evaluation seam; *smartpsi.Engine
// implements it, and tests substitute failing or slow fakes.
type evaluator interface {
	EvaluateTagged(q graph.Query, deadline time.Time, requestID, fingerprint string) (*smartpsi.Result, error)
}

type task struct {
	q           graph.Query
	deadline    time.Time
	requestID   string
	fingerprint string
	out         chan reply // buffered(1): a late worker never blocks
}

type reply struct {
	shard   int
	res     *smartpsi.Result // owned bindings already global
	elapsed time.Duration
	err     error
}

// shardWorker is one shard's slice, engine and evaluation pool.
type shardWorker struct {
	slice   *Slice
	eval    evaluator
	tasks   chan *task
	metrics *obs.PerShard
}

func (w *shardWorker) run() {
	for t := range w.tasks {
		start := time.Now()
		res, err := w.eval.EvaluateTagged(t.q, t.deadline, t.requestID, t.fingerprint)
		if err == nil {
			res.Bindings = w.slice.filterOwned(res.Bindings)
		}
		t.out <- reply{shard: w.slice.Index, res: res, elapsed: time.Since(start), err: err}
	}
}

// Cluster evaluates queries by scattering them across in-process
// shards. It implements the server's evaluator interfaces: a scattered
// evaluation answers with the exact single-engine binding set while all
// shards are up, and degrades to a flagged partial answer when one
// fails.
type Cluster struct {
	g       *graph.Graph
	opts    Options
	plan    Plan
	workers []*shardWorker
}

// NewCluster partitions g, extracts every slice, and warms one engine
// per shard.
func NewCluster(g *graph.Graph, opts Options) (*Cluster, error) {
	if opts.Shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", opts.Shards)
	}
	plan, err := Partition(g, opts.Shards, opts.Strategy)
	if err != nil {
		return nil, err
	}
	c := &Cluster{g: g, opts: opts, plan: plan}
	halo := opts.haloDepth()
	for i := 0; i < opts.Shards; i++ {
		sl, err := ExtractSlice(g, plan, i, halo)
		if err != nil {
			c.Close()
			return nil, err
		}
		eng, err := smartpsi.NewEngine(sl.Sub, opts.Engine)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		w := &shardWorker{
			slice:   sl,
			eval:    eng,
			tasks:   make(chan *task, 64),
			metrics: obs.ShardMetrics(i),
		}
		pool := opts.Workers
		if pool < 1 {
			pool = 1
		}
		for p := 0; p < pool; p++ {
			//lint:ignore gojoin workers exit when Close closes w.tasks; each in-flight task replies on a buffered channel so none is abandoned
			go w.run()
		}
		c.workers = append(c.workers, w)
	}
	obs.ShardCount.Set(int64(opts.Shards))
	return c, nil
}

// Close stops every shard's worker pool.
func (c *Cluster) Close() {
	for _, w := range c.workers {
		close(w.tasks)
	}
	c.workers = nil
}

// Graph returns the full data graph (the server validates query labels
// against it).
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Plan returns the ownership partition.
func (c *Cluster) Plan() Plan { return c.plan }

// ShardStatuses reports per-shard health; in-process shards are healthy
// by construction.
func (c *Cluster) ShardStatuses() []Status {
	out := make([]Status, len(c.workers))
	for i, w := range c.workers {
		out[i] = Status{
			Index:      i,
			Healthy:    true,
			OwnedNodes: w.slice.OwnedCount,
			HaloNodes:  w.slice.HaloCount,
		}
	}
	return out
}

// EvaluateBudget satisfies the plain server evaluator interface.
func (c *Cluster) EvaluateBudget(q graph.Query, deadline time.Time) (*smartpsi.Result, error) {
	g, err := c.EvaluateScatter(q, deadline, "", "")
	if err != nil {
		return nil, err
	}
	return g.Res, nil
}

// EvaluateScatter fans the query out to every shard and gathers the
// owned bindings.
func (c *Cluster) EvaluateScatter(q graph.Query, deadline time.Time, requestID, fingerprint string) (*Gather, error) {
	if err := CheckRadius(q, c.opts.queryRadius()); err != nil {
		return nil, err
	}
	start := time.Now()
	obs.ShardScatters.Inc()
	shardDeadline := SliceDeadline(deadline)
	replies := make(chan reply, len(c.workers))
	for _, w := range c.workers {
		go func(w *shardWorker) {
			w.metrics.Queries.Inc()
			replies <- w.dispatch(q, shardDeadline, deadline, requestID, fingerprint)
		}(w)
	}
	outcomes := make([]Outcome, len(c.workers))
	results := make([]*smartpsi.Result, len(c.workers))
	for range c.workers {
		r := <-replies
		o := Outcome{Shard: r.shard, Elapsed: r.elapsed}
		w := c.workers[r.shard]
		w.metrics.Seconds.ObserveSeconds(r.elapsed.Seconds())
		switch {
		case isDeadline(r.err):
			o.TimedOut = true
			w.metrics.Timeouts.Inc()
		case r.err != nil:
			o.Err = r.err.Error()
			w.metrics.Errors.Inc()
		default:
			o.Bindings = len(r.res.Bindings)
			results[r.shard] = r.res
		}
		outcomes[r.shard] = o
	}
	g, err := Merge(outcomes, results, start)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// dispatch submits the task to the shard's pool and waits for its
// reply, giving up (timeout) if the queue stays full past the overall
// deadline or the reply misses the deadline by more than a grace
// period.
func (w *shardWorker) dispatch(q graph.Query, shardDeadline, deadline time.Time, requestID, fingerprint string) reply {
	t := &task{q: q, deadline: shardDeadline, requestID: requestID, fingerprint: fingerprint, out: make(chan reply, 1)}
	submit := expiry(deadline, 0)
	select {
	//lint:ignore sendclosed Close runs only after the server has drained, so no dispatch can race the channel close
	case w.tasks <- t:
	case <-submit:
		return reply{shard: w.slice.Index, err: ErrBusy}
	}
	// The engine respects the deadline itself; the grace period only
	// guards against a wedged evaluation, and the buffered reply channel
	// means a late worker completes without blocking.
	wait := expiry(deadline, 250*time.Millisecond)
	select {
	case r := <-t.out:
		return r
	case <-wait:
		return reply{shard: w.slice.Index, err: psi.ErrDeadline}
	}
}

// expiry returns a channel that fires slack after the deadline, or nil
// (blocks forever) when no deadline is set.
func expiry(deadline time.Time, slack time.Duration) <-chan time.Time {
	if deadline.IsZero() {
		return nil
	}
	d := time.Until(deadline) + slack
	if d < 0 {
		d = 0
	}
	return time.After(d)
}

// SliceDeadline reserves a gather margin out of the remaining budget:
// shards get 95% of it (clamped to [5ms, 250ms] of margin) so the
// coordinator can merge and respond before its own deadline.
func SliceDeadline(deadline time.Time) time.Time {
	if deadline.IsZero() {
		return deadline
	}
	remaining := time.Until(deadline)
	if remaining <= 0 {
		return deadline
	}
	margin := remaining / 20
	if margin < 5*time.Millisecond {
		margin = 5 * time.Millisecond
	} else if margin > 250*time.Millisecond {
		margin = 250 * time.Millisecond
	}
	if margin >= remaining {
		return deadline
	}
	return deadline.Add(-margin)
}

// CheckRadius rejects queries whose pivot eccentricity exceeds radius.
func CheckRadius(q graph.Query, radius int) error {
	ecc := graph.Eccentricity(q.G, q.Pivot)
	if ecc > radius {
		return &RadiusError{Eccentricity: ecc, Radius: radius}
	}
	return nil
}

// isDeadline classifies an error as a deadline expiry.
func isDeadline(err error) bool {
	return err != nil && (errors.Is(err, psi.ErrDeadline) || errors.Is(err, context.DeadlineExceeded))
}

// Merge folds per-shard outcomes into a Gather; results[i] must be
// nil exactly when outcomes[i] is not OK. The in-process Cluster and
// the HTTP coordinator share it, so degradation semantics agree across
// deployment modes: all shards lost to deadlines is a deadline error
// (504), all lost with at least one hard failure surfaces that error
// (500), and a strict subset lost flags the answer partial.
func Merge(outcomes []Outcome, results []*smartpsi.Result, start time.Time) (*Gather, error) {
	ok, timedOut := 0, 0
	var firstErr error
	for i, o := range outcomes {
		switch {
		case o.OK():
			ok++
		case o.TimedOut:
			timedOut++
		case firstErr == nil:
			firstErr = fmt.Errorf("shard %d: %s", i, o.Err)
		}
	}
	if ok == 0 {
		if timedOut == len(outcomes) {
			return nil, psi.ErrDeadline
		}
		if firstErr == nil {
			firstErr = errors.New("shard: no shard answered")
		}
		return nil, firstErr
	}

	merged := &smartpsi.Result{}
	var bindings []graph.NodeID
	var slowest time.Duration
	for i, res := range results {
		if res == nil {
			continue
		}
		bindings = append(bindings, res.Bindings...)
		merged.Candidates += res.Candidates
		merged.TrainedNodes += res.TrainedNodes
		merged.CacheHits += res.CacheHits
		merged.CacheMisses += res.CacheMisses
		merged.Flips += res.Flips
		merged.Fallbacks += res.Fallbacks
		merged.UsedML = merged.UsedML || res.UsedML
		merged.Work.Add(res.Work)
		if outcomes[i].Elapsed >= slowest {
			slowest = outcomes[i].Elapsed
			merged.Profile = res.Profile
		}
	}
	sort.Slice(bindings, func(i, j int) bool { return bindings[i] < bindings[j] })
	dups := int64(0)
	uniq := bindings[:0]
	for i, u := range bindings {
		if i > 0 && u == bindings[i-1] {
			dups++
			continue
		}
		uniq = append(uniq, u)
	}
	merged.Bindings = uniq
	merged.EvalTime = slowest
	merged.TotalTime = time.Since(start)
	if dups > 0 {
		obs.ShardDupDrops.Add(dups)
	}
	partial := ok < len(outcomes)
	if partial {
		obs.ShardPartials.Inc()
	}
	obs.ShardGatherSecs.ObserveSeconds(time.Since(start).Seconds())
	return &Gather{Res: merged, Partial: partial, Dups: dups, Outcomes: outcomes}, nil
}
