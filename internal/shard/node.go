package shard

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/smartpsi"
)

// Node is one fleet member: the evaluator a `psi-serve -shard-of N
// -shard-index i` process serves. It is an ordinary server evaluator —
// same wire format, same admission, same metrics — whose answers are
// the shard's owned bindings mapped back to global node ids, so a
// coordinator can union shard responses without translation.
type Node struct {
	slice *Slice
	eng   *smartpsi.Engine
	opts  Options
}

// NewNode partitions g deterministically, extracts slice index of n,
// and warms its engine. Every fleet member loads the same graph file,
// so the plans agree without coordination.
func NewNode(g *graph.Graph, opts Options, n, index int) (*Node, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", n)
	}
	if index < 0 || index >= n {
		return nil, fmt.Errorf("shard: index %d out of range [0,%d)", index, n)
	}
	opts.Shards = n
	plan, err := Partition(g, n, opts.Strategy)
	if err != nil {
		return nil, err
	}
	sl, err := ExtractSlice(g, plan, index, opts.haloDepth())
	if err != nil {
		return nil, err
	}
	eng, err := smartpsi.NewEngine(sl.Sub, opts.Engine)
	if err != nil {
		return nil, err
	}
	return &Node{slice: sl, eng: eng, opts: opts}, nil
}

// Graph returns the shard's slice; its label-alphabet width matches the
// full graph, so the server's query-label validation behaves as if it
// held the whole graph.
func (n *Node) Graph() *graph.Graph { return n.slice.Sub }

// Slice returns the node's slice.
func (n *Node) Slice() *Slice { return n.slice }

// ShardStatuses reports this node's own health row.
func (n *Node) ShardStatuses() []Status {
	return []Status{{
		Index:      n.slice.Index,
		Healthy:    true,
		OwnedNodes: n.slice.OwnedCount,
		HaloNodes:  n.slice.HaloCount,
	}}
}

// EvaluateBudget satisfies the plain server evaluator interface.
func (n *Node) EvaluateBudget(q graph.Query, deadline time.Time) (*smartpsi.Result, error) {
	return n.EvaluateTagged(q, deadline, "", "")
}

// EvaluateTagged evaluates the query on the slice and returns only the
// owned bindings, as global ids. It re-checks the query radius: a query
// deeper than the halo supports must fail loudly here, not silently
// return too few bindings.
func (n *Node) EvaluateTagged(q graph.Query, deadline time.Time, requestID, fingerprint string) (*smartpsi.Result, error) {
	if err := CheckRadius(q, n.opts.queryRadius()); err != nil {
		return nil, err
	}
	res, err := n.eng.EvaluateTagged(q, deadline, requestID, fingerprint)
	if err != nil {
		return nil, err
	}
	res.Bindings = n.slice.filterOwned(res.Bindings)
	return res, nil
}
