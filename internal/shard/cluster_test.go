package shard

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
	"repro/internal/psi"
	"repro/internal/smartpsi"
	"repro/internal/workload"
)

func testQueries(t *testing.T, g *graph.Graph, count int, seed int64) []graph.Query {
	t.Helper()
	qs, err := workload.ExtractQueries(g, 4, count, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("ExtractQueries: %v", err)
	}
	return qs
}

func bindingsEqual(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The acceptance gate: scattering over any partitioner and shard count
// must return exactly the single-engine binding set, with no partial
// flag and no cross-shard duplicate bindings.
func TestClusterEquivalence(t *testing.T) {
	engOpts := smartpsi.Options{Threads: 1, Seed: 42}
	for _, seed := range []int64{3, 17} {
		g := graphtest.Random(140, 420, 4, seed)
		single, err := smartpsi.NewEngine(g, engOpts)
		if err != nil {
			t.Fatal(err)
		}
		qs := testQueries(t, g, 6, seed+100)
		want := make([][]graph.NodeID, len(qs))
		for i, q := range qs {
			res, err := single.EvaluateBudget(q, time.Time{})
			if err != nil {
				t.Fatalf("single engine: %v", err)
			}
			want[i] = res.Bindings
		}
		for _, strat := range strategies {
			for _, n := range shardCounts {
				c, err := NewCluster(g, Options{Shards: n, Strategy: strat, Engine: engOpts})
				if err != nil {
					t.Fatalf("NewCluster(%v, %d): %v", strat, n, err)
				}
				for i, q := range qs {
					gth, err := c.EvaluateScatter(q, time.Time{}, "", "")
					if err != nil {
						t.Fatalf("seed %d %v/%d query %d: %v", seed, strat, n, i, err)
					}
					if gth.Partial {
						t.Fatalf("%v/%d query %d: unexpected partial result", strat, n, i)
					}
					if gth.Dups != 0 {
						t.Fatalf("%v/%d query %d: %d duplicate bindings across shards", strat, n, i, gth.Dups)
					}
					if !bindingsEqual(gth.Res.Bindings, want[i]) {
						t.Fatalf("seed %d %v/%d query %d: sharded bindings %v, single engine %v",
							seed, strat, n, i, gth.Res.Bindings, want[i])
					}
				}
				c.Close()
			}
		}
	}
}

// A fleet node answers with owned bindings on global ids; the union
// over all nodes equals the single-engine answer with no overlap.
func TestNodeEquivalence(t *testing.T) {
	engOpts := smartpsi.Options{Threads: 1, Seed: 42}
	g := graphtest.Random(140, 420, 4, 23)
	single, err := smartpsi.NewEngine(g, engOpts)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2
	nodes := make([]*Node, n)
	for i := range nodes {
		if nodes[i], err = NewNode(g, Options{Strategy: DegreeBalanced, Engine: engOpts}, n, i); err != nil {
			t.Fatal(err)
		}
	}
	for qi, q := range testQueries(t, g, 4, 77) {
		ref, err := single.EvaluateBudget(q, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[graph.NodeID]int)
		var union []graph.NodeID
		for i, node := range nodes {
			res, err := node.EvaluateTagged(q, time.Time{}, "", "")
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
			for _, u := range res.Bindings {
				if prev, dup := seen[u]; dup {
					t.Fatalf("query %d: binding %d answered by shards %d and %d", qi, u, prev, i)
				}
				seen[u] = i
				union = append(union, u)
			}
		}
		if len(union) != len(ref.Bindings) {
			t.Fatalf("query %d: fleet union has %d bindings, single engine %d", qi, len(union), len(ref.Bindings))
		}
		for _, u := range ref.Bindings {
			if _, ok := seen[u]; !ok {
				t.Fatalf("query %d: fleet missed binding %d", qi, u)
			}
		}
	}
}

type fakeEval struct {
	err   error
	delay time.Duration
	res   *smartpsi.Result
}

func (f fakeEval) EvaluateTagged(q graph.Query, deadline time.Time, requestID, fingerprint string) (*smartpsi.Result, error) {
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if f.err != nil {
		return nil, f.err
	}
	return f.res, nil
}

// Losing one shard degrades to a flagged partial answer carrying the
// surviving shards' bindings.
func TestClusterPartialOnShardError(t *testing.T) {
	g := graphtest.Random(140, 420, 4, 31)
	c, err := NewCluster(g, Options{Shards: 3, Strategy: LabelHash, Engine: smartpsi.Options{Threads: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := testQueries(t, g, 1, 5)[0]
	full, err := c.EvaluateScatter(q, time.Time{}, "", "")
	if err != nil {
		t.Fatal(err)
	}

	c.workers[1].eval = fakeEval{err: errors.New("shard exploded")}
	gth, err := c.EvaluateScatter(q, time.Time{}, "", "")
	if err != nil {
		t.Fatalf("partial scatter should succeed, got %v", err)
	}
	if !gth.Partial {
		t.Fatal("lost shard did not flag the gather partial")
	}
	if gth.Outcomes[1].Err == "" || gth.Outcomes[1].OK() {
		t.Fatalf("outcome for the lost shard: %+v", gth.Outcomes[1])
	}
	if len(gth.Res.Bindings) > len(full.Res.Bindings) {
		t.Fatalf("partial answer has more bindings (%d) than the full one (%d)", len(gth.Res.Bindings), len(full.Res.Bindings))
	}
	for _, u := range gth.Res.Bindings {
		if int(c.plan.Owner[u]) == 1 {
			t.Fatalf("binding %d owned by the lost shard leaked into the gather", u)
		}
	}
}

// All shards failing is a hard error, and all-timeout surfaces as the
// deadline error so the server answers 504.
func TestClusterAllShardsLost(t *testing.T) {
	g := graphtest.Random(80, 200, 3, 37)
	c, err := NewCluster(g, Options{Shards: 2, Strategy: LabelHash, Engine: smartpsi.Options{Threads: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := testQueries(t, g, 1, 9)[0]

	for i := range c.workers {
		c.workers[i].eval = fakeEval{err: errors.New("down")}
	}
	if _, err := c.EvaluateScatter(q, time.Time{}, "", ""); err == nil {
		t.Fatal("all shards failed but scatter returned no error")
	}

	for i := range c.workers {
		c.workers[i].eval = fakeEval{err: psi.ErrDeadline}
	}
	if _, err := c.EvaluateScatter(q, time.Time{}, "", ""); !errors.Is(err, psi.ErrDeadline) {
		t.Fatalf("all-timeout scatter returned %v, want psi.ErrDeadline", err)
	}
}

// Queries whose pivot eccentricity exceeds the configured radius are
// rejected up front with a typed error (the halo cannot guarantee an
// exact answer for them).
func TestClusterRadiusRejected(t *testing.T) {
	g := graphtest.Random(80, 200, 3, 41)
	c, err := NewCluster(g, Options{Shards: 2, Strategy: LabelHash, Engine: smartpsi.Options{Threads: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A 6-node path with the pivot at one end has eccentricity 5 > 3.
	b := graph.NewBuilder(6, 5)
	for i := 0; i < 6; i++ {
		b.AddNode(0)
	}
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(graph.NodeID(i), graph.NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	q := graph.Query{G: b.MustBuild(), Pivot: 0}
	_, err = c.EvaluateScatter(q, time.Time{}, "", "")
	var re *RadiusError
	if !errors.As(err, &re) {
		t.Fatalf("deep query returned %v, want RadiusError", err)
	}
	if re.Eccentricity != 5 || re.Radius != DefaultQueryRadius {
		t.Fatalf("RadiusError = %+v", re)
	}
}

// The per-shard deadline slice always leaves the gather a margin but
// never moves a deadline earlier than "now-ish" or later than the
// original.
func TestSliceDeadline(t *testing.T) {
	if !SliceDeadline(time.Time{}).IsZero() {
		t.Fatal("zero deadline must stay zero")
	}
	orig := time.Now().Add(2 * time.Second)
	sliced := SliceDeadline(orig)
	if !sliced.Before(orig) {
		t.Fatal("deadline slice reserved no gather margin")
	}
	if orig.Sub(sliced) > 300*time.Millisecond {
		t.Fatalf("gather margin %v too large", orig.Sub(sliced))
	}
}
