package shard

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

// haloSet computes, independently of KHopClosure, the set of nodes
// within k hops of any owned node via multi-source BFS.
func haloSet(g *graph.Graph, owned []graph.NodeID, k int) map[graph.NodeID]bool {
	dist := make(map[graph.NodeID]int, len(owned))
	frontier := append([]graph.NodeID(nil), owned...)
	for _, u := range owned {
		dist[u] = 0
	}
	for d := 1; d <= k && len(frontier) > 0; d++ {
		var next []graph.NodeID
		for _, u := range frontier {
			for _, w := range g.Neighbors(u) {
				if _, seen := dist[w]; !seen {
					dist[w] = d
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	out := make(map[graph.NodeID]bool, len(dist))
	for u := range dist {
		out[u] = true
	}
	return out
}

// Halo completeness: every node within halo hops of an owned node is
// present in the slice, and nothing else is.
func TestSliceHaloCompleteness(t *testing.T) {
	g := graphtest.Random(150, 400, 4, 5)
	const halo = 3
	for _, strat := range strategies {
		p, err := Partition(g, 3, strat)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < p.N; i++ {
			sl, err := ExtractSlice(g, p, i, halo)
			if err != nil {
				t.Fatal(err)
			}
			want := haloSet(g, p.OwnedNodes(i), halo)
			if len(sl.ToGlobal) != len(want) {
				t.Fatalf("%v shard %d: slice has %d nodes, halo closure has %d", strat, i, len(sl.ToGlobal), len(want))
			}
			for _, global := range sl.ToGlobal {
				if !want[global] {
					t.Fatalf("%v shard %d: node %d in slice but outside the %d-hop halo", strat, i, global, halo)
				}
			}
		}
	}
}

// Ownership partition: across all slices, every global node is owned by
// exactly one shard, and Owned flags agree with the plan.
func TestSliceOwnershipPartition(t *testing.T) {
	g := graphtest.Random(150, 400, 4, 9)
	p, err := Partition(g, 4, LabelHash)
	if err != nil {
		t.Fatal(err)
	}
	ownedBy := make(map[graph.NodeID]int)
	for i := 0; i < p.N; i++ {
		sl, err := ExtractSlice(g, p, i, 2)
		if err != nil {
			t.Fatal(err)
		}
		owned, halo := 0, 0
		for local, global := range sl.ToGlobal {
			if sl.Owned[local] != (int(p.Owner[global]) == i) {
				t.Fatalf("shard %d: Owned[%d] disagrees with plan for node %d", i, local, global)
			}
			if sl.Owned[local] {
				owned++
				if prev, dup := ownedBy[global]; dup {
					t.Fatalf("node %d owned by both shard %d and %d", global, prev, i)
				}
				ownedBy[global] = i
			} else {
				halo++
			}
		}
		if owned != sl.OwnedCount || halo != sl.HaloCount {
			t.Fatalf("shard %d: counts (%d,%d) want (%d,%d)", i, sl.OwnedCount, sl.HaloCount, owned, halo)
		}
	}
	if len(ownedBy) != g.NumNodes() {
		t.Fatalf("slices own %d of %d nodes", len(ownedBy), g.NumNodes())
	}
}

// Slices preserve the full graph's label-alphabet width and the
// structure around interior nodes: any node whose whole halo-1
// neighborhood is in the slice keeps its full-graph degree.
func TestSliceWidthAndInterior(t *testing.T) {
	g := graphtest.Random(150, 400, 6, 13)
	p, err := Partition(g, 5, DegreeBalanced)
	if err != nil {
		t.Fatal(err)
	}
	const halo = 2
	for i := 0; i < p.N; i++ {
		sl, err := ExtractSlice(g, p, i, halo)
		if err != nil {
			t.Fatal(err)
		}
		if sl.Sub.NumLabels() != g.NumLabels() {
			t.Fatalf("shard %d: slice label width %d, graph %d", i, sl.Sub.NumLabels(), g.NumLabels())
		}
		interior := haloSet(g, p.OwnedNodes(i), halo-1)
		for local, global := range sl.ToGlobal {
			if !interior[global] {
				continue
			}
			if got, want := sl.Sub.Degree(graph.NodeID(local)), g.Degree(global); got != want {
				t.Fatalf("shard %d: interior node %d degree %d, full graph %d", i, global, got, want)
			}
			if got, want := sl.Sub.Label(graph.NodeID(local)), g.Label(global); got != want {
				t.Fatalf("shard %d: node %d label %d, full graph %d", i, global, got, want)
			}
		}
	}
}

// A shard count above the node count leaves some shards empty; slices
// and ownership must still hold together.
func TestSliceEmptyShard(t *testing.T) {
	b := graph.NewBuilder(3, 2)
	for i := 0; i < 3; i++ {
		b.AddNode(graph.Label(i % 2))
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	p, err := Partition(g, 8, LabelHash)
	if err != nil {
		t.Fatal(err)
	}
	totalOwned := 0
	for i := 0; i < 8; i++ {
		sl, err := ExtractSlice(g, p, i, 2)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		totalOwned += sl.OwnedCount
		if sl.OwnedCount == 0 && len(sl.ToGlobal) != 0 {
			t.Fatalf("shard %d owns nothing but has %d slice nodes", i, len(sl.ToGlobal))
		}
		if sl.Sub.NumLabels() != g.NumLabels() {
			t.Fatalf("empty shard %d lost the label alphabet: %d", i, sl.Sub.NumLabels())
		}
	}
	if totalOwned != 3 {
		t.Fatalf("shards own %d of 3 nodes", totalOwned)
	}
}
