package shard

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

var strategies = []Strategy{LabelHash, DegreeBalanced}
var shardCounts = []int{1, 2, 3, 8}

// Every node must be owned by exactly one shard, whatever the strategy
// and shard count.
func TestPartitionOwnership(t *testing.T) {
	g := graphtest.Random(200, 600, 4, 7)
	for _, strat := range strategies {
		for _, n := range shardCounts {
			p, err := Partition(g, n, strat)
			if err != nil {
				t.Fatalf("Partition(%v, %d): %v", strat, n, err)
			}
			if p.N != n || len(p.Owner) != g.NumNodes() {
				t.Fatalf("plan shape: N=%d owners=%d", p.N, len(p.Owner))
			}
			counts := make([]int, n)
			for u, o := range p.Owner {
				if o < 0 || int(o) >= n {
					t.Fatalf("node %d owner %d out of range [0,%d)", u, o, n)
				}
				counts[o]++
			}
			total := 0
			for i, c := range counts {
				total += c
				owned := p.OwnedNodes(i)
				if len(owned) != c {
					t.Fatalf("shard %d: OwnedNodes len %d, counted %d", i, len(owned), c)
				}
			}
			if total != g.NumNodes() {
				t.Fatalf("%v/%d: owners cover %d of %d nodes", strat, n, total, g.NumNodes())
			}
		}
	}
}

// The degree-balanced partitioner's greedy prefix cut guarantees every
// shard's weight (deg+1 summed) stays within one node's maximum weight
// of the ideal total/N.
func TestDegreeBalancedBounds(t *testing.T) {
	g := graphtest.Random(300, 1200, 3, 11)
	var total, maxW int64
	for u := 0; u < g.NumNodes(); u++ {
		w := int64(g.Degree(graph.NodeID(u))) + 1
		total += w
		if w > maxW {
			maxW = w
		}
	}
	for _, n := range shardCounts {
		p, err := Partition(g, n, DegreeBalanced)
		if err != nil {
			t.Fatal(err)
		}
		weights := make([]int64, n)
		for u, o := range p.Owner {
			weights[o] += int64(g.Degree(graph.NodeID(u))) + 1
		}
		for i, w := range weights {
			// w ≤ total/n + maxW, compared exactly via cross-multiplication.
			if w*int64(n) > total+maxW*int64(n) {
				t.Fatalf("n=%d shard %d weight %d exceeds total/n + maxW = %d/%d + %d", n, i, w, total, n, maxW)
			}
		}
		// Contiguity: owners must be non-decreasing over the id range.
		for u := 1; u < len(p.Owner); u++ {
			if p.Owner[u] < p.Owner[u-1] {
				t.Fatalf("n=%d: owner sequence decreases at node %d", n, u)
			}
		}
	}
}

// Both partitioners are pure functions of the graph: two calls agree,
// which is what lets fleet nodes compute the plan independently.
func TestPartitionDeterministic(t *testing.T) {
	g := graphtest.Random(120, 300, 5, 3)
	for _, strat := range strategies {
		a, err := Partition(g, 3, strat)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Partition(g, 3, strat)
		if err != nil {
			t.Fatal(err)
		}
		for u := range a.Owner {
			if a.Owner[u] != b.Owner[u] {
				t.Fatalf("%v: node %d owner differs across runs", strat, u)
			}
		}
	}
}

func TestParseStrategy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Strategy
	}{{"label-hash", LabelHash}, {"hash", LabelHash}, {"degree", DegreeBalanced}, {"degree-balanced", DegreeBalanced}} {
		got, err := ParseStrategy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseStrategy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseStrategy("round-robin"); err == nil {
		t.Fatal("ParseStrategy accepted an unknown partitioner")
	}
}
