package obs

import (
	"sync"
	"time"
)

// AccessRing is a bounded in-memory ring of recent serving-path access
// records, kept so diagnostic bundles can reconstruct "what was the
// server doing right before the alert" without depending on an external
// log pipeline. internal/server appends one entry per /v1 request
// (debug-surface scrapes are deliberately excluded: a 1s /metrics
// poller would flush the interesting traffic out of a small ring).
//
// All methods are nil-safe so call sites can hold a possibly-nil ring
// unconditionally.

// AccessEntry is one served request as retained for bundles, a
// JSONL-friendly subset of the structured access log line.
type AccessEntry struct {
	Time       time.Time `json:"time"`
	Method     string    `json:"method"`
	Path       string    `json:"path"`
	Status     int       `json:"status"`
	DurationMS float64   `json:"duration_ms"`
	RequestID  string    `json:"request_id,omitempty"`
	// Fingerprint is the canonical shape fingerprint of the served
	// query (empty for non-query routes or when fingerprinting is
	// unarmed), so bundle readers can join access lines to /queryz rows.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// AccessRing retains the last N access entries. Safe for concurrent
// use.
type AccessRing struct {
	mu  sync.Mutex
	buf []AccessEntry
	pos int // next write slot
	n   int // live entries, <= cap
}

// DefaultAccessCap is the retention of DefaultAccess and of rings built
// with a non-positive capacity.
const DefaultAccessCap = 512

// DefaultAccess is the process-wide access ring internal/server feeds;
// bundles snapshot it.
var DefaultAccess = NewAccessRing(DefaultAccessCap)

// NewAccessRing returns a ring retaining the last n entries
// (non-positive n means DefaultAccessCap).
func NewAccessRing(n int) *AccessRing {
	if n <= 0 {
		n = DefaultAccessCap
	}
	return &AccessRing{buf: make([]AccessEntry, n)}
}

// Append records one entry, evicting the oldest when full. Nil-safe.
func (r *AccessRing) Append(e AccessEntry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.pos] = e
	r.pos = (r.pos + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Entries returns the retained entries, oldest first. Nil-safe.
func (r *AccessRing) Entries() []AccessEntry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]AccessEntry, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.pos-r.n+i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len reports how many entries are retained. Nil-safe.
func (r *AccessRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
