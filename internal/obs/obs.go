// Package obs is the repository's stdlib-only observability layer: a
// lock-free metrics registry (atomic counters, gauges, and fixed-bucket
// histograms) with Prometheus-text and JSON encoders, a per-query trace
// recorder (ring buffer of typed events) with a Chrome-trace-format
// exporter, and an opt-in debug HTTP surface serving /metrics,
// /metrics.json, /tracez, /profilez (the slow-query flight recorder),
// /modelz (shadow-scoring and drift state) and net/http/pprof.
//
// The layer follows the same gating pattern as package invariant:
// collection is off by default and every instrumentation site costs one
// predictable branch when disabled (an atomic-bool load) and one atomic
// add per event when enabled. Enable it with the PSI_OBS environment
// variable (any non-empty value), Enable(true) from tests, or the
// -debug-addr flag of cmd/psi-bench, cmd/psi-query and cmd/psi-workload
// (StartDebugServer enables collection as a side effect). The
// long-lived query service (internal/server, cmd/psi-serve) mounts the
// same surface on its main listener and keeps collection always on.
//
// The hot evaluation loops of package psi do not pay even the branch:
// they keep counting into the plain per-State psi.Stats fields they
// always had, and the aggregated Stats are published into the registry
// at flush points (end of a worker batch, end of a support-counting
// pass) via psi.PublishStats. Only coarse per-candidate events in
// package smartpsi (cache lookups, preemption transitions, model
// predictions) touch the gate directly.
package obs

import (
	"os"
	"sync/atomic"
)

var enabled atomic.Bool

func init() {
	if os.Getenv("PSI_OBS") != "" {
		enabled.Store(true)
	}
}

// Enabled reports whether metric and trace collection is on.
func Enabled() bool { return enabled.Load() }

// Enable switches collection on or off at runtime. The debug HTTP
// server and tests use it; production code should prefer the PSI_OBS
// environment variable or the -debug-addr flags.
func Enable(on bool) { enabled.Store(on) }
