package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"
)

// HandlerOption customises the debug mux returned by Handler.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	sampler  *Sampler
	alerts   *SLOSet
	bundler  *Bundler
	workload *Workload
	pprof    bool
}

// WithSampler mounts /seriesz over the given sampler's rings. Without
// it /seriesz answers 503.
func WithSampler(s *Sampler) HandlerOption {
	return func(c *handlerConfig) { c.sampler = s }
}

// WithAlerts mounts /alertz over the given SLO set. Without it /alertz
// answers 503.
func WithAlerts(a *SLOSet) HandlerOption {
	return func(c *handlerConfig) { c.alerts = a }
}

// WithBundler mounts /debugz/bundle: a GET streams a freshly assembled
// diagnostic bundle. Without it (or with nil) the route answers 503.
func WithBundler(b *Bundler) HandlerOption {
	return func(c *handlerConfig) { c.bundler = b }
}

// WithWorkload mounts /queryz over the given workload sketch. Without
// it (or with nil) /queryz answers 503.
func WithWorkload(w *Workload) HandlerOption {
	return func(c *handlerConfig) { c.workload = w }
}

// WithPprof controls whether /debug/pprof/* is mounted. The default is
// on — a debug-only listener (StartDebugServer) should expose the full
// surface — but a mux mounted on a serving listener should pass false
// unless the operator opted in (psi-serve -expose-pprof): pprof's CPU
// profile and symbol endpoints hand out process internals and can
// degrade the serving path. When off, the routes answer 403 with a
// pointer at the flag.
func WithPprof(on bool) HandlerOption {
	return func(c *handlerConfig) { c.pprof = on }
}

// Handler returns the debug mux over a registry, tracer and profile
// flight recorder:
//
//	/metrics            Prometheus text exposition
//	/metrics.json       JSON snapshot (the psi-bench "metrics" key)
//	/tracez             recent-query table
//	/tracez?id=N        one trace, Chrome trace-event JSON (about:tracing)
//	/profilez           flight recorder: K slowest + K most recent profiles
//	/profilez?id=N      one profile as an EXPLAIN ANALYZE text tree
//	/profilez?request_id=X  the profile recorded for one served request
//	/profilez?fingerprint=X the most recent profile of one query shape
//	/profilez?format=json  the same data as JSON (combinable with lookups)
//	/queryz             workload analytics (WithWorkload): shapes ranked
//	                    by aggregate cost with a cache-win estimate,
//	                    ?format=json for the schema-1 document
//	/modelz             model-decision telemetry: model-α confusion matrix,
//	                    vote-margin calibration, model-β plan rank, cache
//	                    quality, shadow-scoring regret, drift events
//	/modelz?format=json the same data as JSON
//	/seriesz            windowed time series (WithSampler): text sparklines,
//	                    ?format=json for the ring data
//	/alertz             SLO burn-rate alerts (WithAlerts): text table,
//	                    ?format=json for machine consumption
//	/debugz/bundle      download a diagnostic bundle (WithBundler):
//	                    a zip of everything above plus goroutine/heap
//	                    dumps; inspect offline with cmd/psi-bundle
//	/debug/pprof/       the standard net/http/pprof handlers
//	                    (gated by WithPprof; on by default)
func Handler(reg *Registry, tracer *Tracer, recorder *Recorder, opts ...HandlerOption) http.Handler {
	hc := handlerConfig{pprof: true}
	for _, o := range opts {
		o(&hc)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Client went away mid-write; nothing to do.
			return
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, req *http.Request) {
		if idStr := req.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 10, 64)
			if err != nil {
				http.Error(w, "bad id", http.StatusBadRequest)
				return
			}
			t := tracer.Lookup(id)
			if t == nil {
				http.Error(w, "trace not retained", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if err := WriteChromeTrace(w, t); err != nil {
				return
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "recent query traces (newest first); fetch one with /tracez?id=N\n\n")
		fmt.Fprintf(&buf, "%6s  %-24s  %-12s  %8s  %8s  %s\n", "ID", "NAME", "DURATION", "EVENTS", "DROPPED", "SUMMARY")
		for _, t := range tracer.Recent() {
			events := t.Events()
			state := "live"
			if t.Finished() {
				state = t.Duration().Round(time.Microsecond).String()
			}
			fmt.Fprintf(&buf, "%6d  %-24s  %-12s  %8d  %8d  %s\n",
				t.ID(), t.Name(), state, len(events), t.Dropped(), summarize(events))
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			return
		}
	})
	mux.HandleFunc("/profilez", func(w http.ResponseWriter, req *http.Request) {
		asJSON := req.URL.Query().Get("format") == "json"
		idStr, reqID := req.URL.Query().Get("id"), req.URL.Query().Get("request_id")
		fp := req.URL.Query().Get("fingerprint")
		if idStr != "" || reqID != "" || fp != "" {
			var p *Profile
			switch {
			case idStr != "":
				id, err := strconv.ParseUint(idStr, 10, 64)
				if err != nil {
					http.Error(w, "bad id", http.StatusBadRequest)
					return
				}
				p = recorder.Lookup(id)
			case reqID != "":
				p = recorder.LookupRequest(reqID)
			default:
				p = recorder.LookupFingerprint(fp)
			}
			if p == nil {
				http.Error(w, "profile not retained", http.StatusNotFound)
				return
			}
			d := p.Snapshot()
			if asJSON {
				w.Header().Set("Content-Type", "application/json")
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				if err := enc.Encode(d); err != nil {
					return
				}
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := d.WriteText(w); err != nil {
				return
			}
			return
		}
		slowest, recent := recorder.Slowest(), recorder.Recent()
		if asJSON {
			out := struct {
				Slowest []ProfileData `json:"slowest"`
				Recent  []ProfileData `json:"recent"`
			}{}
			for _, p := range slowest {
				out.Slowest = append(out.Slowest, p.Snapshot())
			}
			for _, p := range recent {
				out.Recent = append(out.Recent, p.Snapshot())
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(out); err != nil {
				return
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "query-profile flight recorder; fetch one with /profilez?id=N (add &format=json for JSON)\n")
		writeProfileTable(&buf, "slowest finished profiles", slowest)
		writeProfileTable(&buf, "most recent profiles (newest first)", recent)
		if _, err := w.Write(buf.Bytes()); err != nil {
			return
		}
	})
	mux.HandleFunc("/modelz", func(w http.ResponseWriter, req *http.Request) {
		d := DefaultModelStats.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(d); err != nil {
				return
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := d.WriteText(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/seriesz", func(w http.ResponseWriter, req *http.Request) {
		if hc.sampler == nil {
			http.Error(w, "time-series sampling disabled (start with -sample-interval > 0)",
				http.StatusServiceUnavailable)
			return
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := hc.sampler.WriteJSON(w); err != nil {
				return
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := hc.sampler.WriteText(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/alertz", func(w http.ResponseWriter, req *http.Request) {
		if hc.alerts == nil {
			http.Error(w, "SLO alerting disabled (start with -sample-interval > 0 and an SLO objective)",
				http.StatusServiceUnavailable)
			return
		}
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := hc.alerts.WriteJSON(w); err != nil {
				return
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := hc.alerts.WriteText(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/queryz", func(w http.ResponseWriter, req *http.Request) {
		if hc.workload == nil {
			http.Error(w, "workload analytics disabled (start psi-serve with -workload-topk > 0)",
				http.StatusServiceUnavailable)
			return
		}
		d := hc.workload.Snapshot()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := d.WriteJSON(w); err != nil {
				return
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := d.WriteText(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/debugz/bundle", func(w http.ResponseWriter, req *http.Request) {
		if hc.bundler == nil {
			http.Error(w, "diagnostic bundles not configured on this listener",
				http.StatusServiceUnavailable)
			return
		}
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		name := fmt.Sprintf("bundle-%s-manual.zip", time.Now().UTC().Format("20060102T150405Z"))
		w.Header().Set("Content-Type", "application/zip")
		w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", name))
		if _, err := hc.bundler.WriteBundle(w, BundleReasonManual, ""); err != nil {
			// Headers are out; the client sees a truncated zip and
			// ReadBundle rejects it.
			return
		}
	})
	if hc.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	} else {
		mux.HandleFunc("/debug/pprof/", func(w http.ResponseWriter, req *http.Request) {
			http.Error(w, "pprof is disabled on this listener (start psi-serve with -expose-pprof, or use a dedicated -debug-addr listener)",
				http.StatusForbidden)
		})
	}
	return mux
}

// writeProfileTable renders one flight-recorder section as an aligned
// text table.
func writeProfileTable(buf *bytes.Buffer, title string, profiles []*Profile) {
	fmt.Fprintf(buf, "\n%s\n", title)
	fmt.Fprintf(buf, "%6s  %-24s  %-12s  %-22s  %10s  %8s  %s\n",
		"ID", "NAME", "DURATION", "METHOD", "CANDIDATES", "BINDINGS", "LADDER (entered r1/r2/r3)")
	for _, p := range profiles {
		d := p.Snapshot()
		state := "live"
		if d.Finished {
			state = d.Duration().Round(time.Microsecond).String()
		}
		var ladder [NumLadderRungs]int64
		for i, r := range d.Ladder {
			if i < NumLadderRungs {
				ladder[i] = r.Entered
			}
		}
		fmt.Fprintf(buf, "%6d  %-24s  %-12s  %-22s  %10d  %8d  %d/%d/%d\n",
			d.ID, d.Name, state, orDash(d.Method), d.Candidates, d.Bindings,
			ladder[0], ladder[1], ladder[2])
	}
}

// summarize renders an event-kind frequency digest like
// "cache_hit:12 flip:2 mode_actual:30".
func summarize(events []Event) string {
	counts := make(map[EventKind]int)
	for _, e := range events {
		counts[e.Kind]++
	}
	kinds := make([]EventKind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var buf bytes.Buffer
	for i, k := range kinds {
		if i > 0 {
			buf.WriteByte(' ')
		}
		fmt.Fprintf(&buf, "%s:%d", k, counts[k])
	}
	return buf.String()
}

// StartDebugServer enables collection and serves the default registry
// and tracer (plus pprof) on addr, returning the bound address (useful
// with ":0") and a close function that shuts the server down and waits
// for the serve goroutine to exit. The cmd binaries call this from
// their -debug-addr flag.
func StartDebugServer(addr string) (boundAddr string, closeFn func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: debug server: %w", err)
	}
	Enable(true)
	srv := &http.Server{Handler: Handler(Default, DefaultTracer, DefaultRecorder)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	closeFn = func() error {
		cerr := srv.Close()
		if serr := <-done; serr != nil && serr != http.ErrServerClosed && cerr == nil {
			cerr = serr
		}
		return cerr
	}
	return ln.Addr().String(), closeFn, nil
}
