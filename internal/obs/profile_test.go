package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestObsProfileNilSafe pins the gating contract: every Profile method
// must accept a nil receiver (Recorder.Start returns nil when
// collection is off), and a nil Recorder must be inert.
func TestObsProfileNilSafe(t *testing.T) {
	var p *Profile
	p.SetMethod("ml")
	p.SetCandidates(3)
	p.SetTraining(1, 2, time.Second)
	p.RecordDecision(true, 0, 1)
	p.LadderObserve(LadderPredicted, true, time.Millisecond)
	p.MergeFunnel(&Funnel{})
	p.SetWork("x", 1)
	p.SetOutcome(5)
	p.SetError("boom")
	p.Finish()
	if p.ID() != 0 || p.Name() != "" || p.Duration() != 0 || p.Finished() {
		t.Error("nil profile accessors must return zero values")
	}
	if got := p.Snapshot(); got.ID != 0 {
		t.Errorf("nil snapshot = %+v", got)
	}
	if got := p.FunnelTotals(); got != (FunnelDepth{}) {
		t.Errorf("nil funnel totals = %+v", got)
	}
	if p.FunnelSnapshot() != nil {
		t.Error("nil profile FunnelSnapshot must be nil")
	}

	var r *Recorder
	if r.Start("x") != nil {
		t.Error("nil recorder Start must return nil")
	}
	if r.Recent() != nil || r.Slowest() != nil || r.Lookup(1) != nil || r.LastID() != 0 {
		t.Error("nil recorder accessors must be inert")
	}
}

// TestObsRecorderDisabled pins that Start is gated on Enabled().
func TestObsRecorderDisabled(t *testing.T) {
	prev := Enabled()
	defer Enable(prev)
	Enable(false)
	r := NewRecorder(2)
	if p := r.Start("q"); p != nil {
		t.Fatalf("Start with collection disabled = %v, want nil", p)
	}
	if got := r.LastID(); got != 0 {
		t.Errorf("LastID after disabled Start = %d, want 0", got)
	}
}

// TestObsRecorderEviction pins the two retention policies: the recent
// ring keeps the K newest (live included, newest first) and the slowest
// set keeps the K slowest finished profiles in duration-descending
// order, evicting the fastest.
func TestObsRecorderEviction(t *testing.T) {
	withEnabled(t, func() {
		r := NewRecorder(3)
		durs := []time.Duration{ // ms; admission order
			5 * time.Millisecond,
			50 * time.Millisecond,
			10 * time.Millisecond,
			40 * time.Millisecond,
			20 * time.Millisecond, // evicts nothing: 50,40,20 retained? no: see below
		}
		var ps []*Profile
		for i, d := range durs {
			p := r.Start(fmt.Sprintf("q%d", i))
			p.FinishIn(d)
			ps = append(ps, p)
		}
		// Slowest 3 of {5,50,10,40,20} are 50,40,20.
		slow := r.Slowest()
		if len(slow) != 3 {
			t.Fatalf("len(Slowest) = %d, want 3", len(slow))
		}
		wantSlow := []string{"q1", "q3", "q4"}
		for i, p := range slow {
			if p.Name() != wantSlow[i] {
				t.Errorf("Slowest[%d] = %s (%s), want %s", i, p.Name(), p.Duration(), wantSlow[i])
			}
		}
		// Recent ring: newest first, capacity 3.
		recent := r.Recent()
		wantRecent := []string{"q4", "q3", "q2"}
		if len(recent) != 3 {
			t.Fatalf("len(Recent) = %d, want 3", len(recent))
		}
		for i, p := range recent {
			if p.Name() != wantRecent[i] {
				t.Errorf("Recent[%d] = %s, want %s", i, p.Name(), wantRecent[i])
			}
		}
		// Lookup finds profiles retained in either set: q1 (slowest only,
		// evicted from the ring) and q2 (ring only, too fast for slowest).
		if p := r.Lookup(ps[1].ID()); p == nil || p.Name() != "q1" {
			t.Errorf("Lookup(q1) = %v", p)
		}
		if p := r.Lookup(ps[2].ID()); p == nil || p.Name() != "q2" {
			t.Errorf("Lookup(q2) = %v", p)
		}
		if p := r.Lookup(ps[0].ID()); p != nil {
			t.Errorf("Lookup(q0) = %s, want nil (evicted everywhere)", p.Name())
		}
		if r.LastID() != ps[len(ps)-1].ID() {
			t.Errorf("LastID = %d, want %d", r.LastID(), ps[len(ps)-1].ID())
		}
	})
}

// TestObsRecorderTies pins deterministic tie-breaking in the slowest
// set: equal durations keep admission (ID) order.
func TestObsRecorderTies(t *testing.T) {
	withEnabled(t, func() {
		r := NewRecorder(2)
		for i := 0; i < 3; i++ {
			r.Start(fmt.Sprintf("t%d", i)).FinishIn(7 * time.Millisecond)
		}
		slow := r.Slowest()
		if len(slow) != 2 || slow[0].Name() != "t0" || slow[1].Name() != "t1" {
			names := make([]string, len(slow))
			for i, p := range slow {
				names[i] = p.Name()
			}
			t.Errorf("Slowest ties = %v, want [t0 t1]", names)
		}
	})
}

// TestObsRecorderConcurrent hammers one recorder from many goroutines
// (run under -race in CI) and checks the retained invariants: slowest
// is duration-descending with at most K entries, recent has at most K.
func TestObsRecorderConcurrent(t *testing.T) {
	withEnabled(t, func() {
		const k = 8
		r := NewRecorder(k)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					p := r.Start(fmt.Sprintf("w%d-%d", w, i))
					p.RecordDecision(i%2 == 0, i%2, i%3)
					p.LadderObserve(i%NumLadderRungs, true, time.Microsecond)
					p.MergeFunnel(&Funnel{Depths: []FunnelDepth{{Generated: 2, DegOK: 1}}})
					p.FinishIn(time.Duration(1+(w*211+i*97)%500) * time.Millisecond)
				}
			}(w)
		}
		// Concurrent readers exercise snapshotting against live writers.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 50; i++ {
				for _, p := range r.Recent() {
					_ = p.Snapshot()
				}
				_ = r.Slowest()
			}
		}()
		wg.Wait()
		<-done

		slow := r.Slowest()
		if len(slow) == 0 || len(slow) > k {
			t.Fatalf("len(Slowest) = %d, want 1..%d", len(slow), k)
		}
		for i := 1; i < len(slow); i++ {
			if slow[i].Duration() > slow[i-1].Duration() {
				t.Errorf("Slowest not descending at %d: %s then %s", i, slow[i-1].Duration(), slow[i].Duration())
			}
		}
		if got := len(r.Recent()); got != k {
			t.Errorf("len(Recent) = %d, want %d", got, k)
		}
		if r.LastID() != 8*200 {
			t.Errorf("LastID = %d, want %d", r.LastID(), 8*200)
		}
	})
}

// TestObsFunnel pins Funnel accumulation semantics.
func TestObsFunnel(t *testing.T) {
	var f Funnel
	f.At(1).Generated += 4
	f.At(1).DegOK += 3
	f.At(0).Generated++
	if len(f.Depths) != 2 {
		t.Fatalf("len(Depths) = %d, want 2", len(f.Depths))
	}
	var g Funnel
	g.Merge(&f)
	g.Merge(&f)
	g.Merge(nil)
	tot := g.Totals()
	if tot.Generated != 10 || tot.DegOK != 6 {
		t.Errorf("Totals = %+v, want generated=10 deg-ok=6", tot)
	}
	c := g.Clone()
	c.At(0).Generated = 99
	if g.Depths[0].Generated == 99 {
		t.Error("Clone must deep-copy")
	}
	if (*Funnel)(nil).Clone() != nil {
		t.Error("nil Clone must be nil")
	}
	names := StageNames()
	stages := f.Depths[1].Stages()
	if len(names) != len(stages) {
		t.Errorf("StageNames/Stages length mismatch: %d vs %d", len(names), len(stages))
	}
	if names[0] != "generated" || names[len(names)-1] != "matched" {
		t.Errorf("StageNames = %v", names)
	}
}

// TestObsProfileSnapshot pins the snapshot and both renderings (text
// tree and JSON) of a fully populated profile.
func TestObsProfileSnapshot(t *testing.T) {
	p := NewProfile("snapq")
	p.SetMethod("ml")
	p.SetCandidates(42)
	p.SetTraining(64, 3, 2*time.Millisecond)
	p.RecordDecision(false, 0, 2)
	p.RecordDecision(false, 1, 0)
	p.RecordDecision(true, 1, 0)
	p.LadderObserve(LadderPredicted, true, 3*time.Millisecond)
	p.LadderObserve(LadderPredicted, false, time.Millisecond)
	p.LadderObserve(LadderOpposite, true, 4*time.Millisecond)
	p.LadderObserve(-1, true, time.Hour)             // ignored
	p.LadderObserve(NumLadderRungs, true, time.Hour) // ignored
	p.MergeFunnel(&Funnel{Depths: []FunnelDepth{
		{Generated: 100, DegOK: 60, SigOK: 40, Recursed: 30, Matched: 5},
		{Generated: 30, DegOK: 20, SigOK: 12, Recursed: 12, Matched: 4},
	}})
	p.SetWork("psi_recursions_total", 123)
	p.SetOutcome(5)
	p.FinishIn(9 * time.Millisecond)
	p.FinishIn(time.Hour) // idempotent

	d := p.Snapshot()
	if !d.Finished || d.Duration() != 9*time.Millisecond {
		t.Errorf("finished=%v duration=%s, want true/9ms", d.Finished, d.Duration())
	}
	if d.Method != "ml" || d.Candidates != 42 || d.Bindings != 5 {
		t.Errorf("header fields = %+v", d)
	}
	if d.CacheHits != 1 || d.CacheMisses != 2 {
		t.Errorf("cache = %d/%d, want 1/2", d.CacheHits, d.CacheMisses)
	}
	if d.ModePredicted["optimistic"] != 1 || d.ModePredicted["pessimistic"] != 2 {
		t.Errorf("ModePredicted = %v", d.ModePredicted)
	}
	if len(d.PlanChosen) != 3 || d.PlanChosen[0] != 2 || d.PlanChosen[2] != 1 {
		t.Errorf("PlanChosen = %v", d.PlanChosen)
	}
	if d.Ladder[LadderPredicted].Entered != 2 || d.Ladder[LadderPredicted].Resolved != 1 {
		t.Errorf("ladder rung 1 = %+v", d.Ladder[LadderPredicted])
	}
	if d.Ladder[LadderOpposite].Nanos != (4 * time.Millisecond).Nanoseconds() {
		t.Errorf("ladder rung 2 nanos = %d", d.Ladder[LadderOpposite].Nanos)
	}
	if tot := p.FunnelTotals(); tot.Generated != 130 || tot.Matched != 9 {
		t.Errorf("FunnelTotals = %+v", tot)
	}

	var buf bytes.Buffer
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"query snapq", "method=ml", "candidates=42", "bindings=5",
		"mode (model α): optimistic=1 pessimistic=2",
		"plan (model β): [0]=2 [2]=1",
		"recovery ladder", "rung 1 predicted", "rung 3 heuristic",
		"candidate funnel", "generated", "matched",
		"psi_recursions_total=123",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("WriteText missing %q:\n%s", want, text)
		}
	}

	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back ProfileData
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.DurationNanos != d.DurationNanos || back.Funnel[0].Generated != 100 {
		t.Errorf("JSON round-trip = %+v", back)
	}
}

// TestObsProfileLiveSnapshot pins the live (unfinished) rendering path.
func TestObsProfileLiveSnapshot(t *testing.T) {
	p := NewProfile("liveq")
	p.SetError("deadline exceeded")
	d := p.Snapshot()
	if d.Finished {
		t.Error("live profile must not be finished")
	}
	if d.Duration() <= 0 {
		t.Errorf("live duration = %s, want > 0", d.Duration())
	}
	var buf bytes.Buffer
	if err := d.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "live") || !strings.Contains(buf.String(), "error: deadline exceeded") {
		t.Errorf("live WriteText:\n%s", buf.String())
	}
}

// TestObsStartProfileDefault pins the std.go convenience wiring.
func TestObsStartProfileDefault(t *testing.T) {
	withEnabled(t, func() {
		p := StartProfile("defq")
		if p == nil {
			t.Fatal("StartProfile returned nil with collection enabled")
		}
		p.Finish()
		if DefaultRecorder.Lookup(p.ID()) == nil {
			t.Error("default recorder did not retain the profile")
		}
	})
}
