package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestDecisionLogBounded(t *testing.T) {
	var buf bytes.Buffer
	l := NewDecisionLog(&buf, 3)
	for i := 0; i < 5; i++ {
		l.Append(DecisionRecord{Kind: DecisionKindMode, Node: int64(i)})
	}
	if w, d := l.Written(), l.Dropped(); w != 3 || d != 2 {
		t.Errorf("written/dropped = %d/%d, want 3/2", w, d)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l.Append(DecisionRecord{Kind: DecisionKindMode}) // post-close: dropped
	if d := l.Dropped(); d != 3 {
		t.Errorf("dropped after post-close append = %d, want 3", d)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}

	recs, err := ReadDecisionLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if r.Schema != DecisionSchemaVersion {
			t.Errorf("record %d schema = %d, want %d (Append must stamp it)", i, r.Schema, DecisionSchemaVersion)
		}
		if r.Node != int64(i) {
			t.Errorf("record %d node = %d, want %d (order must be preserved)", i, r.Node, i)
		}
	}
}

func TestDecisionLogNilSafe(t *testing.T) {
	var l *DecisionLog
	l.Append(DecisionRecord{Kind: DecisionKindMode})
	if l.Written() != 0 || l.Dropped() != 0 {
		t.Error("nil log reports nonzero counts")
	}
	if err := l.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}

func TestDecisionLogDefaultCap(t *testing.T) {
	var buf bytes.Buffer
	l := NewDecisionLog(&buf, 0)
	if l.max != DefaultDecisionLogCap {
		t.Errorf("cap = %d with maxRecords=0, want DefaultDecisionLogCap %d", l.max, DefaultDecisionLogCap)
	}
}

func TestReadDecisionLogRejectsForeignSchema(t *testing.T) {
	rec := DecisionRecord{Schema: DecisionSchemaVersion + 1, Kind: DecisionKindMode}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDecisionLog(bytes.NewReader(data)); err == nil {
		t.Error("schema version +1 accepted; readers must reject foreign schemas")
	}
	if _, err := ReadDecisionLog(strings.NewReader("{not json}\n")); err == nil {
		t.Error("malformed JSON line accepted")
	}
	// Blank lines are tolerated.
	var buf bytes.Buffer
	l := NewDecisionLog(&buf, 0)
	l.Append(DecisionRecord{Kind: DecisionKindCache})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadDecisionLog(strings.NewReader("\n" + buf.String() + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Errorf("read %d records with padding blank lines, want 1", len(recs))
	}
}

func TestDecisionLogConcurrentAppend(t *testing.T) {
	var buf bytes.Buffer
	l := NewDecisionLog(&buf, 1000)
	var wg sync.WaitGroup
	const writers, each = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Append(DecisionRecord{Kind: DecisionKindMode, Node: int64(w*each + i)})
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.Written() != writers*each {
		t.Fatalf("written = %d, want %d", l.Written(), writers*each)
	}
	recs, err := ReadDecisionLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*each {
		t.Errorf("read %d records, want %d (interleaved writes must stay line-atomic)", len(recs), writers*each)
	}
}

func TestCalibrationBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		margin float64
		want   int
	}{
		{-0.5, 0}, {0, 0}, {0.19, 0}, {0.2, 1}, {0.5, 2}, {0.99, 4}, {1, 4}, {1.5, 4},
	}
	for _, tc := range cases {
		if got := CalibrationBucketIndex(tc.margin); got != tc.want {
			t.Errorf("CalibrationBucketIndex(%v) = %d, want %d", tc.margin, got, tc.want)
		}
	}
}

// TestModelStatsSnapshot pins the aggregate arithmetic: confusion
// matrix cells, calibration buckets, rank histogram growth, regret
// split by kind, and the derived accuracy/top-k helpers.
func TestModelStatsSnapshot(t *testing.T) {
	var m ModelStats
	m.ObserveAlpha(true, true, 0.9)   // TP, bucket 4
	m.ObserveAlpha(true, false, 0.1)  // FP, bucket 0
	m.ObserveAlpha(false, false, 0.9) // TN, bucket 4
	m.ObserveBetaRank(1)
	m.ObserveBetaRank(3)
	m.ObserveCacheCheck(false)
	m.ObserveCacheCheck(true)
	m.ObserveRegret(DecisionKindMode, 100, false)
	m.ObserveRegret(DecisionKindPlan, 300, true)
	m.ObserveShadowMismatch()
	m.ObserveDrift()

	d := m.Snapshot()
	if d.Alpha != [2][2]int64{{1, 1}, {0, 1}} {
		t.Errorf("alpha = %v, want [[1 1] [0 1]]", d.Alpha)
	}
	if got := d.AlphaAccuracy(); got != 2.0/3.0 {
		t.Errorf("accuracy = %v, want 2/3", got)
	}
	if d.Calibration[4].N != 2 || d.Calibration[4].Correct != 2 || d.Calibration[0].N != 1 || d.Calibration[0].Correct != 0 {
		t.Errorf("calibration = %v", d.Calibration)
	}
	if want := []int64{1, 0, 1}; fmt.Sprint(d.BetaRanks) != fmt.Sprint(want) {
		t.Errorf("betaRanks = %v, want %v", d.BetaRanks, want)
	}
	if d.BetaTopK(1) != 0.5 || d.BetaTopK(3) != 1 {
		t.Errorf("top-1 = %v, top-3 = %v", d.BetaTopK(1), d.BetaTopK(3))
	}
	if d.CacheChecks != 2 || d.CacheStale != 1 {
		t.Errorf("cache = %d/%d, want 2/1", d.CacheChecks, d.CacheStale)
	}
	if d.ModeRegret.Runs != 1 || d.ModeRegret.TotalNanos != 100 || d.ModeRegret.Timeouts != 0 {
		t.Errorf("mode regret = %+v", d.ModeRegret)
	}
	if d.PlanRegret.Runs != 1 || d.PlanRegret.TotalNanos != 300 || d.PlanRegret.Timeouts != 1 {
		t.Errorf("plan regret = %+v", d.PlanRegret)
	}
	if d.ShadowMismatches != 1 || d.DriftEvents != 1 {
		t.Errorf("mismatches/drift = %d/%d, want 1/1", d.ShadowMismatches, d.DriftEvents)
	}

	m.Reset()
	if d := m.Snapshot(); d.AlphaTotal() != 0 || d.BetaObserved() != 0 {
		t.Errorf("Reset left data behind: %+v", d)
	}

	// Nil-safety: every method on a nil receiver is a no-op.
	var nm *ModelStats
	nm.ObserveAlpha(true, true, 0)
	nm.ObserveBetaRank(1)
	nm.ObserveCacheCheck(true)
	nm.ObserveRegret(DecisionKindMode, 1, false)
	nm.ObserveShadowMismatch()
	nm.ObserveDrift()
	nm.Reset()
	if d := nm.Snapshot(); d.AlphaTotal() != 0 {
		t.Error("nil ModelStats snapshot non-empty")
	}
}

// TestModelzConcurrent hammers DefaultModelStats from writer goroutines
// while readers fetch /modelz in both renderings — the -race test of the
// model-telemetry path (writers take the stats mutex, the handler
// snapshots under it).
func TestModelzConcurrent(t *testing.T) {
	withEnabled(t, func() {
		DefaultModelStats.Reset()
		defer DefaultModelStats.Reset()
		h := Handler(NewRegistry(), NewTracer(1), NewRecorder(1))

		var wg sync.WaitGroup
		const writers, iters = 4, 200
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					DefaultModelStats.ObserveAlpha(i%2 == 0, i%3 == 0, float64(i%10)/10)
					DefaultModelStats.ObserveBetaRank(1 + i%4)
					DefaultModelStats.ObserveCacheCheck(i%7 == 0)
					DefaultModelStats.ObserveRegret(DecisionKindMode, 50, false)
					DefaultModelStats.ObserveRegret(DecisionKindPlan, 80, i%5 == 0)
				}
			}(w)
		}
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if code, body := get(t, h, "/modelz"); code != 200 || !strings.Contains(body, "confusion matrix") {
						t.Errorf("/modelz = %d\n%s", code, body)
						return
					}
					if code, body := get(t, h, "/modelz?format=json"); code != 200 || !strings.Contains(body, `"alpha_confusion"`) {
						t.Errorf("/modelz?format=json = %d\n%s", code, body)
						return
					}
				}
			}()
		}
		wg.Wait()

		d := DefaultModelStats.Snapshot()
		if got, want := d.AlphaTotal(), int64(writers*iters); got != want {
			t.Errorf("alpha total = %d, want %d (lost updates under contention)", got, want)
		}
		if got, want := d.BetaObserved(), int64(writers*iters); got != want {
			t.Errorf("beta observed = %d, want %d", got, want)
		}
		if got, want := d.ModeRegret.Runs+d.PlanRegret.Runs, int64(2*writers*iters); got != want {
			t.Errorf("regret runs = %d, want %d", got, want)
		}

		// The final rendering reflects the settled totals in both formats.
		_, body := get(t, h, "/modelz?format=json")
		var js ModelStatsData
		if err := json.Unmarshal([]byte(body), &js); err != nil {
			t.Fatalf("/modelz JSON: %v", err)
		}
		if js.AlphaTotal() != d.AlphaTotal() {
			t.Errorf("/modelz JSON alpha total = %d, snapshot %d", js.AlphaTotal(), d.AlphaTotal())
		}
	})
}
