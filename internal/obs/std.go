package obs

// Default is the process-wide registry every built-in instrumentation
// site publishes into; the debug HTTP endpoint serves it at /metrics.
var Default = NewRegistry()

// DefaultTracer retains the most recent query traces for /tracez.
var DefaultTracer = NewTracer(64)

// DefaultRecorder is the process-wide query-profile flight recorder
// (16 slowest + 16 most recent), served at /profilez.
var DefaultRecorder = NewRecorder(16)

// StartQuery begins a trace on the default tracer (nil when collection
// is disabled).
func StartQuery(name string) *QueryTrace { return DefaultTracer.StartQuery(name) }

// StartProfile begins an execution profile on the default flight
// recorder (nil when collection is disabled).
func StartProfile(name string) *Profile { return DefaultRecorder.Start(name) }

// Standard metrics. Each maps to a paper concept (see DESIGN.md §8):
// prunes are Proposition 3.2 signature satisfaction failures, cap hits
// are the super-optimistic fan-out cap of Section 3.3 (10), flips and
// fallbacks are the Section 4.3 recovery states 2 and 3, and mode
// mispredictions measure model α (Figure 11).
var (
	// --- package psi: evaluator work counters (flushed via PublishStats) ---

	PSIRecursions   = Default.Counter("psi_recursions_total", "backtracking steps entered by the PSI evaluators")
	PSICandidates   = Default.Counter("psi_candidates_total", "candidate bindings examined")
	PSISigPrunes    = Default.Counter("psi_sig_prunes_total", "candidates pruned by Proposition 3.2 signature satisfaction")
	PSIDegPrunes    = Default.Counter("psi_deg_prunes_total", "candidates pruned by the degree lower bound (pessimistic, Section 3.4)")
	PSISorts        = Default.Counter("psi_sorts_total", "optimistic candidate sorts performed")
	PSIScoreCalcs   = Default.Counter("psi_score_calcs_total", "satisfiability scores computed")
	PSICapHits      = Default.Counter("psi_cap_hits_total", "super-optimistic candidate-cap truncations (cap 10, Section 3.3)")
	PSIMatches      = Default.Counter("psi_matches_total", "full query embeddings found (successful pivot evaluations)")
	PSIDeadlineHits = Default.Counter("psi_deadline_aborts_total", "evaluations aborted by a deadline")
	PSIStopHits     = Default.Counter("psi_stop_aborts_total", "evaluations aborted by a stop flag (two-threaded racing)")

	// --- package psi: EvaluateAllParallel worker pool ---

	PSIParallelWorkers = Default.Gauge("psi_parallel_workers", "live EvaluateAllParallel workers")
	PSIParallelRuns    = Default.Counter("psi_parallel_runs_total", "EvaluateAllParallel invocations")

	// --- package smartpsi: engine, models, cache, preemption ---

	SmartEngineBuilds  = Default.Counter("smartpsi_engine_builds_total", "engines constructed (signature startup phases)")
	SmartSigBuildSecs  = Default.Histogram("smartpsi_signature_build_seconds", "one-off signature construction time (Figure 8)", LatencyBuckets)
	SmartQueries       = Default.Counter("smartpsi_queries_total", "SmartPSI query evaluations started")
	SmartQueriesML     = Default.Counter("smartpsi_ml_queries_total", "queries large enough to train per-query models")
	SmartTrainedNodes  = Default.Counter("smartpsi_trained_nodes_total", "training-set nodes evaluated for model fitting")
	SmartCacheHits     = Default.Counter("smartpsi_cache_hits_total", "signature-keyed prediction cache hits (Section 4.2.3)")
	SmartCacheMisses   = Default.Counter("smartpsi_cache_misses_total", "prediction cache misses")
	SmartTimeouts      = Default.Counter("smartpsi_timeouts_total", "MaxTime budget expirations during preemptive evaluation (Section 4.3)")
	SmartFlips         = Default.Counter("smartpsi_flips_total", "state-2 recoveries: re-evaluation with the opposite method")
	SmartFallbacks     = Default.Counter("smartpsi_fallbacks_total", "state-3 recoveries: heuristic-plan restarts")
	SmartRecoveries    = Default.Counter("smartpsi_recoveries_total", "total recovery transitions (flips + fallbacks)")
	SmartModeChecks    = Default.Counter("smartpsi_mode_predictions_total", "model α predictions scored against ground truth")
	SmartMispredicts   = Default.Counter("smartpsi_mode_mispredictions_total", "model α predictions contradicted by ground truth (Figure 11)")
	SmartQuerySeconds  = Default.Histogram("smartpsi_query_seconds", "end-to-end SmartPSI query latency", LatencyBuckets)
	SmartTrainSeconds  = Default.Histogram("smartpsi_train_seconds", "per-query model training time (Table 4 overhead)", LatencyBuckets)
	SmartPlanSeconds   = Default.Histogram("smartpsi_plan_eval_seconds", "single candidate evaluation time per (method, plan)", LatencyBuckets)
	SmartRecursionDist = Default.Histogram("smartpsi_query_recursions", "per-query recursion totals", CountBuckets)

	// --- package smartpsi: per-query candidate-funnel totals (profile flush) ---

	SmartFunnelGenerated = Default.Histogram("smartpsi_funnel_generated", "per-query funnel: candidates generated across all plan depths", CountBuckets)
	SmartFunnelDegOK     = Default.Histogram("smartpsi_funnel_deg_ok", "per-query funnel: candidates surviving the degree lower bound", CountBuckets)
	SmartFunnelSigOK     = Default.Histogram("smartpsi_funnel_sig_ok", "per-query funnel: candidates surviving Proposition 3.2 signature satisfaction", CountBuckets)
	SmartFunnelRecursed  = Default.Histogram("smartpsi_funnel_recursed", "per-query funnel: candidates recursed into", CountBuckets)
	SmartFunnelMatched   = Default.Histogram("smartpsi_funnel_matched", "per-query funnel: candidates whose subtree produced a full mapping", CountBuckets)

	// --- package smartpsi: model-decision audit (shadow scoring, drift) ---

	SmartShadowModeRuns     = Default.Counter("smartpsi_shadow_mode_runs_total", "shadow runs of the opposite method on sampled candidates (model-α audit)")
	SmartShadowPlanRuns     = Default.Counter("smartpsi_shadow_plan_runs_total", "shadow runs of a sampled alternative plan (model-β audit)")
	SmartShadowTimeouts     = Default.Counter("smartpsi_shadow_timeouts_total", "shadow runs censored by the shadow budget (counterfactual at least budget; regret 0)")
	SmartShadowMismatches   = Default.Counter("smartpsi_shadow_mismatches_total", "shadow runs whose matched/not-matched verdict contradicted the primary run (must stay 0)")
	SmartModeRegretSeconds  = Default.Histogram("smartpsi_shadow_mode_regret_seconds", "per-decision regret of the predicted method vs its counterfactual (max(0, primary − shadow))", LatencyBuckets)
	SmartPlanRegretSeconds  = Default.Histogram("smartpsi_shadow_plan_regret_seconds", "per-decision regret of the predicted plan vs a sampled alternative", LatencyBuckets)
	SmartQueryRegretSeconds = Default.Histogram("smartpsi_query_regret_seconds", "per-query total shadow-scoring regret", LatencyBuckets)
	SmartCacheQualityChecks = Default.Counter("smartpsi_cache_quality_checks_total", "sampled cache hits re-predicted against the fresh per-query models")
	SmartCacheStaleHits     = Default.Counter("smartpsi_cache_stale_hits_total", "sampled cache hits whose cached decision disagreed with a fresh prediction")
	SmartBetaRankChecks     = Default.Counter("smartpsi_beta_rank_checks_total", "model-β predictions ranked against the per-plan training sweeps")
	SmartBetaRankTop1       = Default.Counter("smartpsi_beta_rank_top1_total", "model-β predictions that picked the sweep's fastest plan")
	SmartDriftEvents        = Default.Counter("smartpsi_model_drift_events_total", "model-α accuracy drift events (windowed-delta detector, internal/ml)")

	// --- package server: the psi-serve query service ---
	//
	// Unlike the evaluator instrumentation above, the serving-path
	// metrics are updated unconditionally (no Enabled() gate): a serving
	// process always runs with collection on (cmd/psi-serve enables it
	// at startup), per-request atomic adds are noise next to an HTTP
	// round trip, and the in-flight/queue gauges must never drift if
	// collection is toggled mid-flight.

	ServerRequests     = Default.Counter("server_requests_total", "HTTP requests accepted on /v1/psi and /v1/psi/batch")
	ServerBatchQueries = Default.Counter("server_batch_queries_total", "individual queries submitted through /v1/psi/batch")
	ServerInFlight     = Default.Gauge("server_inflight", "admitted queries currently evaluating (holding a worker slot)")
	ServerQueueDepth   = Default.Gauge("server_queue_depth", "queries waiting in the bounded admission queue")
	ServerShed         = Default.Counter("server_shed_total", "queries rejected 429 because the admission queue was full (load shedding)")
	ServerDrainRejects = Default.Counter("server_drain_rejects_total", "requests rejected 503 while the server was draining")
	ServerDeadlineHits = Default.Counter("server_deadline_hits_total", "queries that exceeded their deadline (504), queued or evaluating")
	ServerBadRequests  = Default.Counter("server_bad_requests_total", "malformed or oversized requests rejected 4xx before admission")
	ServerPanics       = Default.Counter("server_panics_total", "request-scoped panics recovered into 500 responses")
	ServerDraining     = Default.Gauge("server_draining", "1 while a graceful drain is in progress or complete, else 0")
	ServerPSISeconds   = Default.Histogram("server_psi_seconds", "per-request latency of /v1/psi (admission wait + evaluation + encode)", LatencyBuckets)
	ServerBatchSeconds = Default.Histogram("server_batch_seconds", "per-request latency of /v1/psi/batch", LatencyBuckets)
	ServerAdmitWait    = Default.Histogram("server_admission_wait_seconds", "time spent queued before acquiring a worker slot", LatencyBuckets)
	ServerBatchSize    = Default.Histogram("server_batch_size", "queries per /v1/psi/batch request", CountBuckets)
	ServerPartials     = Default.Counter("server_partial_total", "200 responses served with partial=true (at least one shard's answer missing)")

	// --- package shard: scatter-gather serving across graph shards ---

	ShardScatters   = Default.Counter("shard_scatter_total", "queries scattered to all shards for evaluation")
	ShardPartials   = Default.Counter("shard_scatter_partial_total", "scatters that lost at least one shard (error or timeout) and returned partial results")
	ShardDupDrops   = Default.Counter("shard_dup_bindings_total", "duplicate pivot bindings dropped at gather (ownership overlap; should stay 0)")
	ShardGatherSecs = Default.Histogram("shard_gather_seconds", "wall time of a full scatter-gather evaluation, slowest shard included", LatencyBuckets)
	ShardCount      = Default.Gauge("shard_count", "shards this process scatters to (0 when serving a single unsharded engine)")

	// --- package fsm: frequent-subgraph-mining support counting ---

	FSMSupportCalls    = Default.Counter("fsm_support_calls_total", "MNI support evaluations")
	FSMSupportFrequent = Default.Counter("fsm_support_frequent_total", "support evaluations that reached the threshold")
	FSMSupportEvals    = Default.Counter("fsm_support_candidate_evals_total", "candidate PSI evaluations during support counting")
	FSMSupportSeconds  = Default.Histogram("fsm_support_seconds", "per-pattern support evaluation time", LatencyBuckets)
)
