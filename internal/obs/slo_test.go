package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var sloBase = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// sloFixture wires a registry with the serving counters, a sampler and
// one availability objective, all driven manually via SampleAt.
func sloFixture(t *testing.T, forDur time.Duration) (*Counter, *Counter, *Sampler, *SLOSet) {
	t.Helper()
	reg := NewRegistry()
	req := reg.Counter("server_requests_total", "requests")
	shed := reg.Counter("server_shed_total", "sheds")
	s := NewSampler(reg, time.Second, 64)
	// Target 0.9 (10% error budget), burn factor 2: windowed bad ratio
	// >= 20% trips the alert.
	set := NewSLOSet(s, []Objective{
		AvailabilityObjective(0.9, 2*time.Second, 5*time.Second, 2, forDur),
	})
	return req, shed, s, set
}

// TestSLOBurnMath pins the availability burn-rate computation.
func TestSLOBurnMath(t *testing.T) {
	req, shed, s, set := sloFixture(t, 0)

	s.SampleAt(sloBase)
	st := set.Status()[0]
	if st.FastWindowSampled || st.SlowWindowSampled {
		t.Errorf("windows sampled after one sample: %+v", st)
	}
	if st.State != StateInactive {
		t.Errorf("state = %s, want inactive", st.State)
	}

	req.Add(100)
	shed.Add(50)
	s.SampleAt(sloBase.Add(time.Second))
	st = set.Status()[0]
	// bad/total = 0.5, budget 0.1 -> burn 5 in both windows.
	if !st.FastWindowSampled || !approx(st.FastBurn, 5, 1e-9) {
		t.Errorf("fast burn = %v (sampled=%v), want 5", st.FastBurn, st.FastWindowSampled)
	}
	if !st.SlowWindowSampled || !approx(st.SlowBurn, 5, 1e-9) {
		t.Errorf("slow burn = %v (sampled=%v), want 5", st.SlowBurn, st.SlowWindowSampled)
	}

	// A window with traffic but no errors burns at 0; with no traffic at
	// all it also burns 0 but stays sampled.
	req.Add(100)
	s.SampleAt(sloBase.Add(2 * time.Second))
	s.SampleAt(sloBase.Add(3 * time.Second))
	st = set.Status()[0]
	if !st.FastWindowSampled || st.FastBurn != 0 {
		t.Errorf("clean fast burn = %v (sampled=%v), want 0", st.FastBurn, st.FastWindowSampled)
	}
}

// TestSLOImmediateFiring walks inactive -> firing -> resolved with
// For=0 and checks the obs_alerts_firing gauge tracks the transitions.
func TestSLOImmediateFiring(t *testing.T) {
	req, shed, s, set := sloFixture(t, 0)

	gauge := func() int64 { return s.reg.Snapshot().Gauges[AlertsFiring] }

	s.SampleAt(sloBase)
	req.Add(100)
	shed.Add(50)
	s.SampleAt(sloBase.Add(time.Second))
	if st := set.Status()[0]; st.State != StateFiring {
		t.Fatalf("state = %s, want firing", st.State)
	}
	if set.Firing() != 1 || gauge() != 1 {
		t.Errorf("firing count = %d, gauge = %d, want 1, 1", set.Firing(), gauge())
	}

	// Clean traffic until both windows drain the bad samples.
	for i := 2; i <= 8; i++ {
		req.Add(100)
		s.SampleAt(sloBase.Add(time.Duration(i) * time.Second))
	}
	if st := set.Status()[0]; st.State != StateResolved {
		t.Fatalf("state = %s, want resolved", st.State)
	}
	if set.Firing() != 0 || gauge() != 0 {
		t.Errorf("firing count = %d, gauge = %d, want 0, 0", set.Firing(), gauge())
	}

	// A fresh burst re-fires from resolved.
	req.Add(100)
	shed.Add(100)
	s.SampleAt(sloBase.Add(9 * time.Second))
	if st := set.Status()[0]; st.State != StateFiring {
		t.Errorf("state after relapse = %s, want firing", st.State)
	}
}

// TestSLOPendingHoldoff checks the For delay: the alert waits in
// pending, fires only after the condition holds, and a recovery while
// pending returns to inactive without ever firing.
func TestSLOPendingHoldoff(t *testing.T) {
	req, shed, s, set := sloFixture(t, 3*time.Second)

	bad := func(at time.Duration) {
		req.Add(100)
		shed.Add(50)
		s.SampleAt(sloBase.Add(at))
	}

	s.SampleAt(sloBase)
	bad(1 * time.Second)
	if st := set.Status()[0]; st.State != StatePending {
		t.Fatalf("state = %s, want pending", st.State)
	}
	if set.Firing() != 0 {
		t.Errorf("pending alert counted as firing")
	}
	bad(2 * time.Second)
	bad(3 * time.Second)
	if st := set.Status()[0]; st.State != StatePending {
		t.Fatalf("state at For-1 = %s, want pending", st.State)
	}
	bad(4 * time.Second)
	if st := set.Status()[0]; st.State != StateFiring {
		t.Fatalf("state after For = %s, want firing", st.State)
	}

	// Second scenario: recovery while pending cancels the alert.
	req2, shed2, s2, set2 := sloFixture(t, 30*time.Second)
	s2.SampleAt(sloBase)
	req2.Add(100)
	shed2.Add(50)
	s2.SampleAt(sloBase.Add(time.Second))
	if st := set2.Status()[0]; st.State != StatePending {
		t.Fatalf("state = %s, want pending", st.State)
	}
	for i := 2; i <= 8; i++ {
		req2.Add(100)
		s2.SampleAt(sloBase.Add(time.Duration(i) * time.Second))
	}
	if st := set2.Status()[0]; st.State != StateInactive {
		t.Errorf("state after recovery while pending = %s, want inactive", st.State)
	}
}

// TestSLOLatencyObjective drives the histogram-shaped objective:
// fraction of observations over the threshold against the target.
func TestSLOLatencyObjective(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("server_psi_seconds", "latency", LatencyBuckets)
	s := NewSampler(reg, time.Second, 64)
	// 90% of requests must finish within 10ms; burn factor 1.
	set := NewSLOSet(s, []Objective{
		LatencyObjective(10*time.Millisecond, 0.9, 2*time.Second, 5*time.Second, 1, 0),
	})

	s.SampleAt(sloBase)
	// Half the observations at 1ms (well under), half at 1s (over):
	// bad ratio 0.5, budget 0.1 -> burn 5 >= 1.
	for i := 0; i < 50; i++ {
		h.Observe(0.001)
		h.Observe(1.0)
	}
	s.SampleAt(sloBase.Add(time.Second))
	st := set.Status()[0]
	if !st.FastWindowSampled || !approx(st.FastBurn, 5, 1e-9) {
		t.Errorf("latency fast burn = %v (sampled=%v), want 5", st.FastBurn, st.FastWindowSampled)
	}
	if st.State != StateFiring {
		t.Errorf("state = %s, want firing", st.State)
	}
	if st.Name != "latency_under_10ms" {
		t.Errorf("objective name = %q", st.Name)
	}
}

// TestSLOSetDefaults checks window/burn-factor defaulting in NewSLOSet.
func TestSLOSetDefaults(t *testing.T) {
	s := NewSampler(NewRegistry(), time.Second, 4)
	set := NewSLOSet(s, []Objective{{Name: "custom", Target: 0.99}})
	o := set.Objectives()[0]
	if o.FastWindow != time.Minute || o.SlowWindow != 5*time.Minute || o.BurnFactor != 14.4 {
		t.Errorf("defaults = %+v", o)
	}
}

// TestSLOWriteFormats checks the /alertz JSON and text renderings.
func TestSLOWriteFormats(t *testing.T) {
	req, shed, s, set := sloFixture(t, 0)
	s.SampleAt(sloBase)
	req.Add(100)
	shed.Add(50)
	s.SampleAt(sloBase.Add(time.Second))

	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d AlertsData
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("invalid /alertz JSON: %v\n%s", err, buf.String())
	}
	if d.Schema != 1 || d.Firing != 1 || len(d.Alerts) != 1 || d.Alerts[0].State != StateFiring {
		t.Errorf("alerts doc = %+v", d)
	}

	buf.Reset()
	if err := set.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1 firing / 1 objectives") ||
		!strings.Contains(out, "availability") || !strings.Contains(out, "firing") {
		t.Errorf("alert text:\n%s", out)
	}
}
