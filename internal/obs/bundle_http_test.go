package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestObsBundleEndpoint covers /debugz/bundle: 503 without a bundler,
// a valid zip with one, and method discipline.
func TestObsBundleEndpoint(t *testing.T) {
	reg := NewRegistry()
	tracer := NewTracer(4)
	rec := NewRecorder(4)

	bare := Handler(reg, tracer, rec)
	if code, body := get(t, bare, "/debugz/bundle"); code != http.StatusServiceUnavailable || !strings.Contains(body, "not configured") {
		t.Errorf("/debugz/bundle without bundler = %d\n%s", code, body)
	}

	b, err := NewBundler(BundlerConfig{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	h := Handler(reg, tracer, rec, WithBundler(b))

	req := httptest.NewRequest(http.MethodGet, "/debugz/bundle", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	resp := w.Result()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debugz/bundle = %d\n%s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/zip" {
		t.Errorf("Content-Type = %q, want application/zip", ct)
	}
	if cd := resp.Header.Get("Content-Disposition"); !strings.Contains(cd, "bundle-") {
		t.Errorf("Content-Disposition = %q, want a bundle filename", cd)
	}
	a, err := ReadBundle(data)
	if err != nil {
		t.Fatalf("streamed bundle does not read back: %v", err)
	}
	if a.Manifest.Reason != BundleReasonManual {
		t.Errorf("streamed bundle reason = %q, want manual", a.Manifest.Reason)
	}

	req = httptest.NewRequest(http.MethodPost, "/debugz/bundle", nil)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /debugz/bundle = %d, want 405", w.Code)
	}
}

// TestObsPprofGate pins the exposure policy: pprof is mounted by
// default (the debug-only listener), and WithPprof(false) — the
// serving listener without -expose-pprof — answers 403 with a hint.
func TestObsPprofGate(t *testing.T) {
	reg := NewRegistry()
	tracer := NewTracer(4)
	rec := NewRecorder(4)

	open := Handler(reg, tracer, rec)
	if code, _ := get(t, open, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/ with default handler = %d, want 200", code)
	}

	closed := Handler(reg, tracer, rec, WithPprof(false))
	code, body := get(t, closed, "/debug/pprof/")
	if code != http.StatusForbidden || !strings.Contains(body, "expose-pprof") {
		t.Errorf("/debug/pprof/ gated = %d, want 403 naming the flag\n%s", code, body)
	}
	if code, _ := get(t, closed, "/debug/pprof/heap"); code != http.StatusForbidden {
		t.Errorf("/debug/pprof/heap gated = %d, want 403", code)
	}
	// The rest of the debug surface stays up on a gated handler.
	if code, _ := get(t, closed, "/metrics"); code != http.StatusOK {
		t.Errorf("/metrics on gated handler = %d, want 200", code)
	}
}

// TestSLOOnTransition checks hooks observe every state change with the
// right endpoints, and that a hook can call back into the SLOSet (the
// hook runs outside the mutex).
func TestSLOOnTransition(t *testing.T) {
	req, shed, s, set := sloFixture(t, 0)
	var got []Transition
	set.OnTransition(func(tr Transition) {
		got = append(got, tr)
		_ = set.Firing() // must not deadlock
	})

	s.SampleAt(sloBase)
	req.Add(100)
	shed.Add(50)
	s.SampleAt(sloBase.Add(time.Second)) // inactive -> firing
	req.Add(1000)
	s.SampleAt(sloBase.Add(2 * time.Second)) // firing -> resolved

	if len(got) != 2 {
		t.Fatalf("got %d transitions %+v, want 2", len(got), got)
	}
	if got[0].Objective != "availability" || got[0].From != StateInactive || got[0].To != StateFiring {
		t.Errorf("first transition = %+v, want availability inactive->firing", got[0])
	}
	if got[1].From != StateFiring || got[1].To != StateResolved {
		t.Errorf("second transition = %+v, want firing->resolved", got[1])
	}
	if got[0].At.IsZero() {
		t.Error("transition timestamp is zero")
	}
}

// TestDecisionTail pins the in-memory tail: ring semantics, schema
// stamping, and tail-only logs that never touch a writer.
func TestDecisionTail(t *testing.T) {
	l := NewDecisionTail(3)
	for i := 0; i < 5; i++ {
		l.Append(DecisionRecord{Kind: DecisionKindMode, Node: int64(i)})
	}
	tail := l.Tail()
	if len(tail) != 3 {
		t.Fatalf("tail has %d records, want 3", len(tail))
	}
	for i, rec := range tail {
		if want := int64(i + 2); rec.Node != want {
			t.Errorf("tail[%d].Node = %d, want %d (oldest-first after wrap)", i, rec.Node, want)
		}
		if rec.Schema != DecisionSchemaVersion {
			t.Errorf("tail[%d].Schema = %d, want %d", i, rec.Schema, DecisionSchemaVersion)
		}
	}
	if n := l.Written(); n != 5 {
		t.Errorf("Written = %d, want 5", n)
	}
	if err := l.Close(); err != nil {
		t.Errorf("Close on tail-only log: %v", err)
	}
	if len(l.Tail()) != 3 {
		t.Error("tail unreadable after Close")
	}

	var nilLog *DecisionLog
	if nilLog.Tail() != nil {
		t.Error("nil log Tail() != nil")
	}
}

// TestRuntimeGauges checks the process_* gauges publish real values and
// that arming them on a sampler lands fresh values in the series rings.
func TestRuntimeGauges(t *testing.T) {
	UpdateRuntimeGauges()
	snap := Default.Snapshot()
	if snap.Gauges["process_goroutines"] <= 0 {
		t.Errorf("process_goroutines = %d, want > 0", snap.Gauges["process_goroutines"])
	}
	if snap.Gauges["process_heap_alloc_bytes"] <= 0 {
		t.Errorf("process_heap_alloc_bytes = %d, want > 0", snap.Gauges["process_heap_alloc_bytes"])
	}

	s := NewSampler(Default, time.Second, 8)
	ArmRuntimeGauges(s)
	s.SampleAt(sloBase)
	var found bool
	for _, g := range s.SeriesSnapshot().Gauges {
		if g.Name == "process_goroutines" && g.Last > 0 {
			found = true
		}
	}
	if !found {
		t.Error("armed sampler series lack a live process_goroutines gauge")
	}
}
