package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use but unregistered; obtain registered counters from a Registry.
// All methods are safe for concurrent use and lock-free.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Add increments the counter by n (one atomic add).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a metric that can go up and down (e.g. live worker count).
// All methods are safe for concurrent use and lock-free.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bucket distribution metric. Bucket bounds are
// inclusive upper edges in ascending order; observations above the last
// bound land in the implicit +Inf bucket. Observe costs one atomic add
// for the bucket, one for the running count, and a CAS loop for the
// float sum.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Int64 // len(bounds)+1, last is +Inf
	count      atomic.Int64
	sumBits    atomic.Uint64 // math.Float64bits of the running sum
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSeconds records d expressed in seconds, the convention for all
// latency histograms in this repository.
func (h *Histogram) ObserveSeconds(seconds float64) { h.Observe(seconds) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// LatencyBuckets is the default bound set for latency histograms, in
// seconds: exponential from 10µs to ~100s.
var LatencyBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

// CountBuckets is the default bound set for work-count histograms
// (recursions, candidates): powers of four from 1 to ~16M.
var CountBuckets = []float64{
	1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
}

// Registry holds a set of named metrics. Registration (the Counter,
// Gauge and Histogram constructors) takes the registry lock; the
// returned metric pointers are then updated lock-free, so hot paths
// never touch the registry itself. Metric names must be unique across
// the registry; registering a name twice with the same type returns the
// existing metric, making package-level registration idempotent under
// repeated test binaries.
type Registry struct {
	mu      sync.Mutex
	order   []string
	byName  map[string]any
	dropped int // cross-type name collisions (programming errors)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]any)}
}

// Counter returns the registered counter with the given name, creating
// it if needed. A cross-type name collision returns a detached counter
// (never nil) and marks the registry; TestObsRegistry asserts none
// exist.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if c, ok := m.(*Counter); ok {
			return c
		}
		r.dropped++
		return &Counter{name: name, help: help}
	}
	c := &Counter{name: name, help: help}
	r.byName[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the registered gauge with the given name, creating it
// if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if g, ok := m.(*Gauge); ok {
			return g
		}
		r.dropped++
		return &Gauge{name: name, help: help}
	}
	g := &Gauge{name: name, help: help}
	r.byName[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the registered histogram with the given name,
// creating it with the given bucket bounds if needed. Bounds must be
// ascending; they are copied.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if h, ok := m.(*Histogram); ok {
			return h
		}
		r.dropped++
		return newHistogram(name, help, bounds)
	}
	h := newHistogram(name, help, bounds)
	r.byName[name] = h
	r.order = append(r.order, name)
	return h
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// CollisionCount returns the number of cross-type name collisions seen
// at registration time (always zero in a correct program).
func (r *Registry) CollisionCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset zeroes every registered metric. Tests use it to isolate runs;
// production code never resets.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		switch m := r.byName[name].(type) {
		case *Counter:
			m.v.Store(0)
		case *Gauge:
			m.v.Store(0)
		case *Histogram:
			for i := range m.counts {
				m.counts[i].Store(0)
			}
			m.count.Store(0)
			m.sumBits.Store(0)
		}
	}
}

// BucketCount is one cumulative histogram bucket: the number of
// observations at or below UpperBound.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time histogram reading. Buckets are
// cumulative and exclude the +Inf bucket, whose cumulative count equals
// Count.
type HistogramSnapshot struct {
	Buckets []BucketCount `json:"buckets"`
	Sum     float64       `json:"sum"`
	Count   int64         `json:"count"`
}

// Snapshot is a consistent-enough point-in-time reading of a registry:
// each metric is read atomically, though the set is not a global
// atomic cut (counters advance independently).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, name := range r.order {
		switch m := r.byName[name].(type) {
		case *Counter:
			s.Counters[name] = m.Value()
		case *Gauge:
			s.Gauges[name] = m.Value()
		case *Histogram:
			hs := HistogramSnapshot{Sum: m.Sum()}
			var cum int64
			for i, b := range m.bounds {
				cum += m.counts[i].Load()
				hs.Buckets = append(hs.Buckets, BucketCount{UpperBound: b, Count: cum})
			}
			cum += m.counts[len(m.bounds)].Load()
			hs.Count = cum
			s.Histograms[name] = hs
		}
	}
	return s
}

// WriteJSON encodes the registry snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus encodes every registered metric in the Prometheus
// text exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	var buf bytes.Buffer
	for _, name := range r.order {
		switch m := r.byName[name].(type) {
		case *Counter:
			writeHeader(&buf, name, m.help, "counter")
			fmt.Fprintf(&buf, "%s %d\n", name, m.Value())
		case *Gauge:
			writeHeader(&buf, name, m.help, "gauge")
			fmt.Fprintf(&buf, "%s %d\n", name, m.Value())
		case *Histogram:
			writeHeader(&buf, name, m.help, "histogram")
			var cum int64
			for i, b := range m.bounds {
				cum += m.counts[i].Load()
				fmt.Fprintf(&buf, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum)
			}
			cum += m.counts[len(m.bounds)].Load()
			fmt.Fprintf(&buf, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
			fmt.Fprintf(&buf, "%s_sum %s\n", name, formatFloat(m.Sum()))
			fmt.Fprintf(&buf, "%s_count %d\n", name, cum)
		}
	}
	r.mu.Unlock()
	_, err := w.Write(buf.Bytes())
	return err
}

func writeHeader(buf *bytes.Buffer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(buf, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(buf, "# TYPE %s %s\n", name, typ)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
