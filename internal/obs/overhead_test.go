// Overhead guard for the disabled path. The instrumentation contract
// (ISSUE: observability) is that with collection off, every obs call
// site costs exactly one predictable branch on an atomic load. This
// test turns that contract into a regression guard: it measures the
// real per-check cost, counts how many gate-protected events a
// representative SmartPSI workload would emit, and asserts that the
// implied total stays under 2% of the workload's wall time.
//
// The test lives in package obs_test so it can drive the public engine
// (repro -> smartpsi -> obs) without an import cycle.
package obs_test

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	repro "repro"
	"repro/internal/obs"
)

// sink defeats dead-code elimination of the measured gate loop.
var sink int

// perIterMin measures the per-iteration cost of loop over iters
// iterations, taking the minimum across runs passes. The minimum is
// the least scheduler-disturbed estimate: a preempted pass can only
// read high, never low, so one quiet pass out of five is enough for a
// stable number where a single-shot measurement flakes.
func perIterMin(runs, iters int, loop func(n int) int) float64 {
	best := math.MaxFloat64
	for r := 0; r < runs; r++ {
		start := time.Now()
		sink += loop(iters)
		if d := time.Since(start).Seconds() / float64(iters); d < best {
			best = d
		}
	}
	return best
}

// loopBaseline measures the bare counting loop that every gate
// measurement shares, so the gate cost can be reported net of loop
// bookkeeping instead of blaming the branch for the loop around it.
func loopBaseline(iters int) float64 {
	return perIterMin(5, iters, func(n int) int {
		h := 0
		for i := 0; i < n; i++ {
			h++
		}
		return h
	})
}

// netOf subtracts the loop baseline from a measured per-iteration
// cost, clamping at zero: on a noisy pass the baseline can read
// higher than the gate loop, and a negative cost is meaningless.
func netOf(perIter, baseline float64) float64 {
	return math.Max(0, perIter-baseline)
}

// checkOverheadBudget applies the two-tier budget: the strict 2%
// contract gates only on multi-core runners (on GOMAXPROCS=1 the
// measurement loop and the scheduler share one P, which inflates
// timings beyond what the contract is about), while a loose 10%
// sanity bound always gates — a disabled path that expensive is
// broken on any machine.
func checkOverheadBudget(t *testing.T, what string, overhead, wall float64) {
	t.Helper()
	strict, loose := 0.02*wall, 0.10*wall
	switch {
	case overhead > loose:
		t.Errorf("%s overhead %.3gs exceeds the 10%% sanity bound of workload wall time %.3gs", what, overhead, wall)
	case overhead > strict:
		if runtime.GOMAXPROCS(0) > 1 {
			t.Errorf("%s overhead %.3gs exceeds 2%% of workload wall time %.3gs", what, overhead, wall)
		} else {
			t.Logf("%s overhead %.3gs exceeds the strict 2%% budget of %.3gs, tolerated on GOMAXPROCS=1", what, overhead, wall)
		}
	}
}

// nilRow is a package-level (so never provably nil at compile time)
// stand-in for the disabled evaluator's funnel-row pointer.
var nilRow *obs.FunnelDepth

// overheadGraph builds a ~400-node connected labelled graph.
func overheadGraph(t *testing.T) *repro.Graph {
	t.Helper()
	const n = 400
	rng := rand.New(rand.NewSource(7))
	b := repro.NewBuilder(n, 3*n)
	for i := 0; i < n; i++ {
		b.AddNode(repro.Label(i % 5))
	}
	for i := 1; i < n; i++ {
		if err := b.AddEdge(repro.NodeID(i-1), repro.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		// Duplicate edges are possible; AddEdge may reject them.
		_ = addEdgeIgnoringDuplicates(b, repro.NodeID(u), repro.NodeID(v))
	}
	return b.MustBuild()
}

func addEdgeIgnoringDuplicates(b *repro.Builder, u, v repro.NodeID) error {
	return b.AddEdge(u, v)
}

// gatedEvents sums the snapshot deltas that correspond to individually
// gated call sites. The psi_* work counters are excluded on purpose:
// the evaluator accumulates them in plain struct fields and flushes
// them in a single PublishStats call per batch, so they cost zero
// checks in the recursion itself.
func gatedEvents(s obs.Snapshot) int64 {
	var n int64
	for name, v := range s.Counters {
		if strings.HasPrefix(name, "psi_") {
			continue
		}
		n += v
	}
	for _, h := range s.Histograms {
		n += h.Count
	}
	return n
}

// profileEvents sums the per-query profiling events (funnel stage
// increments, ladder entries, cache decisions) recorded by the enabled
// run, i.e. the profiles the flight recorder retained with an ID past
// lastID. Each of those corresponds to one gated call site in the
// disabled build, so they join the overhead budget.
func profileEvents(lastID uint64) int64 {
	var n int64
	for _, p := range obs.DefaultRecorder.Recent() {
		d := p.Snapshot()
		if d.ID <= lastID {
			continue
		}
		for _, depth := range d.Funnel {
			for _, v := range depth.Stages() {
				n += v
			}
		}
		for _, r := range d.Ladder {
			n += r.Entered
		}
		n += d.CacheHits + d.CacheMisses
	}
	return n
}

func TestObsOverheadGuard(t *testing.T) {
	prev := obs.Enabled()
	defer obs.Enable(prev)

	// Bundle capture is compiled in but unarmed (no -bundle-dir): the
	// whole measured workload runs with a live Bundler wired to the
	// default registry and recorder, and the budget below must still
	// hold. Zero captures may occur without a directory.
	bundler, err := obs.NewBundler(obs.BundlerConfig{Recorder: obs.DefaultRecorder})
	if err != nil {
		t.Fatal(err)
	}
	capturedBefore := obs.Default.Snapshot().Counters[obs.BundlesCaptured]
	defer func() {
		if bundler.Armed() {
			t.Error("bundler without Dir reports Armed")
		}
		delta := obs.Default.Snapshot().Counters[obs.BundlesCaptured] - capturedBefore
		if delta != 0 {
			t.Errorf("unarmed bundler captured %d bundles during the workload, want 0", delta)
		}
	}()

	// 1. Per-check cost of the disabled gate, net of loop bookkeeping
	// and taken as a min-of-five so one preempted pass cannot fail the
	// guard.
	obs.Enable(false)
	const checks = 1 << 21
	baseline := loopBaseline(checks)
	perCheck := netOf(perIterMin(5, checks, func(n int) int {
		h := 0
		for i := 0; i < n; i++ {
			if obs.Enabled() {
				h++
			}
		}
		return h
	}), baseline)

	// 1b. Per-event cost of the profiling sites' disabled gate. The
	// query profiler follows the psi.Stats pattern, not the atomic-gate
	// pattern: with collection off the profile/funnel pointers are nil,
	// the evaluator loads them once per candidate, and every stage
	// increment is one branch on that local pointer — no atomic load.
	// Measure that branch, not the Enabled() gate.
	fd := nilRow
	perNilCheck := netOf(perIterMin(5, checks, func(n int) int {
		h := 0
		for i := 0; i < n; i++ {
			if fd != nil {
				h++
			}
		}
		return h
	}), baseline)

	// 2. Representative workload with collection disabled.
	g := overheadGraph(t)
	rng := rand.New(rand.NewSource(1))
	queries, err := repro.ExtractQueries(g, 4, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.NewEngine(g, repro.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	for _, q := range queries {
		if _, err := eng.Evaluate(q); err != nil {
			t.Fatal(err)
		}
	}
	wall := time.Since(t0).Seconds()

	// 3. Enabled re-run to count gate-protected events. Each event
	// behind a gate corresponds to a bounded handful of Enabled()
	// branches in the disabled build; sitesPerEvent = 4 is a generous
	// upper bound on that fan-in.
	before := gatedEvents(obs.Default.Snapshot())
	lastID := obs.DefaultRecorder.LastID()
	obs.Enable(true)
	// A background sampler at the default interval runs across the
	// measured workload: /seriesz sampling reads the registry off the
	// hot path and must not disturb the overhead budget.
	sampler := obs.NewSampler(obs.Default, obs.DefaultSampleInterval, 0)
	sampler.Start()
	defer sampler.Stop()
	for _, q := range queries {
		if _, err := eng.Evaluate(q); err != nil {
			t.Fatal(err)
		}
	}
	obs.Enable(false)
	events := gatedEvents(obs.Default.Snapshot()) - before
	if events <= 0 {
		t.Fatalf("enabled run produced %d gated events; instrumentation not wired", events)
	}
	profEvents := profileEvents(lastID)
	if profEvents <= 0 {
		t.Fatalf("enabled run produced %d profile events; query profiling not wired", profEvents)
	}

	const sitesPerEvent = 4
	overhead := perCheck*float64(events)*sitesPerEvent +
		perNilCheck*float64(profEvents)*sitesPerEvent
	t.Logf("perCheck=%.2fns perNilCheck=%.2fns events=%d profEvents=%d overhead=%.3fµs wall=%.3fms (2%% limit %.3fµs)",
		perCheck*1e9, perNilCheck*1e9, events, profEvents, overhead*1e6, wall*1e3, 0.02*wall*1e6)
	checkOverheadBudget(t, "disabled-path", overhead, wall)
}

// auditRate is package-level so the compiler cannot fold the
// auditing() stand-in branch below.
var auditRate float64

// TestObsShadowDisabledOverhead is the ShadowRate=0 guard: shadow
// scoring off must cost at most a rate comparison per rung-1 candidate
// — under 2% of workload wall time — and must leave every shadow
// artifact empty: no shadow runs, no shadow work, no regret, and zero
// decision-log records even when a log is attached.
func TestObsShadowDisabledOverhead(t *testing.T) {
	prev := obs.Enabled()
	defer obs.Enable(prev)
	obs.Enable(false)

	// 1. Per-candidate cost of the disabled audit gate. Options.auditing
	// is two float comparisons on plain struct fields; model the branch
	// with a package-level rate the compiler cannot constant-fold.
	const checks = 1 << 21
	perCheck := netOf(perIterMin(5, checks, func(n int) int {
		h := 0
		for i := 0; i < n; i++ {
			if auditRate > 0 {
				h++
			}
		}
		return h
	}), loopBaseline(checks))

	// 2. Representative workload with ShadowRate=0 and a decision log
	// attached (appends are sampling-gated, so it must stay empty).
	g := overheadGraph(t)
	rng := rand.New(rand.NewSource(2))
	queries, err := repro.ExtractQueries(g, 4, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	dlog := obs.NewDecisionLog(&logBuf, 0)
	eng, err := repro.NewEngine(g, repro.Options{Seed: 2, DecisionLog: dlog})
	if err != nil {
		t.Fatal(err)
	}
	var candidates int64
	var shadowRuns, shadowWork, regretNanos int64
	t0 := time.Now()
	for _, q := range queries {
		res, err := eng.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		candidates += int64(res.Candidates)
		shadowRuns += res.ShadowModeRuns + res.ShadowPlanRuns + res.ShadowTimeouts
		shadowWork += res.ShadowWork.Total()
		regretNanos += res.Regret.Nanoseconds()
	}
	wall := time.Since(t0).Seconds()
	if err := dlog.Close(); err != nil {
		t.Fatal(err)
	}

	if shadowRuns != 0 || shadowWork != 0 || regretNanos != 0 {
		t.Errorf("ShadowRate=0 left shadow artifacts: runs=%d work=%d regret=%dns", shadowRuns, shadowWork, regretNanos)
	}
	if dlog.Written() != 0 || logBuf.Len() != 0 {
		t.Errorf("ShadowRate=0 wrote %d decision records (%d bytes); appends must be sampling-gated", dlog.Written(), logBuf.Len())
	}
	if candidates == 0 {
		t.Fatal("workload evaluated no candidates; fixture broken")
	}

	// 3. Budget: a bounded handful of audit-gate branches per candidate.
	const sitesPerCandidate = 4
	overhead := perCheck * float64(candidates) * sitesPerCandidate
	t.Logf("perCheck=%.2fns candidates=%d overhead=%.3fµs wall=%.3fms (2%% limit %.3fµs)",
		perCheck*1e9, candidates, overhead*1e6, wall*1e3, 0.02*wall*1e6)
	checkOverheadBudget(t, "ShadowRate=0 audit-gate", overhead, wall)
}

// BenchmarkObsDisabledGate documents the cost of one disabled check.
func BenchmarkObsDisabledGate(b *testing.B) {
	prev := obs.Enabled()
	obs.Enable(false)
	defer obs.Enable(prev)
	n := 0
	for i := 0; i < b.N; i++ {
		if obs.Enabled() {
			n++
		}
	}
	sink = n
}

// BenchmarkObsEnabledCounter documents the cost of one enabled event
// (gate branch + atomic add).
func BenchmarkObsEnabledCounter(b *testing.B) {
	prev := obs.Enabled()
	obs.Enable(true)
	defer obs.Enable(prev)
	c := obs.NewRegistry().Counter("bench_total", "")
	for i := 0; i < b.N; i++ {
		if obs.Enabled() {
			c.Inc()
		}
	}
}
