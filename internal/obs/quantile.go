package obs

// Histogram-window arithmetic shared by /seriesz, SLO evaluation and
// psi-loadgen percentile reporting: subtract two cumulative snapshots
// to get a windowed distribution, then read quantiles or
// fraction-under-threshold out of the cumulative bucket counts with
// linear interpolation inside a bucket.

// SubtractHistogram returns the distribution of observations that
// happened between older and newer: bucket-by-bucket and Count/Sum
// deltas of two cumulative snapshots of the same histogram. Negative
// deltas (a registry Reset between samples) clamp to zero. If the two
// snapshots have different bucket layouts the newer one is returned
// unchanged, as if older were empty.
func SubtractHistogram(newer, older HistogramSnapshot) HistogramSnapshot {
	if len(older.Buckets) != len(newer.Buckets) {
		return newer
	}
	out := HistogramSnapshot{
		Buckets: make([]BucketCount, len(newer.Buckets)),
		Sum:     newer.Sum - older.Sum,
		Count:   newer.Count - older.Count,
	}
	if out.Count < 0 {
		out.Count = 0
		out.Sum = 0
	}
	for i, b := range newer.Buckets {
		d := b.Count - older.Buckets[i].Count
		if d < 0 {
			d = 0
		}
		out.Buckets[i] = BucketCount{UpperBound: b.UpperBound, Count: d}
	}
	return out
}

// QuantileFromBuckets returns the q-quantile (q in [0,1]) of a
// distribution described by cumulative bucket counts, interpolating
// linearly inside the bucket that contains the target rank. The first
// bucket interpolates from zero; ranks that land past the last finite
// bound (in the implicit +Inf bucket) report the last finite bound.
// ok is false when the distribution is empty or q is out of range.
func QuantileFromBuckets(buckets []BucketCount, total int64, q float64) (v float64, ok bool) {
	if total <= 0 || q < 0 || q > 1 || len(buckets) == 0 {
		return 0, false
	}
	rank := q * float64(total)
	lowerBound, lowerCum := 0.0, int64(0)
	for _, b := range buckets {
		if float64(b.Count) >= rank {
			span := float64(b.Count - lowerCum)
			if span <= 0 {
				return b.UpperBound, true
			}
			frac := (rank - float64(lowerCum)) / span
			return lowerBound + (b.UpperBound-lowerBound)*frac, true
		}
		lowerBound, lowerCum = b.UpperBound, b.Count
	}
	return buckets[len(buckets)-1].UpperBound, true
}

// HistogramQuantile is QuantileFromBuckets applied to a snapshot.
func HistogramQuantile(h HistogramSnapshot, q float64) (float64, bool) {
	return QuantileFromBuckets(h.Buckets, h.Count, q)
}

// FractionAtOrBelow estimates the fraction of observations at or below
// threshold, interpolating linearly inside the bucket the threshold
// falls in. Observations in the implicit +Inf bucket count as above any
// finite threshold. ok is false for an empty distribution.
func FractionAtOrBelow(h HistogramSnapshot, threshold float64) (frac float64, ok bool) {
	if h.Count <= 0 || len(h.Buckets) == 0 {
		return 0, false
	}
	if threshold < 0 {
		return 0, true
	}
	lowerBound, lowerCum := 0.0, int64(0)
	for _, b := range h.Buckets {
		if threshold <= b.UpperBound {
			span := b.UpperBound - lowerBound
			inBucket := float64(b.Count - lowerCum)
			at := float64(lowerCum)
			if span > 0 {
				at += inBucket * (threshold - lowerBound) / span
			} else {
				at += inBucket
			}
			return at / float64(h.Count), true
		}
		lowerBound, lowerCum = b.UpperBound, b.Count
	}
	return float64(lowerCum) / float64(h.Count), true
}
