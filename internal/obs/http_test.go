package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestObsHTTPEndpoints(t *testing.T) {
	withEnabled(t, func() {
		reg := NewRegistry()
		reg.Counter("psi_demo_total", "demo").Add(11)
		tracer := NewTracer(4)
		q := tracer.StartQuery("httpq")
		q.Event(EvFallback, 2, 0)
		q.Finish()
		rec := NewRecorder(4)
		p := rec.Start("httpp")
		p.SetMethod("ml")
		p.MergeFunnel(&Funnel{Depths: []FunnelDepth{{Generated: 9, DegOK: 7, SigOK: 5, Recursed: 5, Matched: 2}}})
		p.Finish()
		h := Handler(reg, tracer, rec)

		code, body := get(t, h, "/metrics")
		if code != 200 || !strings.Contains(body, "psi_demo_total 11") {
			t.Errorf("/metrics = %d\n%s", code, body)
		}

		code, body = get(t, h, "/metrics.json")
		if code != 200 || !strings.Contains(body, `"psi_demo_total": 11`) {
			t.Errorf("/metrics.json = %d\n%s", code, body)
		}

		code, body = get(t, h, "/tracez")
		if code != 200 || !strings.Contains(body, "httpq") || !strings.Contains(body, "fallback:1") {
			t.Errorf("/tracez = %d\n%s", code, body)
		}

		code, body = get(t, h, "/tracez?id=1")
		if code != 200 || !strings.Contains(body, `"traceEvents"`) {
			t.Errorf("/tracez?id=1 = %d\n%s", code, body)
		}
		if code, _ := get(t, h, "/tracez?id=999"); code != http.StatusNotFound {
			t.Errorf("/tracez?id=999 = %d, want 404", code)
		}
		if code, _ := get(t, h, "/tracez?id=bogus"); code != http.StatusBadRequest {
			t.Errorf("/tracez?id=bogus = %d, want 400", code)
		}

		code, body = get(t, h, "/profilez")
		if code != 200 || !strings.Contains(body, "httpp") || !strings.Contains(body, "slowest finished profiles") {
			t.Errorf("/profilez = %d\n%s", code, body)
		}
		code, body = get(t, h, "/profilez?id=1")
		if code != 200 || !strings.Contains(body, "candidate funnel") {
			t.Errorf("/profilez?id=1 = %d\n%s", code, body)
		}
		code, body = get(t, h, "/profilez?id=1&format=json")
		if code != 200 || !strings.Contains(body, `"generated": 9`) {
			t.Errorf("/profilez?id=1&format=json = %d\n%s", code, body)
		}
		code, body = get(t, h, "/profilez?format=json")
		if code != 200 || !strings.Contains(body, `"slowest"`) || !strings.Contains(body, `"recent"`) {
			t.Errorf("/profilez?format=json = %d\n%s", code, body)
		}
		if code, _ := get(t, h, "/profilez?id=999"); code != http.StatusNotFound {
			t.Errorf("/profilez?id=999 = %d, want 404", code)
		}
		if code, _ := get(t, h, "/profilez?id=bogus"); code != http.StatusBadRequest {
			t.Errorf("/profilez?id=bogus = %d, want 400", code)
		}

		if code, _ := get(t, h, "/debug/pprof/cmdline"); code != 200 {
			t.Errorf("/debug/pprof/cmdline = %d", code)
		}
	})
}

// TestObsStartDebugServer exercises the real listener path the cmd
// binaries use, including the Enable side effect and clean shutdown.
func TestObsStartDebugServer(t *testing.T) {
	prev := Enabled()
	defer Enable(prev)
	Enable(false)

	addr, closeFn, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := closeFn(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if !Enabled() {
		t.Error("StartDebugServer must enable collection")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !strings.Contains(string(body), "psi_recursions_total") {
		t.Errorf("GET /metrics = %d\n%s", resp.StatusCode, body)
	}
}

// TestObsSeriesAndAlertEndpoints covers /seriesz and /alertz format
// negotiation, the 503 answers when sampling is off, and the empty-ring
// and single-sample edge cases.
func TestObsSeriesAndAlertEndpoints(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("series_demo_total", "demo")
	tracer := NewTracer(4)
	rec := NewRecorder(4)

	// Without a sampler both endpoints answer 503, not 404.
	bare := Handler(reg, tracer, rec)
	if code, body := get(t, bare, "/seriesz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "sampling disabled") {
		t.Errorf("/seriesz without sampler = %d\n%s", code, body)
	}
	if code, body := get(t, bare, "/alertz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "alerting disabled") {
		t.Errorf("/alertz without alerts = %d\n%s", code, body)
	}

	s := NewSampler(reg, time.Second, 8)
	set := NewSLOSet(s, []Objective{{
		Name: "demo", Target: 0.9,
		TotalCounter: "series_demo_total",
		BadCounters:  []string{"series_demo_bad_total"},
	}})
	h := Handler(reg, tracer, rec, WithSampler(s), WithAlerts(set))

	// Empty ring: text says so, JSON is well-formed with samples=0.
	code, body := get(t, h, "/seriesz")
	if code != 200 || !strings.Contains(body, "no samples yet") {
		t.Errorf("/seriesz empty = %d\n%s", code, body)
	}
	code, body = get(t, h, "/seriesz?format=json")
	var sd SeriesData
	if code != 200 || json.Unmarshal([]byte(body), &sd) != nil || sd.Samples != 0 {
		t.Errorf("/seriesz?format=json empty = %d\n%s", code, body)
	}

	// Single sample: rates and quantiles are not yet computable.
	s.SampleAt(seriesBase)
	code, body = get(t, h, "/seriesz")
	if code != 200 || !strings.Contains(body, "one sample held") {
		t.Errorf("/seriesz single-sample = %d\n%s", code, body)
	}

	c.Add(4)
	s.SampleAt(seriesBase.Add(time.Second))
	code, body = get(t, h, "/seriesz")
	if code != 200 || !strings.Contains(body, "series_demo_total") || !strings.Contains(body, "rate=4.00/s") {
		t.Errorf("/seriesz text = %d\n%s", code, body)
	}
	code, body = get(t, h, "/seriesz?format=json")
	if code != 200 || json.Unmarshal([]byte(body), &sd) != nil || sd.Samples != 2 || sd.Schema != 1 {
		t.Errorf("/seriesz json = %d\n%s", code, body)
	}

	// /alertz in both formats.
	code, body = get(t, h, "/alertz")
	if code != 200 || !strings.Contains(body, "OBJECTIVE") || !strings.Contains(body, "demo") {
		t.Errorf("/alertz text = %d\n%s", code, body)
	}
	code, body = get(t, h, "/alertz?format=json")
	var ad AlertsData
	if code != 200 || json.Unmarshal([]byte(body), &ad) != nil {
		t.Errorf("/alertz json = %d\n%s", code, body)
	}
	if len(ad.Alerts) != 1 || ad.Alerts[0].Name != "demo" || ad.Alerts[0].State != StateInactive {
		t.Errorf("alerts doc = %+v", ad)
	}
}
