package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// withEnabled runs f with collection forced on, restoring the previous
// state afterwards.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled()
	Enable(true)
	defer Enable(prev)
	f()
}

func TestObsTraceNilSafety(t *testing.T) {
	var tr *QueryTrace
	tr.Event(EvFlip, 1, 2) // must not panic
	tr.Finish()
	if tr.Events() != nil || tr.Kinds() != nil || tr.Dropped() != 0 || tr.Finished() {
		t.Error("nil QueryTrace methods must be inert")
	}
	var tracer *Tracer
	if tracer.StartQuery("x") != nil {
		t.Error("nil tracer must hand out nil traces")
	}
	if tracer.Recent() != nil {
		t.Error("nil tracer Recent must be nil")
	}
}

func TestObsTracerDisabledGives(t *testing.T) {
	prev := Enabled()
	Enable(false)
	defer Enable(prev)
	tr := NewTracer(4)
	if tr.StartQuery("q") != nil {
		t.Error("disabled collection must hand out nil traces")
	}
}

func TestObsTraceEventsAndRing(t *testing.T) {
	withEnabled(t, func() {
		tr := NewTracer(2)
		a := tr.StartQuery("a")
		a.Event(EvCacheMiss, 7, 0)
		a.Event(EvModePredicted, 7, 1)
		a.Finish()
		b := tr.StartQuery("b")
		b.Finish()
		c := tr.StartQuery("c")
		c.Finish()

		recent := tr.Recent()
		if len(recent) != 2 {
			t.Fatalf("ring retained %d traces, want 2", len(recent))
		}
		if recent[0].Name() != "c" || recent[1].Name() != "b" {
			t.Errorf("recent order = %s, %s; want c, b", recent[0].Name(), recent[1].Name())
		}
		if tr.Lookup(a.ID()) != nil {
			t.Error("evicted trace still retrievable")
		}
		if tr.Lookup(c.ID()) != c {
			t.Error("Lookup failed for retained trace")
		}

		kinds := a.Kinds()
		if len(kinds) != 2 || kinds[0] != EvCacheMiss || kinds[1] != EvModePredicted {
			t.Errorf("kinds = %v", kinds)
		}
		ev := a.Events()
		if ev[0].Node != 7 || ev[1].Arg != 1 {
			t.Errorf("events = %+v", ev)
		}
		if !a.Finished() {
			t.Error("a not marked finished")
		}
	})
}

func TestObsTraceEventCap(t *testing.T) {
	withEnabled(t, func() {
		tr := NewTracer(1)
		q := tr.StartQuery("big")
		for i := 0; i < maxTraceEvents+10; i++ {
			q.Event(EvCacheHit, int64(i), 0)
		}
		if got := len(q.Events()); got != maxTraceEvents {
			t.Errorf("retained %d events, want cap %d", got, maxTraceEvents)
		}
		if q.Dropped() != 10 {
			t.Errorf("dropped = %d, want 10", q.Dropped())
		}
	})
}

func TestObsTraceConcurrentEvents(t *testing.T) {
	withEnabled(t, func() {
		tr := NewTracer(1)
		q := tr.StartQuery("par")
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 100; i++ {
					q.Event(EvModeActual, int64(w), int64(i))
				}
			}(w)
		}
		wg.Wait()
		if got := len(q.Events()); got != 400 {
			t.Errorf("events = %d, want 400", got)
		}
	})
}

func TestObsChromeTraceExport(t *testing.T) {
	withEnabled(t, func() {
		tr := NewTracer(1)
		q := tr.StartQuery("export")
		q.Event(EvTimeout, 3, 1)
		q.Event(EvFlip, 3, 1)
		q.Finish()

		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, q); err != nil {
			t.Fatal(err)
		}
		var out struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("chrome trace not valid JSON: %v\n%s", err, buf.String())
		}
		if len(out.TraceEvents) != 3 { // 1 slice + 2 instants
			t.Fatalf("traceEvents = %d, want 3", len(out.TraceEvents))
		}
		if out.TraceEvents[0]["ph"] != "X" {
			t.Errorf("first event phase = %v, want X", out.TraceEvents[0]["ph"])
		}
		if out.TraceEvents[1]["name"] != "timeout" || out.TraceEvents[2]["name"] != "flip" {
			t.Errorf("instant names = %v, %v", out.TraceEvents[1]["name"], out.TraceEvents[2]["name"])
		}
	})

	// Nil trace exports an empty, valid document.
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil-trace export invalid: %v", err)
	}
}

func TestObsEventKindStrings(t *testing.T) {
	for k := EvTrainDone; k <= EvCapHit; k++ {
		if s := k.String(); s == "" || len(s) > 32 {
			t.Errorf("EventKind(%d).String() = %q", k, s)
		}
	}
	if s := EventKind(200).String(); s != "EventKind(200)" {
		t.Errorf("unknown kind string = %q", s)
	}
}
