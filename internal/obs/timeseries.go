package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"
)

// The Sampler turns the cumulative-since-boot registry into time
// series: a background goroutine snapshots every registered metric at
// a fixed interval into per-metric ring buffers, from which windowed
// counter rates and windowed histogram quantiles (bucket-count deltas
// between two samples, interpolated inside a bucket) are derived. The
// /seriesz endpoint renders the rings as JSON or as sparkline text,
// and the SLO evaluator (slo.go) runs off the same samples via
// OnSample hooks.

// DefaultSampleInterval is the sampling period used when NewSampler is
// given a non-positive interval; psi-serve's -sample-interval flag
// defaults to it.
const DefaultSampleInterval = time.Second

// defaultSeriesCapacity is the per-metric ring size when NewSampler is
// given a non-positive capacity: ~2 minutes of history at the default
// interval.
const defaultSeriesCapacity = 128

// ring is a fixed-capacity time-indexed buffer. Index 0 is the oldest
// retained sample. Not goroutine-safe; the Sampler's mutex guards it.
type ring[T any] struct {
	at  []time.Time
	v   []T
	pos int // next write slot
	n   int // live samples, <= cap
}

func newRing[T any](capacity int) *ring[T] {
	return &ring[T]{at: make([]time.Time, capacity), v: make([]T, capacity)}
}

func (r *ring[T]) push(at time.Time, v T) {
	r.at[r.pos] = at
	r.v[r.pos] = v
	r.pos = (r.pos + 1) % len(r.v)
	if r.n < len(r.v) {
		r.n++
	}
}

// idx maps a logical index (0 = oldest) to a physical slot.
func (r *ring[T]) idx(i int) int {
	return (r.pos - r.n + i + len(r.v)) % len(r.v)
}

func (r *ring[T]) sample(i int) (time.Time, T) {
	j := r.idx(i)
	return r.at[j], r.v[j]
}

// window returns the logical index of the oldest sample at or after
// the newest sample's time minus w, or -1 when fewer than two samples
// fall inside the window.
func (r *ring[T]) window(w time.Duration) int {
	if r.n < 2 {
		return -1
	}
	newest := r.at[r.idx(r.n-1)]
	cut := newest.Add(-w)
	for i := 0; i < r.n-1; i++ {
		if at := r.at[r.idx(i)]; !at.Before(cut) {
			return i
		}
	}
	return -1
}

// Sampler snapshots a Registry on a fixed interval into per-metric
// rings. Construct with NewSampler, then Start; Stop joins the
// background goroutine. Sample may be called directly for
// deterministic tests (or instead of Start for manual pacing).
type Sampler struct {
	reg      *Registry
	interval time.Duration
	capacity int

	mu       sync.Mutex
	counters map[string]*ring[int64]
	gauges   map[string]*ring[int64]
	hists    map[string]*ring[HistogramSnapshot]

	hooks    []func(now time.Time)
	preHooks []func(now time.Time)

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewSampler builds a sampler over reg. A non-positive interval means
// DefaultSampleInterval; a non-positive capacity means a default of
// about two minutes of history at that interval.
func NewSampler(reg *Registry, interval time.Duration, capacity int) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if capacity <= 0 {
		capacity = defaultSeriesCapacity
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		capacity: capacity,
		counters: make(map[string]*ring[int64]),
		gauges:   make(map[string]*ring[int64]),
		hists:    make(map[string]*ring[HistogramSnapshot]),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Interval reports the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// OnSample registers a hook invoked after every sample (ticker-driven
// or manual) with the sample time, outside the sampler's lock.
// Register hooks before Start.
func (s *Sampler) OnSample(fn func(now time.Time)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = append(s.hooks, fn)
}

// OnBeforeSample registers a hook invoked immediately before every
// snapshot (outside the sampler's lock), so gauges that must be polled
// — the process_* runtime health gauges — are fresh in the sample about
// to be taken. Register hooks before Start.
func (s *Sampler) OnBeforeSample(fn func(now time.Time)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.preHooks = append(s.preHooks, fn)
}

// Start launches the background sampling goroutine. Idempotent.
func (s *Sampler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case now := <-tick.C:
				s.SampleAt(now)
			}
		}
	}()
}

// Stop halts the background goroutine and waits for it to exit.
// Idempotent; safe to call even if Start never ran.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	started := s.started
	s.mu.Unlock()
	if started {
		<-s.done
	}
}

// Sample takes one snapshot now. Exported so tests (and callers that
// want manual pacing) can drive the rings deterministically.
func (s *Sampler) Sample() { s.SampleAt(time.Now()) }

// SampleAt takes one snapshot stamped with the given time.
func (s *Sampler) SampleAt(now time.Time) {
	s.mu.Lock()
	pre := s.preHooks
	s.mu.Unlock()
	for _, fn := range pre {
		fn(now)
	}
	snap := s.reg.Snapshot()
	s.mu.Lock()
	for name, v := range snap.Counters {
		r := s.counters[name]
		if r == nil {
			r = newRing[int64](s.capacity)
			s.counters[name] = r
		}
		r.push(now, v)
	}
	for name, v := range snap.Gauges {
		r := s.gauges[name]
		if r == nil {
			r = newRing[int64](s.capacity)
			s.gauges[name] = r
		}
		r.push(now, v)
	}
	for name, v := range snap.Histograms {
		r := s.hists[name]
		if r == nil {
			r = newRing[HistogramSnapshot](s.capacity)
			s.hists[name] = r
		}
		r.push(now, v)
	}
	hooks := s.hooks
	s.mu.Unlock()
	for _, fn := range hooks {
		fn(now)
	}
}

// CounterDelta reports how much the named counter advanced across the
// trailing window: the value difference and elapsed time between the
// oldest in-window sample and the newest. ok is false when fewer than
// two samples fall in the window or the metric is unknown.
func (s *Sampler) CounterDelta(name string, window time.Duration) (delta float64, dt time.Duration, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.counters[name]
	if r == nil {
		return 0, 0, false
	}
	i := r.window(window)
	if i < 0 {
		return 0, 0, false
	}
	t0, v0 := r.sample(i)
	t1, v1 := r.sample(r.n - 1)
	if dt = t1.Sub(t0); dt <= 0 {
		return 0, 0, false
	}
	d := v1 - v0
	if d < 0 { // registry Reset between samples
		d = 0
	}
	return float64(d), dt, true
}

// CounterRate is CounterDelta expressed per second.
func (s *Sampler) CounterRate(name string, window time.Duration) (perSec float64, ok bool) {
	d, dt, ok := s.CounterDelta(name, window)
	if !ok {
		return 0, false
	}
	return d / dt.Seconds(), true
}

// HistogramDelta returns the windowed distribution of the named
// histogram: the bucket-count delta between the oldest in-window
// sample and the newest, plus the elapsed time between them.
func (s *Sampler) HistogramDelta(name string, window time.Duration) (h HistogramSnapshot, dt time.Duration, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.hists[name]
	if r == nil {
		return HistogramSnapshot{}, 0, false
	}
	i := r.window(window)
	if i < 0 {
		return HistogramSnapshot{}, 0, false
	}
	t0, h0 := r.sample(i)
	t1, h1 := r.sample(r.n - 1)
	if dt = t1.Sub(t0); dt <= 0 {
		return HistogramSnapshot{}, 0, false
	}
	return SubtractHistogram(h1, h0), dt, true
}

// HistogramRate reports windowed observations per second for the named
// histogram.
func (s *Sampler) HistogramRate(name string, window time.Duration) (perSec float64, ok bool) {
	h, dt, ok := s.HistogramDelta(name, window)
	if !ok {
		return 0, false
	}
	return float64(h.Count) / dt.Seconds(), true
}

// WindowQuantile reports the q-quantile of the named histogram over
// the trailing window (delta of cumulative bucket counts, linear
// interpolation inside the target bucket). ok is false with fewer than
// two samples in the window or when no observations landed in it.
func (s *Sampler) WindowQuantile(name string, q float64, window time.Duration) (float64, bool) {
	h, _, ok := s.HistogramDelta(name, window)
	if !ok {
		return 0, false
	}
	return HistogramQuantile(h, q)
}

// CounterSeries is one counter's ring rendered for /seriesz: the last
// cumulative value plus per-step rates between adjacent samples.
type CounterSeries struct {
	Name  string    `json:"name"`
	Last  int64     `json:"last"`
	Rates []float64 `json:"rates_per_sec"`
}

// GaugeSeries is one gauge's ring: raw sampled values.
type GaugeSeries struct {
	Name   string  `json:"name"`
	Last   int64   `json:"last"`
	Values []int64 `json:"values"`
}

// HistogramSeries is one histogram's ring: per-step observation rates
// and per-step windowed p50/p99 (quantiles of each adjacent-sample
// delta; steps with no observations report -1).
type HistogramSeries struct {
	Name  string    `json:"name"`
	Count int64     `json:"count"`
	Rates []float64 `json:"rates_per_sec"`
	P50   []float64 `json:"p50"`
	P99   []float64 `json:"p99"`
}

// SeriesData is the /seriesz JSON document.
type SeriesData struct {
	Schema          int               `json:"schema"`
	IntervalSeconds float64           `json:"interval_seconds"`
	Capacity        int               `json:"capacity"`
	Samples         int               `json:"samples"`
	Start           time.Time         `json:"start,omitempty"`
	End             time.Time         `json:"end,omitempty"`
	Counters        []CounterSeries   `json:"counters"`
	Gauges          []GaugeSeries     `json:"gauges"`
	Histograms      []HistogramSeries `json:"histograms"`
}

// SeriesSnapshot renders every ring into a SeriesData document, metric
// names sorted for stable output.
func (s *Sampler) SeriesSnapshot() SeriesData {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SeriesData{
		Schema:          1,
		IntervalSeconds: s.interval.Seconds(),
		Capacity:        s.capacity,
		Counters:        []CounterSeries{},
		Gauges:          []GaugeSeries{},
		Histograms:      []HistogramSeries{},
	}
	for _, name := range sortedKeys(s.counters) {
		r := s.counters[name]
		if r.n > out.Samples {
			out.Samples = r.n
		}
		cs := CounterSeries{Name: name, Rates: []float64{}}
		for i := 1; i < r.n; i++ {
			t0, v0 := r.sample(i - 1)
			t1, v1 := r.sample(i)
			cs.Rates = append(cs.Rates, stepRate(float64(v1-v0), t1.Sub(t0)))
		}
		if r.n > 0 {
			_, cs.Last = r.sample(r.n - 1)
			t0, _ := r.sample(0)
			t1, _ := r.sample(r.n - 1)
			if out.Start.IsZero() || t0.Before(out.Start) {
				out.Start = t0
			}
			if t1.After(out.End) {
				out.End = t1
			}
		}
		out.Counters = append(out.Counters, cs)
	}
	for _, name := range sortedKeys(s.gauges) {
		r := s.gauges[name]
		if r.n > out.Samples {
			out.Samples = r.n
		}
		gs := GaugeSeries{Name: name, Values: []int64{}}
		for i := 0; i < r.n; i++ {
			_, v := r.sample(i)
			gs.Values = append(gs.Values, v)
		}
		if r.n > 0 {
			gs.Last = gs.Values[r.n-1]
		}
		out.Gauges = append(out.Gauges, gs)
	}
	for _, name := range sortedKeys(s.hists) {
		r := s.hists[name]
		if r.n > out.Samples {
			out.Samples = r.n
		}
		hs := HistogramSeries{Name: name, Rates: []float64{}, P50: []float64{}, P99: []float64{}}
		for i := 1; i < r.n; i++ {
			t0, h0 := r.sample(i - 1)
			t1, h1 := r.sample(i)
			d := SubtractHistogram(h1, h0)
			hs.Rates = append(hs.Rates, stepRate(float64(d.Count), t1.Sub(t0)))
			hs.P50 = append(hs.P50, quantileOrMissing(d, 0.50))
			hs.P99 = append(hs.P99, quantileOrMissing(d, 0.99))
		}
		if r.n > 0 {
			_, last := r.sample(r.n - 1)
			hs.Count = last.Count
		}
		out.Histograms = append(out.Histograms, hs)
	}
	return out
}

func stepRate(delta float64, dt time.Duration) float64 {
	if dt <= 0 || delta < 0 {
		return 0
	}
	return delta / dt.Seconds()
}

func quantileOrMissing(h HistogramSnapshot, q float64) float64 {
	v, ok := HistogramQuantile(h, q)
	if !ok {
		return -1
	}
	return v
}

func sortedKeys[T any](m map[string]*ring[T]) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON encodes the SeriesData document.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.SeriesSnapshot())
}

// sparkRunes maps a normalised [0,1] value to a bar glyph.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a unicode sparkline, normalised to the
// series' own min..max; missing values (NaN or negative quantiles
// from empty steps) render as spaces.
func Spark(vals []float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) || v < 0 {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo > hi {
		return ""
	}
	out := make([]rune, 0, len(vals))
	for _, v := range vals {
		if math.IsNaN(v) || v < 0 {
			out = append(out, ' ')
			continue
		}
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		out = append(out, sparkRunes[i])
	}
	return string(out)
}

// WriteText renders the rings as one sparkline row per metric:
// counters show per-step rates, gauges raw values, histograms the
// per-step p99. Intended for a terminal (`curl /seriesz`).
func (s *Sampler) WriteText(w io.Writer) error {
	d := s.SeriesSnapshot()
	_, _ = fmt.Fprintf(w, "series: interval=%s capacity=%d samples=%d\n", s.interval, d.Capacity, d.Samples)
	if d.Samples == 0 {
		_, err := fmt.Fprintln(w, "no samples yet")
		return err
	}
	if d.Samples == 1 {
		_, _ = fmt.Fprintln(w, "one sample held; rates and quantiles need at least two")
	}
	_, _ = fmt.Fprintln(w, "\ncounters (rate/s):")
	for _, c := range d.Counters {
		last := 0.0
		if len(c.Rates) > 0 {
			last = c.Rates[len(c.Rates)-1]
		}
		_, _ = fmt.Fprintf(w, "  %-44s %s last=%d rate=%.2f/s\n", c.Name, Spark(c.Rates), c.Last, last)
	}
	_, _ = fmt.Fprintln(w, "\ngauges (value):")
	for _, g := range d.Gauges {
		vals := make([]float64, len(g.Values))
		for i, v := range g.Values {
			vals[i] = float64(v)
		}
		_, _ = fmt.Fprintf(w, "  %-44s %s last=%d\n", g.Name, Spark(vals), g.Last)
	}
	_, _ = fmt.Fprintln(w, "\nhistograms (p99 per step):")
	for _, h := range d.Histograms {
		p99 := 0.0
		if len(h.P99) > 0 {
			p99 = h.P99[len(h.P99)-1]
		}
		_, err := fmt.Fprintf(w, "  %-44s %s count=%d p99=%.4gs\n", h.Name, Spark(h.P99), h.Count, p99)
		if err != nil {
			return err
		}
	}
	return nil
}
