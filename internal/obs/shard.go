package obs

import "fmt"

// PerShard bundles the serving metrics of one shard. The registry is
// label-free by design (names map to plain counters), so per-shard
// series are separate families keyed by the shard index in the name:
// shard_3_queries_total is shard 3's dispatch counter. Registration is
// idempotent, so coordinators and in-process clusters can both call
// ShardMetrics for the same index.
type PerShard struct {
	Queries  *Counter   // sub-queries dispatched to the shard
	Errors   *Counter   // sub-queries that came back failed (non-timeout)
	Timeouts *Counter   // sub-queries lost to the per-shard deadline slice
	Seconds  *Histogram // per-sub-query latency as seen by the gather
}

// ShardMetrics returns (registering on first use) the per-shard metric
// family for shard i.
func ShardMetrics(i int) *PerShard {
	return &PerShard{
		Queries:  Default.Counter(fmt.Sprintf("shard_%d_queries_total", i), fmt.Sprintf("scatter sub-queries dispatched to shard %d", i)),
		Errors:   Default.Counter(fmt.Sprintf("shard_%d_errors_total", i), fmt.Sprintf("failed sub-queries from shard %d (transport or evaluator error)", i)),
		Timeouts: Default.Counter(fmt.Sprintf("shard_%d_timeouts_total", i), fmt.Sprintf("sub-queries shard %d failed to answer within its deadline slice", i)),
		Seconds:  Default.Histogram(fmt.Sprintf("shard_%d_seconds", i), fmt.Sprintf("sub-query latency of shard %d as observed at the gather", i), LatencyBuckets),
	}
}
