package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// This file is the model-decision observability layer: the aggregate
// telemetry behind /modelz (ModelStats) and the opt-in decision-log
// capture pipeline (DecisionLog) consumed by cmd/psi-decisions.
//
// SmartPSI's bet (paper §4) is that the per-node choices of model α
// (optimistic vs pessimistic method) and model β (search order) beat
// either fixed strategy. ModelStats turns that bet into measurable
// quantities: a full 2×2 confusion matrix and vote-margin calibration
// for model α, plan-rank tracking for model β against the training
// sweeps, prediction-cache quality (cached vs fresh answers on sampled
// hits), and per-decision regret from shadow scoring — the extra time
// the predicted choice cost versus a counterfactual run of the
// opposite method or an alternative plan.

// DecisionSchemaVersion is the schema tag written into every decision
// record; cmd/psi-decisions refuses records from other versions.
const DecisionSchemaVersion = 1

// Decision-record kinds.
const (
	// DecisionKindMode is a shadow run of the opposite method (audits
	// model α): regret compares the predicted method against its
	// counterfactual on the same plan.
	DecisionKindMode = "mode"
	// DecisionKindPlan is a shadow run of a sampled alternative plan
	// (audits model β) under the same method.
	DecisionKindPlan = "plan"
	// DecisionKindCache is a cache-quality audit: the cached decision
	// compared against a fresh model prediction (no shadow evaluation).
	DecisionKindCache = "cache"
	// DecisionKindBeta is a model-β plan-rank observation from the
	// training sweeps: Rank is the predicted plan's 1-based position in
	// the sweep's measured per-plan times.
	DecisionKindBeta = "beta"
)

// DecisionRecord is one audited model decision, serialized as a single
// JSONL line by DecisionLog. Fields are populated per Kind; zero-valued
// optional fields are omitted.
type DecisionRecord struct {
	// Schema is DecisionSchemaVersion; readers must reject others.
	Schema int `json:"schema"`
	// Kind is one of the DecisionKind* constants.
	Kind string `json:"kind"`
	// Query names the originating query (the profile name).
	Query string `json:"query,omitempty"`
	// RequestID is the serving-layer X-Request-ID that produced this
	// decision, when the query arrived through psi-serve.
	RequestID string `json:"request_id,omitempty"`
	// Fingerprint is the query's canonical shape fingerprint (the
	// /queryz grouping key), letting decision-log analysis pivot model
	// behavior by workload shape.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Node is the audited candidate node (-1 for beta-rank records).
	Node int64 `json:"node"`
	// Features is the candidate's signature row (the model input).
	Features []float64 `json:"features,omitempty"`
	// FromCache marks decisions served by the prediction cache.
	FromCache bool `json:"from_cache,omitempty"`
	// PredMode is model α's method choice (0 optimistic, 1 pessimistic,
	// psi.Mode numbering).
	PredMode int `json:"pred_mode"`
	// PredPlan is model β's plan choice.
	PredPlan int `json:"pred_plan"`
	// VoteMargin is model α's forest vote margin in [0,1]:
	// (winner − loser) / trees. Zero when no fresh prediction was made.
	VoteMargin float64 `json:"vote_margin"`
	// ActualValid is the ground-truth node label established by the
	// primary evaluation.
	ActualValid bool `json:"actual_valid"`
	// ShadowMode / ShadowPlan identify the counterfactual that was run
	// (mode and plan kinds).
	ShadowMode int `json:"shadow_mode,omitempty"`
	ShadowPlan int `json:"shadow_plan,omitempty"`
	// PrimaryNanos / ShadowNanos are the primary and counterfactual wall
	// times; RegretNanos is max(0, primary − shadow) — the cost of the
	// predicted choice versus the counterfactual.
	PrimaryNanos int64 `json:"primary_nanos,omitempty"`
	ShadowNanos  int64 `json:"shadow_nanos,omitempty"`
	RegretNanos  int64 `json:"regret_nanos"`
	// ShadowTimeout marks counterfactuals censored by the shadow budget
	// (the predicted choice was at least budget/primary times faster, so
	// regret is 0 but the shadow time is a lower bound).
	ShadowTimeout bool `json:"shadow_timeout,omitempty"`
	// CacheStale marks cache-kind records whose fresh prediction
	// disagreed with the cached decision.
	CacheStale bool `json:"cache_stale,omitempty"`
	// Rank is the beta-kind plan rank (1 = the predicted plan was the
	// sweep's fastest).
	Rank int `json:"rank,omitempty"`
}

// PredValid reports the validity model α's method choice implies
// (optimistic ⇒ predicted valid).
func (r *DecisionRecord) PredValid() bool { return r.PredMode == 0 }

// DecisionLog is a bounded, schema-versioned JSONL writer: one line per
// audited decision. All methods are safe for concurrent use and
// nil-safe, so call sites hold a possibly-nil *DecisionLog
// unconditionally. Once the record cap is reached further appends are
// counted as dropped rather than growing the file without bound.
type DecisionLog struct {
	mu      sync.Mutex
	bw      *bufio.Writer // nil for tail-only logs (NewDecisionTail)
	closer  io.Closer     // non-nil when the log owns the underlying file
	max     int64
	written int64
	dropped int64
	closed  bool
	err     error // first write error; subsequent appends are dropped

	// tail is an in-memory ring of the most recent accepted records,
	// kept alongside the JSONL stream so diagnostic bundles can capture
	// "the last N audited decisions" from a live process.
	tail    []DecisionRecord
	tailPos int
	tailN   int
}

// DefaultDecisionLogCap bounds a log when NewDecisionLog is given a
// non-positive cap.
const DefaultDecisionLogCap = 1 << 20

// DefaultDecisionTailCap is the in-memory tail retention of every
// decision log (and of NewDecisionTail with a non-positive size).
const DefaultDecisionTailCap = 512

// NewDecisionLog returns a bounded JSONL decision log writing to w
// (maxRecords <= 0 means DefaultDecisionLogCap). The caller retains
// ownership of w; Close flushes but does not close it.
func NewDecisionLog(w io.Writer, maxRecords int64) *DecisionLog {
	if maxRecords <= 0 {
		maxRecords = DefaultDecisionLogCap
	}
	return &DecisionLog{
		bw:   bufio.NewWriter(w),
		max:  maxRecords,
		tail: make([]DecisionRecord, DefaultDecisionTailCap),
	}
}

// NewDecisionTail returns a tail-only decision log: no JSONL stream,
// just the bounded in-memory ring of the most recent records
// (non-positive size means DefaultDecisionTailCap). psi-serve attaches
// one to the engine so diagnostic bundles can dump the recent audit
// trail without any file I/O on the serving path.
func NewDecisionTail(size int) *DecisionLog {
	if size <= 0 {
		size = DefaultDecisionTailCap
	}
	return &DecisionLog{max: DefaultDecisionLogCap, tail: make([]DecisionRecord, size)}
}

// CreateDecisionLog creates (truncates) path and returns a log that
// owns the file: Close flushes and closes it.
func CreateDecisionLog(path string, maxRecords int64) (*DecisionLog, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: decision log: %w", err)
	}
	l := NewDecisionLog(f, maxRecords)
	l.closer = f
	return l, nil
}

// Append writes one record (stamping the schema version). Appends past
// the record cap, after Close, or after a write error are counted as
// dropped. Nil-safe: a nil log drops everything silently.
func (l *DecisionLog) Append(rec DecisionRecord) {
	if l == nil {
		return
	}
	rec.Schema = DecisionSchemaVersion
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.err != nil || l.written >= l.max {
		l.dropped++
		return
	}
	if l.bw != nil {
		data, err := json.Marshal(rec)
		if err == nil {
			data = append(data, '\n')
			_, err = l.bw.Write(data)
		}
		if err != nil {
			l.err = err
			l.dropped++
			return
		}
	}
	if len(l.tail) > 0 {
		l.tail[l.tailPos] = rec
		l.tailPos = (l.tailPos + 1) % len(l.tail)
		if l.tailN < len(l.tail) {
			l.tailN++
		}
	}
	l.written++
}

// Tail returns the most recent accepted records, oldest first.
// Nil-safe; records remain readable after Close.
func (l *DecisionLog) Tail() []DecisionRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]DecisionRecord, 0, l.tailN)
	for i := 0; i < l.tailN; i++ {
		out = append(out, l.tail[(l.tailPos-l.tailN+i+len(l.tail))%len(l.tail)])
	}
	return out
}

// Written returns the number of records written.
func (l *DecisionLog) Written() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written
}

// Dropped returns the number of records dropped (cap reached, closed,
// or write error).
func (l *DecisionLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Close flushes buffered records (closing the underlying file when the
// log owns it) and marks the log closed; later appends are dropped.
// Idempotent and nil-safe.
func (l *DecisionLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return l.err
	}
	l.closed = true
	if l.bw != nil {
		if err := l.bw.Flush(); err != nil && l.err == nil {
			l.err = err
		}
	}
	if l.closer != nil {
		if err := l.closer.Close(); err != nil && l.err == nil {
			l.err = err
		}
	}
	return l.err
}

// ReadDecisionLog parses a JSONL decision log, rejecting records with a
// foreign schema version. Blank lines are skipped.
func ReadDecisionLog(r io.Reader) ([]DecisionRecord, error) {
	var recs []DecisionRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var rec DecisionRecord
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("obs: decision log line %d: %w", line, err)
		}
		if rec.Schema != DecisionSchemaVersion {
			return nil, fmt.Errorf("obs: decision log line %d: schema %d, this reader handles %d",
				line, rec.Schema, DecisionSchemaVersion)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: decision log: %w", err)
	}
	return recs, nil
}

// ReadDecisionLogFile opens path and parses it with ReadDecisionLog.
func ReadDecisionLogFile(path string) ([]DecisionRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: decision log: %w", err)
	}
	defer f.Close()
	return ReadDecisionLog(f)
}

// NumCalibrationBuckets is the vote-margin calibration resolution:
// margin ∈ [0,1] split into equal buckets.
const NumCalibrationBuckets = 5

// CalibrationBucketIndex maps a vote margin to its bucket.
func CalibrationBucketIndex(margin float64) int {
	i := int(margin * NumCalibrationBuckets)
	if i < 0 {
		i = 0
	}
	if i >= NumCalibrationBuckets {
		i = NumCalibrationBuckets - 1
	}
	return i
}

// CalibrationBucket is one vote-margin calibration cell: how often
// predictions with this confidence were right.
type CalibrationBucket struct {
	N       int64 `json:"n"`
	Correct int64 `json:"correct"`
}

// RegretAggregate summarizes one shadow-scoring family.
type RegretAggregate struct {
	// Runs counts shadow evaluations; Timeouts the ones censored by the
	// shadow budget (regret 0, counterfactual at least the budget).
	Runs     int64 `json:"runs"`
	Timeouts int64 `json:"timeouts"`
	// TotalNanos / MaxNanos aggregate the per-decision regret
	// max(0, primary − shadow).
	TotalNanos int64 `json:"total_nanos"`
	MaxNanos   int64 `json:"max_nanos"`
}

func (a *RegretAggregate) observe(regret time.Duration, timedOut bool) {
	a.Runs++
	if timedOut {
		a.Timeouts++
	}
	n := regret.Nanoseconds()
	a.TotalNanos += n
	if n > a.MaxNanos {
		a.MaxNanos = n
	}
}

// Mean returns the mean regret per shadow run.
func (a RegretAggregate) Mean() time.Duration {
	if a.Runs == 0 {
		return 0
	}
	return time.Duration(a.TotalNanos / a.Runs)
}

// ModelStats aggregates model-decision telemetry for /modelz. All
// methods take the stats mutex and also publish into the Default
// registry's shadow/quality metrics, so /metrics and /modelz stay
// consistent from a single call site. Methods are nil-safe.
type ModelStats struct {
	mu sync.Mutex
	// alpha is the model-α confusion matrix: [actual][predicted], with
	// 1 = valid (optimistic). Every scored prediction lands here, not
	// just shadow-sampled ones — ground truth is free (§4.2.1: the
	// evaluation itself labels the node).
	alpha [2][2]int64
	// calib buckets scored predictions by forest vote margin.
	calib [NumCalibrationBuckets]CalibrationBucket
	// betaRanks[r-1] counts sweep nodes whose predicted plan ranked r
	// among the sweep's finished plans (1 = fastest).
	betaRanks []int64
	// cache-quality audit counts (sampled cache hits re-predicted).
	cacheChecks, cacheStale int64
	// Shadow-scoring regret, split by audited model.
	mode, plan RegretAggregate
	// shadowMismatches counts shadow runs whose matched/not-matched
	// verdict contradicted the primary run (a soundness bug; also an
	// invariant violation when deep checking is on).
	shadowMismatches int64
	// driftEvents counts model-α drift-detector firings.
	driftEvents int64
}

// DefaultModelStats is the process-wide aggregate served at /modelz.
var DefaultModelStats = &ModelStats{}

// ObserveAlpha scores one fresh model-α prediction against ground
// truth: confusion matrix + vote-margin calibration.
func (m *ModelStats) ObserveAlpha(predValid, actualValid bool, margin float64) {
	if m == nil {
		return
	}
	b := CalibrationBucketIndex(margin)
	m.mu.Lock()
	m.alpha[boolIdx(actualValid)][boolIdx(predValid)]++
	m.calib[b].N++
	if predValid == actualValid {
		m.calib[b].Correct++
	}
	m.mu.Unlock()
}

// ObserveBetaRank records the 1-based rank of model β's predicted plan
// in one training sweep's measured plan times.
func (m *ModelStats) ObserveBetaRank(rank int) {
	if m == nil || rank < 1 {
		return
	}
	m.mu.Lock()
	for len(m.betaRanks) < rank {
		m.betaRanks = append(m.betaRanks, 0)
	}
	m.betaRanks[rank-1]++
	m.mu.Unlock()
	SmartBetaRankChecks.Inc()
	if rank == 1 {
		SmartBetaRankTop1.Inc()
	}
}

// ObserveCacheCheck records one sampled cache-quality audit.
func (m *ModelStats) ObserveCacheCheck(stale bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.cacheChecks++
	if stale {
		m.cacheStale++
	}
	m.mu.Unlock()
	SmartCacheQualityChecks.Inc()
	if stale {
		SmartCacheStaleHits.Inc()
	}
}

// ObserveRegret records one shadow run: kind is DecisionKindMode or
// DecisionKindPlan, regret is max(0, primary − shadow), timedOut marks
// budget-censored counterfactuals. Also feeds the regret histograms.
func (m *ModelStats) ObserveRegret(kind string, regret time.Duration, timedOut bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	switch kind {
	case DecisionKindPlan:
		m.plan.observe(regret, timedOut)
	default:
		m.mode.observe(regret, timedOut)
	}
	m.mu.Unlock()
	if kind == DecisionKindPlan {
		SmartShadowPlanRuns.Inc()
		SmartPlanRegretSeconds.Observe(regret.Seconds())
	} else {
		SmartShadowModeRuns.Inc()
		SmartModeRegretSeconds.Observe(regret.Seconds())
	}
	if timedOut {
		SmartShadowTimeouts.Inc()
	}
}

// ObserveShadowMismatch records a shadow/primary verdict disagreement.
func (m *ModelStats) ObserveShadowMismatch() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.shadowMismatches++
	m.mu.Unlock()
	SmartShadowMismatches.Inc()
}

// ObserveDrift records one drift-detector event.
func (m *ModelStats) ObserveDrift() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.driftEvents++
	m.mu.Unlock()
	SmartDriftEvents.Inc()
}

// Reset zeroes the aggregate (tests only; the registry metrics are
// reset separately via Registry.Reset).
func (m *ModelStats) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.alpha = [2][2]int64{}
	m.calib = [NumCalibrationBuckets]CalibrationBucket{}
	m.betaRanks = nil
	m.cacheChecks, m.cacheStale = 0, 0
	m.mode, m.plan = RegretAggregate{}, RegretAggregate{}
	m.shadowMismatches = 0
	m.driftEvents = 0
	m.mu.Unlock()
}

func boolIdx(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ModelStatsData is a point-in-time ModelStats snapshot: plain data,
// JSON-ready, and the input of the /modelz text renderer.
type ModelStatsData struct {
	// Alpha is [actual][predicted] with 1 = valid.
	Alpha [2][2]int64 `json:"alpha_confusion"`
	// Calibration buckets cover margin [i/N, (i+1)/N).
	Calibration [NumCalibrationBuckets]CalibrationBucket `json:"calibration"`
	// BetaRanks[r-1] counts predictions of sweep-rank r.
	BetaRanks        []int64         `json:"beta_ranks,omitempty"`
	CacheChecks      int64           `json:"cache_checks"`
	CacheStale       int64           `json:"cache_stale"`
	ModeRegret       RegretAggregate `json:"mode_regret"`
	PlanRegret       RegretAggregate `json:"plan_regret"`
	ShadowMismatches int64           `json:"shadow_mismatches"`
	DriftEvents      int64           `json:"drift_events"`
}

// Snapshot captures the aggregate's current state.
func (m *ModelStats) Snapshot() ModelStatsData {
	var d ModelStatsData
	if m == nil {
		return d
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	d.Alpha = m.alpha
	d.Calibration = m.calib
	d.BetaRanks = append([]int64(nil), m.betaRanks...)
	d.CacheChecks, d.CacheStale = m.cacheChecks, m.cacheStale
	d.ModeRegret, d.PlanRegret = m.mode, m.plan
	d.ShadowMismatches = m.shadowMismatches
	d.DriftEvents = m.driftEvents
	return d
}

// AlphaTotal returns the number of scored model-α predictions.
func (d ModelStatsData) AlphaTotal() int64 {
	return d.Alpha[0][0] + d.Alpha[0][1] + d.Alpha[1][0] + d.Alpha[1][1]
}

// AlphaAccuracy returns the confusion-matrix diagonal fraction (1.0
// when empty).
func (d ModelStatsData) AlphaAccuracy() float64 {
	t := d.AlphaTotal()
	if t == 0 {
		return 1
	}
	return float64(d.Alpha[0][0]+d.Alpha[1][1]) / float64(t)
}

// BetaObserved returns the number of plan-rank observations.
func (d ModelStatsData) BetaObserved() int64 {
	var n int64
	for _, c := range d.BetaRanks {
		n += c
	}
	return n
}

// BetaTopK returns the fraction of plan predictions ranked ≤ k (1.0
// when nothing was observed).
func (d ModelStatsData) BetaTopK(k int) float64 {
	total := d.BetaObserved()
	if total == 0 {
		return 1
	}
	var in int64
	for i, c := range d.BetaRanks {
		if i < k {
			in += c
		}
	}
	return float64(in) / float64(total)
}

// WriteText renders the /modelz report.
func (d ModelStatsData) WriteText(w io.Writer) error {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "model-decision observability (/modelz?format=json for JSON)\n\n")

	fmt.Fprintf(&buf, "model α (node type, §4.2) — confusion matrix, %d scored predictions\n", d.AlphaTotal())
	fmt.Fprintf(&buf, "  %-16s  %12s  %12s\n", "", "pred-invalid", "pred-valid")
	fmt.Fprintf(&buf, "  %-16s  %12d  %12d\n", "actual-invalid", d.Alpha[0][0], d.Alpha[0][1])
	fmt.Fprintf(&buf, "  %-16s  %12d  %12d\n", "actual-valid", d.Alpha[1][0], d.Alpha[1][1])
	fmt.Fprintf(&buf, "  accuracy %.4f", d.AlphaAccuracy())
	if pv := d.Alpha[0][1] + d.Alpha[1][1]; pv > 0 {
		fmt.Fprintf(&buf, "  precision(valid) %.4f", float64(d.Alpha[1][1])/float64(pv))
	}
	if av := d.Alpha[1][0] + d.Alpha[1][1]; av > 0 {
		fmt.Fprintf(&buf, "  recall(valid) %.4f", float64(d.Alpha[1][1])/float64(av))
	}
	fmt.Fprintf(&buf, "\n\n")

	fmt.Fprintf(&buf, "vote-margin calibration (forest margin → empirical accuracy)\n")
	fmt.Fprintf(&buf, "  %-12s  %10s  %10s\n", "margin", "n", "accuracy")
	for i, b := range d.Calibration {
		lo := float64(i) / NumCalibrationBuckets
		hi := float64(i+1) / NumCalibrationBuckets
		acc := "-"
		if b.N > 0 {
			acc = fmt.Sprintf("%.4f", float64(b.Correct)/float64(b.N))
		}
		fmt.Fprintf(&buf, "  [%.1f,%.1f)    %10d  %10s\n", lo, hi, b.N, acc)
	}
	fmt.Fprintf(&buf, "\n")

	fmt.Fprintf(&buf, "model β (plan choice, §4.2) — predicted-plan rank vs training sweeps: %d observed", d.BetaObserved())
	if d.BetaObserved() > 0 {
		fmt.Fprintf(&buf, ", top-1 %.3f, top-2 %.3f\n  ranks:", d.BetaTopK(1), d.BetaTopK(2))
		for i, c := range d.BetaRanks {
			if c != 0 {
				fmt.Fprintf(&buf, " %d:%d", i+1, c)
			}
		}
	}
	fmt.Fprintf(&buf, "\n\n")

	rate := "-"
	if d.CacheChecks > 0 {
		rate = fmt.Sprintf("%.4f", float64(d.CacheStale)/float64(d.CacheChecks))
	}
	fmt.Fprintf(&buf, "prediction-cache quality (§4.2.3): %d sampled hits, %d stale (stale rate %s)\n\n",
		d.CacheChecks, d.CacheStale, rate)

	writeRegret := func(name string, a RegretAggregate) {
		fmt.Fprintf(&buf, "shadow %s regret: %d runs (%d censored by budget), total %s, mean %s, max %s\n",
			name, a.Runs, a.Timeouts,
			time.Duration(a.TotalNanos).Round(time.Microsecond),
			a.Mean().Round(time.Microsecond),
			time.Duration(a.MaxNanos).Round(time.Microsecond))
	}
	writeRegret("mode (model α counterfactual)", d.ModeRegret)
	writeRegret("plan (model β counterfactual)", d.PlanRegret)
	fmt.Fprintf(&buf, "shadow verdict mismatches: %d (must be 0; invariant-gated)\n", d.ShadowMismatches)
	fmt.Fprintf(&buf, "model-α drift events (§4.3 mispredict stream): %d\n", d.DriftEvents)
	_, err := w.Write(buf.Bytes())
	return err
}
