package obs

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"
)

// checkSpaceSaving asserts the classic Space-Saving guarantees against
// exact truth: for every tracked shape, truth <= estimate, estimate -
// errBound <= truth, and errBound <= N/k. Any heavy hitter with true
// count > N/k must still be tracked.
func checkSpaceSaving(t *testing.T, w *Workload, truth map[uint64]int64, n int64) {
	t.Helper()
	w.mu.Lock()
	defer w.mu.Unlock()
	if int64(len(w.entries)) > int64(w.k) {
		t.Fatalf("sketch tracks %d shapes, cap is %d", len(w.entries), w.k)
	}
	bound := n / int64(w.k)
	for shape, e := range w.entries {
		tc := truth[shape]
		if e.count < tc {
			t.Errorf("shape %x: estimate %d under-counts truth %d", shape, e.count, tc)
		}
		if e.count-e.errBound > tc {
			t.Errorf("shape %x: estimate %d - err %d exceeds truth %d", shape, e.count, e.errBound, tc)
		}
		if e.errBound > bound {
			t.Errorf("shape %x: errBound %d exceeds N/k = %d/%d = %d", shape, e.errBound, n, w.k, bound)
		}
	}
	for shape, tc := range truth {
		if tc > bound {
			if _, ok := w.entries[shape]; !ok {
				t.Errorf("heavy hitter %x (count %d > N/k %d) was evicted", shape, tc, bound)
			}
		}
	}
}

// TestWorkloadSpaceSavingAdversarial cycles k+1 distinct shapes — the
// classic churn worst case, every miss evicting the minimum — and the
// bounds must still hold.
func TestWorkloadSpaceSavingAdversarial(t *testing.T) {
	const k, rounds = 8, 400
	w := NewWorkload(k)
	truth := map[uint64]int64{}
	var n int64
	for i := 0; i < rounds; i++ {
		shape := uint64(i % (k + 1))
		w.Observe(QueryObservation{Shape: shape, Exact: shape})
		truth[shape]++
		n++
	}
	checkSpaceSaving(t, w, truth, n)
}

// TestWorkloadSpaceSavingZipf streams a Zipfian mix over many more
// distinct shapes than the sketch tracks: the bounds must hold and the
// hot keys must survive.
func TestWorkloadSpaceSavingZipf(t *testing.T) {
	const k, n = 16, 20000
	w := NewWorkload(k)
	rng := rand.New(rand.NewSource(3))
	zipf := rand.NewZipf(rng, 1.3, 1, 512)
	truth := map[uint64]int64{}
	for i := 0; i < n; i++ {
		shape := zipf.Uint64()
		w.Observe(QueryObservation{Shape: shape, Exact: shape ^ uint64(i%4)})
		truth[shape]++
	}
	checkSpaceSaving(t, w, truth, n)
}

// TestWorkloadAggregatesCoverage is the reflection gate: every int64
// aggregate field (funnel included) must be nonzero after observing
// fully-populated observations across all four outcomes — so a field
// added to ShapeAggregates cannot silently be missed by the fold.
func TestWorkloadAggregatesCoverage(t *testing.T) {
	w := NewWorkload(4)
	full := QueryObservation{
		Shape: 1, Exact: 7, Example: "q4", Nodes: 4, Edges: 3, PivotLabel: 2,
		Outcome: WorkloadOutcomeOK, Wall: 3 * time.Millisecond,
		Work: 9, Candidates: 5, Bindings: 2, CacheHits: 1, Flips: 1, Fallbacks: 1,
		ModeMix: [2]int64{2, 3}, UsedML: true,
		Funnel: FunnelDepth{Generated: 5, DegOK: 4, SigOK: 3, Recursed: 2, Matched: 1},
	}
	w.Observe(full)
	w.Observe(full) // same Exact: the repeat hit
	for _, outcome := range []string{WorkloadOutcomeShed, WorkloadOutcomeDeadline, WorkloadOutcomeError} {
		o := full
		o.Exact = 100
		o.Outcome = outcome
		w.Observe(o)
	}

	w.mu.Lock()
	agg := w.entries[1].agg
	w.mu.Unlock()
	var missed []string
	var walk func(v reflect.Value, prefix string)
	walk = func(v reflect.Value, prefix string) {
		for i := 0; i < v.NumField(); i++ {
			f, name := v.Field(i), prefix+v.Type().Field(i).Name
			switch f.Kind() {
			case reflect.Struct:
				walk(f, name+".")
			case reflect.Int64:
				if f.Int() == 0 {
					missed = append(missed, name)
				}
			default:
				t.Errorf("%s: unexpected aggregate field kind %s", name, f.Kind())
			}
		}
	}
	walk(reflect.ValueOf(agg), "")
	if len(missed) > 0 {
		t.Errorf("aggregate fields not exercised by the fold (wire them through Observe): %s",
			strings.Join(missed, ", "))
	}
}

// TestWorkloadSnapshot checks the /queryz document: cost-descending
// ranking, share arithmetic, and the cache-win estimate derived from
// exact-hash repeats.
func TestWorkloadSnapshot(t *testing.T) {
	w := NewWorkload(8)
	// Shape 1: two cheap repeats of one exact query; shape 2: one
	// expensive singleton.
	w.Observe(QueryObservation{Shape: 1, Exact: 10, Wall: time.Millisecond, Example: "hot"})
	w.Observe(QueryObservation{Shape: 1, Exact: 10, Wall: time.Millisecond})
	w.Observe(QueryObservation{Shape: 2, Exact: 20, Wall: 50 * time.Millisecond, Example: "cold"})

	d := w.Snapshot()
	if d.Schema != 1 || d.Observed != 3 || d.TrackedShapes != 2 {
		t.Fatalf("snapshot header = %+v", d)
	}
	if len(d.Shapes) != 2 || d.Shapes[0].Example != "cold" {
		t.Fatalf("cost ranking wrong: %+v", d.Shapes)
	}
	hot := d.Shapes[1]
	if hot.Count != 2 || hot.Totals.RepeatHits != 1 {
		t.Errorf("hot shape = %+v", hot)
	}
	if got, want := hot.CountShare, 2.0/3.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("hot CountShare = %v, want %v", got, want)
	}
	if d.CacheWin.RepeatHits != 1 || d.CacheWin.Observed != 3 {
		t.Errorf("cache win = %+v", d.CacheWin)
	}
	if got, want := d.CacheWin.HitRate, 1.0/3.0; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("hit rate upper bound = %v, want %v", got, want)
	}
	// One repeat of a 1ms-mean shape: ~1ms savable.
	if d.CacheWin.SavableNanos <= 0 || d.CacheWin.SavableNanos > (2*time.Millisecond).Nanoseconds() {
		t.Errorf("savable = %dns", d.CacheWin.SavableNanos)
	}
}

// TestWorkloadNil: every method on a nil sketch is a no-op — the
// disabled serving path.
func TestWorkloadNil(t *testing.T) {
	var w *Workload
	w.Observe(QueryObservation{Shape: 1})
	d := w.Snapshot()
	if d.Schema != 1 || d.Observed != 0 || len(d.Shapes) != 0 {
		t.Fatalf("nil snapshot = %+v", d)
	}
}

// TestWorkloadHTTP drives /queryz through the debug handler: 503 when
// unarmed, text and JSON when armed, and /profilez?fingerprint= lookup.
func TestWorkloadHTTP(t *testing.T) {
	withEnabled(t, func() {
		reg := NewRegistry()
		tracer := NewTracer(4)
		rec := NewRecorder(4)

		// Unarmed: /queryz must explain itself with a 503.
		h := Handler(reg, tracer, rec)
		if code, body := get(t, h, "/queryz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "workload analytics disabled") {
			t.Errorf("/queryz unarmed = %d\n%s", code, body)
		}

		w := NewWorkload(8)
		w.Observe(QueryObservation{Shape: 0xbeef, Exact: 1, Wall: time.Millisecond, Example: "srv/q1"})
		w.Observe(QueryObservation{Shape: 0xbeef, Exact: 1, Wall: time.Millisecond})
		p := rec.Start("srv/q1")
		p.SetFingerprint("000000000000beef")
		p.Finish()
		h = Handler(reg, tracer, rec, WithWorkload(w))

		code, body := get(t, h, "/queryz")
		if code != 200 || !strings.Contains(body, "000000000000beef") || !strings.Contains(body, "srv/q1") {
			t.Errorf("/queryz = %d\n%s", code, body)
		}
		code, body = get(t, h, "/queryz?format=json")
		if code != 200 {
			t.Fatalf("/queryz?format=json = %d\n%s", code, body)
		}
		var d WorkloadData
		if err := json.Unmarshal([]byte(body), &d); err != nil {
			t.Fatalf("/queryz json: %v", err)
		}
		if d.Schema != 1 || len(d.Shapes) != 1 || d.Shapes[0].Fingerprint != "000000000000beef" {
			t.Errorf("/queryz json = %+v", d)
		}
		if d.CacheWin.RepeatHits != 1 {
			t.Errorf("cache win section = %+v", d.CacheWin)
		}

		code, body = get(t, h, "/profilez?fingerprint=000000000000beef")
		if code != 200 || !strings.Contains(body, "srv/q1") {
			t.Errorf("/profilez?fingerprint= = %d\n%s", code, body)
		}
		if code, _ := get(t, h, "/profilez?fingerprint=ffffffffffffffff"); code != http.StatusNotFound {
			t.Errorf("/profilez with unknown fingerprint = %d, want 404", code)
		}
	})
}

// TestWorkloadMetrics: the obs_workload_* meta-metrics move with the
// sketch so /seriesz and SLO machinery can consume them.
func TestWorkloadMetrics(t *testing.T) {
	base := workloadObserved.Value()
	baseRepeats := workloadRepeats.Value()
	baseChurn := workloadChurn.Value()
	w := NewWorkload(2)
	w.Observe(QueryObservation{Shape: 1, Exact: 1})
	w.Observe(QueryObservation{Shape: 1, Exact: 1})
	w.Observe(QueryObservation{Shape: 2, Exact: 2})
	w.Observe(QueryObservation{Shape: 3, Exact: 3}) // full: evicts the min
	if got := workloadObserved.Value() - base; got != 4 {
		t.Errorf("obs_workload_observed_total moved %d, want 4", got)
	}
	if got := workloadRepeats.Value() - baseRepeats; got != 1 {
		t.Errorf("obs_workload_repeat_hits_total moved %d, want 1", got)
	}
	if got := workloadChurn.Value() - baseChurn; got != 1 {
		t.Errorf("obs_workload_topk_churn_total moved %d, want 1", got)
	}
	if got := workloadTracked.Value(); got != 2 {
		t.Errorf("obs_workload_tracked_shapes = %d, want 2", got)
	}
}
