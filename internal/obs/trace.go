package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind identifies one kind of typed trace event. The recovery
// ladder of smartpsi (Section 4.3 of the paper) emits these in a fixed
// grammar per candidate: ModePredicted/PlanChosen (or CacheHit), then
// either ModeActual, or Timeout Flip [Timeout Fallback] ModeActual.
type EventKind uint8

const (
	// EvTrainDone: model training finished; Arg is the training-set size.
	EvTrainDone EventKind = iota
	// EvCacheHit: prediction-cache hit for candidate Node.
	EvCacheHit
	// EvCacheMiss: prediction-cache miss for candidate Node.
	EvCacheMiss
	// EvModePredicted: model α predicted a method for Node; Arg is the
	// psi.Mode (0 optimistic-invalid? no — Arg is int64(mode)).
	EvModePredicted
	// EvPlanChosen: model β chose plan index Arg for Node.
	EvPlanChosen
	// EvTimeout: the per-state MaxTime budget fired for Node; Arg is the
	// recovery state that timed out (1 or 2).
	EvTimeout
	// EvFlip: state-2 recovery, re-evaluating Node with the opposite
	// method; Arg is the new psi.Mode.
	EvFlip
	// EvFallback: state-3 recovery, re-evaluating Node with the
	// heuristic plan (Arg is the plan index, always 0).
	EvFallback
	// EvModeActual: ground truth for Node established; Arg is 1 when the
	// node is a valid pivot binding, 0 otherwise.
	EvModeActual
	// EvCapHit: the super-optimistic candidate cap truncated at least
	// one candidate list while evaluating Node; Arg is the number of
	// truncations.
	EvCapHit
	// EvShadow: a shadow audit ran for Node after its primary evaluation
	// resolved at rung 1; Arg is the regret in nanoseconds.
	EvShadow
	// EvDrift: the model-α drift detector fired while scoring Node; Arg
	// is the detector's cumulative event count. Annotates the recovery-
	// ladder trace, since §4.3 recoveries are ground-truth-labeled
	// mispredictions feeding the same stream.
	EvDrift
)

var eventKindNames = [...]string{
	EvTrainDone:     "train_done",
	EvCacheHit:      "cache_hit",
	EvCacheMiss:     "cache_miss",
	EvModePredicted: "mode_predicted",
	EvPlanChosen:    "plan_chosen",
	EvTimeout:       "timeout",
	EvFlip:          "flip",
	EvFallback:      "fallback",
	EvModeActual:    "mode_actual",
	EvCapHit:        "cap_hit",
	EvShadow:        "shadow",
	EvDrift:         "drift",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one typed trace event.
type Event struct {
	// At is the offset from the trace's start.
	At time.Duration
	// Kind is the event type.
	Kind EventKind
	// Node is the candidate data node the event concerns, -1 when the
	// event is query-scoped.
	Node int64
	// Arg is kind-specific (see the EventKind docs).
	Arg int64
}

// maxTraceEvents caps the per-query event buffer; events past the cap
// are counted but dropped, keeping pathological queries bounded.
const maxTraceEvents = 4096

// QueryTrace records the typed events of one query evaluation. A nil
// *QueryTrace is valid and ignores all method calls, so call sites can
// hold the result of StartQuery unconditionally and pay only a nil
// check when tracing is off.
type QueryTrace struct {
	id    uint64
	name  string
	start time.Time

	mu        sync.Mutex
	end       time.Time
	requestID string
	events    []Event
	dropped   int
}

// ID returns the tracer-assigned sequence number.
func (t *QueryTrace) ID() uint64 { return t.id }

// Name returns the label given to StartQuery.
func (t *QueryTrace) Name() string { return t.name }

// Start returns the trace's start time.
func (t *QueryTrace) Start() time.Time { return t.start }

// Duration returns end-start for finished traces, time-since-start for
// live ones.
func (t *QueryTrace) Duration() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.end.IsZero() {
		return time.Since(t.start)
	}
	return t.end.Sub(t.start)
}

// Finished reports whether Finish has been called.
func (t *QueryTrace) Finished() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.end.IsZero()
}

// SetRequestID tags the trace with the serving-layer request ID
// (X-Request-ID). A no-op on a nil trace.
func (t *QueryTrace) SetRequestID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.requestID = id
	t.mu.Unlock()
}

// RequestID returns the serving-layer request ID, if one was set.
func (t *QueryTrace) RequestID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.requestID
}

// Event appends one typed event. Safe for concurrent use; a no-op on a
// nil trace.
func (t *QueryTrace) Event(kind EventKind, node, arg int64) {
	if t == nil {
		return
	}
	at := time.Since(t.start)
	t.mu.Lock()
	if len(t.events) >= maxTraceEvents {
		t.dropped++
	} else {
		t.events = append(t.events, Event{At: at, Kind: kind, Node: node, Arg: arg})
	}
	t.mu.Unlock()
}

// Finish marks the trace complete. A no-op on a nil trace.
func (t *QueryTrace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	t.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (t *QueryTrace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Kinds returns just the event kinds, in order — the recovery-ladder
// tests assert against this.
func (t *QueryTrace) Kinds() []EventKind {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	kinds := make([]EventKind, len(t.events))
	for i, e := range t.events {
		kinds[i] = e.Kind
	}
	return kinds
}

// Dropped returns how many events were discarded by the buffer cap.
func (t *QueryTrace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Tracer keeps the most recent query traces in a fixed-size ring.
type Tracer struct {
	mu   sync.Mutex
	next uint64
	ring []*QueryTrace
	pos  int
}

// NewTracer returns a tracer retaining the last capacity traces
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]*QueryTrace, capacity)}
}

// StartQuery begins a new query trace. It returns nil — which every
// QueryTrace method accepts — when collection is disabled or the tracer
// is nil, so the disabled path costs one branch.
func (tr *Tracer) StartQuery(name string) *QueryTrace {
	if tr == nil || !Enabled() {
		return nil
	}
	tr.mu.Lock()
	tr.next++
	t := &QueryTrace{id: tr.next, name: name, start: time.Now()}
	tr.ring[tr.pos] = t
	tr.pos = (tr.pos + 1) % len(tr.ring)
	tr.mu.Unlock()
	return t
}

// Recent returns the retained traces, newest first.
func (tr *Tracer) Recent() []*QueryTrace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]*QueryTrace, 0, len(tr.ring))
	for i := 0; i < len(tr.ring); i++ {
		idx := (tr.pos - 1 - i + 2*len(tr.ring)) % len(tr.ring)
		if t := tr.ring[idx]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Lookup returns the retained trace with the given ID, or nil.
func (tr *Tracer) Lookup(id uint64) *QueryTrace {
	for _, t := range tr.Recent() {
		if t.ID() == id {
			return t
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing, also readable by Perfetto). Timestamps are in
// microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports one query trace in the Chrome trace-event
// format: the query as a complete ("X") slice plus one instant ("i")
// event per recorded typed event, ready for about:tracing.
func WriteChromeTrace(w io.Writer, t *QueryTrace) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	dur := t.end.Sub(t.start)
	if t.end.IsZero() {
		dur = time.Since(t.start)
	}
	events := append([]Event(nil), t.events...)
	dropped := t.dropped
	t.mu.Unlock()

	out := struct {
		TraceEvents []chromeEvent  `json:"traceEvents"`
		Metadata    map[string]any `json:"metadata,omitempty"`
	}{}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: t.name, Phase: "X", TS: 0, Dur: float64(dur.Microseconds()), PID: 1, TID: 1,
		Args: map[string]any{"trace_id": t.id, "events": len(events), "dropped": dropped},
	})
	for _, e := range events {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Kind.String(), Phase: "i", TS: float64(e.At.Nanoseconds()) / 1e3,
			PID: 1, TID: 1, Scope: "t",
			Args: map[string]any{"node": e.Node, "arg": e.Arg},
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(out); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}
