package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestObsCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help text")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("x_total", "ignored"); again != c {
		t.Error("re-registering the same counter name returned a different instance")
	}
	g := r.Gauge("g", "")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	// Cross-type collision: detached metric, collision counted.
	bad := r.Gauge("x_total", "")
	if bad == nil {
		t.Fatal("cross-type collision returned nil")
	}
	if r.CollisionCount() != 1 {
		t.Errorf("collisions = %d, want 1", r.CollisionCount())
	}
}

// TestObsDefaultRegistryClean asserts the standard metric set has no
// cross-type name collisions.
func TestObsDefaultRegistryClean(t *testing.T) {
	if n := Default.CollisionCount(); n != 0 {
		t.Errorf("default registry has %d metric name collisions", n)
	}
}

func TestObsHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	s := r.Snapshot()
	hs := s.Histograms["lat_seconds"]
	wantCum := []int64{1, 3, 4}
	for i, b := range hs.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket le=%v cumulative = %d, want %d", b.UpperBound, b.Count, wantCum[i])
		}
	}
	if hs.Count != 5 {
		t.Errorf("snapshot count = %d, want 5", hs.Count)
	}
}

func TestObsHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(1) // exactly on a bound: le="1" is inclusive
	s := r.Snapshot().Histograms["h"]
	if s.Buckets[0].Count != 1 {
		t.Errorf("observation at the bound landed above it: %+v", s.Buckets)
	}
}

func TestObsPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("demo_total", "a demo counter")
	c.Add(3)
	r.Gauge("demo_gauge", "").Set(-2)
	h := r.Histogram("demo_seconds", "latency", []float64{0.5})
	h.Observe(0.25)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP demo_total a demo counter",
		"# TYPE demo_total counter",
		"demo_total 3",
		"# TYPE demo_gauge gauge",
		"demo_gauge -2",
		"# TYPE demo_seconds histogram",
		`demo_seconds_bucket{le="0.5"} 1`,
		`demo_seconds_bucket{le="+Inf"} 2`,
		"demo_seconds_sum 2.25",
		"demo_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
}

func TestObsJSONEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(9)
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, buf.String())
	}
	if s.Counters["a_total"] != 9 {
		t.Errorf("counters = %v, want a_total=9", s.Counters)
	}
	if s.Histograms["h_seconds"].Count != 1 {
		t.Errorf("histograms = %v", s.Histograms)
	}
}

func TestObsReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	c.Add(5)
	h := r.Histogram("h", "", []float64{1})
	h.Observe(2)
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("reset left c=%d hCount=%d hSum=%v", c.Value(), h.Count(), h.Sum())
	}
}

// TestObsConcurrentUpdates exercises the lock-free paths under the race
// detector.
func TestObsConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
	s := r.Snapshot()
	var last int64
	for _, b := range s.Histograms["h"].Buckets {
		if b.Count < last {
			t.Errorf("cumulative buckets not monotone: %+v", s.Histograms["h"].Buckets)
		}
		last = b.Count
	}
}
