package obs

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Incident forensics: a diagnostic bundle is a schema-versioned zip
// snapshot of everything the debug surface knows — metrics, the
// /seriesz rings, the /alertz state machines, the flight recorder's
// profiles, /modelz, a goroutine dump, a heap profile, the decision-log
// tail and recent access-log entries — so a 3am alert leaves postmortem
// evidence even after the process restarts. The Bundler streams one on
// demand (/debugz/bundle) and captures one to -bundle-dir automatically
// when any SLO objective transitions to firing, with a per-objective
// cooldown and a bounded on-disk retention ring. cmd/psi-bundle opens
// the zip offline and renders the incident report.

// BundleSchemaVersion is stamped into every manifest; readers
// (ReadBundle, cmd/psi-bundle) refuse other versions.
const BundleSchemaVersion = 1

// Capture reasons recorded in the manifest.
const (
	// BundleReasonManual marks an on-demand /debugz/bundle download.
	BundleReasonManual = "manual"
	// BundleReasonAlert marks an automatic capture triggered by an SLO
	// objective transitioning to firing.
	BundleReasonAlert = "alert"
	// BundleReasonLoadgen marks a bundle saved by psi-loadgen
	// -bundle-on-fail when one of its gates failed.
	BundleReasonLoadgen = "loadgen-fail"
)

// Archive member names. ManifestEntry is always present; the others
// appear when the corresponding source was wired into the Bundler.
const (
	ManifestEntry      = "manifest.json"
	MetricsEntry       = "metrics.json"
	SeriesEntry        = "seriesz.json"
	AlertsEntry        = "alertz.json"
	ProfilesEntry      = "profiles.json"
	ModelEntry         = "modelz.json"
	GoroutinesEntry    = "goroutines.txt"
	HeapEntry          = "heap.pprof"
	DecisionsEntry     = "decisions.jsonl"
	AccessLogEntryName = "access.jsonl"
	WorkloadEntry      = "workload.json"
)

// BundleEntryInfo is one archive member as listed in the manifest.
type BundleEntryInfo struct {
	Name  string `json:"name"`
	Bytes int    `json:"bytes"`
}

// BundleManifest is the bundle's self-description: why and when it was
// captured, by which build on which host, and what it contains.
type BundleManifest struct {
	Schema     int       `json:"schema"`
	CapturedAt time.Time `json:"captured_at"`
	// Reason is one of the BundleReason* constants; Objective names the
	// firing SLO objective for alert-triggered captures.
	Reason    string `json:"reason"`
	Objective string `json:"objective,omitempty"`

	GoVersion     string   `json:"go_version"`
	GOOS          string   `json:"goos"`
	GOARCH        string   `json:"goarch"`
	GOMAXPROCS    int      `json:"gomaxprocs"`
	NumCPU        int      `json:"num_cpu"`
	PID           int      `json:"pid"`
	Hostname      string   `json:"hostname,omitempty"`
	Args          []string `json:"args,omitempty"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	Module        string   `json:"module,omitempty"`
	VCSRevision   string   `json:"vcs_revision,omitempty"`
	VCSTime       string   `json:"vcs_time,omitempty"`
	VCSModified   bool     `json:"vcs_modified,omitempty"`

	Entries []BundleEntryInfo `json:"entries"`
}

// BundleProfiles is the profiles.json document: the flight recorder's
// two retention sets at capture time.
type BundleProfiles struct {
	Slowest []ProfileData `json:"slowest"`
	Recent  []ProfileData `json:"recent"`
}

// BundlerConfig wires a Bundler's data sources and capture policy. Only
// Registry is required (nil means the Default registry); every other
// source is optional and simply absent from bundles when nil.
type BundlerConfig struct {
	// Dir is the auto-capture directory; empty leaves the Bundler
	// unarmed: /debugz/bundle still streams on demand, but alert
	// transitions capture nothing and cost nothing.
	Dir string
	// Keep bounds the on-disk retention ring: once more than Keep
	// bundle-*.zip files exist in Dir the oldest are deleted. Default 8.
	Keep int
	// Cooldown is the minimum spacing between automatic captures for
	// the same objective. Default 5m.
	Cooldown time.Duration

	Registry *Registry
	Sampler  *Sampler
	Alerts   *SLOSet
	Recorder *Recorder
	// Decisions is the engine's decision log; its in-memory Tail()
	// becomes decisions.jsonl.
	Decisions *DecisionLog
	// Access is the serving-path access ring (usually DefaultAccess).
	Access *AccessRing
	// Workload is the workload-analytics sketch; its snapshot becomes
	// workload.json so incident bundles carry the shape mix that was
	// being served when the alert fired.
	Workload *Workload
	// Log, when non-nil, gets one line per automatic capture or capture
	// failure.
	Log *slog.Logger
	// Start is the process start time for the manifest's uptime;
	// zero means "when NewBundler ran".
	Start time.Time
	// Now is a test seam for the cooldown clock; nil means time.Now.
	Now func() time.Time
}

// Bundler assembles diagnostic bundles. Construct with NewBundler; it
// is safe for concurrent use (concurrent /debugz/bundle downloads while
// the sampler ticks and alert captures fire).
type Bundler struct {
	cfg      BundlerConfig
	captured *Counter
	failed   *Counter
	sizes    *Histogram

	mu       sync.Mutex
	lastAuto map[string]time.Time // per-objective cooldown claims
	kept     []string             // on-disk bundles, oldest first
	seq      int                  // capture sequence, disambiguates filenames
}

// Bundle metric names.
const (
	// BundlesCaptured counts successfully assembled bundles (streamed
	// or written to disk).
	BundlesCaptured = "obs_bundles_captured_total"
	// BundleErrors counts failed capture attempts.
	BundleErrors = "obs_bundle_errors_total"
	// BundleBytes observes the compressed size of each bundle.
	BundleBytes = "obs_bundle_bytes"
)

// NewBundler builds a bundler over cfg, scans Dir for bundles left by a
// previous process (they count against Keep), and — when armed with a
// Dir and an SLOSet — hooks automatic capture onto the alert state
// machine's firing transitions.
func NewBundler(cfg BundlerConfig) (*Bundler, error) {
	if cfg.Registry == nil {
		cfg.Registry = Default
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 8
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Minute
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Now()
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	b := &Bundler{
		cfg:      cfg,
		captured: cfg.Registry.Counter(BundlesCaptured, "diagnostic bundles assembled (streamed at /debugz/bundle or captured to -bundle-dir)"),
		failed:   cfg.Registry.Counter(BundleErrors, "diagnostic bundle captures that failed"),
		sizes:    cfg.Registry.Histogram(BundleBytes, "compressed size of each assembled diagnostic bundle in bytes", CountBuckets),
		lastAuto: make(map[string]time.Time),
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("obs: bundler: %w", err)
		}
		existing, err := filepath.Glob(filepath.Join(cfg.Dir, "bundle-*.zip"))
		if err != nil {
			return nil, fmt.Errorf("obs: bundler: %w", err)
		}
		sort.Strings(existing) // filenames embed a fixed-width UTC timestamp
		b.kept = existing
		if cfg.Alerts != nil {
			cfg.Alerts.OnTransition(b.handleTransition)
		}
	}
	return b, nil
}

// Armed reports whether automatic alert-triggered capture is on (a
// -bundle-dir was configured).
func (b *Bundler) Armed() bool { return b.cfg.Dir != "" }

// handleTransition is the SLOSet hook: any objective entering firing
// triggers a capture, subject to the per-objective cooldown.
func (b *Bundler) handleTransition(tr Transition) {
	if tr.To != StateFiring {
		return
	}
	path, captured, err := b.AutoCapture(tr.Objective)
	switch {
	case err != nil:
		b.logError("bundle capture failed", tr.Objective, err)
	case captured:
		b.logInfo("bundle captured", tr.Objective, path)
	}
}

// AutoCapture captures one alert-triggered bundle for the objective
// unless a capture for it ran within the cooldown window. Returns the
// bundle path and whether a capture actually happened (false, nil when
// suppressed by the cooldown).
func (b *Bundler) AutoCapture(objective string) (string, bool, error) {
	if !b.Armed() {
		return "", false, nil
	}
	now := b.cfg.Now()
	b.mu.Lock()
	if last, ok := b.lastAuto[objective]; ok && now.Sub(last) < b.cfg.Cooldown {
		b.mu.Unlock()
		return "", false, nil
	}
	// Claim the cooldown slot before the (slow) capture so a concurrent
	// transition for the same objective cannot double-capture.
	b.lastAuto[objective] = now
	b.mu.Unlock()
	path, err := b.CaptureToDir(BundleReasonAlert, objective)
	if err != nil {
		return "", false, err
	}
	return path, true, nil
}

// bundleTimeFormat renders capture times into filenames: fixed-width
// UTC down to nanoseconds, so lexicographic filename order is capture
// order.
const bundleTimeFormat = "20060102T150405.000000000Z"

// CaptureToDir assembles one bundle into Dir (written to a temp file
// and renamed, so readers never see a partial zip), then enforces the
// Keep retention ring by deleting the oldest bundles.
func (b *Bundler) CaptureToDir(reason, objective string) (string, error) {
	if !b.Armed() {
		return "", errors.New("obs: bundler: no bundle directory configured")
	}
	now := b.cfg.Now()
	b.mu.Lock()
	b.seq++
	seq := b.seq
	b.mu.Unlock()
	label := objective
	if label == "" {
		label = reason
	}
	name := fmt.Sprintf("bundle-%s-%03d-%s.zip",
		now.UTC().Format(bundleTimeFormat), seq%1000, sanitizeLabel(label))
	path := filepath.Join(b.cfg.Dir, name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		b.failed.Inc()
		return "", fmt.Errorf("obs: bundler: %w", err)
	}
	_, werr := b.WriteBundle(f, reason, objective)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return "", fmt.Errorf("obs: bundler: %w", werr)
	}

	var evict []string
	b.mu.Lock()
	b.kept = append(b.kept, path)
	for len(b.kept) > b.cfg.Keep {
		evict = append(evict, b.kept[0])
		b.kept = b.kept[1:]
	}
	b.mu.Unlock()
	for _, old := range evict { // outside the lock: file I/O
		_ = os.Remove(old)
	}
	return path, nil
}

// Kept returns the on-disk bundles currently retained, oldest first.
func (b *Bundler) Kept() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.kept...)
}

// WriteBundle assembles one bundle and streams it to w, returning the
// compressed byte count. Every data source is snapshotted into memory
// before any zip byte is written, so no obs lock is ever held across
// I/O. Updates the obs_bundles_* metrics.
func (b *Bundler) WriteBundle(w io.Writer, reason, objective string) (int64, error) {
	n, err := b.writeBundle(w, reason, objective)
	if err != nil {
		b.failed.Inc()
		return n, err
	}
	b.captured.Inc()
	b.sizes.Observe(float64(n))
	return n, nil
}

// bundlePayload is one assembled archive member.
type bundlePayload struct {
	name string
	data []byte
}

func (b *Bundler) writeBundle(w io.Writer, reason, objective string) (int64, error) {
	now := b.cfg.Now()
	payloads, err := b.payloads()
	if err != nil {
		return 0, err
	}
	man := b.manifest(now, reason, objective, payloads)
	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return 0, err
	}

	cw := &countingWriter{w: w}
	zw := zip.NewWriter(cw)
	all := append([]bundlePayload{{ManifestEntry, manData}}, payloads...)
	for _, p := range all {
		f, err := zw.CreateHeader(&zip.FileHeader{
			Name:     p.name,
			Method:   zip.Deflate,
			Modified: now,
		})
		if err != nil {
			return cw.n, err
		}
		if _, err := f.Write(p.data); err != nil {
			return cw.n, err
		}
	}
	if err := zw.Close(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// manifest assembles the bundle's self-description.
func (b *Bundler) manifest(now time.Time, reason, objective string, payloads []bundlePayload) BundleManifest {
	man := BundleManifest{
		Schema:        BundleSchemaVersion,
		CapturedAt:    now.UTC(),
		Reason:        reason,
		Objective:     objective,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		PID:           os.Getpid(),
		Args:          os.Args,
		UptimeSeconds: now.Sub(b.cfg.Start).Seconds(),
	}
	if host, err := os.Hostname(); err == nil {
		man.Hostname = host
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		man.Module = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				man.VCSRevision = s.Value
			case "vcs.time":
				man.VCSTime = s.Value
			case "vcs.modified":
				man.VCSModified = s.Value == "true"
			}
		}
	}
	man.Entries = append(man.Entries, BundleEntryInfo{ManifestEntry, -1})
	for _, p := range payloads {
		man.Entries = append(man.Entries, BundleEntryInfo{p.name, len(p.data)})
	}
	return man
}

// payloads snapshots every wired data source into archive members.
func (b *Bundler) payloads() ([]bundlePayload, error) {
	var out []bundlePayload
	add := func(name string, v any) error {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return fmt.Errorf("obs: bundle %s: %w", name, err)
		}
		out = append(out, bundlePayload{name, data})
		return nil
	}
	if err := add(MetricsEntry, b.cfg.Registry.Snapshot()); err != nil {
		return nil, err
	}
	if b.cfg.Sampler != nil {
		if err := add(SeriesEntry, b.cfg.Sampler.SeriesSnapshot()); err != nil {
			return nil, err
		}
	}
	if b.cfg.Alerts != nil {
		if err := add(AlertsEntry, b.cfg.Alerts.AlertsSnapshot()); err != nil {
			return nil, err
		}
	}
	if b.cfg.Recorder != nil {
		var profs BundleProfiles
		for _, p := range b.cfg.Recorder.Slowest() {
			profs.Slowest = append(profs.Slowest, p.Snapshot())
		}
		for _, p := range b.cfg.Recorder.Recent() {
			profs.Recent = append(profs.Recent, p.Snapshot())
		}
		if err := add(ProfilesEntry, profs); err != nil {
			return nil, err
		}
	}
	if err := add(ModelEntry, DefaultModelStats.Snapshot()); err != nil {
		return nil, err
	}
	out = append(out, bundlePayload{GoroutinesEntry, goroutineDump()})
	if heap := heapProfile(); heap != nil {
		out = append(out, bundlePayload{HeapEntry, heap})
	}
	if b.cfg.Decisions != nil {
		data, err := marshalJSONL(b.cfg.Decisions.Tail())
		if err != nil {
			return nil, err
		}
		out = append(out, bundlePayload{DecisionsEntry, data})
	}
	if b.cfg.Access != nil {
		data, err := marshalJSONL(b.cfg.Access.Entries())
		if err != nil {
			return nil, err
		}
		out = append(out, bundlePayload{AccessLogEntryName, data})
	}
	if b.cfg.Workload != nil {
		if err := add(WorkloadEntry, b.cfg.Workload.Snapshot()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// marshalJSONL renders a slice as one JSON document per line.
func marshalJSONL[T any](items []T) ([]byte, error) {
	var buf bytes.Buffer
	for _, it := range items {
		data, err := json.Marshal(it)
		if err != nil {
			return nil, err
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// goroutineDump captures every goroutine's stack via runtime.Stack,
// growing the buffer until the dump fits (capped at 64 MiB).
func goroutineDump() []byte {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		if len(buf) >= 64<<20 {
			return buf
		}
		buf = make([]byte, 2*len(buf))
	}
}

// heapProfile renders the heap profile in pprof format, or nil when the
// runtime cannot produce one.
func heapProfile() []byte {
	p := pprof.Lookup("heap")
	if p == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		return nil
	}
	return buf.Bytes()
}

// sanitizeLabel maps an objective or reason into a filename-safe slug.
func sanitizeLabel(s string) string {
	var sb strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
		if sb.Len() >= 40 {
			break
		}
	}
	if sb.Len() == 0 {
		return "bundle"
	}
	return sb.String()
}

// countingWriter counts bytes passed through to w.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (b *Bundler) logInfo(msg, objective, path string) {
	if b.cfg.Log != nil {
		b.cfg.Log.Info(msg, "objective", objective, "path", path)
	}
}

func (b *Bundler) logError(msg, objective string, err error) {
	if b.cfg.Log != nil {
		b.cfg.Log.Error(msg, "objective", objective, "err", err.Error())
	}
}

// maxBundleEntryBytes caps one archive member on read, so a corrupted
// or hostile bundle cannot balloon memory.
const maxBundleEntryBytes = 64 << 20

// BundleArchive is a fully read diagnostic bundle: the parsed manifest
// plus every member's raw bytes (manifest.json included).
type BundleArchive struct {
	Manifest BundleManifest
	Entries  map[string][]byte
}

// Entry returns a member's bytes, or an error naming what is missing.
func (a *BundleArchive) Entry(name string) ([]byte, error) {
	data, ok := a.Entries[name]
	if !ok {
		return nil, fmt.Errorf("bundle has no %q entry", name)
	}
	return data, nil
}

// ReadBundle parses a diagnostic bundle from memory, validating that it
// is a well-formed zip with a schema-compatible manifest.
func ReadBundle(data []byte) (*BundleArchive, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("obs: bundle: not a zip archive: %w", err)
	}
	a := &BundleArchive{Entries: make(map[string][]byte, len(zr.File))}
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, fmt.Errorf("obs: bundle %s: %w", f.Name, err)
		}
		content, err := io.ReadAll(io.LimitReader(rc, maxBundleEntryBytes+1))
		cerr := rc.Close()
		if err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("obs: bundle %s: %w", f.Name, err)
		}
		if len(content) > maxBundleEntryBytes {
			return nil, fmt.Errorf("obs: bundle %s: entry exceeds %d bytes", f.Name, maxBundleEntryBytes)
		}
		a.Entries[f.Name] = content
	}
	manData, ok := a.Entries[ManifestEntry]
	if !ok {
		return nil, fmt.Errorf("obs: bundle: no %s entry", ManifestEntry)
	}
	if err := json.Unmarshal(manData, &a.Manifest); err != nil {
		return nil, fmt.Errorf("obs: bundle manifest: %w", err)
	}
	if a.Manifest.Schema != BundleSchemaVersion {
		return nil, fmt.Errorf("obs: bundle manifest schema %d, this reader handles %d",
			a.Manifest.Schema, BundleSchemaVersion)
	}
	return a, nil
}

// ReadBundleFile opens path and parses it with ReadBundle.
func ReadBundleFile(path string) (*BundleArchive, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: bundle: %w", err)
	}
	return ReadBundle(data)
}
