package obs

import (
	"math"
	"testing"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol
}

// cumBuckets builds a cumulative bucket slice from per-bucket counts.
func cumBuckets(bounds []float64, perBucket []int64) []BucketCount {
	out := make([]BucketCount, len(bounds))
	var cum int64
	for i := range bounds {
		cum += perBucket[i]
		out[i] = BucketCount{UpperBound: bounds[i], Count: cum}
	}
	return out
}

func TestQuantileFromBuckets(t *testing.T) {
	// 10 observations: 2 in (0,1], 3 in (1,2], 5 in (2,4].
	buckets := cumBuckets([]float64{1, 2, 4}, []int64{2, 3, 5})

	cases := []struct {
		q    float64
		want float64
	}{
		{0.0, 0.0},  // rank 0: interpolates to the bottom of the first bucket
		{0.1, 0.5},  // rank 1, first bucket interpolates from zero: 0 + 1*(1/2)
		{0.2, 1.0},  // rank 2 closes the first bucket exactly
		{0.5, 2.0},  // rank 5 closes the second bucket: 1 + 1*(3/3)
		{0.75, 3.0}, // rank 7.5 in the third bucket: 2 + 2*(2.5/5)
		{1.0, 4.0},  // rank 10 closes the last bucket
	}
	for _, c := range cases {
		got, ok := QuantileFromBuckets(buckets, 10, c.q)
		if !ok || !approx(got, c.want, 1e-12) {
			t.Errorf("q=%.2f: got %v (ok=%v), want %v", c.q, got, ok, c.want)
		}
	}

	if _, ok := QuantileFromBuckets(buckets, 0, 0.5); ok {
		t.Error("empty distribution reported ok")
	}
	if _, ok := QuantileFromBuckets(nil, 10, 0.5); ok {
		t.Error("no buckets reported ok")
	}
	if _, ok := QuantileFromBuckets(buckets, 10, -0.1); ok {
		t.Error("q < 0 reported ok")
	}
	if _, ok := QuantileFromBuckets(buckets, 10, 1.1); ok {
		t.Error("q > 1 reported ok")
	}

	// Observations in the implicit +Inf bucket: total exceeds the last
	// cumulative bound, so high quantiles clamp to the last finite bound.
	if got, ok := QuantileFromBuckets(buckets, 20, 0.99); !ok || got != 4 {
		t.Errorf("+Inf-bucket quantile = %v (ok=%v), want 4", got, ok)
	}

	// An empty middle bucket: ranks skip it cleanly on both sides.
	sparse := []BucketCount{{UpperBound: 1, Count: 5}, {UpperBound: 2, Count: 5}, {UpperBound: 3, Count: 10}}
	if got, ok := QuantileFromBuckets(sparse, 10, 0.5); !ok || got != 1 {
		t.Errorf("sparse p50 = %v (ok=%v), want 1", got, ok)
	}
	if got, ok := QuantileFromBuckets(sparse, 10, 0.75); !ok || !approx(got, 2.5, 1e-12) {
		t.Errorf("sparse p75 = %v (ok=%v), want 2.5", got, ok)
	}
}

func TestSubtractHistogram(t *testing.T) {
	older := HistogramSnapshot{
		Buckets: cumBuckets([]float64{1, 2}, []int64{1, 1}),
		Sum:     2.5, Count: 2,
	}
	newer := HistogramSnapshot{
		Buckets: cumBuckets([]float64{1, 2}, []int64{4, 2}),
		Sum:     7.5, Count: 6,
	}
	d := SubtractHistogram(newer, older)
	if d.Count != 4 || d.Sum != 5.0 {
		t.Errorf("delta count=%d sum=%v, want 4, 5.0", d.Count, d.Sum)
	}
	if d.Buckets[0].Count != 3 || d.Buckets[1].Count != 4 {
		t.Errorf("delta buckets = %+v", d.Buckets)
	}

	// Mismatched layouts: newer wins, as if older were empty.
	other := HistogramSnapshot{Buckets: cumBuckets([]float64{1}, []int64{9}), Count: 9}
	if d := SubtractHistogram(newer, other); d.Count != newer.Count {
		t.Errorf("layout mismatch delta = %+v, want newer unchanged", d)
	}

	// A registry Reset between samples: negative deltas clamp to zero.
	if d := SubtractHistogram(older, newer); d.Count != 0 || d.Buckets[0].Count != 0 {
		t.Errorf("reset delta = %+v, want all zero", d)
	}
}

func TestFractionAtOrBelow(t *testing.T) {
	// 2 obs in (0,1], 3 in (1,2], 5 in (2,4].
	h := HistogramSnapshot{Buckets: cumBuckets([]float64{1, 2, 4}, []int64{2, 3, 5}), Count: 10}

	cases := []struct {
		threshold float64
		want      float64
	}{
		{1, 0.2},    // exactly the first bound
		{1.5, 0.35}, // halfway through the second bucket: (2 + 1.5) / 10
		{4, 1.0},
		{3, 0.75}, // halfway through the third bucket: (5 + 2.5) / 10
		{0.5, 0.1},
		{100, 1.0}, // above every bound: all finite observations
	}
	for _, c := range cases {
		got, ok := FractionAtOrBelow(h, c.threshold)
		if !ok || !approx(got, c.want, 1e-12) {
			t.Errorf("threshold=%v: got %v (ok=%v), want %v", c.threshold, got, ok, c.want)
		}
	}

	if got, ok := FractionAtOrBelow(h, -1); !ok || got != 0 {
		t.Errorf("negative threshold = %v (ok=%v), want 0", got, ok)
	}
	if _, ok := FractionAtOrBelow(HistogramSnapshot{}, 1); ok {
		t.Error("empty histogram reported ok")
	}

	// Two observations in the implicit +Inf bucket count as above any
	// finite threshold.
	inf := HistogramSnapshot{Buckets: cumBuckets([]float64{1}, []int64{8}), Count: 10}
	if got, ok := FractionAtOrBelow(inf, 5); !ok || !approx(got, 0.8, 1e-12) {
		t.Errorf("+Inf fraction = %v (ok=%v), want 0.8", got, ok)
	}
}

func TestHistogramQuantileFromRegistry(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_demo_seconds", "demo", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 0.5, 1.5, 1.5, 1.5, 3, 3, 3, 3, 3} {
		h.Observe(v)
	}
	snap := reg.Snapshot().Histograms["q_demo_seconds"]
	if got, ok := HistogramQuantile(snap, 0.5); !ok || !approx(got, 2.0, 1e-12) {
		t.Errorf("p50 = %v (ok=%v), want 2.0", got, ok)
	}
}
