package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

var seriesBase = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestSamplerWindowedRates drives SampleAt manually and checks windowed
// counter deltas, rates and histogram quantiles against hand-computed
// values.
func TestSamplerWindowedRates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ts_req_total", "requests")
	h := reg.Histogram("ts_lat_seconds", "latency", []float64{1, 2, 4})
	s := NewSampler(reg, time.Second, 16)

	if _, _, ok := s.CounterDelta("ts_req_total", time.Minute); ok {
		t.Error("delta reported ok before any sample")
	}
	s.SampleAt(seriesBase)
	if _, _, ok := s.CounterDelta("ts_req_total", time.Minute); ok {
		t.Error("delta reported ok with a single sample")
	}

	c.Add(10)
	for i := 0; i < 4; i++ {
		h.Observe(1.5)
	}
	s.SampleAt(seriesBase.Add(2 * time.Second))

	d, dt, ok := s.CounterDelta("ts_req_total", time.Minute)
	if !ok || d != 10 || dt != 2*time.Second {
		t.Errorf("delta = %v over %v (ok=%v), want 10 over 2s", d, dt, ok)
	}
	if rate, ok := s.CounterRate("ts_req_total", time.Minute); !ok || rate != 5 {
		t.Errorf("rate = %v (ok=%v), want 5/s", rate, ok)
	}
	if _, ok := s.CounterRate("no_such_metric", time.Minute); ok {
		t.Error("unknown metric reported ok")
	}

	// All 4 observations landed in (1,2]: p50 interpolates inside it.
	if q, ok := s.WindowQuantile("ts_lat_seconds", 0.5, time.Minute); !ok || !approx(q, 1.5, 1e-12) {
		t.Errorf("window p50 = %v (ok=%v), want 1.5", q, ok)
	}
	if n, ok := s.HistogramRate("ts_lat_seconds", time.Minute); !ok || n != 2 {
		t.Errorf("histogram rate = %v (ok=%v), want 2/s", n, ok)
	}

	// A window too narrow to hold two samples is not sampled.
	if _, _, ok := s.CounterDelta("ts_req_total", time.Second); ok {
		t.Error("1s window over 2s-apart samples reported ok")
	}

	// Counter goes backwards (registry Reset): the delta clamps to zero
	// rather than reporting a negative rate.
	reg.Reset()
	s.SampleAt(seriesBase.Add(4 * time.Second))
	if d, _, ok := s.CounterDelta("ts_req_total", 10*time.Second); !ok || d != 0 {
		t.Errorf("post-reset delta = %v (ok=%v), want 0", d, ok)
	}
}

// TestSamplerRingWrap fills a small ring past capacity and checks that
// only the newest samples are retained.
func TestSamplerRingWrap(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("wrap_total", "wrap")
	s := NewSampler(reg, time.Second, 4)
	for i := 0; i < 10; i++ {
		c.Add(1)
		s.SampleAt(seriesBase.Add(time.Duration(i) * time.Second))
	}
	d := s.SeriesSnapshot()
	if d.Samples != 4 {
		t.Fatalf("samples = %d, want capacity 4", d.Samples)
	}
	cs := d.Counters[0]
	if cs.Name != "wrap_total" || cs.Last != 10 {
		t.Errorf("series = %+v, want wrap_total last=10", cs)
	}
	// 4 retained samples -> 3 adjacent steps, 1 count/second each.
	if len(cs.Rates) != 3 {
		t.Fatalf("rates = %v, want 3 steps", cs.Rates)
	}
	for _, r := range cs.Rates {
		if r != 1 {
			t.Errorf("step rate = %v, want 1/s", r)
		}
	}
	if d.Start != seriesBase.Add(6*time.Second) || d.End != seriesBase.Add(9*time.Second) {
		t.Errorf("span = %v .. %v, want 6s .. 9s after base", d.Start, d.End)
	}
	// The wide window only sees retained samples: delta 3 over 3s.
	if delta, _, ok := s.CounterDelta("wrap_total", time.Hour); !ok || delta != 3 {
		t.Errorf("windowed delta after wrap = %v (ok=%v), want 3", delta, ok)
	}
}

// TestSeriesSnapshotJSON checks the /seriesz document shape, including
// the -1 markers for histogram steps with no observations.
func TestSeriesSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("g_depth", "depth").Set(7)
	h := reg.Histogram("h_seconds", "h", []float64{1, 2})
	s := NewSampler(reg, time.Second, 8)
	s.SampleAt(seriesBase)
	h.Observe(1.5)
	s.SampleAt(seriesBase.Add(time.Second))
	s.SampleAt(seriesBase.Add(2 * time.Second)) // empty step

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d SeriesData
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("invalid /seriesz JSON: %v\n%s", err, buf.String())
	}
	if d.Schema != 1 || d.IntervalSeconds != 1 || d.Samples != 3 {
		t.Errorf("header = %+v", d)
	}
	if len(d.Gauges) != 1 || d.Gauges[0].Last != 7 || len(d.Gauges[0].Values) != 3 {
		t.Errorf("gauges = %+v", d.Gauges)
	}
	if len(d.Histograms) != 1 {
		t.Fatalf("histograms = %+v", d.Histograms)
	}
	hs := d.Histograms[0]
	if hs.Count != 1 || len(hs.P99) != 2 {
		t.Fatalf("histogram series = %+v", hs)
	}
	if hs.P50[0] < 0 || hs.P50[1] != -1 {
		t.Errorf("p50 steps = %v, want [interpolated, -1]", hs.P50)
	}
}

// TestSamplerWriteText covers the text renderer's three shapes: no
// samples, one sample, and a full sparkline listing.
func TestSamplerWriteText(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("txt_total", "txt")
	s := NewSampler(reg, time.Second, 8)

	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil || !strings.Contains(buf.String(), "no samples yet") {
		t.Errorf("empty text = %q (err=%v)", buf.String(), err)
	}

	s.SampleAt(seriesBase)
	buf.Reset()
	if err := s.WriteText(&buf); err != nil || !strings.Contains(buf.String(), "one sample held") {
		t.Errorf("single-sample text = %q (err=%v)", buf.String(), err)
	}

	c.Add(3)
	s.SampleAt(seriesBase.Add(time.Second))
	buf.Reset()
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "txt_total") || !strings.Contains(out, "last=3 rate=3.00/s") {
		t.Errorf("text output:\n%s", out)
	}
}

func TestSpark(t *testing.T) {
	if got := Spark(nil); got != "" {
		t.Errorf("empty spark = %q", got)
	}
	if got := Spark([]float64{-1, -1}); got != "" {
		t.Errorf("all-missing spark = %q", got)
	}
	got := Spark([]float64{0, 1, -1, 2})
	want := "▁▄ █"
	if got != want {
		t.Errorf("spark = %q, want %q", got, want)
	}
	// A flat series renders at the low bar rather than dividing by zero.
	if got := Spark([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("flat spark = %q", got)
	}
}

// TestSamplerStartStop exercises the real background loop: ticker
// samples accumulate, Stop joins, and both are idempotent.
func TestSamplerStartStop(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("bg_total", "bg").Add(1)
	s := NewSampler(reg, time.Millisecond, 64)
	s.Start()
	s.Start() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for s.SeriesSnapshot().Samples < 2 {
		if time.Now().After(deadline) {
			t.Fatal("background sampler produced no samples")
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	n := s.SeriesSnapshot().Samples
	time.Sleep(5 * time.Millisecond)
	if got := s.SeriesSnapshot().Samples; got != n {
		t.Errorf("sampler still running after Stop: %d -> %d samples", n, got)
	}
}

// TestSamplerStopWithoutStart pins that Stop is safe on a sampler whose
// goroutine never launched (psi-serve's disabled-sampling path).
func TestSamplerStopWithoutStart(t *testing.T) {
	s := NewSampler(NewRegistry(), time.Second, 4)
	s.Stop()
}

// TestSamplerOnSample checks hook delivery with the sample timestamp.
func TestSamplerOnSample(t *testing.T) {
	s := NewSampler(NewRegistry(), time.Second, 4)
	var got []time.Time
	s.OnSample(func(now time.Time) { got = append(got, now) })
	s.SampleAt(seriesBase)
	s.SampleAt(seriesBase.Add(time.Second))
	if len(got) != 2 || !got[0].Equal(seriesBase) || !got[1].Equal(seriesBase.Add(time.Second)) {
		t.Errorf("hook times = %v", got)
	}
}
