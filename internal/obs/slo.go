package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Declarative SLOs evaluated against the Sampler's windowed rates with
// multi-window burn-rate alerting: an objective's burn rate is its
// windowed bad-event ratio divided by the error budget (1 − target),
// and an alert trips only when both a fast and a slow window burn
// above the threshold — the fast window for responsiveness, the slow
// one so a brief blip cannot page. Alerts walk a
// pending → firing → resolved state machine, are served at /alertz,
// and surface as the obs_alerts_firing gauge.

// Alert states.
const (
	StateInactive = "inactive"
	StatePending  = "pending"
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Objective declares one SLO. Exactly one of the two shapes is used:
// availability (TotalCounter + BadCounters: ratio of bad events to
// total events) or latency (Histograms + ThresholdSeconds: fraction of
// observations slower than the threshold).
type Objective struct {
	Name   string  `json:"name"`
	Target float64 `json:"target"` // fraction of good events promised, e.g. 0.99

	// Availability shape: windowed bad/total from counters.
	TotalCounter string   `json:"total_counter,omitempty"`
	BadCounters  []string `json:"bad_counters,omitempty"`

	// Latency shape: windowed fraction-over-threshold from histograms.
	Histograms       []string `json:"histograms,omitempty"`
	ThresholdSeconds float64  `json:"threshold_seconds,omitempty"`

	FastWindow time.Duration `json:"-"`
	SlowWindow time.Duration `json:"-"`
	BurnFactor float64       `json:"burn_factor"` // both windows must burn at or above this
	For        time.Duration `json:"-"`           // time an alert stays pending before it fires
}

// serverBadCounters are the serving-path counters that represent a
// request the service failed to serve: load sheds (429), drain
// rejections (503), evaluator panics (500), deadline expiries (504)
// and partial scatter-gather answers (200 with partial=true — the
// client got bindings, but not all of them, so a lost shard burns the
// availability budget and pages like any other failure mode).
var serverBadCounters = []string{
	"server_shed_total",
	"server_drain_rejects_total",
	"server_panics_total",
	"server_deadline_hits_total",
	"server_partial_total",
}

// AvailabilityObjective is the standard serving availability SLO:
// failed requests (sheds, drain rejections, panics, deadline hits)
// over server_requests_total.
func AvailabilityObjective(target float64, fast, slow time.Duration, burnFactor float64, forDur time.Duration) Objective {
	return Objective{
		Name:         "availability",
		Target:       target,
		TotalCounter: "server_requests_total",
		BadCounters:  serverBadCounters,
		FastWindow:   fast,
		SlowWindow:   slow,
		BurnFactor:   burnFactor,
		For:          forDur,
	}
}

// LatencyObjective is the standard serving latency SLO: the fraction
// of /v1/psi and /v1/psi/batch requests completing within threshold
// must stay at or above target.
func LatencyObjective(threshold time.Duration, target float64, fast, slow time.Duration, burnFactor float64, forDur time.Duration) Objective {
	return Objective{
		Name:             fmt.Sprintf("latency_under_%s", threshold),
		Target:           target,
		Histograms:       []string{"server_psi_seconds", "server_batch_seconds"},
		ThresholdSeconds: threshold.Seconds(),
		FastWindow:       fast,
		SlowWindow:       slow,
		BurnFactor:       burnFactor,
		For:              forDur,
	}
}

// AlertStatus is one objective's externally visible state, as served
// at /alertz.
type AlertStatus struct {
	Name              string    `json:"name"`
	State             string    `json:"state"`
	Target            float64   `json:"target"`
	BurnFactor        float64   `json:"burn_factor"`
	FastWindowSeconds float64   `json:"fast_window_seconds"`
	SlowWindowSeconds float64   `json:"slow_window_seconds"`
	FastBurn          float64   `json:"fast_burn"`
	SlowBurn          float64   `json:"slow_burn"`
	FastWindowSampled bool      `json:"fast_window_sampled"`
	SlowWindowSampled bool      `json:"slow_window_sampled"`
	Since             time.Time `json:"since,omitempty"` // pending or firing start
	LastTransition    time.Time `json:"last_transition,omitempty"`
	EvaluatedAt       time.Time `json:"evaluated_at,omitempty"`
}

// AlertsData is the /alertz JSON document.
type AlertsData struct {
	Schema int           `json:"schema"`
	Firing int           `json:"firing"`
	Alerts []AlertStatus `json:"alerts"`
}

// alertState is one objective's mutable evaluation state.
type alertState struct {
	state          string
	since          time.Time // entered pending/firing
	lastTransition time.Time
	evaluatedAt    time.Time
	fastBurn       float64
	slowBurn       float64
	fastOK         bool
	slowOK         bool
}

// Transition is one alert state change, delivered to OnTransition
// hooks: the diagnostic-bundle capture trigger (obs.Bundler) keys off
// To == StateFiring.
type Transition struct {
	Objective string
	From, To  string
	At        time.Time
}

// SLOSet evaluates a fixed list of objectives against a Sampler. Wire
// it with NewSLOSet before the sampler starts; each sample triggers an
// evaluation, and Status/WriteJSON/WriteText serve the result.
type SLOSet struct {
	sampler    *Sampler
	objectives []Objective
	firing     *Gauge

	mu     sync.Mutex
	states []alertState
	hooks  []func(Transition)
}

// AlertsFiring is the gauge name exporting the number of firing
// alerts.
const AlertsFiring = "obs_alerts_firing"

// NewSLOSet builds an SLOSet over the sampler's registry and hooks it
// into the sampler so every sample re-evaluates the objectives.
// Objectives with non-positive windows get defaults (1m fast, 5m
// slow); a non-positive burn factor defaults to 14.4 (the classic
// 2%-of-monthly-budget-per-hour page threshold).
func NewSLOSet(sampler *Sampler, objectives []Objective) *SLOSet {
	objs := make([]Objective, len(objectives))
	copy(objs, objectives)
	for i := range objs {
		if objs[i].FastWindow <= 0 {
			objs[i].FastWindow = time.Minute
		}
		if objs[i].SlowWindow <= 0 {
			objs[i].SlowWindow = 5 * time.Minute
		}
		if objs[i].BurnFactor <= 0 {
			objs[i].BurnFactor = 14.4
		}
	}
	s := &SLOSet{
		sampler:    sampler,
		objectives: objs,
		firing:     sampler.reg.Gauge(AlertsFiring, "number of SLO alerts currently in the firing state (see /alertz)"),
		states:     make([]alertState, len(objs)),
	}
	for i := range s.states {
		s.states[i].state = StateInactive
	}
	sampler.OnSample(s.Evaluate)
	return s
}

// Objectives returns the configured objectives (with defaults
// applied).
func (s *SLOSet) Objectives() []Objective { return s.objectives }

// OnTransition registers a hook invoked after every alert state change
// with the transition, outside the set's lock (hooks may call Status or
// AlertsSnapshot). Hooks run synchronously on the evaluating goroutine
// — the sampler tick — in registration order.
func (s *SLOSet) OnTransition(fn func(Transition)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hooks = append(s.hooks, fn)
}

// Evaluate recomputes every objective's burn rates as of now and
// advances the alert state machines. Called from the sampler's
// OnSample hook; exported for deterministic tests.
func (s *SLOSet) Evaluate(now time.Time) {
	s.mu.Lock()
	var transitions []Transition
	nFiring := 0
	for i, o := range s.objectives {
		st := &s.states[i]
		prev := st.state
		st.fastBurn, st.fastOK = s.burn(o, o.FastWindow)
		st.slowBurn, st.slowOK = s.burn(o, o.SlowWindow)
		st.evaluatedAt = now
		cond := st.fastOK && st.slowOK &&
			st.fastBurn >= o.BurnFactor && st.slowBurn >= o.BurnFactor
		switch st.state {
		case StateInactive, StateResolved:
			if cond {
				if o.For <= 0 {
					st.state = StateFiring
				} else {
					st.state = StatePending
				}
				st.since = now
				st.lastTransition = now
			}
		case StatePending:
			switch {
			case !cond:
				st.state = StateInactive
				st.since = time.Time{}
				st.lastTransition = now
			case now.Sub(st.since) >= o.For:
				st.state = StateFiring
				st.lastTransition = now
			}
		case StateFiring:
			if !cond {
				st.state = StateResolved
				st.since = time.Time{}
				st.lastTransition = now
			}
		}
		if st.state == StateFiring {
			nFiring++
		}
		if st.state != prev {
			transitions = append(transitions, Transition{
				Objective: o.Name, From: prev, To: st.state, At: now,
			})
		}
	}
	s.firing.Set(int64(nFiring))
	hooks := s.hooks
	s.mu.Unlock()
	for _, tr := range transitions {
		for _, fn := range hooks {
			fn(tr)
		}
	}
}

// burn computes one objective's burn rate over a window: windowed
// bad-event ratio divided by the error budget. ok is false when the
// sampler does not yet hold two samples inside the window. A window
// with no traffic burns at 0.
func (s *SLOSet) burn(o Objective, window time.Duration) (float64, bool) {
	budget := 1 - o.Target
	if budget <= 0 {
		budget = 1e-9 // a 100% target burns infinitely fast on any error
	}
	if o.TotalCounter != "" {
		total, _, ok := s.sampler.CounterDelta(o.TotalCounter, window)
		if !ok {
			return 0, false
		}
		var bad float64
		for _, c := range o.BadCounters {
			if d, _, ok := s.sampler.CounterDelta(c, window); ok {
				bad += d
			}
		}
		if total <= 0 {
			return 0, true
		}
		return (bad / total) / budget, true
	}
	var total, good float64
	sampled := false
	for _, h := range o.Histograms {
		d, _, ok := s.sampler.HistogramDelta(h, window)
		if !ok {
			continue
		}
		sampled = true
		if frac, ok := FractionAtOrBelow(d, o.ThresholdSeconds); ok {
			total += float64(d.Count)
			good += frac * float64(d.Count)
		}
	}
	if !sampled {
		return 0, false
	}
	if total <= 0 {
		return 0, true
	}
	return ((total - good) / total) / budget, true
}

// Firing reports how many alerts are currently firing.
func (s *SLOSet) Firing() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, st := range s.states {
		if st.state == StateFiring {
			n++
		}
	}
	return n
}

// Status returns the externally visible state of every objective.
func (s *SLOSet) Status() []AlertStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]AlertStatus, len(s.objectives))
	for i, o := range s.objectives {
		st := s.states[i]
		out[i] = AlertStatus{
			Name:              o.Name,
			State:             st.state,
			Target:            o.Target,
			BurnFactor:        o.BurnFactor,
			FastWindowSeconds: o.FastWindow.Seconds(),
			SlowWindowSeconds: o.SlowWindow.Seconds(),
			FastBurn:          st.fastBurn,
			SlowBurn:          st.slowBurn,
			FastWindowSampled: st.fastOK,
			SlowWindowSampled: st.slowOK,
			Since:             st.since,
			LastTransition:    st.lastTransition,
			EvaluatedAt:       st.evaluatedAt,
		}
	}
	return out
}

// AlertsSnapshot builds the /alertz document.
func (s *SLOSet) AlertsSnapshot() AlertsData {
	status := s.Status()
	firing := 0
	for _, a := range status {
		if a.State == StateFiring {
			firing++
		}
	}
	return AlertsData{Schema: 1, Firing: firing, Alerts: status}
}

// WriteJSON encodes the /alertz document.
func (s *SLOSet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.AlertsSnapshot())
}

// WriteText renders the alert table for a terminal.
func (s *SLOSet) WriteText(w io.Writer) error {
	d := s.AlertsSnapshot()
	_, _ = fmt.Fprintf(w, "alerts: %d firing / %d objectives\n\n", d.Firing, len(d.Alerts))
	_, _ = fmt.Fprintf(w, "%-28s %-9s %8s %10s %10s  %s\n",
		"OBJECTIVE", "STATE", "TARGET", "FAST-BURN", "SLOW-BURN", "SINCE")
	for _, a := range d.Alerts {
		fast, slow := "n/a", "n/a"
		if a.FastWindowSampled {
			fast = fmt.Sprintf("%.2f", a.FastBurn)
		}
		if a.SlowWindowSampled {
			slow = fmt.Sprintf("%.2f", a.SlowBurn)
		}
		since := ""
		if !a.Since.IsZero() {
			since = a.Since.Format(time.RFC3339)
		}
		if _, err := fmt.Fprintf(w, "%-28s %-9s %8.4f %10s %10s  %s\n",
			a.Name, a.State, a.Target, fast, slow, since); err != nil {
			return err
		}
	}
	return nil
}
