package obs

import (
	"sort"
	"sync"
	"time"
)

// Recorder is the query-profile flight recorder: a bounded,
// concurrency-safe store keeping the K most recent profiles (a ring,
// including live ones) and the K slowest finished profiles (admitted at
// Finish time, fastest evicted first). The debug server serves it at
// /profilez.
//
// Gating matches the rest of the package: Start returns nil — which
// every Profile method accepts — when collection is disabled, so the
// disabled path costs one atomic-bool branch.
type Recorder struct {
	mu     sync.Mutex
	next   uint64
	recent []*Profile // ring of the K most recent, live included
	pos    int
	slow   []*Profile      // finished profiles, duration-descending, ≤ K
	slowD  []time.Duration // admission durations, parallel to slow
	k      int
}

// NewRecorder returns a recorder retaining k recent and k slowest
// profiles (minimum 1).
func NewRecorder(k int) *Recorder {
	if k < 1 {
		k = 1
	}
	return &Recorder{recent: make([]*Profile, k), k: k}
}

// Start begins a new profile, or returns nil when collection is
// disabled or the recorder is nil.
func (r *Recorder) Start(name string) *Profile {
	if r == nil || !Enabled() {
		return nil
	}
	r.mu.Lock()
	r.next++
	p := &Profile{id: r.next, name: name, start: time.Now(), rec: r}
	r.recent[r.pos] = p
	r.pos = (r.pos + 1) % len(r.recent)
	r.mu.Unlock()
	return p
}

// admit inserts a finished profile into the slowest set, evicting the
// fastest entry once the set is full. Called by Profile.FinishIn after
// the profile's own lock is released.
func (r *Recorder) admit(p *Profile) {
	if r == nil {
		return
	}
	d := p.Duration()
	r.mu.Lock()
	defer r.mu.Unlock()
	// Insertion point in the duration-descending order; ties keep the
	// earlier (lower-ID) profile ahead, so admission order breaks ties
	// deterministically.
	i := sort.Search(len(r.slowD), func(i int) bool { return r.slowD[i] < d })
	if i >= r.k {
		return // faster than everything retained
	}
	r.slow = append(r.slow, nil)
	r.slowD = append(r.slowD, 0)
	copy(r.slow[i+1:], r.slow[i:])
	copy(r.slowD[i+1:], r.slowD[i:])
	r.slow[i] = p
	r.slowD[i] = d
	if len(r.slow) > r.k {
		r.slow = r.slow[:r.k]
		r.slowD = r.slowD[:r.k]
	}
}

// Recent returns the retained profiles, newest first (live included).
func (r *Recorder) Recent() []*Profile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Profile, 0, len(r.recent))
	for i := 0; i < len(r.recent); i++ {
		idx := (r.pos - 1 - i + 2*len(r.recent)) % len(r.recent)
		if p := r.recent[idx]; p != nil {
			out = append(out, p)
		}
	}
	return out
}

// Slowest returns the retained slowest finished profiles, slowest
// first.
func (r *Recorder) Slowest() []*Profile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Profile(nil), r.slow...)
}

// Lookup returns the retained profile with the given ID (searching both
// the recent ring and the slowest set), or nil.
func (r *Recorder) Lookup(id uint64) *Profile {
	for _, p := range r.Recent() {
		if p.ID() == id {
			return p
		}
	}
	for _, p := range r.Slowest() {
		if p.ID() == id {
			return p
		}
	}
	return nil
}

// LookupRequest returns the most recent retained profile tagged with
// the given serving request ID (see Profile.SetRequestID), or nil.
// Backs /profilez?request_id=.
func (r *Recorder) LookupRequest(requestID string) *Profile {
	if requestID == "" {
		return nil
	}
	for _, p := range r.Recent() { // newest first
		if p.RequestID() == requestID {
			return p
		}
	}
	for _, p := range r.Slowest() {
		if p.RequestID() == requestID {
			return p
		}
	}
	return nil
}

// LookupFingerprint returns the most recent retained profile tagged
// with the given canonical shape fingerprint (see
// Profile.SetFingerprint), or nil. Backs /profilez?fingerprint=, which
// is how a /queryz row is pivoted into a concrete example profile.
func (r *Recorder) LookupFingerprint(fp string) *Profile {
	if fp == "" {
		return nil
	}
	for _, p := range r.Recent() { // newest first
		if p.Fingerprint() == fp {
			return p
		}
	}
	for _, p := range r.Slowest() {
		if p.Fingerprint() == fp {
			return p
		}
	}
	return nil
}

// LastID returns the most recently assigned profile ID; the overhead
// guard uses it to attribute profiles to a measurement window.
func (r *Recorder) LastID() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}
