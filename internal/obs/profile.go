package obs

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// This file implements the per-query execution profile — an EXPLAIN
// ANALYZE for PSI queries. A Profile records, for one SmartPSI
// evaluation:
//
//   - the chosen method (per-candidate model-α mode predictions, model-β
//     plan choices, and the cache hit/miss split that produced them),
//   - the recovery-ladder timeline of Section 4.3 (per-rung entry,
//     resolution and wall-time aggregates: predicted → opposite method →
//     heuristic plan), and
//   - the per-depth candidate funnel: candidates generated → surviving
//     the degree bound → surviving Proposition 3.2 signature
//     satisfaction → recursed into → matched.
//
// The funnel is filled lock-free by the PSI evaluator (psi.State holds
// a plain *Funnel and pays one nil check per event) and merged into the
// Profile at batch boundaries; all other Profile methods take the
// profile mutex and are nil-safe, mirroring QueryTrace, so call sites
// hold the result of Recorder.Start unconditionally.

// FunnelStage names used by renderers, in pipeline order. Each stage
// counts the candidates that *survived* up to that point, so within a
// depth the counts are monotone non-increasing (the invariant pinned by
// invariant.CheckFunnel).
var funnelStageNames = [...]string{"generated", "deg-ok", "sig-ok", "recursed", "matched"}

// FunnelDepth is one row of the per-depth candidate funnel: how many
// candidates at this plan depth reached each pipeline stage.
type FunnelDepth struct {
	// Generated counts candidates enumerated at this depth (label-run
	// neighbors of the anchor; the pivot itself at depth 0).
	Generated int64 `json:"generated"`
	// DegOK counts candidates that passed the basic checks (edge label,
	// injectivity, non-anchor adjacency) and the degree lower bound.
	DegOK int64 `json:"deg_ok"`
	// SigOK counts candidates that additionally satisfied the query
	// node's signature (Proposition 3.2). Optimistic evaluation applies
	// neither prune, so DegOK == SigOK there.
	SigOK int64 `json:"sig_ok"`
	// Recursed counts candidates actually bound and descended into
	// (the search stops at the first full mapping, so Recursed can be
	// smaller than SigOK).
	Recursed int64 `json:"recursed"`
	// Matched counts candidates whose subtree produced a full mapping.
	Matched int64 `json:"matched"`
}

func (d *FunnelDepth) add(o *FunnelDepth) {
	d.Generated += o.Generated
	d.DegOK += o.DegOK
	d.SigOK += o.SigOK
	d.Recursed += o.Recursed
	d.Matched += o.Matched
}

// stages returns the counts in pipeline order, aligned with
// funnelStageNames.
func (d *FunnelDepth) stages() [5]int64 {
	return [5]int64{d.Generated, d.DegOK, d.SigOK, d.Recursed, d.Matched}
}

// Stages returns the stage counts in pipeline order (generated, deg-ok,
// sig-ok, recursed, matched); StageNames returns the matching labels.
// invariant.CheckFunnel iterates these rather than the named fields so
// a new stage cannot be added without extending the monotonicity check.
func (d *FunnelDepth) Stages() [5]int64 { return d.stages() }

// StageNames returns the display names aligned with Stages.
func StageNames() [5]string {
	var out [5]string
	copy(out[:], funnelStageNames[:])
	return out
}

// Funnel is a per-depth candidate funnel. It is plain data with no
// internal locking: the PSI evaluator increments it lock-free from a
// single goroutine (one Funnel per psi.State) and workers merge their
// funnels into the owning Profile, which locks.
type Funnel struct {
	Depths []FunnelDepth `json:"depths"`
}

// At returns the row for the given plan depth, growing the funnel as
// needed.
func (f *Funnel) At(depth int) *FunnelDepth {
	for len(f.Depths) <= depth {
		f.Depths = append(f.Depths, FunnelDepth{})
	}
	return &f.Depths[depth]
}

// Merge accumulates o into f (no-op for a nil o).
func (f *Funnel) Merge(o *Funnel) {
	if o == nil {
		return
	}
	for d := range o.Depths {
		f.At(d).add(&o.Depths[d])
	}
}

// Totals sums the funnel across depths.
func (f *Funnel) Totals() FunnelDepth {
	var t FunnelDepth
	for i := range f.Depths {
		t.add(&f.Depths[i])
	}
	return t
}

// Clone returns a deep copy.
func (f *Funnel) Clone() *Funnel {
	if f == nil {
		return nil
	}
	return &Funnel{Depths: append([]FunnelDepth(nil), f.Depths...)}
}

// Ladder rungs of the Section 4.3 recovery ladder, in escalation order.
const (
	// LadderPredicted is rung 1: the model-predicted method and plan
	// under the MaxTime budget.
	LadderPredicted = iota
	// LadderOpposite is rung 2: the opposite method after a rung-1
	// timeout (recovers from model-α errors).
	LadderOpposite
	// LadderHeuristic is rung 3: the heuristic plan bounded only by the
	// global budget (recovers from model-β errors).
	LadderHeuristic
	// NumLadderRungs is the rung count.
	NumLadderRungs
)

var ladderRungNames = [NumLadderRungs]string{"predicted", "opposite", "heuristic"}

// LadderRung aggregates one recovery-ladder rung over a whole query.
type LadderRung struct {
	// Entered counts candidate evaluations that ran this rung.
	Entered int64 `json:"entered"`
	// Resolved counts evaluations that finished here (no timeout or
	// error escalated them further).
	Resolved int64 `json:"resolved"`
	// Nanos is the total wall time spent in this rung.
	Nanos int64 `json:"nanos"`
}

// Mode display names, aligned with psi.Mode's constant order
// (0 = optimistic, 1 = pessimistic) — the same convention the
// EvModePredicted trace event documents for its Arg.
var modeNames = [...]string{"optimistic", "pessimistic"}

func modeName(mode int) string {
	if mode >= 0 && mode < len(modeNames) {
		return modeNames[mode]
	}
	return fmt.Sprintf("mode(%d)", mode)
}

// Profile is one query's execution profile. All methods are safe for
// concurrent use and nil-safe, so call sites can hold the result of
// Recorder.Start (nil when collection is off) unconditionally.
type Profile struct {
	id    uint64
	name  string
	start time.Time
	rec   *Recorder

	mu           sync.Mutex
	finished     bool
	duration     time.Duration
	requestID    string
	fingerprint  string
	method       string
	candidates   int
	bindings     int
	trainedNodes int
	planClasses  int
	trainTime    time.Duration
	cacheHits    int64
	cacheMisses  int64
	// Shadow-audit aggregates (regret is the per-query total of
	// max(0, primary − counterfactual) across audited decisions).
	shadowModeRuns int64
	shadowPlanRuns int64
	shadowTimeouts int64
	regretNanos    int64
	cacheChecks    int64
	cacheStale     int64
	modeCounts     [len(modeNames)]int64
	planCounts     []int64
	ladder         [NumLadderRungs]LadderRung
	funnel         Funnel
	work           map[string]int64
	errMsg         string
}

// NewProfile returns a standalone profile (no recorder); tests and
// ad-hoc measurements use it. Production profiles come from
// Recorder.Start.
func NewProfile(name string) *Profile {
	return &Profile{name: name, start: time.Now()}
}

// ID returns the recorder-assigned sequence number (0 for standalone
// profiles).
func (p *Profile) ID() uint64 {
	if p == nil {
		return 0
	}
	return p.id
}

// Name returns the label given at creation.
func (p *Profile) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// Duration returns the recorded duration for finished profiles,
// time-since-start for live ones.
func (p *Profile) Duration() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.finished {
		return time.Since(p.start)
	}
	return p.duration
}

// Finished reports whether Finish has been called.
func (p *Profile) Finished() bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.finished
}

// SetRequestID tags the profile with the serving-layer request ID
// (X-Request-ID), making it retrievable via /profilez?request_id=.
func (p *Profile) SetRequestID(id string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.requestID = id
	p.mu.Unlock()
}

// RequestID returns the serving-layer request ID, if one was set.
func (p *Profile) RequestID() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.requestID
}

// SetFingerprint tags the profile with the query's canonical shape
// fingerprint (fsm.PivotFingerprint rendered as hex), making it
// retrievable via /profilez?fingerprint= and letting bundle readers
// pivot profiles by workload shape.
func (p *Profile) SetFingerprint(fp string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.fingerprint = fp
	p.mu.Unlock()
}

// Fingerprint returns the canonical shape fingerprint, if one was set.
func (p *Profile) Fingerprint() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fingerprint
}

// ModeMix returns the model-α pick counts in psi.Mode order
// (optimistic, pessimistic); the workload sketch attributes the pick
// mix per shape from it.
func (p *Profile) ModeMix() [2]int64 {
	if p == nil {
		return [2]int64{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.modeCounts
}

// SetMethod records how the query was executed ("ml" for the full
// model-driven pipeline, "pessimistic-heuristic" for candidate sets too
// small to train on).
func (p *Profile) SetMethod(method string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.method = method
	p.mu.Unlock()
}

// SetCandidates records the candidate-set size (label-matching nodes).
func (p *Profile) SetCandidates(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.candidates = n
	p.mu.Unlock()
}

// SetTraining records the training-phase summary: training-set size,
// model-β class count, and training wall time.
func (p *Profile) SetTraining(trainedNodes, planClasses int, trainTime time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.trainedNodes = trainedNodes
	p.planClasses = planClasses
	p.trainTime = trainTime
	p.mu.Unlock()
}

// RecordDecision records one per-candidate method/plan decision:
// whether it came from the signature-keyed cache, which mode model α
// chose (psi.Mode numbering), and which plan model β chose.
func (p *Profile) RecordDecision(fromCache bool, mode, planIdx int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if fromCache {
		p.cacheHits++
	} else {
		p.cacheMisses++
	}
	if mode >= 0 && mode < len(p.modeCounts) {
		p.modeCounts[mode]++
	}
	if planIdx >= 0 {
		for len(p.planCounts) <= planIdx {
			p.planCounts = append(p.planCounts, 0)
		}
		p.planCounts[planIdx]++
	}
	p.mu.Unlock()
}

// RecordShadow records one shadow audit: kind (DecisionKindMode or
// DecisionKindPlan), the decision's regret, and whether the
// counterfactual was censored by the shadow budget.
func (p *Profile) RecordShadow(kind string, regret time.Duration, timedOut bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if kind == DecisionKindPlan {
		p.shadowPlanRuns++
	} else {
		p.shadowModeRuns++
	}
	if timedOut {
		p.shadowTimeouts++
	}
	p.regretNanos += regret.Nanoseconds()
	p.mu.Unlock()
}

// RecordCacheCheck records one sampled cache-quality audit.
func (p *Profile) RecordCacheCheck(stale bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.cacheChecks++
	if stale {
		p.cacheStale++
	}
	p.mu.Unlock()
}

// RegretNanos returns the per-query total shadow-scoring regret.
func (p *Profile) RegretNanos() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.regretNanos
}

// LadderObserve records one recovery-ladder rung execution: the rung
// (LadderPredicted..LadderHeuristic), whether the evaluation resolved
// there, and its wall time.
func (p *Profile) LadderObserve(rung int, resolved bool, took time.Duration) {
	if p == nil || rung < 0 || rung >= NumLadderRungs {
		return
	}
	p.mu.Lock()
	r := &p.ladder[rung]
	r.Entered++
	if resolved {
		r.Resolved++
	}
	r.Nanos += took.Nanoseconds()
	p.mu.Unlock()
}

// MergeFunnel folds one evaluator state's funnel into the profile.
// Workers call it once at exit, so the hot recursion never touches the
// profile lock.
func (p *Profile) MergeFunnel(f *Funnel) {
	if p == nil || f == nil {
		return
	}
	p.mu.Lock()
	p.funnel.Merge(f)
	p.mu.Unlock()
}

// FunnelTotals returns the funnel summed over depths.
func (p *Profile) FunnelTotals() FunnelDepth {
	if p == nil {
		return FunnelDepth{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.funnel.Totals()
}

// FunnelSnapshot returns a copy of the per-depth funnel.
func (p *Profile) FunnelSnapshot() *Funnel {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.funnel.Clone()
}

// SetWork records one evaluator work counter (name → value), keyed by
// the metric names of the obs registry; psi.RecordWork fills it from a
// psi.Stats through the same table that backs PublishStats.
func (p *Profile) SetWork(name string, v int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.work == nil {
		p.work = make(map[string]int64)
	}
	p.work[name] = v
	p.mu.Unlock()
}

// SetOutcome records the result size.
func (p *Profile) SetOutcome(bindings int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.bindings = bindings
	p.mu.Unlock()
}

// SetError records a terminal error (deadline, stop, validation).
func (p *Profile) SetError(msg string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.errMsg = msg
	p.mu.Unlock()
}

// Finish seals the profile with the elapsed wall time and admits it to
// the owning recorder's slowest set. Idempotent and nil-safe.
func (p *Profile) Finish() {
	if p == nil {
		return
	}
	p.FinishIn(time.Since(p.start))
}

// FinishIn is Finish with an explicit duration; the flight-recorder
// tests use it to pin eviction order without wall-clock dependence.
func (p *Profile) FinishIn(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.finished {
		p.mu.Unlock()
		return
	}
	p.finished = true
	p.duration = d
	rec := p.rec
	p.mu.Unlock()
	rec.admit(p)
}

// ProfileData is a point-in-time copy of a Profile: plain data, JSON-
// ready, and the input of the text renderer. Durations are nanoseconds
// in JSON.
type ProfileData struct {
	ID            uint64    `json:"id"`
	Name          string    `json:"name"`
	RequestID     string    `json:"request_id,omitempty"`
	Fingerprint   string    `json:"fingerprint,omitempty"`
	Start         time.Time `json:"start"`
	DurationNanos int64     `json:"duration_nanos"`
	Finished      bool      `json:"finished"`
	Method        string    `json:"method"`
	Candidates    int       `json:"candidates"`
	Bindings      int       `json:"bindings"`
	TrainedNodes  int       `json:"trained_nodes"`
	PlanClasses   int       `json:"plan_classes"`
	TrainNanos    int64     `json:"train_nanos"`
	CacheHits     int64     `json:"cache_hits"`
	CacheMisses   int64     `json:"cache_misses"`
	// Shadow-audit aggregates: runs per audited model, budget-censored
	// counterfactuals, per-query total regret, and cache-quality checks.
	ShadowModeRuns int64            `json:"shadow_mode_runs,omitempty"`
	ShadowPlanRuns int64            `json:"shadow_plan_runs,omitempty"`
	ShadowTimeouts int64            `json:"shadow_timeouts,omitempty"`
	RegretNanos    int64            `json:"regret_nanos,omitempty"`
	CacheChecks    int64            `json:"cache_quality_checks,omitempty"`
	CacheStale     int64            `json:"cache_stale_hits,omitempty"`
	ModePredicted  map[string]int64 `json:"mode_predicted,omitempty"`
	PlanChosen     []int64          `json:"plan_chosen,omitempty"`
	Ladder         []LadderRung     `json:"ladder"`
	LadderNames    []string         `json:"ladder_names"`
	Funnel         []FunnelDepth    `json:"funnel,omitempty"`
	Work           map[string]int64 `json:"work,omitempty"`
	Error          string           `json:"error,omitempty"`
}

// Snapshot captures the profile's current state.
func (p *Profile) Snapshot() ProfileData {
	if p == nil {
		return ProfileData{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	dur := p.duration
	if !p.finished {
		dur = time.Since(p.start)
	}
	d := ProfileData{
		ID:             p.id,
		Name:           p.name,
		RequestID:      p.requestID,
		Fingerprint:    p.fingerprint,
		Start:          p.start,
		DurationNanos:  dur.Nanoseconds(),
		Finished:       p.finished,
		Method:         p.method,
		Candidates:     p.candidates,
		Bindings:       p.bindings,
		TrainedNodes:   p.trainedNodes,
		PlanClasses:    p.planClasses,
		TrainNanos:     p.trainTime.Nanoseconds(),
		CacheHits:      p.cacheHits,
		CacheMisses:    p.cacheMisses,
		ShadowModeRuns: p.shadowModeRuns,
		ShadowPlanRuns: p.shadowPlanRuns,
		ShadowTimeouts: p.shadowTimeouts,
		RegretNanos:    p.regretNanos,
		CacheChecks:    p.cacheChecks,
		CacheStale:     p.cacheStale,
		PlanChosen:     append([]int64(nil), p.planCounts...),
		Ladder:         append([]LadderRung(nil), p.ladder[:]...),
		LadderNames:    append([]string(nil), ladderRungNames[:]...),
		Funnel:         append([]FunnelDepth(nil), p.funnel.Depths...),
		Error:          p.errMsg,
	}
	for m, n := range p.modeCounts {
		if n != 0 {
			if d.ModePredicted == nil {
				d.ModePredicted = make(map[string]int64, len(p.modeCounts))
			}
			d.ModePredicted[modeName(m)] = n
		}
	}
	if len(p.work) > 0 {
		d.Work = make(map[string]int64, len(p.work))
		for k, v := range p.work {
			d.Work[k] = v
		}
	}
	return d
}

// Duration returns the profiled wall time.
func (d ProfileData) Duration() time.Duration { return time.Duration(d.DurationNanos) }

// WriteText renders the profile as the EXPLAIN ANALYZE tree printed by
// `psi-query -explain` and served at /profilez?id=N.
func (d ProfileData) WriteText(w io.Writer) error {
	var buf bytes.Buffer
	state := "live"
	if d.Finished {
		state = d.Duration().Round(time.Microsecond).String()
	}
	fmt.Fprintf(&buf, "query %s  (id %d)  %s  method=%s  candidates=%d  bindings=%d\n",
		d.Name, d.ID, state, orDash(d.Method), d.Candidates, d.Bindings)
	if d.RequestID != "" {
		fmt.Fprintf(&buf, "├─ request: %s\n", d.RequestID)
	}
	if d.Fingerprint != "" {
		fmt.Fprintf(&buf, "├─ shape: %s\n", d.Fingerprint)
	}
	if d.Error != "" {
		fmt.Fprintf(&buf, "├─ error: %s\n", d.Error)
	}

	fmt.Fprintf(&buf, "├─ decision  trained=%d planClasses=%d train=%s  cache: %d hits / %d misses\n",
		d.TrainedNodes, d.PlanClasses, time.Duration(d.TrainNanos).Round(time.Microsecond), d.CacheHits, d.CacheMisses)
	if len(d.ModePredicted) > 0 {
		modes := make([]string, 0, len(d.ModePredicted))
		for m := range d.ModePredicted {
			modes = append(modes, m)
		}
		sort.Strings(modes)
		fmt.Fprintf(&buf, "│    mode (model α):")
		for _, m := range modes {
			fmt.Fprintf(&buf, " %s=%d", m, d.ModePredicted[m])
		}
		fmt.Fprintf(&buf, "\n")
	}
	if len(d.PlanChosen) > 0 {
		fmt.Fprintf(&buf, "│    plan (model β):")
		for i, n := range d.PlanChosen {
			if n != 0 {
				fmt.Fprintf(&buf, " [%d]=%d", i, n)
			}
		}
		fmt.Fprintf(&buf, "\n")
	}

	if d.ShadowModeRuns+d.ShadowPlanRuns+d.CacheChecks > 0 {
		fmt.Fprintf(&buf, "├─ shadow audit  mode=%d plan=%d censored=%d regret=%s  cache-quality: %d checks / %d stale\n",
			d.ShadowModeRuns, d.ShadowPlanRuns, d.ShadowTimeouts,
			time.Duration(d.RegretNanos).Round(time.Microsecond), d.CacheChecks, d.CacheStale)
	}

	fmt.Fprintf(&buf, "├─ recovery ladder (§4.3)\n")
	for i, r := range d.Ladder {
		name := fmt.Sprintf("rung %d", i+1)
		if i < len(d.LadderNames) {
			name = fmt.Sprintf("rung %d %-9s", i+1, d.LadderNames[i])
		}
		fmt.Fprintf(&buf, "│    %s entered=%-7d resolved=%-7d total=%s\n",
			name, r.Entered, r.Resolved, time.Duration(r.Nanos).Round(time.Microsecond))
	}

	fmt.Fprintf(&buf, "├─ candidate funnel (per plan depth; Prop 3.2 prunes = deg-ok − sig-ok)\n")
	fmt.Fprintf(&buf, "│    %5s", "depth")
	for _, s := range funnelStageNames {
		fmt.Fprintf(&buf, "  %10s", s)
	}
	fmt.Fprintf(&buf, "\n")
	for depth := range d.Funnel {
		fmt.Fprintf(&buf, "│    %5d", depth)
		for _, v := range d.Funnel[depth].stages() {
			fmt.Fprintf(&buf, "  %10d", v)
		}
		fmt.Fprintf(&buf, "\n")
	}

	if len(d.Work) > 0 {
		names := make([]string, 0, len(d.Work))
		for k := range d.Work {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(&buf, "└─ work:")
		for _, k := range names {
			fmt.Fprintf(&buf, " %s=%d", k, d.Work[k])
		}
		fmt.Fprintf(&buf, "\n")
	} else {
		fmt.Fprintf(&buf, "└─ work: (none recorded)\n")
	}
	_, err := w.Write(buf.Bytes())
	return err
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
