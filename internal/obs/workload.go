package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// This file is the workload-analytics sketch behind /queryz: every
// served query is canonicalized to a shape fingerprint (the fsm
// package's min-DFS code hashed with the label multiset and pivot
// label; obs only ever sees the resulting hashes, keeping it free of
// graph dependencies) and folded into a bounded-memory Space-Saving
// top-K sketch with per-shape cost aggregates. The sketch answers the
// two fleet-level questions single-query profiles cannot: which query
// shapes dominate cost, and what an answer cache keyed by
// (fingerprint, pivot) would actually win.

// Workload outcome labels, mirroring the serving layer's terminal
// states for one query.
const (
	WorkloadOutcomeOK       = "ok"
	WorkloadOutcomeShed     = "shed"
	WorkloadOutcomeDeadline = "deadline"
	WorkloadOutcomeError    = "error"
)

// QueryObservation is one served query as fed to the workload sketch:
// the canonical hashes plus the per-query cost and outcome facts worth
// aggregating per shape.
type QueryObservation struct {
	// Shape is the canonical shape hash (the /queryz grouping key);
	// Exact additionally pins the pivot orbit, so two observations with
	// equal Exact would — the data graph being static per process —
	// return identical answers. Approx marks budget-exhausted
	// structural-fallback fingerprints.
	Shape  uint64
	Exact  uint64
	Approx bool

	// Example names one concrete query of this shape (e.g. the profile
	// qname) so /queryz rows can be pivoted back to /profilez.
	Example    string
	Nodes      int
	Edges      int
	PivotLabel int

	Outcome    string // WorkloadOutcome*
	Wall       time.Duration
	Work       int64 // evaluator recursions
	Candidates int64
	Bindings   int64
	CacheHits  int64
	Flips      int64
	Fallbacks  int64
	ModeMix    [2]int64 // model-α picks: optimistic, pessimistic
	UsedML     bool
	Funnel     FunnelDepth
}

// ShapeAggregates are the per-shape totals the sketch maintains. The
// reflection coverage test walks this struct's int64 fields (funnel
// included) and fails naming any field the Observe fold misses, so an
// aggregate cannot be added without being wired through.
type ShapeAggregates struct {
	CostNanos       int64       `json:"cost_nanos"`
	Work            int64       `json:"work_recursions"`
	Candidates      int64       `json:"candidates"`
	Bindings        int64       `json:"bindings"`
	CacheHits       int64       `json:"cache_hits"`
	Flips           int64       `json:"flips"`
	Fallbacks       int64       `json:"fallbacks"`
	ModeOptimistic  int64       `json:"mode_optimistic"`
	ModePessimistic int64       `json:"mode_pessimistic"`
	MLRuns          int64       `json:"ml_runs"`
	OK              int64       `json:"ok"`
	Shed            int64       `json:"shed"`
	Deadline        int64       `json:"deadline"`
	Errors          int64       `json:"errors"`
	RepeatHits      int64       `json:"repeat_hits"`
	Funnel          FunnelDepth `json:"funnel"`
}

// fold accumulates one observation (repeat reports whether its exact
// hash was seen before on this entry).
func (a *ShapeAggregates) fold(o QueryObservation, repeat bool) {
	a.CostNanos += o.Wall.Nanoseconds()
	a.Work += o.Work
	a.Candidates += o.Candidates
	a.Bindings += o.Bindings
	a.CacheHits += o.CacheHits
	a.Flips += o.Flips
	a.Fallbacks += o.Fallbacks
	a.ModeOptimistic += o.ModeMix[0]
	a.ModePessimistic += o.ModeMix[1]
	if o.UsedML {
		a.MLRuns++
	}
	switch o.Outcome {
	case WorkloadOutcomeShed:
		a.Shed++
	case WorkloadOutcomeDeadline:
		a.Deadline++
	case WorkloadOutcomeError:
		a.Errors++
	default:
		a.OK++
	}
	if repeat {
		a.RepeatHits++
	}
	a.Funnel.add(&o.Funnel)
}

// maxExactPerShape bounds the per-shape set of distinct exact hashes
// kept for repeat detection. Once full, unseen exact keys are treated
// as fresh (repeats under-count), keeping the estimate an upper bound
// on a *bounded* cache's hit rate rather than an unbounded memory cost.
const maxExactPerShape = 256

// shapeEntry is one Space-Saving counter plus its aggregates. When a
// shape is evicted and later readmitted the aggregates restart from
// zero — the standard Space-Saving caveat: totals are exact for shapes
// that never left the sketch, lower bounds otherwise.
type shapeEntry struct {
	shape      uint64
	count      int64 // Space-Saving estimate: true count ≤ count ≤ true + errBound... see Observe
	errBound   int64 // over-count inherited at admission (0 for never-evicted keys)
	example    string
	nodes      int
	edges      int
	pivotLabel int
	approx     bool
	agg        ShapeAggregates
	exactSeen  map[uint64]int64
	lat        []int64 // LatencyBuckets counts + overflow
	latSum     float64
	latCount   int64
}

// Workload is the bounded-memory workload sketch: at most K tracked
// shapes regardless of how many distinct shapes the stream contains,
// with the classic Space-Saving guarantee that any shape's count
// estimate is off by at most N/K (N = observations so far). All methods
// are nil-safe so the unarmed serving path costs a single nil check.
type Workload struct {
	mu        sync.Mutex
	k         int
	entries   map[uint64]*shapeEntry
	observed  int64
	admitted  int64 // new-key admissions: an upper estimate of distinct shapes
	evictions int64
	repeats   int64
}

// DefaultWorkloadK is the top-K capacity used when NewWorkload is given
// a non-positive k: small enough that /queryz stays readable, large
// enough that a realistic serving mix never churns.
const DefaultWorkloadK = 64

// NewWorkload returns a sketch tracking at most k shapes (non-positive
// k means DefaultWorkloadK).
func NewWorkload(k int) *Workload {
	if k <= 0 {
		k = DefaultWorkloadK
	}
	return &Workload{k: k, entries: make(map[uint64]*shapeEntry, k)}
}

// Observe folds one served query into the sketch. Nil-safe: the
// disabled path is a single nil check.
func (w *Workload) Observe(o QueryObservation) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.observed++
	e, ok := w.entries[o.Shape]
	if ok {
		e.count++
	} else {
		var inherited int64
		if len(w.entries) >= w.k {
			// Space-Saving eviction: replace the minimum-count entry and
			// inherit its count as both estimate floor and error bound.
			min := w.minEntry()
			inherited = min.count
			delete(w.entries, min.shape)
			w.evictions++
			workloadChurn.Inc()
		}
		e = &shapeEntry{
			shape:      o.Shape,
			count:      inherited + 1,
			errBound:   inherited,
			example:    o.Example,
			nodes:      o.Nodes,
			edges:      o.Edges,
			pivotLabel: o.PivotLabel,
			approx:     o.Approx,
			exactSeen:  make(map[uint64]int64, 4),
			lat:        make([]int64, len(LatencyBuckets)+1),
		}
		w.entries[o.Shape] = e
		w.admitted++
	}
	if e.example == "" {
		e.example = o.Example
	}
	repeat := false
	if n, seen := e.exactSeen[o.Exact]; seen {
		e.exactSeen[o.Exact] = n + 1
		repeat = true
	} else if len(e.exactSeen) < maxExactPerShape {
		e.exactSeen[o.Exact] = 1
	}
	e.agg.fold(o, repeat)
	e.lat[bucketIndex(LatencyBuckets, o.Wall.Seconds())]++
	e.latSum += o.Wall.Seconds()
	e.latCount++

	tracked, admitted := len(w.entries), w.admitted
	if repeat {
		w.repeats++
	}
	w.mu.Unlock()

	workloadObserved.Inc()
	if repeat {
		workloadRepeats.Inc()
	}
	if o.Approx {
		workloadApprox.Inc()
	}
	workloadTracked.Set(int64(tracked))
	workloadDistinct.Set(admitted)
}

// minEntry returns the tracked entry with the smallest count (ties
// broken by shape hash for determinism). Linear in K; only reached on a
// miss with a full sketch, and K is small by construction.
func (w *Workload) minEntry() *shapeEntry {
	var min *shapeEntry
	for _, e := range w.entries {
		if min == nil || e.count < min.count || (e.count == min.count && e.shape < min.shape) {
			min = e
		}
	}
	return min
}

func bucketIndex(bounds []float64, v float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

// ShapeData is one /queryz row: the fingerprint, its Space-Saving count
// estimate, and the per-shape cost aggregates.
type ShapeData struct {
	Fingerprint string `json:"shape"`
	Example     string `json:"example,omitempty"`
	Nodes       int    `json:"nodes"`
	Edges       int    `json:"edges"`
	PivotLabel  int    `json:"pivot_label"`
	Approx      bool   `json:"approx,omitempty"`

	Count         int64   `json:"count"`
	CountErr      int64   `json:"count_err"`
	CountShare    float64 `json:"count_share"`
	CostShare     float64 `json:"cost_share"`
	DistinctExact int     `json:"distinct_exact"`
	MeanMillis    float64 `json:"mean_ms"`
	P50Millis     float64 `json:"p50_ms"`
	P95Millis     float64 `json:"p95_ms"`
	P99Millis     float64 `json:"p99_ms"`

	Totals ShapeAggregates `json:"totals"`
}

// CacheWinEstimate is the explicit answer-cache what-if: RepeatHits
// counts queries whose exact (fingerprint, pivot) key was already seen,
// so HitRate is an upper bound on the hit rate of any answer cache, and
// SavableNanos prices those hits at their shape's mean cost.
type CacheWinEstimate struct {
	RepeatHits   int64   `json:"repeat_hits"`
	Observed     int64   `json:"observed"`
	HitRate      float64 `json:"hit_rate_upper_bound"`
	SavableNanos int64   `json:"savable_nanos"`
	SavableShare float64 `json:"savable_share"`
}

// WorkloadData is the /queryz?format=json document (schema 1). Shapes
// are ranked by total cost, descending.
type WorkloadData struct {
	Schema           int              `json:"schema"`
	K                int              `json:"k"`
	Observed         int64            `json:"observed"`
	TrackedShapes    int              `json:"tracked_shapes"`
	DistinctEstimate int64            `json:"distinct_shapes_estimate"`
	Evictions        int64            `json:"topk_evictions"`
	TotalCostNanos   int64            `json:"total_cost_nanos"`
	CacheWin         CacheWinEstimate `json:"cache_win"`
	Shapes           []ShapeData      `json:"shapes"`
}

// Snapshot returns a point-in-time copy of the sketch, shapes ranked by
// aggregate cost (descending; count then fingerprint break ties).
func (w *Workload) Snapshot() WorkloadData {
	if w == nil {
		return WorkloadData{Schema: 1}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	d := WorkloadData{
		Schema:           1,
		K:                w.k,
		Observed:         w.observed,
		TrackedShapes:    len(w.entries),
		DistinctEstimate: w.admitted,
		Evictions:        w.evictions,
		CacheWin:         CacheWinEstimate{RepeatHits: w.repeats, Observed: w.observed},
	}
	var totalCost int64
	for _, e := range w.entries {
		totalCost += e.agg.CostNanos
	}
	d.TotalCostNanos = totalCost
	for _, e := range w.entries {
		s := ShapeData{
			Fingerprint:   fmt.Sprintf("%016x", e.shape),
			Example:       e.example,
			Nodes:         e.nodes,
			Edges:         e.edges,
			PivotLabel:    e.pivotLabel,
			Approx:        e.approx,
			Count:         e.count,
			CountErr:      e.errBound,
			DistinctExact: len(e.exactSeen),
			Totals:        e.agg,
		}
		if w.observed > 0 {
			s.CountShare = float64(e.count) / float64(w.observed)
		}
		if totalCost > 0 {
			s.CostShare = float64(e.agg.CostNanos) / float64(totalCost)
		}
		if e.latCount > 0 {
			s.MeanMillis = e.latSum / float64(e.latCount) * 1e3
			h := latSnapshot(e.lat, e.latSum, e.latCount)
			if q, ok := HistogramQuantile(h, 0.50); ok {
				s.P50Millis = q * 1e3
			}
			if q, ok := HistogramQuantile(h, 0.95); ok {
				s.P95Millis = q * 1e3
			}
			if q, ok := HistogramQuantile(h, 0.99); ok {
				s.P99Millis = q * 1e3
			}
		}
		// Price this shape's repeats at its mean cost: what an ideal
		// answer cache would have saved on them.
		if e.latCount > 0 && e.agg.RepeatHits > 0 {
			d.CacheWin.SavableNanos += e.agg.RepeatHits * (e.agg.CostNanos / e.latCount)
		}
		d.Shapes = append(d.Shapes, s)
	}
	sort.Slice(d.Shapes, func(i, j int) bool {
		a, b := &d.Shapes[i], &d.Shapes[j]
		if a.Totals.CostNanos != b.Totals.CostNanos {
			return a.Totals.CostNanos > b.Totals.CostNanos
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Fingerprint < b.Fingerprint
	})
	if w.observed > 0 {
		d.CacheWin.HitRate = float64(w.repeats) / float64(w.observed)
	}
	if totalCost > 0 {
		d.CacheWin.SavableShare = float64(d.CacheWin.SavableNanos) / float64(totalCost)
	}
	return d
}

func latSnapshot(counts []int64, sum float64, n int64) HistogramSnapshot {
	h := HistogramSnapshot{Sum: sum, Count: n, Buckets: make([]BucketCount, len(LatencyBuckets))}
	cum := int64(0)
	for i, b := range LatencyBuckets {
		cum += counts[i]
		h.Buckets[i] = BucketCount{UpperBound: b, Count: cum}
	}
	return h
}

// WriteJSON writes the schema-1 /queryz document.
func (d WorkloadData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteText renders the /queryz table: a sketch header, the cache-win
// estimate, then one row per shape ranked by aggregate cost.
func (d WorkloadData) WriteText(w io.Writer) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("workload sketch  observed=%d  shapes=%d tracked / ≈%d distinct  k=%d  churn=%d\n",
		d.Observed, d.TrackedShapes, d.DistinctEstimate, d.K, d.Evictions)
	pr("cache-win (upper bound, exact (fingerprint, pivot) repeats): hit-rate ≤ %.1f%%  savable ≈ %s (%.1f%% of %s total cost)\n\n",
		d.CacheWin.HitRate*100,
		time.Duration(d.CacheWin.SavableNanos).Round(time.Millisecond),
		d.CacheWin.SavableShare*100,
		time.Duration(d.TotalCostNanos).Round(time.Millisecond))
	if len(d.Shapes) == 0 {
		pr("no queries observed yet\n")
		return err
	}
	pr("%-18s %-14s %4s %4s  %-14s %5s %5s  %9s %9s  %-15s %-11s %6s %6s\n",
		"SHAPE", "EXAMPLE", "N", "E", "COUNT(±ERR)", "CNT%", "COST%",
		"TOTAL", "P95", "OK/SHED/DL/ERR", "α O/P", "REPEAT", "WORK")
	for _, s := range d.Shapes {
		mark := ""
		if s.Approx {
			mark = "~"
		}
		pr("%-18s %-14s %4d %4d  %-14s %4.0f%% %4.0f%%  %9s %9s  %-15s %-11s %6d %6d\n",
			s.Fingerprint+mark, s.Example, s.Nodes, s.Edges,
			fmt.Sprintf("%d(±%d)", s.Count, s.CountErr),
			s.CountShare*100, s.CostShare*100,
			time.Duration(s.Totals.CostNanos).Round(time.Millisecond),
			time.Duration(s.P95Millis*float64(time.Millisecond)).Round(10*time.Microsecond),
			fmt.Sprintf("%d/%d/%d/%d", s.Totals.OK, s.Totals.Shed, s.Totals.Deadline, s.Totals.Errors),
			fmt.Sprintf("%d/%d", s.Totals.ModeOptimistic, s.Totals.ModePessimistic),
			s.Totals.RepeatHits, s.Totals.Work)
	}
	return err
}

// obs_workload_* meta-metrics: the sketch's own health, exported
// through the default registry so the sampler, /seriesz and the SLO
// machinery see workload-shape churn like any other series.
var (
	workloadObserved = Default.Counter("obs_workload_observed_total",
		"Queries folded into the workload sketch.")
	workloadRepeats = Default.Counter("obs_workload_repeat_hits_total",
		"Queries whose exact (fingerprint, pivot) key was already seen: the answer-cache hit-rate upper bound numerator.")
	workloadChurn = Default.Counter("obs_workload_topk_churn_total",
		"Space-Saving evictions from the top-K sketch; a high rate means K is too small for the shape mix.")
	workloadApprox = Default.Counter("obs_workload_approx_fingerprints_total",
		"Fingerprints that exhausted the canonical-code budget and fell back to the structural hash.")
	workloadTracked = Default.Gauge("obs_workload_tracked_shapes",
		"Shapes currently tracked by the workload sketch (at most K).")
	workloadDistinct = Default.Gauge("obs_workload_distinct_shapes_estimate",
		"Upper estimate of distinct query shapes observed (sketch admissions).")
)
