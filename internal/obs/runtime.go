package obs

import (
	"runtime"
	"time"
)

// Process health gauges: goroutine count, heap occupancy and GC pause
// telemetry from runtime.MemStats, published into the Default registry
// so /seriesz and diagnostic bundles show process health sparklines
// next to the server_* serving series. Unlike the counter sites these
// must be polled, so ArmRuntimeGauges hooks the refresh onto the
// sampler's pre-sample tick — each retained sample carries values no
// older than one interval.
var (
	ProcGoroutines  = Default.Gauge("process_goroutines", "live goroutines (runtime.NumGoroutine), refreshed on sampler ticks")
	ProcHeapInuse   = Default.Gauge("process_heap_inuse_bytes", "bytes in in-use heap spans (runtime.MemStats.HeapInuse)")
	ProcHeapAlloc   = Default.Gauge("process_heap_alloc_bytes", "bytes of allocated heap objects (runtime.MemStats.HeapAlloc)")
	ProcGCCycles    = Default.Gauge("process_gc_cycles", "completed GC cycles (runtime.MemStats.NumGC)")
	ProcGCPauseLast = Default.Gauge("process_gc_pause_last_nanos", "most recent GC stop-the-world pause in nanoseconds")
)

// UpdateRuntimeGauges refreshes the process_* gauges from the runtime.
// ReadMemStats briefly stops the world, so this belongs on a sampler
// tick (ArmRuntimeGauges), not on a request path.
func UpdateRuntimeGauges() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ProcGoroutines.Set(int64(runtime.NumGoroutine()))
	ProcHeapInuse.Set(int64(ms.HeapInuse))
	ProcHeapAlloc.Set(int64(ms.HeapAlloc))
	ProcGCCycles.Set(int64(ms.NumGC))
	if ms.NumGC > 0 {
		ProcGCPauseLast.Set(int64(ms.PauseNs[(ms.NumGC+255)%256]))
	}
}

// ArmRuntimeGauges registers UpdateRuntimeGauges as a pre-sample hook
// on the sampler, so every retained sample sees fresh process health.
// Call before the sampler starts.
func ArmRuntimeGauges(s *Sampler) {
	s.OnBeforeSample(func(time.Time) { UpdateRuntimeGauges() })
}
