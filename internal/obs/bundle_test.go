package obs

import (
	"archive/zip"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// bundleFixture wires a fully private capture pipeline: registry with
// serving counters, manually driven sampler, one availability
// objective, a recorder with one finished profile, a decision tail and
// an access ring — every data source a production Bundler sees.
func bundleFixture(t *testing.T) (BundlerConfig, *Counter, *Counter, *Sampler) {
	t.Helper()
	prev := Enabled()
	Enable(true) // Recorder.Start and Profile writes are collection-gated
	t.Cleanup(func() { Enable(prev) })
	reg := NewRegistry()
	req := reg.Counter("server_requests_total", "requests")
	shed := reg.Counter("server_shed_total", "sheds")
	s := NewSampler(reg, time.Second, 64)
	set := NewSLOSet(s, []Objective{
		AvailabilityObjective(0.9, 2*time.Second, 5*time.Second, 2, 0),
	})

	rec := NewRecorder(4)
	p := rec.Start("q-0")
	p.SetRequestID("req-abc")
	p.SetMethod("pessimistic")
	p.SetOutcome(3)
	p.FinishIn(5 * time.Millisecond)

	tail := NewDecisionTail(8)
	tail.Append(DecisionRecord{Kind: DecisionKindMode, Query: "q-0", RequestID: "req-abc", Node: 1})

	access := NewAccessRing(8)
	access.Append(AccessEntry{Method: "POST", Path: "/v1/psi", Status: 200, RequestID: "req-abc"})

	return BundlerConfig{
		Registry:  reg,
		Sampler:   s,
		Alerts:    set,
		Recorder:  rec,
		Decisions: tail,
		Access:    access,
	}, req, shed, s
}

func TestBundleRoundTrip(t *testing.T) {
	cfg, req, _, s := bundleFixture(t)
	req.Add(10)
	s.SampleAt(sloBase)
	s.SampleAt(sloBase.Add(time.Second))

	b, err := NewBundler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := b.WriteBundle(&buf, BundleReasonManual, "")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteBundle reported %d bytes, wrote %d", n, buf.Len())
	}

	a, err := ReadBundle(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if a.Manifest.Schema != BundleSchemaVersion || a.Manifest.Reason != BundleReasonManual {
		t.Errorf("manifest schema=%d reason=%q", a.Manifest.Schema, a.Manifest.Reason)
	}
	if a.Manifest.GoVersion == "" || a.Manifest.PID == 0 {
		t.Errorf("manifest missing build identity: %+v", a.Manifest)
	}
	for _, name := range []string{
		ManifestEntry, MetricsEntry, SeriesEntry, AlertsEntry,
		ProfilesEntry, ModelEntry, GoroutinesEntry, DecisionsEntry, AccessLogEntryName,
	} {
		if _, err := a.Entry(name); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
	}
	// Manifest entry list matches the archive (manifest itself uses -1).
	for _, e := range a.Manifest.Entries {
		data, err := a.Entry(e.Name)
		if err != nil {
			t.Errorf("manifest lists %s but archive lacks it", e.Name)
			continue
		}
		if e.Name != ManifestEntry && e.Bytes != len(data) {
			t.Errorf("%s: manifest says %d bytes, entry has %d", e.Name, e.Bytes, len(data))
		}
	}

	var snap Snapshot
	data, _ := a.Entry(MetricsEntry)
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	if snap.Counters["server_requests_total"] != 10 {
		t.Errorf("metrics.json requests = %d, want 10", snap.Counters["server_requests_total"])
	}

	var profs BundleProfiles
	data, _ = a.Entry(ProfilesEntry)
	if err := json.Unmarshal(data, &profs); err != nil {
		t.Fatalf("profiles.json: %v", err)
	}
	if len(profs.Recent) != 1 || profs.Recent[0].RequestID != "req-abc" {
		t.Errorf("profiles.json recent = %+v, want one profile with req-abc", profs.Recent)
	}

	data, _ = a.Entry(DecisionsEntry)
	var rec DecisionRecord
	if err := json.Unmarshal(bytes.TrimSpace(data), &rec); err != nil {
		t.Fatalf("decisions.jsonl: %v", err)
	}
	if rec.RequestID != "req-abc" || rec.Schema != DecisionSchemaVersion {
		t.Errorf("decision record = %+v, want req-abc at schema %d", rec, DecisionSchemaVersion)
	}

	if !strings.Contains(string(mustEntry(t, a, GoroutinesEntry)), "goroutine") {
		t.Error("goroutines.txt does not look like a stack dump")
	}
}

func mustEntry(t *testing.T, a *BundleArchive, name string) []byte {
	t.Helper()
	data, err := a.Entry(name)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestBundleCooldown drives AutoCapture with a fake clock: a second
// firing inside the cooldown window must be suppressed, one after it
// must capture again.
func TestBundleCooldown(t *testing.T) {
	cfg, _, _, _ := bundleFixture(t)
	cfg.Dir = t.TempDir()
	cfg.Cooldown = time.Minute
	now := sloBase
	cfg.Now = func() time.Time { return now }

	b, err := NewBundler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, captured, err := b.AutoCapture("availability"); err != nil || !captured {
		t.Fatalf("first capture: captured=%v err=%v", captured, err)
	}
	now = now.Add(30 * time.Second)
	if _, captured, err := b.AutoCapture("availability"); err != nil || captured {
		t.Fatalf("inside cooldown: captured=%v err=%v, want suppressed", captured, err)
	}
	// A different objective has its own cooldown slot.
	if _, captured, err := b.AutoCapture("latency"); err != nil || !captured {
		t.Fatalf("other objective inside availability cooldown: captured=%v err=%v", captured, err)
	}
	now = now.Add(31 * time.Second)
	if _, captured, err := b.AutoCapture("availability"); err != nil || !captured {
		t.Fatalf("after cooldown: captured=%v err=%v", captured, err)
	}
	if got := cfg.Registry.Snapshot().Counters[BundlesCaptured]; got != 3 {
		t.Errorf("%s = %d, want 3", BundlesCaptured, got)
	}
	if got := len(b.Kept()); got != 3 {
		t.Errorf("kept %d bundles, want 3", got)
	}
}

// TestBundleRetention captures past the Keep bound and checks the
// oldest files are evicted from disk, newest retained.
func TestBundleRetention(t *testing.T) {
	cfg, _, _, _ := bundleFixture(t)
	cfg.Dir = t.TempDir()
	cfg.Keep = 2
	now := sloBase
	cfg.Now = func() time.Time { now = now.Add(time.Second); return now }

	b, err := NewBundler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for i := 0; i < 4; i++ {
		p, err := b.CaptureToDir(BundleReasonAlert, "availability")
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	kept := b.Kept()
	if len(kept) != 2 || kept[0] != paths[2] || kept[1] != paths[3] {
		t.Errorf("kept = %v, want the two newest of %v", kept, paths)
	}
	onDisk, err := filepath.Glob(filepath.Join(cfg.Dir, "bundle-*.zip"))
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 2 {
		t.Errorf("%d bundles on disk, want 2: %v", len(onDisk), onDisk)
	}
	for _, old := range paths[:2] {
		if _, err := os.Stat(old); !os.IsNotExist(err) {
			t.Errorf("evicted bundle %s still on disk (err=%v)", old, err)
		}
	}
	// The survivors must still read back clean.
	if _, err := ReadBundleFile(paths[3]); err != nil {
		t.Errorf("retained bundle unreadable: %v", err)
	}
}

// TestBundleAutoCaptureOnFiring drives the real alert state machine to
// firing and checks the transition hook captured an alert bundle naming
// the objective.
func TestBundleAutoCaptureOnFiring(t *testing.T) {
	cfg, req, shed, s := bundleFixture(t)
	cfg.Dir = t.TempDir()

	b, err := NewBundler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.SampleAt(sloBase)
	req.Add(100)
	shed.Add(50)
	s.SampleAt(sloBase.Add(time.Second)) // burn 5 > factor 2: firing

	kept := b.Kept()
	if len(kept) != 1 {
		t.Fatalf("kept = %v, want exactly one auto-captured bundle", kept)
	}
	a, err := ReadBundleFile(kept[0])
	if err != nil {
		t.Fatal(err)
	}
	if a.Manifest.Reason != BundleReasonAlert || a.Manifest.Objective != "availability" {
		t.Errorf("manifest reason=%q objective=%q, want alert/availability",
			a.Manifest.Reason, a.Manifest.Objective)
	}
	var alerts AlertsData
	if err := json.Unmarshal(mustEntry(t, a, AlertsEntry), &alerts); err != nil {
		t.Fatal(err)
	}
	if alerts.Firing != 1 || alerts.Alerts[0].State != StateFiring {
		t.Errorf("alertz.json in bundle: firing=%d state=%s, want the captured state to show the alert",
			alerts.Firing, alerts.Alerts[0].State)
	}

	// Re-firing after a resolve inside the cooldown stays suppressed.
	req.Add(1000)
	s.SampleAt(sloBase.Add(2 * time.Second)) // resolves
	shed.Add(2000)
	s.SampleAt(sloBase.Add(3 * time.Second)) // fires again, within default 5m cooldown
	if got := b.Kept(); len(got) != 1 {
		t.Errorf("kept = %v after re-fire inside cooldown, want still 1", got)
	}
}

// TestBundleUnarmed pins the zero-cost contract: without a Dir the
// Bundler never auto-captures and CaptureToDir refuses.
func TestBundleUnarmed(t *testing.T) {
	cfg, req, shed, s := bundleFixture(t)
	b, err := NewBundler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Armed() {
		t.Fatal("bundler without Dir reports Armed")
	}
	if _, captured, err := b.AutoCapture("availability"); captured || err != nil {
		t.Errorf("unarmed AutoCapture: captured=%v err=%v, want no-op", captured, err)
	}
	if _, err := b.CaptureToDir(BundleReasonManual, ""); err == nil {
		t.Error("unarmed CaptureToDir succeeded, want error")
	}
	// Driving the alert to firing must not capture anything either
	// (NewBundler only hooks OnTransition when armed).
	s.SampleAt(sloBase)
	req.Add(100)
	shed.Add(50)
	s.SampleAt(sloBase.Add(time.Second))
	if got := cfg.Registry.Snapshot().Counters[BundlesCaptured]; got != 0 {
		t.Errorf("%s = %d after unarmed firing, want 0", BundlesCaptured, got)
	}
}

// TestBundleConcurrent exercises the capture paths under -race:
// concurrent on-demand writes, auto-captures, sampler ticks and source
// mutation.
func TestBundleConcurrent(t *testing.T) {
	cfg, req, _, s := bundleFixture(t)
	cfg.Dir = t.TempDir()
	cfg.Cooldown = time.Nanosecond // effectively off: every capture lands
	b, err := NewBundler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			if _, err := b.WriteBundle(&buf, BundleReasonManual, ""); err != nil {
				t.Errorf("WriteBundle: %v", err)
			}
			if _, err := ReadBundle(buf.Bytes()); err != nil {
				t.Errorf("ReadBundle: %v", err)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			req.Inc()
			s.SampleAt(sloBase.Add(time.Duration(i) * time.Second))
			cfg.Decisions.Append(DecisionRecord{Kind: DecisionKindMode, Node: int64(i)})
			cfg.Access.Append(AccessEntry{Path: "/v1/psi", Status: 200})
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, _, err := b.AutoCapture("availability"); err != nil {
				t.Errorf("AutoCapture: %v", err)
			}
		}
	}()
	wg.Wait()
}

// TestReadBundleRejects pins the corrupt-input contract psi-bundle's
// exit code 2 depends on.
func TestReadBundleRejects(t *testing.T) {
	cfg, _, _, _ := bundleFixture(t)
	b, err := NewBundler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := b.WriteBundle(&buf, BundleReasonManual, ""); err != nil {
		t.Fatal(err)
	}

	if _, err := ReadBundle([]byte("not a zip")); err == nil {
		t.Error("ReadBundle accepted garbage")
	}
	if _, err := ReadBundle(buf.Bytes()[:buf.Len()/2]); err == nil {
		t.Error("ReadBundle accepted a truncated bundle")
	}
	// A zip without a manifest is rejected even though it is valid zip.
	empty := zipWithout(t, buf.Bytes(), ManifestEntry)
	if _, err := ReadBundle(empty); err == nil || !strings.Contains(err.Error(), ManifestEntry) {
		t.Errorf("ReadBundle without manifest: err=%v, want mention of %s", err, ManifestEntry)
	}
}

// zipWithout rebuilds a zip archive dropping one entry.
func zipWithout(t *testing.T, data []byte, drop string) []byte {
	t.Helper()
	a, err := ReadBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for name, content := range a.Entries {
		if name == drop {
			continue
		}
		f, err := zw.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(content); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
