package workload

import (
	"fmt"

	"repro/internal/graph"
)

// Shape classifies a query graph's topology. The paper's workloads "span
// a wide range of query complexities including paths, trees, stars and
// other complex shapes"; ShapeDistribution verifies ours do too.
type Shape int

const (
	// ShapePath is a simple path (tree with exactly two leaves).
	ShapePath Shape = iota
	// ShapeStar is a tree with one internal node and >= 3 leaves.
	ShapeStar
	// ShapeTree is any other acyclic connected query.
	ShapeTree
	// ShapeCycle is a single simple cycle (every degree exactly 2).
	ShapeCycle
	// ShapeComplex has at least one cycle plus additional structure.
	ShapeComplex
)

func (s Shape) String() string {
	switch s {
	case ShapePath:
		return "path"
	case ShapeStar:
		return "star"
	case ShapeTree:
		return "tree"
	case ShapeCycle:
		return "cycle"
	case ShapeComplex:
		return "complex"
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Classify returns the shape of connected graph g. Single nodes and
// single edges classify as paths.
func Classify(g *graph.Graph) Shape {
	n := int64(g.NumNodes())
	m := g.NumEdges()
	if n <= 2 {
		return ShapePath
	}
	acyclic := m == n-1
	if acyclic {
		leaves, internal, maxDeg := 0, 0, int32(0)
		for u := graph.NodeID(0); int64(u) < n; u++ {
			d := g.Degree(u)
			if d == 1 {
				leaves++
			} else {
				internal++
			}
			if d > maxDeg {
				maxDeg = d
			}
		}
		switch {
		case leaves == 2:
			return ShapePath
		case internal == 1 && leaves >= 3:
			return ShapeStar
		default:
			return ShapeTree
		}
	}
	if m == n {
		allDeg2 := true
		for u := graph.NodeID(0); int64(u) < n; u++ {
			if g.Degree(u) != 2 {
				allDeg2 = false
				break
			}
		}
		if allDeg2 {
			return ShapeCycle
		}
	}
	return ShapeComplex
}

// ShapeDistribution counts the shapes across a query list.
func ShapeDistribution(queries []graph.Query) map[Shape]int {
	out := make(map[Shape]int)
	for _, q := range queries {
		out[Classify(q.G)]++
	}
	return out
}
