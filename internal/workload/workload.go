// Package workload extracts query workloads from data graphs the way the
// paper's evaluation does (Section 5.1): random-walk-with-restart
// sampling of connected subgraphs of a requested size, with a random
// node designated the pivot. Extracted queries are guaranteed to have at
// least one embedding (themselves), which matches how the subgraph-
// isomorphism literature builds query sets.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// RestartProbability is the per-step restart chance of the random walk;
// 0.15 is the conventional choice.
const RestartProbability = 0.15

// maxWalkSteps bounds one extraction attempt before starting over from a
// fresh seed node.
const maxWalkSteps = 4096

// ExtractQuery samples one connected query of exactly size nodes from g
// by random walk with restart, assigning a random pivot. It fails if g
// has no connected component of that size reachable within the attempt
// budget.
func ExtractQuery(g *graph.Graph, size int, rng *rand.Rand) (graph.Query, error) {
	if size < 1 {
		return graph.Query{}, fmt.Errorf("workload: size %d < 1", size)
	}
	if g.NumNodes() < size {
		return graph.Query{}, fmt.Errorf("workload: graph has %d nodes, query needs %d", g.NumNodes(), size)
	}
	const attempts = 64
	for a := 0; a < attempts; a++ {
		nodes, ok := walk(g, size, rng)
		if !ok {
			continue
		}
		sub, _, err := graph.InducedSubgraph(g, nodes)
		if err != nil {
			return graph.Query{}, err
		}
		if !graph.IsConnected(sub) {
			continue // can happen only via bugs; walks grow connectedly
		}
		q, err := graph.NewQuery(sub, graph.NodeID(rng.Intn(size)))
		if err != nil {
			return graph.Query{}, err
		}
		return q, nil
	}
	return graph.Query{}, fmt.Errorf("workload: no connected %d-node subgraph found after %d attempts", size, attempts)
}

// walk runs one random walk with restart and returns the first `size`
// distinct nodes visited.
func walk(g *graph.Graph, size int, rng *rand.Rand) ([]graph.NodeID, bool) {
	start := graph.NodeID(rng.Intn(g.NumNodes()))
	if g.Degree(start) == 0 && size > 1 {
		return nil, false
	}
	collected := make([]graph.NodeID, 0, size)
	seen := make(map[graph.NodeID]struct{}, size)
	add := func(u graph.NodeID) {
		if _, ok := seen[u]; !ok {
			seen[u] = struct{}{}
			collected = append(collected, u)
		}
	}
	add(start)
	cur := start
	for step := 0; step < maxWalkSteps && len(collected) < size; step++ {
		if rng.Float64() < RestartProbability {
			cur = start
			continue
		}
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			cur = start
			continue
		}
		// Bias the walk towards nodes already collected or their
		// neighbors: plain uniform steps frequently wander off and stall
		// on low-degree graphs.
		cur = nbrs[rng.Intn(len(nbrs))]
		add(cur)
	}
	return collected, len(collected) == size
}

// ExtractQueries samples count queries of the given size. Failed
// extraction attempts are retried with fresh walks; an error is returned
// only when the graph cannot yield such queries at all.
func ExtractQueries(g *graph.Graph, size, count int, rng *rand.Rand) ([]graph.Query, error) {
	out := make([]graph.Query, 0, count)
	for len(out) < count {
		q, err := ExtractQuery(g, size, rng)
		if err != nil {
			return out, err
		}
		out = append(out, q)
	}
	return out, nil
}

// QuerySet is a reproducible workload: queries grouped by size.
type QuerySet struct {
	BySize map[int][]graph.Query
}

// BuildQuerySet extracts per-size workloads (sizes inclusive) with count
// queries each, deterministically from seed.
func BuildQuerySet(g *graph.Graph, minSize, maxSize, count int, seed int64) (*QuerySet, error) {
	rng := rand.New(rand.NewSource(seed))
	qs := &QuerySet{BySize: make(map[int][]graph.Query)}
	for size := minSize; size <= maxSize; size++ {
		queries, err := ExtractQueries(g, size, count, rng)
		if err != nil {
			return nil, fmt.Errorf("size %d: %w", size, err)
		}
		qs.BySize[size] = queries
	}
	return qs, nil
}
