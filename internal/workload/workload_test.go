package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graph/graphtest"
	"repro/internal/match"
)

func TestExtractQuerySizes(t *testing.T) {
	g := graphtest.Random(200, 600, 5, 11)
	rng := rand.New(rand.NewSource(1))
	for size := 2; size <= 8; size++ {
		q, err := ExtractQuery(g, size, rng)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if q.Size() != size {
			t.Errorf("size %d: got %d nodes", size, q.Size())
		}
		if err := q.Validate(); err != nil {
			t.Errorf("size %d: invalid query: %v", size, err)
		}
	}
}

func TestExtractQueryErrors(t *testing.T) {
	g := graphtest.Random(10, 15, 2, 5)
	rng := rand.New(rand.NewSource(2))
	if _, err := ExtractQuery(g, 0, rng); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := ExtractQuery(g, 11, rng); err == nil {
		t.Error("size > graph accepted")
	}
	// A graph of isolated nodes cannot yield size-2 queries.
	b := graph.NewBuilder(5, 0)
	for i := 0; i < 5; i++ {
		b.AddNode(0)
	}
	if _, err := ExtractQuery(b.MustBuild(), 2, rng); err == nil {
		t.Error("edgeless graph yielded a multi-node query")
	}
}

// TestExtractedQueryAlwaysMatches: a query extracted from g must have at
// least one embedding in g (itself).
func TestExtractedQueryAlwaysMatches(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(60, 150, 4, seed)
		q, err := ExtractQuery(g, 4, rng)
		if err != nil {
			return true // sparse seed; fine
		}
		eng, err := match.NewBacktracking(g, q.G)
		if err != nil {
			return false
		}
		n, err := match.CountEmbeddings(eng, match.Budget{MaxEmbeddings: 1})
		if err != nil && err != match.ErrBudget {
			return false
		}
		return n >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractQueries(t *testing.T) {
	g := graphtest.Random(200, 600, 5, 12)
	rng := rand.New(rand.NewSource(3))
	qs, err := ExtractQueries(g, 5, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 20 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.Size() != 5 {
			t.Errorf("query size %d", q.Size())
		}
	}
}

func TestBuildQuerySet(t *testing.T) {
	spec, err := gen.DefaultSpec("cora")
	if err != nil {
		t.Fatal(err)
	}
	g := gen.MustGenerate(spec)
	qs, err := BuildQuerySet(g, 4, 6, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	for size := 4; size <= 6; size++ {
		if len(qs.BySize[size]) != 5 {
			t.Errorf("size %d: %d queries", size, len(qs.BySize[size]))
		}
	}
	// Determinism.
	qs2, err := BuildQuerySet(g, 4, 6, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	for size := 4; size <= 6; size++ {
		for i := range qs.BySize[size] {
			a, b := qs.BySize[size][i], qs2.BySize[size][i]
			if a.Pivot != b.Pivot || a.G.NumEdges() != b.G.NumEdges() {
				t.Fatalf("size %d query %d differs between same-seed builds", size, i)
			}
		}
	}
}
