package workload

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

func buildShape(t *testing.T, n int, edges [][2]graph.NodeID) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n, len(edges))
	for i := 0; i < n; i++ {
		b.AddNode(0)
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]graph.NodeID
		want  Shape
	}{
		{"single node", 1, nil, ShapePath},
		{"single edge", 2, [][2]graph.NodeID{{0, 1}}, ShapePath},
		{"path4", 4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}}, ShapePath},
		{"star", 4, [][2]graph.NodeID{{0, 1}, {0, 2}, {0, 3}}, ShapeStar},
		{"tree", 6, [][2]graph.NodeID{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}}, ShapeTree},
		{"triangle", 3, [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}}, ShapeCycle},
		{"square", 4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, ShapeCycle},
		{"cycle+chord", 4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}, ShapeComplex},
		{"tadpole", 4, [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}, {2, 3}}, ShapeComplex},
	}
	for _, c := range cases {
		g := buildShape(t, c.n, c.edges)
		if got := Classify(g); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestShapeString(t *testing.T) {
	for s := ShapePath; s <= ShapeComplex; s++ {
		if s.String() == "" {
			t.Errorf("shape %d has empty name", s)
		}
	}
	if Shape(99).String() == "" {
		t.Error("unknown shape empty")
	}
}

// TestExtractedWorkloadSpansShapes: the RWR workloads cover several
// shape classes, as the paper claims for its query sets.
func TestExtractedWorkloadSpansShapes(t *testing.T) {
	g := graphtest.Random(300, 900, 4, 17)
	rng := rand.New(rand.NewSource(5))
	qs, err := ExtractQueries(g, 5, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	dist := ShapeDistribution(qs)
	if len(dist) < 2 {
		t.Errorf("workload covers only %d shape classes: %v", len(dist), dist)
	}
	total := 0
	for _, n := range dist {
		total += n
	}
	if total != 60 {
		t.Errorf("distribution covers %d queries, want 60", total)
	}
}
