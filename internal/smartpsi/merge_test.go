package smartpsi

import (
	"reflect"
	"testing"
	"unsafe"

	"repro/internal/psi"
)

// setInt writes v into a (possibly unexported) int64-kind field via its
// address — the test lives in-package, so this only bypasses reflect's
// settability rule, not visibility.
func setInt(f reflect.Value, v int64) {
	reflect.NewAt(f.Type(), unsafe.Pointer(f.UnsafeAddr())).Elem().SetInt(v)
}

// sumInt64 deep-sums every int64-kind field (plain counters and
// time.Durations) reachable through nested structs, skipping pointers,
// slices and non-counter scalars.
func sumInt64(v reflect.Value) int64 {
	switch v.Kind() {
	case reflect.Int64:
		return v.Int()
	case reflect.Struct:
		var t int64
		for i := 0; i < v.NumField(); i++ {
			t += sumInt64(v.Field(i))
		}
		return t
	}
	return 0
}

// TestMergeIntoCoversAllCounters is the reflection guard of the worker
// merge: every int64 counter of workerCounters (and, representatively,
// its psi.Stats blocks) must land somewhere in Result or the modelNanos
// out-param. Each field is probed alone, so a failure names the exact
// dropped (or double-counted) fields instead of reporting a count.
func TestMergeIntoCoversAllCounters(t *testing.T) {
	typ := reflect.TypeOf(workerCounters{})
	statsType := reflect.TypeOf(psi.Stats{})
	var bad []string
	probed := 0
	for i := 0; i < typ.NumField(); i++ {
		ft := typ.Field(i)
		var w workerCounters
		f := reflect.ValueOf(&w).Elem().Field(i)
		switch {
		case ft.Type.Kind() == reflect.Int64:
			setInt(f, 7)
		case ft.Type == statsType:
			// One representative Stats counter; Stats.Add has its own
			// per-field guard (TestObsStatsMergeCoversAllFields).
			setInt(f.Field(0), 7)
		default:
			// Scratch state (votesScratch, rng, shadowState) carries no
			// counts and is exempt.
			continue
		}
		probed++
		var res Result
		var modelNanos int64
		w.mergeInto(&res, &modelNanos)
		w.mergeInto(&res, &modelNanos) // twice: catches `=` where `+=` was meant
		if got := sumInt64(reflect.ValueOf(res)) + modelNanos; got != 14 {
			bad = append(bad, ft.Name)
		}
	}
	if len(bad) > 0 {
		t.Fatalf("workerCounters.mergeInto drops or double-counts fields %v; fold each counter into Result (or modelNanos) exactly once", bad)
	}
	if probed < 13 {
		t.Fatalf("probed only %d workerCounters fields; did counter fields change type?", probed)
	}
}
