package smartpsi

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/psi"
	"repro/internal/workload"
)

// TestEvaluateBudgetExpires: an already-expired budget aborts with
// psi.ErrDeadline on the slow fixture, in both the ML and the
// small-candidate paths.
func TestEvaluateBudgetExpires(t *testing.T) {
	g, q := slowFixture(t)
	// ML path (enough single-label candidates to train on).
	e, err := NewEngine(g, Options{Seed: 4, MinTrainNodes: 10, PlanSamples: 2, MaxTrainNodes: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EvaluateBudget(q, time.Now().Add(-time.Second)); err != psi.ErrDeadline {
		t.Errorf("expired budget (ML path): err = %v, want ErrDeadline", err)
	}
	// Small-candidate fallback path.
	e2, err := NewEngine(g, Options{Seed: 4, MinTrainNodes: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.EvaluateBudget(q, time.Now().Add(-time.Second)); err != psi.ErrDeadline {
		t.Errorf("expired budget (fallback path): err = %v, want ErrDeadline", err)
	}
}

// TestEvaluateBudgetGenerous: a generous budget changes nothing.
func TestEvaluateBudgetGenerous(t *testing.T) {
	e := coraEngine(t, Options{Seed: 7, PlanSamples: 2})
	rng := rand.New(rand.NewSource(13))
	query, err := workload.ExtractQuery(e.Graph(), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := e.Evaluate(query)
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := e.EvaluateBudget(query, time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(unbounded.Bindings) != len(bounded.Bindings) {
		t.Errorf("budget changed result: %d vs %d bindings",
			len(unbounded.Bindings), len(bounded.Bindings))
	}
}
