package smartpsi

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/psi"
	"repro/internal/signature"
)

// ladderFixture builds a tiny engine/evaluator pair for driving
// evaluateOne directly. Data graph: A(0)-B(1) plus C(0)-D(2); query:
// X(0)-Y(1) pivoted at X, so A matches and C is signature-prunable.
func ladderFixture(t *testing.T) (*Engine, *psi.Evaluator, []*plan.Compiled) {
	t.Helper()
	b := graph.NewBuilder(4, 2)
	b.AddNode(0)
	b.AddNode(1)
	b.AddNode(0)
	b.AddNode(2)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	e, err := NewEngine(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	qb := graph.NewBuilder(2, 1)
	qb.AddNode(0)
	qb.AddNode(1)
	if err := qb.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	q, err := graph.NewQuery(qb.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}
	qSigs, err := signature.Build(q.G, e.opts.SignatureDepth, e.sigs.Width(), e.opts.SignatureMethod)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := psi.NewEvaluator(g, q, e.sigs, qSigs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := plan.Compile(q, plan.Heuristic(q, g))
	if err != nil {
		t.Fatal(err)
	}
	return e, ev, []*plan.Compiled{c}
}

var errBoom = errors.New("boom")

// TestObsRecoveryLadderTraceSequences pins the exact trace-event
// grammar of the preemptive executor's recovery ladder (predicted →
// opposite mode → heuristic plan) for forced-timeout scenarios, using
// the deterministic evalHook instead of wall-clock budgets.
func TestObsRecoveryLadderTraceSequences(t *testing.T) {
	type step struct {
		ok  bool
		err error
	}
	deadline := psi.ErrDeadline
	cases := []struct {
		name           string
		states         map[int]step
		cached         bool      // pre-populate the prediction cache
		global         time.Time // global budget (zero: none)
		wantOK         bool
		wantErr        error
		wantKinds      []obs.EventKind
		wantFlips      int64
		wantFallbacks  int64
		wantCacheHits  int64
		wantCacheMiss  int64
		wantRecoveries int64
	}{
		{
			name:   "state1-answers-valid",
			states: map[int]step{1: {ok: true}},
			wantOK: true,
			wantKinds: []obs.EventKind{
				obs.EvCacheMiss, obs.EvModePredicted, obs.EvPlanChosen, obs.EvModeActual,
			},
			wantCacheMiss: 1,
		},
		{
			name:   "state1-answers-invalid",
			states: map[int]step{1: {ok: false}},
			wantOK: false,
			wantKinds: []obs.EventKind{
				obs.EvCacheMiss, obs.EvModePredicted, obs.EvPlanChosen, obs.EvModeActual,
			},
			wantCacheMiss: 1,
		},
		{
			name:   "timeout-then-flip-recovers",
			states: map[int]step{1: {err: deadline}, 2: {ok: true}},
			wantOK: true,
			wantKinds: []obs.EventKind{
				obs.EvCacheMiss, obs.EvModePredicted, obs.EvPlanChosen,
				obs.EvTimeout, obs.EvFlip, obs.EvModeActual,
			},
			wantFlips:      1,
			wantCacheMiss:  1,
			wantRecoveries: 1,
		},
		{
			name:   "double-timeout-then-heuristic-fallback",
			states: map[int]step{1: {err: deadline}, 2: {err: deadline}, 3: {ok: true}},
			wantOK: true,
			wantKinds: []obs.EventKind{
				obs.EvCacheMiss, obs.EvModePredicted, obs.EvPlanChosen,
				obs.EvTimeout, obs.EvFlip, obs.EvTimeout, obs.EvFallback, obs.EvModeActual,
			},
			wantFlips:      1,
			wantFallbacks:  1,
			wantCacheMiss:  1,
			wantRecoveries: 2,
		},
		{
			name:    "hard-error-aborts-ladder",
			states:  map[int]step{1: {err: errBoom}},
			wantErr: errBoom,
			wantKinds: []obs.EventKind{
				obs.EvCacheMiss, obs.EvModePredicted, obs.EvPlanChosen,
			},
			wantCacheMiss: 1,
		},
		{
			name:    "expired-global-budget-stops-recovery",
			states:  map[int]step{1: {err: deadline}},
			global:  time.Now().Add(-time.Second),
			wantErr: psi.ErrDeadline,
			wantKinds: []obs.EventKind{
				obs.EvCacheMiss, obs.EvModePredicted, obs.EvPlanChosen,
			},
			wantCacheMiss: 1,
		},
		{
			name:   "cached-decision-skips-prediction",
			states: map[int]step{1: {ok: true}},
			cached: true,
			wantOK: true,
			wantKinds: []obs.EventKind{
				obs.EvCacheHit, obs.EvModeActual,
			},
			wantCacheHits: 1,
		},
	}

	prev := obs.Enabled()
	obs.Enable(true)
	defer obs.Enable(prev)
	e, ev, compiled := ladderFixture(t)
	const u = graph.NodeID(0)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e.evalHook = func(state int, mode psi.Mode, planIdx int) (bool, error) {
				s, known := tc.states[state]
				if !known {
					t.Fatalf("ladder reached unexpected state %d", state)
				}
				return s.ok, s.err
			}
			defer func() { e.evalHook = nil }()

			var cache sync.Map
			if tc.cached {
				cache.Store(signature.Key(e.sigs.Row(u)), decision{mode: psi.Pessimistic, planIdx: 0})
			}
			tracer := obs.NewTracer(1)
			tr := tracer.StartQuery(tc.name)
			local := workerCounters{}
			st := psi.NewState(2)
			timing := newPlanTiming(len(compiled))
			recBefore := obs.SmartRecoveries.Value()

			prof := obs.NewProfile(tc.name)
			got, err := e.evaluateOne(ev, st, compiled, queryTag{name: "test"}, u, nil, nil, timing, &cache, &local, tr, prof, tc.global)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if err == nil && got != tc.wantOK {
				t.Errorf("valid = %v, want %v", got, tc.wantOK)
			}

			kinds := tr.Kinds()
			if len(kinds) != len(tc.wantKinds) {
				t.Fatalf("event kinds = %v, want %v", kinds, tc.wantKinds)
			}
			for i := range kinds {
				if kinds[i] != tc.wantKinds[i] {
					t.Fatalf("event %d = %v, want %v (full: %v vs %v)", i, kinds[i], tc.wantKinds[i], kinds, tc.wantKinds)
				}
			}
			if local.flips != tc.wantFlips || local.fallbacks != tc.wantFallbacks {
				t.Errorf("flips/fallbacks = %d/%d, want %d/%d", local.flips, local.fallbacks, tc.wantFlips, tc.wantFallbacks)
			}
			if local.cacheHits != tc.wantCacheHits || local.cacheMisses != tc.wantCacheMiss {
				t.Errorf("cache hits/misses = %d/%d, want %d/%d", local.cacheHits, local.cacheMisses, tc.wantCacheHits, tc.wantCacheMiss)
			}
			if d := obs.SmartRecoveries.Value() - recBefore; d != tc.wantRecoveries {
				t.Errorf("smartpsi_recoveries_total delta = %d, want %d", d, tc.wantRecoveries)
			}
			// Every trace event must carry the candidate's node id.
			for _, evn := range tr.Events() {
				if evn.Node != int64(u) {
					t.Errorf("event %v carries node %d, want %d", evn.Kind, evn.Node, u)
				}
			}
			// The profiler's recovery-ladder timeline must mirror the
			// states the hook ran: rung N entered iff state N executed,
			// resolved iff it returned without error.
			snap := prof.Snapshot()
			for s := 1; s <= obs.NumLadderRungs; s++ {
				var wantEntered, wantResolved int64
				if step, ran := tc.states[s]; ran {
					wantEntered = 1
					if step.err == nil {
						wantResolved = 1
					}
				}
				r := snap.Ladder[s-1]
				if r.Entered != wantEntered || r.Resolved != wantResolved {
					t.Errorf("ladder rung %d = entered %d resolved %d, want %d/%d",
						s, r.Entered, r.Resolved, wantEntered, wantResolved)
				}
			}
			if snap.CacheHits != tc.wantCacheHits || snap.CacheMisses != tc.wantCacheMiss {
				t.Errorf("profile cache hits/misses = %d/%d, want %d/%d",
					snap.CacheHits, snap.CacheMisses, tc.wantCacheHits, tc.wantCacheMiss)
			}
		})
	}
}

// TestObsScoreAlphaMispredictions checks the model-α accuracy counters
// and the mode_mispredictions metric.
func TestObsScoreAlphaMispredictions(t *testing.T) {
	prev := obs.Enabled()
	obs.Enable(true)
	defer obs.Enable(prev)
	e, _, _ := ladderFixture(t)

	tracer := obs.NewTracer(1)
	tr := tracer.StartQuery("alpha")
	local := workerCounters{}
	before := obs.SmartMispredicts.Value()

	// Optimistic prediction means "valid"; actual invalid → mispredict.
	e.scoreAlpha(&local, tr, 0, true, psi.Optimistic, 0, false)
	// Pessimistic prediction means "invalid"; actual invalid → correct.
	e.scoreAlpha(&local, tr, 1, true, psi.Pessimistic, 0, false)
	// No prediction made → not scored.
	e.scoreAlpha(&local, tr, 2, false, psi.Pessimistic, 0, true)

	if local.alphaTotal != 2 || local.alphaCorrect != 1 {
		t.Errorf("alpha = %d/%d, want 1/2", local.alphaCorrect, local.alphaTotal)
	}
	if d := obs.SmartMispredicts.Value() - before; d != 1 {
		t.Errorf("smartpsi_mode_mispredictions_total delta = %d, want 1", d)
	}
	if kinds := tr.Kinds(); len(kinds) != 3 {
		t.Errorf("every scoreAlpha call must emit mode_actual; got %v", kinds)
	}
}

// TestObsEndToEndMetricsFlow runs a real (small) SmartPSI query with
// collection enabled and checks the work counters flow through
// psi.PublishStats into the default registry, including the
// Proposition 3.2 prune counter.
func TestObsEndToEndMetricsFlow(t *testing.T) {
	prev := obs.Enabled()
	obs.Enable(true)
	defer obs.Enable(prev)

	e, _, _ := ladderFixture(t)
	qb := graph.NewBuilder(2, 1)
	qb.AddNode(0)
	qb.AddNode(1)
	if err := qb.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	q, err := graph.NewQuery(qb.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}

	recBefore := obs.PSIRecursions.Value()
	pruneBefore := obs.PSISigPrunes.Value()
	queriesBefore := obs.SmartQueries.Value()

	res, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 1 || res.Bindings[0] != 0 {
		t.Fatalf("bindings = %v, want [0]", res.Bindings)
	}
	if res.Work.Recursions == 0 {
		t.Error("Result.Work.Recursions = 0; per-query work not aggregated")
	}
	if res.Work.SigPrunes == 0 {
		t.Error("Result.Work.SigPrunes = 0; node C should be signature-pruned")
	}
	if d := obs.PSIRecursions.Value() - recBefore; d != res.Work.Recursions {
		t.Errorf("psi_recursions_total delta = %d, want %d", d, res.Work.Recursions)
	}
	if d := obs.PSISigPrunes.Value() - pruneBefore; d != res.Work.SigPrunes {
		t.Errorf("psi_sig_prunes_total delta = %d, want %d", d, res.Work.SigPrunes)
	}
	if d := obs.SmartQueries.Value() - queriesBefore; d != 1 {
		t.Errorf("smartpsi_queries_total delta = %d, want 1", d)
	}

	// The trace for the query must be retained by the default tracer.
	recent := obs.DefaultTracer.Recent()
	if len(recent) == 0 || !recent[0].Finished() {
		t.Error("default tracer did not retain a finished query trace")
	}
}
