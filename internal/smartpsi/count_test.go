package smartpsi

import (
	"testing"
	"time"

	"repro/internal/graph/graphtest"
	"repro/internal/psi"
)

func TestCountBindingsAtLeast(t *testing.T) {
	g := graphtest.Figure1Data()
	e, err := NewEngine(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := graphtest.Figure1Query() // exactly 2 bindings: u1, u6

	res, err := e.CountBindingsAtLeast(q, 1, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached || res.Count != 1 {
		t.Errorf("threshold 1: reached=%v count=%d", res.Reached, res.Count)
	}
	// Early exit: with threshold 1 only one candidate need be examined.
	if res.Examined != 1 {
		t.Errorf("threshold 1 examined %d candidates, want 1", res.Examined)
	}

	res, err = e.CountBindingsAtLeast(q, 2, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached || res.Count != 2 {
		t.Errorf("threshold 2: reached=%v count=%d", res.Reached, res.Count)
	}

	res, err = e.CountBindingsAtLeast(q, 3, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Error("threshold 3 reported reached (only 2 bindings exist)")
	}
	// Unreachability short-circuit: with 2 candidates and threshold 3,
	// no candidate needs evaluation at all.
	if res.Examined != 0 {
		t.Errorf("unreachable threshold examined %d candidates, want 0", res.Examined)
	}
}

func TestCountBindingsErrors(t *testing.T) {
	g := graphtest.Figure1Data()
	e, err := NewEngine(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := graphtest.Figure1Query()
	if _, err := e.CountBindingsAtLeast(q, 0, time.Time{}); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := e.CountBindingsAtLeast(q, 1, time.Now().Add(-time.Second)); err != psi.ErrDeadline {
		t.Errorf("expired deadline: err = %v, want ErrDeadline", err)
	}
}
