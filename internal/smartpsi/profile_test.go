package smartpsi

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/obs"
)

// profileFixture builds a labeled random graph big enough to push
// Evaluate down the ML path, plus a 3-node path query pivoted at its
// label-0 end.
func profileFixture(t *testing.T) (*Engine, graph.Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	const n = 300
	b := graph.NewBuilder(n, 4*n)
	for i := 0; i < n; i++ {
		b.AddNode(graph.Label(i % 3))
	}
	for i := 1; i < n; i++ {
		if err := b.AddEdge(graph.NodeID(i-1), graph.NodeID(i)); err != nil {
			t.Fatal(err)
		}
	}
	for b.NumEdges() < 3*n {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v && !b.HasEdge(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.MustBuild()
	e, err := NewEngine(g, Options{Seed: 2, MinTrainNodes: 10, MaxTrainNodes: 30, PlanSamples: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	qb := graph.NewBuilder(3, 2)
	qb.AddNode(0)
	qb.AddNode(1)
	qb.AddNode(2)
	if err := qb.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := qb.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	q, err := graph.NewQuery(qb.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return e, q
}

// TestObsQueryProfileEndToEnd runs a real ML-path query with collection
// and deep checking enabled and cross-checks the execution profile
// against the Result: ladder rungs vs flip/fallback counters, the cache
// split, the decision/training headers, the monotone candidate funnel,
// and the flight-recorder retention.
func TestObsQueryProfileEndToEnd(t *testing.T) {
	prevObs := obs.Enabled()
	obs.Enable(true)
	defer obs.Enable(prevObs)
	prevInv := invariant.Enabled()
	invariant.Enable(true)
	defer invariant.Enable(prevInv)

	e, q := profileFixture(t)
	res, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedML {
		t.Fatal("fixture too small: query did not take the ML path")
	}
	if res.Profile == nil {
		t.Fatal("Result.Profile is nil with collection enabled")
	}
	snap := res.Profile.Snapshot()
	if !snap.Finished {
		t.Error("profile not finished")
	}
	if snap.Method != "ml" {
		t.Errorf("profile method = %q, want \"ml\"", snap.Method)
	}
	if snap.Candidates != res.Candidates {
		t.Errorf("profile candidates = %d, Result has %d", snap.Candidates, res.Candidates)
	}
	if snap.Bindings != len(res.Bindings) {
		t.Errorf("profile bindings = %d, Result has %d", snap.Bindings, len(res.Bindings))
	}
	if snap.TrainedNodes != res.TrainedNodes || snap.PlanClasses != res.PlanClasses {
		t.Errorf("profile training = %d nodes / %d classes, Result has %d/%d",
			snap.TrainedNodes, snap.PlanClasses, res.TrainedNodes, res.PlanClasses)
	}
	if snap.CacheHits != res.CacheHits || snap.CacheMisses != res.CacheMisses {
		t.Errorf("profile cache = %d/%d, Result has %d/%d",
			snap.CacheHits, snap.CacheMisses, res.CacheHits, res.CacheMisses)
	}

	// Ladder vs PR-2 recovery counters: every non-training candidate
	// enters rung 1; flips enter rung 2; fallbacks enter rung 3.
	nonTraining := int64(res.Candidates - res.TrainedNodes)
	if got := snap.Ladder[obs.LadderPredicted].Entered; got != nonTraining {
		t.Errorf("rung 1 entered = %d, want %d (candidates − training set)", got, nonTraining)
	}
	if got := snap.Ladder[obs.LadderOpposite].Entered; got != res.Flips {
		t.Errorf("rung 2 entered = %d, want Result.Flips = %d", got, res.Flips)
	}
	if got := snap.Ladder[obs.LadderHeuristic].Entered; got != res.Fallbacks {
		t.Errorf("rung 3 entered = %d, want Result.Fallbacks = %d", got, res.Fallbacks)
	}

	// Candidate funnel: present, monotone non-increasing per depth, and
	// consistent with the evaluator's aggregate work counters.
	fun := res.Profile.FunnelSnapshot()
	if fun == nil || len(fun.Depths) == 0 {
		t.Fatal("profile has no candidate funnel")
	}
	if len(fun.Depths) != q.Size() {
		t.Errorf("funnel has %d depths, query has %d nodes", len(fun.Depths), q.Size())
	}
	if err := invariant.CheckFunnel(fun); err != nil {
		t.Errorf("funnel violates monotonicity: %v", err)
	}
	tot := fun.Totals()
	if tot.Generated == 0 || tot.Matched == 0 {
		t.Errorf("funnel totals = %+v; expected non-empty generated and matched", tot)
	}
	if tot.Generated != res.Work.Candidates {
		t.Errorf("funnel generated = %d, Work.Candidates = %d", tot.Generated, res.Work.Candidates)
	}
	if int64(len(res.Bindings)) > fun.Depths[0].Matched {
		t.Errorf("depth-0 matched = %d < %d bindings", fun.Depths[0].Matched, len(res.Bindings))
	}

	// Work map mirrors Result.Work through the statsPublishers table.
	if got := snap.Work["psi_recursions_total"]; got != res.Work.Recursions {
		t.Errorf("work[psi_recursions_total] = %d, want %d", got, res.Work.Recursions)
	}
	if got := snap.Work["psi_matches_total"]; got != res.Work.Matches {
		t.Errorf("work[psi_matches_total] = %d, want %d", got, res.Work.Matches)
	}
	if res.Work.Matches == 0 {
		t.Error("Work.Matches = 0; match counting not wired")
	}

	// The flight recorder must retain the profile.
	if obs.DefaultRecorder.Lookup(snap.ID) == nil {
		t.Error("default flight recorder did not retain the query profile")
	}
}

// TestObsQueryProfileSmallPath pins the non-ML path: method label,
// funnel coverage and outcome for a candidate set below MinTrainNodes.
func TestObsQueryProfileSmallPath(t *testing.T) {
	prev := obs.Enabled()
	obs.Enable(true)
	defer obs.Enable(prev)

	e, _, _ := ladderFixture(t)
	qb := graph.NewBuilder(2, 1)
	qb.AddNode(0)
	qb.AddNode(1)
	if err := qb.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	q, err := graph.NewQuery(qb.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedML {
		t.Fatal("two candidates must not take the ML path")
	}
	snap := res.Profile.Snapshot()
	if snap.Method != "pessimistic-heuristic" {
		t.Errorf("method = %q, want \"pessimistic-heuristic\"", snap.Method)
	}
	if snap.Bindings != 1 {
		t.Errorf("bindings = %d, want 1", snap.Bindings)
	}
	fun := res.Profile.FunnelSnapshot()
	if fun == nil || fun.Totals().Generated == 0 {
		t.Fatal("small path recorded no funnel")
	}
	if err := invariant.CheckFunnel(fun); err != nil {
		t.Errorf("funnel violates monotonicity: %v", err)
	}
	if fun.Depths[0].Generated != 2 {
		t.Errorf("depth-0 generated = %d, want 2 (both label-0 candidates)", fun.Depths[0].Generated)
	}
}

// TestObsQueryProfileDisabled pins that with collection off no profile
// is allocated and evaluation still works.
func TestObsQueryProfileDisabled(t *testing.T) {
	prev := obs.Enabled()
	obs.Enable(false)
	defer obs.Enable(prev)

	e, q := profileFixture(t)
	res, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Error("Result.Profile must be nil with collection disabled")
	}
	// The nil profile must still render (nil-safe ProfileData).
	if d := res.Profile.Snapshot(); d.ID != 0 {
		t.Errorf("nil profile snapshot = %+v", d)
	}
	if res.Work.Recursions == 0 {
		t.Error("work counters must accumulate regardless of collection")
	}
}
