package smartpsi

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/psi"
	"repro/internal/signature"
)

// CountResult reports a threshold count query.
type CountResult struct {
	// Reached is true when at least Threshold distinct bindings exist.
	Reached bool
	// Count is the number of bindings found before stopping: exactly
	// Threshold when Reached, the exact total otherwise.
	Count int
	// Examined is the number of candidates evaluated before the
	// decision (early exit makes this less than the candidate total).
	Examined int
	Elapsed  time.Duration
}

// CountBindingsAtLeast decides whether q has at least threshold distinct
// pivot bindings, stopping as soon as the answer is known in either
// direction — the primitive frequent-subgraph mining needs for MNI
// support (Section 5.5). Candidates are evaluated pessimistically with
// the heuristic plan: threshold queries evaluate only a slice of the
// candidates, which is too few to amortize model training.
func (e *Engine) CountBindingsAtLeast(q graph.Query, threshold int, deadline time.Time) (CountResult, error) {
	start := time.Now()
	if threshold < 1 {
		return CountResult{}, fmt.Errorf("smartpsi: threshold %d < 1", threshold)
	}
	if err := q.Validate(); err != nil {
		return CountResult{}, fmt.Errorf("smartpsi: %w", err)
	}
	if q.G.NumLabels() > e.sigs.Width() {
		return CountResult{}, fmt.Errorf("smartpsi: query uses %d labels, data graph only %d", q.G.NumLabels(), e.sigs.Width())
	}
	qSigs, err := signature.Build(q.G, e.opts.SignatureDepth, e.sigs.Width(), e.opts.SignatureMethod)
	if err != nil {
		return CountResult{}, err
	}
	ev, err := psi.NewEvaluator(e.g, q, e.sigs, qSigs)
	if err != nil {
		return CountResult{}, err
	}
	c, err := plan.Compile(q, plan.Heuristic(q, e.g))
	if err != nil {
		return CountResult{}, err
	}

	res := CountResult{}
	candidates := e.g.NodesWithLabel(q.G.Label(q.Pivot))
	st := psi.NewState(q.Size())
	for i, u := range candidates {
		// Even if every remaining candidate matched, could we reach the
		// threshold? If not, the answer is already "no".
		if res.Count+(len(candidates)-i) < threshold {
			break
		}
		ok, err := ev.Evaluate(st, c, u, psi.Pessimistic, psi.Limits{Deadline: deadline})
		if err != nil {
			return res, err
		}
		res.Examined++
		if ok {
			res.Count++
			if res.Count >= threshold {
				res.Reached = true
				break
			}
		}
	}
	res.Elapsed = time.Since(start)
	psi.PublishStats(st.Stats())
	return res, nil
}
