package smartpsi

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/psi"
)

// auditFixture builds a modest 2-hop-query workload over a sparse
// random graph: cheap per-candidate evaluations, enough label-0
// candidates to enter the ML path with MinTrainNodes=10.
func auditFixture(t *testing.T) (*graph.Graph, graph.Query) {
	t.Helper()
	const n, m = 300, 900
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddNode(graph.Label(i % 3))
	}
	for b.NumEdges() < m {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v && !b.HasEdge(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.MustBuild()
	qb := graph.NewBuilder(3, 2)
	qb.AddNode(0)
	qb.AddNode(1)
	qb.AddNode(2)
	if err := qb.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := qb.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	// Pivot at the middle node: two distinct matching orders exist
	// ([1,0,2] and [1,2,0]), so plan.Sample with PlanSamples=2 yields
	// two plan classes and the plan-audit path is exercised.
	q, err := graph.NewQuery(qb.MustBuild(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return g, q
}

func auditOptions(rate float64) Options {
	return Options{
		Seed:              3,
		MinTrainNodes:     10,
		MaxTrainNodes:     20,
		PlanSamples:       2,
		DisablePreemption: true, // rung 1 always resolves: deterministic
		ShadowRate:        rate,
		PlanShadowRate:    rate,
	}
}

// TestShadowRungOneOnly pins the audit call sites with deterministic
// hooks: a shadow may run only after a rung-1 resolution — never when
// the recovery ladder advanced to rung 2 or 3.
func TestShadowRungOneOnly(t *testing.T) {
	prev := obs.Enabled()
	obs.Enable(true)
	defer obs.Enable(prev)

	cases := []struct {
		name       string
		states     map[int]bool // ladder state -> resolves (false: ErrDeadline)
		wantShadow int64
	}{
		{"rung1-resolves-audited", map[int]bool{1: true}, 1},
		{"rung2-flip-never-audited", map[int]bool{1: false, 2: true}, 0},
		{"rung3-fallback-never-audited", map[int]bool{1: false, 2: false, 3: true}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, ev, compiled := ladderFixture(t)
			e.opts.ShadowRate = 1 // audit every eligible decision
			e.evalHook = func(state int, mode psi.Mode, planIdx int) (bool, error) {
				if ok, known := tc.states[state]; known {
					if ok {
						return true, nil
					}
					return false, psi.ErrDeadline
				}
				t.Fatalf("ladder reached unexpected state %d", state)
				return false, nil
			}
			var shadowCalls int64
			e.shadowHook = func(mode psi.Mode, planIdx int) (bool, error) {
				shadowCalls++
				return true, nil // agree with the primary verdict
			}

			var cache sync.Map
			local := workerCounters{rng: newShadowRNG(1, 0)}
			st := psi.NewState(2)
			timing := newPlanTiming(len(compiled))
			tracer := obs.NewTracer(1)
			tr := tracer.StartQuery(tc.name)
			got, err := e.evaluateOne(ev, st, compiled, queryTag{name: "test"}, 0, nil, nil, timing, &cache, &local, tr, nil, time.Time{})
			if err != nil {
				t.Fatal(err)
			}
			if !got {
				t.Errorf("primary verdict = false, want true")
			}
			if shadowCalls != tc.wantShadow {
				t.Errorf("shadow hook ran %d times, want %d", shadowCalls, tc.wantShadow)
			}
			if local.shadowModeRuns != tc.wantShadow {
				t.Errorf("shadowModeRuns = %d, want %d", local.shadowModeRuns, tc.wantShadow)
			}
			// The shadow event (if any) must follow the primary's
			// mode_actual: audits run strictly after the verdict.
			kinds := tr.Kinds()
			sawActual := false
			for _, k := range kinds {
				if k == obs.EvModeActual {
					sawActual = true
				}
				if k == obs.EvShadow && !sawActual {
					t.Errorf("shadow event before mode_actual in %v", kinds)
				}
			}
		})
	}
}

// TestShadowMismatchDetection: a shadow verdict disagreeing with the
// primary is a soundness signal — counted always, an invariant
// violation with deep checking on — but the primary verdict must stand.
func TestShadowMismatchDetection(t *testing.T) {
	prev := obs.Enabled()
	obs.Enable(true)
	defer obs.Enable(prev)

	run := func(t *testing.T) (bool, error, int64) {
		e, ev, compiled := ladderFixture(t)
		e.opts.ShadowRate = 1
		e.evalHook = func(state int, mode psi.Mode, planIdx int) (bool, error) { return true, nil }
		e.shadowHook = func(mode psi.Mode, planIdx int) (bool, error) { return false, nil } // contradict
		var cache sync.Map
		local := workerCounters{rng: newShadowRNG(1, 0)}
		st := psi.NewState(2)
		before := obs.DefaultModelStats.Snapshot().ShadowMismatches
		got, err := e.evaluateOne(ev, st, compiled, queryTag{name: "test"}, 0, nil, nil, newPlanTiming(len(compiled)), &cache, &local, nil, nil, time.Time{})
		return got, err, obs.DefaultModelStats.Snapshot().ShadowMismatches - before
	}

	t.Run("invariants-off-primary-stands", func(t *testing.T) {
		if invariant.Enabled() {
			t.Skip("deep checking forced on")
		}
		got, err, mismatches := run(t)
		if err != nil {
			t.Fatalf("err = %v; a disagreeing shadow must not fail the query without deep checking", err)
		}
		if !got {
			t.Error("primary verdict flipped by shadow run; audits must never mutate the result")
		}
		if mismatches != 1 {
			t.Errorf("shadow mismatch count delta = %d, want 1", mismatches)
		}
	})
	t.Run("invariants-on-violation", func(t *testing.T) {
		invariant.Enable(true)
		defer invariant.Enable(false)
		_, err, _ := run(t)
		if err == nil {
			t.Fatal("want shadow-agreement violation with deep checking on, got nil")
		}
		var v *invariant.Violation
		if !errors.As(err, &v) {
			t.Fatalf("err = %T %v, want *invariant.Violation", err, err)
		}
	})
}

// TestShadowContextInvariants pins the two illegal audit sites.
func TestShadowContextInvariants(t *testing.T) {
	if err := invariant.CheckShadowContext(5, 1, false); err != nil {
		t.Errorf("rung-1 non-training shadow flagged: %v", err)
	}
	if err := invariant.CheckShadowContext(5, 2, false); err == nil {
		t.Error("rung-2 shadow not flagged; shadows may only follow rung-1 resolutions")
	}
	if err := invariant.CheckShadowContext(5, 1, true); err == nil {
		t.Error("training-node shadow not flagged; training nodes are labeled by the sweep")
	}
	if err := invariant.CheckShadowAgreement("mode", 5, true, true); err != nil {
		t.Errorf("agreeing shadow flagged: %v", err)
	}
	if err := invariant.CheckShadowAgreement("mode", 5, true, false); err == nil {
		t.Error("disagreeing shadow not flagged")
	}
}

// TestShadowDoesNotPerturbPrimary runs the same workload with auditing
// off and fully on: bindings, primary work and model accuracy must be
// bit-identical, shadow work must stay out of Result.Work, and the
// audit counters must respect the non-training candidate budget.
//
// PlanSamples is pinned to 1 here: with two or more plans the β model
// trains on wall-clock sweep timings, so plan choices (and Work) are
// not reproducible run-to-run regardless of auditing. Plan audits are
// covered by TestShadowPlanAudits.
func TestShadowDoesNotPerturbPrimary(t *testing.T) {
	g, q := auditFixture(t)

	opts0 := auditOptions(0)
	opts0.PlanSamples = 1
	base, err := NewEngine(g, opts0)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := base.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	opts := auditOptions(1)
	opts.PlanSamples = 1
	opts.DecisionLog = obs.NewDecisionLog(&buf, 0)
	audited, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := audited.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}

	if !res0.UsedML || !res1.UsedML {
		t.Fatalf("fixture too small: UsedML = %v/%v, want true", res0.UsedML, res1.UsedML)
	}
	if !reflect.DeepEqual(res0.Bindings, res1.Bindings) {
		t.Errorf("bindings differ with auditing on: %d vs %d nodes", len(res0.Bindings), len(res1.Bindings))
	}
	if res0.Work != res1.Work {
		t.Errorf("primary Work differs with auditing on:\n  off: %+v\n  on:  %+v", res0.Work, res1.Work)
	}
	if res0.Alpha != res1.Alpha {
		t.Errorf("Alpha differs with auditing on: %+v vs %+v", res0.Alpha, res1.Alpha)
	}

	if res0.ShadowModeRuns != 0 || res0.ShadowWork.Total() != 0 {
		t.Errorf("ShadowRate=0 but shadow runs %d, shadow work %d", res0.ShadowModeRuns, res0.ShadowWork.Total())
	}
	nonTraining := int64(res1.Candidates - res1.TrainedNodes)
	if res1.ShadowModeRuns == 0 {
		t.Error("ShadowRate=1 but no mode shadows ran")
	}
	if res1.ShadowModeRuns > nonTraining {
		t.Errorf("mode shadows %d exceed the %d non-training candidates; training nodes must never be audited",
			res1.ShadowModeRuns, nonTraining)
	}
	if res1.ShadowPlanRuns != 0 {
		t.Errorf("PlanSamples=1 but %d plan shadows ran; there is no alternative plan to audit", res1.ShadowPlanRuns)
	}
	if res1.ShadowWork.Total() == 0 {
		t.Error("shadow runs executed but ShadowWork is empty")
	}

	// The decision log captured the audits even without obs collection.
	if opts.DecisionLog.Written() == 0 {
		t.Error("decision log empty with ShadowRate=1")
	}
	if err := opts.DecisionLog.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadDecisionLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var modeRecs int64
	for _, r := range recs {
		if r.Kind == obs.DecisionKindMode {
			modeRecs++
		}
	}
	if modeRecs != res1.ShadowModeRuns {
		t.Errorf("log has %d mode records, Result reports %d shadow mode runs", modeRecs, res1.ShadowModeRuns)
	}
}

// TestShadowPlanAudits exercises the plan-audit path: with two plan
// classes and PlanShadowRate=1, sampled rung-1 decisions re-run a
// random alternative plan, plan regret accumulates, and the decision
// log captures plan records. The primary verdict set must be the one
// invariant that survives β-timing noise: the binding count is pinned.
func TestShadowPlanAudits(t *testing.T) {
	g, q := auditFixture(t)

	var buf bytes.Buffer
	opts := auditOptions(1) // PlanSamples: 2
	opts.DecisionLog = obs.NewDecisionLog(&buf, 0)
	e, err := NewEngine(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedML {
		t.Fatal("fixture too small: UsedML = false")
	}
	if res.PlanClasses < 2 {
		t.Fatalf("PlanClasses = %d, want >= 2 (pivot-centered path query should admit two orders)", res.PlanClasses)
	}
	if res.ShadowPlanRuns == 0 {
		t.Error("PlanShadowRate=1 with 2 plans but no plan shadows ran")
	}
	nonTraining := int64(res.Candidates - res.TrainedNodes)
	if res.ShadowPlanRuns > nonTraining {
		t.Errorf("plan shadows %d exceed the %d non-training candidates", res.ShadowPlanRuns, nonTraining)
	}

	if err := opts.DecisionLog.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := obs.ReadDecisionLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var planRecs int64
	for _, r := range recs {
		if r.Kind == obs.DecisionKindPlan {
			planRecs++
			if r.ShadowPlan == r.PredPlan && !r.ShadowTimeout {
				t.Errorf("plan record audits the predicted plan %d against itself", r.PredPlan)
			}
		}
	}
	if planRecs != res.ShadowPlanRuns {
		t.Errorf("log has %d plan records, Result reports %d shadow plan runs", planRecs, res.ShadowPlanRuns)
	}
}
