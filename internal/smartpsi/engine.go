// Package smartpsi implements the paper's full system (Section 4.2): a
// PSI engine that trains, per query, a Random-Forest node-type
// classifier (model α) to pick the optimistic or pessimistic evaluation
// method per candidate node, and a multi-class plan classifier (model β)
// to pick a search order, with a signature-keyed prediction cache and a
// preemptive query processor that detects and recovers from wrong
// predictions (Section 4.3).
package smartpsi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/psi"
	"repro/internal/signature"
)

// Options configures an Engine. The zero value gives the paper's
// defaults.
type Options struct {
	// SignatureDepth is the propagation depth D (default 2).
	SignatureDepth int
	// SignatureMethod picks the signature construction (default Matrix,
	// the paper's optimized strategy).
	SignatureMethod signature.Method
	// TrainFraction is the share of candidate nodes used for training
	// (default 0.10), capped by MaxTrainNodes.
	TrainFraction float64
	// MaxTrainNodes caps the training set (default 1000, the paper's
	// experimental setting).
	MaxTrainNodes int
	// MinTrainNodes is the smallest candidate set worth training on;
	// below it the engine just evaluates every candidate pessimistically
	// with the heuristic plan (default 64 — with fewer candidates the
	// models cannot amortize their training cost).
	MinTrainNodes int
	// PlanSamples is the number of candidate plans evaluated for model β
	// (default 6; the heuristic plan is always among them).
	PlanSamples int
	// PlanSweepNodes caps how many training nodes run the full per-plan
	// sweep that labels model β (default 100). Remaining training nodes
	// are evaluated once, under the heuristic plan, for model α only —
	// keeping the Table 4 overhead proportional to the plan count on
	// large candidate sets.
	PlanSweepNodes int
	// PlanTimeLimit is the initial per-plan time limit during β training
	// (default 2ms), doubled until some plan finishes (Section 4.2.2).
	PlanTimeLimit time.Duration
	// Forest configures both classifiers.
	Forest ml.ForestConfig
	// Threads is the number of candidate-evaluation workers (default 1;
	// Figure 9 uses 2 for parity with the two-threaded baseline).
	Threads int
	// Seed drives all sampling (training-set choice, plan sampling, and
	// the deterministic per-worker shadow-sampling streams).
	Seed int64

	// ShadowRate is the model-decision audit sampling rate (default 0 =
	// off): on that fraction of non-training candidates whose primary
	// evaluation resolves at recovery-ladder rung 1, the engine also
	// runs the *opposite* method as a shadow and records the decision's
	// regret (max(0, primary − counterfactual) wall time). The same rate
	// samples cache hits for cache-quality audits (cached decision vs a
	// fresh model prediction). Rate 1 audits every eligible decision —
	// the deterministic seam tests use. Shadow work is accounted in
	// Result.ShadowWork, never in Result.Work.
	ShadowRate float64
	// PlanShadowRate samples shadow runs of a random *alternative plan*
	// under the same method (model-β audit). Zero defaults to
	// ShadowRate/4 — plan counterfactuals are costlier and noisier, so
	// they run at a lower rate.
	PlanShadowRate float64
	// DecisionLog, when non-nil, captures one schema-versioned JSONL
	// record per audited decision (see obs.DecisionRecord); replay it
	// with cmd/psi-decisions. Only audited decisions are logged, so
	// ShadowRate=0 writes nothing.
	DecisionLog *obs.DecisionLog
	// Drift configures the model-α accuracy drift detector fed by every
	// scored prediction across the engine's lifetime (zero: defaults —
	// window 64, threshold 0.2). Events raise
	// smartpsi_model_drift_events_total and annotate the query trace.
	Drift ml.DriftConfig

	// Ablation switches (all false in the full system).
	DisableCache      bool // skip the Section 4.2.3 prediction cache
	DisablePlanModel  bool // always use the heuristic plan (no model β)
	DisablePreemption bool // no Section 4.3 detection & recovery
	DisableTypeModel  bool // always predict "invalid" (pessimistic only)
}

// planShadowRate resolves the effective model-β shadow rate.
func (o Options) planShadowRate() float64 {
	if o.PlanShadowRate > 0 {
		return o.PlanShadowRate
	}
	return o.ShadowRate / 4
}

// auditing reports whether any decision audit can trigger.
func (o Options) auditing() bool { return o.ShadowRate > 0 || o.PlanShadowRate > 0 }

func (o Options) withDefaults() Options {
	if o.SignatureDepth <= 0 {
		o.SignatureDepth = signature.DefaultDepth
	}
	if o.TrainFraction <= 0 {
		o.TrainFraction = 0.10
	}
	if o.MaxTrainNodes <= 0 {
		o.MaxTrainNodes = 1000
	}
	if o.MinTrainNodes <= 0 {
		o.MinTrainNodes = 64
	}
	if o.PlanSamples <= 0 {
		o.PlanSamples = 6
	}
	if o.PlanSweepNodes <= 0 {
		o.PlanSweepNodes = 100
	}
	if o.PlanTimeLimit <= 0 {
		o.PlanTimeLimit = 2 * time.Millisecond
	}
	if o.Threads <= 0 {
		o.Threads = 1
	}
	return o
}

// Engine evaluates PSI queries over one data graph. Constructing an
// Engine loads the graph and computes all node signatures once
// (SmartPSI's startup phase); each Evaluate call then trains its
// per-query models and runs the candidates.
//
// An Engine is immutable after construction and safe for concurrent
// Evaluate calls; every call builds its own models, cache and scratch.
type Engine struct {
	g    *graph.Graph
	sigs *signature.Signatures
	opts Options

	// SignatureBuildTime records the one-off startup cost (Figure 8).
	SignatureBuildTime time.Duration

	// evalHook, when non-nil, replaces the candidate evaluation call in
	// evaluateOne with a deterministic stand-in keyed by the recovery
	// state (1, 2, 3). Only the recovery-ladder tests set it, to force
	// exact timeout sequences without depending on wall-clock budgets.
	evalHook func(state int, mode psi.Mode, planIdx int) (bool, error)
	// shadowHook, when non-nil, replaces the counterfactual evaluation
	// inside shadow audits with a deterministic stand-in keyed by the
	// shadow's (mode, plan). Only the shadow-audit tests set it — paired
	// with evalHook it pins the exact audit call sites without timing.
	shadowHook func(mode psi.Mode, planIdx int) (bool, error)

	// drift is the model-α accuracy drift detector, fed by every scored
	// prediction across the engine's lifetime (Options.Drift). Candidate
	// workers run concurrently, so driftMu serializes Observe.
	driftMu sync.Mutex
	drift   *ml.DriftDetector
}

// NewEngine builds an engine over g, computing node signatures with the
// configured method.
func NewEngine(g *graph.Graph, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	start := time.Now()
	sigs, err := signature.Build(g, opts.SignatureDepth, g.NumLabels(), opts.SignatureMethod)
	if err != nil {
		return nil, fmt.Errorf("smartpsi: %w", err)
	}
	buildTime := time.Since(start)
	if obs.Enabled() {
		obs.SmartEngineBuilds.Inc()
		obs.SmartSigBuildSecs.Observe(buildTime.Seconds())
	}
	return &Engine{
		g:                  g,
		sigs:               sigs,
		opts:               opts,
		SignatureBuildTime: buildTime,
		drift:              ml.NewDriftDetector(opts.Drift),
	}, nil
}

// NewEngineWithSignatures builds an engine that reuses externally
// maintained signatures (e.g. package dyngraph's incrementally updated
// rows) instead of recomputing them. The signatures must cover every
// node of g, be at least as wide as g's label alphabet, and have been
// built with the matrix recurrence at the options' depth — query-side
// signatures are always matrix-built, and satisfaction is only sound
// when both sides count walks the same way.
func NewEngineWithSignatures(g *graph.Graph, sigs *signature.Signatures, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	opts.SignatureMethod = signature.Matrix
	if sigs.NumNodes() != g.NumNodes() {
		return nil, fmt.Errorf("smartpsi: signatures cover %d nodes, graph has %d", sigs.NumNodes(), g.NumNodes())
	}
	if sigs.Width() < g.NumLabels() {
		return nil, fmt.Errorf("smartpsi: signature width %d < graph labels %d", sigs.Width(), g.NumLabels())
	}
	if sigs.Depth() != opts.SignatureDepth {
		return nil, fmt.Errorf("smartpsi: signature depth %d, options want %d", sigs.Depth(), opts.SignatureDepth)
	}
	return &Engine{g: g, sigs: sigs, opts: opts, drift: ml.NewDriftDetector(opts.Drift)}, nil
}

// DriftEvents returns the cumulative model-α drift-event count raised by
// this engine's detector (see Options.Drift).
func (e *Engine) DriftEvents() int64 {
	e.driftMu.Lock()
	defer e.driftMu.Unlock()
	return e.drift.Events()
}

// Graph returns the engine's data graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Signatures returns the engine's data-node signatures.
func (e *Engine) Signatures() *signature.Signatures { return e.sigs }

// Options returns the engine's effective (defaulted) options.
func (e *Engine) Options() Options { return e.opts }
