package smartpsi

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/psi"
	"repro/internal/signature"
)

func TestPlanTimingMaxTime(t *testing.T) {
	pt := newPlanTiming(3)
	// No observations anywhere: the floor applies.
	if got := pt.maxTime(psi.Optimistic, 0); got != minDeadline {
		t.Errorf("empty maxTime = %v, want floor %v", got, minDeadline)
	}
	// Direct observation: 2x the average.
	pt.record(psi.Optimistic, 0, 10*time.Millisecond)
	pt.record(psi.Optimistic, 0, 20*time.Millisecond)
	if got := pt.maxTime(psi.Optimistic, 0); got != 30*time.Millisecond {
		t.Errorf("maxTime = %v, want 30ms (2x avg of 15ms)", got)
	}
	// Missing mode borrows the other method's average for the plan.
	if got := pt.maxTime(psi.Pessimistic, 0); got != 30*time.Millisecond {
		t.Errorf("borrowed maxTime = %v, want 30ms", got)
	}
	// Missing plan falls back to any recorded average.
	if got := pt.maxTime(psi.Pessimistic, 2); got != 30*time.Millisecond {
		t.Errorf("fallback maxTime = %v, want 30ms", got)
	}
	// Tiny averages are floored.
	pt2 := newPlanTiming(1)
	pt2.record(psi.Pessimistic, 0, time.Nanosecond)
	if got := pt2.maxTime(psi.Pessimistic, 0); got != minDeadline {
		t.Errorf("floored maxTime = %v, want %v", got, minDeadline)
	}
}

// slowFixture builds a dense one-label blob whose 6-cycle query takes
// well over minDeadline per candidate, plus the query itself.
func slowFixture(t *testing.T) (*graph.Graph, graph.Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	b := graph.NewBuilder(400, 8000)
	for i := 0; i < 400; i++ {
		b.AddNode(0)
	}
	for b.NumEdges() < 8000 {
		u, v := graph.NodeID(rng.Intn(400)), graph.NodeID(rng.Intn(400))
		if u != v && !b.HasEdge(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.MustBuild()
	qb := graph.NewBuilder(7, 7)
	for i := 0; i < 7; i++ {
		qb.AddNode(0)
	}
	for i := graph.NodeID(0); i < 7; i++ {
		if err := qb.AddEdge(i, (i+1)%7); err != nil {
			t.Fatal(err)
		}
	}
	q, err := graph.NewQuery(qb.MustBuild(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return g, q
}

// TestPreemptionRecovers drives evaluateOne directly with artificially
// tiny timing averages so state 1 and state 2 both time out and the
// state-3 heuristic fallback must produce the (correct) answer.
func TestPreemptionRecovers(t *testing.T) {
	g, q := slowFixture(t)
	e, err := NewEngine(g, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	qSigs, err := signature.Build(q.G, e.opts.SignatureDepth, e.sigs.Width(), e.opts.SignatureMethod)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := psi.NewEvaluator(g, q, e.sigs, qSigs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := plan.Compile(q, plan.Heuristic(q, g))
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth for one candidate (dense blob: the cycle exists).
	st := psi.NewState(q.Size())
	want, err := ev.Evaluate(st, c, 0, psi.Pessimistic, psi.Limits{})
	if err != nil {
		t.Fatal(err)
	}

	timing := newPlanTiming(1)
	timing.record(psi.Optimistic, 0, time.Nanosecond) // floor (200us) applies
	var cache sync.Map
	local := workerCounters{}
	got, err := e.evaluateOne(ev, st, []*plan.Compiled{c}, queryTag{name: "test"}, 0, nil, nil, timing, &cache, &local, nil, nil, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("preempted evaluation = %v, ground truth %v", got, want)
	}
	if local.flips == 0 {
		t.Skip("node evaluated under 200us on this machine; preemption never fired")
	}
	// If state 2 also timed out we must have fallen back.
	if local.fallbacks > local.flips {
		t.Errorf("fallbacks %d > flips %d", local.fallbacks, local.flips)
	}
}

// TestPreemptionDisabled: with DisablePreemption no deadline is set and
// the counters stay zero even on the slow fixture.
func TestPreemptionDisabledCounters(t *testing.T) {
	g, q := slowFixture(t)
	e, err := NewEngine(g, Options{Seed: 4, DisablePreemption: true, MinTrainNodes: 10, PlanSamples: 2,
		MaxTrainNodes: 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 0 || res.Fallbacks != 0 {
		t.Errorf("preemption disabled but flips=%d fallbacks=%d", res.Flips, res.Fallbacks)
	}
}
