package smartpsi

// Shadow scoring (model-decision audits). With Options.ShadowRate > 0
// the engine re-evaluates a sampled fraction of its model decisions
// against a counterfactual — the opposite method (model-α audit) or a
// random alternative plan (model-β audit) — and records the decision's
// regret: max(0, primary − counterfactual) wall time. The same rate
// samples prediction-cache hits for cache-quality audits (cached
// decision vs a fresh model prediction; no extra evaluation).
//
// Audits never influence the primary result. A shadow run uses its own
// psi.State (its work lands in Result.ShadowWork, never Result.Work),
// runs only after the primary verdict is established, and fires only
// for non-training candidates whose primary evaluation resolved at
// recovery-ladder rung 1 — training nodes are labeled by the training
// sweep, and rungs 2–3 are themselves counterfactual re-runs
// (invariant.CheckShadowContext pins both exclusions).

import (
	"math/rand"
	"time"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/psi"
)

// shadowBudgetFactor bounds a counterfactual run relative to its
// primary: a shadow may take at most 16x the primary's wall time before
// it is censored (ShadowTimeout, regret 0). Censoring keeps a good
// primary decision from paying an unbounded audit bill — knowing the
// counterfactual is ≥16x slower is enough to score the decision.
const shadowBudgetFactor = 16

// shadowSeed derives worker w's deterministic sampling stream from the
// engine seed (splitmix64's golden-ratio increment keeps streams
// decorrelated across workers).
func shadowSeed(seed int64, w int) int64 {
	return seed ^ (int64(w)+1)*-0x61c8864680b583eb // 0x9e3779b97f4a7c15 as int64
}

// shadowSampled is the audit sampling gate: every shadow call site must
// sit behind it (the psilint shadowgate rule enforces this). Rates ≥ 1
// short-circuit without consuming randomness, so ShadowRate=1 tests get
// deterministic audit schedules regardless of RNG state.
func (w *workerCounters) shadowSampled(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return w.rng.Float64() < rate
}

// auditDecision runs the sampled audits for one candidate whose primary
// evaluation resolved at recovery-ladder rung 1. dec is the decision
// that produced the primary run (mode, plan, vote margin), cached marks
// decisions served by the prediction cache, actualValid is the primary
// verdict and primary its wall time. Audit evaluation errors propagate
// (a failing evaluator is a real error even on the audit path), as do
// invariant violations when deep checking is on.
func (e *Engine) auditDecision(ev *psi.Evaluator, compiled []*plan.Compiled, tag queryTag,
	u graph.NodeID, row []float64, dec decision, cached bool, actualValid bool,
	primary time.Duration, alphaModel, betaModel *ml.Forest,
	local *workerCounters, tr *obs.QueryTrace, prof *obs.Profile, global time.Time) error {

	if invariant.Enabled() {
		// This call site is structurally rung-1 and non-training; the
		// check documents (and pins) that contract.
		if err := invariant.CheckShadowContext(int64(u), 1, false); err != nil {
			return err
		}
	}
	if cached {
		if local.shadowSampled(e.opts.ShadowRate) {
			e.shadowCacheCheck(tag, u, row, dec, len(compiled), actualValid, alphaModel, betaModel, local, prof)
		}
	}
	if local.shadowSampled(e.opts.ShadowRate) {
		if err := e.shadowModeRun(ev, compiled, tag, u, row, dec, cached, actualValid, primary, local, tr, prof, global); err != nil {
			return err
		}
	}
	if len(compiled) > 1 {
		if local.shadowSampled(e.opts.planShadowRate()) {
			if err := e.shadowPlanRun(ev, compiled, tag, u, row, dec, cached, actualValid, primary, local, tr, prof, global); err != nil {
				return err
			}
		}
	}
	return nil
}

// shadowModeRun audits model α: re-evaluate u with the opposite method
// on the same plan and score the decision's regret.
func (e *Engine) shadowModeRun(ev *psi.Evaluator, compiled []*plan.Compiled, tag queryTag,
	u graph.NodeID, row []float64, dec decision, cached bool, actualValid bool,
	primary time.Duration, local *workerCounters, tr *obs.QueryTrace, prof *obs.Profile, global time.Time) error {

	opp := dec.mode.Opposite()
	ok, took, timedOut, err := e.shadowEvaluate(ev, compiled, u, opp, dec.planIdx, primary, local, global)
	if err != nil {
		return err
	}
	local.shadowModeRuns++
	return e.recordShadow(obs.DecisionKindMode, tag, u, row, dec, cached, actualValid,
		primary, opp, dec.planIdx, ok, took, timedOut, local, tr, prof)
}

// shadowPlanRun audits model β: re-evaluate u under the same method on
// a uniformly sampled alternative plan. Caller guarantees ≥ 2 plans.
func (e *Engine) shadowPlanRun(ev *psi.Evaluator, compiled []*plan.Compiled, tag queryTag,
	u graph.NodeID, row []float64, dec decision, cached bool, actualValid bool,
	primary time.Duration, local *workerCounters, tr *obs.QueryTrace, prof *obs.Profile, global time.Time) error {

	alt := local.rng.Intn(len(compiled) - 1)
	if alt >= dec.planIdx {
		alt++
	}
	ok, took, timedOut, err := e.shadowEvaluate(ev, compiled, u, dec.mode, alt, primary, local, global)
	if err != nil {
		return err
	}
	local.shadowPlanRuns++
	return e.recordShadow(obs.DecisionKindPlan, tag, u, row, dec, cached, actualValid,
		primary, dec.mode, alt, ok, took, timedOut, local, tr, prof)
}

// shadowEvaluate runs one counterfactual on the worker's shadow state
// with the 16x-primary budget (floored at minDeadline, capped by the
// global deadline). A budget timeout censors the run (timedOut, no
// error); a global-deadline expiry propagates psi.ErrDeadline — the
// query is out of budget regardless of the audit.
func (e *Engine) shadowEvaluate(ev *psi.Evaluator, compiled []*plan.Compiled, u graph.NodeID,
	mode psi.Mode, planIdx int, primary time.Duration, local *workerCounters,
	global time.Time) (ok bool, took time.Duration, timedOut bool, err error) {

	budget := shadowBudgetFactor * primary
	if budget < minDeadline {
		budget = minDeadline
	}
	deadline := time.Now().Add(budget)
	if !global.IsZero() && global.Before(deadline) {
		deadline = global
	}
	t0 := time.Now()
	if e.shadowHook != nil {
		ok, err = e.shadowHook(mode, planIdx)
	} else {
		ok, err = ev.Evaluate(local.shadowState, compiled[planIdx], u, mode, psi.Limits{Deadline: deadline})
	}
	took = time.Since(t0)
	if err == psi.ErrDeadline {
		if !global.IsZero() && time.Now().After(global) {
			return false, took, false, psi.ErrDeadline
		}
		return false, took, true, nil
	}
	if err != nil {
		return false, took, false, err
	}
	return ok, took, false, nil
}

// recordShadow scores one finished (or censored) counterfactual:
// verdict agreement, regret accounting, metrics, trace, profile and the
// decision log.
func (e *Engine) recordShadow(kind string, tag queryTag, u graph.NodeID, row []float64, dec decision,
	cached bool, actualValid bool, primary time.Duration, shadowMode psi.Mode, shadowPlan int,
	shadowOK bool, took time.Duration, timedOut bool,
	local *workerCounters, tr *obs.QueryTrace, prof *obs.Profile) error {

	enabled := obs.Enabled()
	regret := time.Duration(0)
	if timedOut {
		local.shadowTimeouts++
	} else {
		if shadowOK != actualValid {
			// Both runs are exact algorithms for the same decision
			// problem: disagreement means one evaluator is unsound.
			if enabled {
				obs.DefaultModelStats.ObserveShadowMismatch()
			}
			if invariant.Enabled() {
				return invariant.CheckShadowAgreement(kind, int64(u), actualValid, shadowOK)
			}
		}
		if primary > took {
			regret = primary - took
		}
	}
	local.regretNanos += regret.Nanoseconds()
	prof.RecordShadow(kind, regret, timedOut)
	if enabled {
		obs.DefaultModelStats.ObserveRegret(kind, regret, timedOut)
		tr.Event(obs.EvShadow, int64(u), regret.Nanoseconds())
	}
	e.opts.DecisionLog.Append(obs.DecisionRecord{
		Kind:          kind,
		Query:         tag.name,
		RequestID:     tag.reqID,
		Fingerprint:   tag.fingerprint,
		Node:          int64(u),
		Features:      row,
		FromCache:     cached,
		PredMode:      int(dec.mode),
		PredPlan:      dec.planIdx,
		VoteMargin:    dec.margin,
		ActualValid:   actualValid,
		ShadowMode:    int(shadowMode),
		ShadowPlan:    shadowPlan,
		PrimaryNanos:  primary.Nanoseconds(),
		ShadowNanos:   took.Nanoseconds(),
		RegretNanos:   regret.Nanoseconds(),
		ShadowTimeout: timedOut,
	})
	return nil
}

// shadowCacheCheck audits the prediction cache on one sampled hit: the
// cached decision against a fresh model prediction for this node's
// signature row. Signature keys can collide, so a hit may serve another
// row's decision — the stale rate measures how often that matters. No
// shadow evaluation runs; the audit costs one forest prediction.
func (e *Engine) shadowCacheCheck(tag queryTag, u graph.NodeID, row []float64, dec decision,
	nPlans int, actualValid bool, alphaModel, betaModel *ml.Forest,
	local *workerCounters, prof *obs.Profile) {

	freshMode := psi.Pessimistic
	margin := 0.0
	if alphaModel != nil {
		votes := local.votes(alphaModel.NumClasses())
		if alphaModel.PredictInto(row, votes) == 1 {
			freshMode = psi.Optimistic
		}
		margin = voteMargin(votes, alphaModel.NumTrees())
	}
	freshPlan := 0
	if betaModel != nil {
		freshPlan = betaModel.PredictInto(row, local.votes(betaModel.NumClasses()))
		if freshPlan >= nPlans {
			freshPlan = 0
		}
	}
	stale := freshMode != dec.mode || freshPlan != dec.planIdx
	local.cacheChecks++
	if stale {
		local.cacheStale++
	}
	prof.RecordCacheCheck(stale)
	if obs.Enabled() {
		obs.DefaultModelStats.ObserveCacheCheck(stale)
	}
	e.opts.DecisionLog.Append(obs.DecisionRecord{
		Kind:        obs.DecisionKindCache,
		Query:       tag.name,
		RequestID:   tag.reqID,
		Fingerprint: tag.fingerprint,
		Node:        int64(u),
		Features:    row,
		FromCache:   true,
		PredMode:    int(dec.mode),
		PredPlan:    dec.planIdx,
		VoteMargin:  margin,
		ActualValid: actualValid,
		CacheStale:  stale,
	})
}

// betaSweep retains one training node's per-plan sweep measurements for
// the model-β plan-rank audit.
type betaSweep struct {
	node     graph.NodeID
	outcomes []planOutcome
}

// scoreBetaRanks audits model β against the training sweeps: for every
// retained sweep, predict a plan with the trained forest and record the
// prediction's 1-based rank among the sweep's finished plan times
// (1 = the model picked the measured-fastest plan; unfinished
// predictions rank behind every finished plan).
func (e *Engine) scoreBetaRanks(tag queryTag, betaModel *ml.Forest, sweeps []betaSweep) {
	enabled := obs.Enabled()
	votes := make([]int, betaModel.NumClasses())
	for _, s := range sweeps {
		pred := betaModel.PredictInto(e.sigs.Row(s.node), votes)
		var predOutcome planOutcome
		if pred >= 0 && pred < len(s.outcomes) {
			predOutcome = s.outcomes[pred]
		}
		finished, rank := 0, 1
		for i, o := range s.outcomes {
			if !o.done {
				continue
			}
			finished++
			if predOutcome.done && i != pred && o.took < predOutcome.took {
				rank++
			}
		}
		if finished == 0 {
			continue
		}
		if !predOutcome.done {
			rank = finished + 1
		}
		if enabled {
			obs.DefaultModelStats.ObserveBetaRank(rank)
		}
		if !e.opts.auditing() {
			// The contract pinned by the overhead guard: ShadowRate=0
			// emits no decision records, beta ranks included, even with
			// a log attached.
			continue
		}
		e.opts.DecisionLog.Append(obs.DecisionRecord{
			Kind:        obs.DecisionKindBeta,
			Query:       tag.name,
			RequestID:   tag.reqID,
			Fingerprint: tag.fingerprint,
			Node:        int64(s.node),
			PredPlan:    pred,
			Rank:        rank,
		})
	}
}

// voteMargin returns the forest's winner-minus-runner-up vote share in
// [0, 1] — the calibration axis of /modelz.
func voteMargin(votes []int, trees int) float64 {
	if trees <= 0 {
		return 0
	}
	best, second := 0, 0
	for _, v := range votes {
		if v > best {
			best, second = v, best
		} else if v > second {
			second = v
		}
	}
	return float64(best-second) / float64(trees)
}

// newShadowRNG builds worker w's deterministic sampling stream.
func newShadowRNG(seed int64, w int) *rand.Rand {
	return rand.New(rand.NewSource(shadowSeed(seed, w)))
}
