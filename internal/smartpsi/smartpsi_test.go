package smartpsi

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/graph/graphtest"
	"repro/internal/psi"
	"repro/internal/signature"
	"repro/internal/workload"
)

func coraEngine(t testing.TB, opts Options) *Engine {
	t.Helper()
	spec, err := gen.DefaultSpec("cora")
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(gen.MustGenerate(spec), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// referenceBindings computes the ground truth with the pessimistic-only
// driver (exact regardless of ML decisions).
func referenceBindings(t testing.TB, e *Engine, q graph.Query) []graph.NodeID {
	t.Helper()
	qSigs, err := signature.Build(q.G, e.opts.SignatureDepth, e.sigs.Width(), e.opts.SignatureMethod)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := psi.NewEvaluator(e.g, q, e.sigs, qSigs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := psi.EvaluateAll(ev, psi.PessimisticOnly, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	out := append([]graph.NodeID(nil), res.Bindings...)
	sortNodes(out)
	return out
}

func sortNodes(s []graph.NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sameNodes(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFigure1SmallCandidateFallback(t *testing.T) {
	g := graphtest.Figure1Data()
	e, err := NewEngine(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Evaluate(graphtest.Figure1Query())
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedML {
		t.Error("two candidates should not trigger ML")
	}
	if !sameNodes(res.Bindings, graphtest.Figure1PivotBindings()) {
		t.Errorf("bindings = %v, want %v", res.Bindings, graphtest.Figure1PivotBindings())
	}
	if res.Candidates != 2 {
		t.Errorf("candidates = %d, want 2", res.Candidates)
	}
}

// TestExactnessOnCora is the paper's central correctness claim: SmartPSI
// is exact no matter what the models predict.
func TestExactnessOnCora(t *testing.T) {
	e := coraEngine(t, Options{Seed: 7, PlanSamples: 4})
	rng := rand.New(rand.NewSource(13))
	for size := 4; size <= 6; size++ {
		for i := 0; i < 3; i++ {
			q, err := workload.ExtractQuery(e.Graph(), size, rng)
			if err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
			res, err := e.Evaluate(q)
			if err != nil {
				t.Fatalf("size %d query %d: %v", size, i, err)
			}
			want := referenceBindings(t, e, q)
			if !sameNodes(res.Bindings, want) {
				t.Errorf("size %d query %d: %d bindings, want %d", size, i, len(res.Bindings), len(want))
			}
			if len(res.Bindings) == 0 {
				t.Errorf("size %d query %d: extracted query has no bindings (impossible: it matches itself)", size, i)
			}
		}
	}
}

func TestUsedMLAndCounters(t *testing.T) {
	e := coraEngine(t, Options{Seed: 3, PlanSamples: 3})
	rng := rand.New(rand.NewSource(4))
	q, err := workload.ExtractQuery(e.Graph(), 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Cora has 7 labels over 2708 nodes: plenty of candidates.
	res, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.UsedML {
		t.Fatal("expected the ML path")
	}
	if res.TrainedNodes == 0 {
		t.Error("no training nodes")
	}
	if res.PlanClasses < 1 {
		t.Error("no plan classes")
	}
	if res.TrainTime <= 0 || res.TotalTime <= 0 {
		t.Error("timers not populated")
	}
	evaluated := res.CacheHits + res.CacheMisses
	wantEvaluated := int64(res.Candidates - res.TrainedNodes)
	if evaluated != wantEvaluated {
		t.Errorf("cache lookups %d, want %d", evaluated, wantEvaluated)
	}
	if res.Alpha.Total == 0 {
		t.Error("no alpha accuracy samples")
	}
	if acc := res.Alpha.Accuracy(); acc < 0.5 {
		t.Errorf("alpha accuracy %.2f suspiciously low", acc)
	}
}

func TestAblationsStayExact(t *testing.T) {
	base := Options{Seed: 11, PlanSamples: 3}
	variants := map[string]Options{
		"no-cache":      {Seed: 11, PlanSamples: 3, DisableCache: true},
		"no-plan-model": {Seed: 11, PlanSamples: 3, DisablePlanModel: true},
		"no-preemption": {Seed: 11, PlanSamples: 3, DisablePreemption: true},
		"no-type-model": {Seed: 11, PlanSamples: 3, DisableTypeModel: true},
		"two-threads":   {Seed: 11, PlanSamples: 3, Threads: 2},
	}
	spec, err := gen.DefaultSpec("cora")
	if err != nil {
		t.Fatal(err)
	}
	g := gen.MustGenerate(spec)
	rng := rand.New(rand.NewSource(21))
	q, err := workload.ExtractQuery(g, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	baseEngine, err := NewEngine(g, base)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceBindings(t, baseEngine, q)
	for name, opts := range variants {
		e, err := NewEngine(g, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := e.Evaluate(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sameNodes(res.Bindings, want) {
			t.Errorf("%s: %d bindings, want %d", name, len(res.Bindings), len(want))
		}
	}
}

func TestCacheHitsOnRepetitiveGraph(t *testing.T) {
	// A graph of many identical star components: every star center has
	// an identical signature, so after the first few evaluations the
	// cache should serve the rest.
	b := graph.NewBuilder(400, 400)
	for i := 0; i < 100; i++ {
		center := b.AddNode(0)
		for j := 0; j < 3; j++ {
			leaf := b.AddNode(1)
			if err := b.AddEdge(center, leaf); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.MustBuild()
	e, err := NewEngine(g, Options{Seed: 5, MinTrainNodes: 10, PlanSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Query: one star (center + 2 leaves), pivot center.
	qb := graph.NewBuilder(3, 2)
	c := qb.AddNode(0)
	l1 := qb.AddNode(1)
	l2 := qb.AddNode(1)
	if err := qb.AddEdge(c, l1); err != nil {
		t.Fatal(err)
	}
	if err := qb.AddEdge(c, l2); err != nil {
		t.Fatal(err)
	}
	q, err := graph.NewQuery(qb.MustBuild(), c)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != 100 {
		t.Errorf("bindings = %d, want 100 (every center matches)", len(res.Bindings))
	}
	if res.CacheHits == 0 {
		t.Error("identical signatures produced no cache hits")
	}
	// With caching disabled there must be none.
	e2, err := NewEngine(g, Options{Seed: 5, MinTrainNodes: 10, PlanSamples: 2, DisableCache: true})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHits != 0 {
		t.Errorf("cache disabled but %d hits", res2.CacheHits)
	}
	if !sameNodes(res.Bindings, res2.Bindings) {
		t.Error("cache changed the result")
	}
}

func TestEvaluateErrors(t *testing.T) {
	e := coraEngine(t, Options{Seed: 1})
	// Disconnected query.
	db := graph.NewBuilder(2, 0)
	db.AddNode(0)
	db.AddNode(1)
	if _, err := e.Evaluate(graph.Query{G: db.MustBuild(), Pivot: 0}); err == nil {
		t.Error("disconnected query accepted")
	}
	// Query label outside the data alphabet.
	wb := graph.NewBuilder(2, 1)
	a := wb.AddNode(0)
	x := wb.AddNode(99)
	if err := wb.AddEdge(a, x); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evaluate(graph.Query{G: wb.MustBuild(), Pivot: 0}); err == nil {
		t.Error("out-of-alphabet query accepted")
	}
}

func TestNoCandidates(t *testing.T) {
	// Pivot label exists in the query alphabet but no data node has it.
	spec, _ := gen.DefaultSpec("cora")
	g := gen.MustGenerate(spec)
	e, err := NewEngine(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Find a label with zero data nodes? Cora generator guarantees all 7
	// appear, so instead query for a structure with zero candidates by
	// using an impossible degree: a pivot with 7 same-label neighbors of
	// the rarest label... simpler: restrict to a label-6 pivot whose
	// query demands more label-6 neighbors than any data node has.
	rare := graph.Label(6)
	qb := graph.NewBuilder(1, 0)
	qb.AddNode(rare)
	q, _ := graph.NewQuery(qb.MustBuild(), 0)
	res, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bindings) != int(g.LabelFrequency(rare)) {
		t.Errorf("single-node query: %d bindings, want %d", len(res.Bindings), g.LabelFrequency(rare))
	}
}

func TestEngineOptionsDefaults(t *testing.T) {
	e := coraEngine(t, Options{})
	o := e.Options()
	if o.SignatureDepth != 2 || o.TrainFraction != 0.10 || o.MaxTrainNodes != 1000 ||
		o.PlanSamples != 6 || o.Threads != 1 || o.MinTrainNodes != 64 || o.PlanSweepNodes != 100 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if e.SignatureBuildTime <= 0 {
		t.Error("signature build time not recorded")
	}
	if e.Signatures().NumNodes() != e.Graph().NumNodes() {
		t.Error("signatures do not cover the graph")
	}
}

func TestExplorationSignaturesWork(t *testing.T) {
	spec, _ := gen.DefaultSpec("cora")
	g := gen.MustGenerate(spec)
	e, err := NewEngine(g, Options{Seed: 9, SignatureMethod: signature.Exploration, PlanSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	q, err := workload.ExtractQuery(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceBindings(t, e, q)
	if !sameNodes(res.Bindings, want) {
		t.Errorf("exploration signatures: %d bindings, want %d", len(res.Bindings), len(want))
	}
}
