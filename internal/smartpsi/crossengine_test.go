package smartpsi

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/workload"
)

// TestAgainstTurboIsoPlus cross-validates the whole SmartPSI pipeline
// against TurboIso+ — a completely independent engine (region-based
// full-iso machinery, no signatures, no ML) — on a denser generated
// dataset at medium scale.
func TestAgainstTurboIsoPlus(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale cross-engine check")
	}
	spec, err := gen.ScaledSpec("human", 4)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.MustGenerate(spec)
	e, err := NewEngine(g, Options{Seed: 19, PlanSamples: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	for size := 4; size <= 5; size++ {
		for i := 0; i < 2; i++ {
			q, err := workload.ExtractQuery(g, size, rng)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			tip, err := match.NewTurboIsoPlus(g, q)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := tip.PivotBindings(match.Budget{})
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if !equalNodes(res.Bindings, want) {
				t.Fatalf("size %d query %d: SmartPSI %d bindings, TurboIso+ %d",
					size, i, len(res.Bindings), len(want))
			}
		}
	}
}

func equalNodes(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestConcurrentEvaluate: an Engine is safe for concurrent Evaluate
// calls (the signatures are read-only; per-call state is local).
func TestConcurrentEvaluate(t *testing.T) {
	spec, err := gen.ScaledSpec("cora", 4)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.MustGenerate(spec)
	e, err := NewEngine(g, Options{Seed: 3, PlanSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	queries := make([]graph.Query, 4)
	for i := range queries {
		q, err := workload.ExtractQuery(g, 4, rng)
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}
	// Sequential ground truth.
	want := make([][]graph.NodeID, len(queries))
	for i, q := range queries {
		res, err := e.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Bindings
	}
	// Concurrent round.
	type out struct {
		i        int
		bindings []graph.NodeID
		err      error
	}
	ch := make(chan out, len(queries))
	for i, q := range queries {
		go func(i int, q graph.Query) {
			res, err := e.Evaluate(q)
			if err != nil {
				ch <- out{i: i, err: err}
				return
			}
			ch <- out{i: i, bindings: res.Bindings}
		}(i, q)
	}
	for range queries {
		o := <-ch
		if o.err != nil {
			t.Fatal(o.err)
		}
		if !equalNodes(o.bindings, want[o.i]) {
			t.Fatalf("query %d: concurrent result differs", o.i)
		}
	}
}
