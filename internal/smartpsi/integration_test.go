package smartpsi

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/workload"
)

// TestEndToEndAgainstEnumeration verifies the whole SmartPSI pipeline
// against ground truth established by full subgraph-isomorphism
// enumeration (an entirely independent code path) on a realistic
// generated dataset.
func TestEndToEndAgainstEnumeration(t *testing.T) {
	spec, err := gen.ScaledSpec("yeast", 4)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.MustGenerate(spec)
	e, err := NewEngine(g, Options{Seed: 5, MinTrainNodes: 12, PlanSamples: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for size := 3; size <= 6; size++ {
		for i := 0; i < 2; i++ {
			q, err := workload.ExtractQuery(g, size, rng)
			if err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
			res, err := e.Evaluate(q)
			if err != nil {
				t.Fatalf("size %d query %d: %v", size, i, err)
			}
			bt, err := match.NewBacktracking(g, q.G)
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := match.PivotBindings(bt, q, match.Budget{})
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if len(res.Bindings) != len(want) {
				t.Fatalf("size %d query %d: SmartPSI %d bindings, enumeration %d",
					size, i, len(res.Bindings), len(want))
			}
			for j := range want {
				if res.Bindings[j] != want[j] {
					t.Fatalf("size %d query %d: binding %d differs: %d vs %d",
						size, i, j, res.Bindings[j], want[j])
				}
			}
		}
	}
}

// TestThreadCountsAgree: 1, 2 and 4 worker threads must produce
// identical bindings.
func TestThreadCountsAgree(t *testing.T) {
	spec, err := gen.ScaledSpec("cora", 2)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.MustGenerate(spec)
	rng := rand.New(rand.NewSource(8))
	q, err := workload.ExtractQuery(g, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	var first []graph.NodeID
	for _, threads := range []int{1, 2, 4} {
		e, err := NewEngine(g, Options{Seed: 5, Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Evaluate(q)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if first == nil {
			first = res.Bindings
			continue
		}
		if len(res.Bindings) != len(first) {
			t.Fatalf("threads=%d: %d bindings, want %d", threads, len(res.Bindings), len(first))
		}
		for i := range first {
			if res.Bindings[i] != first[i] {
				t.Fatalf("threads=%d: binding %d differs", threads, i)
			}
		}
	}
}

// TestRepeatEvaluationsDeterministic: evaluating the same query twice on
// the same engine gives identical results.
func TestRepeatEvaluationsDeterministic(t *testing.T) {
	spec, err := gen.ScaledSpec("cora", 2)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.MustGenerate(spec)
	e, err := NewEngine(g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	q, err := workload.ExtractQuery(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Bindings) != len(r2.Bindings) {
		t.Fatalf("repeat evaluation: %d vs %d bindings", len(r1.Bindings), len(r2.Bindings))
	}
	for i := range r1.Bindings {
		if r1.Bindings[i] != r2.Bindings[i] {
			t.Fatal("repeat evaluation produced different bindings")
		}
	}
}
