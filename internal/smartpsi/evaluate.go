package smartpsi

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/fsm"
	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/psi"
	"repro/internal/signature"
)

// Result reports one PSI query evaluation.
type Result struct {
	// Bindings are the distinct valid pivot bindings, ascending.
	Bindings []graph.NodeID
	// Candidates is the number of label-matching nodes examined.
	Candidates int

	// TrainTime covers training-node evaluation and model fitting;
	// ModelTime covers runtime prediction; together they are the
	// "training and prediction overhead" of Table 4.
	TrainTime time.Duration
	ModelTime time.Duration
	// EvalTime is the candidate-evaluation wall time (excluding training).
	EvalTime time.Duration
	// TotalTime is the whole Evaluate call.
	TotalTime time.Duration

	// TrainedNodes is the training-set size; PlanClasses the number of
	// sampled plans (model β classes).
	TrainedNodes int
	PlanClasses  int

	// Alpha reports model α's accuracy on the non-training candidates
	// (prediction vs ground truth established by the evaluation itself).
	Alpha AccuracyReport

	// CacheHits/CacheMisses count prediction-cache lookups.
	CacheHits, CacheMisses int64
	// Flips counts preemptions into the opposite method (state 2);
	// Fallbacks counts state-3 heuristic-plan restarts.
	Flips, Fallbacks int64
	// UsedML is false when the candidate set was too small to train on
	// and the engine fell back to pessimistic evaluation throughout.
	UsedML bool
	// Work aggregates the evaluator work counters (recursions, prunes,
	// cap hits, deadline aborts, ...) across training and all candidate
	// workers, merged with the canonical psi.Stats.Add.
	Work psi.Stats

	// ShadowModeRuns / ShadowPlanRuns count the sampled shadow audits
	// (Options.ShadowRate); ShadowTimeouts counts counterfactuals
	// censored by the 16x-primary shadow budget.
	ShadowModeRuns, ShadowPlanRuns, ShadowTimeouts int64
	// Regret totals the audited decisions' regret: max(0, primary −
	// counterfactual) wall time, summed over this query's shadow runs.
	Regret time.Duration
	// CacheChecks / CacheStale count sampled cache-quality audits and
	// the hits whose fresh prediction disagreed with the cached decision.
	CacheChecks, CacheStale int64
	// ShadowWork aggregates the counterfactual evaluators' work. Audits
	// never contribute to Work: primary accounting must be identical
	// with auditing on or off.
	ShadowWork psi.Stats
	// Profile is the query's execution profile — the EXPLAIN ANALYZE
	// document rendered by `psi-query -explain` and retained by the
	// /profilez flight recorder. Nil when obs collection is disabled;
	// obs.ProfileData methods are nil-safe so callers need not check.
	Profile *obs.Profile
}

// AccuracyReport is a correct/total counter pair.
type AccuracyReport struct {
	Correct, Total int64
}

// Accuracy returns the fraction correct (1.0 when empty).
func (a AccuracyReport) Accuracy() float64 {
	if a.Total == 0 {
		return 1
	}
	return float64(a.Correct) / float64(a.Total)
}

// minDeadline floors the preemption budget so timer quantization cannot
// starve legitimate evaluations.
const minDeadline = 200 * time.Microsecond

// Evaluate runs the full SmartPSI pipeline on q with no time budget.
func (e *Engine) Evaluate(q graph.Query) (*Result, error) {
	return e.EvaluateBudget(q, time.Time{})
}

// EvaluateBudget is Evaluate bounded by a global deadline (zero: none).
// When the deadline passes mid-query the evaluation aborts with
// psi.ErrDeadline; partial results are discarded, matching how the
// paper's 24-hour task limit censors runs.
func (e *Engine) EvaluateBudget(q graph.Query, deadline time.Time) (*Result, error) {
	return e.evaluateBudget(q, deadline, queryTag{})
}

// EvaluateRequest is EvaluateBudget with a serving-layer request ID
// (X-Request-ID) threaded through the query's trace, execution profile
// and decision-log records, so one served request is correlatable
// across the access log, /profilez?request_id= and the decision log.
func (e *Engine) EvaluateRequest(q graph.Query, deadline time.Time, requestID string) (*Result, error) {
	return e.evaluateBudget(q, deadline, queryTag{reqID: requestID})
}

// EvaluateTagged is EvaluateRequest with the query's canonical shape
// fingerprint already computed by the caller (the serving layer
// fingerprints once at admission so the workload sketch, the profile
// and the decision log all agree); an empty fingerprint falls back to
// computing one here when anything will record it.
func (e *Engine) EvaluateTagged(q graph.Query, deadline time.Time, requestID, fingerprint string) (*Result, error) {
	return e.evaluateBudget(q, deadline, queryTag{reqID: requestID, fingerprint: fingerprint})
}

// queryTag is the per-query identity threaded into traces, profiles and
// decision-log records: profile name, serving request ID, and canonical
// shape fingerprint.
type queryTag struct {
	name        string
	reqID       string
	fingerprint string
}

func (e *Engine) evaluateBudget(q graph.Query, deadline time.Time, tag queryTag) (_ *Result, retErr error) {
	start := time.Now()
	enabled := obs.Enabled()
	var tr *obs.QueryTrace
	var prof *obs.Profile
	tagged := enabled || e.opts.auditing() || e.opts.DecisionLog != nil
	if tagged {
		tag.name = fmt.Sprintf("smartpsi/q%d.p%d", q.Size(), int(q.Pivot))
	}
	if enabled {
		obs.SmartQueries.Inc()
		tr = obs.StartQuery(tag.name)
		prof = obs.StartProfile(tag.name)
		if tag.reqID != "" {
			tr.SetRequestID(tag.reqID)
			prof.SetRequestID(tag.reqID)
		}
		prof.SetFingerprint(tag.fingerprint)
	}
	defer tr.Finish()
	// Seal the profile on every exit: error paths record the error so
	// the flight recorder retains aborted (deadline/stop) queries too.
	defer func() {
		if retErr != nil {
			prof.SetError(retErr.Error())
		}
		prof.Finish()
	}()
	// finishQuery flushes the per-query aggregates into the obs
	// registry and seals the profile on the success paths. With deep
	// checking on it also validates the profiler's candidate funnel
	// (per-depth monotone non-increasing stages).
	finishQuery := func(res *Result) error {
		prof.SetOutcome(len(res.Bindings))
		psi.RecordWork(prof, res.Work)
		if enabled {
			obs.SmartQuerySeconds.Observe(time.Since(start).Seconds())
			obs.SmartRecursionDist.Observe(float64(res.Work.Recursions))
			psi.PublishStats(res.Work)
			if e.opts.auditing() {
				obs.SmartQueryRegretSeconds.Observe(res.Regret.Seconds())
			}
			if prof != nil {
				tot := prof.FunnelTotals()
				obs.SmartFunnelGenerated.Observe(float64(tot.Generated))
				obs.SmartFunnelDegOK.Observe(float64(tot.DegOK))
				obs.SmartFunnelSigOK.Observe(float64(tot.SigOK))
				obs.SmartFunnelRecursed.Observe(float64(tot.Recursed))
				obs.SmartFunnelMatched.Observe(float64(tot.Matched))
			}
		}
		if invariant.Enabled() && prof != nil {
			if err := invariant.CheckFunnel(prof.FunnelSnapshot()); err != nil {
				return err
			}
		}
		prof.Finish()
		return nil
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("smartpsi: %w", err)
	}
	if tagged && tag.fingerprint == "" {
		// Non-serving entry points (CLIs, tests) fingerprint here so
		// their profiles and decision records still pivot by shape; the
		// serving layer passes one in via EvaluateTagged instead.
		tag.fingerprint = fsm.PivotFingerprint(q, 0).String()
		prof.SetFingerprint(tag.fingerprint)
	}
	if q.G.NumLabels() > e.sigs.Width() {
		return nil, fmt.Errorf("smartpsi: query uses %d labels, data graph only %d", q.G.NumLabels(), e.sigs.Width())
	}
	qSigs, err := signature.Build(q.G, e.opts.SignatureDepth, e.sigs.Width(), e.opts.SignatureMethod)
	if err != nil {
		return nil, fmt.Errorf("smartpsi: %w", err)
	}
	ev, err := psi.NewEvaluator(e.g, q, e.sigs, qSigs)
	if err != nil {
		return nil, fmt.Errorf("smartpsi: %w", err)
	}

	res := &Result{Profile: prof}
	candidates := e.g.NodesWithLabel(q.G.Label(q.Pivot))
	res.Candidates = len(candidates)
	prof.SetCandidates(len(candidates))
	if len(candidates) == 0 {
		res.TotalTime = time.Since(start)
		if err := finishQuery(res); err != nil {
			return nil, err
		}
		return res, nil
	}

	rng := rand.New(rand.NewSource(e.opts.Seed))
	plans, compiled, err := e.samplePlans(q, rng)
	if err != nil {
		return nil, err
	}
	res.PlanClasses = len(plans)

	valid := make(map[graph.NodeID]bool, len(candidates))
	var validMu sync.Mutex

	if len(candidates) < e.opts.MinTrainNodes {
		// Too few candidates to train on: evaluate everything
		// pessimistically with the heuristic plan (compiled[0]).
		prof.SetMethod("pessimistic-heuristic")
		evalStart := time.Now()
		st := psi.NewState(q.Size())
		if prof != nil {
			st.SetFunnel(&obs.Funnel{})
		}
		for _, u := range candidates {
			ok, err := ev.Evaluate(st, compiled[0], u, psi.Pessimistic, psi.Limits{Deadline: deadline})
			if err != nil {
				return nil, err
			}
			valid[u] = ok
		}
		res.EvalTime = time.Since(evalStart)
		res.Work = st.Stats()
		prof.MergeFunnel(st.Funnel())
		if err := e.collect(res, q, valid); err != nil {
			return nil, err
		}
		res.TotalTime = time.Since(start)
		if err := finishQuery(res); err != nil {
			return nil, err
		}
		return res, nil
	}
	res.UsedML = true
	prof.SetMethod("ml")
	if enabled {
		obs.SmartQueriesML.Inc()
	}

	// ----- Training phase (Sections 4.2.1, 4.2.2) -----
	trainStart := time.Now()
	shuffled := append([]graph.NodeID(nil), candidates...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	trainCount := int(e.opts.TrainFraction * float64(len(candidates)))
	if trainCount > e.opts.MaxTrainNodes {
		trainCount = e.opts.MaxTrainNodes
	}
	const minTrainFloor = 16 // enough rows for the forests to be useful
	if trainCount < minTrainFloor {
		trainCount = minTrainFloor
	}
	if trainCount > len(candidates)/2 {
		trainCount = len(candidates) / 2
	}
	trainNodes := shuffled[:trainCount]
	res.TrainedNodes = trainCount

	timing := newPlanTiming(len(plans))
	alphaDS := ml.Dataset{NumClasses: 2}
	betaDS := ml.Dataset{NumClasses: len(plans)}
	st := psi.NewState(q.Size())
	if prof != nil {
		st.SetFunnel(&obs.Funnel{})
	}
	// Retain the per-plan sweep measurements for the model-β plan-rank
	// audit (scoreBetaRanks) when anyone will consume them.
	collectSweeps := (enabled || (e.opts.DecisionLog != nil && e.opts.auditing())) && !e.opts.DisablePlanModel
	var sweeps []betaSweep
	for i, u := range trainNodes {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, psi.ErrDeadline
		}
		var isValid bool
		var bestPlan int
		if i < e.opts.PlanSweepNodes {
			// Full per-plan sweep: labels both models.
			var outcomes []planOutcome
			isValid, bestPlan, outcomes, err = e.trainOne(ev, st, compiled, u, timing, deadline)
			if err != nil {
				return nil, err
			}
			if collectSweeps && bestPlan >= 0 {
				sweeps = append(sweeps, betaSweep{node: u, outcomes: outcomes})
			}
		} else {
			// Single heuristic-plan evaluation: labels model α only.
			t0 := time.Now()
			isValid, err = ev.Evaluate(st, compiled[0], u, psi.Pessimistic, psi.Limits{Deadline: deadline})
			if err != nil {
				return nil, err
			}
			timing.record(psi.Pessimistic, 0, time.Since(t0))
			bestPlan = -1
		}
		valid[u] = isValid
		row := e.sigs.Row(u)
		cls := 0
		if isValid {
			cls = 1
		}
		alphaDS.X = append(alphaDS.X, row)
		alphaDS.Y = append(alphaDS.Y, cls)
		if bestPlan >= 0 {
			betaDS.X = append(betaDS.X, row)
			betaDS.Y = append(betaDS.Y, bestPlan)
		}
	}

	var alphaModel, betaModel *ml.Forest
	if !e.opts.DisableTypeModel {
		alphaModel, err = ml.TrainForest(alphaDS, e.forestConfig())
		if err != nil {
			return nil, fmt.Errorf("smartpsi: model α: %w", err)
		}
	}
	if !e.opts.DisablePlanModel {
		betaModel, err = ml.TrainForest(betaDS, e.forestConfig())
		if err != nil {
			return nil, fmt.Errorf("smartpsi: model β: %w", err)
		}
	}
	res.TrainTime = time.Since(trainStart)
	res.Work.Add(st.Stats())
	prof.MergeFunnel(st.Funnel())
	prof.SetTraining(trainCount, len(plans), res.TrainTime)
	if enabled {
		obs.SmartTrainedNodes.Add(int64(trainCount))
		obs.SmartTrainSeconds.Observe(res.TrainTime.Seconds())
		tr.Event(obs.EvTrainDone, -1, int64(trainCount))
	}
	if betaModel != nil && len(sweeps) > 0 {
		e.scoreBetaRanks(tag, betaModel, sweeps)
	}

	// ----- Prediction + preemptive evaluation (Sections 4.2.3, 4.3) -----
	evalStart := time.Now()
	remaining := shuffled[trainCount:]
	var cache sync.Map // signature key -> decision
	var mu sync.Mutex  // guards the shared counters below
	var modelNanos int64

	workers := e.opts.Threads
	if workers > len(remaining) {
		workers = len(remaining)
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (len(remaining) + workers - 1) / workers
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(remaining) {
			hi = len(remaining)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, nodes []graph.NodeID) {
			defer wg.Done()
			wst := psi.NewState(q.Size())
			if prof != nil {
				wst.SetFunnel(&obs.Funnel{})
			}
			local := workerCounters{}
			if e.opts.auditing() {
				// Shadow audits get their own sampling stream and their
				// own evaluator state: counterfactual work must land in
				// ShadowWork, never in the primary accounting.
				local.rng = newShadowRNG(e.opts.Seed, w)
				local.shadowState = psi.NewState(q.Size())
			}
			// Merge the worker's counters even on the error paths, so
			// censored runs still account their work.
			defer func() {
				local.work = wst.Stats()
				if local.shadowState != nil {
					local.shadowWork = local.shadowState.Stats()
				}
				prof.MergeFunnel(wst.Funnel())
				mu.Lock()
				local.mergeInto(res, &modelNanos)
				mu.Unlock()
			}()
			for _, u := range nodes {
				if !deadline.IsZero() && time.Now().After(deadline) {
					errs[w] = psi.ErrDeadline
					return
				}
				ok, err := e.evaluateOne(ev, wst, compiled, tag, u, alphaModel, betaModel, timing, &cache, &local, tr, prof, deadline)
				if err != nil {
					errs[w] = err
					return
				}
				validMu.Lock()
				valid[u] = ok
				validMu.Unlock()
			}
		}(w, remaining[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res.EvalTime = time.Since(evalStart)
	res.ModelTime = time.Duration(modelNanos)
	if err := e.collect(res, q, valid); err != nil {
		return nil, err
	}
	res.TotalTime = time.Since(start)
	if err := finishQuery(res); err != nil {
		return nil, err
	}
	return res, nil
}

func (e *Engine) forestConfig() ml.ForestConfig {
	cfg := e.opts.Forest
	if cfg.Seed == 0 {
		cfg.Seed = e.opts.Seed + 1
	}
	return cfg
}

func (e *Engine) samplePlans(q graph.Query, rng *rand.Rand) ([]plan.Plan, []*plan.Compiled, error) {
	samples := plan.Sample(q, e.g, e.opts.PlanSamples, rng)
	compiled := make([]*plan.Compiled, len(samples))
	for i, p := range samples {
		c, err := plan.Compile(q, p)
		if err != nil {
			return nil, nil, fmt.Errorf("smartpsi: plan %d: %w", i, err)
		}
		compiled[i] = c
	}
	return samples, compiled, nil
}

// collect projects the valid map into the sorted binding list. With
// deep checking enabled it validates the result path's contract
// (strictly ascending, in range, pivot-labeled bindings).
func (e *Engine) collect(res *Result, q graph.Query, valid map[graph.NodeID]bool) error {
	for u, ok := range valid {
		if ok {
			res.Bindings = append(res.Bindings, u)
		}
	}
	sort.Slice(res.Bindings, func(i, j int) bool { return res.Bindings[i] < res.Bindings[j] })
	if invariant.Enabled() {
		return invariant.CheckBindings(e.g, q, res.Bindings)
	}
	return nil
}

// planOutcome is one plan's measurement in a training sweep: whether it
// finished within the escalating limit, the node's validity under it,
// and its wall time. scoreBetaRanks replays retained outcomes to rank
// model β's predictions.
type planOutcome struct {
	done  bool
	valid bool
	took  time.Duration
}

// trainOne evaluates a training node under every sampled plan with the
// escalating time limit of Section 4.2.2, returning its ground-truth
// validity, the fastest plan's index, and the per-plan outcomes.
func (e *Engine) trainOne(ev *psi.Evaluator, st *psi.State, compiled []*plan.Compiled, u graph.NodeID, timing *planTiming, global time.Time) (bool, int, []planOutcome, error) {
	results := make([]planOutcome, len(compiled))
	limit := e.opts.PlanTimeLimit
	// Cap the whole sweep for one node: expensive nodes would otherwise
	// burn escalation rounds across every plan (each retry restarts from
	// scratch); past the cap the node is labeled by a single unlimited
	// heuristic-plan run and contributes to model α only.
	sweepDeadline := time.Now().Add(32 * e.opts.PlanTimeLimit)
	const maxEscalations = 24
	anyDone := false
	for esc := 0; esc < maxEscalations && !anyDone && time.Now().Before(sweepDeadline); esc++ {
		for i, c := range compiled {
			if results[i].done {
				anyDone = true
				continue
			}
			t0 := time.Now()
			lim := t0.Add(limit)
			if !global.IsZero() && global.Before(lim) {
				lim = global
			}
			// The pessimistic method labels training nodes (Section
			// 4.2.1: more stable on average).
			ok, err := ev.Evaluate(st, c, u, psi.Pessimistic, psi.Limits{Deadline: lim})
			took := time.Since(t0)
			if err == psi.ErrDeadline {
				if !global.IsZero() && time.Now().After(global) {
					return false, 0, nil, psi.ErrDeadline
				}
				continue
			}
			if err != nil {
				return false, 0, nil, err
			}
			results[i] = planOutcome{done: true, valid: ok, took: took}
			timing.record(psi.Pessimistic, i, took)
			anyDone = true
		}
		limit *= 2
	}
	if !anyDone {
		// Pathological node: evaluate plan 0 (heuristic) with only the
		// global budget.
		t0 := time.Now()
		ok, err := ev.Evaluate(st, compiled[0], u, psi.Pessimistic, psi.Limits{Deadline: global})
		if err != nil {
			return false, 0, nil, err
		}
		took := time.Since(t0)
		timing.record(psi.Pessimistic, 0, took)
		results[0] = planOutcome{done: true, valid: ok, took: took}
		return ok, 0, results, nil
	}
	best, bestTook := -1, time.Duration(0)
	var validity bool
	for i, r := range results {
		if r.done && (best < 0 || r.took < bestTook) {
			best, bestTook = i, r.took
			validity = r.valid
		}
	}
	return validity, best, results, nil
}

type workerCounters struct {
	cacheHits, cacheMisses   int64
	flips, fallbacks         int64
	alphaCorrect, alphaTotal int64
	modelNanos               int64
	// Shadow-audit counters (Options.ShadowRate; see shadow.go).
	shadowModeRuns, shadowPlanRuns, shadowTimeouts int64
	regretNanos                                    int64
	cacheChecks, cacheStale                        int64
	work                                           psi.Stats // the worker State's counters, captured at exit
	shadowWork                                     psi.Stats // the shadow State's counters, captured at exit

	// Non-counter scratch (exempt from the mergeInto coverage test).
	votesScratch []int      // forest-vote scratch, reused per worker
	rng          *rand.Rand // deterministic shadow-sampling stream
	shadowState  *psi.State // counterfactual evaluator state (nil unless auditing)
}

// mergeInto folds one worker's counters into the shared result. The
// caller holds the result mutex. Evaluator work merges through the
// canonical psi.Stats.Add so new Stats fields propagate automatically;
// TestMergeIntoCoversAllCounters enumerates the int64 fields and fails
// with the names of any this function forgets.
func (w *workerCounters) mergeInto(res *Result, modelNanos *int64) {
	res.CacheHits += w.cacheHits
	res.CacheMisses += w.cacheMisses
	res.Flips += w.flips
	res.Fallbacks += w.fallbacks
	res.Alpha.Correct += w.alphaCorrect
	res.Alpha.Total += w.alphaTotal
	res.ShadowModeRuns += w.shadowModeRuns
	res.ShadowPlanRuns += w.shadowPlanRuns
	res.ShadowTimeouts += w.shadowTimeouts
	res.Regret += time.Duration(w.regretNanos)
	res.CacheChecks += w.cacheChecks
	res.CacheStale += w.cacheStale
	res.Work.Add(w.work)
	res.ShadowWork.Add(w.shadowWork)
	*modelNanos += w.modelNanos
}

func (w *workerCounters) votes(n int) []int {
	if cap(w.votesScratch) < n {
		w.votesScratch = make([]int, n)
	}
	return w.votesScratch[:n]
}

type decision struct {
	mode    psi.Mode
	planIdx int
	// margin is model α's forest vote margin in [0,1] for this decision
	// ((winner − runner-up) / trees); 0 when no model predicted. Cached
	// decisions carry the margin of the prediction that filled the cache.
	margin float64
}

// evaluateOne runs the prediction + preemptive pipeline for one
// candidate node, emitting the recovery-ladder trace grammar
// documented on obs.EventKind and the profiler's per-rung timeline.
// Rung-1 resolutions additionally run the sampled shadow audits
// (shadow.go); rungs 2–3 never do — they are already counterfactuals.
func (e *Engine) evaluateOne(ev *psi.Evaluator, st *psi.State, compiled []*plan.Compiled, tag queryTag,
	u graph.NodeID, alphaModel, betaModel *ml.Forest, timing *planTiming,
	cache *sync.Map, local *workerCounters, tr *obs.QueryTrace, prof *obs.Profile, global time.Time) (bool, error) {

	enabled := obs.Enabled()
	if enabled {
		capBefore := st.Stats().CapHits
		defer func() {
			if d := st.Stats().CapHits - capBefore; d > 0 {
				tr.Event(obs.EvCapHit, int64(u), d)
			}
		}()
	}

	row := e.sigs.Row(u)
	var dec decision
	cached := false
	var key uint64
	if !e.opts.DisableCache {
		key = signature.Key(row)
		if v, ok := cache.Load(key); ok {
			dec = v.(decision)
			cached = true
			local.cacheHits++
			prof.RecordDecision(true, int(dec.mode), dec.planIdx)
			if enabled {
				obs.SmartCacheHits.Inc()
				tr.Event(obs.EvCacheHit, int64(u), int64(dec.planIdx))
			}
		}
	}
	predicted := false
	if !cached {
		local.cacheMisses++
		if enabled {
			obs.SmartCacheMisses.Inc()
			tr.Event(obs.EvCacheMiss, int64(u), 0)
		}
		t0 := time.Now()
		dec.mode = psi.Pessimistic
		if alphaModel != nil {
			votes := local.votes(alphaModel.NumClasses())
			if alphaModel.PredictInto(row, votes) == 1 {
				dec.mode = psi.Optimistic
			}
			dec.margin = voteMargin(votes, alphaModel.NumTrees())
			predicted = true
		}
		dec.planIdx = 0
		if betaModel != nil {
			dec.planIdx = betaModel.PredictInto(row, local.votes(betaModel.NumClasses()))
			if dec.planIdx >= len(compiled) {
				dec.planIdx = 0
			}
		}
		local.modelNanos += time.Since(t0).Nanoseconds()
		prof.RecordDecision(false, int(dec.mode), dec.planIdx)
		if enabled {
			tr.Event(obs.EvModePredicted, int64(u), int64(dec.mode))
			tr.Event(obs.EvPlanChosen, int64(u), int64(dec.planIdx))
		}
	}

	// capDeadline bounds a state's deadline by the global budget.
	capDeadline := func(d time.Time) time.Time {
		if d.IsZero() || (!global.IsZero() && global.Before(d)) {
			return global
		}
		return d
	}
	globalExpired := func() bool {
		return !global.IsZero() && time.Now().After(global)
	}

	// State 1: predicted method and plan, with the MaxTime budget.
	deadline := time.Time{}
	if !e.opts.DisablePreemption {
		deadline = time.Now().Add(timing.maxTime(dec.mode, dec.planIdx))
	}
	t0 := time.Now()
	var ok bool
	var err error
	if e.evalHook != nil {
		ok, err = e.evalHook(1, dec.mode, dec.planIdx)
	} else {
		ok, err = ev.Evaluate(st, compiled[dec.planIdx], u, dec.mode, psi.Limits{Deadline: capDeadline(deadline)})
	}
	took := time.Since(t0)
	prof.LadderObserve(obs.LadderPredicted, err == nil, took)
	if err == nil {
		timing.record(dec.mode, dec.planIdx, took)
		if !cached && !e.opts.DisableCache {
			cache.Store(key, dec)
		}
		e.scoreAlpha(local, tr, u, predicted, dec.mode, dec.margin, ok)
		if e.opts.auditing() {
			if aerr := e.auditDecision(ev, compiled, tag, u, row, dec, cached, ok, took,
				alphaModel, betaModel, local, tr, prof, global); aerr != nil {
				return false, aerr
			}
		}
		return ok, nil
	}
	if err != psi.ErrDeadline || globalExpired() {
		return false, err
	}

	// State 2: the opposite method, same plan, fresh budget (recovers
	// from model α errors).
	local.flips++
	opp := dec.mode.Opposite()
	if enabled {
		obs.SmartTimeouts.Inc()
		obs.SmartFlips.Inc()
		obs.SmartRecoveries.Inc()
		tr.Event(obs.EvTimeout, int64(u), 1)
		tr.Event(obs.EvFlip, int64(u), int64(opp))
	}
	deadline = time.Now().Add(timing.maxTime(opp, dec.planIdx))
	t0 = time.Now()
	if e.evalHook != nil {
		ok, err = e.evalHook(2, opp, dec.planIdx)
	} else {
		ok, err = ev.Evaluate(st, compiled[dec.planIdx], u, opp, psi.Limits{Deadline: capDeadline(deadline)})
	}
	took = time.Since(t0)
	prof.LadderObserve(obs.LadderOpposite, err == nil, took)
	if err == nil {
		timing.record(opp, dec.planIdx, took)
		e.scoreAlpha(local, tr, u, predicted, dec.mode, dec.margin, ok)
		return ok, nil
	}
	if err != psi.ErrDeadline || globalExpired() {
		return false, err
	}

	// State 3: the predicted method with the heuristic plan, bounded
	// only by the global budget (recovers from model β errors).
	local.fallbacks++
	if enabled {
		obs.SmartTimeouts.Inc()
		obs.SmartFallbacks.Inc()
		obs.SmartRecoveries.Inc()
		tr.Event(obs.EvTimeout, int64(u), 2)
		tr.Event(obs.EvFallback, int64(u), 0)
	}
	t0 = time.Now()
	if e.evalHook != nil {
		ok, err = e.evalHook(3, dec.mode, 0)
	} else {
		ok, err = ev.Evaluate(st, compiled[0], u, dec.mode, psi.Limits{Deadline: global})
	}
	took = time.Since(t0)
	prof.LadderObserve(obs.LadderHeuristic, err == nil, took)
	if err != nil {
		return false, err
	}
	timing.record(dec.mode, 0, took)
	e.scoreAlpha(local, tr, u, predicted, dec.mode, dec.margin, ok)
	return ok, nil
}

// scoreAlpha records ground truth for one candidate: the EvModeActual
// trace event plus model α's accuracy counters when a prediction was
// actually made. With collection enabled every scored prediction also
// feeds the /modelz confusion matrix, the vote-margin calibration
// buckets, and the engine's drift detector (ground truth is free here —
// the evaluation itself labels the node, §4.2.1).
func (e *Engine) scoreAlpha(local *workerCounters, tr *obs.QueryTrace, u graph.NodeID, predicted bool, mode psi.Mode, margin float64, actualValid bool) {
	enabled := obs.Enabled()
	if enabled {
		v := int64(0)
		if actualValid {
			v = 1
		}
		tr.Event(obs.EvModeActual, int64(u), v)
	}
	if !predicted {
		return
	}
	local.alphaTotal++
	correct := (mode == psi.Optimistic) == actualValid
	if correct {
		local.alphaCorrect++
	}
	if enabled {
		obs.SmartModeChecks.Inc()
		if !correct {
			obs.SmartMispredicts.Inc()
		}
		obs.DefaultModelStats.ObserveAlpha(mode == psi.Optimistic, actualValid, margin)
		e.driftMu.Lock()
		fired := e.drift.Observe(correct)
		events := e.drift.Events()
		e.driftMu.Unlock()
		if fired {
			// ObserveDrift also raises smartpsi_model_drift_events_total.
			obs.DefaultModelStats.ObserveDrift()
			tr.Event(obs.EvDrift, int64(u), events)
		}
	}
}

// planTiming tracks average evaluation times per (method, plan), feeding
// the MaxTime budget of Section 4.3.
type planTiming struct {
	mu  sync.Mutex
	sum [2][]time.Duration
	n   [2][]int64
}

func newPlanTiming(plans int) *planTiming {
	t := &planTiming{}
	for m := 0; m < 2; m++ {
		t.sum[m] = make([]time.Duration, plans)
		t.n[m] = make([]int64, plans)
	}
	return t
}

func (t *planTiming) record(mode psi.Mode, planIdx int, took time.Duration) {
	if obs.Enabled() {
		obs.SmartPlanSeconds.Observe(took.Seconds())
	}
	t.mu.Lock()
	t.sum[mode][planIdx] += took
	t.n[mode][planIdx]++
	t.mu.Unlock()
}

// maxTime returns 2x the average observed time for (mode, plan)
// (Section 4.3). Modes or plans without observations borrow the other
// method's average for the same plan, then any average, then the floor.
func (t *planTiming) maxTime(mode psi.Mode, planIdx int) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	avg := t.avgLocked(int(mode), planIdx)
	if avg == 0 {
		avg = t.avgLocked(int(mode.Opposite()), planIdx)
	}
	if avg == 0 {
		for m := 0; m < 2; m++ {
			for p := range t.n[m] {
				if a := t.avgLocked(m, p); a > avg {
					avg = a
				}
			}
		}
	}
	budget := 2 * avg
	if budget < minDeadline {
		budget = minDeadline
	}
	return budget
}

func (t *planTiming) avgLocked(m, p int) time.Duration {
	if t.n[m][p] == 0 {
		return 0
	}
	return t.sum[m][p] / time.Duration(t.n[m][p])
}
