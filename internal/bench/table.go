package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// Table accumulates rows of an experiment's output and renders them
// aligned.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends one row; values are formatted with %v.
func (t *Table) Add(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = fmt.Sprintf("%v", v)
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n== %s ==\n", t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(t.Columns, "\t")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// RenderCSV writes the table as RFC-4180 CSV with a leading comment row
// carrying the title, for machine-readable experiment artifacts.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatDuration renders d compactly (ms below 10s, seconds above).
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < 10*time.Second:
		return fmt.Sprintf("%.0fms", float64(d.Milliseconds()))
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

// FormatCount renders a large count in scientific-ish notation matching
// the paper's Table 1 style; capped counts get a ">=" prefix.
func FormatCount(n int64, capped bool) string {
	prefix := ""
	if capped {
		prefix = ">="
	}
	switch {
	case n < 10_000:
		return fmt.Sprintf("%s%d", prefix, n)
	default:
		exp := 0
		f := float64(n)
		for f >= 10 {
			f /= 10
			exp++
		}
		return fmt.Sprintf("%s%.1fe%d", prefix, f, exp)
	}
}

// csvMode switches every experiment's table output to CSV; set it once
// at process start (not safe to toggle concurrently with experiments).
var csvMode bool

// SetCSVMode selects CSV (true) or aligned-text (false) table output
// for all experiments.
func SetCSVMode(on bool) { csvMode = on }

// render writes t in the process-wide output mode.
func render(t *Table, w io.Writer) error {
	if csvMode {
		return t.RenderCSV(w)
	}
	return t.Render(w)
}
