package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/psi"
	"repro/internal/smartpsi"
)

// cell aggregates one (dataset, size, system) measurement.
type cell struct {
	total    time.Duration
	done     int
	censored bool
}

func (c cell) String() string {
	s := FormatDuration(c.total)
	if c.censored {
		return ">" + s
	}
	return s
}

// runCell evaluates up to n queries through run, stopping early (and
// marking the cell censored) once the cumulative budget is spent or a
// query reports censoring.
func runCell(perQuery time.Duration, n int, run func(i int) (censored bool, err error)) (cell, error) {
	var c cell
	budget := perQuery * time.Duration(n)
	start := time.Now()
	for i := 0; i < n; i++ {
		censored, err := run(i)
		if err != nil {
			return c, err
		}
		c.done++
		if censored {
			c.censored = true
			break
		}
		if time.Since(start) > budget {
			c.censored = c.done < n
			break
		}
	}
	c.total = time.Since(start)
	return c, nil
}

// Table1 reproduces the paper's Table 1: the number of PSI results vs
// the number of full subgraph-isomorphism embeddings, per dataset and
// query size.
func Table1(env *Env, cfg Config, w io.Writer) error {
	t := NewTable("Table 1: PSI results vs. subgraph isomorphism embeddings", append([]string{"dataset", "metric"}, sizeHeaders(cfg.Sizes)...)...)
	for _, name := range []string{"yeast", "cora", "human"} {
		g, err := env.Graph(name)
		if err != nil {
			return err
		}
		eng, err := env.Engine(name)
		if err != nil {
			return err
		}
		psiRow := []interface{}{name, "PSI"}
		isoRow := []interface{}{name, "SubgraphIso"}
		for _, size := range cfg.Sizes {
			qs, err := env.Queries(name, size, size, cfg.QueriesPerSize)
			if err != nil {
				return err
			}
			var psiCount, isoCount int64
			capped := false
			for _, q := range qs.BySize[size] {
				res, err := eng.Evaluate(q)
				if err != nil {
					return err
				}
				psiCount += int64(len(res.Bindings))

				bt, err := match.NewBacktracking(g, q.G)
				if err != nil {
					return err
				}
				n, err := match.CountEmbeddings(bt, match.Budget{
					MaxEmbeddings: cfg.EmbeddingCap,
					Deadline:      time.Now().Add(cfg.PerQueryBudget),
				})
				if err == match.ErrBudget {
					capped = true
				} else if err != nil {
					return err
				}
				isoCount += n
			}
			psiRow = append(psiRow, FormatCount(psiCount, false))
			isoRow = append(isoRow, FormatCount(isoCount, capped))
		}
		t.Add(psiRow...)
		t.Add(isoRow...)
	}
	return render(t, w)
}

// Table2 reproduces the paper's Table 2: TurboIso vs TurboIso+ vs
// SmartPSI total time on the Human dataset.
func Table2(env *Env, cfg Config, w io.Writer) error {
	sizes := intersectSizes(cfg.Sizes, 4, 7)
	t := NewTable("Table 2: PSI solutions on Human", append([]string{"system"}, sizeHeaders(sizes)...)...)
	for _, sys := range []string{"TurboIso", "TurboIso+", "SmartPSI"} {
		row := []interface{}{sys}
		for _, size := range sizes {
			c, err := runSystemCell(env, cfg, "human", sys, size)
			if err != nil {
				return err
			}
			row = append(row, c)
		}
		t.Add(row...)
	}
	return render(t, w)
}

// Table3 reports the generated datasets against the published Table 3.
func Table3(env *Env, w io.Writer) error {
	t := NewTable("Table 3: datasets (generated vs published)",
		"dataset", "nodes", "edges", "labels", "avgDeg", "pub.nodes", "pub.edges", "pub.labels")
	for _, name := range gen.Names() {
		g, err := env.Graph(name)
		if err != nil {
			return err
		}
		s := graph.ComputeStats(g, false)
		pn, pe, pl, err := gen.PublishedStats(name)
		if err != nil {
			return err
		}
		t.Add(name, s.Nodes, s.Edges, s.Labels, fmt.Sprintf("%.1f", s.AvgDegree), pn, pe, pl)
	}
	return render(t, w)
}

// Fig7 reproduces Figure 7: query performance of SmartPSI vs the full
// subgraph-isomorphism systems on Yeast, Cora and Human.
func Fig7(env *Env, cfg Config, w io.Writer) error {
	t := NewTable("Figure 7: SmartPSI vs subgraph isomorphism systems (total time)",
		append([]string{"dataset", "system"}, sizeHeaders(cfg.Sizes)...)...)
	for _, name := range []string{"yeast", "cora", "human"} {
		for _, sys := range []string{"GraphQL", "CFL-Match", "TurboIso", "TurboIso+", "SmartPSI"} {
			row := []interface{}{name, sys}
			for _, size := range cfg.Sizes {
				c, err := runSystemCell(env, cfg, name, sys, size)
				if err != nil {
					return err
				}
				row = append(row, c)
			}
			t.Add(row...)
		}
	}
	return render(t, w)
}

// runSystemCell evaluates one workload cell with the named system.
func runSystemCell(env *Env, cfg Config, dataset, system string, size int) (cell, error) {
	g, err := env.Graph(dataset)
	if err != nil {
		return cell{}, err
	}
	qs, err := env.Queries(dataset, size, size, cfg.QueriesPerSize)
	if err != nil {
		return cell{}, err
	}
	queries := qs.BySize[size]
	var eng *smartpsi.Engine
	if system == "SmartPSI" {
		if eng, err = env.Engine(dataset); err != nil {
			return cell{}, err
		}
	}
	return runCell(cfg.PerQueryBudget, len(queries), func(i int) (bool, error) {
		q := queries[i]
		deadline := time.Now().Add(cfg.PerQueryBudget)
		switch system {
		case "SmartPSI":
			_, err := eng.EvaluateBudget(q, deadline)
			if err == psi.ErrDeadline {
				return true, nil
			}
			return false, err
		case "TurboIso":
			e, err := match.NewTurboIso(g, q.G)
			if err != nil {
				return false, err
			}
			_, _, err = match.PivotBindings(e, q, match.Budget{Deadline: deadline})
			if err == match.ErrBudget {
				return true, nil
			}
			return false, err
		case "TurboIso+":
			e, err := match.NewTurboIsoPlus(g, q)
			if err != nil {
				return false, err
			}
			_, _, err = e.PivotBindings(match.Budget{Deadline: deadline})
			if err == match.ErrBudget {
				return true, nil
			}
			return false, err
		case "CFL-Match":
			e, err := match.NewCFL(g, q.G)
			if err != nil {
				return false, err
			}
			_, _, err = match.PivotBindings(e, q, match.Budget{Deadline: deadline})
			if err == match.ErrBudget {
				return true, nil
			}
			return false, err
		case "GraphQL":
			e, err := match.NewGraphQL(g, q.G)
			if err != nil {
				return false, err
			}
			_, _, err = match.PivotBindings(e, q, match.Budget{Deadline: deadline})
			if err == match.ErrBudget {
				return true, nil
			}
			return false, err
		default:
			return false, fmt.Errorf("bench: unknown system %q", system)
		}
	})
}

func sizeHeaders(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("q=%d", s)
	}
	return out
}

func intersectSizes(sizes []int, lo, hi int) []int {
	var out []int
	for _, s := range sizes {
		if s >= lo && s <= hi {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = []int{lo}
	}
	return out
}
