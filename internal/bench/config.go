package bench

import "time"

// Config scales an experiment run. Full() approximates the paper's setup
// at laptop scale; Quick() keeps the whole suite under a few minutes for
// CI and `go test -bench`.
type Config struct {
	// Sizes are the query sizes swept (paper: 4-10).
	Sizes []int
	// QueriesPerSize is the workload width (paper: 1000, or 100/10 for
	// the heavyweight comparisons).
	QueriesPerSize int
	// PerQueryBudget caps each single query evaluation, standing in for
	// the paper's 24-hour task limit. Censored cells print as ">budget".
	PerQueryBudget time.Duration
	// EmbeddingCap bounds full-isomorphism enumeration in Table 1.
	EmbeddingCap int64
	// Workers is the Figure 12 scaling sweep.
	Workers []int
	// MiningSupportFrac sets the Figure 12 support threshold as a
	// fraction of the graph's node count.
	MiningSupportFrac float64
	// MiningMaxEdges caps mined pattern size (paper: 6 for Weibo).
	MiningMaxEdges int
}

// Full returns the laptop-scale approximation of the paper's setup.
func Full() Config {
	return Config{
		Sizes:             []int{4, 5, 6, 7, 8, 9, 10},
		QueriesPerSize:    10,
		PerQueryBudget:    2 * time.Second,
		EmbeddingCap:      20_000_000,
		Workers:           []int{1, 2, 4, 8, 16, 32},
		MiningSupportFrac: 0.05,
		MiningMaxEdges:    3,
	}
}

// Quick returns a configuration for fast regression runs.
func Quick() Config {
	return Config{
		Sizes:             []int{4, 5, 6},
		QueriesPerSize:    3,
		PerQueryBudget:    300 * time.Millisecond,
		EmbeddingCap:      200_000,
		Workers:           []int{1, 2, 4},
		MiningSupportFrac: 0.05,
		MiningMaxEdges:    3,
	}
}
