package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	return Config{
		Sizes:             []int{4, 5},
		QueriesPerSize:    2,
		PerQueryBudget:    150 * time.Millisecond,
		EmbeddingCap:      20_000,
		Workers:           []int{1, 2},
		MiningSupportFrac: 0.15,
		MiningMaxEdges:    2,
	}
}

// tinyEnv shrinks every dataset hard so each experiment runs in
// milliseconds-to-seconds.
func tinyEnv() *Env { return NewEnv(16, 7) }

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	env := tinyEnv()
	cfg := tinyConfig()
	for _, e := range Experiments() {
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(env, cfg, &buf); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") {
				t.Errorf("%s: no table rendered:\n%s", e.Name, out)
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("table1"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestEnvCaches(t *testing.T) {
	env := tinyEnv()
	g1, err := env.Graph("yeast")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := env.Graph("yeast")
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("graph not cached")
	}
	e1, err := env.Engine("yeast")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := env.Engine("yeast")
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("engine not cached")
	}
	q1, err := env.Queries("yeast", 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := env.Queries("yeast", 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Error("queries not cached")
	}
	if _, err := env.Graph("bogus"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatCount(123, false); got != "123" {
		t.Errorf("FormatCount(123) = %q", got)
	}
	if got := FormatCount(1_300_000, false); got != "1.3e6" {
		t.Errorf("FormatCount(1.3M) = %q", got)
	}
	if got := FormatCount(50_000, true); !strings.HasPrefix(got, ">=") {
		t.Errorf("capped count = %q", got)
	}
	if got := FormatDuration(1500 * time.Microsecond); got != "2ms" && got != "1ms" {
		t.Errorf("FormatDuration(1.5ms) = %q", got)
	}
	if got := FormatDuration(12 * time.Second); got != "12.0s" {
		t.Errorf("FormatDuration(12s) = %q", got)
	}
	if got := FormatDuration(100 * time.Microsecond); got != "0.10ms" {
		t.Errorf("FormatDuration(100us) = %q", got)
	}
	c := cell{total: time.Second, censored: true}
	if !strings.HasPrefix(c.String(), ">") {
		t.Errorf("censored cell = %q", c.String())
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.Add(1, "x")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "b", "1", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestIntersectSizes(t *testing.T) {
	got := intersectSizes([]int{3, 4, 5, 9}, 4, 7)
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("intersectSizes = %v", got)
	}
	got = intersectSizes([]int{9}, 4, 7)
	if len(got) != 1 || got[0] != 4 {
		t.Errorf("empty intersection fallback = %v", got)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := NewTable("demo", "a", "b")
	tab.Add(1, "x,y")
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# demo") || !strings.Contains(out, `"x,y"`) {
		t.Errorf("csv output wrong:\n%s", out)
	}
}
