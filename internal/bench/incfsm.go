package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/dyngraph"
	"repro/internal/fsm"
	"repro/internal/graph"
)

// IncFSM measures incremental vs from-scratch frequent-subgraph mining
// over a stream of edge-insertion batches (the extension experiment for
// internal/dyngraph + fsm.IncrementalMiner; see DESIGN.md). For each
// batch it reports the incremental Refresh time and the time of a full
// re-mine of the same snapshot.
func IncFSM(env *Env, cfg Config, w io.Writer) error {
	t := NewTable("Incremental FSM: Refresh vs full re-mine (Cora stand-in)",
		"batch", "edges", "frequent", "refresh", "evals", "full-remine", "speedup")

	g, err := env.Graph("cora")
	if err != nil {
		return err
	}
	d, err := dyngraph.FromGraph(g, g.NumLabels())
	if err != nil {
		return err
	}
	support := g.NumNodes() / 10
	if support < 2 {
		support = 2
	}
	mcfg := fsm.Config{Support: support, MaxEdges: cfg.MiningMaxEdges, Workers: 1}
	miner, err := fsm.NewIncrementalMiner(d, mcfg)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(env.Seed))
	batchEdges := g.NumNodes() / 20

	for batch := 0; batch <= 4; batch++ {
		if batch > 0 {
			added := 0
			for tries := 0; tries < 50*batchEdges && added < batchEdges; tries++ {
				u := graph.NodeID(rng.Intn(d.NumNodes()))
				v := graph.NodeID(rng.Intn(d.NumNodes()))
				if u == v || d.HasEdge(u, v) {
					continue
				}
				if err := miner.AddEdge(u, v); err != nil {
					return err
				}
				added++
			}
		}
		stats, err := miner.Refresh()
		if err != nil {
			return err
		}
		snap, err := d.Snapshot()
		if err != nil {
			return err
		}
		t0 := time.Now()
		full, err := fsm.Mine(snap, fsm.NewIsoSupport(snap), mcfg)
		if err != nil {
			return err
		}
		fullTime := time.Since(t0)
		if len(full.Frequent) != len(miner.Frequent()) {
			return fmt.Errorf("bench: incremental (%d) and full (%d) disagree at batch %d",
				len(miner.Frequent()), len(full.Frequent), batch)
		}
		speedup := "n/a"
		if stats.Elapsed > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(fullTime)/float64(stats.Elapsed))
		}
		t.Add(batch, d.NumEdges(), len(miner.Frequent()),
			FormatDuration(stats.Elapsed), stats.Evaluated, FormatDuration(fullTime), speedup)
	}
	return render(t, w)
}
