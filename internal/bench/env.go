// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 5). Each experiment is a
// function over a shared Env (which caches generated datasets, query
// workloads and SmartPSI engines) writing an aligned text table; the
// cmd/psi-bench binary and the repository's Go benchmarks both drive
// these functions.
package bench

import (
	"fmt"
	"sync"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/signature"
	"repro/internal/smartpsi"
	"repro/internal/workload"
)

// Env caches datasets, query sets and engines across experiments.
type Env struct {
	// ExtraScale further divides every dataset's default scale; quick
	// runs (unit benchmarks) use 4-8, full runs 1.
	ExtraScale int
	// Seed drives workload extraction and engine sampling.
	Seed int64

	mu      sync.Mutex
	graphs  map[string]*graph.Graph
	engines map[string]*smartpsi.Engine
	queries map[string]*workload.QuerySet
}

// NewEnv returns an Env with the given extra dataset scale (>=1).
func NewEnv(extraScale int, seed int64) *Env {
	if extraScale < 1 {
		extraScale = 1
	}
	return &Env{
		ExtraScale: extraScale,
		Seed:       seed,
		graphs:     make(map[string]*graph.Graph),
		engines:    make(map[string]*smartpsi.Engine),
		queries:    make(map[string]*workload.QuerySet),
	}
}

// Graph returns the named dataset at the Env's scale, generating and
// caching it on first use.
func (e *Env) Graph(name string) (*graph.Graph, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if g, ok := e.graphs[name]; ok {
		return g, nil
	}
	def, err := gen.DefaultSpec(name)
	if err != nil {
		return nil, err
	}
	full, err := gen.FullSpec(name)
	if err != nil {
		return nil, err
	}
	defaultScale := 1
	if def.Nodes > 0 {
		defaultScale = full.Nodes / def.Nodes
		if defaultScale < 1 {
			defaultScale = 1
		}
	}
	spec, err := gen.ScaledSpec(name, defaultScale*e.ExtraScale)
	if err != nil {
		return nil, err
	}
	g, err := gen.Generate(spec)
	if err != nil {
		return nil, err
	}
	e.graphs[name] = g
	return g, nil
}

// Engine returns a cached SmartPSI engine for the named dataset.
func (e *Env) Engine(name string) (*smartpsi.Engine, error) {
	g, err := e.Graph(name)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if eng, ok := e.engines[name]; ok {
		return eng, nil
	}
	eng, err := smartpsi.NewEngine(g, smartpsi.Options{Seed: e.Seed, SignatureMethod: signature.Matrix})
	if err != nil {
		return nil, err
	}
	e.engines[name] = eng
	return eng, nil
}

// EngineWithOptions returns a cached engine for the named dataset built
// with specific options, keyed separately from the default engine.
func (e *Env) EngineWithOptions(key, name string, opts smartpsi.Options) (*smartpsi.Engine, error) {
	g, err := e.Graph(name)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if eng, ok := e.engines[key]; ok {
		return eng, nil
	}
	eng, err := smartpsi.NewEngine(g, opts)
	if err != nil {
		return nil, err
	}
	e.engines[key] = eng
	return eng, nil
}

// Queries returns count queries of each size in [minSize, maxSize] for
// the named dataset, extracted once and cached.
func (e *Env) Queries(name string, minSize, maxSize, count int) (*workload.QuerySet, error) {
	g, err := e.Graph(name)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s/%d-%d/%d", name, minSize, maxSize, count)
	e.mu.Lock()
	defer e.mu.Unlock()
	if qs, ok := e.queries[key]; ok {
		return qs, nil
	}
	qs, err := workload.BuildQuerySet(g, minSize, maxSize, count, e.Seed)
	if err != nil {
		return nil, err
	}
	e.queries[key] = qs
	return qs, nil
}
