package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is a named, runnable table/figure reproduction.
type Experiment struct {
	Name        string
	Description string
	Run         func(env *Env, cfg Config, w io.Writer) error
}

// Experiments returns the registry of all reproductions, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "PSI results vs subgraph-iso embeddings (Yeast/Cora/Human)", Table1},
		{"table2", "TurboIso vs TurboIso+ vs SmartPSI on Human", Table2},
		{"table3", "dataset characteristics (generated vs published)",
			func(env *Env, _ Config, w io.Writer) error { return Table3(env, w) }},
		{"fig7", "SmartPSI vs subgraph-iso systems (Yeast/Cora/Human)", Fig7},
		{"fig8", "signature construction: exploration vs matrix",
			func(env *Env, _ Config, w io.Writer) error { return Fig8(env, w) }},
		{"fig9", "SmartPSI (2 threads) vs two-threaded baseline (YouTube/Twitter)", Fig9},
		{"fig10", "SmartPSI vs optimistic-only / pessimistic-only (Twitter)", Fig10},
		{"fig11", "node-type prediction accuracy", Fig11},
		{"table4", "training+prediction overhead percentage", Table4},
		{"fig12", "FSM: subgraph-iso vs PSI support, worker scaling (Twitter/Weibo)", Fig12},
		{"models", "Section 5.4 classifier comparison (RF vs SVM vs NN)", ModelComparison},
		{"ablations", "SmartPSI design-choice ablations (cache/plans/preemption/types)", Ablations},
		{"incfsm", "incremental FSM over an evolving graph vs full re-mining", IncFSM},
	}
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	var names []string
	for _, e := range Experiments() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (known: %v)", name, names)
}

// RunAll executes every experiment in paper order.
func RunAll(env *Env, cfg Config, w io.Writer) error {
	for _, e := range Experiments() {
		if err := e.Run(env, cfg, w); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}
