package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/fsm"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ml"
	"repro/internal/plan"
	"repro/internal/psi"
	"repro/internal/signature"
	"repro/internal/smartpsi"
)

// Fig8 reproduces Figure 8: exploration-based vs matrix-based
// neighborhood-signature construction time on every dataset.
func Fig8(env *Env, w io.Writer) error {
	t := NewTable("Figure 8: signature construction (exploration vs matrix)",
		"dataset", "nodes", "edges", "exploration", "matrix", "speedup")
	for _, name := range gen.Names() {
		g, err := env.Graph(name)
		if err != nil {
			return err
		}
		t0 := time.Now()
		if _, err := signature.Build(g, signature.DefaultDepth, g.NumLabels(), signature.Exploration); err != nil {
			return err
		}
		expl := time.Since(t0)
		t0 = time.Now()
		if _, err := signature.Build(g, signature.DefaultDepth, g.NumLabels(), signature.Matrix); err != nil {
			return err
		}
		mat := time.Since(t0)
		speedup := "n/a"
		if mat > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(expl)/float64(mat))
		}
		t.Add(name, g.NumNodes(), g.NumEdges(), FormatDuration(expl), FormatDuration(mat), speedup)
	}
	return render(t, w)
}

// Fig9 reproduces Figure 9: SmartPSI (two worker threads) vs the
// two-threaded racing baseline on the YouTube and Twitter datasets.
func Fig9(env *Env, cfg Config, w io.Writer) error {
	sizes := intersectSizes(cfg.Sizes, 4, 8)
	t := NewTable("Figure 9: SmartPSI (2 threads) vs two-threaded baseline",
		append([]string{"dataset", "system"}, sizeHeaders(sizes)...)...)
	for _, name := range []string{"youtube", "twitter"} {
		eng, err := env.EngineWithOptions(name+"/2t", name, smartpsi.Options{Seed: env.Seed, Threads: 2})
		if err != nil {
			return err
		}
		for _, sys := range []string{"two-threaded", "SmartPSI-2t"} {
			row := []interface{}{name, sys}
			for _, size := range sizes {
				qs, err := env.Queries(name, size, size, cfg.QueriesPerSize)
				if err != nil {
					return err
				}
				queries := qs.BySize[size]
				c, err := runCell(cfg.PerQueryBudget, len(queries), func(i int) (bool, error) {
					if sys == "SmartPSI-2t" {
						_, err := eng.EvaluateBudget(queries[i], time.Now().Add(cfg.PerQueryBudget))
						if err == psi.ErrDeadline {
							return true, nil
						}
						return false, err
					}
					return runStrategyQuery(env, eng, queries[i], psi.TwoThreaded, cfg.PerQueryBudget)
				})
				if err != nil {
					return err
				}
				row = append(row, c)
			}
			t.Add(row...)
		}
	}
	return render(t, w)
}

// Fig10 reproduces Figure 10: SmartPSI vs optimistic-only and
// pessimistic-only on the Twitter dataset.
func Fig10(env *Env, cfg Config, w io.Writer) error {
	sizes := intersectSizes(cfg.Sizes, 4, 8)
	t := NewTable("Figure 10: SmartPSI vs optimistic-only and pessimistic-only (Twitter)",
		append([]string{"system"}, sizeHeaders(sizes)...)...)
	eng, err := env.Engine("twitter")
	if err != nil {
		return err
	}
	n := cfg.QueriesPerSize
	if n > 10 {
		n = 10 // the paper uses 10 queries per size here
	}
	for _, sys := range []string{"Optimistic", "Pessimistic", "SmartPSI"} {
		row := []interface{}{sys}
		for _, size := range sizes {
			qs, err := env.Queries("twitter", size, size, n)
			if err != nil {
				return err
			}
			queries := qs.BySize[size]
			c, err := runCell(cfg.PerQueryBudget, len(queries), func(i int) (bool, error) {
				switch sys {
				case "SmartPSI":
					_, err := eng.EvaluateBudget(queries[i], time.Now().Add(cfg.PerQueryBudget))
					if err == psi.ErrDeadline {
						return true, nil
					}
					return false, err
				case "Optimistic":
					return runStrategyQuery(env, eng, queries[i], psi.OptimisticOnly, cfg.PerQueryBudget)
				default:
					return runStrategyQuery(env, eng, queries[i], psi.PessimisticOnly, cfg.PerQueryBudget)
				}
			})
			if err != nil {
				return err
			}
			row = append(row, c)
		}
		t.Add(row...)
	}
	return render(t, w)
}

// runStrategyQuery evaluates one query with a fixed psi strategy using
// the engine's precomputed data signatures, honoring the budget.
func runStrategyQuery(env *Env, eng *smartpsi.Engine, q graph.Query, strategy psi.Strategy, budget time.Duration) (censored bool, err error) {
	opts := eng.Options()
	qSigs, err := signature.Build(q.G, opts.SignatureDepth, eng.Signatures().Width(), opts.SignatureMethod)
	if err != nil {
		return false, err
	}
	ev, err := psi.NewEvaluator(eng.Graph(), q, eng.Signatures(), qSigs)
	if err != nil {
		return false, err
	}
	_, err = psi.EvaluateAll(ev, strategy, time.Now().Add(budget))
	if err == psi.ErrDeadline {
		return true, nil
	}
	return false, err
}

// Fig11 reproduces Figure 11: model α prediction accuracy per dataset
// and query size.
func Fig11(env *Env, cfg Config, w io.Writer) error {
	t := NewTable("Figure 11: node-type prediction accuracy",
		append([]string{"dataset"}, sizeHeaders(cfg.Sizes)...)...)
	for _, name := range []string{"yeast", "cora", "human", "youtube", "twitter"} {
		eng, err := env.Engine(name)
		if err != nil {
			return err
		}
		row := []interface{}{name}
		for _, size := range cfg.Sizes {
			qs, err := env.Queries(name, size, size, cfg.QueriesPerSize)
			if err != nil {
				return err
			}
			var agg smartpsi.AccuracyReport
			for _, q := range qs.BySize[size] {
				res, err := eng.EvaluateBudget(q, time.Now().Add(cfg.PerQueryBudget))
				if err == psi.ErrDeadline {
					continue // censored query: no telemetry
				}
				if err != nil {
					return err
				}
				agg.Correct += res.Alpha.Correct
				agg.Total += res.Alpha.Total
			}
			if agg.Total == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, fmt.Sprintf("%.1f%%", 100*agg.Accuracy()))
			}
		}
		t.Add(row...)
	}
	return render(t, w)
}

// Table4 reproduces Table 4: model training and prediction overhead as a
// percentage of total SmartPSI time.
func Table4(env *Env, cfg Config, w io.Writer) error {
	sizes := intersectSizes(cfg.Sizes, 4, 8)
	t := NewTable("Table 4: training+prediction overhead (% of total time)",
		append([]string{"dataset"}, sizeHeaders(sizes)...)...)
	for _, name := range []string{"human", "youtube", "twitter"} {
		eng, err := env.Engine(name)
		if err != nil {
			return err
		}
		row := []interface{}{name}
		for _, size := range sizes {
			qs, err := env.Queries(name, size, size, cfg.QueriesPerSize)
			if err != nil {
				return err
			}
			var overhead, total time.Duration
			for _, q := range qs.BySize[size] {
				res, err := eng.EvaluateBudget(q, time.Now().Add(cfg.PerQueryBudget))
				if err == psi.ErrDeadline {
					continue // censored query: no telemetry
				}
				if err != nil {
					return err
				}
				overhead += res.TrainTime + res.ModelTime
				total += res.TotalTime
			}
			if total == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, fmt.Sprintf("%.2f%%", 100*float64(overhead)/float64(total)))
			}
		}
		t.Add(row...)
	}
	return render(t, w)
}

// Fig12 reproduces Figure 12: the frequent-subgraph miner with
// traditional subgraph-isomorphism support vs PSI support, scaling with
// the worker count (the stand-in for ScaleMine's compute nodes).
func Fig12(env *Env, cfg Config, w io.Writer) error {
	t := NewTable("Figure 12: FSM with subgraph-iso vs PSI support",
		"dataset", "workers", "subgraph-iso", "psi", "speedup")
	for _, name := range []string{"twitter", "weibo"} {
		g, err := env.Graph(name)
		if err != nil {
			return err
		}
		support := int(cfg.MiningSupportFrac * float64(g.NumNodes()))
		if support < 2 {
			support = 2
		}
		sigs, err := signature.Build(g, signature.DefaultDepth, g.NumLabels(), signature.Matrix)
		if err != nil {
			return err
		}
		psiEval, err := fsm.NewPSISupport(g, sigs)
		if err != nil {
			return err
		}
		isoEval := fsm.NewIsoSupport(g)
		for _, workers := range cfg.Workers {
			mcfg := fsm.Config{
				Support:  support,
				MaxEdges: cfg.MiningMaxEdges,
				Workers:  workers,
				Deadline: time.Now().Add(20 * cfg.PerQueryBudget),
			}
			isoTime, isoCensored := mineTime(g, isoEval, mcfg)
			mcfg.Deadline = time.Now().Add(20 * cfg.PerQueryBudget)
			psiTime, psiCensored := mineTime(g, psiEval, mcfg)
			speedup := "n/a"
			if psiTime > 0 && !isoCensored && !psiCensored {
				speedup = fmt.Sprintf("%.1fx", float64(isoTime)/float64(psiTime))
			}
			isoCell := cell{total: isoTime, censored: isoCensored}
			psiCell := cell{total: psiTime, censored: psiCensored}
			t.Add(name, workers, isoCell, psiCell, speedup)
		}
	}
	return render(t, w)
}

func mineTime(g *graph.Graph, eval fsm.SupportEvaluator, cfg fsm.Config) (time.Duration, bool) {
	start := time.Now()
	_, err := fsm.Mine(g, eval, cfg)
	return time.Since(start), err != nil
}

// ModelComparison reproduces the Section 5.4 classifier study: Random
// Forest vs linear SVM vs a small neural network on the node-type
// problem, comparing accuracy and train+predict time.
func ModelComparison(env *Env, cfg Config, w io.Writer) error {
	t := NewTable("Section 5.4: classifier comparison (node-type model, Human)",
		"model", "holdout-acc", "cv-acc(5-fold)", "valid-F1", "train", "predict")
	ds, err := nodeTypeDataset(env, "human", 6, 1000)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(env.Seed))
	train, test := ds.Split(0.7, rng)
	models := []struct {
		name  string
		train func(d ml.Dataset) (ml.Classifier, error)
	}{
		{"random-forest", func(d ml.Dataset) (ml.Classifier, error) {
			return ml.TrainForest(d, ml.ForestConfig{Seed: env.Seed})
		}},
		{"linear-svm", func(d ml.Dataset) (ml.Classifier, error) {
			return ml.TrainSVM(d, ml.SVMConfig{Seed: env.Seed})
		}},
		{"neural-net", func(d ml.Dataset) (ml.Classifier, error) {
			return ml.TrainNN(d, ml.NNConfig{Seed: env.Seed})
		}},
	}
	for _, m := range models {
		t0 := time.Now()
		clf, err := m.train(train)
		if err != nil {
			return err
		}
		trainTime := time.Since(t0)
		t0 = time.Now()
		cm := ml.Evaluate(clf, test)
		predictTime := time.Since(t0)
		cvAcc := "n/a"
		if accs, err := ml.CrossValidate(ds, 5, env.Seed, m.train); err == nil {
			mean, std := ml.MeanStd(accs)
			cvAcc = fmt.Sprintf("%.1f%%±%.1f", 100*mean, 100*std)
		}
		t.Add(m.name,
			fmt.Sprintf("%.1f%%", 100*cm.Accuracy()),
			cvAcc,
			fmt.Sprintf("%.2f", cm.F1(1)),
			FormatDuration(trainTime), FormatDuration(predictTime))
	}
	return render(t, w)
}

// nodeTypeDataset builds a ground-truth (signature, valid?) dataset for
// extracted queries by evaluating up to maxNodes candidates
// pessimistically. It prefers a two-class dataset of at least 40 rows
// but degrades gracefully on very small graphs.
func nodeTypeDataset(env *Env, dataset string, querySize, maxNodes int) (ml.Dataset, error) {
	eng, err := env.Engine(dataset)
	if err != nil {
		return ml.Dataset{}, err
	}
	g := eng.Graph()
	rng := rand.New(rand.NewSource(env.Seed + 99))
	var fallback ml.Dataset
	for attempt := 0; attempt < 24; attempt++ {
		size := querySize - attempt%3 // also try smaller queries
		if size < 2 {
			size = 2
		}
		q, err := extractFor(env, dataset, size, rng)
		if err != nil {
			return ml.Dataset{}, err
		}
		opts := eng.Options()
		qSigs, err := signature.Build(q.G, opts.SignatureDepth, eng.Signatures().Width(), opts.SignatureMethod)
		if err != nil {
			return ml.Dataset{}, err
		}
		ev, err := psi.NewEvaluator(g, q, eng.Signatures(), qSigs)
		if err != nil {
			return ml.Dataset{}, err
		}
		c, err := compileHeuristic(q, g)
		if err != nil {
			return ml.Dataset{}, err
		}
		ds := ml.Dataset{NumClasses: 2}
		st := psi.NewState(q.Size())
		candidates := g.NodesWithLabel(q.G.Label(q.Pivot))
		for i, u := range candidates {
			if i >= maxNodes {
				break
			}
			ok, err := ev.Evaluate(st, c, u, psi.Pessimistic, psi.Limits{})
			if err != nil {
				return ml.Dataset{}, err
			}
			cls := 0
			if ok {
				cls = 1
			}
			ds.X = append(ds.X, eng.Signatures().Row(u))
			ds.Y = append(ds.Y, cls)
		}
		// Need both classes for a meaningful comparison.
		hasValid, hasInvalid := false, false
		for _, y := range ds.Y {
			if y == 1 {
				hasValid = true
			} else {
				hasInvalid = true
			}
		}
		if hasValid && hasInvalid && ds.Len() >= 40 {
			return ds, nil
		}
		if ds.Len() > fallback.Len() {
			fallback = ds
		}
	}
	if fallback.Len() >= 10 {
		return fallback, nil // small or single-class: still comparable
	}
	return ml.Dataset{}, fmt.Errorf("bench: could not build a node-type dataset on %s", dataset)
}

// compileHeuristic compiles the selectivity-based heuristic plan for q.
func compileHeuristic(q graph.Query, g *graph.Graph) (*plan.Compiled, error) {
	return plan.Compile(q, plan.Heuristic(q, g))
}

func extractFor(env *Env, dataset string, size int, rng *rand.Rand) (graph.Query, error) {
	qs, err := env.Queries(dataset, size, size, 1+rng.Intn(4))
	if err != nil {
		return graph.Query{}, err
	}
	list := qs.BySize[size]
	return list[rng.Intn(len(list))], nil
}
