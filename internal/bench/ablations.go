package bench

import (
	"io"
	"time"

	"repro/internal/psi"
	"repro/internal/smartpsi"
)

// Ablations measures the design choices DESIGN.md calls out by running
// the same workload with one feature disabled at a time: the prediction
// cache (Section 4.2.3), model β (learned plans, Section 4.2.2),
// preemption (Section 4.3), and model α (method choice, Section 4.2.1).
func Ablations(env *Env, cfg Config, w io.Writer) error {
	const dataset = "twitter"
	sizes := intersectSizes(cfg.Sizes, 4, 6)
	t := NewTable("Ablations: SmartPSI variants on "+dataset,
		append([]string{"variant"}, sizeHeaders(sizes)...)...)

	variants := []struct {
		name string
		opts smartpsi.Options
	}{
		{"full", smartpsi.Options{}},
		{"no-cache", smartpsi.Options{DisableCache: true}},
		{"no-plan-model", smartpsi.Options{DisablePlanModel: true}},
		{"no-preemption", smartpsi.Options{DisablePreemption: true}},
		{"no-type-model", smartpsi.Options{DisableTypeModel: true}},
	}
	for _, v := range variants {
		opts := v.opts
		opts.Seed = env.Seed
		eng, err := env.EngineWithOptions(dataset+"/abl/"+v.name, dataset, opts)
		if err != nil {
			return err
		}
		row := []interface{}{v.name}
		for _, size := range sizes {
			qs, err := env.Queries(dataset, size, size, cfg.QueriesPerSize)
			if err != nil {
				return err
			}
			queries := qs.BySize[size]
			c, err := runCell(cfg.PerQueryBudget, len(queries), func(i int) (bool, error) {
				_, err := eng.EvaluateBudget(queries[i], time.Now().Add(cfg.PerQueryBudget))
				if err == psi.ErrDeadline {
					return true, nil
				}
				return false, err
			})
			if err != nil {
				return err
			}
			row = append(row, c)
		}
		t.Add(row...)
	}
	return render(t, w)
}
