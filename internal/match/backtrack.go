package match

import (
	"fmt"

	"repro/internal/graph"
)

// Backtracking is the classic label/degree-filtered backtracking matcher
// in the lineage of Ullmann's algorithm: candidates come straight from
// the data graph's label index and neighbor lists, the visit order is
// chosen once by global label selectivity, and there is no candidate
// precomputation. It is the slowest competitor and the reference other
// engines are validated against.
type Backtracking struct {
	g *graph.Graph
	q *graph.Graph
}

// NewBacktracking returns a backtracking engine for query q over g.
// The query must be connected and non-empty.
func NewBacktracking(g *graph.Graph, q *graph.Graph) (*Backtracking, error) {
	if q.NumNodes() == 0 {
		return nil, fmt.Errorf("match: empty query")
	}
	if !graph.IsConnected(q) {
		return nil, fmt.Errorf("match: disconnected query")
	}
	return &Backtracking{g: g, q: q}, nil
}

// Name implements Engine.
func (b *Backtracking) Name() string { return "backtracking" }

// Enumerate implements Engine.
func (b *Backtracking) Enumerate(budget Budget, fn VisitFunc) error {
	start := b.startVertex()
	order := orderBySelectivity(b.q, start, func(v graph.NodeID) int64 {
		return int64(b.g.LabelFrequency(b.q.Label(v)))
	})
	startCands := b.g.NodesWithLabel(b.q.Label(start))
	return enumerate(b.g, b.q, order, nil, startCands, budget, fn)
}

// startVertex picks the query vertex minimizing freq(label)/degree, the
// standard selectivity heuristic.
func (b *Backtracking) startVertex() graph.NodeID {
	best := graph.NodeID(0)
	bestScore := float64(1 << 62)
	for v := graph.NodeID(0); int(v) < b.q.NumNodes(); v++ {
		deg := b.q.Degree(v)
		if deg == 0 {
			deg = 1
		}
		score := float64(b.g.LabelFrequency(b.q.Label(v))) / float64(deg)
		if score < bestScore {
			best, bestScore = v, score
		}
	}
	return best
}
