package match

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// CFL is a CFL-Match-style engine (Bi et al., SIGMOD 2016): the query is
// decomposed into core (its 2-core), forest (trees hanging off the core)
// and leaves (degree-1 vertices), candidates are computed up front and
// refined by iterated edge-consistency passes (a compact-path-index
// approximation), and matching visits core vertices before forest
// vertices before leaves — postponing the Cartesian-product-prone parts.
// Leaf-match compression is not reproduced: embeddings are enumerated
// one by one, which the experiments require anyway.
type CFL struct {
	g *graph.Graph
	q *graph.Graph

	core  []bool // in the query's 2-core
	leaf  []bool // degree-1 query vertices
	cands []nodeSet
}

// refinementPasses is the number of edge-consistency sweeps applied to
// the initial candidate sets. Three passes propagate constraints across
// paths of length three, matching CFL's BFS-tree up/down passes.
const refinementPasses = 3

// NewCFL returns a CFL-Match-style engine for connected query q.
func NewCFL(g *graph.Graph, q *graph.Graph) (*CFL, error) {
	if q.NumNodes() == 0 {
		return nil, fmt.Errorf("match: empty query")
	}
	if !graph.IsConnected(q) {
		return nil, fmt.Errorf("match: disconnected query")
	}
	c := &CFL{g: g, q: q}
	c.decompose()
	c.buildCandidates()
	return c, nil
}

// Name implements Engine.
func (c *CFL) Name() string { return "cfl" }

// decompose computes the 2-core and the leaf set of the query.
func (c *CFL) decompose() {
	n := c.q.NumNodes()
	deg := make([]int32, n)
	c.core = make([]bool, n)
	c.leaf = make([]bool, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		deg[v] = c.q.Degree(v)
		if deg[v] <= 1 {
			c.leaf[v] = true
		}
	}
	// Iteratively peel degree-<2 vertices; what survives is the 2-core.
	peel := make([]graph.NodeID, 0, n)
	peeled := make([]bool, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		if deg[v] < 2 {
			peel = append(peel, v)
			peeled[v] = true
		}
	}
	for len(peel) > 0 {
		v := peel[len(peel)-1]
		peel = peel[:len(peel)-1]
		for _, w := range c.q.Neighbors(v) {
			if peeled[w] {
				continue
			}
			deg[w]--
			if deg[w] < 2 {
				peeled[w] = true
				peel = append(peel, w)
			}
		}
	}
	for v := 0; v < n; v++ {
		c.core[v] = !peeled[v]
	}
}

// buildCandidates computes label/degree-filtered candidate sets and
// refines them: v stays a candidate of u only while, for every query
// neighbor u' of u, v has at least one neighbor in C(u').
func (c *CFL) buildCandidates() {
	n := c.q.NumNodes()
	c.cands = make([]nodeSet, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		set := make(nodeSet)
		for _, cand := range c.g.NodesWithLabel(c.q.Label(v)) {
			if c.g.Degree(cand) >= c.q.Degree(v) {
				set[cand] = struct{}{}
			}
		}
		c.cands[v] = set
	}
	for pass := 0; pass < refinementPasses; pass++ {
		changed := false
		for v := graph.NodeID(0); int(v) < n; v++ {
			for cand := range c.cands[v] {
				ok := true
				for _, w := range c.q.Neighbors(v) {
					found := false
					for _, nb := range c.g.NeighborsWithLabel(cand, c.q.Label(w)) {
						if _, in := c.cands[w][nb]; in {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					delete(c.cands[v], cand)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// order returns the CFL matching order: the start vertex (smallest
// candidate set among core vertices, or among all vertices for coreless
// queries), extended connectedly with core vertices first, then forest,
// then leaves, each tier by candidate-set size.
func (c *CFL) order() []graph.NodeID {
	n := c.q.NumNodes()
	tier := func(v graph.NodeID) int {
		switch {
		case c.core[v]:
			return 0
		case !c.leaf[v]:
			return 1
		default:
			return 2
		}
	}
	start := graph.NodeID(-1)
	for v := graph.NodeID(0); int(v) < n; v++ {
		if start < 0 || tier(v) < tier(start) ||
			(tier(v) == tier(start) && len(c.cands[v]) < len(c.cands[start])) {
			start = v
		}
	}
	// Greedy connected extension with (tier, |C|) priority.
	order := make([]graph.NodeID, 0, n)
	in := make([]bool, n)
	order = append(order, start)
	in[start] = true
	for len(order) < n {
		best := graph.NodeID(-1)
		for v := graph.NodeID(0); int(v) < n; v++ {
			if in[v] {
				continue
			}
			connected := false
			for _, w := range c.q.Neighbors(v) {
				if in[w] {
					connected = true
					break
				}
			}
			if !connected {
				continue
			}
			if best < 0 || tier(v) < tier(best) ||
				(tier(v) == tier(best) && len(c.cands[v]) < len(c.cands[best])) {
				best = v
			}
		}
		if best < 0 {
			break
		}
		order = append(order, best)
		in[best] = true
	}
	return order
}

// Enumerate implements Engine.
func (c *CFL) Enumerate(budget Budget, fn VisitFunc) error {
	order := c.order()
	start := order[0]
	startCands := make([]graph.NodeID, 0, len(c.cands[start]))
	for v := range c.cands[start] {
		startCands = append(startCands, v)
	}
	// Deterministic iteration order for reproducible experiment output.
	sortNodeIDs(startCands)
	return enumerate(c.g, c.q, order, c.cands, startCands, budget, fn)
}

// CandidateSetSizes exposes the refined candidate-set sizes (testing).
func (c *CFL) CandidateSetSizes() []int {
	sizes := make([]int, len(c.cands))
	for i, s := range c.cands {
		sizes[i] = len(s)
	}
	return sizes
}

// InCore exposes the 2-core membership of query vertex v (testing).
func (c *CFL) InCore(v graph.NodeID) bool { return c.core[v] }

func sortNodeIDs(s []graph.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
