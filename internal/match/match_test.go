package match

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

func engines(t testing.TB, g, q *graph.Graph) []Engine {
	t.Helper()
	bt, err := NewBacktracking(g, q)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := NewTurboIso(g, q)
	if err != nil {
		t.Fatal(err)
	}
	cfl, err := NewCFL(g, q)
	if err != nil {
		t.Fatal(err)
	}
	return []Engine{bt, ti, cfl}
}

func TestFigure1EmbeddingCount(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	for _, eng := range engines(t, g, q.G) {
		n, err := CountEmbeddings(eng, Budget{})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		if n != graphtest.Figure1EmbeddingCount {
			t.Errorf("%s: %d embeddings, want %d", eng.Name(), n, graphtest.Figure1EmbeddingCount)
		}
	}
}

func TestFigure1PivotBindings(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	want := graphtest.Figure1PivotBindings()
	for _, eng := range engines(t, g, q.G) {
		got, emb, err := PivotBindings(eng, q, Budget{})
		if err != nil {
			t.Fatalf("%s: %v", eng.Name(), err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("%s: bindings %v, want %v", eng.Name(), got, want)
		}
		if emb != graphtest.Figure1EmbeddingCount {
			t.Errorf("%s: %d intermediate embeddings, want %d", eng.Name(), emb, graphtest.Figure1EmbeddingCount)
		}
	}
}

func TestTurboIsoPlusFigure1(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	p, err := NewTurboIsoPlus(g, q)
	if err != nil {
		t.Fatal(err)
	}
	got, emb, err := p.PivotBindings(Budget{})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := graphtest.Figure1PivotBindings()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("bindings %v, want %v", got, want)
	}
	// TurboIso+ materializes exactly one embedding per valid binding,
	// far fewer than full enumeration.
	if emb != 2 {
		t.Errorf("embeddings = %d, want 2", emb)
	}
}

// TestEnginesAgree cross-validates all engines' embedding counts on
// random graphs against each other (backtracking is the reference).
func TestEnginesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(15, 35, 3, seed)
		comp := graph.ConnectedComponent(g, graph.NodeID(rng.Intn(g.NumNodes())))
		size := 3 + rng.Intn(3)
		if len(comp) < size {
			return true
		}
		sub, _, err := graph.InducedSubgraph(g, comp[:size])
		if err != nil || !graph.IsConnected(sub) {
			return true
		}
		var counts []int64
		for _, eng := range engines(t, g, sub) {
			n, err := CountEmbeddings(eng, Budget{})
			if err != nil {
				return false
			}
			counts = append(counts, n)
		}
		if counts[0] != counts[1] || counts[0] != counts[2] {
			t.Logf("seed %d: counts %v", seed, counts)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTurboIsoPlusMatchesProjection: TurboIso+'s bindings must equal the
// projection of full enumeration on random inputs.
func TestTurboIsoPlusMatchesProjection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(15, 35, 3, seed)
		comp := graph.ConnectedComponent(g, graph.NodeID(rng.Intn(g.NumNodes())))
		size := 3 + rng.Intn(3)
		if len(comp) < size {
			return true
		}
		sub, _, err := graph.InducedSubgraph(g, comp[:size])
		if err != nil || !graph.IsConnected(sub) {
			return true
		}
		q, err := graph.NewQuery(sub, graph.NodeID(rng.Intn(size)))
		if err != nil {
			return false
		}
		bt, err := NewBacktracking(g, sub)
		if err != nil {
			return false
		}
		want, _, err := PivotBindings(bt, q, Budget{})
		if err != nil {
			return false
		}
		p, err := NewTurboIsoPlus(g, q)
		if err != nil {
			return false
		}
		got, _, err := p.PivotBindings(Budget{})
		if err != nil {
			return false
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Logf("seed %d: got %v want %v", seed, got, want)
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetMaxEmbeddings(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	for _, eng := range engines(t, g, q.G) {
		n, err := CountEmbeddings(eng, Budget{MaxEmbeddings: 2})
		if err != ErrBudget {
			t.Errorf("%s: err = %v, want ErrBudget", eng.Name(), err)
		}
		if n != 2 {
			t.Errorf("%s: count = %d, want 2", eng.Name(), n)
		}
	}
}

func TestBudgetDeadline(t *testing.T) {
	// Large single-label blob with a 6-cycle query: enumeration runs long
	// enough for the expired deadline to be noticed.
	rng := rand.New(rand.NewSource(5))
	b := graph.NewBuilder(200, 3000)
	for i := 0; i < 200; i++ {
		b.AddNode(0)
	}
	for b.NumEdges() < 3000 {
		u, v := graph.NodeID(rng.Intn(200)), graph.NodeID(rng.Intn(200))
		if u != v && !b.HasEdge(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.MustBuild()
	qb := graph.NewBuilder(6, 6)
	for i := 0; i < 6; i++ {
		qb.AddNode(0)
	}
	for i := graph.NodeID(0); i < 6; i++ {
		if err := qb.AddEdge(i, (i+1)%6); err != nil {
			t.Fatal(err)
		}
	}
	query := qb.MustBuild()
	deadline := time.Now().Add(5 * time.Millisecond)
	for _, eng := range engines(t, g, query) {
		_, err := CountEmbeddings(eng, Budget{Deadline: deadline})
		if err != ErrBudget {
			t.Errorf("%s: err = %v, want ErrBudget", eng.Name(), err)
		}
	}
}

func TestEngineConstructionErrors(t *testing.T) {
	g := graphtest.Figure1Data()
	empty := graph.NewBuilder(0, 0).MustBuild()
	db := graph.NewBuilder(2, 0)
	db.AddNode(0)
	db.AddNode(1)
	disconnected := db.MustBuild()
	if _, err := NewBacktracking(g, empty); err == nil {
		t.Error("backtracking accepted empty query")
	}
	if _, err := NewTurboIso(g, disconnected); err == nil {
		t.Error("turboiso accepted disconnected query")
	}
	if _, err := NewCFL(g, disconnected); err == nil {
		t.Error("cfl accepted disconnected query")
	}
	if _, err := NewTurboIsoPlus(g, graph.Query{G: disconnected, Pivot: 0}); err == nil {
		t.Error("turboiso+ accepted disconnected query")
	}
}

func TestCFLDecomposition(t *testing.T) {
	// Query: triangle 0-1-2 with a pendant path 2-3-4. Core = {0,1,2},
	// forest = {3}, leaf = {4}.
	b := graph.NewBuilder(5, 5)
	for i := 0; i < 5; i++ {
		b.AddNode(0)
	}
	edges := [][2]graph.NodeID{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	q := b.MustBuild()
	g := graphtest.Figure1Data()
	c, err := NewCFL(g, q)
	if err != nil {
		t.Fatal(err)
	}
	wantCore := []bool{true, true, true, false, false}
	for v, want := range wantCore {
		if got := c.InCore(graph.NodeID(v)); got != want {
			t.Errorf("InCore(%d) = %v, want %v", v, got, want)
		}
	}
}

func TestCFLRefinementPrunes(t *testing.T) {
	// Data graph has A nodes both with and without B neighbors; only
	// those with a B neighbor survive refinement for an A-B query node.
	b := graph.NewBuilder(4, 1)
	a1 := b.AddNode(0)
	bNode := b.AddNode(1)
	b.AddNode(0) // a2: isolated A, must be pruned
	if err := b.AddEdge(a1, bNode); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	qb := graph.NewBuilder(2, 1)
	qa := qb.AddNode(0)
	qbn := qb.AddNode(1)
	if err := qb.AddEdge(qa, qbn); err != nil {
		t.Fatal(err)
	}
	c, err := NewCFL(g, qb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	sizes := c.CandidateSetSizes()
	if sizes[0] != 1 { // only a1 survives for the A query node
		t.Errorf("candidate sizes = %v, want [1 1]", sizes)
	}
}

func TestVisitFuncEarlyStop(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	for _, eng := range engines(t, g, q.G) {
		var n int
		err := eng.Enumerate(Budget{}, func(m []graph.NodeID) bool {
			n++
			return n < 3
		})
		if err != nil {
			t.Errorf("%s: early stop returned %v", eng.Name(), err)
		}
		if n != 3 {
			t.Errorf("%s: visited %d, want 3", eng.Name(), n)
		}
	}
}

func TestMappingIsQueryIndexed(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	for _, eng := range engines(t, g, q.G) {
		err := eng.Enumerate(Budget{}, func(m []graph.NodeID) bool {
			if len(m) != 3 {
				t.Fatalf("%s: mapping length %d", eng.Name(), len(m))
			}
			// Labels must correspond: m[v] has v's label.
			for v := graph.NodeID(0); v < 3; v++ {
				if g.Label(m[v]) != q.G.Label(v) {
					t.Fatalf("%s: m[%d]=%d has label %d, want %d",
						eng.Name(), v, m[v], g.Label(m[v]), q.G.Label(v))
				}
			}
			// All edges present.
			for v := graph.NodeID(0); v < 3; v++ {
				for _, w := range q.G.Neighbors(v) {
					if !g.HasEdge(m[v], m[w]) {
						t.Fatalf("%s: edge (%d,%d) not mapped", eng.Name(), v, w)
					}
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
