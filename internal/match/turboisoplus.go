package match

import (
	"fmt"
	"time"

	"repro/internal/graph"
)

// TurboIsoPlus is the paper's TurboIso⁺ (Section 5.2): TurboIso's
// region-based machinery repurposed for PSI queries. The start vertex is
// forced to the query pivot, and for each pivot candidate the search
// stops at the first embedding — every further embedding would bind the
// same pivot candidate, which PSI does not need.
type TurboIsoPlus struct {
	g *graph.Graph
	q graph.Query
	t *TurboIso
}

// NewTurboIsoPlus returns a TurboIso⁺ engine for pivoted query q.
func NewTurboIsoPlus(g *graph.Graph, q graph.Query) (*TurboIsoPlus, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("match: %v", err)
	}
	t := &TurboIso{g: g, q: q.G}
	t.start = q.Pivot // the pivot anchors every region
	t.buildSpanningTree()
	return &TurboIsoPlus{g: g, q: q, t: t}, nil
}

// Name identifies the engine in experiment output.
func (p *TurboIsoPlus) Name() string { return "turboiso+" }

// PivotBindings evaluates the PSI query: every data node that roots a
// non-empty region with at least one embedding. It reports the number of
// embeddings materialized (at most one per binding plus the failed
// searches' zero).
func (p *TurboIsoPlus) PivotBindings(budget Budget) (bindings []graph.NodeID, embeddings int64, err error) {
	startCands := p.g.NodesWithLabel(p.q.G.Label(p.q.Pivot))
	for _, v := range startCands {
		if p.g.Degree(v) < p.q.G.Degree(p.q.Pivot) {
			continue
		}
		if !budget.Deadline.IsZero() && time.Now().After(budget.Deadline) {
			return bindings, embeddings, ErrBudget
		}
		cr := p.t.exploreRegion(v)
		if cr == nil {
			continue
		}
		order := p.t.regionOrder(cr)
		found := false
		err := enumerate(p.g, p.q.G, order, cr, []graph.NodeID{v},
			Budget{Deadline: budget.Deadline}, func(m []graph.NodeID) bool {
				found = true
				return false // stop at the first embedding for this pivot candidate
			})
		if err != nil {
			return bindings, embeddings, err
		}
		if found {
			embeddings++
			bindings = append(bindings, v)
		}
	}
	return bindings, embeddings, nil
}
