package match

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

// benchQuery is a 4-node connected query extracted deterministically
// from the benchmark data graph.
func benchFixture(b *testing.B) (*graph.Graph, *graph.Graph, graph.Query) {
	b.Helper()
	g := graphtest.Random(800, 3200, 4, 77)
	comp := graph.ConnectedComponent(g, 0)
	sub, _, err := graph.InducedSubgraph(g, comp[:4])
	if err != nil || !graph.IsConnected(sub) {
		// Deterministic seed: this does not happen; guard anyway.
		b.Skip("fixture query disconnected")
	}
	q, err := graph.NewQuery(sub, 0)
	if err != nil {
		b.Fatal(err)
	}
	return g, sub, q
}

func BenchmarkBacktrackingEnumerate(b *testing.B) {
	g, sub, _ := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewBacktracking(g, sub)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := CountEmbeddings(e, Budget{MaxEmbeddings: 100_000}); err != nil && err != ErrBudget {
			b.Fatal(err)
		}
	}
}

func BenchmarkTurboIsoEnumerate(b *testing.B) {
	g, sub, _ := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewTurboIso(g, sub)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := CountEmbeddings(e, Budget{MaxEmbeddings: 100_000}); err != nil && err != ErrBudget {
			b.Fatal(err)
		}
	}
}

func BenchmarkCFLEnumerate(b *testing.B) {
	g, sub, _ := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewCFL(g, sub)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := CountEmbeddings(e, Budget{MaxEmbeddings: 100_000}); err != nil && err != ErrBudget {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphQLEnumerate(b *testing.B) {
	g, sub, _ := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewGraphQL(g, sub)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := CountEmbeddings(e, Budget{MaxEmbeddings: 100_000}); err != nil && err != ErrBudget {
			b.Fatal(err)
		}
	}
}

func BenchmarkTurboIsoPlusPSI(b *testing.B) {
	g, _, q := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewTurboIsoPlus(g, q)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := e.PivotBindings(Budget{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTurboIsoRegionSizes(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	ti, err := NewTurboIso(g, q.G)
	if err != nil {
		t.Fatal(err)
	}
	// Start vertex candidates root regions; u1 (node 0) roots one.
	var anyRegion bool
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if g.Label(u) != q.G.Label(ti.start) {
			continue
		}
		if sizes := ti.sortedSetSizes(u); sizes != nil {
			anyRegion = true
			if len(sizes) != q.G.NumNodes() {
				t.Errorf("region from %d has %d sets, want %d", u, len(sizes), q.G.NumNodes())
			}
			for _, s := range sizes {
				if s < 1 {
					t.Errorf("region from %d has empty candidate set", u)
				}
			}
		}
	}
	if !anyRegion {
		t.Error("no candidate regions on the Figure 1 fixture")
	}
}
