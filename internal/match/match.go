// Package match implements full subgraph-isomorphism engines: the
// competitors SmartPSI is evaluated against in the paper (Section 5.2).
//
// Three engines are provided: a generic label/degree-filtered
// backtracking matcher (the classic Ullmann-style baseline), a
// TurboIso-style engine built on per-region candidate exploration, and a
// CFL-Match-style engine built on core-forest decomposition with
// iterated candidate refinement. All three enumerate every embedding of
// the query; PSIViaEnumeration and TurboIsoPlus adapt them to pivoted
// queries the way existing applications do (project the pivot column,
// or stop at the first embedding per pivot candidate).
//
// The engines reproduce the published algorithms' structure and search
// behavior, not their exact engineering: TurboIso's NEC-tree merging and
// CFL-Match's leaf compression are simplified to plain enumeration
// (documented in DESIGN.md) since the experiments need embedding counts,
// which compression does not change.
package match

import (
	"errors"
	"time"

	"repro/internal/graph"
)

// ErrBudget reports that an enumeration exceeded its budget (deadline or
// embedding cap).
var ErrBudget = errors.New("match: enumeration budget exceeded")

// Budget bounds an enumeration. The zero value means unlimited.
type Budget struct {
	// Deadline aborts the enumeration once passed (zero: none).
	Deadline time.Time
	// MaxEmbeddings aborts after this many embeddings (0: unlimited).
	MaxEmbeddings int64
}

// VisitFunc receives each embedding as a query-node-indexed slice of data
// nodes (mapping[q] = data node bound to query node q). The slice is
// reused between calls; copy it to retain it. Return false to stop the
// enumeration early (not an error).
type VisitFunc func(mapping []graph.NodeID) bool

// Engine enumerates all embeddings of one query in one data graph.
type Engine interface {
	// Name identifies the engine in experiment output.
	Name() string
	// Enumerate calls fn for every embedding, in an engine-specific
	// order. It returns ErrBudget if the budget ran out, nil otherwise
	// (including when fn stopped the enumeration).
	Enumerate(budget Budget, fn VisitFunc) error
}

// CountEmbeddings runs eng to completion and returns the number of
// embeddings. If the budget runs out it returns the count so far and
// ErrBudget.
func CountEmbeddings(eng Engine, budget Budget) (int64, error) {
	var n int64
	err := eng.Enumerate(budget, func([]graph.NodeID) bool {
		n++
		return true
	})
	return n, err
}

// PivotBindings answers a PSI query the way subgraph-isomorphism-based
// applications do: enumerate every embedding and project the distinct
// data nodes bound to the pivot. It also reports the number of
// embeddings enumerated (the "intermediate results" of Table 1).
func PivotBindings(eng Engine, q graph.Query, budget Budget) (bindings []graph.NodeID, embeddings int64, err error) {
	seen := make(map[graph.NodeID]struct{})
	err = eng.Enumerate(budget, func(m []graph.NodeID) bool {
		embeddings++
		u := m[q.Pivot]
		if _, ok := seen[u]; !ok {
			seen[u] = struct{}{}
			bindings = append(bindings, u)
		}
		return true
	})
	return bindings, embeddings, err
}

// enumState is the shared backtracking core. Engines differ only in the
// visit order and per-query-node candidate restriction they compute.
type enumState struct {
	g       *graph.Graph
	q       *graph.Graph
	order   []graph.NodeID // query visit order, connected prefixes
	anchor  []int          // position of the anchor for each order position
	anchorE []graph.Label  // required edge label to the anchor
	checks  [][]posCheck   // non-anchor adjacency constraints
	allowed []nodeSet      // optional candidate restriction per query node

	mapping []graph.NodeID // query-node-indexed current bindings
	bound   []graph.NodeID // order-position-indexed bindings
	fn      VisitFunc
	stopped bool

	deadline time.Time
	maxEmb   int64
	emb      int64
	ticks    int64
	err      error
}

type posCheck struct {
	pos       int
	edgeLabel graph.Label
}

// nodeSet is a candidate restriction; nil means unrestricted.
type nodeSet map[graph.NodeID]struct{}

func (s nodeSet) contains(u graph.NodeID) bool {
	if s == nil {
		return true
	}
	_, ok := s[u]
	return ok
}

// compileOrder lowers a connected visit order into anchor/check programs.
// order[0] has no anchor; its candidates are supplied by the engine.
func compileOrder(q *graph.Graph, order []graph.NodeID) (anchor []int, anchorE []graph.Label, checks [][]posCheck) {
	pos := make([]int, q.NumNodes())
	for i, v := range order {
		pos[v] = i
	}
	anchor = make([]int, len(order))
	anchorE = make([]graph.Label, len(order))
	checks = make([][]posCheck, len(order))
	for i, v := range order {
		anchor[i] = -1
		anchorE[i] = graph.NoLabel
		if i == 0 {
			continue
		}
		for j, w := range q.Neighbors(v) {
			pw := pos[w]
			if pw >= i {
				continue
			}
			el := q.EdgeLabelAt(v, j)
			if anchor[i] < 0 || pw < anchor[i] {
				if anchor[i] >= 0 {
					checks[i] = append(checks[i], posCheck{pos: anchor[i], edgeLabel: anchorE[i]})
				}
				anchor[i], anchorE[i] = pw, el
			} else {
				checks[i] = append(checks[i], posCheck{pos: pw, edgeLabel: el})
			}
		}
	}
	return anchor, anchorE, checks
}

func (s *enumState) tick() bool {
	s.ticks++
	if !s.deadline.IsZero() && s.ticks&1023 == 0 && time.Now().After(s.deadline) {
		s.err = ErrBudget
		return false
	}
	return true
}

// run enumerates all extensions given the first binding already placed.
func (s *enumState) run(depth int) bool {
	if s.stopped || s.err != nil {
		return false
	}
	if depth == len(s.order) {
		s.emb++
		if !s.fn(s.mapping) {
			s.stopped = true
			return false
		}
		if s.maxEmb > 0 && s.emb >= s.maxEmb {
			s.err = ErrBudget
			return false
		}
		return true
	}
	if !s.tick() {
		return false
	}
	qn := s.order[depth]
	anchorNode := s.bound[s.anchor[depth]]
	label := s.q.Label(qn)
	qDeg := s.q.Degree(qn)
	lo, hi := s.g.NeighborRangeWithLabel(anchorNode, label)
	nbrs := s.g.Neighbors(anchorNode)
	for i := lo; i < hi; i++ {
		cand := nbrs[i]
		if s.anchorE[depth] != graph.NoLabel && s.g.EdgeLabelAt(anchorNode, i) != s.anchorE[depth] {
			continue
		}
		if !s.allowed[qn].contains(cand) {
			continue
		}
		if s.g.Degree(cand) < qDeg {
			continue
		}
		if s.isBound(depth, cand) {
			continue
		}
		if !s.checkEdges(depth, cand) {
			continue
		}
		s.bound[depth] = cand
		s.mapping[qn] = cand
		ok := s.run(depth + 1)
		s.mapping[qn] = -1
		if !ok && (s.stopped || s.err != nil) {
			return false
		}
	}
	return true
}

func (s *enumState) isBound(depth int, u graph.NodeID) bool {
	for i := 0; i < depth; i++ {
		if s.bound[i] == u {
			return true
		}
	}
	return false
}

func (s *enumState) checkEdges(depth int, cand graph.NodeID) bool {
	for _, chk := range s.checks[depth] {
		other := s.bound[chk.pos]
		if chk.edgeLabel == graph.NoLabel {
			if !s.g.HasEdge(cand, other) {
				return false
			}
		} else {
			l, ok := s.g.EdgeLabel(cand, other)
			if !ok || l != chk.edgeLabel {
				return false
			}
		}
	}
	return true
}

// enumerate runs the core over every start candidate the engine supplies.
func enumerate(g, q *graph.Graph, order []graph.NodeID, allowed []nodeSet,
	startCands []graph.NodeID, budget Budget, fn VisitFunc) error {
	if q.NumNodes() == 0 {
		return nil
	}
	anchor, anchorE, checks := compileOrder(q, order)
	s := &enumState{
		g: g, q: q, order: order,
		anchor: anchor, anchorE: anchorE, checks: checks,
		allowed:  allowed,
		mapping:  make([]graph.NodeID, q.NumNodes()),
		bound:    make([]graph.NodeID, len(order)),
		fn:       fn,
		deadline: budget.Deadline,
		maxEmb:   budget.MaxEmbeddings,
	}
	if s.allowed == nil {
		s.allowed = make([]nodeSet, q.NumNodes())
	}
	for i := range s.mapping {
		s.mapping[i] = -1
	}
	start := order[0]
	qDeg := q.Degree(start)
	for _, v := range startCands {
		if g.Degree(v) < qDeg || !s.allowed[start].contains(v) {
			continue
		}
		if !s.tick() {
			break
		}
		s.bound[0] = v
		s.mapping[start] = v
		s.run(1)
		s.mapping[start] = -1
		if s.stopped || s.err != nil {
			break
		}
	}
	return s.err
}

// orderBySelectivity returns a connected visit order over q starting at
// start, greedily preferring nodes with the smallest estimated candidate
// count (estimate[u]), breaking ties by higher query degree.
func orderBySelectivity(q *graph.Graph, start graph.NodeID, estimate func(graph.NodeID) int64) []graph.NodeID {
	n := q.NumNodes()
	order := make([]graph.NodeID, 0, n)
	in := make([]bool, n)
	order = append(order, start)
	in[start] = true
	for len(order) < n {
		best := graph.NodeID(-1)
		var bestEst int64
		var bestDeg int32
		for v := graph.NodeID(0); int(v) < n; v++ {
			if in[v] {
				continue
			}
			connected := false
			for _, w := range q.Neighbors(v) {
				if in[w] {
					connected = true
					break
				}
			}
			if !connected {
				continue
			}
			est := estimate(v)
			deg := q.Degree(v)
			if best < 0 || est < bestEst || (est == bestEst && deg > bestDeg) {
				best, bestEst, bestDeg = v, est, deg
			}
		}
		if best < 0 {
			break // disconnected query: callers validate beforehand
		}
		order = append(order, best)
		in[best] = true
	}
	return order
}
