package match

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// GraphQL is a GraphQL-style engine (He & Singh, SIGMOD 2008), the
// other classic competitor the paper's related work singles out. Its
// distinguishing ideas, reproduced here, are (1) candidate filtering by
// *neighborhood profiles* — the sorted multiset of neighbor labels; a
// data node can host a query node only if its profile contains the
// query node's profile as a sub-multiset — (2) iterated pseudo-
// isomorphism refinement of the candidate sets, and (3) a global
// left-deep join order chosen by estimated candidate cardinality.
type GraphQL struct {
	g *graph.Graph
	q *graph.Graph

	cands []nodeSet
}

// profileRefinements is the number of pseudo-isomorphism sweeps; GraphQL
// uses a small constant depth.
const profileRefinements = 2

// NewGraphQL returns a GraphQL-style engine for connected query q.
func NewGraphQL(g *graph.Graph, q *graph.Graph) (*GraphQL, error) {
	if q.NumNodes() == 0 {
		return nil, fmt.Errorf("match: empty query")
	}
	if !graph.IsConnected(q) {
		return nil, fmt.Errorf("match: disconnected query")
	}
	e := &GraphQL{g: g, q: q}
	e.buildCandidates()
	return e, nil
}

// Name implements Engine.
func (e *GraphQL) Name() string { return "graphql" }

// profile returns the sorted neighbor-label list of node u in g.
func profile(g *graph.Graph, u graph.NodeID) []graph.Label {
	nbrs := g.Neighbors(u)
	p := make([]graph.Label, len(nbrs))
	for i, w := range nbrs {
		p[i] = g.Label(w)
	}
	sort.Slice(p, func(i, j int) bool { return p[i] < p[j] })
	return p
}

// containsProfile reports whether sorted label multiset a contains b.
func containsProfile(a, b []graph.Label) bool {
	i := 0
	for _, want := range b {
		for i < len(a) && a[i] < want {
			i++
		}
		if i >= len(a) || a[i] != want {
			return false
		}
		i++
	}
	return true
}

func (e *GraphQL) buildCandidates() {
	n := e.q.NumNodes()
	qProfiles := make([][]graph.Label, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		qProfiles[v] = profile(e.q, v)
	}
	e.cands = make([]nodeSet, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		set := make(nodeSet)
		deg := e.q.Degree(v)
		for _, cand := range e.g.NodesWithLabel(e.q.Label(v)) {
			if e.g.Degree(cand) < deg {
				continue
			}
			if containsProfile(profile(e.g, cand), qProfiles[v]) {
				set[cand] = struct{}{}
			}
		}
		e.cands[v] = set
	}
	// Pseudo-isomorphism refinement: v stays a candidate of u only while
	// each query neighbor of u has a candidate among v's neighbors.
	for pass := 0; pass < profileRefinements; pass++ {
		changed := false
		for v := graph.NodeID(0); int(v) < n; v++ {
			for cand := range e.cands[v] {
				ok := true
				for _, w := range e.q.Neighbors(v) {
					found := false
					for _, nb := range e.g.NeighborsWithLabel(cand, e.q.Label(w)) {
						if _, in := e.cands[w][nb]; in {
							found = true
							break
						}
					}
					if !found {
						ok = false
						break
					}
				}
				if !ok {
					delete(e.cands[v], cand)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}

// order returns GraphQL's global join order: the smallest candidate set
// first, extended connectedly by smallest estimated cardinality.
func (e *GraphQL) order() []graph.NodeID {
	n := e.q.NumNodes()
	start := graph.NodeID(0)
	for v := graph.NodeID(1); int(v) < n; v++ {
		if len(e.cands[v]) < len(e.cands[start]) {
			start = v
		}
	}
	return orderBySelectivity(e.q, start, func(v graph.NodeID) int64 {
		return int64(len(e.cands[v]))
	})
}

// Enumerate implements Engine.
func (e *GraphQL) Enumerate(budget Budget, fn VisitFunc) error {
	order := e.order()
	start := order[0]
	startCands := make([]graph.NodeID, 0, len(e.cands[start]))
	for v := range e.cands[start] {
		startCands = append(startCands, v)
	}
	sortNodeIDs(startCands)
	return enumerate(e.g, e.q, order, e.cands, startCands, budget, fn)
}

// CandidateSetSizes exposes the refined candidate-set sizes (testing).
func (e *GraphQL) CandidateSetSizes() []int {
	sizes := make([]int, len(e.cands))
	for i, s := range e.cands {
		sizes[i] = len(s)
	}
	return sizes
}
