package match

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

func TestGraphQLFigure1(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	e, err := NewGraphQL(g, q.G)
	if err != nil {
		t.Fatal(err)
	}
	n, err := CountEmbeddings(e, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if n != graphtest.Figure1EmbeddingCount {
		t.Errorf("embeddings = %d, want %d", n, graphtest.Figure1EmbeddingCount)
	}
	bindings, _, err := PivotBindings(e, q, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(bindings, func(i, j int) bool { return bindings[i] < bindings[j] })
	want := graphtest.Figure1PivotBindings()
	if len(bindings) != 2 || bindings[0] != want[0] || bindings[1] != want[1] {
		t.Errorf("bindings = %v, want %v", bindings, want)
	}
}

func TestGraphQLAgainstBacktracking(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(15, 35, 3, seed)
		comp := graph.ConnectedComponent(g, graph.NodeID(rng.Intn(g.NumNodes())))
		size := 3 + rng.Intn(3)
		if len(comp) < size {
			return true
		}
		sub, _, err := graph.InducedSubgraph(g, comp[:size])
		if err != nil || !graph.IsConnected(sub) {
			return true
		}
		gq, err := NewGraphQL(g, sub)
		if err != nil {
			return false
		}
		bt, err := NewBacktracking(g, sub)
		if err != nil {
			return false
		}
		nGQ, err := CountEmbeddings(gq, Budget{})
		if err != nil {
			return false
		}
		nBT, err := CountEmbeddings(bt, Budget{})
		if err != nil {
			return false
		}
		if nGQ != nBT {
			t.Logf("seed %d: graphql %d, backtracking %d", seed, nGQ, nBT)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphQLProfileFiltering(t *testing.T) {
	// Data: two A nodes; one has neighbors {B, C}, the other only {B}.
	// Query node A requires profile {B, C}: only the first can host it.
	b := graph.NewBuilder(5, 3)
	a1 := b.AddNode(0)
	bn := b.AddNode(1)
	cn := b.AddNode(2)
	a2 := b.AddNode(0)
	b2 := b.AddNode(1)
	for _, e := range [][2]graph.NodeID{{a1, bn}, {a1, cn}, {a2, b2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	qb := graph.NewBuilder(3, 2)
	qa := qb.AddNode(0)
	qbn := qb.AddNode(1)
	qcn := qb.AddNode(2)
	if err := qb.AddEdge(qa, qbn); err != nil {
		t.Fatal(err)
	}
	if err := qb.AddEdge(qa, qcn); err != nil {
		t.Fatal(err)
	}
	e, err := NewGraphQL(g, qb.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	sizes := e.CandidateSetSizes()
	if sizes[0] != 1 {
		t.Errorf("A-node candidates = %d, want 1 (profile filter)", sizes[0])
	}
}

func TestContainsProfile(t *testing.T) {
	cases := []struct {
		a, b []graph.Label
		want bool
	}{
		{[]graph.Label{1, 2, 3}, []graph.Label{1, 3}, true},
		{[]graph.Label{1, 2, 3}, []graph.Label{1, 1}, false}, // multiset: need two 1s
		{[]graph.Label{1, 1, 2}, []graph.Label{1, 1}, true},
		{[]graph.Label{1, 2}, []graph.Label{}, true},
		{[]graph.Label{}, []graph.Label{0}, false},
		{[]graph.Label{2, 4, 4, 7}, []graph.Label{4, 7}, true},
		{[]graph.Label{2, 4, 4, 7}, []graph.Label{4, 8}, false},
	}
	for i, c := range cases {
		if got := containsProfile(c.a, c.b); got != c.want {
			t.Errorf("case %d: containsProfile(%v,%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestGraphQLConstruction(t *testing.T) {
	g := graphtest.Figure1Data()
	if _, err := NewGraphQL(g, graph.NewBuilder(0, 0).MustBuild()); err == nil {
		t.Error("empty query accepted")
	}
	db := graph.NewBuilder(2, 0)
	db.AddNode(0)
	db.AddNode(1)
	if _, err := NewGraphQL(g, db.MustBuild()); err == nil {
		t.Error("disconnected query accepted")
	}
	e, err := NewGraphQL(g, graphtest.Figure1Query().G)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "graphql" {
		t.Error("name wrong")
	}
}
