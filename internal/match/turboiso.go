package match

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
)

// TurboIso is a TurboIso-style engine (Han et al., SIGMOD 2013): it picks
// a start query vertex by selectivity, and for each data candidate of
// that vertex explores a *candidate region* — the data nodes that can
// participate in an embedding rooted there — along a BFS spanning tree of
// the query. Matching then runs region by region with candidates
// restricted to the region and a per-region order that visits
// small-candidate-set query vertices first (TurboIso's adaptive
// ordering). The published NEC-tree vertex merging is not reproduced;
// every query vertex is its own class.
type TurboIso struct {
	g *graph.Graph
	q *graph.Graph

	start    graph.NodeID
	tree     [][]graph.NodeID // children per query node in the BFS spanning tree
	bfsOrder []graph.NodeID
}

// NewTurboIso returns a TurboIso-style engine for connected query q.
func NewTurboIso(g *graph.Graph, q *graph.Graph) (*TurboIso, error) {
	if q.NumNodes() == 0 {
		return nil, fmt.Errorf("match: empty query")
	}
	if !graph.IsConnected(q) {
		return nil, fmt.Errorf("match: disconnected query")
	}
	t := &TurboIso{g: g, q: q}
	t.start = t.chooseStart()
	t.buildSpanningTree()
	return t, nil
}

// Name implements Engine.
func (t *TurboIso) Name() string { return "turboiso" }

func (t *TurboIso) chooseStart() graph.NodeID {
	best := graph.NodeID(0)
	bestScore := float64(1 << 62)
	for v := graph.NodeID(0); int(v) < t.q.NumNodes(); v++ {
		deg := t.q.Degree(v)
		if deg == 0 {
			deg = 1
		}
		score := float64(t.g.LabelFrequency(t.q.Label(v))) / float64(deg)
		if score < bestScore {
			best, bestScore = v, score
		}
	}
	return best
}

func (t *TurboIso) buildSpanningTree() {
	n := t.q.NumNodes()
	t.tree = make([][]graph.NodeID, n)
	t.bfsOrder = make([]graph.NodeID, 0, n)
	seen := make([]bool, n)
	seen[t.start] = true
	queue := []graph.NodeID{t.start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		t.bfsOrder = append(t.bfsOrder, u)
		for _, w := range t.q.Neighbors(u) {
			if !seen[w] {
				seen[w] = true
				t.tree[u] = append(t.tree[u], w)
				queue = append(queue, w)
			}
		}
	}
}

// exploreRegion computes the candidate region rooted at data node v: for
// every query node, the set of data nodes reachable along the spanning
// tree that pass label and degree filters. It returns nil if any query
// node ends up with no candidates (region pruned).
func (t *TurboIso) exploreRegion(v graph.NodeID) []nodeSet {
	cr := make([]nodeSet, t.q.NumNodes())
	for i := range cr {
		cr[i] = make(nodeSet)
	}
	cr[t.start][v] = struct{}{}
	for _, u := range t.bfsOrder {
		if len(cr[u]) == 0 {
			return nil
		}
		for _, child := range t.tree[u] {
			label := t.q.Label(child)
			deg := t.q.Degree(child)
			for parent := range cr[u] {
				for _, cand := range t.g.NeighborsWithLabel(parent, label) {
					if t.g.Degree(cand) >= deg {
						cr[child][cand] = struct{}{}
					}
				}
			}
		}
	}
	for _, s := range cr {
		if len(s) == 0 {
			return nil
		}
	}
	return cr
}

// regionOrder returns the matching order for one region: start first,
// then connected extension by smallest candidate-region size.
func (t *TurboIso) regionOrder(cr []nodeSet) []graph.NodeID {
	return orderBySelectivity(t.q, t.start, func(v graph.NodeID) int64 {
		return int64(len(cr[v]))
	})
}

// Enumerate implements Engine.
func (t *TurboIso) Enumerate(budget Budget, fn VisitFunc) error {
	startCands := t.g.NodesWithLabel(t.q.Label(t.start))
	stopped := false
	wrapped := func(m []graph.NodeID) bool {
		if !fn(m) {
			stopped = true
			return false
		}
		return true
	}
	remaining := budget.MaxEmbeddings
	for _, v := range startCands {
		if t.g.Degree(v) < t.q.Degree(t.start) {
			continue
		}
		if !budget.Deadline.IsZero() && time.Now().After(budget.Deadline) {
			return ErrBudget
		}
		cr := t.exploreRegion(v)
		if cr == nil {
			continue
		}
		order := t.regionOrder(cr)
		regionBudget := Budget{Deadline: budget.Deadline, MaxEmbeddings: remaining}
		var count int64
		counting := func(m []graph.NodeID) bool {
			count++
			return wrapped(m)
		}
		err := enumerate(t.g, t.q, order, cr, []graph.NodeID{v}, regionBudget, counting)
		if budget.MaxEmbeddings > 0 {
			remaining -= count
			if remaining <= 0 {
				return ErrBudget
			}
		}
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// sortedSetSizes is a test/debug helper exposing region candidate sizes.
func (t *TurboIso) sortedSetSizes(v graph.NodeID) []int {
	cr := t.exploreRegion(v)
	if cr == nil {
		return nil
	}
	sizes := make([]int, 0, len(cr))
	for _, s := range cr {
		sizes = append(sizes, len(s))
	}
	sort.Ints(sizes)
	return sizes
}
