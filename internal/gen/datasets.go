package gen

import (
	"fmt"
	"sort"
)

// The paper's Table 3 datasets. FullSpec reproduces the published node,
// edge and label counts; DefaultSpec applies the per-dataset scale factor
// that keeps the full experiment suite runnable on one machine while
// preserving density (average degree) and the label distribution.
//
//	Dataset   Nodes       Edges        Labels   default scale
//	Yeast     3,112       12,519       71       1 (full)
//	Cora      2,708       5,429        7        1 (full)
//	Human     4,674       86,282       44       1 (full)
//	YouTube   5,101,938   42,546,295   25       1/50
//	Twitter   11,316,811  85,331,846   25       1/100
//	Weibo     1,655,678   369,438,063  55       1/400
var table3 = []struct {
	name         string
	nodes        int
	edges        int64
	labels       int
	defaultScale int
	triangleFrac float64
	labelSkew    float64
}{
	{"yeast", 3112, 12519, 71, 1, 0.20, 0.6},
	{"cora", 2708, 5429, 7, 1, 0.15, 0.7},
	{"human", 4674, 86282, 44, 1, 0.30, 0.6},
	{"youtube", 5101938, 42546295, 25, 50, 0.20, 0.9},
	{"twitter", 11316811, 85331846, 25, 100, 0.25, 0.9},
	{"weibo", 1655678, 369438063, 55, 400, 0.25, 0.8},
}

// Names returns the Table 3 dataset names in publication order.
func Names() []string {
	out := make([]string, len(table3))
	for i, d := range table3 {
		out[i] = d.name
	}
	return out
}

// FullSpec returns the spec reproducing the dataset at its published
// size. The web-scale graphs need several GB and minutes to generate.
func FullSpec(name string) (Spec, error) {
	return ScaledSpec(name, 1)
}

// DefaultSpec returns the dataset at its default experiment scale.
func DefaultSpec(name string) (Spec, error) {
	for _, d := range table3 {
		if d.name == name {
			return ScaledSpec(name, d.defaultScale)
		}
	}
	return Spec{}, unknownDataset(name)
}

// ScaledSpec returns the dataset scaled down by factor (>=1): node and
// edge counts divide by it, so density and label mix are preserved.
func ScaledSpec(name string, factor int) (Spec, error) {
	if factor < 1 {
		return Spec{}, fmt.Errorf("gen: scale factor %d < 1", factor)
	}
	for i, d := range table3 {
		if d.name != name {
			continue
		}
		nodes := d.nodes / factor
		edges := d.edges / int64(factor)
		// Dense graphs stop fitting their average degree when scaled very
		// hard (Weibo averages 446); clamp to a quarter of the complete
		// graph so extreme scale-downs stay generatable.
		if maxEdges := int64(nodes) * int64(nodes-1) / 4; edges > maxEdges {
			edges = maxEdges
		}
		return Spec{
			Name:           d.name,
			Nodes:          nodes,
			Edges:          edges,
			Labels:         d.labels,
			LabelSkew:      d.labelSkew,
			DegreeExponent: 2.2,
			TriangleFrac:   d.triangleFrac,
			Seed:           int64(1000 + i), // stable per dataset
		}, nil
	}
	return Spec{}, unknownDataset(name)
}

func unknownDataset(name string) error {
	known := Names()
	sort.Strings(known)
	return fmt.Errorf("gen: unknown dataset %q (known: %v)", name, known)
}

// PublishedStats returns the Table 3 row for name (full-scale numbers),
// for experiment output that prints paper-vs-generated comparisons.
func PublishedStats(name string) (nodes int, edges int64, labels int, err error) {
	for _, d := range table3 {
		if d.name == name {
			return d.nodes, d.edges, d.labels, nil
		}
	}
	return 0, 0, 0, unknownDataset(name)
}
