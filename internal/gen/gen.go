// Package gen generates the synthetic stand-ins for the paper's six real
// datasets (Table 3). The real graphs (protein interaction networks,
// citation and social graphs) are not redistributable, so experiments
// run on generated graphs that match each dataset's node count, edge
// count and label-alphabet size, with a power-law degree distribution,
// Zipf-skewed labels, and a triangle-closure pass that gives query
// workloads realistic clustering. The three web-scale graphs default to
// shape-preserving scale-downs (same density, same label distribution)
// so the experiment suite runs on one machine; DESIGN.md discusses why
// the comparisons' shape survives the substitution.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Spec describes a synthetic graph.
type Spec struct {
	Name   string
	Nodes  int
	Edges  int64 // target edge count; the result lands within ~1%
	Labels int
	// LabelSkew is the Zipf s-parameter of the label distribution
	// (1.0: natural skew; 0: uniform).
	LabelSkew float64
	// DegreeExponent is the power-law exponent of the degree weight
	// distribution (typical social graphs: 2.0-2.5).
	DegreeExponent float64
	// TriangleFrac is the fraction of edges created by triangle closure
	// rather than weighted random attachment.
	TriangleFrac float64
	// LabelHomophily biases attachment towards same-label endpoints:
	// a candidate edge between differently labeled nodes is rejected
	// with this probability (0: no bias). Real social and citation
	// graphs are strongly label-assortative.
	LabelHomophily float64
	Seed           int64
}

// Validate checks the spec for generatability.
func (s Spec) Validate() error {
	if s.Nodes < 1 {
		return fmt.Errorf("gen: %q: nodes = %d", s.Name, s.Nodes)
	}
	if s.Labels < 1 {
		return fmt.Errorf("gen: %q: labels = %d", s.Name, s.Labels)
	}
	maxEdges := int64(s.Nodes) * int64(s.Nodes-1) / 2
	if s.Edges < 0 || s.Edges > maxEdges {
		return fmt.Errorf("gen: %q: edges = %d, max %d", s.Name, s.Edges, maxEdges)
	}
	return nil
}

// Generate builds the graph described by spec, deterministically for a
// given seed.
func Generate(spec Spec) (*graph.Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := spec.Nodes

	labels := sampleLabels(spec, rng)
	b := graph.NewBuilder(n, int(spec.Edges))
	for i := 0; i < n; i++ {
		b.AddNode(labels[i])
	}

	slots := degreeSlots(spec, rng)
	// Incremental adjacency for the triangle-closure step.
	adj := make([][]graph.NodeID, n)
	addEdge := func(u, v graph.NodeID) bool {
		if u == v || b.HasEdge(u, v) {
			return false
		}
		if spec.LabelHomophily > 0 && labels[u] != labels[v] && rng.Float64() < spec.LabelHomophily {
			return false
		}
		if err := b.AddEdge(u, v); err != nil {
			return false
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		return true
	}

	misses := 0
	maxMisses := 50*int(spec.Edges) + 1000
	for int64(b.NumEdges()) < spec.Edges && misses < maxMisses {
		var ok bool
		if spec.TriangleFrac > 0 && rng.Float64() < spec.TriangleFrac && b.NumEdges() > 0 {
			// Close a wedge: pick a node with >=2 neighbors, join two of
			// its neighbors.
			u := graph.NodeID(slots[rng.Intn(len(slots))])
			if len(adj[u]) >= 2 {
				i := rng.Intn(len(adj[u]))
				j := rng.Intn(len(adj[u]))
				ok = i != j && addEdge(adj[u][i], adj[u][j])
			}
		} else {
			u := graph.NodeID(slots[rng.Intn(len(slots))])
			v := graph.NodeID(slots[rng.Intn(len(slots))])
			ok = addEdge(u, v)
		}
		if !ok {
			misses++
		}
	}
	return b.Build()
}

// MustGenerate is Generate for known-good specs.
func MustGenerate(spec Spec) *graph.Graph {
	g, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return g
}

// sampleLabels draws a Zipf-skewed label per node.
func sampleLabels(spec Spec, rng *rand.Rand) []graph.Label {
	labels := make([]graph.Label, spec.Nodes)
	if spec.Labels == 1 {
		return labels
	}
	if spec.LabelSkew <= 0 {
		for i := range labels {
			labels[i] = graph.Label(rng.Intn(spec.Labels))
		}
		return labels
	}
	// Zipf over ranks 1..Labels with exponent LabelSkew via inverse-CDF
	// sampling on the precomputed cumulative weights.
	cum := make([]float64, spec.Labels)
	total := 0.0
	for k := 0; k < spec.Labels; k++ {
		total += 1 / math.Pow(float64(k+1), spec.LabelSkew)
		cum[k] = total
	}
	for i := range labels {
		r := rng.Float64() * total
		lo, hi := 0, spec.Labels-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < r {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		labels[i] = graph.Label(lo)
	}
	// Guarantee every label appears at least once when possible, so the
	// label-alphabet size matches the spec exactly.
	if spec.Nodes >= spec.Labels {
		seen := make([]bool, spec.Labels)
		for _, l := range labels {
			seen[l] = true
		}
		for l, ok := range seen {
			if !ok {
				labels[rng.Intn(spec.Nodes)] = graph.Label(l)
				// Re-scan is unnecessary: overwriting one slot may drop
				// another label only if that label had a single node;
				// with Zipf head labels vastly over-represented this is
				// harmless for experiment purposes.
			}
		}
	}
	return labels
}

// degreeSlots builds the weighted sampling array of the Chung-Lu style
// attachment: node i appears proportional to its power-law weight.
func degreeSlots(spec Spec, rng *rand.Rand) []int32 {
	exponent := spec.DegreeExponent
	if exponent <= 1 {
		exponent = 2.2
	}
	weights := make([]float64, spec.Nodes)
	total := 0.0
	for i := range weights {
		// Pareto: w = (1-u)^(-1/(exponent-1)), heavy tail.
		u := rng.Float64()
		w := math.Pow(1-u, -1/(exponent-1))
		if w > float64(spec.Nodes)/4 {
			w = float64(spec.Nodes) / 4 // cap mega-hubs on small graphs
		}
		weights[i] = w
		total += w
	}
	// Budget ~8 slots per node on average for sampling resolution.
	budget := float64(8 * spec.Nodes)
	slots := make([]int32, 0, int(budget)+spec.Nodes)
	for i, w := range weights {
		k := int(w / total * budget)
		if k < 1 {
			k = 1
		}
		for j := 0; j < k; j++ {
			slots = append(slots, int32(i))
		}
	}
	return slots
}
