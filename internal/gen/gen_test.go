package gen

import (
	"testing"

	"repro/internal/graph"
)

func TestGenerateYeastShape(t *testing.T) {
	spec, err := DefaultSpec("yeast")
	if err != nil {
		t.Fatal(err)
	}
	g := MustGenerate(spec)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != spec.Nodes {
		t.Errorf("nodes = %d, want %d", g.NumNodes(), spec.Nodes)
	}
	// Edge target is approximate; require within 2%.
	lo := spec.Edges - spec.Edges/50
	if g.NumEdges() < lo || g.NumEdges() > spec.Edges {
		t.Errorf("edges = %d, want within [%d,%d]", g.NumEdges(), lo, spec.Edges)
	}
	if g.NumLabels() != spec.Labels {
		t.Errorf("labels = %d, want %d", g.NumLabels(), spec.Labels)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := DefaultSpec("cora")
	g1 := MustGenerate(spec)
	g2 := MustGenerate(spec)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for u := graph.NodeID(0); int(u) < g1.NumNodes(); u++ {
		if g1.Label(u) != g2.Label(u) || g1.Degree(u) != g2.Degree(u) {
			t.Fatalf("same seed, node %d differs", u)
		}
	}
}

func TestGenerateDegreeSkew(t *testing.T) {
	spec, _ := DefaultSpec("human")
	g := MustGenerate(spec)
	s := graph.ComputeStats(g, false)
	// Power-law-ish: the max degree should far exceed the median.
	if s.MaxDegree < 4*s.DegreeP50 {
		t.Errorf("degree distribution too flat: max=%d p50=%d", s.MaxDegree, s.DegreeP50)
	}
}

func TestGenerateLabelSkew(t *testing.T) {
	spec, _ := DefaultSpec("cora") // 7 labels, skew 0.7
	g := MustGenerate(spec)
	if g.LabelFrequency(0) <= g.LabelFrequency(graph.Label(spec.Labels-1)) {
		t.Errorf("label 0 freq %d <= label %d freq %d; Zipf head should dominate",
			g.LabelFrequency(0), spec.Labels-1, g.LabelFrequency(graph.Label(spec.Labels-1)))
	}
}

func TestGenerateTrianglesPresent(t *testing.T) {
	spec, _ := DefaultSpec("yeast")
	g := MustGenerate(spec)
	s := graph.ComputeStats(g, true)
	if s.Triangles == 0 {
		t.Error("triangle closure produced no triangles")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Name: "x", Nodes: 0, Edges: 1, Labels: 1},
		{Name: "x", Nodes: 5, Edges: 100, Labels: 1}, // too many edges
		{Name: "x", Nodes: 5, Edges: 1, Labels: 0},
		{Name: "x", Nodes: 5, Edges: -1, Labels: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
		if _, err := Generate(s); err == nil {
			t.Errorf("bad spec %d generated", i)
		}
	}
}

func TestDatasetRegistry(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("registry has %d datasets, want 6", len(names))
	}
	for _, name := range names {
		full, err := FullSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		pubNodes, pubEdges, pubLabels, err := PublishedStats(name)
		if err != nil {
			t.Fatal(err)
		}
		if full.Nodes != pubNodes || full.Edges != pubEdges || full.Labels != pubLabels {
			t.Errorf("%s: FullSpec %d/%d/%d, published %d/%d/%d",
				name, full.Nodes, full.Edges, full.Labels, pubNodes, pubEdges, pubLabels)
		}
		def, err := DefaultSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		// Scaling preserves density within rounding.
		fullDeg := 2 * float64(full.Edges) / float64(full.Nodes)
		defDeg := 2 * float64(def.Edges) / float64(def.Nodes)
		if defDeg < 0.9*fullDeg || defDeg > 1.1*fullDeg {
			t.Errorf("%s: scaled avg degree %.1f, full %.1f", name, defDeg, fullDeg)
		}
	}
	if _, err := DefaultSpec("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := ScaledSpec("yeast", 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, _, _, err := PublishedStats("nope"); err == nil {
		t.Error("unknown dataset stats accepted")
	}
}

func TestSmallUniformLabels(t *testing.T) {
	g := MustGenerate(Spec{Name: "u", Nodes: 200, Edges: 400, Labels: 4, LabelSkew: 0, Seed: 9})
	if g.NumLabels() != 4 {
		t.Errorf("labels = %d", g.NumLabels())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleLabelGraph(t *testing.T) {
	g := MustGenerate(Spec{Name: "s", Nodes: 50, Edges: 100, Labels: 1, Seed: 3})
	if g.NumLabels() != 1 {
		t.Errorf("labels = %d, want 1", g.NumLabels())
	}
}

func TestLabelHomophily(t *testing.T) {
	base := Spec{Name: "h0", Nodes: 600, Edges: 2400, Labels: 5, LabelSkew: 0, Seed: 4}
	plain := MustGenerate(base)
	biased := base
	biased.Name = "h1"
	biased.LabelHomophily = 0.8
	homo := MustGenerate(biased)
	frac := func(g *graph.Graph) float64 {
		same, total := 0, 0
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			for _, v := range g.Neighbors(u) {
				if u < v {
					total++
					if g.Label(u) == g.Label(v) {
						same++
					}
				}
			}
		}
		return float64(same) / float64(total)
	}
	fp, fh := frac(plain), frac(homo)
	if fh <= fp {
		t.Errorf("homophily did not raise same-label fraction: %.3f vs %.3f", fh, fp)
	}
	if err := homo.Validate(); err != nil {
		t.Fatal(err)
	}
}
