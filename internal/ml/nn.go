package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// NNConfig controls the small feed-forward network baseline: one hidden
// ReLU layer trained by SGD on the softmax cross-entropy.
type NNConfig struct {
	// Hidden is the hidden-layer width (default 16).
	Hidden int
	// Epochs is the number of passes over the data (default 100).
	Epochs int
	// LearningRate is the SGD step size (default 0.05).
	LearningRate float64
	// Seed makes training deterministic.
	Seed int64
}

func (c NNConfig) withDefaults() NNConfig {
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	return c
}

// NN is a trained one-hidden-layer network, the paper's Section 5.4
// neural baseline.
type NN struct {
	w1 [][]float64 // hidden x (features+1)
	w2 [][]float64 // classes x (hidden+1)
}

// TrainNN fits the network on d.
func TrainNN(d Dataset, cfg NNConfig) (*NN, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	cfg = cfg.withDefaults()
	nf := d.NumFeatures()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &NN{
		w1: make([][]float64, cfg.Hidden),
		w2: make([][]float64, d.NumClasses),
	}
	scale1 := math.Sqrt(2 / float64(nf+1))
	for h := range n.w1 {
		n.w1[h] = make([]float64, nf+1)
		for i := range n.w1[h] {
			n.w1[h][i] = rng.NormFloat64() * scale1
		}
	}
	scale2 := math.Sqrt(2 / float64(cfg.Hidden+1))
	for c := range n.w2 {
		n.w2[c] = make([]float64, cfg.Hidden+1)
		for i := range n.w2[c] {
			n.w2[c][i] = rng.NormFloat64() * scale2
		}
	}

	hidden := make([]float64, cfg.Hidden)
	logits := make([]float64, d.NumClasses)
	probs := make([]float64, d.NumClasses)
	dHidden := make([]float64, cfg.Hidden)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, i := range rng.Perm(d.Len()) {
			x := d.X[i]
			n.forward(x, hidden, logits)
			softmax(logits, probs)
			// Backprop: output layer.
			for c := range n.w2 {
				grad := probs[c]
				if c == d.Y[i] {
					grad -= 1
				}
				w := n.w2[c]
				for h := 0; h < cfg.Hidden; h++ {
					dh := grad * w[h]
					if hidden[h] <= 0 {
						dh = 0
					}
					if c == 0 {
						dHidden[h] = dh
					} else {
						dHidden[h] += dh
					}
					w[h] -= cfg.LearningRate * grad * hidden[h]
				}
				w[cfg.Hidden] -= cfg.LearningRate * grad
			}
			// Hidden layer.
			for h := 0; h < cfg.Hidden; h++ {
				if dHidden[h] == 0 {
					continue
				}
				w := n.w1[h]
				for f, v := range x {
					w[f] -= cfg.LearningRate * dHidden[h] * v
				}
				w[nf] -= cfg.LearningRate * dHidden[h]
			}
		}
	}
	return n, nil
}

func (n *NN) forward(x []float64, hidden, logits []float64) {
	for h, w := range n.w1 {
		nf := len(w) - 1
		s := w[nf]
		for f, v := range x {
			if f < nf {
				s += w[f] * v
			}
		}
		if s < 0 {
			s = 0 // ReLU
		}
		hidden[h] = s
	}
	for c, w := range n.w2 {
		nh := len(w) - 1
		s := w[nh]
		for h := 0; h < nh; h++ {
			s += w[h] * hidden[h]
		}
		logits[c] = s
	}
}

func softmax(logits, probs []float64) {
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range logits {
		probs[i] = math.Exp(v - max)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
}

// Name implements Classifier.
func (n *NN) Name() string { return "neural-net" }

// Predict implements Classifier.
func (n *NN) Predict(x []float64) int {
	hidden := make([]float64, len(n.w1))
	logits := make([]float64, len(n.w2))
	n.forward(x, hidden, logits)
	best := 0
	for c, v := range logits {
		if v > logits[best] {
			best = c
		}
	}
	return best
}
