package ml

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// ForestConfig controls Random Forest training (Breiman 2001).
type ForestConfig struct {
	// Trees is the ensemble size (default 20 — plenty for the small
	// training sets SmartPSI draws per query).
	Trees int
	// MaxDepth bounds each tree (default 12).
	MaxDepth int
	// MinLeaf is the minimum leaf size (default 1).
	MinLeaf int
	// Seed makes training deterministic.
	Seed int64
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.Trees <= 0 {
		c.Trees = 20
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	return c
}

// Forest is a trained Random Forest: bootstrap-sampled CART trees with
// sqrt-feature subsampling, predicting by majority vote.
type Forest struct {
	trees      []*Tree
	numClasses int
}

// TrainForest fits a Random Forest on d.
func TrainForest(d Dataset, cfg ForestConfig) (*Forest, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	cfg = cfg.withDefaults()
	f := &Forest{trees: make([]*Tree, cfg.Trees), numClasses: d.NumClasses}
	featureFrac := math.Sqrt(float64(d.NumFeatures())) / float64(d.NumFeatures())

	// Derive one independent seed per tree up front so training is
	// deterministic regardless of goroutine scheduling.
	seeds := make([]int64, cfg.Trees)
	seedRng := rand.New(rand.NewSource(cfg.Seed))
	for i := range seeds {
		seeds[i] = seedRng.Int63()
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Trees {
		workers = cfg.Trees
	}
	var wg sync.WaitGroup
	errs := make([]error, cfg.Trees)
	sem := make(chan struct{}, workers)
	for i := 0; i < cfg.Trees; i++ {
		wg.Add(1)
		//lint:ignore ctxflow bounded worker-pool admission: the semaphore only waits on this function's own goroutines over a fixed tree count
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			//lint:ignore ctxflow releases the bounded semaphore above; cannot block
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(seeds[i]))
			boot := Dataset{NumClasses: d.NumClasses}
			boot.X = make([][]float64, d.Len())
			boot.Y = make([]int, d.Len())
			for j := range boot.X {
				r := rng.Intn(d.Len())
				boot.X[j] = d.X[r]
				boot.Y[j] = d.Y[r]
			}
			tree, err := TrainTree(boot, TreeConfig{
				MaxDepth:    cfg.MaxDepth,
				MinLeaf:     cfg.MinLeaf,
				FeatureFrac: featureFrac,
				rng:         rng,
			})
			f.trees[i] = tree
			errs[i] = err
		}(i)
	}
	//lint:ignore ctxflow joins this function's own CPU-bound workers; work is fixed by the training-set size, not unbounded
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Name implements Classifier.
func (f *Forest) Name() string { return "random-forest" }

// Predict implements Classifier: majority vote across trees, ties to the
// lowest class id.
func (f *Forest) Predict(x []float64) int {
	return f.PredictInto(x, make([]int, f.numClasses))
}

// PredictInto is Predict with a caller-provided vote scratch slice of
// length NumClasses, for allocation-free hot loops.
func (f *Forest) PredictInto(x []float64, votes []int) int {
	for c := range votes {
		votes[c] = 0
	}
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	best, bestVotes := 0, -1
	for c, v := range votes {
		if v > bestVotes {
			best, bestVotes = c, v
		}
	}
	return best
}

// NumClasses returns the number of classes the forest votes over.
func (f *Forest) NumClasses() int { return f.numClasses }

// PredictProba returns the per-class vote fractions for x.
func (f *Forest) PredictProba(x []float64) []float64 {
	votes := make([]float64, f.numClasses)
	for _, t := range f.trees {
		votes[t.Predict(x)]++
	}
	for c := range votes {
		votes[c] /= float64(len(f.trees))
	}
	return votes
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }
