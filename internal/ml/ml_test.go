package ml

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs returns a well-separated synthetic classification problem:
// classes are Gaussian blobs around distinct centers.
func blobs(n, features, classes int, noise float64, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := Dataset{NumClasses: classes}
	for i := 0; i < n; i++ {
		cls := i % classes
		x := make([]float64, features)
		for f := range x {
			center := 0.0
			if f%classes == cls {
				center = 3.0
			}
			x[f] = center + rng.NormFloat64()*noise
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, cls)
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	good := Dataset{X: [][]float64{{1, 2}, {3, 4}}, Y: []int{0, 1}, NumClasses: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("good dataset rejected: %v", err)
	}
	bad := []Dataset{
		{X: [][]float64{{1}}, Y: []int{0, 1}, NumClasses: 2},         // length mismatch
		{X: [][]float64{{1}, {2, 3}}, Y: []int{0, 0}, NumClasses: 2}, // ragged
		{X: [][]float64{{1}}, Y: []int{5}, NumClasses: 2},            // label range
		{X: nil, Y: nil, NumClasses: 0},                              // classes
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad dataset %d accepted", i)
		}
	}
	if good.NumFeatures() != 2 || good.Len() != 2 {
		t.Error("accessors wrong")
	}
	if (Dataset{NumClasses: 1}).NumFeatures() != 0 {
		t.Error("empty NumFeatures != 0")
	}
}

func TestSplit(t *testing.T) {
	d := blobs(100, 4, 2, 0.5, 1)
	train, test := d.Split(0.7, rand.New(rand.NewSource(2)))
	if train.Len() != 70 || test.Len() != 30 {
		t.Errorf("split sizes %d/%d, want 70/30", train.Len(), test.Len())
	}
	if train.NumClasses != 2 || test.NumClasses != 2 {
		t.Error("split lost NumClasses")
	}
}

func TestTreeLearnsSeparableData(t *testing.T) {
	d := blobs(200, 6, 3, 0.3, 3)
	train, test := d.Split(0.7, rand.New(rand.NewSource(4)))
	tree, err := TrainTree(train, TreeConfig{MaxDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree, test); acc < 0.9 {
		t.Errorf("tree accuracy %.3f on separable blobs, want >= 0.9", acc)
	}
	if tree.Name() != "decision-tree" {
		t.Error("name wrong")
	}
	if tree.NumNodes() < 3 {
		t.Errorf("tree has %d nodes; did it split at all?", tree.NumNodes())
	}
}

func TestTreePureLeafStopsEarly(t *testing.T) {
	d := Dataset{
		X:          [][]float64{{1}, {2}, {3}},
		Y:          []int{1, 1, 1},
		NumClasses: 2,
	}
	tree, err := TrainTree(d, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 1 {
		t.Errorf("pure dataset grew %d nodes, want 1", tree.NumNodes())
	}
	if tree.Predict([]float64{42}) != 1 {
		t.Error("pure-leaf prediction wrong")
	}
}

func TestTreeConstantFeatures(t *testing.T) {
	// No split possible: all feature values identical but labels mixed.
	d := Dataset{
		X:          [][]float64{{1}, {1}, {1}, {1}},
		Y:          []int{0, 1, 0, 0},
		NumClasses: 2,
	}
	tree, err := TrainTree(d, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 1 {
		t.Errorf("unsplittable dataset grew %d nodes", tree.NumNodes())
	}
	if tree.Predict([]float64{1}) != 0 { // majority
		t.Error("majority prediction wrong")
	}
}

func TestTrainErrors(t *testing.T) {
	empty := Dataset{NumClasses: 2}
	if _, err := TrainTree(empty, TreeConfig{}); err == nil {
		t.Error("tree accepted empty set")
	}
	if _, err := TrainForest(empty, ForestConfig{}); err == nil {
		t.Error("forest accepted empty set")
	}
	if _, err := TrainSVM(empty, SVMConfig{}); err == nil {
		t.Error("svm accepted empty set")
	}
	if _, err := TrainNN(empty, NNConfig{}); err == nil {
		t.Error("nn accepted empty set")
	}
	bad := Dataset{X: [][]float64{{1}}, Y: []int{3}, NumClasses: 2}
	if _, err := TrainForest(bad, ForestConfig{}); err == nil {
		t.Error("forest accepted invalid labels")
	}
}

func TestForestLearnsSeparableData(t *testing.T) {
	d := blobs(300, 8, 3, 0.5, 5)
	train, test := d.Split(0.7, rand.New(rand.NewSource(6)))
	f, err := TrainForest(train, ForestConfig{Trees: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(f, test); acc < 0.9 {
		t.Errorf("forest accuracy %.3f, want >= 0.9", acc)
	}
	if f.NumTrees() != 15 {
		t.Errorf("NumTrees = %d", f.NumTrees())
	}
	if f.Name() != "random-forest" {
		t.Error("name wrong")
	}
}

func TestForestDeterministic(t *testing.T) {
	d := blobs(100, 4, 2, 0.8, 8)
	f1, err := TrainForest(d, ForestConfig{Trees: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := TrainForest(d, ForestConfig{Trees: 8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range d.X {
		if f1.Predict(x) != f2.Predict(x) {
			t.Fatalf("row %d: same seed, different predictions", i)
		}
	}
}

func TestForestProba(t *testing.T) {
	d := blobs(100, 4, 2, 0.3, 9)
	f, err := TrainForest(d, ForestConfig{Trees: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := f.PredictProba(d.X[0])
	if len(p) != 2 {
		t.Fatalf("proba length %d", len(p))
	}
	sum := p[0] + p[1]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestSVMLearnsSeparableData(t *testing.T) {
	d := blobs(300, 6, 2, 0.4, 10)
	train, test := d.Split(0.7, rand.New(rand.NewSource(11)))
	s, err := TrainSVM(train, SVMConfig{Epochs: 30, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(s, test); acc < 0.9 {
		t.Errorf("svm accuracy %.3f, want >= 0.9", acc)
	}
	if s.Name() != "linear-svm" {
		t.Error("name wrong")
	}
}

func TestSVMMultiClass(t *testing.T) {
	d := blobs(300, 9, 3, 0.4, 13)
	train, test := d.Split(0.7, rand.New(rand.NewSource(14)))
	s, err := TrainSVM(train, SVMConfig{Epochs: 40, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(s, test); acc < 0.85 {
		t.Errorf("multi-class svm accuracy %.3f, want >= 0.85", acc)
	}
}

func TestNNLearnsSeparableData(t *testing.T) {
	d := blobs(300, 6, 3, 0.4, 16)
	train, test := d.Split(0.7, rand.New(rand.NewSource(17)))
	n, err := TrainNN(train, NNConfig{Hidden: 12, Epochs: 60, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(n, test); acc < 0.85 {
		t.Errorf("nn accuracy %.3f, want >= 0.85", acc)
	}
	if n.Name() != "neural-net" {
		t.Error("name wrong")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	d := blobs(10, 2, 2, 0.1, 19)
	tree, err := TrainTree(d, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := Accuracy(tree, Dataset{NumClasses: 2}); got != 1 {
		t.Errorf("Accuracy on empty = %v, want 1", got)
	}
}

// TestForestNeverWorseThanChance: on random-labeled data the forest
// still trains without error and predicts in-range classes.
func TestForestRobustToNoise(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Dataset{NumClasses: 3}
		for i := 0; i < 30; i++ {
			d.X = append(d.X, []float64{rng.Float64(), rng.Float64()})
			d.Y = append(d.Y, rng.Intn(3))
		}
		forest, err := TrainForest(d, ForestConfig{Trees: 5, Seed: seed})
		if err != nil {
			return false
		}
		for _, x := range d.X {
			if c := forest.Predict(x); c < 0 || c >= 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMajority(t *testing.T) {
	cls, pure := majority([]int{1, 1, 1}, 3)
	if cls != 1 || !pure {
		t.Errorf("majority pure = %d,%v", cls, pure)
	}
	cls, pure = majority([]int{0, 1, 1, 2}, 3)
	if cls != 1 || pure {
		t.Errorf("majority mixed = %d,%v", cls, pure)
	}
	// Tie goes to the lowest class id.
	cls, _ = majority([]int{2, 0, 0, 2}, 3)
	if cls != 0 {
		t.Errorf("tie broke to %d, want 0", cls)
	}
}
