package ml

import (
	"fmt"
	"math/rand"
)

// SVMConfig controls linear-SVM training via Pegasos (primal SGD on the
// hinge loss), one-vs-rest for multi-class problems.
type SVMConfig struct {
	// Epochs is the number of passes over the data (default 50).
	Epochs int
	// Lambda is the L2 regularization strength (default 0.01).
	Lambda float64
	// Seed makes training deterministic.
	Seed int64
}

func (c SVMConfig) withDefaults() SVMConfig {
	if c.Epochs <= 0 {
		c.Epochs = 50
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.01
	}
	return c
}

// SVM is a trained one-vs-rest linear SVM. It exists as the paper's
// Section 5.4 accuracy/speed baseline; SmartPSI ships Random Forest.
type SVM struct {
	weights [][]float64 // per class: weight vector + bias at the end
}

// TrainSVM fits a linear SVM on d with Pegasos.
func TrainSVM(d Dataset, cfg SVMConfig) (*SVM, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	cfg = cfg.withDefaults()
	nf := d.NumFeatures()
	s := &SVM{weights: make([][]float64, d.NumClasses)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for cls := 0; cls < d.NumClasses; cls++ {
		w := make([]float64, nf+1)
		t := 0
		for epoch := 0; epoch < cfg.Epochs; epoch++ {
			for _, i := range rng.Perm(d.Len()) {
				t++
				eta := 1 / (cfg.Lambda * float64(t))
				y := -1.0
				if d.Y[i] == cls {
					y = 1.0
				}
				x := d.X[i]
				margin := w[nf] // bias
				for f, v := range x {
					margin += w[f] * v
				}
				margin *= y
				for f := 0; f < nf; f++ {
					w[f] *= 1 - eta*cfg.Lambda
				}
				if margin < 1 {
					for f, v := range x {
						w[f] += eta * y * v
					}
					w[nf] += eta * y
				}
			}
		}
		s.weights[cls] = w
	}
	return s, nil
}

// Name implements Classifier.
func (s *SVM) Name() string { return "linear-svm" }

// Predict implements Classifier: the class with the largest margin.
func (s *SVM) Predict(x []float64) int {
	best, bestScore := 0, 0.0
	for cls, w := range s.weights {
		nf := len(w) - 1
		score := w[nf]
		for f, v := range x {
			if f < nf {
				score += w[f] * v
			}
		}
		if cls == 0 || score > bestScore {
			best, bestScore = cls, score
		}
	}
	return best
}
