package ml

import (
	"math"
	"testing"
)

func TestConfusionMatrixBasics(t *testing.T) {
	m := NewConfusionMatrix(2)
	// 3 true positives of class 1, 1 false negative, 4 true negatives,
	// 2 false positives.
	for i := 0; i < 3; i++ {
		m.Observe(1, 1)
	}
	m.Observe(1, 0)
	for i := 0; i < 4; i++ {
		m.Observe(0, 0)
	}
	m.Observe(0, 1)
	m.Observe(0, 1)

	if got := m.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	if got := m.Accuracy(); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("Accuracy = %v, want 0.7", got)
	}
	if got := m.Precision(1); math.Abs(got-3.0/5) > 1e-12 {
		t.Errorf("Precision(1) = %v, want 0.6", got)
	}
	if got := m.Recall(1); math.Abs(got-3.0/4) > 1e-12 {
		t.Errorf("Recall(1) = %v, want 0.75", got)
	}
	wantF1 := 2 * 0.6 * 0.75 / (0.6 + 0.75)
	if got := m.F1(1); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1(1) = %v, want %v", got, wantF1)
	}
	if m.String() == "" {
		t.Error("String empty")
	}
}

func TestConfusionMatrixEdgeCases(t *testing.T) {
	m := NewConfusionMatrix(3)
	if m.Accuracy() != 1 {
		t.Error("empty matrix accuracy should be 1")
	}
	if m.Precision(0) != 1 || m.Recall(0) != 1 {
		t.Error("never-seen class precision/recall should be 1")
	}
	m.Observe(0, 1)
	if m.F1(2) != 1 { // precision 1, recall 1 for the unseen class
		t.Errorf("F1 of untouched class = %v", m.F1(2))
	}
}

func TestEvaluate(t *testing.T) {
	d := blobs(120, 4, 2, 0.3, 21)
	tree, err := TrainTree(d, TreeConfig{MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	m := Evaluate(tree, d)
	if m.Total() != 120 {
		t.Errorf("Total = %d", m.Total())
	}
	if m.Accuracy() < 0.9 {
		t.Errorf("in-sample accuracy %.3f suspiciously low", m.Accuracy())
	}
}

func TestCrossValidate(t *testing.T) {
	d := blobs(150, 6, 3, 0.4, 22)
	accs, err := CrossValidate(d, 5, 1, func(train Dataset) (Classifier, error) {
		return TrainForest(train, ForestConfig{Trees: 8, Seed: 2})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 5 {
		t.Fatalf("got %d folds", len(accs))
	}
	mean, std := MeanStd(accs)
	if mean < 0.85 {
		t.Errorf("cv mean accuracy %.3f too low (std %.3f)", mean, std)
	}
	// Error paths.
	if _, err := CrossValidate(d, 1, 1, nil); err == nil {
		t.Error("k=1 accepted")
	}
	tiny := Dataset{X: [][]float64{{1}}, Y: []int{0}, NumClasses: 1}
	if _, err := CrossValidate(tiny, 5, 1, nil); err == nil {
		t.Error("too-small dataset accepted")
	}
	_, err = CrossValidate(d, 3, 1, func(Dataset) (Classifier, error) {
		return nil, errFake
	})
	if err == nil {
		t.Error("trainer error swallowed")
	}
}

var errFake = &fakeErr{}

type fakeErr struct{}

func (*fakeErr) Error() string { return "fake" }

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-12 || math.Abs(std-2) > 1e-12 {
		t.Errorf("MeanStd = %v, %v; want 5, 2", mean, std)
	}
	mean, std = MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Error("empty MeanStd should be 0,0")
	}
}
