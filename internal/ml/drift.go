package ml

import "fmt"

// DriftConfig configures a DriftDetector.
type DriftConfig struct {
	// Window is the sample count of both the frozen reference window and
	// the sliding current window (default 64).
	Window int
	// Threshold is the minimum accuracy drop (reference − current) that
	// counts as drift (default 0.2). Only drops fire: a model that
	// *improves* never raises an event.
	Threshold float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.2
	}
	return c
}

// DriftDetector is a windowed-delta change detector over a boolean
// correctness stream (one observation per scored model prediction).
// The first Window samples freeze a reference accuracy; subsequent
// samples fill a sliding window of the same size, and once that window
// is full, an accuracy drop exceeding Threshold raises a drift event.
// On an event the detector re-anchors: the current window becomes the
// new reference and the sliding window restarts, so a persistent step
// fires exactly once rather than on every subsequent sample.
//
// The zero value is not ready; use NewDriftDetector. The detector is
// not safe for concurrent use — callers (smartpsi's engine) serialize
// Observe with their own mutex.
type DriftDetector struct {
	cfg DriftConfig

	refSum, refN int64 // frozen reference window (refN grows to Window, then freezes)

	ring   []bool // sliding current window, circular
	ringN  int    // filled entries (grows to Window)
	ringAt int    // next write position
	curSum int64  // ones in the ring

	samples int64 // total observations
	events  int64 // drift events raised
}

// NewDriftDetector returns a detector with cfg (zero fields take
// defaults).
func NewDriftDetector(cfg DriftConfig) *DriftDetector {
	cfg = cfg.withDefaults()
	return &DriftDetector{cfg: cfg, ring: make([]bool, cfg.Window)}
}

// Observe feeds one correctness observation and reports whether it
// completed a drift event (reference accuracy minus current-window
// accuracy above the threshold, with both windows full).
func (d *DriftDetector) Observe(correct bool) bool {
	d.samples++
	// Phase 1: the first Window samples define the reference.
	if d.refN < int64(d.cfg.Window) {
		d.refN++
		if correct {
			d.refSum++
		}
		return false
	}
	// Phase 2: slide the current window.
	if d.ringN == d.cfg.Window {
		if d.ring[d.ringAt] {
			d.curSum--
		}
	} else {
		d.ringN++
	}
	d.ring[d.ringAt] = correct
	if correct {
		d.curSum++
	}
	d.ringAt = (d.ringAt + 1) % d.cfg.Window
	if d.ringN < d.cfg.Window {
		return false // window not yet full: no verdicts on partial data
	}
	refAcc := float64(d.refSum) / float64(d.refN)
	curAcc := float64(d.curSum) / float64(d.ringN)
	if refAcc-curAcc <= d.cfg.Threshold {
		return false
	}
	// Drift: re-anchor the reference at the degraded level and restart
	// the sliding window, so the event fires once per step.
	d.events++
	d.refSum, d.refN = d.curSum, int64(d.ringN)
	d.curSum, d.ringN, d.ringAt = 0, 0, 0
	return true
}

// Samples returns the total number of observations.
func (d *DriftDetector) Samples() int64 { return d.samples }

// Events returns the number of drift events raised so far.
func (d *DriftDetector) Events() int64 { return d.events }

// ReferenceAccuracy returns the frozen reference-window accuracy
// (1.0 before any observation).
func (d *DriftDetector) ReferenceAccuracy() float64 {
	if d.refN == 0 {
		return 1
	}
	return float64(d.refSum) / float64(d.refN)
}

// WindowAccuracy returns the current sliding-window accuracy (1.0 when
// the window is empty).
func (d *DriftDetector) WindowAccuracy() float64 {
	if d.ringN == 0 {
		return 1
	}
	return float64(d.curSum) / float64(d.ringN)
}

// String summarizes the detector state for debug output.
func (d *DriftDetector) String() string {
	return fmt.Sprintf("drift{samples=%d events=%d ref=%.3f window=%.3f}",
		d.samples, d.events, d.ReferenceAccuracy(), d.WindowAccuracy())
}
