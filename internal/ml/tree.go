package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// TreeConfig controls CART decision-tree induction.
type TreeConfig struct {
	// MaxDepth bounds the tree height (<=0: unbounded).
	MaxDepth int
	// MinLeaf is the minimum sample count of a leaf (default 1).
	MinLeaf int
	// FeatureFrac is the fraction of features considered per split
	// (<=0 or >=1: all). Random forests use sqrt-fraction subsampling.
	FeatureFrac float64
	// rng supplies feature subsampling; nil means deterministic
	// all-features splitting.
	rng *rand.Rand
}

// Tree is a trained CART decision tree over numeric features, split by
// Gini impurity.
type Tree struct {
	nodes      []treeNode
	numClasses int
}

type treeNode struct {
	feature   int     // -1 for leaves
	threshold float64 // go left when x[feature] <= threshold
	left      int32
	right     int32
	class     int // leaf prediction
}

// TrainTree fits a CART tree on d.
func TrainTree(d Dataset, cfg TreeConfig) (*Tree, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("ml: empty training set")
	}
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	t := &Tree{numClasses: d.NumClasses}
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t.build(d, idx, cfg, 0)
	return t, nil
}

// Name implements Classifier.
func (t *Tree) Name() string { return "decision-tree" }

// Predict implements Classifier.
func (t *Tree) Predict(x []float64) int {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.class
		}
		if n.feature < len(x) && x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumNodes returns the number of tree nodes (testing/inspection).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// build grows the subtree over rows idx and returns its node index.
func (t *Tree) build(d Dataset, idx []int, cfg TreeConfig, depth int) int32 {
	ys := make([]int, len(idx))
	for i, r := range idx {
		ys[i] = d.Y[r]
	}
	cls, pure := majority(ys, d.NumClasses)
	nodeID := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1, class: cls})
	if pure || len(idx) < 2*cfg.MinLeaf || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return nodeID
	}
	feature, threshold, ok := t.bestSplit(d, idx, cfg)
	if !ok {
		return nodeID
	}
	var left, right []int
	for _, r := range idx {
		if d.X[r][feature] <= threshold {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
		return nodeID
	}
	l := t.build(d, left, cfg, depth+1)
	r := t.build(d, right, cfg, depth+1)
	t.nodes[nodeID].feature = feature
	t.nodes[nodeID].threshold = threshold
	t.nodes[nodeID].left = l
	t.nodes[nodeID].right = r
	return nodeID
}

// bestSplit finds the (feature, threshold) minimizing weighted Gini
// impurity over the candidate features.
func (t *Tree) bestSplit(d Dataset, idx []int, cfg TreeConfig) (feature int, threshold float64, ok bool) {
	nf := d.NumFeatures()
	features := make([]int, nf)
	for i := range features {
		features[i] = i
	}
	if cfg.FeatureFrac > 0 && cfg.FeatureFrac < 1 && cfg.rng != nil {
		k := int(cfg.FeatureFrac * float64(nf))
		if k < 1 {
			k = 1
		}
		cfg.rng.Shuffle(nf, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:k]
	}

	bestGini := 2.0 // impurity is in [0,1); 2 means "none found"
	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, len(idx))
	countsL := make([]float64, d.NumClasses)
	countsR := make([]float64, d.NumClasses)
	for _, f := range features {
		for i, r := range idx {
			vals[i] = fv{v: d.X[r][f], y: d.Y[r]}
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })
		for c := range countsL {
			countsL[c] = 0
			countsR[c] = 0
		}
		for _, e := range vals {
			countsR[e.y]++
		}
		nL, nR := 0.0, float64(len(vals))
		for i := 0; i < len(vals)-1; i++ {
			countsL[vals[i].y]++
			countsR[vals[i].y]--
			nL++
			nR--
			if vals[i].v == vals[i+1].v {
				continue // can't split between equal values
			}
			g := (nL*gini(countsL, nL) + nR*gini(countsR, nR)) / float64(len(vals))
			if g < bestGini {
				bestGini = g
				feature = f
				threshold = (vals[i].v + vals[i+1].v) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}

// gini returns the Gini impurity of the class histogram counts with
// total n.
func gini(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := c / n
		s -= p * p
	}
	return s
}
