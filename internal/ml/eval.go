package ml

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// ConfusionMatrix tabulates predictions: Counts[actual][predicted].
type ConfusionMatrix struct {
	Counts [][]int64
}

// NewConfusionMatrix returns a zeroed numClasses x numClasses matrix.
func NewConfusionMatrix(numClasses int) *ConfusionMatrix {
	m := &ConfusionMatrix{Counts: make([][]int64, numClasses)}
	for i := range m.Counts {
		m.Counts[i] = make([]int64, numClasses)
	}
	return m
}

// Observe records one (actual, predicted) pair.
func (m *ConfusionMatrix) Observe(actual, predicted int) {
	m.Counts[actual][predicted]++
}

// Total returns the number of observations.
func (m *ConfusionMatrix) Total() int64 {
	var n int64
	for _, row := range m.Counts {
		for _, c := range row {
			n += c
		}
	}
	return n
}

// Accuracy returns the fraction on the diagonal (1.0 when empty).
func (m *ConfusionMatrix) Accuracy() float64 {
	total := m.Total()
	if total == 0 {
		return 1
	}
	var diag int64
	for i := range m.Counts {
		diag += m.Counts[i][i]
	}
	return float64(diag) / float64(total)
}

// Precision returns the precision of class c (1.0 when c is never
// predicted).
func (m *ConfusionMatrix) Precision(c int) float64 {
	var predicted int64
	for a := range m.Counts {
		predicted += m.Counts[a][c]
	}
	if predicted == 0 {
		return 1
	}
	return float64(m.Counts[c][c]) / float64(predicted)
}

// Recall returns the recall of class c (1.0 when c never occurs).
func (m *ConfusionMatrix) Recall(c int) float64 {
	var actual int64
	for _, p := range m.Counts[c] {
		actual += p
	}
	if actual == 0 {
		return 1
	}
	return float64(m.Counts[c][c]) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for class c.
func (m *ConfusionMatrix) F1(c int) float64 {
	p, r := m.Precision(c), m.Recall(c)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix compactly.
func (m *ConfusionMatrix) String() string {
	var sb strings.Builder
	for a, row := range m.Counts {
		fmt.Fprintf(&sb, "actual %d:", a)
		for _, c := range row {
			fmt.Fprintf(&sb, " %d", c)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Evaluate runs clf over d and returns the confusion matrix.
func Evaluate(clf Classifier, d Dataset) *ConfusionMatrix {
	m := NewConfusionMatrix(d.NumClasses)
	for i, x := range d.X {
		m.Observe(d.Y[i], clf.Predict(x))
	}
	return m
}

// Trainer fits a classifier on a dataset; the closures over
// TrainForest/TrainSVM/TrainNN used by CrossValidate.
type Trainer func(train Dataset) (Classifier, error)

// CrossValidate runs k-fold cross validation and returns the per-fold
// accuracies. Folds are a deterministic shuffle of d by seed.
func CrossValidate(d Dataset, k int, seed int64, train Trainer) ([]float64, error) {
	if k < 2 {
		return nil, fmt.Errorf("ml: k = %d folds, need >= 2", k)
	}
	if d.Len() < k {
		return nil, fmt.Errorf("ml: %d rows cannot fill %d folds", d.Len(), k)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(d.Len())
	accs := make([]float64, 0, k)
	for fold := 0; fold < k; fold++ {
		var trainSet, testSet Dataset
		trainSet.NumClasses = d.NumClasses
		testSet.NumClasses = d.NumClasses
		for i, p := range perm {
			if i%k == fold {
				testSet.X = append(testSet.X, d.X[p])
				testSet.Y = append(testSet.Y, d.Y[p])
			} else {
				trainSet.X = append(trainSet.X, d.X[p])
				trainSet.Y = append(trainSet.Y, d.Y[p])
			}
		}
		clf, err := train(trainSet)
		if err != nil {
			return nil, fmt.Errorf("ml: fold %d: %w", fold, err)
		}
		accs = append(accs, Accuracy(clf, testSet))
	}
	return accs, nil
}

// MeanStd returns the mean and population standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std /= float64(len(xs))
	return mean, math.Sqrt(std)
}
