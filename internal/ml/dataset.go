// Package ml provides the from-scratch machine-learning substrate of
// SmartPSI: a CART decision tree, the Random Forest classifier used for
// model α (node type) and model β (plan choice), and the linear-SVM and
// neural-network baselines of the paper's Section 5.4 model comparison.
//
// Everything is stdlib-only and deterministic given a seed.
package ml

import (
	"fmt"
	"math/rand"
)

// Dataset is a supervised classification sample set: row i has feature
// vector X[i] and class label Y[i] in [0, NumClasses).
type Dataset struct {
	X          [][]float64
	Y          []int
	NumClasses int
}

// Validate checks structural consistency.
func (d Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d feature rows, %d labels", len(d.X), len(d.Y))
	}
	if d.NumClasses < 1 {
		return fmt.Errorf("ml: NumClasses = %d", d.NumClasses)
	}
	var width = -1
	for i, x := range d.X {
		if width == -1 {
			width = len(x)
		} else if len(x) != width {
			return fmt.Errorf("ml: row %d has %d features, row 0 has %d", i, len(x), width)
		}
		if d.Y[i] < 0 || d.Y[i] >= d.NumClasses {
			return fmt.Errorf("ml: row %d label %d out of [0,%d)", i, d.Y[i], d.NumClasses)
		}
	}
	return nil
}

// Len returns the number of rows.
func (d Dataset) Len() int { return len(d.X) }

// NumFeatures returns the feature-vector width (0 for an empty set).
func (d Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Split partitions d into train and test sets with the given train
// fraction, shuffled by rng.
func (d Dataset) Split(trainFrac float64, rng *rand.Rand) (train, test Dataset) {
	n := d.Len()
	perm := rng.Perm(n)
	cut := int(trainFrac * float64(n))
	train = Dataset{NumClasses: d.NumClasses}
	test = Dataset{NumClasses: d.NumClasses}
	for i, p := range perm {
		if i < cut {
			train.X = append(train.X, d.X[p])
			train.Y = append(train.Y, d.Y[p])
		} else {
			test.X = append(test.X, d.X[p])
			test.Y = append(test.Y, d.Y[p])
		}
	}
	return train, test
}

// Classifier is a trained multi-class model.
type Classifier interface {
	// Predict returns the predicted class of x.
	Predict(x []float64) int
	// Name identifies the model family.
	Name() string
}

// Accuracy returns the fraction of rows of d that clf classifies
// correctly (1.0 for an empty set).
func Accuracy(clf Classifier, d Dataset) float64 {
	if d.Len() == 0 {
		return 1
	}
	correct := 0
	for i, x := range d.X {
		if clf.Predict(x) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

// majority returns the most frequent class among ys (ties to the lowest
// class id) and whether ys is pure (single class).
func majority(ys []int, numClasses int) (cls int, pure bool) {
	counts := make([]int, numClasses)
	for _, y := range ys {
		counts[y]++
	}
	best, bestCount, nonzero := 0, -1, 0
	for c, n := range counts {
		if n > 0 {
			nonzero++
		}
		if n > bestCount {
			best, bestCount = c, n
		}
	}
	return best, nonzero <= 1
}
