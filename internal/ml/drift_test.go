package ml

import "testing"

// feed pushes n observations of the given correctness and returns how
// many drift events fired.
func feed(d *DriftDetector, n int, correct bool) int {
	fired := 0
	for i := 0; i < n; i++ {
		if d.Observe(correct) {
			fired++
		}
	}
	return fired
}

// TestDriftConstantStreamNeverAlerts pins the false-positive contract:
// a perfectly stable stream (any constant accuracy, here 1.0 and 0.0)
// never raises an event, however long it runs.
func TestDriftConstantStreamNeverAlerts(t *testing.T) {
	for _, correct := range []bool{true, false} {
		d := NewDriftDetector(DriftConfig{Window: 16, Threshold: 0.2})
		if fired := feed(d, 1000, correct); fired != 0 {
			t.Errorf("constant %v stream fired %d drift events, want 0", correct, fired)
		}
		if d.Events() != 0 {
			t.Errorf("Events() = %d, want 0", d.Events())
		}
	}
	// A stable mixed stream (alternating) is constant in distribution:
	// ref acc = window acc = 0.5, so no event either.
	d := NewDriftDetector(DriftConfig{Window: 16, Threshold: 0.2})
	for i := 0; i < 1000; i++ {
		if d.Observe(i%2 == 0) {
			t.Fatalf("alternating stream fired a drift event at sample %d", i)
		}
	}
}

// TestDriftStepAlertsAtWindowBoundary pins the exact firing boundary: a
// reference window of W correct predictions followed by wrong ones must
// alert exactly when the sliding window fills — sample 2W, not 2W−1.
func TestDriftStepAlertsAtWindowBoundary(t *testing.T) {
	const w = 32
	d := NewDriftDetector(DriftConfig{Window: w, Threshold: 0.2})
	if fired := feed(d, w, true); fired != 0 {
		t.Fatalf("reference phase fired %d events", fired)
	}
	// W−1 wrong answers: the sliding window is not yet full, so no
	// verdict may be issued on partial data.
	if fired := feed(d, w-1, false); fired != 0 {
		t.Fatalf("partial window fired %d events, want 0", fired)
	}
	// The W-th wrong answer completes the window: acc 1.0 → 0.0 > 0.2.
	if !d.Observe(false) {
		t.Fatalf("full degraded window did not fire (ref=%.2f cur=%.2f)",
			d.ReferenceAccuracy(), d.WindowAccuracy())
	}
	if d.Events() != 1 {
		t.Fatalf("Events() = %d, want 1", d.Events())
	}
	// The detector re-anchors at the degraded level: continued wrong
	// answers are the new normal and must not re-fire.
	if fired := feed(d, 5*w, false); fired != 0 {
		t.Errorf("re-anchored detector re-fired %d times on the same step", fired)
	}
	// Recovery (accuracy going back up) is an improvement, never drift.
	if fired := feed(d, 5*w, true); fired != 0 {
		t.Errorf("accuracy improvement fired %d drift events, want 0", fired)
	}
}

// TestDriftSubThresholdDropStaysQuiet checks drops at or below the
// threshold never fire: ref 1.0 vs window 0.8 with threshold 0.2 is a
// drop of exactly 0.2, which is not "> threshold".
func TestDriftSubThresholdDropStaysQuiet(t *testing.T) {
	const w = 20
	d := NewDriftDetector(DriftConfig{Window: w, Threshold: 0.2})
	feed(d, w, true)
	// Repeating pattern with exactly 4/20 wrong: acc 0.8.
	for i := 0; i < 20*w; i++ {
		if d.Observe(i%5 != 0) {
			t.Fatalf("0.2 drop (== threshold) fired at sample %d", i)
		}
	}
	// A slightly deeper drop (5/20 wrong: acc 0.75, drop 0.25) fires.
	d2 := NewDriftDetector(DriftConfig{Window: w, Threshold: 0.2})
	feed(d2, w, true)
	fired := 0
	for i := 0; i < 20*w; i++ {
		if d2.Observe(i%4 != 0) {
			fired++
		}
	}
	if fired == 0 {
		t.Errorf("0.25 drop never fired (ref=%.2f cur=%.2f)", d2.ReferenceAccuracy(), d2.WindowAccuracy())
	}
}

// TestDriftAccessors covers the inspection surface used by /modelz and
// the engine's trace annotation.
func TestDriftAccessors(t *testing.T) {
	d := NewDriftDetector(DriftConfig{})
	if d.ReferenceAccuracy() != 1 || d.WindowAccuracy() != 1 {
		t.Errorf("empty detector accuracies = %.2f/%.2f, want 1/1", d.ReferenceAccuracy(), d.WindowAccuracy())
	}
	feed(d, 64, true) // default window
	feed(d, 32, false)
	if d.Samples() != 96 {
		t.Errorf("Samples() = %d, want 96", d.Samples())
	}
	if acc := d.ReferenceAccuracy(); acc != 1 {
		t.Errorf("ReferenceAccuracy() = %.2f, want 1", acc)
	}
	if acc := d.WindowAccuracy(); acc != 0 {
		t.Errorf("WindowAccuracy() = %.2f, want 0 (32 wrong in a 32-deep partial window)", acc)
	}
	if s := d.String(); s == "" {
		t.Error("String() returned empty")
	}
}
