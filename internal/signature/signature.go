// Package signature implements neighborhood signatures (Section 3.1 of
// the SmartPSI paper): per-node label-weight vectors where the weight of
// label l reflects how close and how numerous l-labeled nodes are around
// the node. Two construction strategies are provided — the
// exploration-based BFS of proximity pattern mining and the paper's
// faster iterated matrix-product formulation — plus the satisfaction test
// (Proposition 3.2) and the satisfiability score used by the optimistic
// evaluator.
package signature

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// DefaultDepth is the propagation depth used throughout the paper's
// examples and our experiments.
const DefaultDepth = 2

// Method selects a signature construction strategy.
type Method int

const (
	// Matrix builds signatures by D iterations of
	// NS^i = NS^{i-1} + ½·Adj·NS^{i-1} (the paper's optimization,
	// O(|N|·|L|·d·D)). Labels reachable through multiple paths are
	// counted once per path.
	Matrix Method = iota
	// Exploration builds signatures by per-node BFS, weighting each
	// reached node 2^-d by its shortest-path distance d
	// (O(|N|·|L|·d^D), the traditional approach).
	Exploration
)

func (m Method) String() string {
	switch m {
	case Matrix:
		return "matrix"
	case Exploration:
		return "exploration"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Signatures holds one dense weight row per node over a fixed label
// alphabet of Width labels.
type Signatures struct {
	rows  []float64
	width int
	depth int
}

// Build computes the signatures of every node of g at the given depth
// using the requested method. width is the label-alphabet size of the
// row vectors; it must be at least g.NumLabels() and is how query graphs
// (whose local alphabets are subsets) stay aligned with the data graph.
func Build(g *graph.Graph, depth, width int, method Method) (*Signatures, error) {
	if depth < 0 {
		return nil, fmt.Errorf("signature: negative depth %d", depth)
	}
	if width < g.NumLabels() {
		return nil, fmt.Errorf("signature: width %d < graph labels %d", width, g.NumLabels())
	}
	var s *Signatures
	switch method {
	case Matrix:
		s = buildMatrix(g, depth, width)
	case Exploration:
		s = buildExploration(g, depth, width)
	default:
		return nil, fmt.Errorf("signature: unknown method %v", method)
	}
	if invariant.Enabled() {
		if err := invariant.CheckSignatures(s, g); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// MustBuild is Build for known-good arguments; it panics on error.
func MustBuild(g *graph.Graph, depth, width int, method Method) *Signatures {
	s, err := Build(g, depth, width, method)
	if err != nil {
		panic(err)
	}
	return s
}

// FromDense wraps externally maintained rows (len = nodes*width, node-
// major) as a Signatures value. Package dyngraph uses it to hand its
// incrementally maintained matrix signatures to the evaluators.
func FromDense(rows []float64, width, depth int) (*Signatures, error) {
	if width <= 0 {
		return nil, fmt.Errorf("signature: width %d", width)
	}
	if len(rows)%width != 0 {
		return nil, fmt.Errorf("signature: %d values not divisible by width %d", len(rows), width)
	}
	return &Signatures{rows: rows, width: width, depth: depth}, nil
}

// Row returns node u's signature: a dense weight vector indexed by label.
// The caller must not modify it.
func (s *Signatures) Row(u graph.NodeID) []float64 {
	return s.rows[int(u)*s.width : (int(u)+1)*s.width]
}

// Width returns the label-alphabet size of the rows.
func (s *Signatures) Width() int { return s.width }

// Depth returns the propagation depth the signatures were built with.
func (s *Signatures) Depth() int { return s.depth }

// NumNodes returns the number of signature rows.
func (s *Signatures) NumNodes() int {
	if s.width == 0 {
		return 0
	}
	return len(s.rows) / s.width
}

// buildMatrix implements the paper's iterated-product construction. The
// per-node update only needs the previous iteration's rows, so each
// iteration double-buffers and rows are updated in parallel.
func buildMatrix(g *graph.Graph, depth, width int) *Signatures {
	n := g.NumNodes()
	cur := make([]float64, n*width)
	for u := 0; u < n; u++ {
		cur[u*width+int(g.Label(graph.NodeID(u)))] = 1
	}
	if depth == 0 || n == 0 {
		return &Signatures{rows: cur, width: width, depth: depth}
	}
	next := make([]float64, n*width)
	for it := 0; it < depth; it++ {
		parallelNodes(n, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				dst := next[u*width : (u+1)*width]
				src := cur[u*width : (u+1)*width]
				copy(dst, src)
				for _, w := range g.Neighbors(graph.NodeID(u)) {
					row := cur[int(w)*width : (int(w)+1)*width]
					for l, v := range row {
						if v != 0 {
							dst[l] += 0.5 * v
						}
					}
				}
			}
		})
		cur, next = next, cur
	}
	return &Signatures{rows: cur, width: width, depth: depth}
}

// buildExploration implements the traditional BFS construction: each node
// reachable within depth hops contributes 2^-d for its label, where d is
// its shortest-path distance (counted once).
func buildExploration(g *graph.Graph, depth, width int) *Signatures {
	n := g.NumNodes()
	rows := make([]float64, n*width)
	parallelNodes(n, func(lo, hi int) {
		visited := make([]int32, n)
		for i := range visited {
			visited[i] = -1
		}
		var frontier, nextFrontier []graph.NodeID
		for u := lo; u < hi; u++ {
			row := rows[u*width : (u+1)*width]
			row[g.Label(graph.NodeID(u))] = 1
			visited[u] = int32(u)
			frontier = append(frontier[:0], graph.NodeID(u))
			weight := 1.0
			for d := 1; d <= depth && len(frontier) > 0; d++ {
				weight *= 0.5
				nextFrontier = nextFrontier[:0]
				for _, x := range frontier {
					for _, w := range g.Neighbors(x) {
						if visited[w] != int32(u) {
							visited[w] = int32(u)
							row[g.Label(w)] += weight
							nextFrontier = append(nextFrontier, w)
						}
					}
				}
				frontier, nextFrontier = nextFrontier, frontier
			}
		}
	})
	return &Signatures{rows: rows, width: width, depth: depth}
}

// parallelNodes splits [0, n) across GOMAXPROCS workers.
func parallelNodes(n int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	//lint:ignore ctxflow joins this function's own CPU-bound workers over a fixed node range; terminates when they do
	wg.Wait()
}

// ForQuery builds the signatures of a query graph in the data graph's
// label space. Query graphs share the data graph's label identifiers, so
// only the row width differs.
func ForQuery(q graph.Query, depth, width int, method Method) (*Signatures, error) {
	return Build(q.G, depth, width, method)
}
