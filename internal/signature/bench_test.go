package signature

import (
	"testing"

	"repro/internal/graph/graphtest"
)

func benchmarkBuild(b *testing.B, method Method) {
	g := graphtest.Random(2000, 10000, 16, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(g, DefaultDepth, g.NumLabels(), method); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildMatrix(b *testing.B)      { benchmarkBuild(b, Matrix) }
func BenchmarkBuildExploration(b *testing.B) { benchmarkBuild(b, Exploration) }

func BenchmarkSatisfies(b *testing.B) {
	g := graphtest.Random(500, 2500, 8, 2)
	s := MustBuild(g, DefaultDepth, g.NumLabels(), Matrix)
	a, c := s.Row(0), s.Row(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Satisfies(a, c)
	}
}

func BenchmarkScore(b *testing.B) {
	g := graphtest.Random(500, 2500, 8, 3)
	s := MustBuild(g, DefaultDepth, g.NumLabels(), Matrix)
	a, c := s.Row(0), s.Row(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Score(a, c)
	}
}

func BenchmarkKey(b *testing.B) {
	g := graphtest.Random(500, 2500, 8, 4)
	s := MustBuild(g, DefaultDepth, g.NumLabels(), Matrix)
	row := s.Row(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Key(row)
	}
}
