package signature

import (
	"hash/maphash"
	"math"
)

// Satisfies reports whether signature row a satisfies row b: for every
// label with positive weight in b, a's weight is at least as large
// (Section 3.2). By Proposition 3.2, a data node whose signature does not
// satisfy the query node's signature cannot match it. Rows must share a
// label space; a may be wider than b (extra labels are unconstrained).
func Satisfies(a, b []float64) bool {
	if len(b) > len(a) {
		for _, w := range b[len(a):] {
			if w > 0 {
				return false
			}
		}
		b = b[:len(a)]
	}
	for l, w := range b {
		if w > 0 && a[l] < w {
			return false
		}
	}
	return true
}

// Score returns the satisfiability score SS(u, v) of data row u against
// query row v (Section 3.3): the mean over v's positive-weight labels of
// u's weight divided by v's weight. Larger scores mean u's neighborhood
// over-satisfies v's and a match is more likely. A query row with no
// positive weights scores 0.
func Score(u, v []float64) float64 {
	var sum float64
	var n int
	for l, w := range v {
		if w <= 0 {
			continue
		}
		n++
		if l < len(u) {
			sum += u[l] / w
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

var keySeed = maphash.MakeSeed()

// Key hashes a signature row to a cache key. Signature weights are exact
// dyadic rationals (sums of powers of ½), so identical neighborhoods hash
// identically and the prediction cache of Section 4.2.3 can reuse their
// decisions.
func Key(row []float64) uint64 {
	var h maphash.Hash
	h.SetSeed(keySeed)
	var buf [8]byte
	for _, w := range row {
		bits := math.Float64bits(w)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}
