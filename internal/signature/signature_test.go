package signature

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

func approxEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func rowEq(t *testing.T, got, want []float64, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: row length %d, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if !approxEq(got[i], want[i]) {
			t.Errorf("%s: weight[%d] = %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

// TestExplorationPaperFigure1 checks the worked example of Section 3.1:
// NS^2 of node u1 in Figure 1(b) is {(A,1.25),(B,1),(C,1)} under the
// exploration (shortest-path) construction.
func TestExplorationPaperFigure1(t *testing.T) {
	g := graphtest.Figure1Data()
	s := MustBuild(g, 2, g.NumLabels(), Exploration)
	rowEq(t, s.Row(0), []float64{1.25, 1, 1}, "NS_u1")
}

// TestMatrixPaperFigure2 checks the full worked matrix example of Section
// 3.1: NS^1 and NS^2 of the Figure 2 query over labels (A,B,C,D).
func TestMatrixPaperFigure2(t *testing.T) {
	q := graphtest.Figure2Query()
	s1 := MustBuild(q.G, 1, 4, Matrix)
	for v, want := range graphtest.Figure2NS1 {
		rowEq(t, s1.Row(graph.NodeID(v)), want, "NS^1")
	}
	s2 := MustBuild(q.G, 2, 4, Matrix)
	for v, want := range graphtest.Figure2NS2 {
		rowEq(t, s2.Row(graph.NodeID(v)), want, "NS^2")
	}
	if s2.Depth() != 2 || s2.Width() != 4 || s2.NumNodes() != 5 {
		t.Errorf("metadata wrong: depth=%d width=%d nodes=%d", s2.Depth(), s2.Width(), s2.NumNodes())
	}
}

// TestSatisfiabilityScorePaper checks the worked score of Section 3.3:
// SS(u1, v1) = 1.75 for the Figure 1 signatures.
func TestSatisfiabilityScorePaper(t *testing.T) {
	u := []float64{1.25, 1, 1}
	v := []float64{1, 0.5, 0.5}
	if got := Score(u, v); !approxEq(got, 1.75) {
		t.Errorf("Score = %v, want 1.75", got)
	}
}

func TestScoreEdgeCases(t *testing.T) {
	if got := Score([]float64{1, 2}, []float64{0, 0}); got != 0 {
		t.Errorf("all-zero query row: Score = %v, want 0", got)
	}
	// Query wider than data row: missing labels contribute 0.
	if got := Score([]float64{2}, []float64{1, 1}); !approxEq(got, 1) {
		t.Errorf("wider query: Score = %v, want 1", got)
	}
}

func TestSatisfies(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1.25, 1, 1}, []float64{1, 0.5, 0.5}, true},
		{[]float64{1, 0.5, 0.5}, []float64{1.25, 1, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, true},
		{[]float64{1, 0}, []float64{1, 0.1}, false},
		{[]float64{1}, []float64{1, 0}, true},    // b wider, extra weight zero
		{[]float64{1}, []float64{1, 0.5}, false}, // b wider, extra weight positive
		{nil, nil, true},
	}
	for i, c := range cases {
		if got := Satisfies(c.a, c.b); got != c.want {
			t.Errorf("case %d: Satisfies(%v,%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestDepthZero(t *testing.T) {
	g := graphtest.Figure1Data()
	s := MustBuild(g, 0, g.NumLabels(), Matrix)
	rowEq(t, s.Row(0), []float64{1, 0, 0}, "depth0 u1")
	s = MustBuild(g, 0, g.NumLabels(), Exploration)
	rowEq(t, s.Row(4), []float64{0, 1, 0}, "depth0 u5")
}

func TestBuildErrors(t *testing.T) {
	g := graphtest.Figure1Data()
	if _, err := Build(g, -1, 3, Matrix); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := Build(g, 2, 1, Matrix); err == nil {
		t.Error("narrow width accepted")
	}
	if _, err := Build(g, 2, 3, Method(99)); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestMethodString(t *testing.T) {
	if Matrix.String() != "matrix" || Exploration.String() != "exploration" {
		t.Error("method names wrong")
	}
	if Method(9).String() == "" {
		t.Error("unknown method String empty")
	}
}

func TestWidthPadding(t *testing.T) {
	g := graphtest.Figure1Data() // 3 labels
	s := MustBuild(g, 2, 10, Matrix)
	row := s.Row(0)
	if len(row) != 10 {
		t.Fatalf("row width %d, want 10", len(row))
	}
	for l := 3; l < 10; l++ {
		if row[l] != 0 {
			t.Errorf("padded label %d has weight %v", l, row[l])
		}
	}
}

// TestMatrixDominatesExploration: on any graph, the matrix method counts
// every walk while exploration counts only shortest paths, so matrix
// weights are >= exploration weights everywhere (same depth).
func TestMatrixDominatesExploration(t *testing.T) {
	f := func(seed int64) bool {
		g := graphtest.Random(3+int(seed%29+29)%29, 40, 4, seed)
		m := MustBuild(g, 2, g.NumLabels(), Matrix)
		e := MustBuild(g, 2, g.NumLabels(), Exploration)
		for u := 0; u < g.NumNodes(); u++ {
			mr, er := m.Row(graph.NodeID(u)), e.Row(graph.NodeID(u))
			for l := range mr {
				if mr[l] < er[l]-1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMatrixPathExact checks hand-computed matrix signatures on the path
// a(0)-b(1)-c(2) at depth 2. The matrix method counts every walk, so a
// distance-1 neighbor's label also arrives through the neighbor's own
// NS^1 self-weight (e.g. NS^2(a)[B] = 1, not ½).
func TestMatrixPathExact(t *testing.T) {
	b := graph.NewBuilder(3, 2)
	for i := 0; i < 3; i++ {
		b.AddNode(graph.Label(i))
	}
	for i := graph.NodeID(0); i < 2; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	m := MustBuild(g, 2, 3, Matrix)
	rowEq(t, m.Row(0), []float64{1.25, 1, 0.25}, "matrix a")
	rowEq(t, m.Row(1), []float64{1, 1.5, 1}, "matrix b")
	rowEq(t, m.Row(2), []float64{0.25, 1, 1.25}, "matrix c")
	e := MustBuild(g, 2, 3, Exploration)
	rowEq(t, e.Row(0), []float64{1, 0.5, 0.25}, "exploration a")
	rowEq(t, e.Row(1), []float64{0.5, 1, 0.5}, "exploration b")
	rowEq(t, e.Row(2), []float64{0.25, 0.5, 1}, "exploration c")
}

// TestSatisfactionSoundness is the property backing Proposition 3.2 in
// the form the evaluators rely on: if there is an embedding mapping query
// pivot v to data node u (here: identical graphs, identity mapping), then
// NS_u satisfies NS_v.
func TestSatisfactionIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := graphtest.Random(4+int(seed%17+17)%17, 30, 3, seed)
		s := MustBuild(g, 2, g.NumLabels(), Matrix)
		for u := 0; u < g.NumNodes(); u++ {
			row := s.Row(graph.NodeID(u))
			if !Satisfies(row, row) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyDeterministicAndDiscriminating(t *testing.T) {
	a := []float64{1, 0.5, 0.25}
	b := []float64{1, 0.5, 0.25}
	c := []float64{1, 0.5, 0.5}
	if Key(a) != Key(b) {
		t.Error("equal rows hash differently")
	}
	if Key(a) == Key(c) {
		t.Error("different rows hash equally (possible but indicates a bug here)")
	}
}

func TestKeyRandomRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := make(map[uint64][]float64)
	for i := 0; i < 2000; i++ {
		row := make([]float64, 8)
		for j := range row {
			row[j] = float64(rng.Intn(16)) / 4
		}
		k := Key(row)
		if prev, ok := seen[k]; ok {
			same := true
			for j := range row {
				if row[j] != prev[j] {
					same = false
					break
				}
			}
			if !same {
				t.Fatalf("hash collision between %v and %v", row, prev)
			}
		}
		seen[k] = row
	}
}

func TestForQuery(t *testing.T) {
	q := graphtest.Figure1Query()
	s, err := ForQuery(q, 2, 3, Exploration)
	if err != nil {
		t.Fatal(err)
	}
	// v1 has one B and one C neighbor at distance 1, nothing at distance 2.
	rowEq(t, s.Row(q.Pivot), []float64{1, 0.5, 0.5}, "NS_v1")
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0, 0).MustBuild()
	s := MustBuild(g, 2, 0, Matrix)
	if s.NumNodes() != 0 {
		t.Errorf("NumNodes = %d, want 0", s.NumNodes())
	}
	s = MustBuild(g, 2, 0, Exploration)
	if s.NumNodes() != 0 {
		t.Errorf("NumNodes = %d, want 0", s.NumNodes())
	}
}
