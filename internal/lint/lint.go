// Package lint is the engine behind cmd/psilint: a small, stdlib-only
// static-analysis framework (go/parser + go/types) with a table-driven
// rule registry enforcing this repository's correctness conventions.
//
// v2 grows the per-package syntactic pass into a whole-program
// analysis: packages are loaded together, a type-informed call graph
// and per-function dataflow facts (deadline-carrying parameters,
// blocking operations) are built over all of them, and rules come in
// two tiers — TierSyntactic rules that inspect one package at a time,
// and TierDataflow rules that see the whole Program. Findings can be
// suppressed with `//lint:ignore <rules> <reason>` directives
// (suppress.go), diffed against a committed baseline (baseline.go),
// and emitted as text, JSON, or SARIF 2.1.0 (sarif.go).
//
// Adding a rule is still ~20 lines: append a Rule to Registry in
// rules.go with a Name, a one-line Doc, a Tier and Severity, and
// either a Run (per-package) or a RunProgram (whole-program) function.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Severity classifies a rule's findings. Errors gate CI; warnings are
// reported but do not affect the exit status.
type Severity int

const (
	SevError Severity = iota
	SevWarn
)

func (s Severity) String() string {
	if s == SevWarn {
		return "warn"
	}
	return "error"
}

// Tier classifies how much context a rule needs.
type Tier int

const (
	// TierSyntactic rules inspect one type-checked package at a time.
	TierSyntactic Tier = iota
	// TierDataflow rules see the whole Program: call graph, function
	// facts, and every package at once.
	TierDataflow
)

func (t Tier) String() string {
	if t == TierDataflow {
		return "dataflow"
	}
	return "syntactic"
}

// Finding is one rule violation at one source position.
type Finding struct {
	Pos      token.Position
	Rule     string
	Severity Severity
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// Rule is one enforced convention. Exactly one of Run and RunProgram
// is set, matching the Tier.
type Rule struct {
	// Name identifies the rule in findings, directives, and -list.
	Name string
	// Doc is the one-line description shown by psilint -list.
	Doc string
	// Tier says whether the rule is per-package or whole-program.
	Tier Tier
	// Severity is the weight of this rule's findings.
	Severity Severity
	// Run inspects one package and reports violations (TierSyntactic).
	Run func(pkg *Package, report ReportFunc)
	// RunProgram inspects the whole program (TierDataflow).
	RunProgram func(prog *Program, report ReportFunc)
}

// ReportFunc records a finding at node's position.
type ReportFunc func(node ast.Node, format string, args ...any)

// Run evaluates every rule against the program formed by pkgs and
// returns the findings sorted by position. Per-package rules are
// evaluated in parallel across packages (the analysis is read-only
// over the type-checked ASTs); whole-program rules run once over the
// shared Program. Suppression directives are applied before returning:
// suppressed findings are dropped, and directive-hygiene findings
// (missing reason, unknown rule, unused directive) are appended.
func Run(fset *token.FileSet, pkgs []*Package, rules []Rule) []Finding {
	prog := BuildProgram(pkgs)

	var pkgRules, progRules []Rule
	for _, r := range rules {
		if r.RunProgram != nil {
			progRules = append(progRules, r)
		} else if r.Run != nil {
			pkgRules = append(pkgRules, r)
		}
	}

	// Per-package tier, fanned out over a bounded worker pool. Each
	// package gets its own findings slot so the merge is deterministic
	// regardless of scheduling.
	perPkg := make([][]Finding, len(pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			for _, rule := range pkgRules {
				perPkg[i] = append(perPkg[i], runRule(fset, rule, func(report ReportFunc) {
					rule.Run(pkg, report)
				})...)
			}
		}(i, pkg)
	}
	wg.Wait()

	var findings []Finding
	for _, fs := range perPkg {
		findings = append(findings, fs...)
	}
	for _, rule := range progRules {
		findings = append(findings, runRule(fset, rule, func(report ReportFunc) {
			rule.RunProgram(prog, report)
		})...)
	}

	findings = applySuppressions(fset, pkgs, rules, findings)
	sortFindings(findings)
	return findings
}

// runRule invokes one rule body with a ReportFunc bound to it.
func runRule(fset *token.FileSet, rule Rule, invoke func(ReportFunc)) []Finding {
	var out []Finding
	invoke(func(node ast.Node, format string, args ...any) {
		out = append(out, Finding{
			Pos:      fset.Position(node.Pos()),
			Rule:     rule.Name,
			Severity: rule.Severity,
			Msg:      fmt.Sprintf(format, args...),
		})
	})
	return out
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// HasErrors reports whether any finding carries error severity.
func HasErrors(findings []Finding) bool {
	for _, f := range findings {
		if f.Severity == SevError {
			return true
		}
	}
	return false
}

// ---- shared helpers used by the rules ----

// isTestSupportPackage reports whether the package is a test-fixture
// package (its path's last element ends in "test", mirroring the stdlib
// httptest/iotest convention); such packages may panic like tests do.
func isTestSupportPackage(pkg *Package) bool {
	parts := strings.Split(pkg.Path, "/")
	return strings.HasSuffix(parts[len(parts)-1], "test")
}

// calleeObject resolves the object a call expression invokes, or nil.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the named function of the named
// package (e.g. "time", "Sleep").
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// returnsError reports whether the call's result includes an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}

// containsLock reports whether t (passed or assigned by value) contains
// a type that must not be copied: the sync and sync/atomic state types,
// directly or embedded in structs/arrays.
func containsLock(t types.Type) bool {
	return containsLockDepth(t, 0)
}

func containsLockDepth(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return true
				}
			case "sync/atomic":
				switch obj.Name() {
				case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
					return true
				}
			}
		}
		return containsLockDepth(tt.Underlying(), depth+1)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if containsLockDepth(tt.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLockDepth(tt.Elem(), depth+1)
	}
	return false
}

// enclosingFuncs pairs every function body in the package (declarations
// and literals) with the name of the outermost declaration containing
// it, for rules with per-function scope.
type funcScope struct {
	name string // outermost FuncDecl name ("" for package-level literals)
	decl *ast.FuncDecl
	body *ast.BlockStmt
}

func packageFuncs(pkg *Package) []funcScope {
	var out []funcScope
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcScope{name: fd.Name.Name, decl: fd, body: fd.Body})
		}
	}
	return out
}

// bodyScope is one function body analyzed in isolation: a declared
// function or a function literal. Rules that reason about control flow
// (lockhold) must not mix statements from a literal into its enclosing
// function — the literal runs at some other time.
type bodyScope struct {
	name string // enclosing declaration name, "(func literal in X)" for lits
	body *ast.BlockStmt
}

// packageBodies enumerates every function body in the package:
// declared functions and, as separate scopes, each function literal.
func packageBodies(pkg *Package) []bodyScope {
	var out []bodyScope
	for _, fn := range packageFuncs(pkg) {
		out = append(out, bodyScope{name: fn.name, body: fn.body})
		ast.Inspect(fn.body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != nil {
				out = append(out, bodyScope{
					name: fmt.Sprintf("func literal in %s", fn.name),
					body: lit.Body,
				})
			}
			return true
		})
	}
	return out
}

// inspectShallow walks body without descending into nested function
// literals, so a scope sees only the statements that execute as part
// of it.
func inspectShallow(body *ast.BlockStmt, f func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return f(n)
	})
}
