// Package lint is the engine behind cmd/psilint: a small, stdlib-only
// static-analysis framework (go/parser + go/types) with a table-driven
// rule registry enforcing this repository's correctness conventions.
//
// Adding a rule is ~20 lines: append a Rule to Registry in rules.go
// with a Name, a one-line Doc, and a Run function that walks the
// type-checked package and calls report for each violation.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// Rule is one enforced convention.
type Rule struct {
	// Name identifies the rule in findings and -rules output.
	Name string
	// Doc is the one-line description shown by psilint -rules.
	Doc string
	// Run inspects pkg and reports violations. It is called once per
	// package (test files are never loaded).
	Run func(pkg *Package, report ReportFunc)
}

// ReportFunc records a finding at node's position.
type ReportFunc func(node ast.Node, format string, args ...any)

// Run evaluates every rule against every package and returns the
// findings sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, rules []Rule) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, rule := range rules {
			report := func(node ast.Node, format string, args ...any) {
				findings = append(findings, Finding{
					Pos:  fset.Position(node.Pos()),
					Rule: rule.Name,
					Msg:  fmt.Sprintf(format, args...),
				})
			}
			rule.Run(pkg, report)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return findings
}

// ---- shared helpers used by the rules ----

// isTestSupportPackage reports whether the package is a test-fixture
// package (its path's last element ends in "test", mirroring the stdlib
// httptest/iotest convention); such packages may panic like tests do.
func isTestSupportPackage(pkg *Package) bool {
	parts := strings.Split(pkg.Path, "/")
	return strings.HasSuffix(parts[len(parts)-1], "test")
}

// calleeObject resolves the object a call expression invokes, or nil.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// isPkgFunc reports whether obj is the named function of the named
// package (e.g. "time", "Sleep").
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// returnsError reports whether the call's result includes an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() == nil && obj.Name() == "error"
}

// containsLock reports whether t (passed or assigned by value) contains
// a type that must not be copied: the sync and sync/atomic state types,
// directly or embedded in structs/arrays.
func containsLock(t types.Type) bool {
	return containsLockDepth(t, 0)
}

func containsLockDepth(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return true
				}
			case "sync/atomic":
				switch obj.Name() {
				case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
					return true
				}
			}
		}
		return containsLockDepth(tt.Underlying(), depth+1)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if containsLockDepth(tt.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLockDepth(tt.Elem(), depth+1)
	}
	return false
}

// enclosingFuncs pairs every function body in the package (declarations
// and literals) with the name of the outermost declaration containing
// it, for rules with per-function scope.
type funcScope struct {
	name string // outermost FuncDecl name ("" for package-level literals)
	decl *ast.FuncDecl
	body *ast.BlockStmt
}

func packageFuncs(pkg *Package) []funcScope {
	var out []funcScope
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcScope{name: fd.Name.Name, decl: fd, body: fd.Body})
		}
	}
	return out
}
