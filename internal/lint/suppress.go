package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// Suppression directives let a human overrule a rule at one site, with
// a written reason:
//
//	//lint:ignore rule1,rule2 reason the next line is safe because ...
//
// A directive suppresses matching findings on its own line (trailing
// comment) or on the line directly below (own-line comment). The
// reason is mandatory: a directive without one is itself an error
// finding, so nothing gets silenced silently. A directive that names
// an unknown rule is an error (it guards against typos that would
// otherwise silence nothing forever), and a directive whose rules all
// ran but suppressed nothing is a warning (it is stale and should be
// deleted).
//
// Hygiene findings carry the pseudo-rule name "suppress" (registered
// in rules.go so -list documents it).

const directivePrefix = "lint:ignore"

// SuppressRule is the pseudo-rule name carried by directive-hygiene
// findings.
const SuppressRule = "suppress"

type directive struct {
	pos    token.Position
	rules  []string
	reason string
	used   bool
}

// parseDirectives collects every //lint:ignore directive in pkgs.
func parseDirectives(fset *token.FileSet, pkgs []*Package) []*directive {
	var out []*directive
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, directivePrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
					d := &directive{pos: fset.Position(c.Pos())}
					if rest != "" {
						parts := strings.SplitN(rest, " ", 2)
						for _, r := range strings.Split(parts[0], ",") {
							if r = strings.TrimSpace(r); r != "" {
								d.rules = append(d.rules, r)
							}
						}
						if len(parts) == 2 {
							d.reason = strings.TrimSpace(parts[1])
						}
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// applySuppressions drops findings matched by a directive and appends
// the directive-hygiene findings. The selected rule set bounds the
// stale-directive warning: a directive naming rules that were not run
// cannot be proven stale.
func applySuppressions(fset *token.FileSet, pkgs []*Package, rules []Rule, findings []Finding) []Finding {
	directives := parseDirectives(fset, pkgs)
	if len(directives) == 0 {
		return findings
	}
	selected := map[string]bool{}
	for _, r := range rules {
		selected[r.Name] = true
	}

	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, d := range directives {
			if d.pos.Filename != f.Pos.Filename {
				continue
			}
			if d.pos.Line != f.Pos.Line && d.pos.Line != f.Pos.Line-1 {
				continue
			}
			if !containsString(d.rules, f.Rule) {
				continue
			}
			d.used = true
			suppressed = true
			break
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}

	for _, d := range directives {
		if len(d.rules) == 0 {
			kept = append(kept, hygiene(d, SevError, "lint:ignore directive names no rules; use //lint:ignore <rule,...> <reason>"))
			continue
		}
		if d.reason == "" {
			kept = append(kept, hygiene(d, SevError, "lint:ignore directive for %s has no reason; every suppression must say why", strings.Join(d.rules, ",")))
		}
		for _, r := range d.rules {
			if !knownRule(r) {
				kept = append(kept, hygiene(d, SevError, "lint:ignore names unknown rule %q; see psilint -list", r))
			}
		}
		if !d.used && allSelected(d.rules, selected) && d.reason != "" {
			kept = append(kept, hygiene(d, SevWarn, "lint:ignore directive for %s suppressed nothing; delete it", strings.Join(d.rules, ",")))
		}
	}
	return kept
}

func hygiene(d *directive, sev Severity, format string, args ...any) Finding {
	return Finding{
		Pos:      d.pos,
		Rule:     SuppressRule,
		Severity: sev,
		Msg:      fmt.Sprintf(format, args...),
	}
}

func containsString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func allSelected(rules []string, selected map[string]bool) bool {
	for _, r := range rules {
		if !selected[r] {
			return false
		}
	}
	return true
}

// knownRule reports whether name is in the canonical registry (the
// full set, independent of any -rules filtering).
func knownRule(name string) bool {
	if name == SuppressRule {
		return true
	}
	for _, r := range Registry {
		if r.Name == name {
			return true
		}
	}
	return false
}
