package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is the committed inventory of grandfathered findings. The
// diff gate (psilint -baseline) fails only on findings not in the
// baseline, so adopting a new rule does not require fixing the world
// in one commit — but grandfathered findings stay visible on every
// run, and stale entries are reported so the file shrinks
// monotonically.
//
// Entries are keyed by (rule, file, message), deliberately excluding
// line numbers: unrelated edits that shift a finding up or down must
// not un-baseline it. The line is recorded for human readers only.
type Baseline struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"`
	// Findings are sorted by (file, rule, message) for stable diffs.
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry is one grandfathered finding.
type BaselineEntry struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Message  string `json:"message"`
}

// BaselineSchema is the current baseline file schema version.
const BaselineSchema = 1

// NewBaseline builds a baseline from the given findings, with file
// paths rewritten relative to root (slash-separated), so the file is
// portable across checkouts.
func NewBaseline(root string, findings []Finding) *Baseline {
	b := &Baseline{Schema: BaselineSchema, Tool: "psilint"}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{
			Rule:     f.Rule,
			Severity: f.Severity.String(),
			File:     relPath(root, f.Pos.Filename),
			Line:     f.Pos.Line,
			Message:  f.Msg,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Rule != c.Rule {
			return a.Rule < c.Rule
		}
		return a.Message < c.Message
	})
	return b
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("lint: baseline %s has schema %d, want %d", path, b.Schema, BaselineSchema)
	}
	return &b, nil
}

// Write serializes the baseline to path, indented for reviewable
// diffs.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Diff splits current findings against the baseline: fresh findings
// (not baselined — these gate), grandfathered ones (baselined and
// still present), and stale entries (baselined but no longer found —
// candidates for deletion from the file). Duplicate keys are matched
// by multiplicity: a baseline entry absorbs at most one finding.
func (b *Baseline) Diff(root string, findings []Finding) (fresh, grandfathered []Finding, stale []BaselineEntry) {
	budget := map[string]int{}
	for _, e := range b.Findings {
		budget[baselineKey(e.Rule, e.File, e.Message)]++
	}
	for _, f := range findings {
		key := baselineKey(f.Rule, relPath(root, f.Pos.Filename), f.Msg)
		if budget[key] > 0 {
			budget[key]--
			grandfathered = append(grandfathered, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	for _, e := range b.Findings {
		key := baselineKey(e.Rule, e.File, e.Message)
		if budget[key] > 0 {
			budget[key]--
			stale = append(stale, e)
		}
	}
	return fresh, grandfathered, stale
}

func baselineKey(rule, file, msg string) string {
	return rule + "\x00" + file + "\x00" + msg
}

// relPath rewrites an absolute finding path relative to root with
// forward slashes; paths outside root are kept as-is.
func relPath(root, path string) string {
	if root == "" {
		return filepath.ToSlash(path)
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(rel)
}
