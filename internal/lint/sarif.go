package lint

import (
	"encoding/json"
	"path/filepath"
)

// SARIF 2.1.0 output (https://docs.oasis-open.org/sarif/sarif/v2.1.0/)
// so findings flow into code-scanning UIs and CI annotation tooling
// without a bespoke adapter. Only the slice of the format psilint
// needs is modeled; every emitted field is required-or-recommended by
// the spec.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool                `json:"tool"`
	Results            []sarifResult            `json:"results"`
	OriginalURIBaseIDs map[string]sarifArtifact `json:"originalUriBaseIds,omitempty"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string          `json:"name"`
	InformationURI string          `json:"informationUri,omitempty"`
	Rules          []sarifRuleMeta `json:"rules"`
}

type sarifRuleMeta struct {
	ID               string           `json:"id"`
	ShortDescription sarifText        `json:"shortDescription"`
	DefaultConfig    sarifRuleDefault `json:"defaultConfiguration"`
	Properties       map[string]any   `json:"properties,omitempty"`
}

type sarifRuleDefault struct {
	Level string `json:"level"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func sarifLevel(s Severity) string {
	if s == SevWarn {
		return "warning"
	}
	return "error"
}

// SARIF encodes the findings as a SARIF 2.1.0 log. rules is the full
// registry (every rule is listed in the driver metadata whether or not
// it fired); root anchors the relative artifact URIs.
func SARIF(root string, rules []Rule, findings []Finding) ([]byte, error) {
	driver := sarifDriver{Name: "psilint"}
	ruleIndex := map[string]int{}
	for _, r := range rules {
		ruleIndex[r.Name] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRuleMeta{
			ID:               r.Name,
			ShortDescription: sarifText{Text: r.Doc},
			DefaultConfig:    sarifRuleDefault{Level: sarifLevel(r.Severity)},
			Properties:       map[string]any{"tier": r.Tier.String()},
		})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, known := ruleIndex[f.Rule]
		if !known {
			idx = -1
		}
		results = append(results, sarifResult{
			RuleID:    f.Rule,
			RuleIndex: idx,
			Level:     sarifLevel(f.Severity),
			Message:   sarifText{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       relPath(root, f.Pos.Filename),
						URIBaseID: "ROOT",
					},
					Region: sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: driver},
			Results: results,
			OriginalURIBaseIDs: map[string]sarifArtifact{
				"ROOT": {URI: "file://" + filepath.ToSlash(root) + "/"},
			},
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
