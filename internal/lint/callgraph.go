package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Program is the whole-repo view handed to TierDataflow rules: every
// loaded package, a type-informed call graph over all of them, and
// per-function dataflow facts.
type Program struct {
	Pkgs  []*Package
	Graph *CallGraph
	Facts map[*types.Func]*FuncFacts
}

// CallGraph is a static call graph over every function declared in the
// program. Direct calls resolve exactly; calls through an interface
// method conservatively fan out to every declared method in the
// program whose receiver implements the interface. Calls through
// function values are not resolved (the graph is an
// under-approximation there, which the rules document).
type CallGraph struct {
	// Nodes maps each declared function (including methods) with a
	// body to its node.
	Nodes map[*types.Func]*CGNode
}

// CGNode is one declared function in the call graph.
type CGNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl
	// Out lists the resolved callees. Calls made inside function
	// literals are attributed to the enclosing declaration (the
	// literal executes on the declaration's behalf, possibly on
	// another goroutine).
	Out []CGEdge
}

// CGEdge is one resolved call site.
type CGEdge struct {
	Site      *ast.CallExpr
	Callee    *types.Func
	Interface bool // resolved through an interface method set
}

// BuildProgram loads no code — it derives the Program (call graph +
// facts) from already type-checked packages.
func BuildProgram(pkgs []*Package) *Program {
	g := &CallGraph{Nodes: map[*types.Func]*CGNode{}}

	// Pass 1: a node per declared function body, plus the method index
	// used to resolve interface calls.
	type method struct {
		fn   *types.Func
		recv types.Type
	}
	methodsByName := map[string][]method{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Nodes[fn] = &CGNode{Fn: fn, Pkg: pkg, Decl: fd}
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					methodsByName[fn.Name()] = append(methodsByName[fn.Name()], method{fn: fn, recv: recv.Type()})
				}
			}
		}
	}

	// Pass 2: edges. calleeObject resolves both plain and method calls;
	// interface methods fan out over the implementing declared methods.
	for _, node := range g.Nodes {
		pkg := node.Pkg
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := calleeObject(pkg.Info, call).(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			if recv := sig.Recv(); recv != nil {
				if iface, ok := recv.Type().Underlying().(*types.Interface); ok {
					for _, m := range methodsByName[fn.Name()] {
						if implementsEither(m.recv, iface) {
							node.Out = append(node.Out, CGEdge{Site: call, Callee: m.fn, Interface: true})
						}
					}
					return true
				}
			}
			if _, declared := g.Nodes[fn]; declared {
				node.Out = append(node.Out, CGEdge{Site: call, Callee: fn})
			}
			return true
		})
	}

	prog := &Program{Pkgs: pkgs, Graph: g, Facts: map[*types.Func]*FuncFacts{}}
	for fn, node := range g.Nodes {
		prog.Facts[fn] = computeFacts(node)
	}
	return prog
}

// implementsEither reports whether t or *t implements iface.
func implementsEither(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// Reachable returns the set of functions reachable from the roots by
// following call edges (including interface fan-out), with, for each
// reached function, one root it is reachable from (for diagnostics).
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]*types.Func {
	from := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := from[r]; ok {
			continue
		}
		from[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Nodes[fn]
		if node == nil {
			continue
		}
		for _, e := range node.Out {
			if _, seen := from[e.Callee]; seen {
				continue
			}
			from[e.Callee] = from[fn]
			queue = append(queue, e.Callee)
		}
	}
	return from
}

// SortedNodes returns the graph's nodes in deterministic order
// (package path, then source position), so rule output is stable.
func (g *CallGraph) SortedNodes() []*CGNode {
	nodes := make([]*CGNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Pkg.Path != nodes[j].Pkg.Path {
			return nodes[i].Pkg.Path < nodes[j].Pkg.Path
		}
		return nodes[i].Decl.Pos() < nodes[j].Decl.Pos()
	})
	return nodes
}
