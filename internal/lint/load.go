package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package ready for rule evaluation.
type Package struct {
	// Path is the package's import path (module-relative for local
	// packages, e.g. "repro/internal/graph").
	Path string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info

	// fset is the file set the sources were parsed into, kept so rules
	// can render positions inside finding messages.
	fset *token.FileSet
}

// Loader parses and type-checks the packages of one module using only
// the standard library: module-local imports resolve against the module
// root, everything else goes through the stdlib source importer.
type Loader struct {
	Fset *token.FileSet

	root   string
	module string
	std    types.ImporterFrom
	cache  map[string]*loaded
}

type loaded struct {
	pkg *Package
	err error
}

// NewLoader returns a loader rooted at the module directory root.
// The module path is read from root's go.mod.
func NewLoader(root string) (*Loader, error) {
	modFile := filepath.Join(root, "go.mod")
	data, err := os.ReadFile(modFile)
	if err != nil {
		return nil, fmt.Errorf("lint: reading %s: %w", modFile, err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module directive in %s", modFile)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not support ImporterFrom")
	}
	return &Loader{
		Fset:   fset,
		root:   root,
		module: module,
		std:    std,
		cache:  map[string]*loaded{},
	}, nil
}

// Module returns the module path of the loaded tree.
func (l *Loader) Module() string { return l.module }

// LoadAll discovers and loads every package under the module root,
// skipping testdata, vendor, hidden, and script directories. Packages
// are returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "scripts") {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.module
		if rel != "." {
			importPath = l.module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(importPath, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory under the given
// import path, without module resolution for its local imports. The
// psilint self-tests use it to check fixture packages.
func (l *Loader) LoadDir(importPath, dir string) (*Package, error) {
	return l.load(importPath, dir)
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// Import resolves an import path for the type checker: module-local
// paths load from disk, the rest goes to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		pkg, err := l.load(path, filepath.Join(l.root, filepath.FromSlash(sub)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

func (l *Loader) load(importPath, dir string) (*Package, error) {
	if c, ok := l.cache[importPath]; ok {
		return c.pkg, c.err
	}
	// Mark in-flight to fail fast on import cycles instead of recursing
	// forever.
	l.cache[importPath] = &loaded{err: fmt.Errorf("lint: import cycle through %s", importPath)}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, l.memo(importPath, nil, err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		ok, err := includeFile(full)
		if err != nil {
			return nil, l.memo(importPath, nil, err)
		}
		if !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, l.memo(importPath, nil, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, l.memo(importPath, nil, fmt.Errorf("lint: no Go sources in %s", dir))
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, l.memo(importPath, nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err))
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info, fset: l.Fset}
	_ = l.memo(importPath, pkg, nil)
	return pkg, nil
}

func (l *Loader) memo(importPath string, pkg *Package, err error) error {
	l.cache[importPath] = &loaded{pkg: pkg, err: err}
	return err
}

// includeFile evaluates a file's //go:build constraint (if any) for the
// default build configuration: current GOOS/GOARCH, any go1.x version,
// and no custom tags (so e.g. the psi_invariants variant file is
// excluded, matching what `go build` compiles by default).
func includeFile(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return false, fmt.Errorf("lint: %s: bad build constraint: %w", path, err)
		}
		return expr.Eval(func(tag string) bool {
			return tag == runtime.GOOS || tag == runtime.GOARCH ||
				tag == "gc" || strings.HasPrefix(tag, "go1")
		}), nil
	}
	return true, nil
}
