package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FuncFacts are the intra-procedural dataflow facts computed once per
// declared function and shared by the TierDataflow rules.
type FuncFacts struct {
	// CarriesDeadline: the function's signature accepts a cancellation
	// or budget carrier — a context.Context, a *Budget/*Limits-named
	// type, or a time.Time/time.Duration parameter named like a
	// deadline/timeout. A caller holding a deadline can bound this
	// function's work.
	CarriesDeadline bool
	// CtxParam is the name of the context.Context parameter ("" when
	// the function takes none).
	CtxParam string
	// Blocking lists the potentially unbounded blocking operations in
	// the function body (function literals included — they run on this
	// function's behalf): channel sends/receives/ranges outside
	// bounded selects, selects with no default and no ctx.Done/timer
	// case, WaitGroup.Wait, and Cond.Wait.
	Blocking []BlockSite
}

// BlockSite is one potentially unbounded blocking operation.
type BlockSite struct {
	Node ast.Node
	What string // "channel send", "select", "WaitGroup.Wait", ...
}

// computeFacts derives the facts for one call-graph node.
func computeFacts(node *CGNode) *FuncFacts {
	facts := &FuncFacts{}
	sig := node.Fn.Type().(*types.Signature)
	params := sig.Params()
	names := paramNames(node.Decl)
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		name := p.Name()
		if name == "" && i < len(names) {
			name = names[i]
		}
		if isContextType(p.Type()) {
			facts.CarriesDeadline = true
			if facts.CtxParam == "" {
				facts.CtxParam = name
			}
			continue
		}
		if isDeadlineCarrier(p.Type(), name) {
			facts.CarriesDeadline = true
		}
	}
	collectBlocking(node.Pkg, node.Decl.Body, facts)
	return facts
}

func paramNames(decl *ast.FuncDecl) []string {
	var names []string
	if decl.Type.Params == nil {
		return nil
	}
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			names = append(names, "")
			continue
		}
		for _, n := range field.Names {
			names = append(names, n.Name)
		}
	}
	return names
}

// isDeadlineCarrier reports whether a non-context parameter can bound
// work: a named type whose name mentions Budget or Limits (the repo's
// match.Budget / psi.Limits carriers), or a time.Time / time.Duration
// whose parameter name mentions deadline or timeout.
func isDeadlineCarrier(t types.Type, paramName string) bool {
	base := t
	if ptr, ok := base.(*types.Pointer); ok {
		base = ptr.Elem()
	}
	if named, ok := base.(*types.Named); ok {
		obj := named.Obj()
		if strings.Contains(obj.Name(), "Budget") || strings.Contains(obj.Name(), "Limits") {
			return true
		}
		if obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
			(obj.Name() == "Time" || obj.Name() == "Duration") {
			lower := strings.ToLower(paramName)
			return strings.Contains(lower, "deadline") || strings.Contains(lower, "timeout")
		}
	}
	return false
}

// collectBlocking records the potentially unbounded blocking sites in
// body. Receives that are a select's comm clauses are attributed to
// the select (which may be bounded), not double-counted.
func collectBlocking(pkg *Package, body *ast.BlockStmt, facts *FuncFacts) {
	// comm expressions owned by a select, to skip when seen standalone
	commOwned := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm != nil {
				commOwned[cc.Comm] = true
				// Unwrap receive expressions stashed in assignments.
				switch s := cc.Comm.(type) {
				case *ast.AssignStmt:
					for _, rhs := range s.Rhs {
						commOwned[rhs] = true
					}
				case *ast.ExprStmt:
					commOwned[s.X] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.SendStmt:
			if !commOwned[nn] {
				facts.Blocking = append(facts.Blocking, BlockSite{Node: nn, What: "channel send"})
			}
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW && !commOwned[nn] {
				facts.Blocking = append(facts.Blocking, BlockSite{Node: nn, What: "channel receive"})
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[nn.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					facts.Blocking = append(facts.Blocking, BlockSite{Node: nn, What: "range over channel"})
				}
			}
		case *ast.SelectStmt:
			if !selectIsBounded(pkg, nn) {
				facts.Blocking = append(facts.Blocking, BlockSite{Node: nn, What: "select"})
			}
		case *ast.CallExpr:
			if s, ok := nn.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "Wait" {
				if recvIsSync(pkg.Info, s, "WaitGroup") {
					facts.Blocking = append(facts.Blocking, BlockSite{Node: nn, What: "WaitGroup.Wait"})
				}
				if recvIsSync(pkg.Info, s, "Cond") {
					facts.Blocking = append(facts.Blocking, BlockSite{Node: nn, What: "Cond.Wait"})
				}
			}
		}
		return true
	})
}

// selectIsBounded reports whether a select cannot block forever: it
// has a default clause, or a case that receives from a cancellation or
// timer source (ctx.Done(), time.After, a Timer/Ticker channel).
func selectIsBounded(pkg *Package, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc := clause.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default clause
		}
		var recvExpr ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			recvExpr = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recvExpr = s.Rhs[0]
			}
		}
		ue, ok := ast.Unparen(recvExpr).(*ast.UnaryExpr)
		if recvExpr == nil || !ok || ue.Op != token.ARROW {
			continue
		}
		if isCancellationSource(pkg, ast.Unparen(ue.X)) {
			return true
		}
	}
	return false
}

// isCancellationSource reports whether expr yields a channel that a
// deadline or timer will eventually fire: ctx.Done(), time.After(d),
// or the C field of a time.Timer/Ticker.
func isCancellationSource(pkg *Package, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.CallExpr:
		if s, ok := e.Fun.(*ast.SelectorExpr); ok {
			if s.Sel.Name == "Done" {
				if tv, ok := pkg.Info.Types[s.X]; ok && isContextType(tv.Type) {
					return true
				}
			}
		}
		if isPkgFunc(calleeObject(pkg.Info, e), "time", "After") {
			return true
		}
	case *ast.SelectorExpr:
		if e.Sel.Name == "C" {
			if tv, ok := pkg.Info.Types[e.X]; ok {
				t := tv.Type
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
					named.Obj().Pkg().Path() == "time" &&
					(named.Obj().Name() == "Timer" || named.Obj().Name() == "Ticker") {
					return true
				}
			}
		}
	}
	return false
}
