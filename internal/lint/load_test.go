package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out files under a fresh temp dir and returns it.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module tmpmod\n\ngo 1.22\n"

func TestNewLoaderMissingGoMod(t *testing.T) {
	_, err := NewLoader(t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "go.mod") {
		t.Errorf("NewLoader on bare dir: err = %v, want go.mod read failure", err)
	}
}

func TestNewLoaderNoModuleDirective(t *testing.T) {
	dir := writeTree(t, map[string]string{"go.mod": "// empty\n"})
	_, err := NewLoader(dir)
	if err == nil || !strings.Contains(err.Error(), "module directive") {
		t.Errorf("err = %v, want missing module directive", err)
	}
}

func TestLoadAllEmptyModule(t *testing.T) {
	dir := writeTree(t, map[string]string{"go.mod": goMod})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll on empty module: %v", err)
	}
	if len(pkgs) != 0 {
		t.Errorf("loaded %d packages from a module with no Go files", len(pkgs))
	}
}

func TestLoadAllParseError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": goMod,
		"a.go":   "package tmpmod\n\nfunc broken( {\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if _, err := l.LoadAll(); err == nil {
		t.Error("LoadAll succeeded on a file with a syntax error")
	}
}

func TestLoadAllTypeError(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod": goMod,
		"a.go":   "package tmpmod\n\nvar x int = \"not an int\"\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	_, err = l.LoadAll()
	if err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("err = %v, want type-checking failure", err)
	}
}

func TestLoadDirErrorIsMemoized(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":      goMod,
		"bad/bad.go":  "package bad\n\nfunc broken( {\n",
		"good/ok.go":  "package good\n\nfunc ok() {}\n\nvar _ = ok\n",
		"good/ok2.go": "package good\n\nfunc ok2() {}\n\nvar _ = ok2\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	_, err1 := l.LoadDir("tmpmod/bad", filepath.Join(dir, "bad"))
	_, err2 := l.LoadDir("tmpmod/bad", filepath.Join(dir, "bad"))
	if err1 == nil || err2 == nil {
		t.Fatal("LoadDir succeeded on a broken package")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("memoized error differs: %v vs %v", err1, err2)
	}
	// A broken sibling must not poison other packages.
	if _, err := l.LoadDir("tmpmod/good", filepath.Join(dir, "good")); err != nil {
		t.Errorf("loading the good package after a broken one: %v", err)
	}
}

func TestLoadDirNoSources(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":          goMod,
		"empty/README.md": "no go files here\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	_, err = l.LoadDir("tmpmod/empty", filepath.Join(dir, "empty"))
	if err == nil || !strings.Contains(err.Error(), "no Go sources") {
		t.Errorf("err = %v, want no Go sources", err)
	}
}

func TestLoadAllSkipsNonProductionDirs(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"go.mod":            goMod,
		"pkg/ok.go":         "package pkg\n\nfunc ok() {}\n\nvar _ = ok\n",
		"pkg/testdata/t.go": "package broken_on_purpose\n\nfunc bad( {\n",
		"vendor/v.go":       "package broken_on_purpose\n\nfunc bad( {\n",
		".hidden/h.go":      "package broken_on_purpose\n\nfunc bad( {\n",
		"scripts/gen.go":    "package broken_on_purpose\n\nfunc bad( {\n",
		"pkg/skip_test.go":  "package pkg_test\n\nfunc bad( {\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll tripped over a skipped directory: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "tmpmod/pkg" {
		t.Errorf("loaded %v, want exactly tmpmod/pkg", pkgNames(pkgs))
	}
}

func pkgNames(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}
