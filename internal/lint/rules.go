package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// Registry is the table of enforced rules, evaluated in order. To add
// a rule, append an entry here — Name, Doc, Tier, Severity, and a Run
// (per-package) or RunProgram (whole-program) function — and add
// positive/negative fixtures under cmd/psilint/testdata.
var Registry = []Rule{
	// ---- TierSyntactic: one package at a time ----
	{
		Name:     "gojoin",
		Doc:      "every `go` statement needs a join (WaitGroup.Wait, channel receive/range/select) or context cancellation in its enclosing function",
		Tier:     TierSyntactic,
		Severity: SevError,
		Run:      ruleGoJoin,
	},
	{
		Name:     "copylocks",
		Doc:      "sync primitives (Mutex, WaitGroup, atomic.*, ...) must not be copied by value in params, results, assignments, or range clauses",
		Tier:     TierSyntactic,
		Severity: SevError,
		Run:      ruleCopyLocks,
	},
	{
		Name:     "ignorederr",
		Doc:      "calls returning an error must not be used as bare statements in internal/ and cmd/ (assign the error or handle it)",
		Tier:     TierSyntactic,
		Severity: SevError,
		Run:      ruleIgnoredErr,
	},
	{
		Name:     "nopanic",
		Doc:      "library code (non-main, non-test-support packages) must not panic outside Must* helpers",
		Tier:     TierSyntactic,
		Severity: SevError,
		Run:      ruleNoPanic,
	},
	{
		Name:     "sleepsync",
		Doc:      "no time.Sleep in production code; synchronize with channels, WaitGroups, or deadlines",
		Tier:     TierSyntactic,
		Severity: SevError,
		Run:      ruleSleepSync,
	},
	{
		Name:     "obscounter",
		Doc:      "no ad-hoc atomic counters on package-level state outside internal/obs; register a Counter/Gauge in the obs registry",
		Tier:     TierSyntactic,
		Severity: SevError,
		Run:      ruleObsCounter,
	},
	{
		Name:     "shadowgate",
		Doc:      "calls into the shadow-scoring subsystem (shadow*-named funcs) must be guarded by a *Sampled sampling condition; shadow-subsystem internals are exempt",
		Tier:     TierSyntactic,
		Severity: SevError,
		Run:      ruleShadowGate,
	},
	{
		Name:     "pkgdoc",
		Doc:      "every package needs a package doc comment (`// Package <name> ...`) on at least one of its files",
		Tier:     TierSyntactic,
		Severity: SevError,
		Run:      rulePkgDoc,
	},
	{
		Name:     "metrichelp",
		Doc:      "obs Registry constructors (Counter, Gauge, Histogram) need a non-empty help string; it becomes the # HELP line on /metrics",
		Tier:     TierSyntactic,
		Severity: SevError,
		Run:      ruleMetricHelp,
	},

	// ---- TierDataflow: whole-program, on the call graph + facts ----
	{
		Name:       "ctxflow",
		Doc:        "deadlines must flow: no context.Background/TODO passed where a ctx is in scope, and every blocking call reachable from a deadline-carrying exported entry point must accept a context/budget/deadline",
		Tier:       TierDataflow,
		Severity:   SevError,
		RunProgram: ruleCtxFlow,
	},
	{
		Name:     "lockhold",
		Doc:      "no channel send/receive/select, WaitGroup.Wait, or os/net/http I/O while a sync.Mutex/RWMutex is held (Lock..Unlock or Lock + deferred Unlock)",
		Tier:     TierDataflow,
		Severity: SevError,
		Run:      ruleLockHold,
	},
	{
		Name:       "atomicmix",
		Doc:        "a struct field accessed through sync/atomic anywhere must be accessed atomically everywhere (composite-literal initialization exempt)",
		Tier:       TierDataflow,
		Severity:   SevError,
		RunProgram: ruleAtomicMix,
	},
	{
		Name:       "sendclosed",
		Doc:        "no send on a channel that another function closes without a happens-before join (WaitGroup.Wait or a receive before close)",
		Tier:       TierDataflow,
		Severity:   SevWarn,
		RunProgram: ruleSendClosed,
	},

	// ---- pseudo-rule: emitted by the suppression engine ----
	{
		Name:       SuppressRule,
		Doc:        "hygiene of //lint:ignore directives: a reason is mandatory (error), rule names must exist (error), stale directives are flagged (warn); emitted by the suppression engine, not a package walker",
		Tier:       TierSyntactic,
		Severity:   SevError,
		RunProgram: func(*Program, ReportFunc) {},
	},
}

// ---- pkgdoc ----

// rulePkgDoc requires a package doc comment: godoc renders the package
// index from it, and an undocumented package is invisible there. One
// documented file per package is enough (conventionally doc.go or the
// file named after the package); the finding is reported on the first
// file's package clause.
func rulePkgDoc(pkg *Package, report ReportFunc) {
	if len(pkg.Files) == 0 {
		return
	}
	for _, f := range pkg.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return
		}
	}
	report(pkg.Files[0].Name, "package %s has no package doc comment on any file", pkg.Types.Name())
}

// ---- gojoin ----

func ruleGoJoin(pkg *Package, report ReportFunc) {
	for _, fn := range packageFuncs(pkg) {
		var goStmts []*ast.GoStmt
		joined := false

		if fn.decl.Type.Params != nil {
			for _, field := range fn.decl.Type.Params.List {
				if tv, ok := pkg.Info.Types[field.Type]; ok && isContextType(tv.Type) {
					joined = true
				}
			}
		}
		ast.Inspect(fn.body, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.GoStmt:
				goStmts = append(goStmts, nn)
			case *ast.SelectStmt:
				joined = true
			case *ast.UnaryExpr:
				if nn.Op == token.ARROW {
					joined = true // channel receive
				}
			case *ast.RangeStmt:
				if tv, ok := pkg.Info.Types[nn.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						joined = true
					}
				}
			case *ast.CallExpr:
				if sel, ok := nn.Fun.(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "Wait":
						if recvIsSync(pkg.Info, sel, "WaitGroup") {
							joined = true
						}
					case "Done":
						if recv, ok := pkg.Info.Types[sel.X]; ok && isContextType(recv.Type) {
							joined = true
						}
					}
				}
			}
			return true
		})
		if joined {
			continue
		}
		for _, g := range goStmts {
			report(g, "goroutine started in %s without a visible join: add a WaitGroup/channel join or context cancellation", fn.name)
		}
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// recvIsSync reports whether sel's receiver is (a pointer to) the named
// sync type.
func recvIsSync(info *types.Info, sel *ast.SelectorExpr, name string) bool {
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// ---- copylocks ----

func ruleCopyLocks(pkg *Package, report ReportFunc) {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pkg.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				continue
			}
			if containsLock(tv.Type) {
				report(field, "%s passes %s by value; use a pointer", what, tv.Type)
			}
		}
	}
	copiesLock := func(expr ast.Expr) bool {
		switch ast.Unparen(expr).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			return false // composite literals, calls, &x: not value copies of existing state
		}
		tv, ok := pkg.Info.Types[expr]
		if !ok {
			return false
		}
		if _, isPtr := tv.Type.(*types.Pointer); isPtr {
			return false
		}
		return containsLock(tv.Type)
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(nn.Recv, "receiver")
				checkFieldList(nn.Type.Params, "parameter")
				checkFieldList(nn.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(nn.Type.Params, "parameter")
				checkFieldList(nn.Type.Results, "result")
			case *ast.AssignStmt:
				for _, rhs := range nn.Rhs {
					if copiesLock(rhs) {
						report(rhs, "assignment copies a lock-bearing value by value")
					}
				}
			case *ast.ReturnStmt:
				for _, res := range nn.Results {
					if copiesLock(res) {
						report(res, "return copies a lock-bearing value by value")
					}
				}
			case *ast.RangeStmt:
				if nn.Value != nil {
					// In `for _, x := range ...` the value ident is a
					// definition, recorded in Defs rather than Types.
					var t types.Type
					if id, ok := nn.Value.(*ast.Ident); ok {
						if obj := pkg.Info.Defs[id]; obj != nil {
							t = obj.Type()
						}
					}
					if t == nil {
						if tv, ok := pkg.Info.Types[nn.Value]; ok {
							t = tv.Type
						}
					}
					if t != nil && containsLock(t) {
						report(nn.Value, "range clause copies lock-bearing elements by value")
					}
				}
			}
			return true
		})
	}
}

// ---- ignorederr ----

// neverFailWriters are types whose error-returning methods are
// documented never to fail (io.Writer-shaped APIs over in-memory
// state); discarding their errors is conventional.
var neverFailWriters = map[string]bool{
	"strings.Builder":   true,
	"bytes.Buffer":      true,
	"hash/maphash.Hash": true,
}

func ruleIgnoredErr(pkg *Package, report ReportFunc) {
	if !strings.Contains(pkg.Path, "/internal/") && !strings.Contains(pkg.Path, "/cmd/") {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok || !returnsError(pkg.Info, call) {
				return true
			}
			if isExemptErrCall(pkg.Info, call) {
				return true
			}
			report(stmt, "call discards its error result; handle it or assign it explicitly")
			return true
		})
	}
}

func isExemptErrCall(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObject(info, call)
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		name := obj.Name()
		if name == "Print" || name == "Printf" || name == "Println" {
			return true // writes to stdout; conventional to discard
		}
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			arg0 := ast.Unparen(call.Args[0])
			if sel, ok := arg0.(*ast.SelectorExpr); ok {
				if target := info.Uses[sel.Sel]; target != nil && target.Pkg() != nil &&
					target.Pkg().Path() == "os" &&
					(target.Name() == "Stdout" || target.Name() == "Stderr") {
					return true
				}
			}
			// fmt.Fprint* into a never-fail in-memory writer.
			if tv, ok := info.Types[arg0]; ok && isNeverFailWriter(tv.Type) {
				return true
			}
		}
	}
	// Methods of never-fail in-memory writers.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && isNeverFailWriter(tv.Type) {
			return true
		}
	}
	return false
}

// isNeverFailWriter reports whether t is (a pointer to) one of the
// neverFailWriters types.
func isNeverFailWriter(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return neverFailWriters[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

// ---- nopanic ----

func ruleNoPanic(pkg *Package, report ReportFunc) {
	if pkg.Types.Name() == "main" || isTestSupportPackage(pkg) {
		return
	}
	for _, fn := range packageFuncs(pkg) {
		if strings.HasPrefix(fn.name, "Must") {
			continue // documented panic-on-error helpers, the Go convention
		}
		ast.Inspect(fn.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					report(call, "panic in library code (%s); return an error or move the panic into a Must* helper", fn.name)
				}
			}
			return true
		})
	}
}

// ---- obscounter ----

// ruleObsCounter flags hand-rolled metric counters: direct
// sync/atomic Add* calls (or .Add method calls on sync/atomic named
// types) whose target is package-level state. Such counters are
// invisible to /metrics and skip the Enabled() gate; internal/obs is
// the one place allowed to build them.
func ruleObsCounter(pkg *Package, report ReportFunc) {
	if strings.HasSuffix(pkg.Path, "internal/obs") || isTestSupportPackage(pkg) {
		return
	}
	pkgScope := pkg.Types.Scope()
	// isPkgLevelRoot walks selector/index chains down to the root
	// identifier and reports whether it names a package-level variable.
	var isPkgLevelRoot func(expr ast.Expr) bool
	isPkgLevelRoot = func(expr ast.Expr) bool {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			// pkgvar.field...: qualified package idents resolve the
			// selector itself; otherwise recurse on the receiver.
			if obj := pkg.Info.Uses[e.Sel]; obj != nil {
				if v, ok := obj.(*types.Var); ok && v.Parent() == pkgScope {
					return true
				}
			}
			return isPkgLevelRoot(e.X)
		case *ast.IndexExpr:
			return isPkgLevelRoot(e.X)
		case *ast.Ident:
			v, ok := pkg.Info.Uses[e].(*types.Var)
			return ok && v.Parent() == pkgScope
		}
		return false
	}
	const fix = "ad-hoc atomic counter on package-level state; register a Counter in internal/obs instead"
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Pattern 1: atomic.AddInt64(&pkgVar, d) and friends. The
			// receiver check keeps atomic.Int64 methods (also package
			// sync/atomic) out of this branch.
			if obj := calleeObject(pkg.Info, call); obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "sync/atomic" && strings.HasPrefix(obj.Name(), "Add") &&
				isFreeFunc(obj) && len(call.Args) > 0 {
				if u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok &&
					u.Op == token.AND && isPkgLevelRoot(u.X) {
					report(call, fix)
				}
				return true
			}
			// Pattern 2: pkgVar.Add(d) on an atomic.Int64-style type.
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
				if tv, ok := pkg.Info.Types[sel.X]; ok && isAtomicNamed(tv.Type) &&
					isPkgLevelRoot(sel.X) {
					report(call, fix)
				}
			}
			return true
		})
	}
}

// isFreeFunc reports whether obj is a package-level function (no
// receiver).
func isFreeFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isAtomicNamed reports whether t is (a pointer to) a named type from
// sync/atomic (Int64, Uint32, ...).
func isAtomicNamed(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync/atomic"
}

// ---- shadowgate ----

// ruleShadowGate enforces the shadow-scoring sampling contract: a call
// to a shadow*-named function (a shadow evaluation entry point) from
// outside the shadow subsystem must sit inside an if whose condition
// calls a *Sampled-named predicate. An unguarded call runs the
// counterfactual on every decision — the audit overhead stops being
// opt-in and ShadowRate=0 is no longer free.
//
// Exemptions: functions whose own name contains "shadow"/"Shadow" (the
// subsystem's internals call each other after the entry gate) and
// callees whose name contains "Sampled" (the predicates themselves).
func ruleShadowGate(pkg *Package, report ReportFunc) {
	isShadowName := func(name string) bool {
		return strings.Contains(name, "shadow") || strings.Contains(name, "Shadow")
	}
	isShadowEntry := func(name string) bool {
		return (strings.HasPrefix(name, "shadow") || strings.HasPrefix(name, "Shadow")) &&
			!strings.Contains(name, "Sampled")
	}
	condSamples := func(cond ast.Expr) bool {
		sampled := false
		ast.Inspect(cond, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if name, ok := calleeName(call); ok && strings.HasSuffix(name, "Sampled") {
					sampled = true
				}
			}
			return !sampled
		})
		return sampled
	}
	for _, fn := range packageFuncs(pkg) {
		if isShadowName(fn.name) {
			continue
		}
		// Lexical spans of if-bodies whose condition calls a *Sampled
		// predicate: shadow calls inside one are gated. AST nesting is
		// position nesting, so range containment is containment.
		type span struct{ lo, hi token.Pos }
		var guarded []span
		ast.Inspect(fn.body, func(n ast.Node) bool {
			if ifs, ok := n.(*ast.IfStmt); ok && condSamples(ifs.Cond) {
				guarded = append(guarded, span{ifs.Body.Pos(), ifs.Body.End()})
			}
			return true
		})
		ast.Inspect(fn.body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := calleeName(call)
			if !ok || !isShadowEntry(name) {
				return true
			}
			for _, s := range guarded {
				if call.Pos() >= s.lo && call.Pos() < s.hi {
					return true
				}
			}
			report(call, "shadow call %s is not guarded by a *Sampled condition in %s; shadow runs must be sampled, never unconditional", name, fn.name)
			return true
		})
	}
}

// calleeName returns the bare name of a call's callee (the identifier
// or selector member), when it has one.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name, true
	case *ast.SelectorExpr:
		return f.Sel.Name, true
	}
	return "", false
}

// ---- metrichelp ----

// ruleMetricHelp requires every metric registered through the obs
// Registry to carry a help string: the second argument of Counter,
// Gauge and Histogram feeds the Prometheus # HELP line, and an empty
// one ships an undocumented metric to every dashboard. Flagged when
// the help argument is a constant empty (or all-whitespace) string.
func ruleMetricHelp(pkg *Package, report ReportFunc) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(pkg.Info, call)
			if !isRegistryConstructor(obj) || len(call.Args) < 2 {
				return true
			}
			tv, ok := pkg.Info.Types[call.Args[1]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true
			}
			if strings.TrimSpace(constant.StringVal(tv.Value)) == "" {
				report(call.Args[1], "metric registered with an empty help string; describe it (%s becomes the # HELP line on /metrics)", obj.Name())
			}
			return true
		})
	}
}

// isRegistryConstructor reports whether obj is the Counter, Gauge or
// Histogram method of the obs Registry.
func isRegistryConstructor(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	switch fn.Name() {
	case "Counter", "Gauge", "Histogram":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Registry" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/obs")
}

// ---- sleepsync ----

func ruleSleepSync(pkg *Package, report ReportFunc) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(calleeObject(pkg.Info, call), "time", "Sleep") {
				report(call, "time.Sleep used for synchronization; use channels, WaitGroups, timers, or deadlines")
			}
			return true
		})
	}
}
