package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file holds the TierDataflow rules: whole-program checks built
// on the call graph (callgraph.go) and per-function facts (facts.go).
// They guard the concurrency substrate the scale-out work (sharded
// scatter-gather serving, ROADMAP item 1) will multiply: deadlines
// must reach every blocking call, locks must not be held across
// channel operations, and no field may mix atomic and plain access.

// ---- ctxflow ----

// ruleCtxFlow enforces that cancellation actually flows: (a) a
// function holding a context.Context must not bury it by passing
// context.Background()/TODO() to a context-accepting callee (the
// dropped-deadline path behind 504-correctness bugs), and (b) every
// function reachable from a deadline-carrying exported entry point
// that performs a potentially unbounded blocking operation must itself
// accept a context/budget/deadline so the caller's bound can reach it.
func ruleCtxFlow(prog *Program, report ReportFunc) {
	// (a) dropped deadline: intra-procedural over every function that
	// has a ctx parameter.
	for _, node := range prog.Graph.SortedNodes() {
		facts := prog.Facts[node.Fn]
		if facts.CtxParam == "" {
			continue
		}
		pkg := node.Pkg
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				inner, ok := ast.Unparen(arg).(*ast.CallExpr)
				if !ok {
					continue
				}
				obj := calleeObject(pkg.Info, inner)
				if isPkgFunc(obj, "context", "Background") || isPkgFunc(obj, "context", "TODO") {
					callee := "callee"
					if name, ok := calleeName(call); ok {
						callee = name
					}
					report(arg, "context.%s passed to %s drops the deadline carried by parameter %q; pass the context through",
						obj.Name(), callee, facts.CtxParam)
				}
			}
			return true
		})
	}

	// (b) unreachable deadline: blocking sites in functions reachable
	// from deadline-carrying exported entry points.
	var roots []*types.Func
	for _, node := range prog.Graph.SortedNodes() {
		if node.Fn.Exported() && prog.Facts[node.Fn].CarriesDeadline {
			roots = append(roots, node.Fn)
		}
	}
	reachedFrom := prog.Graph.Reachable(roots)
	for _, node := range prog.Graph.SortedNodes() {
		root, reached := reachedFrom[node.Fn]
		if !reached {
			continue
		}
		facts := prog.Facts[node.Fn]
		if facts.CarriesDeadline {
			continue
		}
		for _, b := range facts.Blocking {
			report(b.Node, "%s in %s is reachable from deadline-carrying entry point %s but %s accepts no context, budget, or deadline; the caller's bound cannot stop it",
				b.What, node.Fn.Name(), root.Name(), node.Fn.Name())
		}
	}
}

// ---- lockhold ----

// blockingPkgs are packages whose calls can block on the outside world
// (I/O); calling into them while holding a mutex serializes the
// critical section behind the kernel or the network.
var blockingPkgs = map[string]bool{
	"os":       true,
	"net":      true,
	"net/http": true,
}

// ruleLockHold flags mutex critical sections that contain a blocking
// operation: a channel send/receive/select, WaitGroup.Wait, or a call
// into an I/O package while a sync.Mutex/RWMutex is provably held
// (Lock…Unlock lexically, or Lock + deferred Unlock to the end of the
// function body). Each function body — declarations and literals —
// is analyzed as its own scope. Cond.Wait is exempt: it releases its
// mutex while parked.
func ruleLockHold(pkg *Package, report ReportFunc) {
	for _, scope := range packageBodies(pkg) {
		checkLockHold(pkg, scope, report)
	}
}

type lockInterval struct {
	key      string
	from, to token.Pos
}

func checkLockHold(pkg *Package, scope bodyScope, report ReportFunc) {
	bodyEnd := scope.body.End()
	var intervals []lockInterval
	open := map[string]token.Pos{} // mutex expr -> Lock position

	closeInterval := func(key string, at token.Pos) {
		if from, ok := open[key]; ok {
			intervals = append(intervals, lockInterval{key: key, from: from, to: at})
			delete(open, key)
		}
	}
	inspectShallow(scope.body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held to the end of the
			// body: by not descending we never close the interval, and
			// the open-interval flush below extends it to bodyEnd.
			return false
		case *ast.CallExpr:
			if key, op, ok := mutexOp(pkg, nn); ok {
				switch op {
				case "Lock", "RLock":
					if _, already := open[key]; !already {
						open[key] = nn.End()
					}
				case "Unlock", "RUnlock":
					closeInterval(key, nn.Pos())
				}
			}
		}
		return true
	})
	for key, from := range open {
		intervals = append(intervals, lockInterval{key: key, from: from, to: bodyEnd})
	}
	if len(intervals) == 0 {
		return
	}
	sort.Slice(intervals, func(i, j int) bool { return intervals[i].from < intervals[j].from })

	held := func(pos token.Pos) string {
		for _, iv := range intervals {
			if pos > iv.from && pos < iv.to {
				return iv.key
			}
		}
		return ""
	}
	inspectShallow(scope.body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.SendStmt:
			if key := held(nn.Pos()); key != "" {
				report(nn, "channel send while %s is locked in %s; move the send outside the critical section", key, scope.name)
			}
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW {
				if key := held(nn.Pos()); key != "" {
					report(nn, "channel receive while %s is locked in %s; move the receive outside the critical section", key, scope.name)
				}
			}
		case *ast.SelectStmt:
			if key := held(nn.Pos()); key != "" {
				report(nn, "select while %s is locked in %s; move the channel ops outside the critical section", key, scope.name)
			}
			return false // cases already reported via the select itself
		case *ast.CallExpr:
			key := held(nn.Pos())
			if key == "" {
				return true
			}
			if sel, ok := nn.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" &&
				recvIsSync(pkg.Info, sel, "WaitGroup") {
				report(nn, "WaitGroup.Wait while %s is locked in %s; join before taking the lock", key, scope.name)
				return true
			}
			if obj := calleeObject(pkg.Info, nn); obj != nil && obj.Pkg() != nil &&
				blockingPkgs[obj.Pkg().Path()] {
				report(nn, "call into %s (%s) while %s is locked in %s; do I/O outside the critical section",
					obj.Pkg().Path(), obj.Name(), key, scope.name)
			}
		}
		return true
	})
}

// mutexOp matches a call of the form `m.Lock()` / `m.Unlock()` /
// `m.RLock()` / `m.RUnlock()` where m is (a pointer to) a sync.Mutex
// or sync.RWMutex, returning the rendered mutex expression and the
// method name.
func mutexOp(pkg *Package, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !recvIsSync(pkg.Info, sel, "Mutex") && !recvIsSync(pkg.Info, sel, "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// ---- atomicmix ----

// ruleAtomicMix flags struct fields accessed both through sync/atomic
// (atomic.AddInt64(&s.f, 1), atomic.LoadUint32(&s.f), ...) and via
// plain loads/stores anywhere in the program: the plain access tears
// the atomicity contract and is invisible to the race detector until
// the exact interleaving hits. Composite-literal initialization is
// exempt (construction happens before the value is shared).
func ruleAtomicMix(prog *Program, report ReportFunc) {
	// Pass 1: fields with at least one sync/atomic access, and the
	// selector expressions making those accesses (to exempt in pass 2).
	atomicFields := map[*types.Var]token.Position{}
	atomicSelectors := map[*ast.SelectorExpr]bool{}
	forEachFieldAtomicArg(prog, func(pkg *Package, sel *ast.SelectorExpr, field *types.Var) {
		if _, ok := atomicFields[field]; !ok {
			atomicFields[field] = pkg.posOf(sel)
		}
		atomicSelectors[sel] = true
	})
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: plain selector accesses to those fields.
	for _, pkg := range prog.Pkgs {
		litKeys := compositeLitKeys(pkg)
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || atomicSelectors[sel] || litKeys[sel.Sel] {
					return true
				}
				field, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
				if !ok || !field.IsField() {
					return true
				}
				atomicAt, isAtomic := atomicFields[field]
				if !isAtomic {
					return true
				}
				report(sel, "plain access to field %s.%s, which is accessed atomically at %s; use sync/atomic for every access",
					fieldOwner(field), field.Name(), atomicAt)
				return true
			})
		}
	}
}

// forEachFieldAtomicArg visits every `&x.f` argument of a sync/atomic
// free-function call in the program, resolving f to its field object.
func forEachFieldAtomicArg(prog *Program, visit func(pkg *Package, sel *ast.SelectorExpr, field *types.Var)) {
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObject(pkg.Info, call)
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" || !isFreeFunc(obj) {
					return true
				}
				for _, arg := range call.Args {
					ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || ue.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					field, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
					if !ok || !field.IsField() {
						continue
					}
					visit(pkg, sel, field)
				}
				return true
			})
		}
	}
}

// compositeLitKeys collects the field-key identifiers of composite
// literals (the `f` in `S{f: 0}`), which are initialization, not
// shared-state access.
func compositeLitKeys(pkg *Package) map[*ast.Ident]bool {
	keys := map[*ast.Ident]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, elt := range lit.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						keys[id] = true
					}
				}
			}
			return true
		})
	}
	return keys
}

// fieldOwner names the struct a field belongs to, best effort.
func fieldOwner(field *types.Var) string {
	if field.Pkg() != nil {
		scope := field.Pkg().Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == field {
					return tn.Name()
				}
			}
		}
	}
	return "struct"
}

// ---- sendclosed ----

// ruleSendClosed flags sends on channels that some other function
// closes without a visible happens-before join: if close(ch) runs in
// one function and ch <- v in another, nothing orders them, and a
// late send panics. A close is considered joined when, lexically
// before it in the same body, the closer waits (WaitGroup.Wait,
// channel receive, or select) — the ubiquitous
// `go producer(); wg.Wait(); close(ch)` shape. A send after a close
// in the same body is always flagged.
func ruleSendClosed(prog *Program, report ReportFunc) {
	type closeSite struct {
		fn     string
		pos    token.Pos
		pkg    *Package
		node   ast.Node
		joined bool
	}
	type sendSite struct {
		fn   string
		pos  token.Pos
		pkg  *Package
		node ast.Node
	}
	closes := map[types.Object][]closeSite{}
	sends := map[types.Object][]sendSite{}

	for _, pkg := range prog.Pkgs {
		for _, scope := range packageBodies(pkg) {
			// join points lexically inside this body, in source order
			var joinPos []token.Pos
			inspectShallow(scope.body, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.UnaryExpr:
					if nn.Op == token.ARROW {
						joinPos = append(joinPos, nn.Pos())
					}
				case *ast.RangeStmt:
					if tv, ok := pkg.Info.Types[nn.X]; ok {
						if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
							joinPos = append(joinPos, nn.Pos())
						}
					}
				case *ast.SelectStmt:
					joinPos = append(joinPos, nn.Pos())
				case *ast.CallExpr:
					if sel, ok := nn.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" &&
						(recvIsSync(pkg.Info, sel, "WaitGroup") || recvIsSync(pkg.Info, sel, "Cond")) {
						joinPos = append(joinPos, nn.Pos())
					}
				}
				return true
			})
			joinedBefore := func(pos token.Pos) bool {
				for _, j := range joinPos {
					if j < pos {
						return true
					}
				}
				return false
			}
			inspectShallow(scope.body, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.CallExpr:
					if id, ok := nn.Fun.(*ast.Ident); ok && id.Name == "close" && len(nn.Args) == 1 {
						if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
							if obj := chanRootObject(pkg, nn.Args[0]); obj != nil {
								closes[obj] = append(closes[obj], closeSite{
									fn: scope.name, pos: nn.Pos(), pkg: pkg, node: nn,
									joined: joinedBefore(nn.Pos()),
								})
							}
						}
					}
				case *ast.SendStmt:
					if obj := chanRootObject(pkg, nn.Chan); obj != nil {
						sends[obj] = append(sends[obj], sendSite{fn: scope.name, pos: nn.Pos(), pkg: pkg, node: nn})
					}
				}
				return true
			})
		}
	}

	// Deterministic iteration: order channel objects by close position.
	var objs []types.Object
	for obj := range closes {
		if len(sends[obj]) > 0 {
			objs = append(objs, obj)
		}
	}
	sort.Slice(objs, func(i, j int) bool {
		return closes[objs[i]][0].pos < closes[objs[j]][0].pos
	})
	for _, obj := range objs {
		for _, s := range sends[obj] {
			for _, c := range closes[obj] {
				if s.fn == c.fn && s.pkg == c.pkg {
					if s.pos > c.pos {
						report(s.node, "send on %s after close(%s) earlier in %s; a closed channel panics on send", obj.Name(), obj.Name(), c.fn)
						break
					}
					continue // sequential send-then-close in one body: ordered
				}
				if !c.joined {
					report(s.node, "send on %s, which %s closes without a preceding join (WaitGroup.Wait or channel receive); a racing send on a closed channel panics", obj.Name(), c.fn)
					break
				}
			}
		}
	}
}

// chanRootObject resolves the channel expression of a send/close to a
// stable program object worth tracking across functions: a named
// variable (local or package-level) or a struct field. Anything more
// dynamic (map/slice elements, call results) returns nil.
func chanRootObject(pkg *Package, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := pkg.Info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// posOf renders a node's position with the package's file set — a
// convenience for rules that embed one position inside another
// finding's message.
func (p *Package) posOf(n ast.Node) token.Position {
	return p.fset.Position(n.Pos())
}
