package plan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

func TestValidate(t *testing.T) {
	q := graphtest.Figure2Query() // v0(A)-v1(B)-v2(B)-v3(C)-v4(D), pivot v1
	good := Plan{1, 0, 2, 3, 4}
	if err := Validate(q, good); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
	cases := []struct {
		name string
		p    Plan
	}{
		{"too short", Plan{1, 0}},
		{"wrong start", Plan{0, 1, 2, 3, 4}},
		{"repeat", Plan{1, 0, 0, 3, 4}},
		{"out of range", Plan{1, 0, 2, 3, 9}},
		{"negative", Plan{1, 0, 2, 3, -1}},
		{"disconnected prefix", Plan{1, 4, 0, 2, 3}}, // v4 only adjacent to v3
	}
	for _, c := range cases {
		if err := Validate(q, c.p); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Empty query: empty plan is valid.
	eq := graph.Query{G: graph.NewBuilder(0, 0).MustBuild(), Pivot: 0}
	if err := Validate(eq, Plan{}); err != nil {
		t.Errorf("empty plan: %v", err)
	}
}

func TestHeuristicIsValid(t *testing.T) {
	q := graphtest.Figure2Query()
	g := graphtest.Figure1Data()
	p := Heuristic(q, g)
	if err := Validate(q, p); err != nil {
		t.Fatalf("heuristic plan invalid: %v (plan %v)", err, p)
	}
}

func TestHeuristicPrefersRareLabels(t *testing.T) {
	// Data graph where label D (3) is rarest; the Figure 2 query's first
	// choice after pivot v1 is among {v0(A), v2(B), v3(C)} — make A rare.
	b := graph.NewBuilder(8, 0)
	b.AddNode(0) // one A
	for i := 0; i < 4; i++ {
		b.AddNode(1) // four B
	}
	for i := 0; i < 3; i++ {
		b.AddNode(2) // three C
	}
	g := b.MustBuild()
	q := graphtest.Figure2Query()
	p := Heuristic(q, g)
	if p[1] != 0 { // v0 carries the rare label A
		t.Errorf("plan %v: second node = %d, want v0 (rare label)", p, p[1])
	}
}

func TestEnumerate(t *testing.T) {
	q := graphtest.Figure1Query() // triangle, pivot v1: both orders valid
	plans := Enumerate(q, 0)
	if len(plans) != 2 {
		t.Fatalf("triangle has %d plans, want 2", len(plans))
	}
	for _, p := range plans {
		if err := Validate(q, p); err != nil {
			t.Errorf("enumerated plan %v invalid: %v", p, err)
		}
	}
	// The Figure 2 query: count by hand. Valid orders from pivot v1 keep
	// prefixes connected; v4 must come after v3, v0 anywhere after v1.
	q2 := graphtest.Figure2Query()
	plans2 := Enumerate(q2, 0)
	for _, p := range plans2 {
		if err := Validate(q2, p); err != nil {
			t.Errorf("plan %v invalid: %v", p, err)
		}
	}
	// Cross-check the count against brute force over all permutations.
	want := bruteForcePlanCount(q2)
	if len(plans2) != want {
		t.Errorf("Enumerate found %d plans, brute force %d", len(plans2), want)
	}
	// max caps the output.
	if got := Enumerate(q2, 3); len(got) != 3 {
		t.Errorf("Enumerate(max=3) returned %d", len(got))
	}
}

func bruteForcePlanCount(q graph.Query) int {
	n := q.G.NumNodes()
	perm := make(Plan, n)
	used := make([]bool, n)
	count := 0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if Validate(q, perm) == nil {
				count++
			}
			return
		}
		for v := graph.NodeID(0); int(v) < n; v++ {
			if !used[v] {
				used[v] = true
				perm[i] = v
				rec(i + 1)
				used[v] = false
			}
		}
	}
	rec(0)
	return count
}

func TestSample(t *testing.T) {
	q := graphtest.Figure2Query()
	g := graphtest.Figure1Data()
	rng := rand.New(rand.NewSource(7))
	plans := Sample(q, g, 5, rng)
	if len(plans) == 0 {
		t.Fatal("no plans sampled")
	}
	// First plan is the heuristic default.
	h := Heuristic(q, g)
	for i := range h {
		if plans[0][i] != h[i] {
			t.Fatalf("first sampled plan %v != heuristic %v", plans[0], h)
		}
	}
	seen := map[string]bool{}
	for _, p := range plans {
		if err := Validate(q, p); err != nil {
			t.Errorf("sampled plan %v invalid: %v", p, err)
		}
		fp := fingerprint(p)
		if seen[fp] {
			t.Errorf("duplicate sampled plan %v", p)
		}
		seen[fp] = true
	}
	if got := Sample(q, g, 0, rng); got != nil {
		t.Error("Sample(k=0) should be nil")
	}
}

func TestSampledPlansAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(6, 12, 3, seed)
		comp := graph.ConnectedComponent(g, 0)
		if len(comp) < 3 {
			return true
		}
		sub, _, err := graph.InducedSubgraph(g, comp)
		if err != nil {
			return false
		}
		q, err := graph.NewQuery(sub, graph.NodeID(rng.Intn(sub.NumNodes())))
		if err != nil {
			return false
		}
		for _, p := range Sample(q, g, 4, rng) {
			if Validate(q, p) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCompile(t *testing.T) {
	q := graphtest.Figure2Query()
	p := Plan{1, 2, 3, 4, 0}
	c, err := Compile(q, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Steps) != 5 {
		t.Fatalf("steps = %d", len(c.Steps))
	}
	s0 := c.Steps[0]
	if s0.QueryNode != 1 || s0.Anchor != -1 || len(s0.Checks) != 0 {
		t.Errorf("step 0 = %+v", s0)
	}
	// Step 1 binds v2, anchored at position 0 (v1).
	s1 := c.Steps[1]
	if s1.QueryNode != 2 || s1.Anchor != 0 || len(s1.Checks) != 0 {
		t.Errorf("step 1 = %+v", s1)
	}
	// Step 2 binds v3, adjacent to v1 (pos 0) and v2 (pos 1): anchor is
	// the earliest position, the other becomes a check.
	s2 := c.Steps[2]
	if s2.QueryNode != 3 || s2.Anchor != 0 || len(s2.Checks) != 1 || s2.Checks[0].Pos != 1 {
		t.Errorf("step 2 = %+v", s2)
	}
	// Step 3 binds v4, anchored at v3 (pos 2).
	s3 := c.Steps[3]
	if s3.QueryNode != 4 || s3.Anchor != 2 || len(s3.Checks) != 0 {
		t.Errorf("step 3 = %+v", s3)
	}
	if s3.Label != graphtest.LabelD {
		t.Errorf("step 3 label = %d", s3.Label)
	}
	// Invalid plans are rejected.
	if _, err := Compile(q, Plan{0, 1, 2, 3, 4}); err == nil {
		t.Error("bad plan compiled")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile did not panic")
		}
	}()
	MustCompile(graphtest.Figure2Query(), Plan{0, 1, 2, 3, 4})
}

func TestCompileDegreeMetadata(t *testing.T) {
	q := graphtest.Figure1Query()
	c := MustCompile(q, Plan{0, 1, 2})
	for _, st := range c.Steps {
		if st.Degree != 2 {
			t.Errorf("step %+v degree = %d, want 2 (triangle)", st, st.Degree)
		}
	}
}
