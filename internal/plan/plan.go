// Package plan models query-evaluation search orders for PSI queries.
//
// A plan is a permutation of the query's nodes beginning with the pivot
// such that every prefix is connected; the evaluators bind query nodes to
// data nodes in plan order, so the connected-prefix property guarantees
// every new binding is anchored to an already-bound neighbor.
//
// The package provides the selectivity-based heuristic planner used by
// the two-threaded baseline and recovery path (Section 4.3), full and
// sampled enumeration of valid plans (the classes of model β,
// Section 4.2.2), and plan compilation into the adjacency-check program
// the evaluators execute.
package plan

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Plan is a query-node visit order. Plan[0] is always the query pivot.
type Plan []graph.NodeID

// Validate checks that p is a permutation of q's nodes, starts at the
// pivot, and keeps every prefix connected.
func Validate(q graph.Query, p Plan) error {
	n := q.G.NumNodes()
	if len(p) != n {
		return fmt.Errorf("plan: length %d, want %d", len(p), n)
	}
	if n == 0 {
		return nil
	}
	if p[0] != q.Pivot {
		return fmt.Errorf("plan: starts at %d, want pivot %d", p[0], q.Pivot)
	}
	seen := make([]bool, n)
	for i, v := range p {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("plan: node %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("plan: node %d repeated", v)
		}
		seen[v] = true
		if i == 0 {
			continue
		}
		connected := false
		for _, w := range q.G.Neighbors(v) {
			if seen[w] && w != v {
				connected = true
				break
			}
		}
		if !connected {
			return fmt.Errorf("plan: node %d at position %d not adjacent to any earlier node", v, i)
		}
	}
	return nil
}

// Heuristic returns the selectivity-based plan for q against data graph
// g: starting from the pivot, it greedily appends the connected query
// node whose label is rarest in g, breaking ties by higher query degree
// (more attached constraints prune earlier) and then by node id. This is
// the plan used when no learned plan is available.
func Heuristic(q graph.Query, g *graph.Graph) Plan {
	n := q.G.NumNodes()
	p := make(Plan, 0, n)
	if n == 0 {
		return p
	}
	inPlan := make([]bool, n)
	frontier := make([]bool, n)
	p = append(p, q.Pivot)
	inPlan[q.Pivot] = true
	for _, w := range q.G.Neighbors(q.Pivot) {
		frontier[w] = true
	}
	for len(p) < n {
		best := graph.NodeID(-1)
		var bestFreq int32
		var bestDeg int32
		for v := graph.NodeID(0); int(v) < n; v++ {
			if !frontier[v] || inPlan[v] {
				continue
			}
			freq := g.LabelFrequency(q.G.Label(v))
			deg := q.G.Degree(v)
			if best < 0 || freq < bestFreq || (freq == bestFreq && (deg > bestDeg || (deg == bestDeg && v < best))) {
				best, bestFreq, bestDeg = v, freq, deg
			}
		}
		if best < 0 {
			// Disconnected query; fall back to any remaining node so the
			// plan is still a permutation (Validate will flag it).
			for v := graph.NodeID(0); int(v) < n; v++ {
				if !inPlan[v] {
					best = v
					break
				}
			}
		}
		p = append(p, best)
		inPlan[best] = true
		frontier[best] = false
		for _, w := range q.G.Neighbors(best) {
			if !inPlan[w] {
				frontier[w] = true
			}
		}
	}
	return p
}

// Enumerate returns all valid plans for q, in a deterministic order, up
// to max (<=0 means unbounded). The result's indices are the class labels
// of model β.
func Enumerate(q graph.Query, max int) []Plan {
	n := q.G.NumNodes()
	var out []Plan
	if n == 0 {
		return out
	}
	cur := make(Plan, 1, n)
	cur[0] = q.Pivot
	inPlan := make([]bool, n)
	inPlan[q.Pivot] = true
	var rec func() bool
	rec = func() bool {
		if len(cur) == n {
			cp := make(Plan, n)
			copy(cp, cur)
			out = append(out, cp)
			return max > 0 && len(out) >= max
		}
		for v := graph.NodeID(0); int(v) < n; v++ {
			if inPlan[v] {
				continue
			}
			connected := false
			for _, w := range q.G.Neighbors(v) {
				if inPlan[w] {
					connected = true
					break
				}
			}
			if !connected {
				continue
			}
			inPlan[v] = true
			cur = append(cur, v)
			done := rec()
			cur = cur[:len(cur)-1]
			inPlan[v] = false
			if done {
				return true
			}
		}
		return false
	}
	rec()
	return out
}

// Sample returns up to k distinct valid plans drawn uniformly-ish by
// random greedy extension. The heuristic plan for g is always included
// first so the model β class set contains the safe default.
func Sample(q graph.Query, g *graph.Graph, k int, rng *rand.Rand) []Plan {
	if k <= 0 {
		return nil
	}
	out := []Plan{Heuristic(q, g)}
	seen := map[string]bool{fingerprint(out[0]): true}
	n := q.G.NumNodes()
	if n == 0 {
		return out
	}
	attempts := 0
	for len(out) < k && attempts < 20*k {
		attempts++
		p := randomPlan(q, rng)
		fp := fingerprint(p)
		if !seen[fp] {
			seen[fp] = true
			out = append(out, p)
		}
	}
	return out
}

func randomPlan(q graph.Query, rng *rand.Rand) Plan {
	n := q.G.NumNodes()
	p := make(Plan, 1, n)
	p[0] = q.Pivot
	inPlan := make([]bool, n)
	inPlan[q.Pivot] = true
	var frontier []graph.NodeID
	push := func(u graph.NodeID) {
		for _, w := range q.G.Neighbors(u) {
			if !inPlan[w] {
				dup := false
				for _, f := range frontier {
					if f == w {
						dup = true
						break
					}
				}
				if !dup {
					frontier = append(frontier, w)
				}
			}
		}
	}
	push(q.Pivot)
	for len(p) < n && len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		v := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		p = append(p, v)
		inPlan[v] = true
		push(v)
	}
	return p
}

func fingerprint(p Plan) string {
	b := make([]byte, 0, len(p)*2)
	for _, v := range p {
		b = append(b, byte(v), byte(v>>8))
	}
	return string(b)
}
