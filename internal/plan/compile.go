package plan

import (
	"fmt"

	"repro/internal/graph"
)

// EdgeCheck is one adjacency constraint a candidate binding must satisfy:
// the candidate must be adjacent (with the given edge label, if any) to
// the data node bound at plan position Pos.
type EdgeCheck struct {
	Pos       int
	EdgeLabel graph.Label
}

// Step is the compiled program for one plan position: which query node is
// bound, what its label and degree are, which earlier binding anchors the
// candidate generation, and the remaining adjacency checks.
type Step struct {
	QueryNode graph.NodeID
	Label     graph.Label
	Degree    int32 // degree of QueryNode in the query graph
	// Anchor is the plan position whose binding generates candidates
	// (candidates are that data node's neighbors with label Label).
	// -1 for position 0, whose candidate is supplied by the caller.
	Anchor int
	// AnchorEdgeLabel is the required label of the query edge between
	// QueryNode and the anchor's query node (NoLabel when unlabeled).
	AnchorEdgeLabel graph.Label
	// Checks are the adjacency constraints against earlier bindings,
	// excluding the anchor (already satisfied by construction).
	Checks []EdgeCheck
}

// Compiled is a plan lowered to the step program executed by the PSI
// evaluators.
type Compiled struct {
	Query graph.Query
	Order Plan
	Steps []Step
}

// Compile validates p for q and lowers it into a step program. The
// anchor chosen for each step is the earliest adjacent bound position —
// bindings made earlier are the most constrained, keeping candidate sets
// small.
func Compile(q graph.Query, p Plan) (*Compiled, error) {
	if err := Validate(q, p); err != nil {
		return nil, err
	}
	pos := make([]int, q.G.NumNodes())
	for i, v := range p {
		pos[v] = i
	}
	c := &Compiled{Query: q, Order: p, Steps: make([]Step, len(p))}
	for i, v := range p {
		st := Step{
			QueryNode:       v,
			Label:           q.G.Label(v),
			Degree:          q.G.Degree(v),
			Anchor:          -1,
			AnchorEdgeLabel: graph.NoLabel,
		}
		if i > 0 {
			for j, w := range q.G.Neighbors(v) {
				pw := pos[w]
				if pw >= i {
					continue
				}
				el := q.G.EdgeLabelAt(v, j)
				if st.Anchor < 0 || pw < st.Anchor {
					if st.Anchor >= 0 {
						// Demote the previous anchor to a plain check.
						st.Checks = append(st.Checks, EdgeCheck{Pos: st.Anchor, EdgeLabel: st.AnchorEdgeLabel})
					}
					st.Anchor, st.AnchorEdgeLabel = pw, el
				} else {
					st.Checks = append(st.Checks, EdgeCheck{Pos: pw, EdgeLabel: el})
				}
			}
			if st.Anchor < 0 {
				return nil, fmt.Errorf("plan: position %d has no bound anchor", i)
			}
		}
		c.Steps[i] = st
	}
	return c, nil
}

// MustCompile is Compile for known-good plans; it panics on error.
func MustCompile(q graph.Query, p Plan) *Compiled {
	c, err := Compile(q, p)
	if err != nil {
		panic(err)
	}
	return c
}
