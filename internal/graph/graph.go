// Package graph provides the labeled-graph substrate used throughout the
// SmartPSI reproduction: an immutable CSR (compressed sparse row)
// representation of an undirected node- and optionally edge-labeled graph,
// a mutable Builder, text codecs, and the pivoted Query type.
//
// Node identifiers are dense int32 values in [0, NumNodes). Labels are
// dense integer identifiers in [0, NumLabels); a LabelTable maps them to
// and from their external string names.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node within a Graph.
type NodeID = int32

// Label identifies a node or edge label within a Graph's label alphabet.
type Label = int32

// NoLabel marks the absence of an (edge) label.
const NoLabel Label = -1

// Graph is an immutable undirected labeled graph in CSR form.
//
// Neighbor lists are sorted by (neighbor label, neighbor id), which lets
// HasEdge and NeighborsWithLabel run in O(log degree) while label-grouped
// scans touch a contiguous run. Build one with a Builder.
type Graph struct {
	offsets    []int64 // len NumNodes+1; neighbor run of u is adj[offsets[u]:offsets[u+1]]
	adj        []NodeID
	edgeLabels []Label // aligned with adj; nil when the graph has no edge labels
	labels     []Label // node labels, len NumNodes
	nodeLabels *LabelTable
	edgeTable  *LabelTable

	labelCount []int32    // number of nodes per label
	labelIndex [][]NodeID // nodes grouped by label (lazy-built by Builder)
	numEdges   int64      // undirected edge count (each edge stored twice in adj)
	maxDegree  int32
}

// NumNodes returns the number of nodes in g.
func (g *Graph) NumNodes() int { return len(g.labels) }

// NumEdges returns the number of undirected edges in g.
func (g *Graph) NumEdges() int64 { return g.numEdges }

// NumLabels returns the size of the node-label alphabet.
func (g *Graph) NumLabels() int { return len(g.labelCount) }

// HasEdgeLabels reports whether g carries edge labels.
func (g *Graph) HasEdgeLabels() bool { return g.edgeLabels != nil }

// Label returns the label of node u.
func (g *Graph) Label(u NodeID) Label { return g.labels[u] }

// Labels returns the node-label slice indexed by NodeID. The caller must
// not modify it.
func (g *Graph) Labels() []Label { return g.labels }

// Degree returns the degree of node u.
func (g *Graph) Degree(u NodeID) int32 {
	return int32(g.offsets[u+1] - g.offsets[u])
}

// MaxDegree returns the largest node degree in g.
func (g *Graph) MaxDegree() int32 { return g.maxDegree }

// Neighbors returns the neighbor list of u, sorted by (label, id). The
// caller must not modify it.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	return g.adj[g.offsets[u]:g.offsets[u+1]]
}

// EdgeLabelAt returns the label of the i-th incident edge of u (aligned
// with Neighbors(u)), or NoLabel when the graph has no edge labels.
func (g *Graph) EdgeLabelAt(u NodeID, i int) Label {
	if g.edgeLabels == nil {
		return NoLabel
	}
	return g.edgeLabels[g.offsets[u]+int64(i)]
}

// neighborSearch returns the index within u's neighbor run of the first
// neighbor >= (label, id) in the run ordering.
func (g *Graph) neighborSearch(u NodeID, label Label, id NodeID) int {
	run := g.adj[g.offsets[u]:g.offsets[u+1]]
	return sort.Search(len(run), func(i int) bool {
		w := run[i]
		lw := g.labels[w]
		if lw != label {
			return lw > label
		}
		return w >= id
	})
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	// Search from the lower-degree endpoint.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	i := g.neighborSearch(u, g.labels[v], v)
	run := g.adj[g.offsets[u]:g.offsets[u+1]]
	return i < len(run) && run[i] == v
}

// EdgeLabel returns the label of edge (u, v) and whether the edge exists.
// It returns NoLabel for existing edges of a graph without edge labels.
func (g *Graph) EdgeLabel(u, v NodeID) (Label, bool) {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	i := g.neighborSearch(u, g.labels[v], v)
	run := g.adj[g.offsets[u]:g.offsets[u+1]]
	if i >= len(run) || run[i] != v {
		return NoLabel, false
	}
	if g.edgeLabels == nil {
		return NoLabel, true
	}
	return g.edgeLabels[g.offsets[u]+int64(i)], true
}

// NeighborsWithLabel returns the contiguous run of u's neighbors whose
// label is l. The caller must not modify it.
func (g *Graph) NeighborsWithLabel(u NodeID, l Label) []NodeID {
	lo := g.neighborSearch(u, l, 0)
	hi := g.neighborSearch(u, l+1, 0)
	return g.adj[g.offsets[u]+int64(lo) : g.offsets[u]+int64(hi)]
}

// CountNeighborsWithLabel returns how many neighbors of u carry label l.
func (g *Graph) CountNeighborsWithLabel(u NodeID, l Label) int {
	return len(g.NeighborsWithLabel(u, l))
}

// NeighborRangeWithLabel returns the index range [lo, hi) within
// Neighbors(u) of the neighbors carrying label l, for callers that also
// need EdgeLabelAt for the same positions.
func (g *Graph) NeighborRangeWithLabel(u NodeID, l Label) (lo, hi int) {
	return g.neighborSearch(u, l, 0), g.neighborSearch(u, l+1, 0)
}

// NodesWithLabel returns all nodes carrying label l, in ascending id
// order. The caller must not modify the returned slice.
func (g *Graph) NodesWithLabel(l Label) []NodeID {
	if l < 0 || int(l) >= len(g.labelIndex) {
		return nil
	}
	return g.labelIndex[l]
}

// LabelFrequency returns the number of nodes carrying label l.
func (g *Graph) LabelFrequency(l Label) int32 {
	if l < 0 || int(l) >= len(g.labelCount) {
		return 0
	}
	return g.labelCount[l]
}

// NodeLabelTable returns the table mapping node-label ids to names.
// It may be nil for programmatically built graphs.
func (g *Graph) NodeLabelTable() *LabelTable { return g.nodeLabels }

// EdgeLabelTable returns the table mapping edge-label ids to names, or nil.
func (g *Graph) EdgeLabelTable() *LabelTable { return g.edgeTable }

// Validate performs internal consistency checks and returns the first
// violation found, or nil. It is intended for tests and codec round-trips.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if len(g.offsets) != n+1 {
		return fmt.Errorf("graph: offsets length %d, want %d", len(g.offsets), n+1)
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if g.offsets[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: offsets[%d] = %d, want %d", n, g.offsets[n], len(g.adj))
	}
	if g.edgeLabels != nil && len(g.edgeLabels) != len(g.adj) {
		return fmt.Errorf("graph: edgeLabels length %d, want %d", len(g.edgeLabels), len(g.adj))
	}
	// First pass: every adjacency entry must be in range (and not a
	// self-loop) before any check that indexes through another node's
	// run, or a corrupt entry would panic instead of erroring.
	var halfEdges int64
	for u := NodeID(0); int(u) < n; u++ {
		if g.offsets[u] > g.offsets[u+1] {
			return fmt.Errorf("graph: offsets not monotone at node %d", u)
		}
		if g.offsets[u+1] > int64(len(g.adj)) {
			// Monotonicity alone does not bound intermediate offsets:
			// only offsets[n] is pinned to len(adj) above, and a corrupt
			// run can overshoot and come back down.
			return fmt.Errorf("graph: offsets[%d] = %d exceeds adjacency length %d", u+1, g.offsets[u+1], len(g.adj))
		}
		run := g.Neighbors(u)
		halfEdges += int64(len(run))
		for _, w := range run {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", u, w)
			}
			if w == u {
				return fmt.Errorf("graph: node %d has a self loop", u)
			}
		}
	}
	// Second pass: sorting and symmetry.
	for u := NodeID(0); int(u) < n; u++ {
		run := g.Neighbors(u)
		for i, w := range run {
			if i > 0 {
				p := run[i-1]
				if g.labels[p] > g.labels[w] || (g.labels[p] == g.labels[w] && p >= w) {
					return fmt.Errorf("graph: neighbors of %d not sorted by (label,id) at index %d", u, i)
				}
			}
			if !g.HasEdge(w, u) {
				return fmt.Errorf("graph: edge (%d,%d) missing its reverse", u, w)
			}
		}
	}
	if halfEdges != 2*g.numEdges {
		return fmt.Errorf("graph: stored %d half-edges, want %d", halfEdges, 2*g.numEdges)
	}
	for u, l := range g.labels {
		if l < 0 || int(l) >= len(g.labelCount) {
			return fmt.Errorf("graph: node %d has out-of-range label %d", u, l)
		}
	}
	return nil
}

// LabelTable is an order-preserving bidirectional mapping between label
// names and dense Label ids.
type LabelTable struct {
	names []string
	ids   map[string]Label
}

// NewLabelTable returns an empty label table.
func NewLabelTable() *LabelTable {
	return &LabelTable{ids: make(map[string]Label)}
}

// Intern returns the id for name, assigning the next free id on first use.
func (t *LabelTable) Intern(name string) Label {
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := Label(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

// Lookup returns the id for name and whether it is present.
func (t *LabelTable) Lookup(name string) (Label, bool) {
	id, ok := t.ids[name]
	return id, ok
}

// Name returns the name of label id, or a numeric placeholder when id is
// outside the table (as happens for programmatically built graphs).
func (t *LabelTable) Name(id Label) string {
	if t == nil || id < 0 || int(id) >= len(t.names) {
		return fmt.Sprintf("L%d", id)
	}
	return t.names[id]
}

// Len returns the number of interned labels.
func (t *LabelTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.names)
}
