package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildTriangle returns the Figure-1 style triangle query graph A-B-C.
func buildTriangle(t testing.TB) *Graph {
	t.Helper()
	b := NewBuilder(3, 3)
	a := b.AddNode(0)
	bb := b.AddNode(1)
	c := b.AddNode(2)
	for _, e := range [][2]NodeID{{a, bb}, {bb, c}, {a, c}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := buildTriangle(t)
	if got := g.NumNodes(); got != 3 {
		t.Errorf("NumNodes = %d, want 3", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
	if got := g.NumLabels(); got != 3 {
		t.Errorf("NumLabels = %d, want 3", got)
	}
	if got := g.MaxDegree(); got != 2 {
		t.Errorf("MaxDegree = %d, want 2", got)
	}
	for u := NodeID(0); u < 3; u++ {
		if got := g.Degree(u); got != 2 {
			t.Errorf("Degree(%d) = %d, want 2", u, got)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(2, 2)
	u := b.AddNode(0)
	v := b.AddNode(0)
	if err := b.AddEdge(u, u); err == nil {
		t.Error("self loop accepted")
	}
	if err := b.AddEdge(u, 99); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := b.AddEdge(u, v); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(v, u); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
}

func TestHasEdgeSymmetric(t *testing.T) {
	g := buildTriangle(t)
	for u := NodeID(0); u < 3; u++ {
		for v := NodeID(0); v < 3; v++ {
			want := u != v // triangle: all distinct pairs connected
			if got := g.HasEdge(u, v); got != want {
				t.Errorf("HasEdge(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestNeighborsSortedByLabel(t *testing.T) {
	b := NewBuilder(6, 5)
	hub := b.AddNode(0)
	// Add neighbors with descending labels to force the sort to work.
	for l := Label(4); l >= 1; l-- {
		w := b.AddNode(l)
		if err := b.AddEdge(hub, w); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	nbrs := g.Neighbors(hub)
	for i := 1; i < len(nbrs); i++ {
		if g.Label(nbrs[i-1]) > g.Label(nbrs[i]) {
			t.Fatalf("neighbors not label-sorted: %v", nbrs)
		}
	}
	for l := Label(1); l <= 4; l++ {
		if got := g.CountNeighborsWithLabel(hub, l); got != 1 {
			t.Errorf("CountNeighborsWithLabel(hub,%d) = %d, want 1", l, got)
		}
	}
	if got := g.CountNeighborsWithLabel(hub, 0); got != 0 {
		t.Errorf("CountNeighborsWithLabel(hub,0) = %d, want 0", got)
	}
}

func TestNodesWithLabel(t *testing.T) {
	b := NewBuilder(5, 0)
	ids := []NodeID{
		b.AddNode(1), b.AddNode(0), b.AddNode(1), b.AddNode(2), b.AddNode(1),
	}
	_ = ids
	g := b.MustBuild()
	got := g.NodesWithLabel(1)
	want := []NodeID{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("NodesWithLabel(1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodesWithLabel(1) = %v, want %v", got, want)
		}
	}
	if g.LabelFrequency(1) != 3 || g.LabelFrequency(0) != 1 || g.LabelFrequency(7) != 0 {
		t.Errorf("LabelFrequency wrong: %d %d %d",
			g.LabelFrequency(1), g.LabelFrequency(0), g.LabelFrequency(7))
	}
	if g.NodesWithLabel(-1) != nil || g.NodesWithLabel(99) != nil {
		t.Error("NodesWithLabel out of range should be nil")
	}
}

func TestEdgeLabels(t *testing.T) {
	b := NewBuilder(3, 2)
	u := b.AddNode(0)
	v := b.AddNode(1)
	w := b.AddNode(1)
	if err := b.AddLabeledEdge(u, v, 7); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLabeledEdge(v, w, 9); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	if !g.HasEdgeLabels() {
		t.Fatal("HasEdgeLabels = false")
	}
	if l, ok := g.EdgeLabel(v, u); !ok || l != 7 {
		t.Errorf("EdgeLabel(v,u) = %d,%v want 7,true", l, ok)
	}
	if l, ok := g.EdgeLabel(w, v); !ok || l != 9 {
		t.Errorf("EdgeLabel(w,v) = %d,%v want 9,true", l, ok)
	}
	if _, ok := g.EdgeLabel(u, w); ok {
		t.Error("EdgeLabel(u,w) should not exist")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnlabeledEdgeGraph(t *testing.T) {
	g := buildTriangle(t)
	if g.HasEdgeLabels() {
		t.Fatal("unlabeled graph reports edge labels")
	}
	if l, ok := g.EdgeLabel(0, 1); !ok || l != NoLabel {
		t.Errorf("EdgeLabel = %d,%v want NoLabel,true", l, ok)
	}
	if g.EdgeLabelAt(0, 0) != NoLabel {
		t.Error("EdgeLabelAt should be NoLabel")
	}
}

func TestLabelTable(t *testing.T) {
	tab := NewLabelTable()
	a := tab.Intern("protein")
	b := tab.Intern("gene")
	if a2 := tab.Intern("protein"); a2 != a {
		t.Errorf("re-intern = %d, want %d", a2, a)
	}
	if a == b {
		t.Error("distinct names got same id")
	}
	if got, ok := tab.Lookup("gene"); !ok || got != b {
		t.Errorf("Lookup(gene) = %d,%v", got, ok)
	}
	if _, ok := tab.Lookup("missing"); ok {
		t.Error("Lookup(missing) = ok")
	}
	if tab.Name(a) != "protein" {
		t.Errorf("Name(a) = %q", tab.Name(a))
	}
	if tab.Name(99) != "L99" {
		t.Errorf("Name(99) = %q, want L99", tab.Name(99))
	}
	var nilTab *LabelTable
	if nilTab.Name(0) != "L0" || nilTab.Len() != 0 {
		t.Error("nil table accessors broken")
	}
	if tab.Len() != 2 {
		t.Errorf("Len = %d, want 2", tab.Len())
	}
}

// TestRandomGraphInvariants is a property test: any graph built from a
// random edge set passes Validate and has consistent degree/edge sums.
func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		labels := 1 + rng.Intn(6)
		b := NewBuilder(n, n*2)
		for i := 0; i < n; i++ {
			b.AddNode(Label(rng.Intn(labels)))
		}
		for tries := 0; tries < n*3; tries++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v || b.HasEdge(u, v) {
				continue
			}
			if err := b.AddEdge(u, v); err != nil {
				return false
			}
		}
		g := b.MustBuild()
		if err := g.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		var degSum int64
		for u := 0; u < n; u++ {
			degSum += int64(g.Degree(NodeID(u)))
		}
		if degSum != 2*g.NumEdges() {
			return false
		}
		// Label index partitions the nodes.
		total := 0
		for l := 0; l < g.NumLabels(); l++ {
			total += len(g.NodesWithLabel(Label(l)))
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIsConnected(t *testing.T) {
	g := buildTriangle(t)
	if !IsConnected(g) {
		t.Error("triangle should be connected")
	}
	b := NewBuilder(4, 1)
	u := b.AddNode(0)
	v := b.AddNode(0)
	b.AddNode(1)
	b.AddNode(1)
	if err := b.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
	if IsConnected(b.MustBuild()) {
		t.Error("two-component graph reported connected")
	}
	if !IsConnected(NewBuilder(0, 0).MustBuild()) {
		t.Error("empty graph should be connected")
	}
}

func TestConnectedComponent(t *testing.T) {
	b := NewBuilder(5, 2)
	u := b.AddNode(0)
	v := b.AddNode(0)
	w := b.AddNode(0)
	x := b.AddNode(1)
	y := b.AddNode(1)
	for _, e := range [][2]NodeID{{u, v}, {v, w}, {x, y}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	comp := ConnectedComponent(g, u)
	if len(comp) != 3 {
		t.Errorf("component of u has %d nodes, want 3", len(comp))
	}
	comp = ConnectedComponent(g, x)
	if len(comp) != 2 {
		t.Errorf("component of x has %d nodes, want 2", len(comp))
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildTriangle(t)
	sub, orig, err := InducedSubgraph(g, []NodeID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 2 || sub.NumEdges() != 1 {
		t.Errorf("induced: %d nodes %d edges, want 2,1", sub.NumNodes(), sub.NumEdges())
	}
	if sub.Label(0) != g.Label(orig[0]) || sub.Label(1) != g.Label(orig[1]) {
		t.Error("induced labels do not match originals")
	}
	if _, _, err := InducedSubgraph(g, []NodeID{0, 0}); err == nil {
		t.Error("duplicate induced node accepted")
	}
	if _, _, err := InducedSubgraph(g, []NodeID{99}); err == nil {
		t.Error("out-of-range induced node accepted")
	}
}

func TestBFSDistances(t *testing.T) {
	// Path 0-1-2-3 plus isolated 4.
	b := NewBuilder(5, 3)
	for i := 0; i < 5; i++ {
		b.AddNode(0)
	}
	for i := NodeID(0); i < 3; i++ {
		if err := b.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	d := BFSDistances(g, 0, 10, nil)
	want := []int32{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	d = BFSDistances(g, 0, 1, d) // capped + scratch reuse
	want = []int32{0, 1, -1, -1, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("capped dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestQueryValidate(t *testing.T) {
	g := buildTriangle(t)
	q, err := NewQuery(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if q.Size() != 3 {
		t.Errorf("Size = %d, want 3", q.Size())
	}
	if _, err := NewQuery(g, 5); err == nil {
		t.Error("out-of-range pivot accepted")
	}
	if _, err := NewQuery(g, -1); err == nil {
		t.Error("negative pivot accepted")
	}
}

func TestComputeStats(t *testing.T) {
	g := buildTriangle(t)
	s := ComputeStats(g, true)
	if s.Nodes != 3 || s.Edges != 3 || s.Labels != 3 {
		t.Errorf("stats basics wrong: %+v", s)
	}
	if s.AvgDegree != 2.0 {
		t.Errorf("AvgDegree = %v, want 2", s.AvgDegree)
	}
	if s.Triangles != 1 {
		t.Errorf("Triangles = %d, want 1", s.Triangles)
	}
	if s.DegreeP50 != 2 || s.DegreeP99 != 2 {
		t.Errorf("percentiles wrong: %+v", s)
	}
	if s.String() == "" {
		t.Error("String empty")
	}
	empty := ComputeStats(NewBuilder(0, 0).MustBuild(), false)
	if empty.Nodes != 0 || empty.AvgDegree != 0 {
		t.Errorf("empty stats wrong: %+v", empty)
	}
}

func TestNeighborsWithLabelMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		labels := 1 + rng.Intn(5)
		b := NewBuilder(n, n*2)
		for i := 0; i < n; i++ {
			b.AddNode(Label(rng.Intn(labels)))
		}
		for tries := 0; tries < n*4; tries++ {
			u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
			if u != v && !b.HasEdge(u, v) {
				if err := b.AddEdge(u, v); err != nil {
					return false
				}
			}
		}
		g := b.MustBuild()
		u := NodeID(rng.Intn(n))
		l := Label(rng.Intn(labels))
		got := g.NeighborsWithLabel(u, l)
		var want []NodeID
		for _, w := range g.Neighbors(u) {
			if g.Label(w) == l {
				want = append(want, w)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
