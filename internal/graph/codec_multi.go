package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Multi-graph LG files hold a sequence of graphs, each introduced by a
// "t # <index>" record and optionally carrying a "p <id>" pivot record —
// the format query workloads are stored in.

// ParseQuerySetLG reads a sequence of pivoted queries from r. Queries
// without a "p" record default to pivot 0.
func ParseQuerySetLG(r io.Reader) ([]Query, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []Query
	var body strings.Builder
	pivot := NodeID(0)
	started := false
	lineNo := 0

	flush := func() error {
		if !started {
			return nil
		}
		g, err := ParseLG(strings.NewReader(body.String()))
		if err != nil {
			return fmt.Errorf("query %d: %w", len(out), err)
		}
		q, err := NewQuery(g, pivot)
		if err != nil {
			return fmt.Errorf("query %d: %w", len(out), err)
		}
		out = append(out, q)
		body.Reset()
		pivot = 0
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line[0] == '#':
			continue
		case line[0] == 't':
			if err := flush(); err != nil {
				return nil, err
			}
			started = true
		case strings.HasPrefix(line, "p "):
			id, err := strconv.Atoi(strings.Fields(line)[1])
			if err != nil {
				return nil, fmt.Errorf("lg:%d: bad pivot: %v", lineNo, err)
			}
			pivot = NodeID(id)
		default:
			if !started {
				return nil, fmt.Errorf("lg:%d: record before first 't' header", lineNo)
			}
			body.WriteString(line)
			body.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteQuerySetLG writes queries to w in multi-graph LG format, one
// "t # <i>" section per query with its pivot record.
func WriteQuerySetLG(w io.Writer, queries []Query) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for i, q := range queries {
		if _, err := fmt.Fprintf(bw, "t # %d\n", i); err != nil {
			return err
		}
		g := q.G
		for u := NodeID(0); int(u) < g.NumNodes(); u++ {
			if _, err := fmt.Fprintf(bw, "v %d %s\n", u, g.nodeLabels.Name(g.Label(u))); err != nil {
				return err
			}
		}
		for u := NodeID(0); int(u) < g.NumNodes(); u++ {
			for j, v := range g.Neighbors(u) {
				if u >= v {
					continue
				}
				if l := g.EdgeLabelAt(u, j); l != NoLabel {
					if _, err := fmt.Fprintf(bw, "e %d %d %s\n", u, v, g.edgeTable.Name(l)); err != nil {
						return err
					}
				} else if _, err := fmt.Fprintf(bw, "e %d %d\n", u, v); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintf(bw, "p %d\n", q.Pivot); err != nil {
			return err
		}
	}
	return bw.Flush()
}
