package graph_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// encode serializes g with the given codec writer, panicking on error
// (the seed graphs are valid by construction).
func encode(write func(io.Writer, *graph.Graph) error, g *graph.Graph) []byte {
	var buf bytes.Buffer
	if err := write(&buf, g); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// fuzzSeedGraphs returns small valid graphs covering the codec feature
// space: node labels, edge labels, isolated nodes, multiple components.
func fuzzSeedGraphs(edgeLabels bool) []*graph.Graph {
	var out []*graph.Graph

	// Labeled triangle plus an isolated node.
	b := graph.NewBuilder(4, 3)
	n0, n1, n2 := b.AddNode(0), b.AddNode(1), b.AddNode(0)
	b.AddNode(2)
	for _, e := range [][2]graph.NodeID{{n0, n1}, {n1, n2}, {n0, n2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	out = append(out, b.MustBuild())

	// Two-component path with edge labels (when the codec supports them).
	b = graph.NewBuilder(5, 3)
	p0, p1, p2 := b.AddNode(1), b.AddNode(1), b.AddNode(0)
	q0, q1 := b.AddNode(2), b.AddNode(2)
	addEdge := func(u, v graph.NodeID, l graph.Label) {
		var err error
		if edgeLabels {
			err = b.AddLabeledEdge(u, v, l)
		} else {
			err = b.AddEdge(u, v)
		}
		if err != nil {
			panic(err)
		}
	}
	addEdge(p0, p1, 0)
	addEdge(p1, p2, 1)
	addEdge(q0, q1, 0)
	out = append(out, b.MustBuild())

	// Single node, no edges.
	b = graph.NewBuilder(1, 0)
	b.AddNode(0)
	out = append(out, b.MustBuild())

	return out
}

// unlabel rebuilds g with every node label forced to 0 so it fits the
// unlabeled edge-list format.
func unlabel(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumNodes(), int(g.NumEdges()))
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		b.AddNode(0)
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if err := b.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return b.MustBuild()
}

// roundTrip asserts parse(write(g)) == g for one codec and one already-
// parsed graph.
func roundTrip(t *testing.T, g *graph.Graph,
	write func(io.Writer, *graph.Graph) error,
	parse func(io.Reader) (*graph.Graph, error)) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("parsed graph fails validation: %v", err)
	}
	var buf bytes.Buffer
	if err := write(&buf, g); err != nil {
		t.Fatalf("writing parsed graph: %v", err)
	}
	g2, err := parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparsing serialized graph: %v", err)
	}
	if !graph.Equal(g, g2) {
		t.Fatalf("round trip changed the graph: %d nodes/%d edges -> %d nodes/%d edges",
			g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
	}
	// Serialization must be deterministic.
	var buf2 bytes.Buffer
	if err := write(&buf2, g2); err != nil {
		t.Fatalf("re-writing graph: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("serialization is not deterministic (%d vs %d bytes)", buf.Len(), buf2.Len())
	}
}

// FuzzEdgeListRoundTrip feeds arbitrary bytes to the edge-list parser;
// whatever parses must survive write+reparse unchanged.
func FuzzEdgeListRoundTrip(f *testing.F) {
	f.Add([]byte("# nodes 5\n0\t1\n1\t2\n"))
	f.Add([]byte("0 1\n0 2\n1 2\n3 4\n"))
	f.Add([]byte("# nodes 0\n"))
	for _, g := range fuzzSeedGraphs(false) {
		f.Add(encode(graph.WriteEdgeList, unlabel(g)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		invariant.Enable(true)
		g, err := graph.ParseEdgeList(bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		roundTrip(t, g, graph.WriteEdgeList, graph.ParseEdgeList)
	})
}

// FuzzLGRoundTrip checks the labeled LG text codec. Labels are interned
// strings, and reparsing can renumber them (edges serialize in sorted
// order, not intern order), so the property is a serialization fixpoint:
// write(parse(write(g))) must reproduce write(g) byte for byte, with
// node/edge structure preserved.
func FuzzLGRoundTrip(f *testing.F) {
	f.Add([]byte("t # 0\nv 0 a\nv 1 b\ne 0 1 x\n"))
	f.Add([]byte("v 0 a\nv 1 a\nv 2 b\ne 2 1 x\ne 0 1\n"))
	for _, g := range fuzzSeedGraphs(true) {
		f.Add(encode(graph.WriteLG, g))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		invariant.Enable(true)
		g, err := graph.ParseLG(bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph fails validation: %v", err)
		}
		var first bytes.Buffer
		if err := graph.WriteLG(&first, g); err != nil {
			t.Fatalf("writing parsed graph: %v", err)
		}
		g2, err := graph.ParseLG(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("reparsing serialized graph: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() ||
			g2.HasEdgeLabels() != g.HasEdgeLabels() {
			t.Fatalf("round trip changed structure: %d nodes/%d edges -> %d nodes/%d edges",
				g.NumNodes(), g.NumEdges(), g2.NumNodes(), g2.NumEdges())
		}
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			if g.Degree(u) != g2.Degree(u) {
				t.Fatalf("round trip changed degree of node %d: %d -> %d", u, g.Degree(u), g2.Degree(u))
			}
		}
		var second bytes.Buffer
		if err := graph.WriteLG(&second, g2); err != nil {
			t.Fatalf("re-writing graph: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("LG serialization is not a fixpoint (%d vs %d bytes)", first.Len(), second.Len())
		}
	})
}

// FuzzBinaryRoundTrip is the same property for the binary CSR codec,
// which additionally must reject corrupt input rather than build an
// inconsistent graph (roundTrip re-validates).
func FuzzBinaryRoundTrip(f *testing.F) {
	for _, g := range fuzzSeedGraphs(true) {
		f.Add(encode(graph.WriteBinary, g))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		invariant.Enable(true)
		g, err := graph.ReadBinary(bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		roundTrip(t, g, graph.WriteBinary, graph.ReadBinary)
	})
}
