package graph

import "fmt"

// KHopClosure returns the union of the k-hop neighborhoods of seeds, in
// ascending node-id order. k = 0 returns the (deduplicated, sorted) seeds
// themselves. Shard slice extraction uses it to compute the halo: the
// nodes that must be replicated onto a shard so that signatures and
// degrees near the ownership cut match the full graph.
func KHopClosure(g *Graph, seeds []NodeID, k int) ([]NodeID, error) {
	n := g.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	var frontier []NodeID
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("graph: closure seed %d out of range [0,%d)", s, n)
		}
		if dist[s] < 0 {
			dist[s] = 0
			frontier = append(frontier, s)
		}
	}
	for d := 1; d <= k && len(frontier) > 0; d++ {
		var next []NodeID
		for _, u := range frontier {
			for _, w := range g.Neighbors(u) {
				if dist[w] < 0 {
					dist[w] = int32(d)
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	out := make([]NodeID, 0, len(seeds))
	for u := 0; u < n; u++ {
		if dist[u] >= 0 {
			out = append(out, NodeID(u))
		}
	}
	return out, nil
}

// InducedSubgraphPreserving is InducedSubgraph with the label-alphabet
// width of g preserved: the returned subgraph reports g.NumLabels() even
// when the node set misses the highest labels. Shard slices need this so
// per-slice NS signatures keep the same component layout as full-graph
// signatures and label-validation against the slice behaves like
// validation against the full graph.
func InducedSubgraphPreserving(g *Graph, nodes []NodeID) (*Graph, []NodeID, error) {
	remap := make(map[NodeID]NodeID, len(nodes))
	for i, u := range nodes {
		if u < 0 || int(u) >= g.NumNodes() {
			return nil, nil, fmt.Errorf("graph: induced node %d out of range", u)
		}
		if _, dup := remap[u]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate node %d in induced set", u)
		}
		remap[u] = NodeID(i)
	}
	b := NewBuilder(len(nodes), len(nodes)*2)
	b.SetLabelTables(g.nodeLabels, g.edgeTable)
	b.ReserveLabels(g.NumLabels())
	for _, u := range nodes {
		b.AddNode(g.Label(u))
	}
	for _, u := range nodes {
		nu := remap[u]
		for i, w := range g.Neighbors(u) {
			nw, ok := remap[w]
			if !ok || nu >= nw {
				continue // keep one direction; skip nodes outside the set
			}
			l := g.EdgeLabelAt(u, i)
			if err := b.AddLabeledEdge(nu, nw, l); err != nil {
				return nil, nil, err
			}
		}
	}
	orig := make([]NodeID, len(nodes))
	copy(orig, nodes)
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, orig, nil
}

// Eccentricity returns the greatest hop distance from start to any node
// reachable from it. The coordinator uses the pivot's eccentricity inside
// the query graph to decide whether a query fits the configured shard
// halo depth.
func Eccentricity(g *Graph, start NodeID) int {
	dist := BFSDistances(g, start, g.NumNodes(), nil)
	ecc := int32(0)
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return int(ecc)
}
