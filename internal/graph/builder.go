package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates nodes and edges and produces an immutable Graph.
// Duplicate edges and self-loops are rejected at AddEdge time; the zero
// Builder is ready to use. Node-level mistakes (negative labels) are
// deferred and surface as an error from Build, so no Builder method
// panics.
type Builder struct {
	labels     []Label
	src, dst   []NodeID
	edgeLabels []Label
	hasELabels bool
	nodeTable  *LabelTable
	edgeTable  *LabelTable
	seen       map[edgeKey]struct{}
	minLabels  int   // minimum label-alphabet width for the built graph
	err        error // first deferred construction error
}

type edgeKey struct{ a, b NodeID }

func normKey(u, v NodeID) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// NewBuilder returns a Builder expecting roughly the given node and edge
// counts (hints only; the builder grows as needed).
func NewBuilder(nodeHint, edgeHint int) *Builder {
	return &Builder{
		labels: make([]Label, 0, nodeHint),
		src:    make([]NodeID, 0, edgeHint),
		dst:    make([]NodeID, 0, edgeHint),
		seen:   make(map[edgeKey]struct{}, edgeHint),
	}
}

// SetLabelTables attaches name tables carried through to the built Graph.
func (b *Builder) SetLabelTables(node, edge *LabelTable) {
	b.nodeTable, b.edgeTable = node, edge
}

// ReserveLabels guarantees the built graph reports at least k labels even
// when no node carries the highest ones. Subgraph slices use it to keep
// the parent graph's label-alphabet width, so NS signatures computed on a
// slice stay component-aligned with full-graph signatures.
func (b *Builder) ReserveLabels(k int) {
	if k > b.minLabels {
		b.minLabels = k
	}
}

// AddNode appends a node with the given label and returns its id.
// A negative label is recorded as a deferred error reported by Build.
func (b *Builder) AddNode(label Label) NodeID {
	if label < 0 && b.err == nil {
		b.err = fmt.Errorf("graph: negative node label %d", label)
	}
	b.labels = append(b.labels, label)
	return NodeID(len(b.labels) - 1)
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.labels) }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.src) }

// HasEdge reports whether the undirected edge (u, v) was already added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	_, ok := b.seen[normKey(u, v)]
	return ok
}

// AddEdge adds the undirected unlabeled edge (u, v). It returns an error
// for self-loops, unknown endpoints, or duplicate edges.
func (b *Builder) AddEdge(u, v NodeID) error {
	return b.AddLabeledEdge(u, v, NoLabel)
}

// AddLabeledEdge adds the undirected edge (u, v) carrying label l
// (NoLabel for none). Mixing labeled and unlabeled edges is allowed; the
// built graph has edge labels if any edge carried one.
func (b *Builder) AddLabeledEdge(u, v NodeID, l Label) error {
	n := NodeID(len(b.labels))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge (%d,%d) references unknown node (have %d nodes)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self loop on node %d", u)
	}
	k := normKey(u, v)
	if _, dup := b.seen[k]; dup {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	b.seen[k] = struct{}{}
	b.src = append(b.src, u)
	b.dst = append(b.dst, v)
	b.edgeLabels = append(b.edgeLabels, l)
	if l != NoLabel {
		b.hasELabels = true
	}
	return nil
}

// Err returns the first deferred construction error (nil when the
// builder state is sound).
func (b *Builder) Err() error { return b.err }

// MustBuild is Build for programmatically constructed graphs known to be
// valid; it panics on error. Tests and fixtures use it.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Build finalizes the builder into an immutable Graph. The builder may be
// reused afterwards only by starting over (its state is consumed). It
// returns any deferred construction error, and — when invariant checking
// is enabled (see internal/invariant) — the first deep-validation
// failure of the built graph.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.labels)
	g := &Graph{
		labels:     b.labels,
		nodeLabels: b.nodeTable,
		edgeTable:  b.edgeTable,
		numEdges:   int64(len(b.src)),
	}

	// Degree counting pass.
	deg := make([]int64, n+1)
	for i := range b.src {
		deg[b.src[i]+1]++
		deg[b.dst[i]+1]++
	}
	g.offsets = make([]int64, n+1)
	for i := 0; i < n; i++ {
		g.offsets[i+1] = g.offsets[i] + deg[i+1]
		if d := int32(deg[i+1]); d > g.maxDegree {
			g.maxDegree = d
		}
	}

	g.adj = make([]NodeID, g.offsets[n])
	if b.hasELabels {
		g.edgeLabels = make([]Label, g.offsets[n])
	}
	cursor := make([]int64, n)
	copy(cursor, g.offsets[:n])
	place := func(u, v NodeID, l Label) {
		p := cursor[u]
		g.adj[p] = v
		if g.edgeLabels != nil {
			g.edgeLabels[p] = l
		}
		cursor[u] = p + 1
	}
	for i := range b.src {
		place(b.src[i], b.dst[i], b.edgeLabels[i])
		place(b.dst[i], b.src[i], b.edgeLabels[i])
	}

	// Sort each neighbor run by (label, id), keeping edge labels aligned.
	for u := 0; u < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		run := g.adj[lo:hi]
		if g.edgeLabels == nil {
			sort.Slice(run, func(i, j int) bool {
				li, lj := g.labels[run[i]], g.labels[run[j]]
				if li != lj {
					return li < lj
				}
				return run[i] < run[j]
			})
		} else {
			el := g.edgeLabels[lo:hi]
			sort.Sort(&pairedRun{ids: run, el: el, labels: g.labels})
		}
	}

	// Label statistics and per-label node index.
	maxLabel := Label(b.minLabels) - 1
	for _, l := range b.labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	g.labelCount = make([]int32, maxLabel+1)
	for _, l := range b.labels {
		g.labelCount[l]++
	}
	g.labelIndex = make([][]NodeID, maxLabel+1)
	for l := range g.labelIndex {
		if c := g.labelCount[l]; c > 0 {
			g.labelIndex[l] = make([]NodeID, 0, c)
		}
	}
	for u, l := range b.labels {
		g.labelIndex[l] = append(g.labelIndex[l], NodeID(u))
	}

	b.src, b.dst, b.edgeLabels, b.seen = nil, nil, nil, nil
	if err := runBuildChecks(g); err != nil {
		return nil, err
	}
	return g, nil
}

// pairedRun sorts a neighbor run and its aligned edge labels together.
type pairedRun struct {
	ids    []NodeID
	el     []Label
	labels []Label
}

func (p *pairedRun) Len() int { return len(p.ids) }
func (p *pairedRun) Less(i, j int) bool {
	li, lj := p.labels[p.ids[i]], p.labels[p.ids[j]]
	if li != lj {
		return li < lj
	}
	return p.ids[i] < p.ids[j]
}
func (p *pairedRun) Swap(i, j int) {
	p.ids[i], p.ids[j] = p.ids[j], p.ids[i]
	p.el[i], p.el[j] = p.el[j], p.el[i]
}
