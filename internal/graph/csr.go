package graph

// FromCSR assembles a Graph directly from raw CSR arrays without
// validating them, rebuilding only the derived state (per-label counts
// and index, max degree). labels holds one node label per node; offsets
// has len(labels)+1 entries; adj holds 2x the undirected edge count
// (each edge stored in both endpoint runs, runs sorted by
// (neighbor label, neighbor id)); edgeLabels is either nil or aligned
// with adj; numLabels is the node-label alphabet size (at least
// 1 + max(labels)).
//
// The caller is trusted: nothing is checked beyond what the derived-
// state rebuild touches. Callers ingesting untrusted data must call
// (*Graph).Validate (as ReadBinary does) or enable package invariant's
// deep checking. The input slices are retained, not copied.
func FromCSR(labels []Label, offsets []int64, adj []NodeID, edgeLabels []Label, numLabels int) *Graph {
	g := &Graph{
		labels:     labels,
		offsets:    offsets,
		adj:        adj,
		edgeLabels: edgeLabels,
		numEdges:   int64(len(adj) / 2),
	}
	g.labelCount = make([]int32, numLabels)
	for _, l := range labels {
		if l >= 0 && int(l) < numLabels {
			g.labelCount[l]++
		}
	}
	g.labelIndex = make([][]NodeID, numLabels)
	for l := range g.labelIndex {
		if c := g.labelCount[l]; c > 0 {
			g.labelIndex[l] = make([]NodeID, 0, c)
		}
	}
	for u, l := range labels {
		if l >= 0 && int(l) < numLabels {
			g.labelIndex[l] = append(g.labelIndex[l], NodeID(u))
		}
	}
	for u := 0; u+1 < len(offsets); u++ {
		if d := int32(offsets[u+1] - offsets[u]); d > g.maxDegree {
			g.maxDegree = d
		}
	}
	return g
}

// Equal reports whether a and b are structurally identical: same node
// count, same node labels, same sorted adjacency, and same edge labels.
// Label-name tables are not compared (binary round-trips drop them).
func Equal(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	if a.HasEdgeLabels() != b.HasEdgeLabels() {
		return false
	}
	for u := NodeID(0); int(u) < a.NumNodes(); u++ {
		if a.Label(u) != b.Label(u) {
			return false
		}
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
			if a.EdgeLabelAt(u, i) != b.EdgeLabelAt(u, i) {
				return false
			}
		}
	}
	return true
}
