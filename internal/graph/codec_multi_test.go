package graph

import (
	"bytes"
	"strings"
	"testing"
)

const multiLG = `t # 0
v 0 A
v 1 B
e 0 1
p 1
t # 1
v 0 C
v 1 C
v 2 C
e 0 1
e 1 2
`

func TestParseQuerySetLG(t *testing.T) {
	qs, err := ParseQuerySetLG(strings.NewReader(multiLG))
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("parsed %d queries, want 2", len(qs))
	}
	if qs[0].Pivot != 1 || qs[0].Size() != 2 {
		t.Errorf("query 0: pivot=%d size=%d", qs[0].Pivot, qs[0].Size())
	}
	if qs[1].Pivot != 0 || qs[1].Size() != 3 {
		t.Errorf("query 1: pivot=%d size=%d (default pivot expected)", qs[1].Pivot, qs[1].Size())
	}
}

func TestParseQuerySetErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"record before header", "v 0 A\n"},
		{"bad pivot", "t # 0\nv 0 A\np x\n"},
		{"pivot out of range", "t # 0\nv 0 A\np 5\n"},
		{"bad body", "t # 0\nv 0\n"},
	}
	for _, c := range cases {
		if _, err := ParseQuerySetLG(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Empty input: zero queries, no error.
	qs, err := ParseQuerySetLG(strings.NewReader(""))
	if err != nil || len(qs) != 0 {
		t.Errorf("empty input: %d queries, err %v", len(qs), err)
	}
}

func TestQuerySetRoundTrip(t *testing.T) {
	qs, err := ParseQuerySetLG(strings.NewReader(multiLG))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteQuerySetLG(&buf, qs); err != nil {
		t.Fatal(err)
	}
	qs2, err := ParseQuerySetLG(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(qs2) != len(qs) {
		t.Fatalf("round trip: %d queries, want %d", len(qs2), len(qs))
	}
	for i := range qs {
		if qs2[i].Pivot != qs[i].Pivot || qs2[i].Size() != qs[i].Size() ||
			qs2[i].G.NumEdges() != qs[i].G.NumEdges() {
			t.Errorf("query %d changed in round trip", i)
		}
	}
}
