package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The edge-list format is the SNAP-style plain interchange format for
// unlabeled graphs: one "src dst" pair per line (whitespace separated),
// '#' comments, node ids dense in [0, n). Isolated trailing nodes (ids
// beyond the largest endpoint) can be declared with an optional
// "# nodes <n>" directive. All nodes carry label 0; self-loops and
// duplicate edges are rejected.

// ParseEdgeList reads an unlabeled graph in edge-list format from r.
func ParseEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	b := NewBuilder(1024, 4096)
	declared := -1
	lineNo := 0
	ensure := func(n int) {
		for b.NumNodes() < n {
			b.AddNode(0)
		}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' {
			fields := strings.Fields(line[1:])
			if len(fields) == 2 && fields[0] == "nodes" {
				n, err := strconv.Atoi(fields[1])
				if err != nil || n < 0 {
					return nil, fmt.Errorf("edgelist:%d: bad node count %q", lineNo, fields[1])
				}
				declared = n
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("edgelist:%d: want 'src dst', got %q", lineNo, line)
		}
		src, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("edgelist:%d: bad source: %v", lineNo, err)
		}
		dst, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("edgelist:%d: bad target: %v", lineNo, err)
		}
		if src < 0 || dst < 0 {
			return nil, fmt.Errorf("edgelist:%d: negative node id in %q", lineNo, line)
		}
		const maxNodeID = 1 << 31
		if src >= maxNodeID || dst >= maxNodeID {
			return nil, fmt.Errorf("edgelist:%d: node id overflows int32 in %q", lineNo, line)
		}
		hi := src
		if dst > hi {
			hi = dst
		}
		ensure(hi + 1)
		if err := b.AddEdge(NodeID(src), NodeID(dst)); err != nil {
			return nil, fmt.Errorf("edgelist:%d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if declared >= 0 {
		if declared < b.NumNodes() {
			return nil, fmt.Errorf("edgelist: declared %d nodes but edges reference %d", declared, b.NumNodes())
		}
		ensure(declared)
	}
	return b.Build()
}

// WriteEdgeList writes g to w in edge-list format. The encoding is
// lossy for labels: it errors when g carries more than one node label
// or any edge labels (use the LG or binary codecs for those).
func WriteEdgeList(w io.Writer, g *Graph) error {
	if g.HasEdgeLabels() {
		return fmt.Errorf("edgelist: graph has edge labels; format cannot express them")
	}
	if g.NumLabels() > 1 {
		return fmt.Errorf("edgelist: graph has %d node labels; format is unlabeled", g.NumLabels())
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "# nodes %d\n", g.NumNodes()); err != nil {
		return err
	}
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u >= v {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadEdgeList reads a graph in edge-list format from the named file.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseEdgeList(bufio.NewReaderSize(f, 1<<20))
}

// SaveEdgeList writes g in edge-list format to the named file.
func SaveEdgeList(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}
