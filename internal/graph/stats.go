package graph

import (
	"fmt"
	"sort"
)

// Stats summarizes a graph's structural characteristics, mirroring the
// columns of Table 3 in the paper plus degree-distribution detail.
type Stats struct {
	Nodes     int
	Edges     int64
	Labels    int
	MaxDegree int32
	AvgDegree float64
	Triangles int64 // counted only when ComputeStats is asked to
	DegreeP50 int32
	DegreeP90 int32
	DegreeP99 int32
}

// ComputeStats returns structural statistics for g. Triangle counting is
// O(sum of d^2) and skipped unless countTriangles is set.
func ComputeStats(g *Graph, countTriangles bool) Stats {
	n := g.NumNodes()
	s := Stats{
		Nodes:     n,
		Edges:     g.NumEdges(),
		Labels:    g.NumLabels(),
		MaxDegree: g.MaxDegree(),
	}
	if n == 0 {
		return s
	}
	s.AvgDegree = 2 * float64(g.NumEdges()) / float64(n)
	degs := make([]int32, n)
	for u := 0; u < n; u++ {
		degs[u] = g.Degree(NodeID(u))
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i] < degs[j] })
	pct := func(p float64) int32 {
		i := int(p * float64(n-1))
		return degs[i]
	}
	s.DegreeP50, s.DegreeP90, s.DegreeP99 = pct(0.50), pct(0.90), pct(0.99)
	if countTriangles {
		s.Triangles = countTrianglesOf(g)
	}
	return s
}

func countTrianglesOf(g *Graph) int64 {
	var total int64
	n := g.NumNodes()
	for u := NodeID(0); int(u) < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if w > v && g.HasEdge(u, w) {
					total++
				}
			}
		}
	}
	return total
}

// String renders the stats as a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d labels=%d avgDeg=%.2f maxDeg=%d p50=%d p90=%d p99=%d",
		s.Nodes, s.Edges, s.Labels, s.AvgDegree, s.MaxDegree, s.DegreeP50, s.DegreeP90, s.DegreeP99)
}
