package graph

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// binErrFixture serializes a small edge-labeled graph; with edge labels
// present, every section of the binary layout is exercised.
func binErrFixture(t *testing.T) []byte {
	t.Helper()
	b := NewBuilder(4, 4)
	n0, n1, n2, n3 := b.AddNode(0), b.AddNode(1), b.AddNode(2), b.AddNode(0)
	for _, e := range []struct {
		u, v NodeID
		l    Label
	}{{n0, n1, 0}, {n1, n2, 1}, {n2, n3, 0}, {n0, n3, 2}} {
		if err := b.AddLabeledEdge(e.u, e.v, e.l); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBinaryRejectsEveryTruncation checks that a file cut at any byte
// boundary fails to parse: the section lengths all derive from the
// header, so a short read anywhere must surface as an error, never as a
// silently smaller graph.
func TestBinaryRejectsEveryTruncation(t *testing.T) {
	data := binErrFixture(t)
	if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at byte %d of %d accepted", cut, len(data))
		}
	}
}

func TestBinaryRejectsBadNodeLabel(t *testing.T) {
	data := binErrFixture(t)
	// Node labels start right after the 44-byte header (magic + 5 uint64).
	const labelOff = 44
	binary.LittleEndian.PutUint32(data[labelOff:], 1<<30)
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("out-of-range node label accepted")
	}
}

func TestBinaryRejectsNonCanonicalAlphabet(t *testing.T) {
	data := binErrFixture(t)
	// The labels header field is the fourth uint64 after the magic.
	const labelsField = 4 + 3*8
	labels := binary.LittleEndian.Uint64(data[labelsField:])
	binary.LittleEndian.PutUint64(data[labelsField:], labels+1)
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("padded label alphabet accepted")
	}
}

func TestBinaryRejectsImplausibleHeader(t *testing.T) {
	data := binErrFixture(t)
	const nodesField = 4 + 8
	binary.LittleEndian.PutUint64(data[nodesField:], 1<<40)
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Fatal("implausible node count accepted")
	}
}

func TestEqual(t *testing.T) {
	build := func(mutate int) *Graph {
		b := NewBuilder(3, 2)
		l := Label(1)
		if mutate == 1 {
			l = 2 // different node label
		}
		n0, n1, n2 := b.AddNode(0), b.AddNode(l), b.AddNode(0)
		el := Label(5)
		if mutate == 2 {
			el = 6 // different edge label
		}
		if err := b.AddLabeledEdge(n0, n1, el); err != nil {
			t.Fatal(err)
		}
		second := [2]NodeID{n1, n2}
		if mutate == 3 {
			second = [2]NodeID{n0, n2} // different topology
		}
		if err := b.AddEdge(second[0], second[1]); err != nil {
			t.Fatal(err)
		}
		if mutate == 4 {
			b.AddNode(0) // extra node
		}
		return b.MustBuild()
	}
	base := build(0)
	if !Equal(base, build(0)) {
		t.Error("identical graphs not Equal")
	}
	for mutate := 1; mutate <= 4; mutate++ {
		if Equal(base, build(mutate)) {
			t.Errorf("mutation %d considered Equal", mutate)
		}
	}
}

func TestFromCSRDerivedState(t *testing.T) {
	labels := []Label{0, 1, 0}
	offsets := []int64{0, 2, 4, 6}
	adj := []NodeID{2, 1, 0, 2, 0, 1}
	g := FromCSR(labels, offsets, adj, nil, 2)
	if g.NumNodes() != 3 || g.NumEdges() != 3 || g.NumLabels() != 2 {
		t.Fatalf("counts wrong: %d nodes %d edges %d labels", g.NumNodes(), g.NumEdges(), g.NumLabels())
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d, want 2", g.MaxDegree())
	}
	if g.LabelFrequency(0) != 2 || g.LabelFrequency(1) != 1 {
		t.Errorf("label frequencies wrong: %d, %d", g.LabelFrequency(0), g.LabelFrequency(1))
	}
	if n := g.NodesWithLabel(0); len(n) != 2 || n[0] != 0 || n[1] != 2 {
		t.Errorf("NodesWithLabel(0) = %v", n)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("valid CSR fails validation: %v", err)
	}
}
