package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleLG = `# a comment
t # 0
v 0 A
v 1 B
v 2 C
e 0 1
e 1 2 bond
`

func TestParseLG(t *testing.T) {
	g, err := ParseLG(strings.NewReader(sampleLG))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.NodeLabelTable().Name(g.Label(0)) != "A" {
		t.Errorf("node 0 label = %q", g.NodeLabelTable().Name(g.Label(0)))
	}
	if !g.HasEdgeLabels() {
		t.Fatal("expected edge labels")
	}
	l, ok := g.EdgeLabel(1, 2)
	if !ok || g.EdgeLabelTable().Name(l) != "bond" {
		t.Errorf("edge (1,2) label = %v %v", l, ok)
	}
	if l, ok := g.EdgeLabel(0, 1); !ok || l != NoLabel {
		t.Errorf("edge (0,1) label = %v %v, want NoLabel", l, ok)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseLGErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"sparse ids", "v 0 A\nv 2 B\n"},
		{"bad node id", "v x A\n"},
		{"v arity", "v 0\n"},
		{"e arity", "v 0 A\ne 0\n"},
		{"bad edge src", "v 0 A\nv 1 A\ne x 1\n"},
		{"bad edge dst", "v 0 A\nv 1 A\ne 0 x\n"},
		{"unknown record", "q 1 2\n"},
		{"self loop", "v 0 A\ne 0 0\n"},
		{"dangling edge", "v 0 A\ne 0 3\n"},
		{"dup edge", "v 0 A\nv 1 A\ne 0 1\ne 1 0\n"},
	}
	for _, c := range cases {
		if _, err := ParseLG(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestLGRoundTrip(t *testing.T) {
	g, err := ParseLG(strings.NewReader(sampleLG))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLG(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseLG(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		n1 := g.NodeLabelTable().Name(g.Label(u))
		n2 := g2.NodeLabelTable().Name(g2.Label(u))
		if n1 != n2 {
			t.Errorf("node %d label %q != %q", u, n1, n2)
		}
	}
}

func TestSaveLoadLG(t *testing.T) {
	g, err := ParseLG(strings.NewReader(sampleLG))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.lg")
	if err := SaveLG(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadLG(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Error("save/load changed the graph")
	}
	if _, err := LoadLG(filepath.Join(t.TempDir(), "missing.lg")); !os.IsNotExist(err) {
		t.Errorf("missing file error = %v", err)
	}
}

func TestParseQueryLG(t *testing.T) {
	in := sampleLG + "p 1\n"
	q, err := ParseQueryLG(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if q.Pivot != 1 {
		t.Errorf("pivot = %d, want 1", q.Pivot)
	}
	// Default pivot.
	q, err = ParseQueryLG(strings.NewReader(sampleLG))
	if err != nil {
		t.Fatal(err)
	}
	if q.Pivot != 0 {
		t.Errorf("default pivot = %d, want 0", q.Pivot)
	}
	if _, err := ParseQueryLG(strings.NewReader(sampleLG + "p x\n")); err == nil {
		t.Error("bad pivot accepted")
	}
	if _, err := ParseQueryLG(strings.NewReader(sampleLG + "p 9\n")); err == nil {
		t.Error("out-of-range pivot accepted")
	}
}
