package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"math/rand"
)

func randomGraphForBinary(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(50)
	labels := 1 + rng.Intn(6)
	b := NewBuilder(n, n*2)
	for i := 0; i < n; i++ {
		b.AddNode(Label(rng.Intn(labels)))
	}
	withEdgeLabels := rng.Intn(2) == 0
	for tries := 0; tries < n*3; tries++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if u == v || b.HasEdge(u, v) {
			continue
		}
		el := NoLabel
		if withEdgeLabels {
			el = Label(rng.Intn(3))
		}
		if err := b.AddLabeledEdge(u, v, el); err != nil {
			panic(err)
		}
	}
	return b.MustBuild()
}

func graphsEqual(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() ||
		a.NumLabels() != b.NumLabels() || a.HasEdgeLabels() != b.HasEdgeLabels() {
		return false
	}
	for u := NodeID(0); int(u) < a.NumNodes(); u++ {
		if a.Label(u) != b.Label(u) || a.Degree(u) != b.Degree(u) {
			return false
		}
		na, nb := a.Neighbors(u), b.Neighbors(u)
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
			if a.EdgeLabelAt(u, i) != b.EdgeLabelAt(u, i) {
				return false
			}
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraphForBinary(seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		return graphsEqual(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := randomGraphForBinary(7)
	path := filepath.Join(t.TempDir(), "g.psig")
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, g2) {
		t.Error("file round trip changed the graph")
	}
	if _, err := LoadBinary(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"empty", ""},
		{"short magic", "PS"},
		{"bad magic", "NOPE" + strings.Repeat("\x00", 64)},
		{"truncated header", "PSIG\x01\x00\x00"},
	}
	for _, c := range cases {
		if _, err := ReadBinary(strings.NewReader(c.data)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Bad version.
	g := randomGraphForBinary(3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version field
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("bad version accepted")
	}
	// Corrupt an adjacency entry so validation must fire.
	var buf2 bytes.Buffer
	if err := WriteBinary(&buf2, g); err != nil {
		t.Fatal(err)
	}
	d2 := buf2.Bytes()
	d2[len(d2)-1] ^= 0xFF
	if _, err := ReadBinary(bytes.NewReader(d2)); err == nil {
		t.Error("corrupted payload accepted")
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	g := NewBuilder(0, 0).MustBuild()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 0 || g2.NumEdges() != 0 {
		t.Error("empty graph round trip failed")
	}
}
