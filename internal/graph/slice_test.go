package graph

import (
	"testing"
)

// path builds 0-1-2-...-(n-1) with all labels 0.
func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n, n-1)
	for i := 0; i < n; i++ {
		b.AddNode(0)
	}
	for i := 0; i+1 < n; i++ {
		if err := b.AddEdge(NodeID(i), NodeID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func TestKHopClosure(t *testing.T) {
	g := pathGraph(t, 7)
	got, err := KHopClosure(g, []NodeID{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []NodeID{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("closure = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("closure = %v, want %v", got, want)
		}
	}

	// Zero hops returns the deduplicated seeds, sorted.
	got, err = KHopClosure(g, []NodeID{5, 1, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("0-hop closure = %v, want [1 5]", got)
	}

	if _, err := KHopClosure(g, []NodeID{99}, 1); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

func TestReserveLabels(t *testing.T) {
	b := NewBuilder(2, 1)
	b.ReserveLabels(5)
	b.AddNode(0)
	b.AddNode(1)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	if g.NumLabels() != 5 {
		t.Fatalf("NumLabels = %d, want reserved 5", g.NumLabels())
	}
	if got := g.LabelFrequency(4); got != 0 {
		t.Fatalf("reserved empty label has frequency %d", got)
	}
	if got := g.NodesWithLabel(4); len(got) != 0 {
		t.Fatalf("reserved empty label has nodes %v", got)
	}
	// A higher observed label still wins over a smaller reservation.
	b2 := NewBuilder(1, 0)
	b2.ReserveLabels(2)
	b2.AddNode(6)
	if got := b2.MustBuild().NumLabels(); got != 7 {
		t.Fatalf("NumLabels = %d, want 7", got)
	}
}

func TestInducedSubgraphPreserving(t *testing.T) {
	b := NewBuilder(4, 3)
	b.AddNode(0)
	b.AddNode(3) // highest label lives outside the induced set
	b.AddNode(1)
	b.AddNode(0)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {2, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()

	sub, orig, err := InducedSubgraphPreserving(g, []NodeID{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumLabels() != g.NumLabels() {
		t.Fatalf("preserving subgraph has %d labels, parent %d", sub.NumLabels(), g.NumLabels())
	}
	if len(orig) != 2 || orig[0] != 2 || orig[1] != 3 {
		t.Fatalf("orig mapping = %v", orig)
	}
	if sub.NumEdges() != 1 || !sub.HasEdge(0, 1) {
		t.Fatalf("induced edges wrong: %d edges", sub.NumEdges())
	}

	// The plain variant shrinks the alphabet — that contrast is the
	// reason the preserving variant exists.
	plain, _, err := InducedSubgraph(g, []NodeID{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NumLabels() >= g.NumLabels() {
		t.Fatalf("plain induced subgraph unexpectedly kept width %d", plain.NumLabels())
	}
}

func TestEccentricity(t *testing.T) {
	g := pathGraph(t, 6)
	if got := Eccentricity(g, 0); got != 5 {
		t.Fatalf("Eccentricity(end of P6) = %d, want 5", got)
	}
	if got := Eccentricity(g, 2); got != 3 {
		t.Fatalf("Eccentricity(middle) = %d, want 3", got)
	}
}
