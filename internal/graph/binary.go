package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary graph format: a compact little-endian serialization of the CSR
// structure, roughly 20x faster to load than the LG text format for the
// web-scale synthetic datasets. Layout:
//
//	magic   "PSIG"        4 bytes
//	version uint32        currently 1
//	nodes   uint64
//	edges   uint64        undirected edge count
//	labels  uint64        node-label alphabet size
//	flags   uint32        bit 0: has edge labels
//	node labels           nodes x uint32
//	offsets               (nodes+1) x uint64
//	adjacency             2*edges x uint32
//	edge labels           2*edges x int32 (only when flag set)
//
// Label name tables are not serialized; binary files round-trip label
// identifiers only, which is what the experiment pipeline needs.

const (
	binaryMagic   = "PSIG"
	binaryVersion = 1
	flagEdgeLabel = 1 << 0
)

// WriteBinary serializes g to w in the binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var flags uint32
	if g.edgeLabels != nil {
		flags |= flagEdgeLabel
	}
	header := []uint64{
		binaryVersion,
		uint64(g.NumNodes()),
		uint64(g.numEdges),
		uint64(g.NumLabels()),
		uint64(flags),
	}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, l := range g.labels {
		if err := binary.Write(bw, binary.LittleEndian, uint32(l)); err != nil {
			return err
		}
	}
	for _, o := range g.offsets {
		if err := binary.Write(bw, binary.LittleEndian, uint64(o)); err != nil {
			return err
		}
	}
	for _, v := range g.adj {
		if err := binary.Write(bw, binary.LittleEndian, uint32(v)); err != nil {
			return err
		}
	}
	if g.edgeLabels != nil {
		for _, l := range g.edgeLabels {
			if err := binary.Write(bw, binary.LittleEndian, int32(l)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary. The result is
// fully validated (structure, sorting, symmetry) before being returned.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	header := make([]uint64, 5)
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	version, nodes, edges, labels, flags := header[0], header[1], header[2], header[3], uint32(header[4])
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	const maxReasonable = 1 << 33
	if nodes > maxReasonable || edges > maxReasonable || labels > maxReasonable {
		return nil, fmt.Errorf("graph: implausible header (nodes=%d edges=%d labels=%d)", nodes, edges, labels)
	}

	g := &Graph{
		labels:   make([]Label, nodes),
		offsets:  make([]int64, nodes+1),
		adj:      make([]NodeID, 2*edges),
		numEdges: int64(edges),
	}
	for i := range g.labels {
		var v uint32
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("graph: reading labels: %w", err)
		}
		if uint64(v) >= labels {
			return nil, fmt.Errorf("graph: node %d label %d out of range %d", i, v, labels)
		}
		g.labels[i] = Label(v)
	}
	for i := range g.offsets {
		var v uint64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("graph: reading offsets: %w", err)
		}
		g.offsets[i] = int64(v)
	}
	for i := range g.adj {
		var v uint32
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("graph: reading adjacency: %w", err)
		}
		g.adj[i] = NodeID(v)
	}
	if flags&flagEdgeLabel != 0 {
		g.edgeLabels = make([]Label, 2*edges)
		for i := range g.edgeLabels {
			var v int32
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return nil, fmt.Errorf("graph: reading edge labels: %w", err)
			}
			g.edgeLabels[i] = Label(v)
		}
	}

	// Rebuild derived state.
	g.labelCount = make([]int32, labels)
	for _, l := range g.labels {
		g.labelCount[l]++
	}
	g.labelIndex = make([][]NodeID, labels)
	for l := range g.labelIndex {
		if c := g.labelCount[l]; c > 0 {
			g.labelIndex[l] = make([]NodeID, 0, c)
		}
	}
	for u, l := range g.labels {
		g.labelIndex[l] = append(g.labelIndex[l], NodeID(u))
	}
	for u := 0; u < int(nodes); u++ {
		if d := int32(g.offsets[u+1] - g.offsets[u]); d > g.maxDegree {
			g.maxDegree = d
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary payload invalid: %w", err)
	}
	return g, nil
}

// SaveBinary writes g to the named file in the binary format.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a graph from the named binary file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
