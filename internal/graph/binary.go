package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Binary graph format: a compact little-endian serialization of the CSR
// structure, roughly 20x faster to load than the LG text format for the
// web-scale synthetic datasets. Layout:
//
//	magic   "PSIG"        4 bytes
//	version uint32        currently 1
//	nodes   uint64
//	edges   uint64        undirected edge count
//	labels  uint64        node-label alphabet size
//	flags   uint32        bit 0: has edge labels
//	node labels           nodes x uint32
//	offsets               (nodes+1) x uint64
//	adjacency             2*edges x uint32
//	edge labels           2*edges x int32 (only when flag set)
//
// Label name tables are not serialized; binary files round-trip label
// identifiers only, which is what the experiment pipeline needs. The
// node-label alphabet is canonical: labels must equal 1 + the largest
// node label (0 for the empty graph), which is what Build produces and
// WriteBinary emits. ReadBinary rejects anything else, so corrupt
// headers cannot force oversized label-index allocations.

const (
	binaryMagic   = "PSIG"
	binaryVersion = 1
	flagEdgeLabel = 1 << 0
)

// WriteBinary serializes g to w in the binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var flags uint32
	if g.edgeLabels != nil {
		flags |= flagEdgeLabel
	}
	header := []uint64{
		binaryVersion,
		uint64(g.NumNodes()),
		uint64(g.numEdges),
		uint64(g.NumLabels()),
		uint64(flags),
	}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, l := range g.labels {
		if err := binary.Write(bw, binary.LittleEndian, uint32(l)); err != nil {
			return err
		}
	}
	for _, o := range g.offsets {
		if err := binary.Write(bw, binary.LittleEndian, uint64(o)); err != nil {
			return err
		}
	}
	for _, v := range g.adj {
		if err := binary.Write(bw, binary.LittleEndian, uint32(v)); err != nil {
			return err
		}
	}
	if g.edgeLabels != nil {
		for _, l := range g.edgeLabels {
			if err := binary.Write(bw, binary.LittleEndian, int32(l)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary. The result is
// fully validated (structure, sorting, symmetry) before being returned.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	header := make([]uint64, 5)
	for i := range header {
		if err := binary.Read(br, binary.LittleEndian, &header[i]); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	version, nodes, edges, labels, flags := header[0], header[1], header[2], header[3], uint32(header[4])
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	const maxReasonable = 1 << 33
	if nodes > maxReasonable || edges > maxReasonable || labels > maxReasonable {
		return nil, fmt.Errorf("graph: implausible header (nodes=%d edges=%d labels=%d)", nodes, edges, labels)
	}

	nodeLabels, err := readVals(br, nodes, 4, func(b []byte) Label {
		return Label(binary.LittleEndian.Uint32(b))
	})
	if err != nil {
		return nil, fmt.Errorf("graph: reading labels: %w", err)
	}
	maxLabel := Label(-1)
	for i, l := range nodeLabels {
		if uint64(l) >= labels {
			return nil, fmt.Errorf("graph: node %d label %d out of range %d", i, l, labels)
		}
		if l > maxLabel {
			maxLabel = l
		}
	}
	if labels != uint64(maxLabel+1) {
		return nil, fmt.Errorf("graph: non-canonical label alphabet: header says %d, node labels need %d", labels, maxLabel+1)
	}
	offsets, err := readVals(br, nodes+1, 8, func(b []byte) int64 {
		return int64(binary.LittleEndian.Uint64(b))
	})
	if err != nil {
		return nil, fmt.Errorf("graph: reading offsets: %w", err)
	}
	adj, err := readVals(br, 2*edges, 4, func(b []byte) NodeID {
		return NodeID(binary.LittleEndian.Uint32(b))
	})
	if err != nil {
		return nil, fmt.Errorf("graph: reading adjacency: %w", err)
	}
	var edgeLabels []Label
	if flags&flagEdgeLabel != 0 {
		edgeLabels, err = readVals(br, 2*edges, 4, func(b []byte) Label {
			return Label(int32(binary.LittleEndian.Uint32(b)))
		})
		if err != nil {
			return nil, fmt.Errorf("graph: reading edge labels: %w", err)
		}
	}

	g := FromCSR(nodeLabels, offsets, adj, edgeLabels, int(labels))
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary payload invalid: %w", err)
	}
	if err := runBuildChecks(g); err != nil {
		return nil, fmt.Errorf("graph: binary payload invalid: %w", err)
	}
	return g, nil
}

// readVals reads n fixed-width little-endian values, decoding each with
// conv. The destination grows incrementally, so a corrupt header that
// claims billions of elements costs memory proportional to the bytes
// actually present, not to the claim.
func readVals[T any](r io.Reader, n uint64, width int, conv func([]byte) T) ([]T, error) {
	const allocChunk = 1 << 16
	c := n
	if c > allocChunk {
		c = allocChunk
	}
	out := make([]T, 0, c)
	buf := make([]byte, width)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		out = append(out, conv(buf))
	}
	return out, nil
}

// SaveBinary writes g to the named file in the binary format.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// LoadBinary reads a graph from the named binary file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
