package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseEdgeList(t *testing.T) {
	in := "# a comment\n# nodes 6\n0 1\n1\t2\n3 4\n"
	g, err := ParseEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 {
		t.Errorf("NumNodes = %d, want 6 (declared isolated node)", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if g.NumLabels() != 1 || g.Label(5) != 0 {
		t.Errorf("edge-list graphs must be uniformly labeled 0")
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 3) {
		t.Errorf("adjacency wrong after parse")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("parsed graph invalid: %v", err)
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"arity", "0 1 2\n"},
		{"bad src", "x 1\n"},
		{"bad dst", "0 x\n"},
		{"negative id", "-1 2\n"},
		{"overflow id", "0 4294967296\n"},
		{"self loop", "3 3\n"},
		{"duplicate edge", "0 1\n1 0\n"},
		{"bad nodes directive", "# nodes x\n"},
		{"negative nodes directive", "# nodes -4\n"},
		{"declared too small", "# nodes 2\n0 5\n"},
	}
	for _, c := range cases {
		if _, err := ParseEdgeList(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestParseEdgeListEmpty(t *testing.T) {
	g, err := ParseEdgeList(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty input gave %d nodes / %d edges", g.NumNodes(), g.NumEdges())
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ParseEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, g2) {
		t.Error("empty graph round trip failed")
	}
}

func TestWriteEdgeListRejectsLabels(t *testing.T) {
	b := NewBuilder(2, 1)
	n0, n1 := b.AddNode(0), b.AddNode(1) // two node labels
	if err := b.AddEdge(n0, n1); err != nil {
		t.Fatal(err)
	}
	labeled := b.MustBuild()
	if err := WriteEdgeList(&bytes.Buffer{}, labeled); err == nil {
		t.Error("node-labeled graph accepted")
	}

	b = NewBuilder(2, 1)
	n0, n1 = b.AddNode(0), b.AddNode(0)
	if err := b.AddLabeledEdge(n0, n1, 3); err != nil {
		t.Fatal(err)
	}
	edgeLabeled := b.MustBuild()
	if err := WriteEdgeList(&bytes.Buffer{}, edgeLabeled); err == nil {
		t.Error("edge-labeled graph accepted")
	}
}

func TestSaveLoadEdgeList(t *testing.T) {
	b := NewBuilder(4, 3)
	for i := 0; i < 4; i++ {
		b.AddNode(0)
	}
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {0, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	path := filepath.Join(t.TempDir(), "g.el")
	if err := SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(g, g2) {
		t.Error("file round trip changed the graph")
	}
	if _, err := LoadEdgeList(filepath.Join(t.TempDir(), "missing.el")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}
