package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The LG ("labeled graph") text format is the de-facto interchange format
// of the subgraph-mining literature (GraMi, ScaleMine, gSpan):
//
//	# comment
//	t # 0
//	v <id> <label>
//	e <src> <dst> [<label>]
//
// Node ids must be dense and ascending from 0. Edge labels are optional
// per edge; a file mixing labeled and unlabeled edges yields a graph with
// edge labels where missing ones are NoLabel.

// ParseLG reads a single graph in LG format from r.
func ParseLG(r io.Reader) (*Graph, error) {
	nodeTable := NewLabelTable()
	edgeTable := NewLabelTable()
	b := NewBuilder(1024, 4096)
	b.SetLabelTables(nodeTable, edgeTable)

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == 't' {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "v":
			if len(fields) != 3 {
				return nil, fmt.Errorf("lg:%d: want 'v <id> <label>', got %q", lineNo, line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("lg:%d: bad node id: %v", lineNo, err)
			}
			if id != b.NumNodes() {
				return nil, fmt.Errorf("lg:%d: node ids must be dense ascending; got %d, want %d", lineNo, id, b.NumNodes())
			}
			b.AddNode(nodeTable.Intern(fields[2]))
		case "e":
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("lg:%d: want 'e <src> <dst> [<label>]', got %q", lineNo, line)
			}
			src, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("lg:%d: bad edge source: %v", lineNo, err)
			}
			dst, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("lg:%d: bad edge target: %v", lineNo, err)
			}
			l := NoLabel
			if len(fields) == 4 {
				l = edgeTable.Intern(fields[3])
			}
			if err := b.AddLabeledEdge(NodeID(src), NodeID(dst), l); err != nil {
				return nil, fmt.Errorf("lg:%d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("lg:%d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

// LoadLG reads a graph in LG format from the named file.
func LoadLG(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseLG(bufio.NewReaderSize(f, 1<<20))
}

// WriteLG writes g to w in LG format.
func WriteLG(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintln(bw, "t # 0"); err != nil {
		return err
	}
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		if _, err := fmt.Fprintf(bw, "v %d %s\n", u, g.nodeLabels.Name(g.Label(u))); err != nil {
			return err
		}
	}
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for i, v := range g.Neighbors(u) {
			if u >= v {
				continue
			}
			if l := g.EdgeLabelAt(u, i); l != NoLabel {
				if _, err := fmt.Fprintf(bw, "e %d %d %s\n", u, v, g.edgeTable.Name(l)); err != nil {
					return err
				}
			} else if _, err := fmt.Fprintf(bw, "e %d %d\n", u, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveLG writes g in LG format to the named file, creating or truncating it.
func SaveLG(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteLG(f, g); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// ParseQueryLG reads a pivoted query in LG format extended with a pivot
// record ("p <id>"). A missing pivot record defaults to node 0.
func ParseQueryLG(r io.Reader) (Query, error) {
	var body strings.Builder
	pivot := NodeID(0)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "p ") {
			id, err := strconv.Atoi(strings.Fields(line)[1])
			if err != nil {
				return Query{}, fmt.Errorf("lg: bad pivot: %v", err)
			}
			pivot = NodeID(id)
			continue
		}
		body.WriteString(line)
		body.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return Query{}, err
	}
	g, err := ParseLG(strings.NewReader(body.String()))
	if err != nil {
		return Query{}, err
	}
	return NewQuery(g, pivot)
}
