package graph

// Build-time deep-validation hooks.
//
// Package invariant layers debug-gated deep validators on top of this
// package, but graph cannot import it (invariant imports graph for its
// types). Instead invariant registers its graph checker here at init
// time; Builder.Build and ReadBinary run every registered check on each
// graph they produce. With checking disabled the registered function
// returns nil immediately, so the production cost is one function call
// per built graph.

var buildChecks []func(*Graph) error

// RegisterBuildCheck installs f to run on every graph finalized by
// Builder.Build or decoded by ReadBinary. Registration is expected to
// happen from package init functions (it is not synchronized); f must be
// safe for concurrent calls.
func RegisterBuildCheck(f func(*Graph) error) {
	buildChecks = append(buildChecks, f)
}

// runBuildChecks runs all registered build checks against g.
func runBuildChecks(g *Graph) error {
	for _, f := range buildChecks {
		if err := f(g); err != nil {
			return err
		}
	}
	return nil
}
