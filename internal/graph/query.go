package graph

import (
	"fmt"
)

// Query is a pivoted query graph: a small labeled graph S together with a
// pivot node. A PSI evaluation returns the distinct data-graph nodes that
// match Pivot in at least one embedding of S.
type Query struct {
	G     *Graph
	Pivot NodeID
}

// NewQuery returns a pivoted query over g, validating the pivot.
func NewQuery(g *Graph, pivot NodeID) (Query, error) {
	if pivot < 0 || int(pivot) >= g.NumNodes() {
		return Query{}, fmt.Errorf("graph: pivot %d out of range [0,%d)", pivot, g.NumNodes())
	}
	return Query{G: g, Pivot: pivot}, nil
}

// Size returns the number of query nodes.
func (q Query) Size() int { return q.G.NumNodes() }

// Validate checks that the query graph is connected (a disconnected query
// cannot be evaluated by a connected search order) and the pivot in range.
func (q Query) Validate() error {
	if q.Pivot < 0 || int(q.Pivot) >= q.G.NumNodes() {
		return fmt.Errorf("graph: pivot %d out of range [0,%d)", q.Pivot, q.G.NumNodes())
	}
	if !IsConnected(q.G) {
		return fmt.Errorf("graph: query graph is disconnected")
	}
	return q.G.Validate()
}

// IsConnected reports whether g is connected (true for the empty graph).
func IsConnected(g *Graph) bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(u) {
			if !seen[w] {
				seen[w] = true
				count++
				stack = append(stack, w)
			}
		}
	}
	return count == n
}

// ConnectedComponent returns the nodes reachable from start, in discovery
// order.
func ConnectedComponent(g *Graph, start NodeID) []NodeID {
	seen := make([]bool, g.NumNodes())
	seen[start] = true
	out := []NodeID{start}
	for i := 0; i < len(out); i++ {
		for _, w := range g.Neighbors(out[i]) {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

// InducedSubgraph returns the subgraph of g induced by nodes, along with
// the mapping from new ids (positions in nodes) back to the original ids.
// Duplicate entries in nodes are an error.
func InducedSubgraph(g *Graph, nodes []NodeID) (*Graph, []NodeID, error) {
	remap := make(map[NodeID]NodeID, len(nodes))
	for i, u := range nodes {
		if u < 0 || int(u) >= g.NumNodes() {
			return nil, nil, fmt.Errorf("graph: induced node %d out of range", u)
		}
		if _, dup := remap[u]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate node %d in induced set", u)
		}
		remap[u] = NodeID(i)
	}
	b := NewBuilder(len(nodes), len(nodes)*2)
	b.SetLabelTables(g.nodeLabels, g.edgeTable)
	for _, u := range nodes {
		b.AddNode(g.Label(u))
	}
	for _, u := range nodes {
		nu := remap[u]
		for i, w := range g.Neighbors(u) {
			nw, ok := remap[w]
			if !ok || nu >= nw {
				continue // keep one direction; skip nodes outside the set
			}
			l := g.EdgeLabelAt(u, i)
			if err := b.AddLabeledEdge(nu, nw, l); err != nil {
				return nil, nil, err
			}
		}
	}
	orig := make([]NodeID, len(nodes))
	copy(orig, nodes)
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, orig, nil
}

// BFSDistances returns the shortest-path hop distance from start to every
// node, capped at maxDepth; unreached nodes (or those beyond maxDepth) get
// -1. scratch may be nil or a reusable slice of length NumNodes.
func BFSDistances(g *Graph, start NodeID, maxDepth int, scratch []int32) []int32 {
	n := g.NumNodes()
	dist := scratch
	if len(dist) != n {
		dist = make([]int32, n)
	}
	for i := range dist {
		dist[i] = -1
	}
	dist[start] = 0
	frontier := []NodeID{start}
	for d := 1; d <= maxDepth && len(frontier) > 0; d++ {
		var next []NodeID
		for _, u := range frontier {
			for _, w := range g.Neighbors(u) {
				if dist[w] < 0 {
					dist[w] = int32(d)
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	return dist
}
