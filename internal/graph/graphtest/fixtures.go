// Package graphtest provides the worked examples from the SmartPSI paper
// (Figures 1 and 2) as reusable fixtures, plus small deterministic random
// graphs for tests across the repository.
package graphtest

import (
	"math/rand"

	"repro/internal/graph"
)

// Labels used by the paper figures.
const (
	LabelA graph.Label = 0
	LabelB graph.Label = 1
	LabelC graph.Label = 2
	LabelD graph.Label = 3
)

func mustEdge(b *graph.Builder, u, v graph.NodeID) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// Figure1Query returns the triangle query S(v1, v2, v3) of paper Figure
// 1(a): v1 labeled A (pivot), v2 labeled B, v3 labeled C, fully connected.
func Figure1Query() graph.Query {
	b := graph.NewBuilder(3, 3)
	v1 := b.AddNode(LabelA)
	v2 := b.AddNode(LabelB)
	v3 := b.AddNode(LabelC)
	mustEdge(b, v1, v2)
	mustEdge(b, v2, v3)
	mustEdge(b, v1, v3)
	q, err := graph.NewQuery(b.MustBuild(), v1)
	if err != nil {
		panic(err)
	}
	return q
}

// Figure1Data returns the data graph of paper Figure 1(b). It has exactly
// five embeddings of the Figure 1 query and pivot bindings {u1, u6}
// (node ids 0 and 5 here).
func Figure1Data() *graph.Graph {
	b := graph.NewBuilder(6, 10)
	u1 := b.AddNode(LabelA) // id 0
	u2 := b.AddNode(LabelB) // id 1
	u3 := b.AddNode(LabelC) // id 2
	u4 := b.AddNode(LabelC) // id 3
	u5 := b.AddNode(LabelB) // id 4
	u6 := b.AddNode(LabelA) // id 5
	mustEdge(b, u1, u2)
	mustEdge(b, u1, u3)
	mustEdge(b, u1, u4)
	mustEdge(b, u1, u5)
	mustEdge(b, u2, u3)
	mustEdge(b, u2, u4)
	mustEdge(b, u5, u3)
	mustEdge(b, u5, u4)
	mustEdge(b, u6, u5)
	mustEdge(b, u6, u3)
	return b.MustBuild()
}

// Figure1PivotBindings are the expected PSI results for Figure 1:
// nodes u1 (id 0) and u6 (id 5).
func Figure1PivotBindings() []graph.NodeID { return []graph.NodeID{0, 5} }

// Figure1EmbeddingCount is the number of full subgraph-isomorphism
// embeddings of the Figure 1 query in the Figure 1 data graph.
const Figure1EmbeddingCount = 5

// Figure2Query returns the 5-node query of paper Figure 2(a):
// v0(A)–v1(B), v1–v2(B), v1–v3(C), v2–v3, v3–v4(D), pivot v1.
// Its matrix-based NS^2 rows are the worked example of Section 3.1.
func Figure2Query() graph.Query {
	b := graph.NewBuilder(5, 5)
	v0 := b.AddNode(LabelA)
	v1 := b.AddNode(LabelB)
	v2 := b.AddNode(LabelB)
	v3 := b.AddNode(LabelC)
	v4 := b.AddNode(LabelD)
	mustEdge(b, v0, v1)
	mustEdge(b, v1, v2)
	mustEdge(b, v1, v3)
	mustEdge(b, v2, v3)
	mustEdge(b, v3, v4)
	q, err := graph.NewQuery(b.MustBuild(), v1)
	if err != nil {
		panic(err)
	}
	return q
}

// Figure2NS2 is the expected matrix-based NS^2 of the Figure 2 query, one
// row per node over labels (A, B, C, D). Rows v0, v1, v2 and v4 are
// exactly as printed in the paper. The paper prints row v3 as
// (1/4, 13/4, 2, 1), which double-counts ½·NS^1(v2); applying the stated
// recurrence NS^2(v3) = NS^1(v3) + ½·(NS^1(v1)+NS^1(v2)+NS^1(v4)) yields
// (1/4, 5/2, 7/4, 1), the value used here.
var Figure2NS2 = [][]float64{
	{5. / 4, 5. / 4, 1. / 4, 0},
	{1, 3, 5. / 4, 1. / 4},
	{1. / 4, 11. / 4, 5. / 4, 1. / 4},
	{1. / 4, 5. / 2, 7. / 4, 1},
	{0, 1. / 2, 1, 5. / 4},
}

// Figure2NS1 is the expected matrix-based NS^1 of the Figure 2 query.
var Figure2NS1 = [][]float64{
	{1, 1. / 2, 0, 0},
	{1. / 2, 3. / 2, 1. / 2, 0},
	{0, 3. / 2, 1. / 2, 0},
	{0, 1, 1, 1. / 2},
	{0, 0, 1. / 2, 1},
}

// Random returns a connected-ish Erdős–Rényi-style labeled graph with n
// nodes, approximately m distinct edges, and the given label alphabet
// size, generated deterministically from seed.
func Random(n, m, labels int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n, m)
	for i := 0; i < n; i++ {
		b.AddNode(graph.Label(rng.Intn(labels)))
	}
	// A random spanning path keeps most nodes connected.
	perm := rng.Perm(n)
	for i := 1; i < n && i <= m; i++ {
		u, v := graph.NodeID(perm[i-1]), graph.NodeID(perm[i])
		if !b.HasEdge(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	for tries := 0; tries < 20*m && b.NumEdges() < m; tries++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || b.HasEdge(u, v) {
			continue
		}
		if err := b.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	return b.MustBuild()
}
