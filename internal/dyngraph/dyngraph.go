// Package dyngraph is an evolving-graph substrate: a mutable labeled
// graph supporting node insertions plus edge insertions and deletions
// that maintains every node's depth-2 matrix neighborhood signature
// incrementally, in O(deg(u)+deg(v)) per edge change instead of a full
// O(|E|·|L|) rebuild. It supports the streaming scenario of the SmartPSI authors'
// follow-up work (incremental frequent subgraph mining on evolving
// graphs): mutate, snapshot, evaluate PSI — with signatures already
// up to date.
//
// The closed form behind the maintenance: with e(x) the one-hot label
// vector of x,
//
//	NS²(x) = e(x) + Σ_{y∈N(x)} e(y) + ¼·Σ_{y∈N(x)} Σ_{z∈N(y)} e(z)
//
// so inserting edge (u,v) adds e(v) + ¼·(Σ_{z∈N'(v)} e(z)) to NS²(u)
// (where N'(v) includes u), ¼·e(v) to every old neighbor of u, and
// symmetrically for v. Only depth 2 — the paper's default — is
// maintained; other depths require a rebuild.
package dyngraph

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/invariant"
)

// Depth is the signature depth dyngraph maintains.
const Depth = 2

// Graph is a mutable labeled graph with incrementally maintained
// depth-2 matrix signatures. Not safe for concurrent mutation.
type Graph struct {
	width  int // label-alphabet size of the signature rows
	labels []graph.Label
	adj    [][]graph.NodeID
	sigs   []float64 // node-major rows of width `width`
	edges  int64
}

// New returns an empty evolving graph whose signatures use a label
// alphabet of the given width; labels >= width are rejected.
func New(width int) *Graph {
	return &Graph{width: width}
}

// FromGraph imports a static graph (computing all signatures once).
func FromGraph(g *graph.Graph, width int) (*Graph, error) {
	if width < g.NumLabels() {
		return nil, fmt.Errorf("dyngraph: width %d < graph labels %d", width, g.NumLabels())
	}
	d := New(width)
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if _, err := d.AddNode(g.Label(u)); err != nil {
			return nil, err
		}
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if err := d.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return d, nil
}

// NumNodes returns the current node count.
func (d *Graph) NumNodes() int { return len(d.labels) }

// NumEdges returns the current undirected edge count.
func (d *Graph) NumEdges() int64 { return d.edges }

// Width returns the signature label-alphabet size.
func (d *Graph) Width() int { return d.width }

// Label returns node u's label.
func (d *Graph) Label(u graph.NodeID) graph.Label { return d.labels[u] }

// Degree returns node u's current degree.
func (d *Graph) Degree(u graph.NodeID) int { return len(d.adj[u]) }

// Neighbors returns u's neighbors in insertion order. The caller must
// not modify the slice.
func (d *Graph) Neighbors(u graph.NodeID) []graph.NodeID { return d.adj[u] }

// Signature returns u's maintained depth-2 signature row. The caller
// must not modify it; it remains valid (and current) across mutations.
func (d *Graph) Signature(u graph.NodeID) []float64 {
	return d.sigs[int(u)*d.width : (int(u)+1)*d.width]
}

// AddNode appends an isolated node and returns its id. A fresh node's
// signature is its own label with weight 1.
func (d *Graph) AddNode(l graph.Label) (graph.NodeID, error) {
	if l < 0 || int(l) >= d.width {
		return 0, fmt.Errorf("dyngraph: label %d outside alphabet [0,%d)", l, d.width)
	}
	id := graph.NodeID(len(d.labels))
	d.labels = append(d.labels, l)
	d.adj = append(d.adj, nil)
	row := make([]float64, d.width)
	row[l] = 1
	d.sigs = append(d.sigs, row...)
	return id, nil
}

// HasEdge reports whether edge (u, v) exists.
func (d *Graph) HasEdge(u, v graph.NodeID) bool {
	a := d.adj[u]
	if len(d.adj[v]) < len(a) {
		a, v = d.adj[v], u
	}
	for _, w := range a {
		if w == v {
			return true
		}
	}
	return false
}

// AddEdge inserts undirected edge (u, v) and updates the affected
// signatures exactly.
func (d *Graph) AddEdge(u, v graph.NodeID) error {
	n := graph.NodeID(len(d.labels))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("dyngraph: edge (%d,%d) references unknown node", u, v)
	}
	if u == v {
		return fmt.Errorf("dyngraph: self loop on %d", u)
	}
	if d.HasEdge(u, v) {
		return fmt.Errorf("dyngraph: duplicate edge (%d,%d)", u, v)
	}

	// Incremental NS² deltas, derived from the closed form. Order
	// matters: use the OLD neighbor lists, then link.
	d.applyEdgeDelta(u, v)
	d.applyEdgeDelta(v, u)
	// Old neighbors of u gain the 2-walk w -> u -> v; likewise for v.
	for _, w := range d.adj[u] {
		d.row(w)[d.labels[v]] += 0.25
	}
	for _, w := range d.adj[v] {
		d.row(w)[d.labels[u]] += 0.25
	}

	d.adj[u] = append(d.adj[u], v)
	d.adj[v] = append(d.adj[v], u)
	d.edges++
	return d.checkTouched(u, v)
}

// RemoveEdge deletes undirected edge (u, v), down-dating the affected
// signatures exactly (the deltas of AddEdge are linear, so removal
// subtracts them against the post-removal neighbor lists).
func (d *Graph) RemoveEdge(u, v graph.NodeID) error {
	n := graph.NodeID(len(d.labels))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("dyngraph: edge (%d,%d) references unknown node", u, v)
	}
	if !d.HasEdge(u, v) {
		return fmt.Errorf("dyngraph: edge (%d,%d) does not exist", u, v)
	}
	// Unlink first so the subtracted deltas see the same "other
	// neighbors" sets AddEdge saw when it applied them.
	d.unlink(u, v)
	d.unlink(v, u)
	d.edges--

	d.revertEdgeDelta(u, v)
	d.revertEdgeDelta(v, u)
	for _, w := range d.adj[u] {
		d.row(w)[d.labels[v]] -= 0.25
	}
	for _, w := range d.adj[v] {
		d.row(w)[d.labels[u]] -= 0.25
	}
	return d.checkTouched(u, v)
}

// checkTouched revalidates the signature rows an edge mutation on
// (u, v) touched — both endpoints and their current neighbors — when
// deep invariant checking is enabled. Cost is O(deg(u)+deg(v)) rows,
// matching the mutation itself.
func (d *Graph) checkTouched(u, v graph.NodeID) error {
	if !invariant.Enabled() {
		return nil
	}
	check := func(x graph.NodeID) error {
		lo := int(x) * d.width
		return invariant.CheckDenseRows(d.sigs[lo:lo+d.width], d.width, d.labels[x:x+1])
	}
	if err := check(u); err != nil {
		return err
	}
	if err := check(v); err != nil {
		return err
	}
	for _, w := range d.adj[u] {
		if err := check(w); err != nil {
			return err
		}
	}
	for _, w := range d.adj[v] {
		if err := check(w); err != nil {
			return err
		}
	}
	return nil
}

func (d *Graph) unlink(u, v graph.NodeID) {
	a := d.adj[u]
	for i, w := range a {
		if w == v {
			a[i] = a[len(a)-1]
			d.adj[u] = a[:len(a)-1]
			return
		}
	}
}

// revertEdgeDelta subtracts from NS²(u) exactly what applyEdgeDelta
// added for neighbor v, evaluated against v's current (post-unlink)
// neighbor list.
func (d *Graph) revertEdgeDelta(u, v graph.NodeID) {
	row := d.row(u)
	row[d.labels[v]] -= 1
	for _, z := range d.adj[v] {
		row[d.labels[z]] -= 0.25
	}
	row[d.labels[u]] -= 0.25
}

// applyEdgeDelta adds to NS²(u) the terms contributed by new neighbor
// v: e(v) (distance 1, counted twice by the matrix recurrence: once per
// iteration) plus ¼ per old 2-walk endpoint through v plus ¼·e(u) for
// the new u→v→u walk.
func (d *Graph) applyEdgeDelta(u, v graph.NodeID) {
	row := d.row(u)
	// Distance-1 term: the matrix recurrence counts a direct neighbor's
	// label with total weight 1 (½ in iteration 1 + ½·its self-weight in
	// iteration 2).
	row[d.labels[v]] += 1
	// 2-walks u -> v -> z over v's OLD neighbors.
	for _, z := range d.adj[v] {
		row[d.labels[z]] += 0.25
	}
	// The new walk u -> v -> u.
	row[d.labels[u]] += 0.25
}

func (d *Graph) row(u graph.NodeID) []float64 {
	return d.sigs[int(u)*d.width : (int(u)+1)*d.width]
}

// Snapshot materializes the current state as an immutable CSR graph.
// With invariant checking enabled, the snapshot is deep-validated (via
// the graph build hook) and the full maintained row store is
// revalidated before returning.
func (d *Graph) Snapshot() (*graph.Graph, error) {
	b := graph.NewBuilder(len(d.labels), int(d.edges))
	for _, l := range d.labels {
		b.AddNode(l)
	}
	for u := range d.adj {
		for _, v := range d.adj[u] {
			if graph.NodeID(u) < v {
				if err := b.AddEdge(graph.NodeID(u), v); err != nil {
					return nil, err
				}
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if invariant.Enabled() {
		if err := invariant.CheckDenseRows(d.sigs, d.width, d.labels); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// SignatureRows returns a copy of all maintained rows, node-major — the
// layout signature.FromDense accepts.
func (d *Graph) SignatureRows() []float64 {
	out := make([]float64, len(d.sigs))
	copy(out, d.sigs)
	return out
}
