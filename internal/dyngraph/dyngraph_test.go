package dyngraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
	"repro/internal/signature"
)

// rebuildSigs computes the ground-truth matrix signatures of the
// snapshot and compares them row by row with the maintained ones.
func checkSigsMatch(t testing.TB, d *Graph) {
	t.Helper()
	g, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := signature.MustBuild(g, Depth, d.Width(), signature.Matrix)
	for u := graph.NodeID(0); int(u) < d.NumNodes(); u++ {
		got := d.Signature(u)
		ref := want.Row(u)
		for l := range got {
			if math.Abs(got[l]-ref[l]) > 1e-9 {
				t.Fatalf("node %d label %d: maintained %v, rebuilt %v", u, l, got[l], ref[l])
			}
		}
	}
}

func TestIncrementalMatchesRebuildSmall(t *testing.T) {
	d := New(3)
	a, err := d.AddNode(0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := d.AddNode(1)
	c, _ := d.AddNode(2)
	checkSigsMatch(t, d)
	if err := d.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	checkSigsMatch(t, d)
	if err := d.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	checkSigsMatch(t, d)
	if err := d.AddEdge(a, c); err != nil {
		t.Fatal(err)
	}
	checkSigsMatch(t, d)
}

// TestIncrementalMatchesRebuildProperty: after any random insertion
// sequence the maintained rows equal a from-scratch rebuild.
func TestIncrementalMatchesRebuildProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		labels := 1 + rng.Intn(4)
		d := New(labels)
		n := 4 + rng.Intn(12)
		for i := 0; i < n; i++ {
			if _, err := d.AddNode(graph.Label(rng.Intn(labels))); err != nil {
				return false
			}
		}
		for tries := 0; tries < n*3; tries++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u == v || d.HasEdge(u, v) {
				continue
			}
			if err := d.AddEdge(u, v); err != nil {
				return false
			}
		}
		g, err := d.Snapshot()
		if err != nil {
			return false
		}
		want := signature.MustBuild(g, Depth, labels, signature.Matrix)
		for u := graph.NodeID(0); int(u) < n; u++ {
			got := d.Signature(u)
			ref := want.Row(u)
			for l := range got {
				if math.Abs(got[l]-ref[l]) > 1e-9 {
					t.Logf("seed %d node %d label %d: %v vs %v", seed, u, l, got[l], ref[l])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFromGraph(t *testing.T) {
	g := graphtest.Figure1Data()
	d, err := FromGraph(g, g.NumLabels())
	if err != nil {
		t.Fatal(err)
	}
	if d.NumNodes() != g.NumNodes() || d.NumEdges() != g.NumEdges() {
		t.Errorf("imported %d/%d, want %d/%d", d.NumNodes(), d.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	checkSigsMatch(t, d)
	// The paper's worked example: NS²(u1) = {A:1.25+walks, ...} — for the
	// matrix method the exact u1 row must match a direct build.
	want := signature.MustBuild(g, Depth, g.NumLabels(), signature.Matrix)
	row := d.Signature(0)
	for l, w := range want.Row(0) {
		if math.Abs(row[l]-w) > 1e-9 {
			t.Errorf("u1 label %d: %v, want %v", l, row[l], w)
		}
	}
	if _, err := FromGraph(g, 1); err == nil {
		t.Error("narrow width accepted")
	}
}

func TestMutationErrors(t *testing.T) {
	d := New(2)
	if _, err := d.AddNode(5); err == nil {
		t.Error("out-of-alphabet label accepted")
	}
	a, _ := d.AddNode(0)
	b, _ := d.AddNode(1)
	if err := d.AddEdge(a, a); err == nil {
		t.Error("self loop accepted")
	}
	if err := d.AddEdge(a, 99); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if err := d.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(b, a); err == nil {
		t.Error("duplicate edge accepted")
	}
	if !d.HasEdge(a, b) || !d.HasEdge(b, a) {
		t.Error("HasEdge not symmetric")
	}
	if d.Degree(a) != 1 || d.Label(b) != 1 {
		t.Error("accessors wrong")
	}
	if len(d.Neighbors(a)) != 1 {
		t.Error("neighbors wrong")
	}
}

// TestStreamingPSI: mutate, snapshot, evaluate — the maintained rows
// plug straight into the PSI evaluator and results match a cold build.
func TestStreamingPSI(t *testing.T) {
	g := graphtest.Figure1Data()
	d, err := FromGraph(g, g.NumLabels())
	if err != nil {
		t.Fatal(err)
	}
	// Grow the graph: a new A node wired like u6 (triangle with u5,u3).
	nu, err := d.AddNode(graphtest.LabelA)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(nu, 4); err != nil { // u5
		t.Fatal(err)
	}
	if err := d.AddEdge(nu, 2); err != nil { // u3
		t.Fatal(err)
	}
	checkSigsMatch(t, d)

	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sigs, err := signature.FromDense(d.SignatureRows(), d.Width(), Depth)
	if err != nil {
		t.Fatal(err)
	}
	q := graphtest.Figure1Query()
	qSigs := signature.MustBuild(q.G, Depth, d.Width(), signature.Matrix)

	// The new node must now be a valid pivot binding alongside u1, u6.
	bindings := evaluateAllPessimistic(t, snap, q, sigs, qSigs)
	want := []graph.NodeID{0, 5, nu}
	if len(bindings) != len(want) {
		t.Fatalf("bindings = %v, want %v", bindings, want)
	}
	for i := range want {
		if bindings[i] != want[i] {
			t.Fatalf("bindings = %v, want %v", bindings, want)
		}
	}
}

func TestSignatureFromDenseErrors(t *testing.T) {
	if _, err := signature.FromDense(make([]float64, 7), 3, 2); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := signature.FromDense(nil, 0, 2); err == nil {
		t.Error("zero width accepted")
	}
}

// TestRemoveEdgeMatchesRebuild: insertions interleaved with deletions
// keep the maintained rows equal to a from-scratch rebuild.
func TestRemoveEdgeMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		labels := 1 + rng.Intn(4)
		d := New(labels)
		n := 5 + rng.Intn(10)
		for i := 0; i < n; i++ {
			if _, err := d.AddNode(graph.Label(rng.Intn(labels))); err != nil {
				return false
			}
		}
		type edge struct{ u, v graph.NodeID }
		var live []edge
		for step := 0; step < n*4; step++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				e := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if err := d.RemoveEdge(e.u, e.v); err != nil {
					return false
				}
				continue
			}
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u == v || d.HasEdge(u, v) {
				continue
			}
			if err := d.AddEdge(u, v); err != nil {
				return false
			}
			live = append(live, edge{u, v})
		}
		g, err := d.Snapshot()
		if err != nil {
			return false
		}
		want := signature.MustBuild(g, Depth, labels, signature.Matrix)
		for u := graph.NodeID(0); int(u) < n; u++ {
			got := d.Signature(u)
			ref := want.Row(u)
			for l := range got {
				if math.Abs(got[l]-ref[l]) > 1e-9 {
					t.Logf("seed %d node %d label %d: %v vs %v", seed, u, l, got[l], ref[l])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdgeErrors(t *testing.T) {
	d := New(2)
	a, _ := d.AddNode(0)
	b, _ := d.AddNode(1)
	if err := d.RemoveEdge(a, b); err == nil {
		t.Error("removing a missing edge accepted")
	}
	if err := d.RemoveEdge(a, 99); err == nil {
		t.Error("unknown endpoint accepted")
	}
	if err := d.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(b, a); err != nil {
		t.Fatal(err)
	}
	if d.NumEdges() != 0 || d.HasEdge(a, b) {
		t.Error("edge not removed")
	}
	// Re-adding after removal works and signatures stay exact.
	if err := d.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	checkSigsMatch(t, d)
}
