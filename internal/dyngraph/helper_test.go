package dyngraph

import (
	"sort"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/psi"
	"repro/internal/signature"
)

// evaluateAllPessimistic runs a PSI query over every pivot-labeled
// candidate with the pessimistic method and returns sorted bindings.
func evaluateAllPessimistic(t testing.TB, g *graph.Graph, q graph.Query,
	dataSigs, querySigs *signature.Signatures) []graph.NodeID {
	t.Helper()
	ev, err := psi.NewEvaluator(g, q, dataSigs, querySigs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := psi.EvaluateAll(ev, psi.PessimisticOnly, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	out := append([]graph.NodeID(nil), res.Bindings...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
