package psi

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/match"
	"repro/internal/plan"
	"repro/internal/signature"
)

// fuzzInstance decodes fuzz bytes into a small data graph and a
// connected pivoted query induced from it. Returns ok=false for inputs
// that do not decode to a usable instance (the fuzzer skips those).
func fuzzInstance(data []byte) (*graph.Graph, graph.Query, bool) {
	if len(data) < 8 {
		return nil, graph.Query{}, false
	}
	n := 3 + int(data[0])%6         // 3..8 data nodes
	numLabels := 1 + int(data[1])%3 // 1..3 node labels
	if len(data) < 2+n {
		return nil, graph.Query{}, false
	}
	b := graph.NewBuilder(n, 2*n)
	for i := 0; i < n; i++ {
		b.AddNode(graph.Label(int(data[2+i]) % numLabels))
	}
	for rest := data[2+n:]; len(rest) >= 2; rest = rest[2:] {
		u := graph.NodeID(int(rest[0]) % n)
		v := graph.NodeID(int(rest[1]) % n)
		if u == v || b.HasEdge(u, v) {
			continue
		}
		if err := b.AddEdge(u, v); err != nil {
			return nil, graph.Query{}, false
		}
	}
	g, err := b.Build()
	if err != nil || g.NumEdges() == 0 {
		return nil, graph.Query{}, false
	}
	// The query is an induced connected subgraph of the data graph, so
	// at least one binding is guaranteed to exist.
	start := graph.NodeID(int(data[2]) % n)
	comp := graph.ConnectedComponent(g, start)
	size := 2 + int(data[3])%3 // 2..4 query nodes
	if len(comp) < size {
		return nil, graph.Query{}, false
	}
	sub, _, err := graph.InducedSubgraph(g, comp[:size])
	if err != nil || !graph.IsConnected(sub) || sub.NumEdges() == 0 {
		return nil, graph.Query{}, false
	}
	q, err := graph.NewQuery(sub, graph.NodeID(int(data[4])%size))
	if err != nil {
		return nil, graph.Query{}, false
	}
	return g, q, true
}

// FuzzMatchVsReference cross-checks four independent implementations on
// random small instances: the optimistic and pessimistic PSI evaluators,
// the full-enumeration backtracking engine projected to the pivot, and
// the naive reference oracle. All four must agree on every data node.
func FuzzMatchVsReference(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 1, 2, 2, 3, 0, 2, 3, 4, 1, 3})
	f.Add([]byte{3, 2, 0, 0, 1, 1, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 0})
	f.Add([]byte{5, 0, 7, 7, 7, 7, 7, 7, 7, 7, 0, 1, 1, 2, 0, 2, 2, 4, 4, 6})
	f.Add([]byte{1, 2, 1, 0, 2, 2, 1, 0, 3, 0, 1, 0, 2, 0, 3, 1, 2, 1, 3, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, q, ok := fuzzInstance(data)
		if !ok {
			t.Skip()
		}
		invariant.Enable(true) // deep-check every witness the evaluators find

		width := g.NumLabels()
		if w := q.G.NumLabels(); w > width {
			width = w
		}
		ds := signature.MustBuild(g, signature.DefaultDepth, width, signature.Matrix)
		qs := signature.MustBuild(q.G, signature.DefaultDepth, width, signature.Matrix)
		e, err := NewEvaluator(g, q, ds, qs)
		if err != nil {
			t.Fatalf("NewEvaluator: %v", err)
		}
		c, err := plan.Compile(q, plan.Heuristic(q, g))
		if err != nil {
			t.Fatalf("plan.Compile: %v", err)
		}

		bt, err := match.NewBacktracking(g, q.G)
		if err != nil {
			t.Fatalf("NewBacktracking: %v", err)
		}
		bindings, _, err := match.PivotBindings(bt, q, match.Budget{})
		if err != nil {
			t.Fatalf("PivotBindings: %v", err)
		}
		fromBacktrack := make(map[graph.NodeID]bool, len(bindings))
		for _, u := range bindings {
			fromBacktrack[u] = true
		}

		st := NewState(q.Size())
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			want := referencePSI(g, q, u)
			if fromBacktrack[u] != want {
				t.Fatalf("node %d: backtrack=%v reference=%v (n=%d, qsize=%d)",
					u, fromBacktrack[u], want, g.NumNodes(), q.Size())
			}
			for _, mode := range []Mode{Optimistic, Pessimistic} {
				got, err := e.Evaluate(st, c, u, mode, Limits{})
				if err != nil {
					t.Fatalf("node %d mode %v: %v", u, mode, err)
				}
				if got != want {
					t.Fatalf("node %d mode %v: evaluator=%v reference=%v (n=%d, qsize=%d)",
						u, mode, got, want, g.NumNodes(), q.Size())
				}
			}
		}
	})
}
