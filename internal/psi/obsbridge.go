package psi

import "repro/internal/obs"

// statsPublishers maps every Stats field to its obs counter. The table
// is the single source of truth for PublishStats;
// TestObsPublishStatsCoversAllFields asserts (by reflection) that its
// length tracks the Stats field count, so adding a field without
// publishing it fails the build gate.
var statsPublishers = []struct {
	get     func(Stats) int64
	counter *obs.Counter
}{
	{func(s Stats) int64 { return s.Recursions }, obs.PSIRecursions},
	{func(s Stats) int64 { return s.Candidates }, obs.PSICandidates},
	{func(s Stats) int64 { return s.SigPrunes }, obs.PSISigPrunes},
	{func(s Stats) int64 { return s.DegPrunes }, obs.PSIDegPrunes},
	{func(s Stats) int64 { return s.Sorts }, obs.PSISorts},
	{func(s Stats) int64 { return s.ScoreCalcs }, obs.PSIScoreCalcs},
	{func(s Stats) int64 { return s.CapHits }, obs.PSICapHits},
	{func(s Stats) int64 { return s.Matches }, obs.PSIMatches},
	{func(s Stats) int64 { return s.Deadlines }, obs.PSIDeadlineHits},
	{func(s Stats) int64 { return s.Stops }, obs.PSIStopHits},
}

// PublishStats flushes an aggregated Stats delta into the process-wide
// obs registry: one atomic add per non-zero field. The hot evaluation
// loops never call this — they count into plain State fields — so the
// whole observability layer costs the evaluator nothing per event;
// callers flush once per batch (worker exit, support pass, query end).
// A no-op when collection is disabled.
func PublishStats(s Stats) {
	if !obs.Enabled() {
		return
	}
	for _, p := range statsPublishers {
		if v := p.get(s); v != 0 {
			p.counter.Add(v)
		}
	}
}

// RecordWork copies an aggregated Stats into a query profile's work
// map, keyed by the same registry metric names PublishStats uses. It
// goes through statsPublishers, so the reflection guard that keeps
// PublishStats complete keeps the profiler complete too. Nil-safe
// (profiles are nil when collection is off).
func RecordWork(p *obs.Profile, s Stats) {
	if p == nil {
		return
	}
	for _, pub := range statsPublishers {
		if v := pub.get(s); v != 0 {
			p.SetWork(pub.counter.Name(), v)
		}
	}
}
