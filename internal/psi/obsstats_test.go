package psi

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// fillDistinct sets every Stats field to a distinct non-zero value and
// returns the filled struct. It fails the test if a field is not an
// int64 counter (the Stats contract).
func fillDistinct(t *testing.T, base int64) Stats {
	t.Helper()
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	typ := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() != reflect.Int64 {
			t.Fatalf("Stats.%s is %s; every Stats field must be an int64 counter", typ.Field(i).Name, f.Kind())
		}
		f.SetInt(base + int64(i))
	}
	return s
}

// TestObsStatsMergeCoversAllFields is the reflection guard of the
// canonical merge: a Stats field added without extending Add fails
// here, before any worker pool silently drops its counts.
func TestObsStatsMergeCoversAllFields(t *testing.T) {
	src := fillDistinct(t, 1)
	typ := reflect.TypeOf(src)

	var dst Stats
	dst.Add(src)
	dst.Add(src) // twice: catches `=` where `+=` was meant
	got := reflect.ValueOf(dst)
	var wantTotal int64
	for i := 0; i < got.NumField(); i++ {
		want := 2 * (1 + int64(i))
		wantTotal += 1 + int64(i)
		if g := got.Field(i).Int(); g != want {
			t.Errorf("Stats.Add does not merge field %s: got %d after two merges, want %d — extend Add (and statsPublishers)",
				typ.Field(i).Name, g, want)
		}
	}
	if src.Total() != wantTotal {
		t.Errorf("Stats.Total = %d, want %d — extend Total for the new field", src.Total(), wantTotal)
	}
}

// TestObsPublishStatsCoversAllFields asserts the obs bridge publishes
// every Stats field to its own counter. Coverage is established by
// probing: each field is set alone and must be read by exactly one
// publisher, so a failure names the forgotten fields instead of just
// reporting a count mismatch.
func TestObsPublishStatsCoversAllFields(t *testing.T) {
	typ := reflect.TypeOf(Stats{})
	n := typ.NumField()
	var missing, shared []string
	for i := 0; i < n; i++ {
		var s Stats
		reflect.ValueOf(&s).Elem().Field(i).SetInt(7)
		readers := 0
		for _, p := range statsPublishers {
			if p.get(s) != 0 {
				readers++
			}
		}
		switch readers {
		case 1:
		case 0:
			missing = append(missing, typ.Field(i).Name)
		default:
			shared = append(shared, typ.Field(i).Name)
		}
	}
	if len(missing) > 0 {
		t.Fatalf("statsPublishers does not publish Stats fields %v; map each new field to its own obs counter", missing)
	}
	if len(shared) > 0 {
		t.Fatalf("Stats fields %v are read by multiple statsPublishers entries; each field must feed exactly one counter", shared)
	}
	if len(statsPublishers) != n {
		t.Fatalf("statsPublishers has %d entries for %d Stats fields; some publisher reads no field", len(statsPublishers), n)
	}
	seen := make(map[*obs.Counter]int)
	for i, p := range statsPublishers {
		if p.counter == nil {
			t.Fatalf("statsPublishers[%d] has a nil counter", i)
		}
		if prev, dup := seen[p.counter]; dup {
			t.Fatalf("statsPublishers[%d] and [%d] share counter %s", prev, i, p.counter.Name())
		}
		seen[p.counter] = i
	}

	src := fillDistinct(t, 10)
	prev := obs.Enabled()
	obs.Enable(true)
	defer obs.Enable(prev)
	before := make([]int64, n)
	for i, p := range statsPublishers {
		before[i] = p.counter.Value()
	}
	PublishStats(src)
	v := reflect.ValueOf(src)
	for i, p := range statsPublishers {
		delta := p.counter.Value() - before[i]
		if delta != 10+int64(i) {
			t.Errorf("publisher %d (%s): delta %d, want %d — check get func ordering against Stats field %s",
				i, p.counter.Name(), delta, 10+int64(i), v.Type().Field(i).Name)
		}
	}

	// Disabled: no counter moves.
	obs.Enable(false)
	mid := statsPublishers[0].counter.Value()
	PublishStats(src)
	if got := statsPublishers[0].counter.Value(); got != mid {
		t.Errorf("PublishStats with collection disabled moved %s by %d", statsPublishers[0].counter.Name(), got-mid)
	}
}
