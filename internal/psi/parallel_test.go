package psi

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
)

func TestEvaluateAllParallelAgrees(t *testing.T) {
	g := graphtest.Random(200, 600, 3, 31)
	// The Figure 1 triangle query works over this graph's label space
	// (labels 0, 1, 2 all occur).
	q := graphtest.Figure1Query()
	e := newEvalQuiet(g, q)
	seq, err := EvaluateAll(e, PessimisticOnly, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		par, err := EvaluateAllParallel(e, PessimisticOnly, workers, time.Time{})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par.Bindings) != len(seq.Bindings) {
			t.Fatalf("workers=%d: %d bindings, want %d", workers, len(par.Bindings), len(seq.Bindings))
		}
		for i := range seq.Bindings {
			if par.Bindings[i] != seq.Bindings[i] {
				t.Fatalf("workers=%d: binding %d differs", workers, i)
			}
		}
		if par.Candidates != seq.Candidates {
			t.Errorf("workers=%d: candidates %d, want %d", workers, par.Candidates, seq.Candidates)
		}
	}
	// Optimistic strategy also agrees.
	parOpt, err := EvaluateAllParallel(e, OptimisticOnly, 4, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(parOpt.Bindings) != len(seq.Bindings) {
		t.Errorf("optimistic parallel: %d bindings, want %d", len(parOpt.Bindings), len(seq.Bindings))
	}
}

func TestEvaluateAllParallelRejectsTwoThreaded(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	e := newEvalQuiet(g, q)
	if _, err := EvaluateAllParallel(e, TwoThreaded, 2, time.Time{}); err == nil {
		t.Error("TwoThreaded accepted")
	}
}

func TestEvaluateAllParallelDeadline(t *testing.T) {
	g := graphtest.Random(300, 2000, 1, 9)
	qb := graphtest.Random(5, 6, 1, 10)
	if !graph.IsConnected(qb) {
		t.Skip("random query disconnected for this seed")
	}
	q, err := graph.NewQuery(qb, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := newEvalQuiet(g, q)
	_, err = EvaluateAllParallel(e, PessimisticOnly, 4, time.Now().Add(-time.Second))
	if err != ErrDeadline {
		t.Errorf("expired deadline: err = %v, want ErrDeadline", err)
	}
}
