// Package psi implements the paper's two pivoted-subgraph-isomorphism
// evaluation methods (Algorithm 1): the optimistic greedy best-first
// search of Section 3.3 (with its super-optimistic capped first pass) and
// the pessimistic signature-pruned search of Section 3.4, plus the
// two-threaded racing baseline of Section 4.1.
//
// An Evaluator answers the per-node question "is data node u a valid
// binding of the query pivot?"; package smartpsi layers candidate
// extraction, machine-learned method/plan selection, caching and
// preemption on top.
package psi

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/signature"
)

// Mode selects the evaluation method of Algorithm 1.
type Mode int

const (
	// Optimistic sorts candidates by satisfiability score, descending,
	// running the capped super-optimistic pass first (Section 3.3).
	Optimistic Mode = iota
	// Pessimistic prunes candidates whose signature does not satisfy the
	// query node's signature (Section 3.4, Proposition 3.2).
	Pessimistic
)

// Opposite returns the other method, used by preemptive recovery.
func (m Mode) Opposite() Mode {
	if m == Optimistic {
		return Pessimistic
	}
	return Optimistic
}

func (m Mode) String() string {
	switch m {
	case Optimistic:
		return "optimistic"
	case Pessimistic:
		return "pessimistic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// SuperOptimisticCap is the candidate-set cap of the super-optimistic
// first pass; the paper uses 10.
const SuperOptimisticCap = 10

// ErrDeadline reports that an evaluation exceeded its deadline.
var ErrDeadline = errors.New("psi: evaluation deadline exceeded")

// ErrStopped reports that an evaluation was cancelled via its stop flag.
var ErrStopped = errors.New("psi: evaluation stopped")

// Limits bounds a single node evaluation. The zero value means no limits.
type Limits struct {
	// Deadline aborts the evaluation with ErrDeadline once passed.
	// The zero time means no deadline.
	Deadline time.Time
	// Stop, when non-nil and set, aborts the evaluation with ErrStopped.
	// The two-threaded baseline uses it to cancel the losing method.
	Stop *atomic.Bool
}

// Stats counts the work one or more evaluations performed. Every field
// must be an int64 event counter: Add (the canonical merge used by all
// worker pools) and PublishStats (the bridge into the internal/obs
// registry) are both covered by reflection-based tests that fail when a
// field is added but not merged or published.
type Stats struct {
	Recursions int64 // backtracking steps entered
	Candidates int64 // candidate bindings examined
	SigPrunes  int64 // candidates pruned by signature satisfaction
	DegPrunes  int64 // candidates pruned by the degree lower bound (pessimistic)
	Sorts      int64 // candidate sorts performed (optimistic)
	ScoreCalcs int64 // satisfiability scores computed
	CapHits    int64 // super-optimistic candidate-cap truncations
	Matches    int64 // full query embeddings found (successful evaluations)
	Deadlines  int64 // evaluations aborted by the deadline
	Stops      int64 // evaluations aborted by the stop flag
}

// Add accumulates other into s. It is the single canonical Stats merge:
// worker pools (EvaluateAllParallel, smartpsi's candidate workers) must
// use it rather than ad-hoc field adds, so that a new field added here
// propagates everywhere (TestObsStatsMergeCoversAllFields enforces the
// field coverage).
func (s *Stats) Add(other Stats) {
	s.Recursions += other.Recursions
	s.Candidates += other.Candidates
	s.SigPrunes += other.SigPrunes
	s.DegPrunes += other.DegPrunes
	s.Sorts += other.Sorts
	s.ScoreCalcs += other.ScoreCalcs
	s.CapHits += other.CapHits
	s.Matches += other.Matches
	s.Deadlines += other.Deadlines
	s.Stops += other.Stops
}

// Total returns the sum of every counter — a coarse "events that would
// flow into obs" figure used by the overhead guard.
func (s Stats) Total() int64 {
	return s.Recursions + s.Candidates + s.SigPrunes + s.DegPrunes + s.Sorts +
		s.ScoreCalcs + s.CapHits + s.Matches + s.Deadlines + s.Stops
}

// Evaluator answers pivot-binding questions for one (data graph, query)
// pair. It is immutable after construction and safe for concurrent use;
// per-evaluation state lives in a State, which is not.
type Evaluator struct {
	g        *graph.Graph
	query    graph.Query
	dataSigs *signature.Signatures
	qSigs    *signature.Signatures
	// sparse holds each query node's positive signature entries, so the
	// hot satisfaction and score loops touch only the labels that occur
	// within D hops of the query node instead of the whole alphabet.
	sparse [][]sigEntry
	// prune holds, per query node, the highest-weight sparse entries
	// (the ones a non-matching data node is most likely to miss).
	// Checking only these keeps Proposition 3.2 pruning sound — skipping
	// entries can only let more candidates through — at a fraction of
	// the full check's cost.
	prune [][]sigEntry
}

// maxPruneEntries caps the per-node satisfaction check.
const maxPruneEntries = 8

type sigEntry struct {
	label  int32
	weight float64
}

// NewEvaluator builds an evaluator. dataSigs and querySigs must have been
// built with the same method, depth, and width (signature satisfaction is
// only sound when both sides count walks the same way).
func NewEvaluator(g *graph.Graph, q graph.Query, dataSigs, querySigs *signature.Signatures) (*Evaluator, error) {
	if dataSigs.Width() != querySigs.Width() {
		return nil, fmt.Errorf("psi: signature widths differ (%d vs %d)", dataSigs.Width(), querySigs.Width())
	}
	if dataSigs.Depth() != querySigs.Depth() {
		return nil, fmt.Errorf("psi: signature depths differ (%d vs %d)", dataSigs.Depth(), querySigs.Depth())
	}
	if dataSigs.NumNodes() != g.NumNodes() {
		return nil, fmt.Errorf("psi: data signatures cover %d nodes, graph has %d", dataSigs.NumNodes(), g.NumNodes())
	}
	if querySigs.NumNodes() != q.G.NumNodes() {
		return nil, fmt.Errorf("psi: query signatures cover %d nodes, query has %d", querySigs.NumNodes(), q.G.NumNodes())
	}
	e := &Evaluator{g: g, query: q, dataSigs: dataSigs, qSigs: querySigs}
	e.sparse = make([][]sigEntry, q.G.NumNodes())
	e.prune = make([][]sigEntry, q.G.NumNodes())
	for v := 0; v < q.G.NumNodes(); v++ {
		row := querySigs.Row(graph.NodeID(v))
		for l, w := range row {
			if w > 0 {
				e.sparse[v] = append(e.sparse[v], sigEntry{label: int32(l), weight: w})
			}
		}
		pr := append([]sigEntry(nil), e.sparse[v]...)
		sort.Slice(pr, func(i, j int) bool { return pr[i].weight > pr[j].weight })
		if len(pr) > maxPruneEntries {
			pr = pr[:maxPruneEntries]
		}
		e.prune[v] = pr
	}
	return e, nil
}

// satisfies is the capped sparse form of signature.Satisfies for query
// node v: the highest-weight entries checked first, so non-matching
// candidates fail as early as possible.
func (e *Evaluator) satisfies(dataRow []float64, v graph.NodeID) bool {
	for _, entry := range e.prune[v] {
		if dataRow[entry.label] < entry.weight {
			return false
		}
	}
	return true
}

// score is the sparse form of signature.Score for query node v.
func (e *Evaluator) score(dataRow []float64, v graph.NodeID) float64 {
	entries := e.sparse[v]
	if len(entries) == 0 {
		return 0
	}
	var sum float64
	for _, entry := range entries {
		sum += dataRow[entry.label] / entry.weight
	}
	return sum / float64(len(entries))
}

// Graph returns the data graph the evaluator works on.
func (e *Evaluator) Graph() *graph.Graph { return e.g }

// Query returns the pivoted query.
func (e *Evaluator) Query() graph.Query { return e.query }

// DataSignatures returns the data-node signatures.
func (e *Evaluator) DataSignatures() *signature.Signatures { return e.dataSigs }

// QuerySignatures returns the query-node signatures.
func (e *Evaluator) QuerySignatures() *signature.Signatures { return e.qSigs }

// State holds the mutable per-evaluation scratch. Reusing a State across
// evaluations avoids rebinding allocations; a State must not be shared
// between goroutines.
type State struct {
	bound  []graph.NodeID
	cands  [][]scored // per-depth candidate scratch
	stats  Stats
	limits Limits
	steps  int64 // work counter for amortized deadline checks
	// noSigPrune disables Proposition 3.2 pruning (ablation only).
	noSigPrune bool
	// fun, when non-nil, receives per-depth candidate-funnel events
	// (generated → deg-ok → sig-ok → recursed → matched) for the query
	// profiler. The hot loops pay one plain nil check per depth, no
	// locks or atomics: smartpsi attaches one Funnel per worker State
	// and merges it into the owning obs.Profile at batch boundaries.
	fun *obs.Funnel
}

type scored struct {
	node  graph.NodeID
	score float64
}

// NewState returns a State sized for queries up to maxQuerySize nodes.
func NewState(maxQuerySize int) *State {
	s := &State{
		bound: make([]graph.NodeID, 0, maxQuerySize),
		cands: make([][]scored, maxQuerySize),
	}
	return s
}

// Stats returns the accumulated work counters.
func (s *State) Stats() Stats { return s.stats }

// ResetStats zeroes the work counters.
func (s *State) ResetStats() { s.stats = Stats{} }

// SetFunnel attaches (or, with nil, detaches) a candidate funnel that
// subsequent evaluations fill per plan depth.
func (s *State) SetFunnel(f *obs.Funnel) { s.fun = f }

// Funnel returns the attached candidate funnel (nil when profiling is
// off).
func (s *State) Funnel() *obs.Funnel { return s.fun }

const deadlineCheckMask = 255 // check the clock every 256 work units

func (s *State) tick() error {
	s.steps++
	if s.limits.Stop != nil && s.limits.Stop.Load() {
		s.stats.Stops++
		return ErrStopped
	}
	if !s.limits.Deadline.IsZero() && s.steps&deadlineCheckMask == 0 {
		if time.Now().After(s.limits.Deadline) {
			s.stats.Deadlines++
			return ErrDeadline
		}
	}
	return nil
}

// Evaluate reports whether data node u is a valid binding of the query
// pivot, following compiled plan c in the given mode. The plan's first
// step must bind the pivot (guaranteed by plan.Compile). A non-nil error
// (ErrDeadline or ErrStopped) means the evaluation was aborted and the
// boolean is meaningless.
func (e *Evaluator) Evaluate(st *State, c *plan.Compiled, u graph.NodeID, mode Mode, limits Limits) (bool, error) {
	if mode == Optimistic {
		// Super-optimistic first: cheap capped search that often finds a
		// match immediately. Its "no" is not a proof, so fall through to
		// the exhaustive optimistic pass.
		found, err := e.run(st, c, u, Optimistic, true, limits)
		if err != nil || found {
			return found, err
		}
		return e.run(st, c, u, Optimistic, false, limits)
	}
	return e.run(st, c, u, mode, false, limits)
}

// EvaluateNoSuper is Evaluate without the super-optimistic first pass,
// used by the ablation benchmarks.
func (e *Evaluator) EvaluateNoSuper(st *State, c *plan.Compiled, u graph.NodeID, mode Mode, limits Limits) (bool, error) {
	return e.run(st, c, u, mode, false, limits)
}

// EvaluateNoSigPrune is pessimistic evaluation with the Proposition 3.2
// signature pruning disabled (label, degree and adjacency checks only),
// used by the ablation benchmarks to isolate the pruning's value.
func (e *Evaluator) EvaluateNoSigPrune(st *State, c *plan.Compiled, u graph.NodeID, limits Limits) (bool, error) {
	st.noSigPrune = true
	defer func() { st.noSigPrune = false }()
	return e.run(st, c, u, Pessimistic, false, limits)
}

func (e *Evaluator) run(st *State, c *plan.Compiled, u graph.NodeID, mode Mode, super bool, limits Limits) (bool, error) {
	st.limits = limits
	st.bound = st.bound[:0]
	// Check the limits once up front so an already-expired deadline or a
	// set stop flag aborts even evaluations too small to hit a tick.
	if limits.Stop != nil && limits.Stop.Load() {
		st.stats.Stops++
		return false, ErrStopped
	}
	if !limits.Deadline.IsZero() && time.Now().After(limits.Deadline) {
		st.stats.Deadlines++
		return false, ErrDeadline
	}
	if len(st.cands) < len(c.Steps) {
		st.cands = make([][]scored, len(c.Steps))
	}

	// Step 0: the pivot binding is supplied by the caller.
	step0 := &c.Steps[0]
	if e.g.Label(u) != step0.Label {
		return false, nil
	}
	st.stats.Candidates++
	var fd *obs.FunnelDepth
	if st.fun != nil {
		// Grow the funnel to the full plan depth up front so the row
		// pointers taken here and in extend stay valid for the whole
		// recursion (At never reallocates afterwards).
		st.fun.At(len(c.Steps) - 1)
		fd = st.fun.At(0)
		fd.Generated++
	}
	if mode == Pessimistic {
		if e.g.Degree(u) < step0.Degree {
			st.stats.DegPrunes++
			return false, nil
		}
		if !st.noSigPrune && !e.satisfies(e.dataSigs.Row(u), step0.QueryNode) {
			st.stats.SigPrunes++
			if fd != nil {
				fd.DegOK++
			}
			return false, nil
		}
	}
	if fd != nil {
		fd.DegOK++
		fd.SigOK++
		fd.Recursed++
	}
	st.bound = append(st.bound, u)
	found, err := e.extend(st, c, 1, mode, super)
	if found && err == nil {
		st.stats.Matches++
		if fd != nil {
			fd.Matched++
		}
	}
	return found, err
}

// extend recursively binds the query node at plan position depth.
func (e *Evaluator) extend(st *State, c *plan.Compiled, depth int, mode Mode, super bool) (bool, error) {
	if depth == len(c.Steps) {
		// Full mapping (Algorithm 1, line 1). With deep checking on,
		// verify the witness before reporting the pivot binding valid:
		// st.bound is plan-ordered and complete exactly here.
		if invariant.Enabled() {
			if err := e.checkWitness(st, c); err != nil {
				return false, err
			}
		}
		return true, nil
	}
	if err := st.tick(); err != nil {
		return false, err
	}
	st.stats.Recursions++
	step := &c.Steps[depth]
	anchor := st.bound[step.Anchor]

	// Candidate generation: the anchor's neighbors with the right label
	// (and edge label when the query edge carries one).
	lo, hi := e.g.NeighborRangeWithLabel(anchor, step.Label)
	nbrs := e.g.Neighbors(anchor)
	cands := st.cands[depth][:0]
	qn := step.QueryNode
	var fd *obs.FunnelDepth
	if st.fun != nil {
		fd = st.fun.At(depth) // pre-grown in run; no reallocation here
	}
	for i := lo; i < hi; i++ {
		cand := nbrs[i]
		if super && len(cands) >= SuperOptimisticCap {
			st.stats.CapHits++
			break // GetLimitedCandidates (Algorithm 1, line 4)
		}
		st.stats.Candidates++
		if fd != nil {
			fd.Generated++
		}
		if step.AnchorEdgeLabel != graph.NoLabel && e.g.EdgeLabelAt(anchor, i) != step.AnchorEdgeLabel {
			continue
		}
		if e.isBound(st, cand) {
			continue // injectivity
		}
		if !e.checkEdges(st, step, cand) {
			continue
		}
		switch mode {
		case Pessimistic:
			// Aggressive pruning: degree then signature (line 7).
			if e.g.Degree(cand) < step.Degree {
				st.stats.DegPrunes++
				continue
			}
			if fd != nil {
				fd.DegOK++
			}
			if !st.noSigPrune && !e.satisfies(e.dataSigs.Row(cand), qn) {
				st.stats.SigPrunes++
				continue
			}
			cands = append(cands, scored{node: cand})
		case Optimistic:
			st.stats.ScoreCalcs++
			if fd != nil {
				fd.DegOK++
			}
			cands = append(cands, scored{node: cand, score: e.score(e.dataSigs.Row(cand), qn)})
		}
		if fd != nil {
			fd.SigOK++
		}
	}
	if mode == Optimistic && len(cands) > 1 {
		st.stats.Sorts++
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].score != cands[j].score {
				return cands[i].score > cands[j].score
			}
			return cands[i].node < cands[j].node
		})
	}
	st.cands[depth] = cands // keep grown capacity

	for _, cand := range cands {
		if fd != nil {
			fd.Recursed++
		}
		st.bound = append(st.bound, cand.node)
		ok, err := e.extend(st, c, depth+1, mode, super)
		st.bound = st.bound[:len(st.bound)-1]
		if err != nil {
			return false, err
		}
		if ok {
			if fd != nil {
				fd.Matched++
			}
			return true, nil // stop at the first full mapping
		}
	}
	return false, nil
}

// checkWitness deep-validates the complete plan-ordered binding in
// st.bound as an embedding of the query (injectivity, label and edge
// preservation). Only called when invariant checking is enabled.
func (e *Evaluator) checkWitness(st *State, c *plan.Compiled) error {
	mapping := make([]graph.NodeID, e.query.G.NumNodes())
	for i := range mapping {
		mapping[i] = -1
	}
	for pos, u := range st.bound {
		mapping[c.Steps[pos].QueryNode] = u
	}
	return invariant.CheckEmbedding(e.g, e.query, mapping)
}

func (e *Evaluator) isBound(st *State, u graph.NodeID) bool {
	for _, b := range st.bound {
		if b == u {
			return true
		}
	}
	return false
}

// checkEdges verifies the non-anchor adjacency constraints of step for
// candidate cand against the current bindings.
func (e *Evaluator) checkEdges(st *State, step *plan.Step, cand graph.NodeID) bool {
	for _, chk := range step.Checks {
		other := st.bound[chk.Pos]
		if chk.EdgeLabel == graph.NoLabel {
			if !e.g.HasEdge(cand, other) {
				return false
			}
		} else {
			l, ok := e.g.EdgeLabel(cand, other)
			if !ok || l != chk.EdgeLabel {
				return false
			}
		}
	}
	return true
}
