package psi

import (
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/plan"
)

// RaceResult reports the outcome of a two-threaded evaluation of one
// candidate node.
type RaceResult struct {
	Valid  bool
	Winner Mode          // the method that finished first
	Took   time.Duration // wall time of the winning method
}

// Race evaluates candidate u with the optimistic and pessimistic methods
// concurrently (the Section 4.1 baseline): each runs in its own
// goroutine, the first to finish cancels the other. Both goroutines get
// fresh States, so the cost the paper criticizes — double resource use
// plus per-node thread churn — is faithfully reproduced.
func (e *Evaluator) Race(c *plan.Compiled, u graph.NodeID, limits Limits) (RaceResult, error) {
	type outcome struct {
		valid bool
		err   error
		mode  Mode
		took  time.Duration
	}
	results := make(chan outcome, 2)
	var stop atomic.Bool
	start := time.Now()
	for _, mode := range []Mode{Optimistic, Pessimistic} {
		go func(m Mode) {
			st := NewState(e.query.Size())
			lim := limits
			lim.Stop = &stop
			valid, err := e.Evaluate(st, c, u, m, lim)
			// The two-threaded baseline discards its per-goroutine
			// states, so this flush is the only place their work
			// counters become visible.
			PublishStats(st.Stats())
			results <- outcome{valid: valid, err: err, mode: m, took: time.Since(start)}
		}(mode)
	}
	first := <-results
	if first.err == nil {
		stop.Store(true)
		<-results // reap the loser
		return RaceResult{Valid: first.valid, Winner: first.mode, Took: first.took}, nil
	}
	// The first finisher failed (deadline/external stop); the second may
	// still have succeeded before noticing.
	second := <-results
	if second.err == nil {
		return RaceResult{Valid: second.valid, Winner: second.mode, Took: second.took}, nil
	}
	return RaceResult{}, first.err
}
