package psi

import (
	"time"

	"repro/internal/graph"
	"repro/internal/plan"
)

// Strategy selects how a whole-graph PSI evaluation picks the per-node
// method. These are the single-strategy competitors of Figures 9 and 10;
// the learned strategy lives in package smartpsi.
type Strategy int

const (
	// OptimisticOnly evaluates every candidate with the optimistic method.
	OptimisticOnly Strategy = iota
	// PessimisticOnly evaluates every candidate with the pessimistic method.
	PessimisticOnly
	// TwoThreaded races both methods per candidate (Section 4.1).
	TwoThreaded
)

func (s Strategy) String() string {
	switch s {
	case OptimisticOnly:
		return "optimistic-only"
	case PessimisticOnly:
		return "pessimistic-only"
	case TwoThreaded:
		return "two-threaded"
	default:
		return "unknown-strategy"
	}
}

// Result is the outcome of a whole-graph PSI evaluation: the distinct
// data nodes that bind the query pivot, plus work counters.
type Result struct {
	Bindings   []graph.NodeID
	Candidates int   // label-matching nodes examined
	Stats      Stats // zero for TwoThreaded (per-goroutine states are discarded)
	Elapsed    time.Duration
}

// EvaluateAll runs the full PSI query with a fixed strategy and the
// heuristic plan — the paper's optimistic-only, pessimistic-only and
// two-threaded baselines. A deadline of zero means no limit.
func EvaluateAll(e *Evaluator, strategy Strategy, deadline time.Time) (Result, error) {
	c, err := plan.Compile(e.query, plan.Heuristic(e.query, e.g))
	if err != nil {
		return Result{}, err
	}
	return EvaluateAllWithPlan(e, strategy, c, deadline)
}

// EvaluateAllWithPlan is EvaluateAll with a caller-chosen compiled plan.
func EvaluateAllWithPlan(e *Evaluator, strategy Strategy, c *plan.Compiled, deadline time.Time) (Result, error) {
	start := time.Now()
	limits := Limits{Deadline: deadline}
	var res Result
	st := NewState(e.query.Size())
	pivotLabel := e.query.G.Label(e.query.Pivot)
	for _, u := range e.g.NodesWithLabel(pivotLabel) {
		res.Candidates++
		var valid bool
		var err error
		switch strategy {
		case OptimisticOnly:
			valid, err = e.Evaluate(st, c, u, Optimistic, limits)
		case PessimisticOnly:
			valid, err = e.Evaluate(st, c, u, Pessimistic, limits)
		case TwoThreaded:
			var rr RaceResult
			rr, err = e.Race(c, u, limits)
			valid = rr.Valid
		}
		if err != nil {
			return res, err
		}
		if valid {
			res.Bindings = append(res.Bindings, u)
		}
	}
	res.Stats = st.Stats()
	res.Elapsed = time.Since(start)
	PublishStats(res.Stats)
	return res, nil
}
