package psi

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
	"repro/internal/plan"
)

// TestFigure3OptimisticOrdering reproduces the behaviour of the paper's
// Figure 3: when evaluating a valid node, the optimistic method's
// score-descending candidate ordering reaches the match with fewer
// traversals than unordered evaluation.
//
// Construction: pivot a0 (A) has ten decoy B neighbors whose C neighbor
// does not close the triangle, and one good B neighbor (the highest
// node id, so unordered label-sorted iteration visits it last) whose C
// neighbor is also adjacent to a0. The good B's neighborhood is richer
// (its C connects back to a0), giving it the highest satisfiability
// score, so the optimistic method tries it first.
func TestFigure3OptimisticOrdering(t *testing.T) {
	b := graph.NewBuilder(64, 128)
	a0 := b.AddNode(graphtest.LabelA)
	const decoys = 10
	for i := 0; i < decoys; i++ {
		d := b.AddNode(graphtest.LabelB)
		c := b.AddNode(graphtest.LabelC)
		// The dangling A keeps the decoy's signature rich enough to
		// satisfy the query node (so the pessimist cannot prune it) while
		// the triangle still fails on the a0–c adjacency check.
		dummy := b.AddNode(graphtest.LabelA)
		for _, e := range [][2]graph.NodeID{{a0, d}, {d, c}, {c, dummy}} {
			if err := b.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	good := b.AddNode(graphtest.LabelB) // highest B id
	cGood := b.AddNode(graphtest.LabelC)
	// Two A's reachable through cGood give the good branch a strictly
	// higher satisfiability score than the decoys.
	dummyGood := b.AddNode(graphtest.LabelA)
	for _, e := range [][2]graph.NodeID{{a0, good}, {good, cGood}, {a0, cGood}, {cGood, dummyGood}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	q := graphtest.Figure1Query() // A-B-C triangle, pivot A
	e := newEvalQuiet(g, q)
	c := plan.MustCompile(q, plan.Plan{0, 1, 2})

	// Optimistic without the super-optimistic cap (the cap would slice
	// the candidate list before sorting, which is a separate mechanism).
	stOpt := NewState(q.Size())
	okOpt, err := e.EvaluateNoSuper(stOpt, c, a0, Optimistic, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	stPess := NewState(q.Size())
	okPess, err := e.Evaluate(stPess, c, a0, Pessimistic, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !okOpt || !okPess {
		t.Fatalf("a0 should be valid (opt=%v pess=%v)", okOpt, okPess)
	}
	// The optimist recurses straight into the good branch; the pessimist
	// (no ordering, decoy signatures satisfy the query node since their
	// neighborhoods contain A and C) wades through the decoys first.
	if stOpt.Stats().Recursions >= stPess.Stats().Recursions {
		t.Errorf("optimistic recursions %d >= pessimistic %d; ordering gave no benefit",
			stOpt.Stats().Recursions, stPess.Stats().Recursions)
	}
}

// TestFigure4PessimisticPruning reproduces the behaviour of the paper's
// Figure 4: on an invalid node the pessimist reaches its verdict by
// signature pruning without paying the optimist's score-and-sort
// overhead.
func TestFigure4PessimisticPruning(t *testing.T) {
	// Same structure as Figure 3's fixture, but the evaluated pivot
	// `bad` connects only to decoy B's — no closing triangle exists.
	b := graph.NewBuilder(64, 128)
	bad := b.AddNode(graphtest.LabelA)
	const decoys = 10
	for i := 0; i < decoys; i++ {
		d := b.AddNode(graphtest.LabelB)
		c := b.AddNode(graphtest.LabelC)
		dummy := b.AddNode(graphtest.LabelA)
		for _, e := range [][2]graph.NodeID{{bad, d}, {d, c}, {c, dummy}} {
			if err := b.AddEdge(e[0], e[1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A C neighbor keeps bad's own signature satisfiable (it needs a C
	// within reach) without closing any triangle.
	cFar := b.AddNode(graphtest.LabelC)
	if err := b.AddEdge(bad, cFar); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	q := graphtest.Figure1Query()
	e := newEvalQuiet(g, q)
	c := plan.MustCompile(q, plan.Plan{0, 1, 2})

	stOpt := NewState(q.Size())
	okOpt, err := e.EvaluateNoSuper(stOpt, c, bad, Optimistic, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	stPess := NewState(q.Size())
	okPess, err := e.Evaluate(stPess, c, bad, Pessimistic, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if okOpt || okPess {
		t.Fatalf("bad should be invalid (opt=%v pess=%v)", okOpt, okPess)
	}
	if stPess.Stats().Sorts != 0 || stPess.Stats().ScoreCalcs != 0 {
		t.Errorf("pessimist paid ordering costs: %+v", stPess.Stats())
	}
	opt := stOpt.Stats()
	if opt.ScoreCalcs == 0 {
		t.Errorf("optimist computed no scores on the invalid node: %+v", opt)
	}
	if stPess.Stats().Recursions > opt.Recursions {
		t.Errorf("pessimist recursed more (%d) than the optimist (%d)",
			stPess.Stats().Recursions, opt.Recursions)
	}
}
