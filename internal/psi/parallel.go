package psi

import (
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
)

// EvaluateAllParallel is EvaluateAll with a worker pool: candidates are
// partitioned across `workers` goroutines, each with its own State. Only
// the single-method strategies benefit (TwoThreaded already spawns its
// own goroutines per node and is rejected). Bindings are returned in
// ascending order; per-worker stats are summed.
func EvaluateAllParallel(e *Evaluator, strategy Strategy, workers int, deadline time.Time) (Result, error) {
	if strategy == TwoThreaded {
		return Result{}, errTwoThreadedParallel
	}
	if workers < 1 {
		workers = 1
	}
	c, err := plan.Compile(e.query, plan.Heuristic(e.query, e.g))
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	limits := Limits{Deadline: deadline}
	candidates := e.g.NodesWithLabel(e.query.G.Label(e.query.Pivot))
	res := Result{Candidates: len(candidates)}
	if len(candidates) == 0 {
		res.Elapsed = time.Since(start)
		return res, nil
	}
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if obs.Enabled() {
		obs.PSIParallelRuns.Inc()
		obs.PSIParallelWorkers.Add(int64(workers))
		defer obs.PSIParallelWorkers.Add(-int64(workers))
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, workers)
	chunk := (len(candidates) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, nodes []graph.NodeID) {
			defer wg.Done()
			st := NewState(e.query.Size())
			var local []graph.NodeID
			mode := Optimistic
			if strategy == PessimisticOnly {
				mode = Pessimistic
			}
			for _, u := range nodes {
				valid, err := e.Evaluate(st, c, u, mode, limits)
				if err != nil {
					errs[w] = err
					return
				}
				if valid {
					local = append(local, u)
				}
			}
			mu.Lock()
			res.Bindings = append(res.Bindings, local...)
			res.Stats.Add(st.Stats())
			mu.Unlock()
		}(w, candidates[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	sort.Slice(res.Bindings, func(i, j int) bool { return res.Bindings[i] < res.Bindings[j] })
	res.Elapsed = time.Since(start)
	// One flush for the whole pool: the per-worker states were merged
	// into res.Stats by the canonical Stats.Add above.
	PublishStats(res.Stats)
	return res, nil
}

var errTwoThreadedParallel = errorString("psi: TwoThreaded cannot be combined with EvaluateAllParallel")

type errorString string

func (e errorString) Error() string { return string(e) }
