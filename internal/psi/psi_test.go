package psi

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
	"repro/internal/plan"
	"repro/internal/signature"
)

// newEval builds an evaluator with matrix signatures at depth 2 for both
// sides, as SmartPSI does.
func newEval(t testing.TB, g *graph.Graph, q graph.Query) *Evaluator {
	t.Helper()
	width := g.NumLabels()
	if w := q.G.NumLabels(); w > width {
		width = w
	}
	ds := signature.MustBuild(g, signature.DefaultDepth, width, signature.Matrix)
	qs := signature.MustBuild(q.G, signature.DefaultDepth, width, signature.Matrix)
	e, err := NewEvaluator(g, q, ds, qs)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// referencePSI is a trivially-correct PSI oracle: naive backtracking over
// all label-preserving injective extensions, no pruning, no ordering.
func referencePSI(g *graph.Graph, q graph.Query, u graph.NodeID) bool {
	n := q.G.NumNodes()
	mapping := make([]graph.NodeID, n)
	for i := range mapping {
		mapping[i] = -1
	}
	if g.Label(u) != q.G.Label(q.Pivot) {
		return false
	}
	mapping[q.Pivot] = u
	var rec func() bool
	rec = func() bool {
		// Find an unmapped query node adjacent to a mapped one.
		next := graph.NodeID(-1)
		for v := graph.NodeID(0); int(v) < n; v++ {
			if mapping[v] >= 0 {
				continue
			}
			for _, w := range q.G.Neighbors(v) {
				if mapping[w] >= 0 {
					next = v
					break
				}
			}
			if next >= 0 {
				break
			}
		}
		if next < 0 {
			// All mapped (connected query) — verify every edge.
			for v := graph.NodeID(0); int(v) < n; v++ {
				for i, w := range q.G.Neighbors(v) {
					if v > w {
						continue
					}
					el, ok := g.EdgeLabel(mapping[v], mapping[w])
					if !ok {
						return false
					}
					if ql := q.G.EdgeLabelAt(v, i); ql != graph.NoLabel && el != ql {
						return false
					}
				}
			}
			return true
		}
		for c := graph.NodeID(0); int(c) < g.NumNodes(); c++ {
			if g.Label(c) != q.G.Label(next) {
				continue
			}
			used := false
			for _, m := range mapping {
				if m == c {
					used = true
					break
				}
			}
			if used {
				continue
			}
			mapping[next] = c
			if rec() {
				mapping[next] = -1
				return true
			}
			mapping[next] = -1
		}
		return false
	}
	return rec()
}

func TestFigure1BothModes(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	e := newEval(t, g, q)
	c := plan.MustCompile(q, plan.Heuristic(q, g))
	want := map[graph.NodeID]bool{0: true, 5: true} // u1 and u6
	for _, mode := range []Mode{Optimistic, Pessimistic} {
		st := NewState(q.Size())
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			valid, err := e.Evaluate(st, c, u, mode, Limits{})
			if err != nil {
				t.Fatalf("%v node %d: %v", mode, u, err)
			}
			if valid != want[u] {
				t.Errorf("%v: node %d valid = %v, want %v", mode, u, valid, want[u])
			}
		}
	}
}

func TestAgainstReferenceOracle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(14, 30, 3, seed)
		// Extract a connected query of 3-5 nodes from g itself.
		start := graph.NodeID(rng.Intn(g.NumNodes()))
		comp := graph.ConnectedComponent(g, start)
		size := 3 + rng.Intn(3)
		if len(comp) < size {
			return true
		}
		sub, _, err := graph.InducedSubgraph(g, comp[:size])
		if err != nil || !graph.IsConnected(sub) {
			return true
		}
		q, err := graph.NewQuery(sub, graph.NodeID(rng.Intn(size)))
		if err != nil {
			return false
		}
		width := g.NumLabels()
		if w := sub.NumLabels(); w > width {
			width = w
		}
		ds := signature.MustBuild(g, 2, width, signature.Matrix)
		qs := signature.MustBuild(sub, 2, width, signature.Matrix)
		e, err := NewEvaluator(g, q, ds, qs)
		if err != nil {
			return false
		}
		c, err := plan.Compile(q, plan.Heuristic(q, g))
		if err != nil {
			return false
		}
		st := NewState(q.Size())
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			want := referencePSI(g, q, u)
			for _, mode := range []Mode{Optimistic, Pessimistic} {
				got, err := e.Evaluate(st, c, u, mode, Limits{})
				if err != nil {
					return false
				}
				if got != want {
					t.Logf("seed %d node %d mode %v: got %v want %v", seed, u, mode, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestModesAgreeAcrossPlans(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(16, 36, 3, seed)
		comp := graph.ConnectedComponent(g, graph.NodeID(rng.Intn(g.NumNodes())))
		if len(comp) < 4 {
			return true
		}
		sub, _, err := graph.InducedSubgraph(g, comp[:4])
		if err != nil || !graph.IsConnected(sub) {
			return true
		}
		q, _ := graph.NewQuery(sub, 0)
		e := newEvalQuiet(g, q)
		plans := plan.Enumerate(q, 6)
		var want []bool
		for pi, p := range plans {
			c := plan.MustCompile(q, p)
			st := NewState(q.Size())
			for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
				got, err := e.Evaluate(st, c, u, Pessimistic, Limits{})
				if err != nil {
					return false
				}
				if pi == 0 {
					want = append(want, got)
				} else if got != want[u] {
					return false // result must be plan-independent
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func newEvalQuiet(g *graph.Graph, q graph.Query) *Evaluator {
	width := g.NumLabels()
	if w := q.G.NumLabels(); w > width {
		width = w
	}
	ds := signature.MustBuild(g, 2, width, signature.Matrix)
	qs := signature.MustBuild(q.G, 2, width, signature.Matrix)
	e, err := NewEvaluator(g, q, ds, qs)
	if err != nil {
		panic(err)
	}
	return e
}

func TestEvaluatorConstructionErrors(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	ds := signature.MustBuild(g, 2, 3, signature.Matrix)
	qs := signature.MustBuild(q.G, 2, 3, signature.Matrix)
	wide := signature.MustBuild(q.G, 2, 5, signature.Matrix)
	shallow := signature.MustBuild(q.G, 1, 3, signature.Matrix)
	if _, err := NewEvaluator(g, q, ds, wide); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := NewEvaluator(g, q, ds, shallow); err == nil {
		t.Error("depth mismatch accepted")
	}
	if _, err := NewEvaluator(g, q, qs, qs); err == nil {
		t.Error("node-count mismatch accepted")
	}
	if _, err := NewEvaluator(g, q, ds, qs); err != nil {
		t.Errorf("valid construction rejected: %v", err)
	}
}

func TestSuperOptimisticFindsMatchBeyondCap(t *testing.T) {
	// Star data graph: hub A connected to 30 B-leaves; only the LAST leaf
	// (highest id, lowest tie-break priority) also closes a triangle via
	// an extra C node. Query: A-B-C triangle. The super pass may miss it
	// (cap 10), but Evaluate must still return true via the full pass.
	b := graph.NewBuilder(33, 40)
	hub := b.AddNode(0) // A
	var leaves []graph.NodeID
	for i := 0; i < 30; i++ {
		leaves = append(leaves, b.AddNode(1)) // B
	}
	c := b.AddNode(2) // C
	for _, l := range leaves {
		if err := b.AddEdge(hub, l); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(hub, c); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(leaves[len(leaves)-1], c); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	q := graphtest.Figure1Query() // A-B-C triangle, pivot A
	e := newEval(t, g, q)
	cp := plan.MustCompile(q, plan.Plan{0, 1, 2})
	st := NewState(q.Size())
	valid, err := e.Evaluate(st, cp, hub, Optimistic, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if !valid {
		t.Error("optimistic missed a match beyond the super-optimistic cap")
	}
}

func TestDeadlineAborts(t *testing.T) {
	// A graph big enough that evaluation takes measurable time: dense
	// bipartite-ish blob with one label, query a 5-cycle of same label.
	rng := rand.New(rand.NewSource(3))
	b := graph.NewBuilder(300, 4000)
	for i := 0; i < 300; i++ {
		b.AddNode(0)
	}
	for b.NumEdges() < 4000 {
		u, v := graph.NodeID(rng.Intn(300)), graph.NodeID(rng.Intn(300))
		if u != v && !b.HasEdge(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.MustBuild()
	qb := graph.NewBuilder(6, 6)
	for i := 0; i < 6; i++ {
		qb.AddNode(0)
	}
	for i := graph.NodeID(0); i < 6; i++ {
		if err := qb.AddEdge(i, (i+1)%6); err != nil {
			t.Fatal(err)
		}
	}
	q, _ := graph.NewQuery(qb.MustBuild(), 0)
	e := newEval(t, g, q)
	c := plan.MustCompile(q, plan.Heuristic(q, g))

	st := NewState(q.Size())
	// Already-expired deadline must abort promptly with ErrDeadline.
	_, err := e.Evaluate(st, c, 0, Pessimistic, Limits{Deadline: time.Now().Add(-time.Second)})
	if err != ErrDeadline {
		t.Errorf("expired deadline: err = %v, want ErrDeadline", err)
	}
	// Stop flag aborts with ErrStopped.
	var stop atomic.Bool
	stop.Store(true)
	_, err = e.Evaluate(st, c, 0, Optimistic, Limits{Stop: &stop})
	if err != ErrStopped {
		t.Errorf("stop flag: err = %v, want ErrStopped", err)
	}
}

func TestRace(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	e := newEval(t, g, q)
	c := plan.MustCompile(q, plan.Heuristic(q, g))
	want := map[graph.NodeID]bool{0: true, 5: true}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		rr, err := e.Race(c, u, Limits{})
		if err != nil {
			t.Fatalf("race node %d: %v", u, err)
		}
		if rr.Valid != want[u] {
			t.Errorf("race node %d: valid = %v, want %v", u, rr.Valid, want[u])
		}
		if rr.Winner != Optimistic && rr.Winner != Pessimistic {
			t.Errorf("race node %d: winner = %v", u, rr.Winner)
		}
	}
}

func TestEvaluateAllStrategiesAgree(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	e := newEval(t, g, q)
	want := graphtest.Figure1PivotBindings()
	for _, s := range []Strategy{OptimisticOnly, PessimisticOnly, TwoThreaded} {
		res, err := EvaluateAll(e, s, time.Time{})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		got := append([]graph.NodeID(nil), res.Bindings...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("%v: bindings %v, want %v", s, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: bindings %v, want %v", s, got, want)
			}
		}
		if res.Candidates != 2 { // two A-labeled nodes
			t.Errorf("%v: candidates = %d, want 2", s, res.Candidates)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	e := newEval(t, g, q)
	c := plan.MustCompile(q, plan.Heuristic(q, g))
	st := NewState(q.Size())
	if _, err := e.Evaluate(st, c, 0, Optimistic, Limits{}); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Candidates == 0 || s.Recursions == 0 {
		t.Errorf("optimistic stats empty: %+v", s)
	}
	if s.ScoreCalcs == 0 {
		t.Errorf("optimistic did not compute scores: %+v", s)
	}
	st.ResetStats()
	if _, err := e.Evaluate(st, c, 1, Pessimistic, Limits{}); err != nil {
		t.Fatal(err)
	}
	// Node u2 has label B, pivot is A: rejected before any recursion.
	s = st.Stats()
	if s.Recursions != 0 {
		t.Errorf("label-mismatched node recursed: %+v", s)
	}
	var total Stats
	total.Add(s)
	total.Add(Stats{Recursions: 1, Candidates: 2, SigPrunes: 3, Sorts: 4, ScoreCalcs: 5})
	if total.Recursions != 1 || total.Candidates != 2+s.Candidates || total.SigPrunes != 3 || total.Sorts != 4 || total.ScoreCalcs != 5 {
		t.Errorf("Add wrong: %+v", total)
	}
}

func TestPessimisticPrunesMore(t *testing.T) {
	// On the Figure 1 graph, evaluating invalid node u6... u6 is valid.
	// Use a graph where an A node has the right label but poor
	// neighborhood: add an isolated-ish A node.
	b := graph.NewBuilder(8, 12)
	u1 := b.AddNode(0)
	u2 := b.AddNode(1)
	u3 := b.AddNode(2)
	// A node with two B neighbors (so it passes the degree check) but no
	// C anywhere within two hops (so the signature check must prune it).
	lonely := b.AddNode(0)
	u5 := b.AddNode(1)
	u7 := b.AddNode(1)
	for _, e := range [][2]graph.NodeID{{u1, u2}, {u2, u3}, {u1, u3}, {lonely, u5}, {lonely, u7}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	q := graphtest.Figure1Query()
	e := newEval(t, g, q)
	c := plan.MustCompile(q, plan.Plan{0, 1, 2})
	st := NewState(q.Size())
	valid, err := e.Evaluate(st, c, lonely, Pessimistic, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if valid {
		t.Fatal("lonely node should be invalid")
	}
	// The pessimist must have pruned it at step 0 via the signature
	// (its NS lacks any C weight), before any recursion.
	if st.Stats().Recursions != 0 {
		t.Errorf("pessimist recursed %d times on a signature-prunable node", st.Stats().Recursions)
	}
	if st.Stats().SigPrunes == 0 {
		t.Error("pessimist recorded no signature prunes")
	}
}

func TestModeHelpers(t *testing.T) {
	if Optimistic.Opposite() != Pessimistic || Pessimistic.Opposite() != Optimistic {
		t.Error("Opposite wrong")
	}
	if Optimistic.String() != "optimistic" || Pessimistic.String() != "pessimistic" {
		t.Error("String wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode String empty")
	}
	for _, s := range []Strategy{OptimisticOnly, PessimisticOnly, TwoThreaded, Strategy(9)} {
		if s.String() == "" {
			t.Error("strategy String empty")
		}
	}
}

func TestEdgeLabeledMatching(t *testing.T) {
	// Data: A-B with edge label x, A-B with edge label y (two pairs).
	b := graph.NewBuilder(4, 2)
	a1 := b.AddNode(0)
	b1 := b.AddNode(1)
	a2 := b.AddNode(0)
	b2 := b.AddNode(1)
	if err := b.AddLabeledEdge(a1, b1, 0); err != nil { // x
		t.Fatal(err)
	}
	if err := b.AddLabeledEdge(a2, b2, 1); err != nil { // y
		t.Fatal(err)
	}
	g := b.MustBuild()
	// Query: A-B via edge labeled x, pivot A.
	qb := graph.NewBuilder(2, 1)
	qa := qb.AddNode(0)
	qbn := qb.AddNode(1)
	if err := qb.AddLabeledEdge(qa, qbn, 0); err != nil {
		t.Fatal(err)
	}
	q, _ := graph.NewQuery(qb.MustBuild(), qa)
	e := newEval(t, g, q)
	c := plan.MustCompile(q, plan.Plan{0, 1})
	st := NewState(2)
	for _, mode := range []Mode{Optimistic, Pessimistic} {
		got1, err := e.Evaluate(st, c, a1, mode, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		got2, err := e.Evaluate(st, c, a2, mode, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if !got1 || got2 {
			t.Errorf("%v: edge labels not honored: a1=%v a2=%v, want true,false", mode, got1, got2)
		}
	}
}

func TestSingleNodeQuery(t *testing.T) {
	g := graphtest.Figure1Data()
	qb := graph.NewBuilder(1, 0)
	qb.AddNode(0) // single A node
	q, _ := graph.NewQuery(qb.MustBuild(), 0)
	e := newEval(t, g, q)
	c := plan.MustCompile(q, plan.Plan{0})
	st := NewState(1)
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		want := g.Label(u) == 0
		for _, mode := range []Mode{Optimistic, Pessimistic} {
			got, err := e.Evaluate(st, c, u, mode, Limits{})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%v node %d: %v want %v", mode, u, got, want)
			}
		}
	}
}
