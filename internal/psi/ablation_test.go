package psi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/graph/graphtest"
	"repro/internal/plan"
)

// TestNoSigPruneEquivalent: disabling Proposition 3.2 pruning must never
// change results, only work done.
func TestNoSigPruneEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(16, 40, 3, seed)
		comp := graph.ConnectedComponent(g, graph.NodeID(rng.Intn(g.NumNodes())))
		if len(comp) < 4 {
			return true
		}
		sub, _, err := graph.InducedSubgraph(g, comp[:4])
		if err != nil || !graph.IsConnected(sub) {
			return true
		}
		q, _ := graph.NewQuery(sub, 0)
		e := newEvalQuiet(g, q)
		c, err := plan.Compile(q, plan.Heuristic(q, g))
		if err != nil {
			return false
		}
		st := NewState(q.Size())
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			with, err := e.Evaluate(st, c, u, Pessimistic, Limits{})
			if err != nil {
				return false
			}
			without, err := e.EvaluateNoSigPrune(st, c, u, Limits{})
			if err != nil {
				return false
			}
			if with != without {
				t.Logf("seed %d node %d: pruned=%v unpruned=%v", seed, u, with, without)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestNoSuperEquivalent: skipping the super-optimistic pass must never
// change results.
func TestNoSuperEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graphtest.Random(18, 50, 2, seed)
		comp := graph.ConnectedComponent(g, graph.NodeID(rng.Intn(g.NumNodes())))
		if len(comp) < 4 {
			return true
		}
		sub, _, err := graph.InducedSubgraph(g, comp[:4])
		if err != nil || !graph.IsConnected(sub) {
			return true
		}
		q, _ := graph.NewQuery(sub, 0)
		e := newEvalQuiet(g, q)
		c, err := plan.Compile(q, plan.Heuristic(q, g))
		if err != nil {
			return false
		}
		st := NewState(q.Size())
		for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
			with, err := e.Evaluate(st, c, u, Optimistic, Limits{})
			if err != nil {
				return false
			}
			without, err := e.EvaluateNoSuper(st, c, u, Optimistic, Limits{})
			if err != nil {
				return false
			}
			if with != without {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkEvaluateOptimistic / Pessimistic measure single-node
// evaluation cost on the Figure 1 fixture (microbenchmark baseline).
func benchmarkEvaluate(b *testing.B, mode Mode) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	e := newEvalQuiet(g, q)
	c := plan.MustCompile(q, plan.Plan{0, 1, 2})
	st := NewState(q.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Evaluate(st, c, 0, mode, Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateOptimistic(b *testing.B)  { benchmarkEvaluate(b, Optimistic) }
func BenchmarkEvaluatePessimistic(b *testing.B) { benchmarkEvaluate(b, Pessimistic) }

func BenchmarkRace(b *testing.B) {
	g := graphtest.Figure1Data()
	q := graphtest.Figure1Query()
	e := newEvalQuiet(g, q)
	c := plan.MustCompile(q, plan.Plan{0, 1, 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Race(c, 0, Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}
