//go:build !psi_invariants

package invariant

// forceEnabled is false in default builds; checking is then controlled
// by the PSI_INVARIANTS environment variable and Enable.
const forceEnabled = false
