package invariant_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/invariant"
	"repro/internal/signature"
)

// triangleCSR returns the raw CSR arrays of a valid labeled triangle
// (labels 0,1,0; runs sorted by (neighbor label, id)), for building
// corrupted variants with graph.FromCSR.
func triangleCSR() (labels []graph.Label, offsets []int64, adj []graph.NodeID) {
	labels = []graph.Label{0, 1, 0}
	offsets = []int64{0, 2, 4, 6}
	// node 0: neighbors 2 (label 0), 1 (label 1)
	// node 1: neighbors 0, 2 (both label 0)
	// node 2: neighbors 0 (label 0), 1 (label 1)
	adj = []graph.NodeID{2, 1, 0, 2, 0, 1}
	return
}

func TestCheckGraphAcceptsValidCSR(t *testing.T) {
	labels, offsets, adj := triangleCSR()
	g := graph.FromCSR(labels, offsets, adj, nil, 2)
	if err := invariant.CheckGraph(g); err != nil {
		t.Fatalf("valid CSR rejected: %v", err)
	}
}

func TestCheckGraphRejectsCorruptCSR(t *testing.T) {
	cases := []struct {
		name      string
		corrupt   func() *graph.Graph
		wantError string
	}{
		{
			name: "unsorted run",
			corrupt: func() *graph.Graph {
				labels, offsets, adj := triangleCSR()
				adj[0], adj[1] = adj[1], adj[0] // node 0's run violates (label,id) order
				return graph.FromCSR(labels, offsets, adj, nil, 2)
			},
			wantError: "not sorted",
		},
		{
			name: "asymmetric edge",
			corrupt: func() *graph.Graph {
				// Node 0 lists 1, but node 1 lists nothing.
				labels := []graph.Label{0, 0}
				offsets := []int64{0, 1, 1}
				adj := []graph.NodeID{1}
				return graph.FromCSR(labels, offsets, adj, nil, 1)
			},
			wantError: "missing its reverse",
		},
		{
			name: "self loop",
			corrupt: func() *graph.Graph {
				labels := []graph.Label{0, 0}
				offsets := []int64{0, 1, 2}
				adj := []graph.NodeID{0, 1}
				return graph.FromCSR(labels, offsets, adj, nil, 1)
			},
			wantError: "self loop",
		},
		{
			name: "label out of range",
			corrupt: func() *graph.Graph {
				labels, offsets, adj := triangleCSR()
				labels[1] = 7 // alphabet stays 2
				return graph.FromCSR(labels, offsets, adj, nil, 2)
			},
			wantError: "label",
		},
		{
			name: "negative label",
			corrupt: func() *graph.Graph {
				labels, offsets, adj := triangleCSR()
				labels[0] = -1
				return graph.FromCSR(labels, offsets, adj, nil, 2)
			},
			wantError: "label",
		},
		{
			name: "neighbor out of range",
			corrupt: func() *graph.Graph {
				labels, offsets, adj := triangleCSR()
				adj[0] = 9
				return graph.FromCSR(labels, offsets, adj, nil, 2)
			},
			wantError: "out-of-range neighbor",
		},
		{
			// Regression: monotone prefix overshooting len(adj) used to
			// panic Validate instead of returning an error.
			name: "offset overshoot",
			corrupt: func() *graph.Graph {
				labels := []graph.Label{0, 0, 0}
				offsets := []int64{0, 10, 10, 2}
				adj := []graph.NodeID{1, 0}
				return graph.FromCSR(labels, offsets, adj, nil, 1)
			},
			wantError: "exceeds adjacency length",
		},
		{
			name: "non-monotone offsets",
			corrupt: func() *graph.Graph {
				labels := []graph.Label{0, 0, 0}
				offsets := []int64{0, 2, 1, 2}
				adj := []graph.NodeID{1, 2}
				return graph.FromCSR(labels, offsets, adj, nil, 1)
			},
			wantError: "monotone",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := invariant.CheckGraph(tc.corrupt())
			if err == nil {
				t.Fatal("corrupted CSR accepted")
			}
			var v *invariant.Violation
			if !errors.As(err, &v) {
				t.Fatalf("error is %T, want *invariant.Violation", err)
			}
			if !strings.Contains(err.Error(), tc.wantError) {
				t.Fatalf("error %q does not mention %q", err, tc.wantError)
			}
		})
	}
}

// fakeSigs is a SignatureView with directly controllable rows.
type fakeSigs struct {
	width int
	rows  [][]float64
}

func (f *fakeSigs) NumNodes() int                { return len(f.rows) }
func (f *fakeSigs) Width() int                   { return f.width }
func (f *fakeSigs) Row(u graph.NodeID) []float64 { return f.rows[u] }

func sigFixtureGraph() *graph.Graph {
	b := graph.NewBuilder(3, 2)
	n0, n1, n2 := b.AddNode(0), b.AddNode(1), b.AddNode(0)
	if err := b.AddEdge(n0, n1); err != nil {
		panic(err)
	}
	if err := b.AddEdge(n1, n2); err != nil {
		panic(err)
	}
	return b.MustBuild()
}

func TestCheckSignatures(t *testing.T) {
	g := sigFixtureGraph()

	real := signature.MustBuild(g, signature.DefaultDepth, g.NumLabels(), signature.Matrix)
	if err := invariant.CheckSignatures(real, g); err != nil {
		t.Fatalf("real signatures rejected: %v", err)
	}

	ok := &fakeSigs{width: 2, rows: [][]float64{{1, 2}, {2, 1.5}, {1, 0}}}
	if err := invariant.CheckSignatures(ok, g); err != nil {
		t.Fatalf("valid fake signatures rejected: %v", err)
	}

	bad := []struct {
		name string
		s    *fakeSigs
		want string
	}{
		{"row count mismatch", &fakeSigs{width: 2, rows: [][]float64{{1, 0}}}, "rows"},
		{"narrow width", &fakeSigs{width: 1, rows: [][]float64{{1}, {1}, {1}}}, "width"},
		{"ragged row", &fakeSigs{width: 2, rows: [][]float64{{1, 0}, {2, 1}, {1}}}, "entries"},
		{"nan weight", &fakeSigs{width: 2, rows: [][]float64{{1, math.NaN()}, {0, 1}, {1, 0}}}, "not finite"},
		{"inf weight", &fakeSigs{width: 2, rows: [][]float64{{1, math.Inf(1)}, {0, 1}, {1, 0}}}, "not finite"},
		{"negative weight", &fakeSigs{width: 2, rows: [][]float64{{1, -0.5}, {0, 1}, {1, 0}}}, "negative"},
		{"own label below one", &fakeSigs{width: 2, rows: [][]float64{{0.2, 1}, {0, 1}, {1, 0}}}, "own-label"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := invariant.CheckSignatures(tc.s, g)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestCheckKeyStability(t *testing.T) {
	row := []float64{1, 0.5, 2}
	if err := invariant.CheckKeyStability(signature.Key, row); err != nil {
		t.Fatalf("signature.Key flagged as unstable: %v", err)
	}
	calls := uint64(0)
	unstable := func([]float64) uint64 { calls++; return calls }
	if err := invariant.CheckKeyStability(unstable, row); err == nil {
		t.Fatal("unstable key function accepted")
	}
}

func embFixture() (*graph.Graph, graph.Query) {
	b := graph.NewBuilder(4, 4)
	n0, n1 := b.AddNode(0), b.AddNode(1)
	n2, n3 := b.AddNode(0), b.AddNode(1)
	for _, e := range [][2]graph.NodeID{{n0, n1}, {n1, n2}, {n2, n3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	g := b.MustBuild()

	qb := graph.NewBuilder(2, 1)
	q0, q1 := qb.AddNode(0), qb.AddNode(1)
	if err := qb.AddEdge(q0, q1); err != nil {
		panic(err)
	}
	q, err := graph.NewQuery(qb.MustBuild(), q0)
	if err != nil {
		panic(err)
	}
	return g, q
}

func TestCheckEmbedding(t *testing.T) {
	g, q := embFixture()
	if err := invariant.CheckEmbedding(g, q, []graph.NodeID{0, 1}); err != nil {
		t.Fatalf("valid embedding rejected: %v", err)
	}
	if err := invariant.CheckEmbedding(g, q, []graph.NodeID{2, 3}); err != nil {
		t.Fatalf("valid embedding rejected: %v", err)
	}
	bad := []struct {
		name    string
		mapping []graph.NodeID
		want    string
	}{
		{"incomplete", []graph.NodeID{0}, "covers"},
		{"out of range", []graph.NodeID{0, 9}, "out-of-range"},
		{"not injective", []graph.NodeID{0, 0}, "injective"},
		{"label mismatch", []graph.NodeID{1, 0}, "label"},
		{"edge not preserved", []graph.NodeID{0, 3}, "not preserved"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := invariant.CheckEmbedding(g, q, tc.mapping)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestCheckBindings(t *testing.T) {
	g, q := embFixture()
	if err := invariant.CheckBindings(g, q, []graph.NodeID{0, 2}); err != nil {
		t.Fatalf("valid bindings rejected: %v", err)
	}
	if err := invariant.CheckBindings(g, q, nil); err != nil {
		t.Fatalf("empty bindings rejected: %v", err)
	}
	bad := []struct {
		name     string
		bindings []graph.NodeID
		want     string
	}{
		{"descending", []graph.NodeID{2, 0}, "ascending"},
		{"duplicate", []graph.NodeID{0, 0}, "ascending"},
		{"out of range", []graph.NodeID{42}, "out of range"},
		{"wrong label", []graph.NodeID{1}, "label"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := invariant.CheckBindings(g, q, tc.bindings)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestCheckDenseRows(t *testing.T) {
	labels := []graph.Label{0, 1}
	if err := invariant.CheckDenseRows([]float64{1, 0, 0.5, 1}, 2, labels); err != nil {
		t.Fatalf("valid rows rejected: %v", err)
	}
	bad := []struct {
		name   string
		rows   []float64
		width  int
		labels []graph.Label
		want   string
	}{
		{"bad width", []float64{1}, 0, labels[:1], "width"},
		{"length mismatch", []float64{1, 0, 1}, 2, labels, "row values"},
		{"nan", []float64{1, math.NaN(), 0, 1}, 2, labels, "not finite"},
		{"negative", []float64{1, -1, 0, 1}, 2, labels, "negative"},
		{"own weight below one", []float64{0, 1, 0, 1}, 2, labels, "own-label"},
		{"label outside width", []float64{1, 0}, 2, []graph.Label{5}, "outside width"},
		{"negative node label", []float64{1, 0}, 2, []graph.Label{-1}, "outside width"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := invariant.CheckDenseRows(tc.rows, tc.width, tc.labels)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error mentioning %q", err, tc.want)
			}
		})
	}
}

func TestEnableToggleGatesBuildChecks(t *testing.T) {
	was := invariant.Enabled()
	defer invariant.Enable(was)

	invariant.Enable(true)
	if !invariant.Enabled() {
		t.Fatal("Enable(true) did not stick")
	}
	// With checking enabled, Builder.Build runs CheckGraph via the
	// registered hook; a clean build must still succeed.
	b := graph.NewBuilder(2, 1)
	n0, n1 := b.AddNode(0), b.AddNode(0)
	if err := b.AddEdge(n0, n1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err != nil {
		t.Fatalf("clean build failed with invariants on: %v", err)
	}
	invariant.Enable(false)
	if invariant.Enabled() {
		t.Fatal("Enable(false) did not stick")
	}
}

func TestMust(t *testing.T) {
	invariant.Must(nil) // must not panic
	defer func() {
		if recover() == nil {
			t.Fatal("Must(err) did not panic")
		}
	}()
	invariant.Must(errors.New("boom"))
}
