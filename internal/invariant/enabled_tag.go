//go:build psi_invariants

package invariant

// forceEnabled is true under the psi_invariants build tag: binaries
// built with -tags psi_invariants start with deep checking on
// (Enable(false) can still switch it off at runtime).
const forceEnabled = true
