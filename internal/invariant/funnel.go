package invariant

import "repro/internal/obs"

// CheckFunnel validates a query profiler candidate funnel: within every
// plan depth the stage counts must be non-negative and monotone
// non-increasing in pipeline order (generated ≥ deg-ok ≥ sig-ok ≥
// recursed ≥ matched) — each stage only ever filters the previous one.
// It iterates obs.FunnelDepth.Stages rather than the named fields, so a
// stage added to the funnel is covered here automatically.
func CheckFunnel(f *obs.Funnel) error {
	if f == nil {
		return nil
	}
	names := obs.StageNames()
	for depth := range f.Depths {
		stages := f.Depths[depth].Stages()
		for i, v := range stages {
			if v < 0 {
				return violationf("funnel", "depth %d: stage %s is negative (%d)", depth, names[i], v)
			}
			if i > 0 && v > stages[i-1] {
				return violationf("funnel", "depth %d: %s (%d) exceeds %s (%d); stages must be non-increasing",
					depth, names[i], v, names[i-1], stages[i-1])
			}
		}
	}
	return nil
}
