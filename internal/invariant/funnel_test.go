package invariant_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/invariant"
	"repro/internal/obs"
)

func TestCheckFunnelAcceptsMonotone(t *testing.T) {
	cases := []*obs.Funnel{
		nil,
		{},
		{Depths: []obs.FunnelDepth{{}}},
		{Depths: []obs.FunnelDepth{
			{Generated: 10, DegOK: 10, SigOK: 7, Recursed: 7, Matched: 0},
			{Generated: 3, DegOK: 2, SigOK: 1, Recursed: 1, Matched: 1},
		}},
	}
	for i, f := range cases {
		if err := invariant.CheckFunnel(f); err != nil {
			t.Errorf("case %d: valid funnel rejected: %v", i, err)
		}
	}
}

func TestCheckFunnelRejectsViolations(t *testing.T) {
	cases := []struct {
		name      string
		f         *obs.Funnel
		wantError string
	}{
		{
			name:      "stage exceeds predecessor",
			f:         &obs.Funnel{Depths: []obs.FunnelDepth{{Generated: 5, DegOK: 6}}},
			wantError: "deg-ok (6) exceeds generated (5)",
		},
		{
			name: "violation at deeper depth",
			f: &obs.Funnel{Depths: []obs.FunnelDepth{
				{Generated: 5, DegOK: 5, SigOK: 5, Recursed: 5, Matched: 5},
				{Generated: 2, DegOK: 1, SigOK: 1, Recursed: 1, Matched: 2},
			}},
			wantError: "depth 1: matched (2) exceeds recursed (1)",
		},
		{
			name:      "negative stage",
			f:         &obs.Funnel{Depths: []obs.FunnelDepth{{Generated: -1}}},
			wantError: "stage generated is negative",
		},
	}
	for _, tc := range cases {
		err := invariant.CheckFunnel(tc.f)
		if err == nil {
			t.Errorf("%s: invalid funnel accepted", tc.name)
			continue
		}
		var v *invariant.Violation
		if !errors.As(err, &v) || v.Subsystem != "funnel" {
			t.Errorf("%s: error %v is not a funnel Violation", tc.name, err)
		}
		if !strings.Contains(err.Error(), tc.wantError) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantError)
		}
	}
}
