// Package invariant provides debug-gated deep validators for the core
// data structures of the reproduction: CSR graphs, node signatures, and
// embeddings/bindings produced by the PSI evaluators.
//
// Checking is off by default and costs one atomic load per call site.
// Enable it with the PSI_INVARIANTS environment variable (any non-empty
// value), the `psi_invariants` build tag, or Enable(true) from tests.
// With checking enabled, graph.Builder.Build and graph.ReadBinary run
// CheckGraph on every graph they produce (wired through
// graph.RegisterBuildCheck), package signature validates every built
// signature set, package dyngraph revalidates maintained rows after
// mutations, and both PSI evaluators verify each full mapping they find
// before reporting a pivot binding as valid.
//
// Validators return errors rather than panicking so callers on error-
// returning paths can propagate them; the Must helper converts a
// violation into a panic for callers with no error path (none in
// production code — psilint enforces that).
package invariant

import (
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"repro/internal/graph"
)

var enabled atomic.Bool

func init() {
	if forceEnabled || os.Getenv("PSI_INVARIANTS") != "" {
		enabled.Store(true)
	}
	graph.RegisterBuildCheck(func(g *graph.Graph) error {
		if !Enabled() {
			return nil
		}
		return CheckGraph(g)
	})
}

// Enabled reports whether deep invariant checking is on.
func Enabled() bool { return enabled.Load() }

// Enable switches deep invariant checking on or off at runtime. Tests
// use it; production code should prefer the environment variable.
func Enable(on bool) { enabled.Store(on) }

// Violation is the error type reported by every validator in this
// package, so callers can distinguish invariant failures from ordinary
// errors with errors.As.
type Violation struct {
	// Subsystem names the checked structure ("graph", "signature",
	// "embedding", "bindings", "dyngraph").
	Subsystem string
	// Detail describes the specific violation.
	Detail string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("invariant violation [%s]: %s", v.Subsystem, v.Detail)
}

func violationf(subsystem, format string, args ...any) error {
	return &Violation{Subsystem: subsystem, Detail: fmt.Sprintf(format, args...)}
}

// CheckGraph deep-validates a CSR graph: structural consistency
// (monotone offsets, in-range adjacency, sorted runs, symmetric edges,
// label bounds — via (*graph.Graph).Validate) plus the derived state the
// evaluators rely on: per-label node index sorted and complete,
// label frequencies summing to the node count, and MaxDegree matching
// the true maximum.
func CheckGraph(g *graph.Graph) error {
	if err := g.Validate(); err != nil {
		return violationf("graph", "%v", err)
	}
	n := g.NumNodes()
	var total int64
	var maxDeg int32
	for l := graph.Label(0); int(l) < g.NumLabels(); l++ {
		nodes := g.NodesWithLabel(l)
		if int32(len(nodes)) != g.LabelFrequency(l) {
			return violationf("graph", "label %d: index has %d nodes, frequency says %d", l, len(nodes), g.LabelFrequency(l))
		}
		total += int64(len(nodes))
		for i, u := range nodes {
			if g.Label(u) != l {
				return violationf("graph", "label index %d contains node %d with label %d", l, u, g.Label(u))
			}
			if i > 0 && nodes[i-1] >= u {
				return violationf("graph", "label index %d not strictly ascending at position %d", l, i)
			}
		}
	}
	if total != int64(n) {
		return violationf("graph", "label frequencies sum to %d, graph has %d nodes", total, n)
	}
	for u := graph.NodeID(0); int(u) < n; u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg != g.MaxDegree() {
		return violationf("graph", "MaxDegree() = %d, true maximum is %d", g.MaxDegree(), maxDeg)
	}
	return nil
}

// SignatureView is the read surface of signature.Signatures (and of any
// other node-major row store, e.g. dyngraph's maintained rows wrapped
// via signature.FromDense). Defined here so this package stays a leaf
// below package signature.
type SignatureView interface {
	NumNodes() int
	Width() int
	Row(graph.NodeID) []float64
}

// CheckSignatures validates a signature set against its graph: one row
// per node, width at least the label alphabet, every weight finite and
// non-negative, and each node's own label carrying weight >= 1 (the
// propagation recurrences all seed a node with its own label at weight
// 1 and only ever add non-negative terms).
func CheckSignatures(s SignatureView, g *graph.Graph) error {
	if s.NumNodes() != g.NumNodes() {
		return violationf("signature", "%d rows for %d nodes", s.NumNodes(), g.NumNodes())
	}
	if s.Width() < g.NumLabels() {
		return violationf("signature", "width %d < label alphabet %d", s.Width(), g.NumLabels())
	}
	const eps = 1e-9
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		row := s.Row(u)
		if len(row) != s.Width() {
			return violationf("signature", "node %d row has %d entries, want %d", u, len(row), s.Width())
		}
		for l, w := range row {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return violationf("signature", "node %d label %d weight %v not finite", u, l, w)
			}
			if w < -eps {
				return violationf("signature", "node %d label %d weight %v negative", u, l, w)
			}
		}
		if own := row[g.Label(u)]; own < 1-eps {
			return violationf("signature", "node %d own-label weight %v < 1", u, own)
		}
	}
	return nil
}

// CheckKeyStability verifies that hashing the same row twice yields the
// same cache key — the property the smartpsi prediction cache depends
// on. key is the hash function under test (signature.Key in production).
func CheckKeyStability(key func([]float64) uint64, row []float64) error {
	if a, b := key(row), key(row); a != b {
		return violationf("signature", "key not stable: %#x vs %#x for same row", a, b)
	}
	return nil
}

// CheckEmbedding validates a full query embedding: mapping[i] is the
// data node bound to query node i. It verifies completeness, range,
// injectivity, node-label preservation, and edge (and edge-label)
// preservation.
func CheckEmbedding(g *graph.Graph, q graph.Query, mapping []graph.NodeID) error {
	qg := q.G
	if len(mapping) != qg.NumNodes() {
		return violationf("embedding", "mapping covers %d of %d query nodes", len(mapping), qg.NumNodes())
	}
	seen := make(map[graph.NodeID]graph.NodeID, len(mapping))
	for i, u := range mapping {
		if u < 0 || int(u) >= g.NumNodes() {
			return violationf("embedding", "query node %d bound to out-of-range data node %d", i, u)
		}
		if prev, dup := seen[u]; dup {
			return violationf("embedding", "not injective: query nodes %d and %d both bound to %d", prev, i, u)
		}
		seen[u] = graph.NodeID(i)
		if g.Label(u) != qg.Label(graph.NodeID(i)) {
			return violationf("embedding", "query node %d (label %d) bound to data node %d (label %d)",
				i, qg.Label(graph.NodeID(i)), u, g.Label(u))
		}
	}
	for v := graph.NodeID(0); int(v) < qg.NumNodes(); v++ {
		for i, w := range qg.Neighbors(v) {
			if v >= w {
				continue
			}
			du, dv := mapping[v], mapping[w]
			ql := qg.EdgeLabelAt(v, i)
			dl, ok := g.EdgeLabel(du, dv)
			if !ok {
				return violationf("embedding", "query edge (%d,%d) not preserved: no data edge (%d,%d)", v, w, du, dv)
			}
			if ql != graph.NoLabel && dl != ql {
				return violationf("embedding", "query edge (%d,%d) label %d mapped to data edge (%d,%d) label %d",
					v, w, ql, du, dv, dl)
			}
		}
	}
	return nil
}

// CheckBindings validates a PSI result's binding list: strictly
// ascending, in range, and every binding carrying the pivot's label.
func CheckBindings(g *graph.Graph, q graph.Query, bindings []graph.NodeID) error {
	pivotLabel := q.G.Label(q.Pivot)
	for i, u := range bindings {
		if u < 0 || int(u) >= g.NumNodes() {
			return violationf("bindings", "binding %d out of range", u)
		}
		if i > 0 && bindings[i-1] >= u {
			return violationf("bindings", "bindings not strictly ascending at position %d", i)
		}
		if g.Label(u) != pivotLabel {
			return violationf("bindings", "binding %d has label %d, pivot label is %d", u, g.Label(u), pivotLabel)
		}
	}
	return nil
}

// CheckDenseRows validates an incrementally maintained node-major row
// store (package dyngraph): length divisible by width, all weights
// finite and non-negative within epsilon, and each node's own label at
// weight >= 1. labels[i] is node i's label.
func CheckDenseRows(rows []float64, width int, labels []graph.Label) error {
	if width <= 0 {
		return violationf("dyngraph", "non-positive row width %d", width)
	}
	if len(rows) != width*len(labels) {
		return violationf("dyngraph", "%d row values for %d nodes at width %d", len(rows), len(labels), width)
	}
	const eps = 1e-9
	for u, l := range labels {
		row := rows[u*width : (u+1)*width]
		for j, w := range row {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return violationf("dyngraph", "node %d label %d weight %v not finite", u, j, w)
			}
			if w < -eps {
				return violationf("dyngraph", "node %d label %d weight %v negative", u, j, w)
			}
		}
		if l < 0 || int(l) >= width {
			return violationf("dyngraph", "node %d label %d outside width %d", u, l, width)
		}
		if own := row[l]; own < 1-eps {
			return violationf("dyngraph", "node %d own-label weight %v < 1", u, own)
		}
	}
	return nil
}

// Must panics on a non-nil invariant error. It is the only sanctioned
// panic path for invariant failures and exists for call sites with no
// error return (none in production code today).
func Must(err error) {
	if err != nil {
		panic(err)
	}
}
