package invariant

// Shadow-scoring invariants (model-decision observability).
//
// A shadow run re-evaluates an already-decided candidate with the
// opposite method or an alternative plan. Both the primary and the
// shadow evaluation are exact algorithms for the same decision problem,
// so their matched/not-matched verdicts must agree; and a shadow run is
// an audit, never a budget participant — it must not execute for
// training nodes (their ground truth is the training label; a shadow
// would double-charge the training budget) nor inside the §4.3
// recovery ladder (rungs 2–3 are themselves counterfactual re-runs).

// CheckShadowAgreement validates that a shadow evaluation of node u
// reproduced the primary verdict. kind names the audited model ("mode"
// or "plan") for the violation message.
func CheckShadowAgreement(kind string, u int64, primary, shadow bool) error {
	if primary == shadow {
		return nil
	}
	return violationf("shadow",
		"%s shadow run disagrees with primary on node %d: primary=%v shadow=%v (both are exact; one evaluator is unsound)",
		kind, u, primary, shadow)
}

// CheckShadowContext validates that a shadow run was requested from a
// legal site: only for non-training candidates whose primary evaluation
// resolved at recovery-ladder rung 1 (the predicted method and plan).
// rung is the 1-based ladder rung of the resolving primary run;
// training marks training-phase nodes.
func CheckShadowContext(u int64, rung int, training bool) error {
	if training {
		return violationf("shadow",
			"shadow run requested for training node %d; training nodes are labeled by the training sweep and must never be shadow-audited", u)
	}
	if rung != 1 {
		return violationf("shadow",
			"shadow run requested for node %d from recovery-ladder rung %d; shadows may only follow a rung-1 resolution (rungs 2-3 are already counterfactuals)", u, rung)
	}
	return nil
}
